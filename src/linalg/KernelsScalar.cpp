//===- linalg/KernelsScalar.cpp - Portable scalar kernel backend ----------===//
//
// The always-available fallback tier: the generic kernel bodies at lane
// width one. Built with -ffp-contract=off like every backend TU, so its
// operation-for-operation rounding is the reference the SIMD tiers must
// reproduce byte-for-byte.
//
//===----------------------------------------------------------------------===//

#include "linalg/KernelsGeneric.h"

using namespace craft;
using namespace craft::kernels;

const KernelTable &kernels::scalarKernelTable() {
  static const KernelTable Table =
      generic::makeKernelTable<simd::Lane<simd::ScalarTag>>();
  return Table;
}
