//===- data/SyntheticMnist.h - Procedural MNIST-like digits -----*- C++ -*-===//
//
// Part of the Craft reproduction (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Procedural substitute for MNIST (DESIGN.md substitution 1): 28x28
/// grayscale digit images rendered from a 7x5 glyph font with random
/// translation and pixel noise. The task is easily separable, so trained
/// monDEQs reach the high natural accuracy regime (~99%) the paper reports
/// on MNIST; input dimensionality (784) matches exactly.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFT_DATA_SYNTHETICMNIST_H
#define CRAFT_DATA_SYNTHETICMNIST_H

#include "data/Dataset.h"
#include "support/Rng.h"

namespace craft {

/// Image geometry shared with the conv model configuration.
inline constexpr size_t MnistSide = 28;
inline constexpr size_t MnistDim = MnistSide * MnistSide;

/// Generates \p Count labeled digit images (classes 0-9, pixels in [0, 1]).
Dataset makeSyntheticMnist(Rng &R, size_t Count);

} // namespace craft

#endif // CRAFT_DATA_SYNTHETICMNIST_H
