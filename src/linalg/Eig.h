//===- linalg/Eig.h - Symmetric eigendecomposition --------------*- C++ -*-===//
//
// Part of the Craft reproduction (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dense symmetric eigendecomposition (Householder tridiagonalization
/// followed by the implicit-shift QL algorithm, after EISPACK tred2/tql2).
/// Drives PCA-based zonotope order reduction (Kopetzki et al. 2017) and the
/// spectral norm ||I - W||_2 needed for the Forward-Backward step-size bound.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFT_LINALG_EIG_H
#define CRAFT_LINALG_EIG_H

#include "linalg/Matrix.h"

namespace craft {

/// Result of a symmetric eigendecomposition: A = V diag(values) V^T with
/// eigenvalues in ascending order and eigenvectors in the matching columns
/// of \c Vectors.
struct SymmetricEig {
  Vector Values;
  Matrix Vectors;
};

/// Eigendecomposition of the symmetric matrix \p A. Only the lower triangle
/// is read. Asserts on non-square input.
SymmetricEig symmetricEig(const Matrix &A);

/// Largest singular value of \p M, computed as sqrt(lambda_max(M^T M)).
double spectralNorm(const Matrix &M);

} // namespace craft

#endif // CRAFT_LINALG_EIG_H
