//===- core/Verifier.cpp --------------------------------------------------===//

#include "core/Verifier.h"

#include "support/Telemetry.h"
#include "support/Timer.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <memory>

using namespace craft;

CraftVerifier::CraftVerifier(const MonDeq &Model, CraftConfig Config)
    : Model(Model), Config(Config) {
  assert(!(Config.Phase1Method == Splitting::ForwardBackward &&
           Config.Phase2Method == Splitting::PeacemanRachford) &&
         "FB-then-PR is unsupported: the PR auxiliary set U* would be "
         "unknown (Section 6.3)");
}

CraftResult CraftVerifier::verifyRobustness(const Vector &X, int TargetClass,
                                            double Epsilon) const {
  Vector Lo(X.size()), Hi(X.size());
  for (size_t I = 0; I < X.size(); ++I) {
    Lo[I] = std::max(X[I] - Epsilon, Config.InputClampLo);
    Hi[I] = std::min(X[I] + Epsilon, Config.InputClampHi);
  }
  return verifyRegion(Lo, Hi, TargetClass);
}

CraftResult CraftVerifier::verifyRegion(const Vector &InLo, const Vector &InHi,
                                        int TargetClass) const {
  return withDomain(Config.Domain, [&](auto Dom) {
    return verifyImpl<decltype(Dom)>(InLo, InHi, TargetClass);
  });
}

namespace {

/// Iterations-to-containment distribution across every verifyRegion call
/// in the process (the paper's Table 2 N column as a live metric).
/// Counts regardless of whether timing is enabled.
const telemetry::Histogram IterationsHist =
    telemetry::histogramMetric("craft.iterations");

/// Shared phase-2 bookkeeping: best margin, certification flag, and the
/// no-progress abortion window of App. C.
class MarginTracker {
public:
  MarginTracker(int WindowSteps) : WindowSteps(WindowSteps) {}

  /// Returns true when phase 2 should stop (certified or stalled).
  bool update(const Vector &Margins, const IntervalVector &Hull) {
    double MinMargin = 1e300;
    for (double M : Margins)
      MinMargin = std::min(MinMargin, M);
    if (MinMargin > Best + 1e-12) {
      Best = MinMargin;
      BestHull = Hull;
      SinceImprovement = 0;
    } else {
      ++SinceImprovement;
    }
    Certified = Certified || MinMargin > 0.0;
    return Certified || SinceImprovement >= WindowSteps;
  }

  double best() const { return Best; }
  bool certified() const { return Certified; }
  const IntervalVector &bestHull() const { return BestHull; }

private:
  int WindowSteps;
  int SinceImprovement = 0;
  double Best = -1e300;
  bool Certified = false;
  IntervalVector BestHull;
};

} // namespace

template <class Dom>
CraftResult CraftVerifier::verifyImpl(const Vector &InLo, const Vector &InHi,
                                      int TargetClass) const {
  static_assert(AbstractDomain<Dom, AbstractSolver>,
                "domain traits must satisfy the portfolio concept");
  WallTimer Timer;
  TRACE_SPAN("craft.verify");
  CraftResult Res;

  CHZonotope X = CHZonotope::fromBox(InLo, InHi);
  Vector Center = 0.5 * (InLo + InHi);
  Vector ZStar =
      FixpointSolver(Model, Splitting::PeacemanRachford).solve(Center).Z;

  // Phase 1: abstract iteration until s-step containment (Thm 3.1 / B.1).
  // Domains with consolidation machinery (the zonotope family) consolidate
  // every r-th iteration and remember proper states; Box remembers plain
  // state copies every iteration — its containment check is exact and
  // needs no order reduction.
  AbstractSolver Solver1(Model, Config.Phase1Method, Config.Alpha1, X);
  typename Dom::State S = Dom::initial(Solver1, ZStar);
  ConsolidationBasis Basis(Solver1.stateDim(), Config.PcaRefreshEvery);
  std::deque<typename Dom::HistoryEntry> History;

  double WMul = 0.0, WAdd = 0.0;
  if (Config.Expansion != ExpansionSchedule::None) {
    WMul = Config.WMul;
    WAdd = Config.WAdd;
  }
  [[maybe_unused]] int Consolidations = 0;
  bool Contained = false;

  for (int N = 1; N <= Config.MaxIterations && !Contained; ++N) {
    if (Config.Control.stopRequested())
      break; // Deadline/cancel: give up containment search, stay sound.
    Res.TotalIterations = N;
    if constexpr (Dom::HasConsolidation) {
      if ((N - 1) % Config.ConsolidateEvery == 0) {
        telemetry::PhaseTimer ConsolidatePhase(
            telemetry::Phase::Consolidation);
        TRACE_SPAN("craft.consolidate");
        typename Dom::HistoryEntry PS =
            Dom::consolidate(S, Basis, WMul, WAdd);
        S = PS.Z;
        History.push_front(std::move(PS));
        if (History.size() > static_cast<size_t>(Config.HistorySize))
          History.pop_back();
        if (Config.Expansion == ExpansionSchedule::Exponential &&
            ++Consolidations % 2 == 0) {
          WMul *= 1.1;
          WAdd *= 1.2;
        }
      }
    } else {
      History.push_front(S);
      if (History.size() > static_cast<size_t>(Config.HistorySize))
        History.pop_back();
    }
    S = Dom::step(Solver1, S, 1.0);
    if (N % Config.ContainmentCheckEvery == 0) {
      for (const typename Dom::HistoryEntry &Prev : History)
        if (Dom::contains(Prev, S)) {
          Contained = true;
          Res.ContainmentIteration = N;
          break;
        }
    }
    if (Dom::widthInf(S) > Config.AbortWidth)
      break;
  }
  IterationsHist.observe(static_cast<uint64_t>(Res.TotalIterations));

  Res.Containment = Contained;
  if (!Contained) {
    Res.TimeSeconds = Timer.seconds();
    return Res;
  }

  if constexpr (!Dom::HasConsolidation) {
    // Phase 2 on the Box domain (PR phase-1 alpha retained; Box has no
    // consolidation or lambda choices).
    MarginTracker Track(3 * Config.Phase2Window);
    typename Dom::State Z = Dom::zPart(Solver1, S);
    Track.update(classificationMarginsIn<Dom>(Model, Z, TargetClass),
                 Dom::hull(Z));

    for (int Step = 0; Step < Config.MaxIterations; ++Step) {
      if (Config.Control.stopRequested())
        break;
      S = Dom::step(Solver1, S, 1.0);
      if (Dom::widthInf(S) > Config.AbortWidth)
        break;
      typename Dom::State ZI = Dom::zPart(Solver1, S);
      if (Track.update(classificationMarginsIn<Dom>(Model, ZI, TargetClass),
                       Dom::hull(ZI)))
        break;
    }
    Res.BestMargin = Track.best();
    Res.Certified = Track.certified();
    Res.FixpointHull = Track.bestHull();
    Res.TimeSeconds = Timer.seconds();
    return Res;
  } else {
    // S provably contains the true fixpoint set. Seed the result with its
    // margins before tightening.
    {
      typename Dom::State Z = Dom::zPart(Solver1, S);
      MarginTracker Seed(1);
      Seed.update(classificationMarginsIn<Dom>(Model, Z, TargetClass),
                  Dom::hull(Z));
      Res.BestMargin = Seed.best();
      Res.Certified = Seed.certified();
      Res.FixpointHull = Seed.bestHull();
      if (Res.Certified) {
        Res.TimeSeconds = Timer.seconds();
        return Res;
      }
    }

    // Phase 2: fixpoint-set-preserving tightening (Thm 3.3 / 5.1).
    // PR must keep its phase-1 alpha (preservation only holds for fixed
    // alpha); FB may use any alpha in [0,1] and is line searched.
    auto runPhase2 = [&](const AbstractSolver &Solver2,
                         typename Dom::State S2, double LambdaScale,
                         int MaxSteps) -> MarginTracker {
      TRACE_SPAN("craft.phase2");
      MarginTracker Track(3 * Config.Phase2Window);
      ConsolidationBasis Basis2(Solver2.stateDim(), Config.PcaRefreshEvery);
      for (int Step = 0; Step < MaxSteps; ++Step) {
        if (Config.Control.stopRequested())
          break; // Stop tightening; the best margin so far stands.
        bool UsableForCertification = true;
        if (Config.SameIterationContainment) {
          // Ablation: certify only from states contained in their
          // consolidated predecessor.
          typename Dom::HistoryEntry PS = [&] {
            telemetry::PhaseTimer ConsolidatePhase(
                telemetry::Phase::Consolidation);
            return Dom::consolidate(S2, Basis2, 0.0, 0.0);
          }();
          typename Dom::State Next = Dom::step(Solver2, PS.Z, LambdaScale);
          UsableForCertification = Dom::contains(PS, Next);
          S2 = std::move(Next);
        } else {
          if (Step > 0 && Step % Config.ConsolidateEvery == 0) {
            telemetry::PhaseTimer ConsolidatePhase(
                telemetry::Phase::Consolidation);
            S2 = Dom::consolidate(S2, Basis2, 0.0, 0.0).Z;
          }
          S2 = Dom::step(Solver2, S2, LambdaScale);
        }
        if (Dom::widthInf(S2) > Config.AbortWidth)
          break;
        if (!UsableForCertification)
          continue;
        typename Dom::State Z = Dom::zPart(Solver2, S2);
        if (Track.update(classificationMarginsIn<Dom>(Model, Z, TargetClass),
                         Dom::hull(Z)))
          break;
      }
      return Track;
    };

    bool Phase2IsPr = Config.Phase2Method == Splitting::PeacemanRachford;
    typename Dom::State SEntry = Phase2IsPr ? S : Dom::zPart(Solver1, S);

    double Alpha2 = Config.Alpha2;
    std::unique_ptr<AbstractSolver> Solver2Storage;
    const AbstractSolver *Solver2 = nullptr;
    if (Phase2IsPr && Config.Phase1Method == Splitting::PeacemanRachford) {
      Solver2 = &Solver1;
      Alpha2 = Solver1.alpha();
    } else if (Phase2IsPr) {
      Solver2 = &Solver1; // Phase 1 was PR too (ctor forbids FB-then-PR).
    } else {
      // FB tightening. Adaptive line search over alpha in [0, 1] (Thm 5.1)
      // when no fixed alpha was configured: probe a short unroll per
      // candidate and keep the best margin.
      if (Alpha2 < 0.0) {
        static const double Candidates[] = {0.01, 0.02, 0.03, 0.05,
                                            0.08, 0.12, 0.2,  0.35};
        double BestProbe = -1e300;
        for (double Cand : Candidates) {
          if (Config.Control.stopRequested())
            break;
          AbstractSolver Probe(Model, Splitting::ForwardBackward, Cand, X);
          MarginTracker Track =
              runPhase2(Probe, SEntry, 1.0, /*MaxSteps=*/6);
          if (Track.best() > BestProbe) {
            BestProbe = Track.best();
            Alpha2 = Cand;
          }
        }
      }
      Solver2Storage = std::make_unique<AbstractSolver>(
          Model, Splitting::ForwardBackward, Alpha2, X);
      Solver2 = Solver2Storage.get();
    }
    Res.ChosenAlpha2 = Alpha2;

    MarginTracker Main = runPhase2(
        *Solver2, SEntry, 1.0,
        std::min(Config.MaxIterations, Config.Phase2MaxIterations));
    if (Main.best() > Res.BestMargin) {
      Res.BestMargin = Main.best();
      Res.FixpointHull = Main.bestHull();
    }
    Res.Certified = Main.certified();

    // Lambda optimization (App. C): only for samples close to
    // certification.
    if (!Res.Certified && Config.LambdaOptLevel > 0 &&
        Res.BestMargin > -Config.LambdaOptMarginWindow) {
      std::vector<double> Scales =
          Config.LambdaOptLevel >= 2
              ? std::vector<double>{0.8, 0.9, 0.95, 1.05, 1.1, 1.25}
              : std::vector<double>{0.9, 1.1};
      int Steps = Config.LambdaOptLevel >= 2 ? 40 : 20;
      for (double Scale : Scales) {
        if (Config.Control.stopRequested())
          break;
        MarginTracker Track = runPhase2(*Solver2, SEntry, Scale, Steps);
        if (Track.best() > Res.BestMargin) {
          Res.BestMargin = Track.best();
          Res.FixpointHull = Track.bestHull();
        }
        if (Track.certified()) {
          Res.Certified = true;
          break;
        }
      }
    }

    Res.TimeSeconds = Timer.seconds();
    return Res;
  }
}
