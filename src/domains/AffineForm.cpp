//===- domains/AffineForm.cpp ---------------------------------------------===//

#include "domains/AffineForm.h"

#include "domains/CHZonotope.h" // freshErrorTermId

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace craft;

AffineForm AffineForm::constant(double Value) {
  AffineForm F;
  F.Center = Value;
  return F;
}

AffineForm AffineForm::range(double Lo, double Hi) {
  assert(Lo <= Hi && "empty range");
  AffineForm F;
  F.Center = 0.5 * (Lo + Hi);
  if (Hi > Lo)
    F.Terms.push_back({freshErrorTermId(), 0.5 * (Hi - Lo)});
  return F;
}

double AffineForm::radius() const {
  double R = 0.0;
  for (const auto &[Id, Coef] : Terms)
    R += std::fabs(Coef);
  return R;
}

std::pair<double, double> AffineForm::evalPartial(
    const std::vector<std::pair<uint64_t, double>> &Fixed) const {
  double Value = Center;
  double FreeRadius = 0.0;
  for (const auto &[Id, Coef] : Terms) {
    auto Hit = std::find_if(Fixed.begin(), Fixed.end(),
                            [Id = Id](const auto &P) { return P.first == Id; });
    if (Hit == Fixed.end())
      FreeRadius += std::fabs(Coef);
    else
      Value += Coef * Hit->second;
  }
  return {Value - FreeRadius, Value + FreeRadius};
}

/// Merges two sorted term lists, scaling the coefficients.
static std::vector<std::pair<uint64_t, double>>
mergeTerms(const std::vector<std::pair<uint64_t, double>> &A,
           const std::vector<std::pair<uint64_t, double>> &B, double ScaleA,
           double ScaleB) {
  std::vector<std::pair<uint64_t, double>> Out;
  Out.reserve(A.size() + B.size());
  size_t I = 0, J = 0;
  while (I < A.size() || J < B.size()) {
    if (J == B.size() || (I < A.size() && A[I].first < B[J].first)) {
      Out.push_back({A[I].first, ScaleA * A[I].second});
      ++I;
    } else if (I == A.size() || B[J].first < A[I].first) {
      Out.push_back({B[J].first, ScaleB * B[J].second});
      ++J;
    } else {
      double Coef = ScaleA * A[I].second + ScaleB * B[J].second;
      if (Coef != 0.0)
        Out.push_back({A[I].first, Coef});
      ++I;
      ++J;
    }
  }
  return Out;
}

AffineForm AffineForm::operator+(const AffineForm &Rhs) const {
  AffineForm F;
  F.Center = Center + Rhs.Center;
  F.Terms = mergeTerms(Terms, Rhs.Terms, 1.0, 1.0);
  return F;
}

AffineForm AffineForm::operator-(const AffineForm &Rhs) const {
  AffineForm F;
  F.Center = Center - Rhs.Center;
  F.Terms = mergeTerms(Terms, Rhs.Terms, 1.0, -1.0);
  return F;
}

AffineForm AffineForm::operator*(double Scale) const {
  AffineForm F;
  F.Center = Scale * Center;
  F.Terms = Terms;
  for (auto &[Id, Coef] : F.Terms)
    Coef *= Scale;
  return F;
}

AffineForm AffineForm::operator+(double Offset) const {
  AffineForm F = *this;
  F.Center += Offset;
  return F;
}

AffineForm AffineForm::operator*(const AffineForm &Rhs) const {
  // Affine-arithmetic product with the refined quadratic remainder: shared
  // symbols contribute a_i b_i e_i^2 with e_i^2 in [0, 1], so the diagonal
  // part is recentered to d/2 +- |d|/2 instead of the naive +-|a_i b_i|
  // (Stolfi & de Figueiredo). The remainder becomes a fresh *tracked*
  // symbol (see the class comment for why tracking matters).
  AffineForm F;
  F.Center = Center * Rhs.Center;
  F.Terms = mergeTerms(Terms, Rhs.Terms, Rhs.Center, Center);

  double Diag = 0.0, DiagAbs = 0.0;
  {
    size_t I = 0, J = 0;
    while (I < Terms.size() && J < Rhs.Terms.size()) {
      if (Terms[I].first < Rhs.Terms[J].first) {
        ++I;
      } else if (Rhs.Terms[J].first < Terms[I].first) {
        ++J;
      } else {
        double Prod = Terms[I].second * Rhs.Terms[J].second;
        Diag += Prod;
        DiagAbs += std::fabs(Prod);
        ++I;
        ++J;
      }
    }
  }
  // Diagonal range [sum min(0, a_i b_i), sum max(0, a_i b_i)] recentered:
  // halfwidth DiagAbs / 2 around Diag / 2.
  double OffDiag = radius() * Rhs.radius() - DiagAbs;
  F.Center += 0.5 * Diag;
  double Remainder = 0.5 * DiagAbs + std::max(OffDiag, 0.0);
  if (Remainder > 0.0)
    F.Terms.push_back({freshErrorTermId(), Remainder});
  return F;
}

AffineForm AffineForm::square() const {
  // x^2 = c^2 + 2c (x - c) + (x - c)^2 with (x - c)^2 in [0, r^2]:
  // recentering the remainder halves the error versus the generic product.
  AffineForm F = *this * (2.0 * Center);
  F.Center -= Center * Center;
  double R = radius();
  if (R > 0.0) {
    F.Center += 0.5 * R * R;
    F.Terms.push_back({freshErrorTermId(), 0.5 * R * R});
  }
  return F;
}

AffineForm AffineForm::linearized(double Alpha, double Zeta,
                                  double Delta) const {
  AffineForm F = *this * Alpha;
  F += Zeta;
  // Tiny relative inflation absorbs the rounding of the linearization
  // formulas themselves (this layer is not the rigorous directed-rounding
  // one; see cert/Checker for that).
  Delta = Delta * (1.0 + 1e-12) + 1e-15;
  F.Terms.push_back({freshErrorTermId(), Delta});
  return F;
}

namespace {

/// Chebyshev band for a convex-or-concave f on [L, U]: with the secant
/// slope Alpha, g(x) = f(x) - Alpha x attains its extremes at the endpoints
/// (equal by choice of Alpha) and at the unique tangent point XStar.
struct ChebBand {
  double Alpha;
  double Zeta;
  double Delta;
};

ChebBand chebBand(double L, double U, double FL, double FU, double XStar,
                  double FStar) {
  double Alpha = (FU - FL) / (U - L);
  double GEnd = FL - Alpha * L;
  double GStar = FStar - Alpha * XStar;
  double GMin = std::min(GEnd, GStar);
  double GMax = std::max(GEnd, GStar);
  return {Alpha, 0.5 * (GMin + GMax), 0.5 * (GMax - GMin)};
}

} // namespace

AffineForm AffineForm::reciprocal() const {
  double L = lo(), U = hi();
  assert((L > 0.0 || U < 0.0) && "reciprocal needs a sign-definite range");
  if (U < 0.0) // 1/x = -(1/(-x)).
    return (*this * -1.0).reciprocal() * -1.0;
  if (U - L < 1e-12) {
    double Mid = 0.5 * (1.0 / L + 1.0 / U);
    return linearized(0.0, Mid, 0.5 * std::fabs(1.0 / L - 1.0 / U));
  }
  // Convex on x > 0; tangent slope -1/x*^2 = Alpha at x* = sqrt(L U).
  double XStar = std::sqrt(L * U);
  ChebBand B = chebBand(L, U, 1.0 / L, 1.0 / U, XStar, 1.0 / XStar);
  return linearized(B.Alpha, B.Zeta, B.Delta);
}

AffineForm AffineForm::sqrt() const {
  double L = lo(), U = hi();
  assert(L >= -1e-12 && "sqrt needs a nonnegative range");
  L = std::max(L, 0.0);
  if (U - L < 1e-12) {
    double Mid = 0.5 * (std::sqrt(L) + std::sqrt(U));
    return linearized(0.0, Mid, 0.5 * (std::sqrt(U) - std::sqrt(L)));
  }
  // Concave; f'(x*) = 1/(2 sqrt(x*)) = Alpha at x* = ((sqrt L + sqrt U)/2)^2.
  double SL = std::sqrt(L), SU = std::sqrt(U);
  double XStar = 0.25 * (SL + SU) * (SL + SU);
  ChebBand B = chebBand(L, U, SL, SU, XStar, std::sqrt(XStar));
  return linearized(B.Alpha, B.Zeta, B.Delta);
}

AffineForm AffineForm::exp() const {
  double L = lo(), U = hi();
  if (U - L < 1e-12) {
    double Mid = 0.5 * (std::exp(L) + std::exp(U));
    return linearized(0.0, Mid, 0.5 * (std::exp(U) - std::exp(L)));
  }
  double FL = std::exp(L), FU = std::exp(U);
  double Alpha = (FU - FL) / (U - L);
  double XStar = std::log(Alpha); // Convex; f' = exp.
  ChebBand B = chebBand(L, U, FL, FU, XStar, Alpha);
  return linearized(B.Alpha, B.Zeta, B.Delta);
}

AffineForm AffineForm::log() const {
  double L = lo(), U = hi();
  assert(L > 0.0 && "log needs a positive range");
  if (U - L < 1e-12) {
    double Mid = 0.5 * (std::log(L) + std::log(U));
    return linearized(0.0, Mid, 0.5 * (std::log(U) - std::log(L)));
  }
  double FL = std::log(L), FU = std::log(U);
  double Alpha = (FU - FL) / (U - L);
  double XStar = 1.0 / Alpha; // Concave; f' = 1/x.
  ChebBand B = chebBand(L, U, FL, FU, XStar, std::log(XStar));
  return linearized(B.Alpha, B.Zeta, B.Delta);
}

namespace {

/// Min-range linearization for an S-shaped f (convex below 0, concave
/// above, derivative unimodal with its maximum at 0): with the slope
/// Alpha = min(f'(L), f'(U)), g = f - Alpha x is non-decreasing on [L, U],
/// so its extremes sit at the endpoints. This is the DeepZ zonotope
/// transformer of Singh et al. 2018 for sigmoid/tanh.
AffineForm minRangeSShaped(const AffineForm &X, double (*F)(double),
                           double (*DF)(double)) {
  double L = X.lo(), U = X.hi();
  double FL = F(L), FU = F(U);
  if (U - L < 1e-12) {
    AffineForm Out = X * 0.0;
    Out += 0.5 * (FL + FU);
    return Out.widened(0.5 * std::fabs(FU - FL) + 1e-15);
  }
  double Alpha = std::min(DF(L), DF(U));
  double GMin = FL - Alpha * L;
  double GMax = FU - Alpha * U;
  AffineForm Out = X * Alpha;
  Out += 0.5 * (GMin + GMax);
  return Out.widened(0.5 * (GMax - GMin) * (1.0 + 1e-12) + 1e-15);
}

double tanhF(double X) { return std::tanh(X); }
double tanhDF(double X) {
  double T = std::tanh(X);
  return 1.0 - T * T;
}
double sigmoidF(double X) { return 1.0 / (1.0 + std::exp(-X)); }
double sigmoidDF(double X) {
  double S = sigmoidF(X);
  return S * (1.0 - S);
}

constexpr double Pi = 3.14159265358979323846;

} // namespace

AffineForm AffineForm::tanh() const {
  return minRangeSShaped(*this, tanhF, tanhDF);
}

AffineForm AffineForm::sigmoid() const {
  return minRangeSShaped(*this, sigmoidF, sigmoidDF);
}

AffineForm AffineForm::cos() const {
  double L = lo(), U = hi();
  // Secant slope unless the input is so wide the secant is meaningless.
  double Alpha = 0.0;
  if (U - L > 1e-12 && U - L < 4.0 * Pi)
    Alpha = (std::cos(U) - std::cos(L)) / (U - L);

  // Extremes of g(x) = cos x - Alpha x on [L, U]: endpoints plus interior
  // critical points sin x = -Alpha (enumerated exactly per 2 pi period).
  double GMin = std::min(std::cos(L) - Alpha * L, std::cos(U) - Alpha * U);
  double GMax = std::max(std::cos(L) - Alpha * L, std::cos(U) - Alpha * U);
  auto visit = [&](double X) {
    if (X < L || X > U)
      return;
    double G = std::cos(X) - Alpha * X;
    GMin = std::min(GMin, G);
    GMax = std::max(GMax, G);
  };
  if (std::fabs(Alpha) <= 1.0) {
    double Base = std::asin(-Alpha);
    // Candidate families Base + 2 pi k and (pi - Base) + 2 pi k.
    for (double Root : {Base, Pi - Base}) {
      double KLo = std::floor((L - Root) / (2.0 * Pi)) - 1.0;
      double KHi = std::ceil((U - Root) / (2.0 * Pi)) + 1.0;
      for (double K = KLo; K <= KHi; K += 1.0)
        visit(Root + 2.0 * Pi * K);
    }
  }
  return linearized(Alpha, 0.5 * (GMin + GMax), 0.5 * (GMax - GMin));
}

AffineForm AffineForm::sin() const {
  // sin(x) = cos(x - pi/2); the shift is exact in affine arithmetic.
  return (*this + (-Pi / 2.0)).cos();
}

AffineForm AffineForm::operator/(const AffineForm &Rhs) const {
  return *this * Rhs.reciprocal();
}

AffineForm AffineForm::widened(double Delta) const {
  assert(Delta >= 0.0 && "widening must enlarge");
  AffineForm F = *this;
  if (Delta > 0.0)
    F.Terms.push_back({freshErrorTermId(), Delta});
  return F;
}

bool AffineForm::containsRelational(const AffineForm &Inner,
                                    const std::vector<uint64_t> &SliceIds,
                                    double Tol) const {
  assert(std::is_sorted(SliceIds.begin(), SliceIds.end()) &&
         "slice ids must be sorted");
  auto isSliced = [&](uint64_t Id) {
    return std::binary_search(SliceIds.begin(), SliceIds.end(), Id);
  };
  // Sliced coefficients of both sides, non-sliced mass into the radii.
  double Need = std::fabs(Inner.Center - Center);
  double OuterFree = 0.0, InnerFree = 0.0;
  size_t I = 0, J = 0;
  while (I < Terms.size() || J < Inner.Terms.size()) {
    if (J == Inner.Terms.size() ||
        (I < Terms.size() && Terms[I].first < Inner.Terms[J].first)) {
      if (isSliced(Terms[I].first))
        Need += std::fabs(Terms[I].second);
      else
        OuterFree += std::fabs(Terms[I].second);
      ++I;
    } else if (I == Terms.size() ||
               Inner.Terms[J].first < Terms[I].first) {
      if (isSliced(Inner.Terms[J].first))
        Need += std::fabs(Inner.Terms[J].second);
      else
        InnerFree += std::fabs(Inner.Terms[J].second);
      ++J;
    } else {
      // Shared id: sliced symbols compare coefficients; a shared non-sliced
      // symbol is still treated as independent between the two sides, which
      // is exact for the per-slice *set* semantics (the outer's symbols are
      // existentially quantified, the inner's universally).
      if (isSliced(Terms[I].first))
        Need += std::fabs(Inner.Terms[J].second - Terms[I].second);
      else {
        OuterFree += std::fabs(Terms[I].second);
        InnerFree += std::fabs(Inner.Terms[J].second);
      }
      ++I;
      ++J;
    }
  }
  return Need + InnerFree <= OuterFree + Tol;
}

AffineForm AffineForm::consolidated(double Expand) const {
  assert(Expand >= 0.0 && "expansion must enlarge");
  return AffineForm::range(lo() - Expand, hi() + Expand);
}

AffineForm AffineForm::join(const AffineForm &A, const AffineForm &B) {
  AffineForm F;
  F.Center = 0.5 * (A.Center + B.Center);
  F.Terms = mergeTerms(A.Terms, B.Terms, 0.5, 0.5);

  // Residual bound per operand: |c - c'| + sum |a_i - a'_i| over the joined
  // list (terms absent from the operand count in full).
  auto residual = [&](const AffineForm &Op) {
    double R = std::fabs(Op.Center - F.Center);
    size_t I = 0;
    for (const auto &[Id, Coef] : F.Terms) {
      while (I < Op.Terms.size() && Op.Terms[I].first < Id) {
        R += std::fabs(Op.Terms[I].second); // Term joined away entirely.
        ++I;
      }
      if (I < Op.Terms.size() && Op.Terms[I].first == Id) {
        R += std::fabs(Op.Terms[I].second - Coef);
        ++I;
      } else {
        R += std::fabs(Coef);
      }
    }
    while (I < Op.Terms.size()) {
      R += std::fabs(Op.Terms[I].second);
      ++I;
    }
    return R;
  };
  double Residual = std::max(residual(A), residual(B));
  if (Residual > 0.0)
    F.Terms.push_back({freshErrorTermId(), Residual});
  return F;
}
