//===- linalg/Lu.h - LU decomposition with partial pivoting -----*- C++ -*-===//
//
// Part of the Craft reproduction (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LU decomposition with partial pivoting. Used for the CH-Zonotope
/// containment check (A^{-1}A' in Thm 4.2), for the Peaceman-Rachford solve
/// step (I + alpha (I - W))^{-1}, and for implicit-function-theorem gradients
/// in PGD / training.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFT_LINALG_LU_H
#define CRAFT_LINALG_LU_H

#include "linalg/Matrix.h"

namespace craft {

/// LU factorization PA = LU of a square matrix with partial pivoting.
/// The factorization is computed once; solves against vectors and matrices
/// reuse it.
class LuDecomposition {
public:
  /// Factorizes \p A. \p A must be square.
  explicit LuDecomposition(const Matrix &A);

  /// True if a zero (or numerically negligible) pivot was encountered.
  bool isSingular() const { return Singular; }

  size_t dim() const { return Factors.rows(); }

  /// Solves A x = b. Asserts that the matrix is non-singular.
  Vector solve(const Vector &B) const;

  /// Solves A X = B column-by-column.
  Matrix solve(const Matrix &B) const;

  /// A^{-1} (solve against the identity).
  Matrix inverse() const;

  /// det(A), including the pivoting sign.
  double determinant() const;

private:
  Matrix Factors;          ///< Combined L (unit diagonal) and U factors.
  std::vector<int> Pivots; ///< Row permutation.
  bool Singular = false;
  int PermutationSign = 1;
};

} // namespace craft

#endif // CRAFT_LINALG_LU_H
