//===- tests/test_activations.cpp - Smooth activation transformers --------===//
//
// Tests for the App. B.6 extension: sound sigmoid/tanh relaxations and the
// corresponding CH-Zonotope transformers. Soundness is checked exhaustively
// on dense input grids and on sampled zonotope points.
//
//===----------------------------------------------------------------------===//

#include "domains/Activations.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace craft;

namespace {

/// Random CH-Zonotope helper (mirrors test_domains).
CHZonotope randomZonotope(Rng &R, size_t P, size_t K) {
  Vector Center(P);
  Matrix Gens(P, K);
  std::vector<uint64_t> Ids(K);
  for (size_t I = 0; I < P; ++I)
    Center[I] = R.gaussian(0.0, 1.5);
  for (size_t I = 0; I < P; ++I)
    for (size_t J = 0; J < K; ++J)
      Gens(I, J) = R.gaussian(0.0, 0.5);
  for (auto &Id : Ids)
    Id = freshErrorTermId();
  return CHZonotope(Center, Gens, Ids, Vector(P, 0.1));
}

TEST(ActivationScalarTest, KnownValues) {
  EXPECT_NEAR(evalActivation(SmoothActivation::Sigmoid, 0.0), 0.5, 1e-15);
  EXPECT_NEAR(evalActivation(SmoothActivation::Tanh, 0.0), 0.0, 1e-15);
  EXPECT_NEAR(evalActivationDerivative(SmoothActivation::Sigmoid, 0.0), 0.25,
              1e-15);
  EXPECT_NEAR(evalActivationDerivative(SmoothActivation::Tanh, 0.0), 1.0,
              1e-15);
  // Saturation.
  EXPECT_GT(evalActivation(SmoothActivation::Sigmoid, 20.0), 0.999999);
  EXPECT_LT(evalActivation(SmoothActivation::Tanh, -20.0), -0.999999);
}

struct RelaxCase {
  SmoothActivation Act;
  double Lo, Hi;
};

class RelaxationSoundnessTest : public ::testing::TestWithParam<RelaxCase> {};

TEST_P(RelaxationSoundnessTest, LinesSandwichTheFunction) {
  const RelaxCase &C = GetParam();
  ActivationRelaxation R = relaxActivation(C.Act, C.Lo, C.Hi);
  EXPECT_LE(R.OffsetLo, R.OffsetHi);
  // Dense grid: f(x) in Lambda x + [OffsetLo, OffsetHi].
  const int Steps = 400;
  for (int S = 0; S <= Steps; ++S) {
    double X = C.Lo + (C.Hi - C.Lo) * S / Steps;
    double F = evalActivation(C.Act, X);
    EXPECT_GE(F, R.Lambda * X + R.OffsetLo - 1e-10) << "x = " << X;
    EXPECT_LE(F, R.Lambda * X + R.OffsetHi + 1e-10) << "x = " << X;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Intervals, RelaxationSoundnessTest,
    ::testing::Values(RelaxCase{SmoothActivation::Sigmoid, -1.0, 1.0},
                      RelaxCase{SmoothActivation::Sigmoid, -5.0, -1.0},
                      RelaxCase{SmoothActivation::Sigmoid, 0.5, 6.0},
                      RelaxCase{SmoothActivation::Sigmoid, -8.0, 8.0},
                      RelaxCase{SmoothActivation::Tanh, -0.5, 0.5},
                      RelaxCase{SmoothActivation::Tanh, -4.0, -0.5},
                      RelaxCase{SmoothActivation::Tanh, 0.1, 3.0},
                      RelaxCase{SmoothActivation::Tanh, -6.0, 6.0}));

TEST(RelaxationTest, DegenerateIntervalIsExact) {
  for (SmoothActivation Act :
       {SmoothActivation::Sigmoid, SmoothActivation::Tanh}) {
    ActivationRelaxation R = relaxActivation(Act, 0.7, 0.7);
    EXPECT_NEAR(R.Lambda * 0.7 + R.OffsetLo, evalActivation(Act, 0.7),
                1e-12);
    EXPECT_NEAR(R.OffsetHi, R.OffsetLo, 1e-12);
  }
}

TEST(RelaxationTest, TightOnMonotoneRegions) {
  // On an interval where f is nearly linear, the relaxation is thin.
  ActivationRelaxation R =
      relaxActivation(SmoothActivation::Tanh, -0.05, 0.05);
  EXPECT_LT(R.OffsetHi - R.OffsetLo, 1e-4);
}

class TransformerSoundnessTest : public ::testing::TestWithParam<int> {};

TEST_P(TransformerSoundnessTest, SampledPointsStayInsideHull) {
  Rng R(1000 + GetParam());
  SmoothActivation Act = GetParam() % 2 == 0 ? SmoothActivation::Sigmoid
                                             : SmoothActivation::Tanh;
  CHZonotope Z = randomZonotope(R, 4, 6);
  CHZonotope Y = applyActivationPrefix(Z, Act, 3); // Dim 3 passes through.

  for (int Trial = 0; Trial < 80; ++Trial) {
    Vector Nu(Z.numGenerators());
    for (double &V : Nu)
      V = R.uniform(-1.0, 1.0);
    Vector X = Z.center() + Z.generators() * Nu;
    for (size_t I = 0; I < 4; ++I)
      X[I] += Z.boxRadius()[I] * R.uniform(-1.0, 1.0);
    for (size_t I = 0; I < 3; ++I) {
      double F = evalActivation(Act, X[I]);
      EXPECT_LE(F, Y.upperBounds()[I] + 1e-9);
      EXPECT_GE(F, Y.lowerBounds()[I] - 1e-9);
    }
    // Pass-through dimension is untouched.
    EXPECT_LE(X[3], Y.upperBounds()[3] + 1e-9);
    EXPECT_GE(X[3], Y.lowerBounds()[3] - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransformerSoundnessTest,
                         ::testing::Range(0, 10));

TEST(TransformerTest, OutputStaysInActivationRange) {
  Rng R(1100);
  CHZonotope Z = randomZonotope(R, 3, 5);
  CHZonotope Sig = applyActivationPrefix(Z, SmoothActivation::Sigmoid, 3);
  CHZonotope Tan = applyActivationPrefix(Z, SmoothActivation::Tanh, 3);
  for (size_t I = 0; I < 3; ++I) {
    // Linear relaxations overshoot the saturation range on wide inputs
    // (the secant line extends past f's asymptotes); the hull must still
    // stay within a small multiple of it.
    EXPECT_GE(Sig.lowerBounds()[I], -1.0);
    EXPECT_LE(Sig.upperBounds()[I], 2.0);
    EXPECT_GE(Tan.lowerBounds()[I], -2.5);
    EXPECT_LE(Tan.upperBounds()[I], 2.5);
  }
}

TEST(TransformerTest, GeneratorCountPreserved) {
  // Like the ReLU transformer, relaxation error goes to the Box component:
  // no new generator columns (the CH-Zonotope size invariant).
  Rng R(1101);
  CHZonotope Z = randomZonotope(R, 4, 7);
  CHZonotope Y = applyActivationPrefix(Z, SmoothActivation::Sigmoid, 4);
  EXPECT_EQ(Y.numGenerators(), Z.numGenerators());
}

} // namespace
