//===- support/MpmcQueue.h - Bounded MPMC queue -----------------*- C++ -*-===//
//
// Part of the Craft reproduction (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded multi-producer/multi-consumer FIFO queue: the admission queue
/// of the serve scheduler. `push` blocks while the queue is full — that
/// back-pressure is the serve layer's admission control, so a burst of
/// clients queues up instead of oversubscribing the verification pool —
/// and `pop` blocks while it is empty. `close` wakes everyone: producers
/// fail fast, consumers drain what is left and then see end-of-stream.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFT_SUPPORT_MPMCQUEUE_H
#define CRAFT_SUPPORT_MPMCQUEUE_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace craft {

/// Bounded blocking FIFO. All members are thread-safe.
template <typename T> class MpmcQueue {
public:
  /// \p Capacity must be >= 1 (a zero capacity would deadlock every push).
  explicit MpmcQueue(size_t Capacity)
      : Capacity(Capacity < 1 ? 1 : Capacity) {}

  MpmcQueue(const MpmcQueue &) = delete;
  MpmcQueue &operator=(const MpmcQueue &) = delete;

  /// Blocks until there is room, then enqueues \p Item. Returns false if
  /// the queue was closed before room appeared — in that case \p Item is
  /// NOT moved from, so the caller keeps ownership (the serve scheduler
  /// relies on this to unwind a job that raced shutdown).
  bool push(T &&Item) {
    std::unique_lock<std::mutex> Lock(Mutex);
    NotFull.wait(Lock,
                 [this] { return Closed || Items.size() < Capacity; });
    if (Closed)
      return false;
    Items.push_back(std::move(Item));
    Lock.unlock();
    NotEmpty.notify_one();
    return true;
  }

  /// Blocks until an item is available and dequeues it. Returns nullopt
  /// once the queue is closed and fully drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> Lock(Mutex);
    NotEmpty.wait(Lock, [this] { return Closed || !Items.empty(); });
    if (Items.empty())
      return std::nullopt;
    T Item = std::move(Items.front());
    Items.pop_front();
    Lock.unlock();
    NotFull.notify_one();
    return Item;
  }

  /// Enqueues without blocking. Returns false when the queue is full or
  /// closed — \p Item is NOT moved from in either case, so the caller
  /// keeps ownership (the load-shedding admission path relies on this to
  /// answer Overloaded with the job intact).
  bool tryPush(T &&Item) {
    std::unique_lock<std::mutex> Lock(Mutex);
    if (Closed || Items.size() >= Capacity)
      return false;
    Items.push_back(std::move(Item));
    Lock.unlock();
    NotEmpty.notify_one();
    return true;
  }

  /// Dequeues without blocking. Returns false when the queue is empty.
  bool tryPop(T &Out) {
    std::unique_lock<std::mutex> Lock(Mutex);
    if (Items.empty())
      return false;
    Out = std::move(Items.front());
    Items.pop_front();
    Lock.unlock();
    NotFull.notify_one();
    return true;
  }

  /// Ends the stream: subsequent pushes fail, pops drain the remaining
  /// items and then return nullopt. Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Closed = true;
    }
    NotEmpty.notify_all();
    NotFull.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Closed;
  }

  size_t size() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Items.size();
  }

private:
  const size_t Capacity;
  mutable std::mutex Mutex;
  std::condition_variable NotEmpty, NotFull;
  std::deque<T> Items;
  bool Closed = false;
};

} // namespace craft

#endif // CRAFT_SUPPORT_MPMCQUEUE_H
