//===- linalg/Matrix.cpp --------------------------------------------------===//

#include "linalg/Matrix.h"

#include "linalg/Kernels.h"

#include <algorithm>
#include <cmath>

using namespace craft;

//===----------------------------------------------------------------------===//
// Vector
//===----------------------------------------------------------------------===//

Vector &Vector::operator+=(const Vector &Rhs) {
  assert(size() == Rhs.size() && "vector size mismatch");
  for (size_t I = 0, E = size(); I < E; ++I)
    Data[I] += Rhs.Data[I];
  return *this;
}

Vector &Vector::operator-=(const Vector &Rhs) {
  assert(size() == Rhs.size() && "vector size mismatch");
  for (size_t I = 0, E = size(); I < E; ++I)
    Data[I] -= Rhs.Data[I];
  return *this;
}

Vector &Vector::operator*=(double Scale) {
  for (double &V : Data)
    V *= Scale;
  return *this;
}

double Vector::normInf() const {
  double Max = 0.0;
  for (double V : Data)
    Max = std::max(Max, std::fabs(V));
  return Max;
}

double Vector::norm2() const {
  double Sum = 0.0;
  for (double V : Data)
    Sum += V * V;
  return std::sqrt(Sum);
}

double Vector::norm1() const {
  double Sum = 0.0;
  for (double V : Data)
    Sum += std::fabs(V);
  return Sum;
}

Vector Vector::abs() const {
  Vector Out(size());
  for (size_t I = 0, E = size(); I < E; ++I)
    Out[I] = std::fabs(Data[I]);
  return Out;
}

Vector Vector::cwiseMax(double Floor) const {
  Vector Out(size());
  for (size_t I = 0, E = size(); I < E; ++I)
    Out[I] = std::max(Data[I], Floor);
  return Out;
}

Vector craft::operator+(Vector Lhs, const Vector &Rhs) {
  Lhs += Rhs;
  return Lhs;
}

Vector craft::operator-(Vector Lhs, const Vector &Rhs) {
  Lhs -= Rhs;
  return Lhs;
}

Vector craft::operator*(double Scale, Vector V) {
  V *= Scale;
  return V;
}

double craft::dot(const Vector &A, const Vector &B) {
  assert(A.size() == B.size() && "vector size mismatch");
  double Sum = 0.0;
  for (size_t I = 0, E = A.size(); I < E; ++I)
    Sum += A[I] * B[I];
  return Sum;
}

Vector craft::cwiseMax(const Vector &A, const Vector &B) {
  assert(A.size() == B.size() && "vector size mismatch");
  Vector Out(A.size());
  for (size_t I = 0, E = A.size(); I < E; ++I)
    Out[I] = std::max(A[I], B[I]);
  return Out;
}

Vector craft::cwiseMin(const Vector &A, const Vector &B) {
  assert(A.size() == B.size() && "vector size mismatch");
  Vector Out(A.size());
  for (size_t I = 0, E = A.size(); I < E; ++I)
    Out[I] = std::min(A[I], B[I]);
  return Out;
}

Vector craft::cwiseProduct(const Vector &A, const Vector &B) {
  assert(A.size() == B.size() && "vector size mismatch");
  Vector Out(A.size());
  for (size_t I = 0, E = A.size(); I < E; ++I)
    Out[I] = A[I] * B[I];
  return Out;
}

//===----------------------------------------------------------------------===//
// Matrix
//===----------------------------------------------------------------------===//

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> Init) {
  NumRows = Init.size();
  NumCols = NumRows == 0 ? 0 : Init.begin()->size();
  Data.reserve(NumRows * NumCols);
  for (const auto &Row : Init) {
    assert(Row.size() == NumCols && "ragged initializer list");
    Data.insert(Data.end(), Row.begin(), Row.end());
  }
}

Matrix Matrix::identity(size_t N) {
  Matrix I(N, N);
  for (size_t K = 0; K < N; ++K)
    I(K, K) = 1.0;
  return I;
}

Matrix Matrix::diagonal(const Vector &Diag) {
  Matrix D(Diag.size(), Diag.size());
  for (size_t K = 0, E = Diag.size(); K < E; ++K)
    D(K, K) = Diag[K];
  return D;
}

Matrix Matrix::hcat(const Matrix &A, const Matrix &B) {
  if (A.cols() == 0 && A.rows() == 0)
    return B;
  if (B.cols() == 0 && B.rows() == 0)
    return A;
  assert(A.rows() == B.rows() && "hcat row mismatch");
  Matrix Out(A.rows(), A.cols() + B.cols());
  for (size_t R = 0; R < A.rows(); ++R) {
    double *Dst = Out.rowData(R);
    std::copy(A.rowData(R), A.rowData(R) + A.cols(), Dst);
    std::copy(B.rowData(R), B.rowData(R) + B.cols(), Dst + A.cols());
  }
  return Out;
}

Matrix &Matrix::operator+=(const Matrix &Rhs) {
  assert(NumRows == Rhs.NumRows && NumCols == Rhs.NumCols && "shape mismatch");
  for (size_t I = 0, E = Data.size(); I < E; ++I)
    Data[I] += Rhs.Data[I];
  return *this;
}

Matrix &Matrix::operator-=(const Matrix &Rhs) {
  assert(NumRows == Rhs.NumRows && NumCols == Rhs.NumCols && "shape mismatch");
  for (size_t I = 0, E = Data.size(); I < E; ++I)
    Data[I] -= Rhs.Data[I];
  return *this;
}

Matrix &Matrix::operator*=(double Scale) {
  for (double &V : Data)
    V *= Scale;
  return *this;
}

Matrix Matrix::transpose() const {
  Matrix Out(NumCols, NumRows);
  kernels::transposeInto(Out, *this);
  return Out;
}

Matrix Matrix::abs() const {
  Matrix Out(NumRows, NumCols);
  for (size_t I = 0, E = Data.size(); I < E; ++I)
    Out.Data[I] = std::fabs(Data[I]);
  return Out;
}

Vector Matrix::row(size_t R) const {
  assert(R < NumRows && "row index out of range");
  Vector Out(NumCols);
  std::copy(rowData(R), rowData(R) + NumCols, Out.data());
  return Out;
}

Vector Matrix::col(size_t C) const {
  assert(C < NumCols && "column index out of range");
  Vector Out(NumRows);
  for (size_t R = 0; R < NumRows; ++R)
    Out[R] = (*this)(R, C);
  return Out;
}

void Matrix::setRow(size_t R, const Vector &V) {
  assert(V.size() == NumCols && "row size mismatch");
  std::copy(V.data(), V.data() + NumCols, rowData(R));
}

void Matrix::setCol(size_t C, const Vector &V) {
  assert(V.size() == NumRows && "column size mismatch");
  for (size_t R = 0; R < NumRows; ++R)
    (*this)(R, C) = V[R];
}

Matrix Matrix::colRange(size_t First, size_t Count) const {
  assert(First + Count <= NumCols && "column range out of bounds");
  Matrix Out(NumRows, Count);
  for (size_t R = 0; R < NumRows; ++R)
    std::copy(rowData(R) + First, rowData(R) + First + Count, Out.rowData(R));
  return Out;
}

Vector Matrix::rowAbsSums() const {
  Vector Out(NumRows);
  kernels::rowAbsSumsInto(Out, *this);
  return Out;
}

double Matrix::maxAbs() const {
  double Max = 0.0;
  for (double V : Data)
    Max = std::max(Max, std::fabs(V));
  return Max;
}

Matrix craft::operator+(Matrix Lhs, const Matrix &Rhs) {
  Lhs += Rhs;
  return Lhs;
}

Matrix craft::operator-(Matrix Lhs, const Matrix &Rhs) {
  Lhs -= Rhs;
  return Lhs;
}

Matrix craft::operator*(double Scale, Matrix M) {
  M *= Scale;
  return M;
}

Matrix craft::operator*(const Matrix &A, const Matrix &B) {
  assert(A.cols() == B.rows() && "matmul shape mismatch");
  // Dense by default: the per-element zero-skip this once carried belongs
  // only in the explicit sparse-aware kernel (kernels::gemmSparseAware) —
  // on dense data the branch costs more than the multiply.
  Matrix Out(A.rows(), B.cols());
  kernels::gemm(Out, A, B);
  return Out;
}

Vector craft::operator*(const Matrix &M, const Vector &V) {
  assert(M.cols() == V.size() && "matvec shape mismatch");
  Vector Out(M.rows());
  kernels::gemv(Out, M, V);
  return Out;
}

double craft::frobeniusNorm(const Matrix &M) {
  double Sum = 0.0;
  for (size_t R = 0; R < M.rows(); ++R) {
    const double *Row = M.rowData(R);
    for (size_t C = 0; C < M.cols(); ++C)
      Sum += Row[C] * Row[C];
  }
  return std::sqrt(Sum);
}
