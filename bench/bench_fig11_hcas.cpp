//===- bench/bench_fig11_hcas.cpp -----------------------------------------===//
//
// Reproduces the HCAS global certification experiment (Section 6.2 /
// Fig. 11): a monDEQ (FCx100) is trained on the MDP policy table and Craft
// + domain splitting exhaustively certify its advisories over the input
// slice theta in [-90.5deg, -89.5deg].
//
// Output: the certified fraction of the slice, plus ASCII maps of (left)
// the MDP table policy and (right) the certified monDEQ decision regions --
// '.' marks cells whose region is not certified. Expected shape: large
// certified areas away from decision boundaries, uncertified bands along
// them (paper: 82.8% certified overall).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/DomainSplitting.h"
#include "data/Hcas.h"
#include "support/Timer.h"

#include <cmath>
#include <cstdlib>

using namespace craft;

namespace {
constexpr double Deg = 3.14159265358979323846 / 180.0;

/// Map a certified-region list back to the class at a query point.
int certifiedClassAt(const std::vector<SplitRegion> &Regions,
                     const Vector &Point) {
  for (const SplitRegion &Region : Regions) {
    bool Inside = true;
    for (size_t I = 0; I < Point.size() && Inside; ++I)
      Inside = Point[I] >= Region.Lo[I] - 1e-12 &&
               Point[I] <= Region.Hi[I] + 1e-12;
    if (Inside)
      return Region.CertifiedClass;
  }
  return -1;
}
} // namespace

int main() {
  std::printf("== Fig. 11: HCAS global certification by domain splitting "
              "==\n\n");

  const ModelSpec *Spec = findModelSpec("hcas_fc100");
  MonDeq Model = getOrTrainModel(*Spec);
  static const HcasMdp Mdp;

  Dataset Test = makeTestSet(*Spec, 400);
  double Acc = evaluateAccuracy(Model, Test);
  std::printf("monDEQ policy-table accuracy: %.1f%%\n\n", 100.0 * Acc);

  // Input slice: full (x, y) extent, theta in [-90.5, -89.5] degrees,
  // normalized to the network's [0,1]^3 input space.
  Vector SliceLo = HcasMdp::normalizeInput(HcasMdp::XMin, HcasMdp::YMin,
                                           -90.5 * Deg);
  Vector SliceHi = HcasMdp::normalizeInput(HcasMdp::XMax, HcasMdp::YMax,
                                           -89.5 * Deg);

  CraftConfig Config = craftConfigFor(*Spec);
  Config.LambdaOptLevel = 0; // Many small regions; keep each cheap.
  int MaxDepth = 8; // Depth controls region count (not a sample count).
  if (const char *Env = std::getenv("CRAFT_SPLIT_DEPTH"))
    MaxDepth = std::max(1, std::atoi(Env));
  // CRAFT_JOBS fans the region waves out across workers (0 = all
  // hardware threads); the result is identical for every value.
  WallTimer SplitClock;
  SplitResult Res = certifyByDomainSplitting(Model, Config, SliceLo,
                                             SliceHi, MaxDepth, benchJobs());

  std::printf("certified fraction of the slice: %.1f%%  (%zu regions, %zu "
              "certified, %zu verifier calls, %zu waves, %.1f s)\n\n",
              100.0 * Res.CertifiedFraction, Res.Regions.size(),
              Res.NumCertified, Res.NumVerifierCalls, Res.NumWaves,
              SplitClock.seconds());

  // ASCII maps over the (x, y) plane at theta = -90 deg.
  const size_t Grid = 30;
  const char Glyphs[] = {'C', 'l', 'r', 'L', 'R'}; // COC WL WR SL SR.
  std::printf("MDP table policy (left) vs certified monDEQ advisories "
              "(right; '.' = uncertified)\n");
  std::printf("x: %.0f..%.0f kft, y: %.0f..%.0f kft, theta = -90 deg\n\n",
              HcasMdp::XMin, HcasMdp::XMax, HcasMdp::YMin, HcasMdp::YMax);
  for (size_t Row = 0; Row < Grid; ++Row) {
    double Y = HcasMdp::YMax -
               (HcasMdp::YMax - HcasMdp::YMin) * Row / (Grid - 1);
    std::string Left, Right;
    for (size_t Col = 0; Col < Grid; ++Col) {
      double X = HcasMdp::XMin +
                 (HcasMdp::XMax - HcasMdp::XMin) * Col / (Grid - 1);
      Left += Glyphs[Mdp.policyAction(X, Y, -90.0 * Deg)];
      int Cert = certifiedClassAt(Res.Regions,
                                  HcasMdp::normalizeInput(X, Y, -90.0 * Deg));
      Right += Cert < 0 ? '.' : Glyphs[Cert];
    }
    std::printf("%s   %s\n", Left.c_str(), Right.c_str());
  }
  std::printf("\nlegend: C=COC l=WL r=WR L=SL R=SR\n");
  return 0;
}
