//===- core/LipschitzCert.cpp ---------------------------------------------===//

#include "core/LipschitzCert.h"

#include "linalg/Eig.h"
#include "linalg/Views.h"

#include <cmath>

using namespace craft;

LipschitzCertifier::LipschitzCertifier(const MonDeq &Model)
    : Model(Model), LatentL2(spectralNorm(Model.weightU()) /
                             Model.monotonicity()),
      Solver(Model, Splitting::PeacemanRachford) {}

double LipschitzCertifier::certifiedRadius(const Vector &X,
                                           int TargetClass) const {
  Vector Y = Solver.logits(X);
  const size_t R = Model.outputDim();
  const size_t P = Model.latentDim();
  ConstMatrixView V = Model.weightV();
  const double *TargetRow = V.row(TargetClass);
  double Radius2 = 1e300;
  for (size_t I = 0; I < R; ++I) {
    if (static_cast<int>(I) == TargetClass)
      continue;
    double Margin = Y[TargetClass] - Y[I];
    if (Margin <= 0.0)
      return 0.0;
    // ||V_t - V_i||_2 bounds the margin's sensitivity to z*.
    const double *RivalRow = V.row(I);
    double RowNorm = 0.0;
    for (size_t J = 0; J < P; ++J) {
      double D = TargetRow[J] - RivalRow[J];
      RowNorm += D * D;
    }
    RowNorm = std::sqrt(RowNorm);
    double PairLipschitz = RowNorm * LatentL2;
    if (PairLipschitz > 0.0)
      Radius2 = std::min(Radius2, Margin / PairLipschitz);
  }
  // Convert the certified l2 radius to l-inf: eps2 = sqrt(q) * epsInf.
  return Radius2 / std::sqrt(static_cast<double>(Model.inputDim()));
}

bool LipschitzCertifier::certify(const Vector &X, int TargetClass,
                                 double EpsilonInf) const {
  return certifiedRadius(X, TargetClass) >= EpsilonInf;
}
