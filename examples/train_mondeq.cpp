//===- examples/train_mondeq.cpp - Training a monDEQ from scratch ---------===//
//
// Shows the training substrate: a monDEQ is fit to a Gaussian-mixture
// classification task with minibatch Adam and exact implicit-function-
// theorem gradients, then saved/reloaded and verified.
//
// Run:  ./build/examples/train_mondeq
//
//===----------------------------------------------------------------------===//

#include "core/Verifier.h"
#include "data/GaussianMixture.h"
#include "nn/Training.h"

#include <cstdio>

using namespace craft;

int main() {
  Rng R(2024);
  Dataset Train = makeGaussianMixture(R, 500, 5, 3, 0.2);
  Dataset Test = makeGaussianMixture(R, 200, 5, 3, 0.2);

  // W = (1-m) I - P^T P + Q - Q^T guarantees a unique fixpoint for any
  // trained weights (m = 20 as in the paper).
  MonDeq Model = MonDeq::randomFc(R, /*InputDim=*/5, /*LatentDim=*/12,
                                  /*NumClasses=*/3, /*M=*/20.0);

  TrainOptions Opts;
  Opts.Epochs = 30;
  Opts.LearningRate = 0.02;
  Opts.Verbose = true;
  std::printf("training a 12-latent monDEQ on 500 samples...\n");
  TrainStats Stats = trainMonDeq(Model, Train, Opts);
  std::printf("train accuracy %.1f%%, test accuracy %.1f%%\n",
              100.0 * Stats.FinalTrainAccuracy,
              100.0 * evaluateAccuracy(Model, Test));

  // Round-trip through the serialization layer.
  std::string Path = "trained_mondeq_example.bin";
  if (Model.save(Path)) {
    MonDeq Reloaded = *MonDeq::load(Path);
    std::printf("saved + reloaded %s (test accuracy %.1f%%)\n", Path.c_str(),
                100.0 * evaluateAccuracy(Reloaded, Test));
    std::remove(Path.c_str());
  }

  // Certify one test sample to close the loop.
  FixpointSolver Solver(Model, Splitting::PeacemanRachford);
  Vector X = Test.input(0);
  int Label = Solver.predict(X);
  CraftConfig Config;
  Config.Alpha1 = 0.05;
  CraftResult Res =
      CraftVerifier(Model, Config).verifyRobustness(X, Label, 0.02);
  std::printf("robustness of sample 0 at eps = 0.02: %s (margin %+.3f)\n",
              Res.Certified ? "certified" : "not certified", Res.BestMargin);
  return 0;
}
