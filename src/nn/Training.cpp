//===- nn/Training.cpp ----------------------------------------------------===//

#include "nn/Training.h"

#include "domains/Activations.h"

#include "linalg/Lu.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

using namespace craft;

namespace {

/// Softmax probabilities of logits \p Y (numerically stabilized).
Vector softmax(const Vector &Y) {
  double Max = -1e300;
  for (double V : Y)
    Max = std::max(Max, V);
  Vector P(Y.size());
  double Sum = 0.0;
  for (size_t I = 0; I < Y.size(); ++I) {
    P[I] = std::exp(Y[I] - Max);
    Sum += P[I];
  }
  for (double &V : P)
    V /= Sum;
  return P;
}

/// Adds the rank-1 update Scale * U V^T to \p Acc.
void addOuter(Matrix &Acc, const Vector &U, const Vector &V,
              double Scale = 1.0) {
  for (size_t I = 0; I < U.size(); ++I) {
    double Ui = Scale * U[I];
    if (Ui == 0.0)
      continue;
    double *Row = Acc.rowData(I);
    for (size_t J = 0; J < V.size(); ++J)
      Row[J] += Ui * V[J];
  }
}

/// Per-dimension activation derivative at the pre-activation (the diagonal
/// D of the implicit-function linearization): the ReLU active-set
/// indicator, or sigma' for the smooth App. B.6 activations.
Vector activationDerivativeAt(const MonDeq &Model, const Vector &Pre) {
  Vector D(Pre.size());
  switch (Model.activation()) {
  case ActivationKind::ReLU:
    for (size_t I = 0; I < Pre.size(); ++I)
      D[I] = Pre[I] > 0.0 ? 1.0 : 0.0;
    return D;
  case ActivationKind::Sigmoid:
    for (size_t I = 0; I < Pre.size(); ++I)
      D[I] = evalActivationDerivative(SmoothActivation::Sigmoid, Pre[I]);
    return D;
  case ActivationKind::Tanh:
    for (size_t I = 0; I < Pre.size(); ++I)
      D[I] = evalActivationDerivative(SmoothActivation::Tanh, Pre[I]);
    return D;
  }
  return D;
}

/// Solves (I - W^T D) Lambda = DeltaZ for the adjoint, with D the diagonal
/// activation derivative at the fixpoint.
Vector solveAdjoint(const Matrix &W, const Vector &D, const Vector &DeltaZ) {
  const size_t P = W.rows();
  Matrix A = Matrix::identity(P);
  for (size_t I = 0; I < P; ++I)
    for (size_t J = 0; J < P; ++J)
      if (D[J] != 0.0)
        A(I, J) -= W(J, I) * D[J]; // (W^T D)_{ij} = W_{ji} D_j.
  LuDecomposition Lu(A);
  assert(!Lu.isSingular() && "adjoint system singular despite monotonicity");
  return Lu.solve(DeltaZ);
}

} // namespace

namespace {

/// Adam optimizer state for one parameter tensor. Plain SGD is unusable for
/// monDEQs: the fixpoint scales like 1/m, so raw gradient magnitudes differ
/// by orders between V and U; Adam's per-coordinate normalization absorbs
/// that (the original artifact trains with Adam-family optimizers too).
class AdamParam {
public:
  AdamParam(size_t Rows, size_t Cols)
      : M1(Rows, Cols, 0.0), M2(Rows, Cols, 0.0) {}

  /// Returns the update to add to the parameter for gradient \p Grad.
  Matrix step(const Matrix &Grad, double Lr, int T) {
    constexpr double B1 = 0.9, B2 = 0.999, Eps = 1e-8;
    Matrix Update(Grad.rows(), Grad.cols());
    double C1 = 1.0 - std::pow(B1, T), C2 = 1.0 - std::pow(B2, T);
    for (size_t R = 0; R < Grad.rows(); ++R)
      for (size_t C = 0; C < Grad.cols(); ++C) {
        double G = Grad(R, C);
        M1(R, C) = B1 * M1(R, C) + (1.0 - B1) * G;
        M2(R, C) = B2 * M2(R, C) + (1.0 - B2) * G * G;
        double MHat = M1(R, C) / C1;
        double VHat = M2(R, C) / C2;
        Update(R, C) = -Lr * MHat / (std::sqrt(VHat) + Eps);
      }
    return Update;
  }

private:
  Matrix M1, M2;
};

/// Wraps a vector gradient as a 1-column matrix for AdamParam.
Matrix asColumn(const Vector &V) {
  Matrix M(V.size(), 1);
  for (size_t I = 0; I < V.size(); ++I)
    M(I, 0) = V[I];
  return M;
}

Vector asVector(const Matrix &M) {
  Vector V(M.rows());
  for (size_t I = 0; I < M.rows(); ++I)
    V[I] = M(I, 0);
  return V;
}

} // namespace

TrainStats craft::trainMonDeq(MonDeq &Model, const Dataset &Train,
                              const TrainOptions &Opts) {
  assert(Model.hasRawParams() && "training needs the raw parametrization");
  assert(Train.size() > 0 && "empty training set");
  const size_t P = Model.latentDim();
  const size_t Q = Model.inputDim();
  const size_t R = Model.outputDim();

  Rng Rand(Opts.Seed);
  std::vector<int> Order(Train.size());
  std::iota(Order.begin(), Order.end(), 0);

  AdamParam AdamP(P, P), AdamQ(P, P), AdamU(P, Q), AdamV(R, P);
  AdamParam AdamBZ(P, 1), AdamBY(R, 1);
  int AdamT = 0;

  TrainStats Stats;
  for (int Epoch = 0; Epoch < Opts.Epochs; ++Epoch) {
    Rand.shuffle(Order);
    double EpochLoss = 0.0;

    for (size_t Start = 0; Start < Train.size(); Start += Opts.BatchSize) {
      size_t End = std::min(Train.size(), Start + Opts.BatchSize);
      size_t Batch = End - Start;

      // PR solver for the current weights (W changes after every update).
      FixpointSolver Solver(Model, Splitting::PeacemanRachford);

      Matrix GradW(P, P), GradU(P, Q), GradV(R, P);
      Vector GradBZ(P), GradBY(R);

      for (size_t S = Start; S < End; ++S) {
        Vector X = Train.input(static_cast<size_t>(Order[S]));
        int Label = Train.Labels[static_cast<size_t>(Order[S])];

        FixpointResult Fix =
            Solver.solve(X, Opts.SolverTol, Opts.SolverMaxIter);
        const Vector &Z = Fix.Z;
        Vector Pre = Model.weightW() * Z + Model.weightU() * X +
                     Model.biasZ();
        Vector DAct = activationDerivativeAt(Model, Pre);

        Vector Y = Model.output(Z);
        Vector Prob = softmax(Y);
        EpochLoss += -std::log(std::max(Prob[Label], 1e-12));

        Vector DY = Prob;
        DY[Label] -= 1.0;

        addOuter(GradV, DY, Z);
        GradBY += DY;

        Vector DeltaZ = Model.weightV().transpose() * DY;
        Vector Lambda = Opts.JacobianFree
                            ? DeltaZ
                            : solveAdjoint(Model.weightW(), DAct, DeltaZ);
        for (size_t I = 0; I < P; ++I)
          Lambda[I] *= DAct[I]; // u = D lambda.

        addOuter(GradW, Lambda, Z);
        addOuter(GradU, Lambda, X);
        GradBZ += Lambda;
      }

      // Chain GradW through W = (1-m)I - P^T P + Q - Q^T once per batch.
      Matrix GradWT = GradW.transpose();
      Matrix GradP = -1.0 * (Model.paramP() * (GradW + GradWT));
      Matrix GradQ = GradW - GradWT;

      double Inv = 1.0 / static_cast<double>(Batch);
      ++AdamT;
      Model.applyParamUpdate(
          AdamP.step(Inv * GradP, Opts.LearningRate, AdamT),
          AdamQ.step(Inv * GradQ, Opts.LearningRate, AdamT),
          AdamU.step(Inv * GradU, Opts.LearningRate, AdamT),
          asVector(AdamBZ.step(Inv * asColumn(GradBZ), Opts.LearningRate,
                               AdamT)),
          AdamV.step(Inv * GradV, Opts.LearningRate, AdamT),
          asVector(AdamBY.step(Inv * asColumn(GradBY), Opts.LearningRate,
                               AdamT)));
    }

    Stats.EpochLoss.push_back(EpochLoss / static_cast<double>(Train.size()));
    if (Opts.Verbose)
      std::printf("  epoch %d: loss %.4f\n", Epoch + 1,
                  Stats.EpochLoss.back());
  }

  Stats.FinalTrainAccuracy = evaluateAccuracy(Model, Train);
  return Stats;
}

double craft::evaluateAccuracy(const MonDeq &Model, const Dataset &Data) {
  if (Data.size() == 0)
    return 0.0;
  FixpointSolver Solver(Model, Splitting::PeacemanRachford);
  size_t Correct = 0;
  for (size_t I = 0; I < Data.size(); ++I)
    if (Solver.predict(Data.input(I)) == Data.Labels[I])
      ++Correct;
  return static_cast<double>(Correct) / static_cast<double>(Data.size());
}

Vector craft::inputGradient(const MonDeq &Model, const FixpointSolver &Solver,
                            const Vector &X, const Vector &OutCoef,
                            int NeumannTerms) {
  const size_t P = Model.latentDim();
  FixpointResult Fix = Solver.solve(X, 1e-8, 500);
  Vector Pre = Model.weightW() * Fix.Z + Model.weightU() * X + Model.biasZ();
  Vector DAct = activationDerivativeAt(Model, Pre);

  Vector DeltaZ = Model.weightV().transpose() * OutCoef;
  Vector Lambda;
  if (NeumannTerms < 0) {
    Lambda = solveAdjoint(Model.weightW(), DAct, DeltaZ);
  } else {
    // Iterative solve of A lambda = dz with A = I - W^T D via CG on the
    // normal equations (A^T A lambda = A^T dz). A plain Neumann series
    // diverges here because ||W|| ~ m for monDEQs; CGNE converges for any
    // nonsingular A at ~2 matvecs per iteration.
    auto ApplyA = [&](const Vector &V) {
      Vector Masked = V;
      for (size_t I = 0; I < P; ++I)
        Masked[I] *= DAct[I];
      return V - Model.weightW().transpose() * Masked;
    };
    auto ApplyAT = [&](const Vector &V) {
      Vector WV = Model.weightW() * V;
      for (size_t I = 0; I < P; ++I)
        WV[I] *= DAct[I];
      return V - WV;
    };
    Lambda = Vector(P, 0.0);
    Vector Res = ApplyAT(DeltaZ); // A^T b - A^T A x0, x0 = 0.
    Vector Dir = Res;
    double RhoOld = dot(Res, Res);
    for (int K = 0; K < NeumannTerms && RhoOld > 1e-24; ++K) {
      Vector ADir = ApplyA(Dir);
      Vector AtADir = ApplyAT(ADir);
      double Denom = dot(Dir, AtADir);
      if (Denom <= 0.0)
        break;
      double Step = RhoOld / Denom;
      Lambda += Step * Dir;
      Res -= Step * AtADir;
      double RhoNew = dot(Res, Res);
      Dir = Res + (RhoNew / RhoOld) * Dir;
      RhoOld = RhoNew;
    }
  }
  for (size_t I = 0; I < P; ++I)
    Lambda[I] *= DAct[I];
  return Model.weightU().transpose() * Lambda;
}
