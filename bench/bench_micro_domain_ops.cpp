//===- bench/bench_micro_domain_ops.cpp -----------------------------------===//
//
// google-benchmark micro-benchmarks backing the complexity claims of
// Table 1 / Section 2.3: CH-Zonotope containment and consolidation are
// O(p^2 (p + k)) and one abstract solver propagation step is O(p^3)-class,
// so doubling p should roughly 8x these timings (check the reported Time
// column scaling).
//
//===----------------------------------------------------------------------===//

#include "core/AbstractSolver.h"
#include "domains/OrderReduction.h"
#include "nn/MonDeq.h"
#include "support/Rng.h"

#include <benchmark/benchmark.h>

using namespace craft;

namespace {

/// Builds a consolidated (outer, inner) pair of dimension P with K inner
/// generator columns.
struct ContainmentFixture {
  ProperState Outer;
  CHZonotope Inner;

  explicit ContainmentFixture(size_t P, size_t K) {
    Rng R(P * 131 + K);
    Vector Center(P);
    Matrix Gens(P, K);
    std::vector<uint64_t> Ids(K);
    for (size_t I = 0; I < P; ++I)
      Center[I] = R.gaussian();
    for (size_t I = 0; I < P; ++I)
      for (size_t J = 0; J < K; ++J)
        Gens(I, J) = R.gaussian(0.0, 0.3);
    for (auto &Id : Ids)
      Id = freshErrorTermId();
    Inner = CHZonotope(Center, Gens, Ids, Vector(P, 0.05));
    ConsolidationBasis Basis(P, 1);
    Outer = consolidateProper(Inner, Basis, 0.1, 0.1);
  }
};

void BM_ContainmentCheck(benchmark::State &State) {
  size_t P = static_cast<size_t>(State.range(0));
  ContainmentFixture Fixture(P, 2 * P);
  for (auto _ : State)
    benchmark::DoNotOptimize(
        containsCH(Fixture.Outer.Z, Fixture.Outer.InvGens, Fixture.Inner));
  State.SetComplexityN(State.range(0));
}

void BM_Consolidation(benchmark::State &State) {
  size_t P = static_cast<size_t>(State.range(0));
  ContainmentFixture Fixture(P, 2 * P);
  ConsolidationBasis Basis(P, 1000000); // Basis cached: measure Thm 4.1 only.
  Basis.refresh(Fixture.Inner.generators());
  for (auto _ : State)
    benchmark::DoNotOptimize(
        consolidateProper(Fixture.Inner, Basis, 1e-3, 1e-2));
  State.SetComplexityN(State.range(0));
}

void BM_PcaBasisRefresh(benchmark::State &State) {
  size_t P = static_cast<size_t>(State.range(0));
  ContainmentFixture Fixture(P, 2 * P);
  for (auto _ : State) {
    ConsolidationBasis Basis(P, 1);
    Basis.refresh(Fixture.Inner.generators());
    benchmark::DoNotOptimize(Basis.basis());
  }
  State.SetComplexityN(State.range(0));
}

void BM_AbstractSolverStep(benchmark::State &State) {
  size_t P = static_cast<size_t>(State.range(0));
  Rng R(P);
  MonDeq Model = MonDeq::randomFc(R, 16, P, 4, 20.0);
  CHZonotope X = CHZonotope::fromBox(Vector(16, 0.2), Vector(16, 0.8));
  AbstractSolver Solver(Model, Splitting::PeacemanRachford, 0.1, X);
  CHZonotope S = Solver.initialState(Vector(P, 0.1));
  S = Solver.step(S);
  for (auto _ : State)
    benchmark::DoNotOptimize(Solver.step(S));
  State.SetComplexityN(State.range(0));
}

} // namespace

BENCHMARK(BM_ContainmentCheck)->RangeMultiplier(2)->Range(16, 256)
    ->Complexity();
BENCHMARK(BM_Consolidation)->RangeMultiplier(2)->Range(16, 256)
    ->Complexity();
BENCHMARK(BM_PcaBasisRefresh)->RangeMultiplier(2)->Range(16, 128)
    ->Complexity();
BENCHMARK(BM_AbstractSolverStep)->RangeMultiplier(2)->Range(16, 128)
    ->Complexity();

BENCHMARK_MAIN();
