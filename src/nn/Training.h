//===- nn/Training.h - monDEQ training via implicit diff --------*- C++ -*-===//
//
// Part of the Craft reproduction (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// monDEQ training with implicit differentiation (Winston & Kolter 2020,
/// App. D.1 of the paper): the fixpoint z* = ReLU(W z* + U x + b) is
/// differentiated through the implicit function theorem,
///
///   dz* = (I - D W)^{-1} D (dW z* + dU x + db),   D = diag(1{pre > 0}),
///
/// so one linear solve per sample yields exact gradients without unrolling.
/// The same machinery provides input gradients for the PGD attack. The
/// original artifact used pretrained PyTorch models; training from scratch
/// here replaces that substrate (DESIGN.md substitution 2).
///
//===----------------------------------------------------------------------===//

#ifndef CRAFT_NN_TRAINING_H
#define CRAFT_NN_TRAINING_H

#include "data/Dataset.h"
#include "nn/Solvers.h"

namespace craft {

/// Knobs for \ref trainMonDeq.
struct TrainOptions {
  int Epochs = 10;
  /// Minibatch size. The paper (App. D.1) uses 128 on the full 60k-sample
  /// MNIST; the synthetic substitutes are 1-2 orders smaller, so a smaller
  /// batch keeps the optimizer step count adequate.
  size_t BatchSize = 32;
  double LearningRate = 0.01; ///< Adam step size.
  double SolverTol = 1e-7;
  int SolverMaxIter = 300;
  uint64_t Seed = 1234;
  bool Verbose = false;
  /// Jacobian-free backprop (Fung et al. 2022): approximates the implicit
  /// solve (I - W^T D)^{-1} by the identity. Exact gradients need one O(p^3)
  /// LU per sample, which is prohibitive for the conv-sized latents (p ~ 800)
  /// on this single-core substrate; JFB trains DEQs well in practice and is
  /// used for the conv models only (see DESIGN.md substitution 2).
  bool JacobianFree = false;
};

/// Per-epoch training diagnostics.
struct TrainStats {
  std::vector<double> EpochLoss;
  double FinalTrainAccuracy = 0.0;
};

/// Trains \p Model in place with minibatch SGD and cross-entropy loss.
TrainStats trainMonDeq(MonDeq &Model, const Dataset &Train,
                       const TrainOptions &Opts);

/// Fraction of samples in \p Data classified correctly.
double evaluateAccuracy(const MonDeq &Model, const Dataset &Data);

/// Gradient of the scalar OutCoef^T y(x) with respect to the input x,
/// computed via the implicit function theorem at the fixpoint for \p X.
/// \p Solver must be a PR solver for \p Model (reused across calls for its
/// cached factorization). \p NeumannTerms < 0 solves the adjoint system
/// exactly (one O(p^3) LU); otherwise the inverse is approximated by that
/// many Neumann-series terms (cheap matvecs; adequate for attack gradients
/// on the conv-sized latents).
Vector inputGradient(const MonDeq &Model, const FixpointSolver &Solver,
                     const Vector &X, const Vector &OutCoef,
                     int NeumannTerms = -1);

} // namespace craft

#endif // CRAFT_NN_TRAINING_H
