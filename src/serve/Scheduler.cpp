//===- serve/Scheduler.cpp ------------------------------------------------===//

#include "serve/Scheduler.h"

#include "tool/SpecCanon.h"

using namespace craft;
using namespace craft::serve;

namespace {

std::future<ServeResult> readyResult(ServeResult Result) {
  std::promise<ServeResult> P;
  std::future<ServeResult> F = P.get_future();
  P.set_value(std::move(Result));
  return F;
}

} // namespace

Scheduler::Scheduler(const Options &Opts)
    : Opts(Opts), Cache(Opts.CacheCapacity, Opts.CacheShards),
      Queue(Opts.QueueCapacity) {
  // craft-lint: allow(conc-thread) — spawn of the joined dispatcher.
  Dispatcher = std::thread([this] { dispatchLoop(); });
}

Scheduler::~Scheduler() { stop(); }

void Scheduler::stop() {
  Stopping.store(true);
  Queue.close();
  if (Dispatcher.joinable())
    Dispatcher.join();
}

Scheduler::Stats Scheduler::stats() const {
  std::lock_guard<std::mutex> Lock(StatsMutex);
  return Counters;
}

std::future<ServeResult> Scheduler::submit(const VerificationSpec &Spec,
                                           bool UseCache) {
  {
    std::lock_guard<std::mutex> Lock(StatsMutex);
    ++Counters.Submitted;
  }
  if (Stopping.load()) {
    ServeResult R;
    R.Outcome.Detail = "server is shutting down";
    return readyResult(std::move(R));
  }

  // 1. Model resolution (load-once via the registry).
  ModelRegistry::Entry Model = Registry.get(Spec.ModelPath);
  if (!Model.Model) {
    ServeResult R;
    R.Outcome.Detail = Model.Error;
    return readyResult(std::move(R));
  }

  // 2. Content identity. Witness emission is a filesystem side effect, so
  // certificate queries always execute (no memoized outcome could redo
  // the write) and never populate the cache.
  const bool Cacheable = UseCache && Spec.CertificatePath.empty();
  std::string Key = serveCacheKey(Spec, Model.Hash);

  // 3. Deterministic attack seed, derived from the query's content alone.
  VerificationSpec Prepared = Spec;
  if (Prepared.Attack && Prepared.AttackSeed == 0)
    Prepared.AttackSeed = serveAttackSeed(Opts.BaseSeed, Key);

  std::unique_ptr<Job> NewJob;
  std::future<ServeResult> Future;
  {
    std::lock_guard<std::mutex> Lock(InFlightMutex);
    if (Cacheable) {
      // 4. Coalesce with an identical in-flight query.
      auto It = InFlight.find(Key);
      if (It != InFlight.end()) {
        It->second->Waiters.emplace_back();
        std::lock_guard<std::mutex> SLock(StatsMutex);
        ++Counters.Coalesced;
        return It->second->Waiters.back().get_future();
      }
      // 5. Cache probe, under the admission lock. finishJob publishes
      // to the cache before delisting from InFlight, and both steps of
      // this probe hold the lock, so an identical query always either
      // joins the in-flight job or sees its cached outcome — a key is
      // never executed twice.
      if (std::optional<RunOutcome> Hit = Cache.lookup(Key)) {
        {
          std::lock_guard<std::mutex> SLock(StatsMutex);
          ++Counters.CacheHits;
        }
        ServeResult R;
        R.Outcome = *Hit;
        R.Cached = true;
        R.ModelHash = Model.Hash;
        return readyResult(std::move(R));
      }
    }
    // 6. Admit a fresh job.
    NewJob = std::make_unique<Job>();
    NewJob->Spec = std::move(Prepared);
    NewJob->Model = Model.Model;
    NewJob->ModelHash = Model.Hash;
    NewJob->Key = Key;
    NewJob->UseCache = Cacheable;
    NewJob->Waiters.emplace_back();
    Future = NewJob->Waiters.back().get_future();
    if (Cacheable)
      InFlight.emplace(Key, NewJob.get());
  }

  // The bounded push is the admission control: it blocks (without any
  // scheduler lock held) while the daemon is saturated. Joiners may keep
  // attaching to the job meanwhile — it is already listed in-flight.
  if (!Queue.push(std::move(NewJob))) {
    // Shutdown raced the admission; push failed without moving, so the
    // job is still ours. Delist it first (under the lock, so no joiner
    // can attach to a dying job), then fail every attached waiter.
    std::vector<std::promise<ServeResult>> Waiters;
    {
      std::lock_guard<std::mutex> Lock(InFlightMutex);
      if (NewJob->UseCache)
        InFlight.erase(NewJob->Key);
      Waiters = std::move(NewJob->Waiters);
    }
    ServeResult R;
    R.Outcome.Detail = "server is shutting down";
    for (std::promise<ServeResult> &P : Waiters)
      P.set_value(R);
  }
  return Future;
}

void Scheduler::finishJob(std::unique_ptr<Job> JobPtr,
                          const RunOutcome &Outcome) {
  // Publish before delisting (see the InFlight comment in the header).
  if (JobPtr->UseCache && Outcome.ModelLoaded)
    Cache.insert(JobPtr->Key, Outcome);
  std::vector<std::promise<ServeResult>> Waiters;
  {
    std::lock_guard<std::mutex> Lock(InFlightMutex);
    if (JobPtr->UseCache)
      InFlight.erase(JobPtr->Key);
    Waiters = std::move(JobPtr->Waiters);
  }
  ServeResult R;
  R.Outcome = Outcome;
  R.Cached = false;
  R.ModelHash = JobPtr->ModelHash;
  for (std::promise<ServeResult> &P : Waiters)
    P.set_value(R);
}

void Scheduler::dispatchLoop() {
  // A job deferred out of the previous batch (duplicate certificate
  // path); it leads the next batch.
  std::unique_ptr<Job> Carry;
  for (;;) {
    std::unique_ptr<Job> FirstJob;
    if (Carry) {
      FirstJob = std::move(Carry);
    } else {
      std::optional<std::unique_ptr<Job>> First = Queue.pop();
      if (!First)
        return; // Closed and drained.
      FirstJob = std::move(*First);
    }

    // Natural batching: take everything already admitted, up to the cap.
    // No admission timer — a lone query dispatches immediately; under
    // load the queue is non-empty and batches grow on their own.
    std::vector<std::unique_ptr<Job>> Batch;
    Batch.push_back(std::move(FirstJob));

    // Two queries naming one witness file must never share a batch:
    // parallelForIndex would run them concurrently and their
    // saveCertificate calls would race on the file (the one-shot CLI
    // rejects such batches up front; serve serializes them instead —
    // batches execute one after another, so deferring the duplicate to
    // the next batch is a strict happens-after). Only the first
    // conflict defers; anything behind it stays queued.
    auto conflictsWithBatch = [&Batch](const Job &J) {
      if (J.Spec.CertificatePath.empty())
        return false;
      for (const std::unique_ptr<Job> &B : Batch)
        if (B->Spec.CertificatePath == J.Spec.CertificatePath)
          return true;
      return false;
    };
    std::unique_ptr<Job> Next;
    while (Batch.size() < Opts.MaxBatch && Queue.tryPop(Next)) {
      if (conflictsWithBatch(*Next)) {
        Carry = std::move(Next);
        break;
      }
      Batch.push_back(std::move(Next));
    }

    std::vector<VerificationSpec> Specs;
    std::vector<const MonDeq *> Models;
    Specs.reserve(Batch.size());
    Models.reserve(Batch.size());
    for (const std::unique_ptr<Job> &J : Batch) {
      Specs.push_back(J->Spec);
      Models.push_back(J->Model);
    }

    std::vector<RunOutcome> Outcomes =
        runSpecBatchLoaded(Specs, Models, Opts.Jobs, Opts.FuseBatchGemms);

    {
      std::lock_guard<std::mutex> Lock(StatsMutex);
      ++Counters.Batches;
      Counters.Executed += Batch.size();
      if (Batch.size() > Counters.MaxBatchSeen)
        Counters.MaxBatchSeen = Batch.size();
    }
    for (size_t I = 0; I < Batch.size(); ++I)
      finishJob(std::move(Batch[I]), Outcomes[I]);
  }
}
