//===- data/GaussianMixture.h - Toy Gaussian mixture dataset ----*- C++ -*-===//
//
// Part of the Craft reproduction (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's App. E.3 toy dataset: 5-dimensional inputs sampled from a
/// mixture of Gaussians with 3 classes, used to train the 2/3/4-latent
/// monDEQs of the consolidation volume study (Fig. 19).
///
//===----------------------------------------------------------------------===//

#ifndef CRAFT_DATA_GAUSSIANMIXTURE_H
#define CRAFT_DATA_GAUSSIANMIXTURE_H

#include "data/Dataset.h"
#include "support/Rng.h"

namespace craft {

/// Generates \p Count samples from \p NumClasses Gaussian clusters in
/// \p Dim dimensions (paper: Dim = 5, NumClasses = 3).
Dataset makeGaussianMixture(Rng &R, size_t Count, size_t Dim = 5,
                            size_t NumClasses = 3, double ClusterStd = 0.35);

} // namespace craft

#endif // CRAFT_DATA_GAUSSIANMIXTURE_H
