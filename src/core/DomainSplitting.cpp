//===- core/DomainSplitting.cpp -------------------------------------------===//

#include "core/DomainSplitting.h"

#include "nn/Solvers.h"

using namespace craft;

namespace {

struct SplitContext {
  const CraftVerifier &Verifier;
  const FixpointSolver &Concrete;
  SplitResult &Result;
  int MaxDepth;
};

double volumeOf(const Vector &Lo, const Vector &Hi) {
  double V = 1.0;
  for (size_t I = 0; I < Lo.size(); ++I)
    V *= Hi[I] - Lo[I];
  return V;
}

void splitRecurse(SplitContext &Ctx, const Vector &Lo, const Vector &Hi,
                  int Depth) {
  Vector Center = 0.5 * (Lo + Hi);
  int Class = Ctx.Concrete.predict(Center);
  ++Ctx.Result.NumVerifierCalls;
  CraftResult Res = Ctx.Verifier.verifyRegion(Lo, Hi, Class);
  if (Res.Certified) {
    Ctx.Result.Regions.push_back({Lo, Hi, Class});
    ++Ctx.Result.NumCertified;
    return;
  }
  if (Depth >= Ctx.MaxDepth) {
    Ctx.Result.Regions.push_back({Lo, Hi, -1});
    return;
  }
  // Bisect the widest dimension.
  size_t Widest = 0;
  for (size_t I = 1; I < Lo.size(); ++I)
    if (Hi[I] - Lo[I] > Hi[Widest] - Lo[Widest])
      Widest = I;
  Vector MidHi = Hi, MidLo = Lo;
  MidHi[Widest] = Center[Widest];
  MidLo[Widest] = Center[Widest];
  splitRecurse(Ctx, Lo, MidHi, Depth + 1);
  splitRecurse(Ctx, MidLo, Hi, Depth + 1);
}

} // namespace

SplitResult craft::certifyByDomainSplitting(const MonDeq &Model,
                                            const CraftConfig &Config,
                                            const Vector &Lo, const Vector &Hi,
                                            int MaxDepth) {
  SplitResult Result;
  CraftVerifier Verifier(Model, Config);
  FixpointSolver Concrete(Model, Splitting::PeacemanRachford);
  SplitContext Ctx{Verifier, Concrete, Result, MaxDepth};
  splitRecurse(Ctx, Lo, Hi, 0);

  double Total = volumeOf(Lo, Hi);
  double Certified = 0.0;
  for (const SplitRegion &Region : Result.Regions)
    if (Region.CertifiedClass >= 0)
      Certified += volumeOf(Region.Lo, Region.Hi);
  Result.CertifiedFraction = Total > 0.0 ? Certified / Total : 0.0;
  return Result;
}

namespace {

/// Worklist state for the local branch-and-bound refinement.
struct BnBContext {
  const CraftVerifier &Verifier;
  const FixpointSolver &Concrete;
  BranchAndBoundResult &Result;
  int TargetClass;
  int MaxDepth;
  double CertifiedVolume = 0.0;
};

void bnbRecurse(BnBContext &Ctx, const Vector &Lo, const Vector &Hi,
                int Depth) {
  if (Ctx.Result.Refuted)
    return;

  // Concrete center probe first: a misclassification is a definitive
  // counterexample and short-circuits the whole search.
  Vector Center = 0.5 * (Lo + Hi);
  if (Ctx.Concrete.predict(Center) != Ctx.TargetClass) {
    Ctx.Result.Refuted = true;
    Ctx.Result.Counterexample = Center;
    return;
  }

  ++Ctx.Result.NumVerifierCalls;
  CraftResult Res = Ctx.Verifier.verifyRegion(Lo, Hi, Ctx.TargetClass);
  if (Res.Certified) {
    ++Ctx.Result.NumLeaves;
    Ctx.CertifiedVolume += volumeOf(Lo, Hi);
    return;
  }
  if (Depth >= Ctx.MaxDepth) {
    ++Ctx.Result.NumLeaves; // Undecided leaf.
    return;
  }

  // Bisect along the widest dimension.
  size_t Widest = 0;
  double Best = -1.0;
  for (size_t I = 0; I < Lo.size(); ++I)
    if (Hi[I] - Lo[I] > Best) {
      Best = Hi[I] - Lo[I];
      Widest = I;
    }
  double Mid = 0.5 * (Lo[Widest] + Hi[Widest]);
  Vector LoA = Lo, HiA = Hi, LoB = Lo, HiB = Hi;
  HiA[Widest] = Mid;
  LoB[Widest] = Mid;
  bnbRecurse(Ctx, LoA, HiA, Depth + 1);
  bnbRecurse(Ctx, LoB, HiB, Depth + 1);
}

} // namespace

BranchAndBoundResult craft::verifyRobustnessSplit(
    const MonDeq &Model, const CraftConfig &Config, const Vector &Lo,
    const Vector &Hi, int TargetClass, int MaxDepth) {
  BranchAndBoundResult Result;
  CraftVerifier Verifier(Model, Config);
  FixpointSolver Concrete(Model, Splitting::PeacemanRachford);
  BnBContext Ctx{Verifier, Concrete, Result, TargetClass, MaxDepth, 0.0};
  bnbRecurse(Ctx, Lo, Hi, 0);

  if (!Result.Refuted) {
    double Total = volumeOf(Lo, Hi);
    Result.CertifiedVolumeFraction =
        Total > 0.0 ? Ctx.CertifiedVolume / Total : 0.0;
    // Guard against accumulated rounding in the volume bookkeeping.
    Result.Certified = Result.CertifiedVolumeFraction >= 1.0 - 1e-9;
    if (Result.Certified)
      Result.CertifiedVolumeFraction = 1.0;
  }
  return Result;
}
