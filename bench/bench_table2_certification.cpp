//===- bench/bench_table2_certification.cpp -------------------------------===//
//
// Reproduces Table 2: local robustness certification across the model grid
// (MNIST FCx40/87/100/200 + ConvSmall at eps = 0.05; CIFAR FCx200 +
// ConvSmall at eps = 2/255). Columns: natural accuracy, PGD upper bound,
// containment count, certified count, mean Craft time per accurate sample.
//
// Expected shape vs the paper: smaller FC nets certify a larger fraction of
// their PGD-robust samples; containment is found for (almost) all samples;
// conv models remain tractable at 10x the latent size of the SemiSDP limit.
//
// Besides the console table, the harness writes BENCH_table2.json — one
// record per model row with (op, dims, ns_per_op, allocs_per_op, backend),
// where ns_per_op is the mean Craft wall time per accurate sample,
// allocs_per_op the heap allocations per evaluated sample, and backend the
// kernel tier in use — so the end-to-end certification perf trajectory is
// tracked across PRs and attributable to the ISA.
//
//===----------------------------------------------------------------------===//

#include "AllocCounter.h"
#include "BenchCommon.h"
#include "BenchJson.h"

using namespace craft;

int main() {
  std::printf("== Table 2: local robustness certification ==\n");
  std::printf("(CRAFT_SAMPLES=n scales the per-model sample count; paper "
              "uses 100)\n\n");

  struct RowSpec {
    const char *Name;
    size_t DefaultSamples;
  };
  // Defaults sized for a single-core full-harness run; the paper uses 100
  // samples throughout (CRAFT_SAMPLES raises these uniformly).
  const RowSpec Rows[] = {{"mnist_fc40", 10},  {"mnist_fc87", 8},
                          {"mnist_fc100", 5},  {"mnist_fc200", 4},
                          {"cifar_fc200", 3},  {"mnist_conv", 1},
                          {"cifar_conv", 1}};

  TablePrinter Table({"Dataset", "Model", "Latent", "#Acc", "eps", "#Bound",
                      "#Cont", "#Cert", "Time[s]"});

  std::vector<benchjson::Record> Records;
  auto runRow = [&Table, &Records](const char *Name, size_t Samples) {
    const ModelSpec *Spec = findModelSpec(Name);
    MonDeq Model = getOrTrainModel(*Spec);
    uint64_t AllocsBefore = benchalloc::allocations();
    CertRow Row = evaluateCertification(*Spec, Model, craftConfigFor(*Spec),
                                        pgdOptionsFor(*Spec), Spec->Epsilon,
                                        Samples);
    uint64_t AllocsDelta = benchalloc::allocations() - AllocsBefore;
    benchjson::Record Rec;
    Rec.Op = Spec->Name;
    Rec.Dims = fmt(static_cast<long>(Spec->LatentDim));
    Rec.NsPerOp = Row.MeanTimeSeconds * 1e9;
    Rec.AllocsPerOp = Row.Samples > 0 ? static_cast<double>(AllocsDelta) /
                                            static_cast<double>(Row.Samples)
                                      : 0.0;
    Records.push_back(std::move(Rec));
    Table.addRow({Spec->DatasetKind, Spec->Name,
                  fmt(static_cast<long>(Spec->LatentDim)),
                  fmt(static_cast<long>(Row.Accurate)) + "/" +
                      fmt(static_cast<long>(Row.Samples)),
                  fmt(Spec->Epsilon, 4), fmt(static_cast<long>(Row.Bound)),
                  fmt(static_cast<long>(Row.Contained)),
                  fmt(static_cast<long>(Row.Certified)),
                  fmt(Row.MeanTimeSeconds, 2)});
  };

  // CRAFT_SKIP_CONV omits the two conv rows (they dominate runtime on a
  // single core; see DESIGN.md).
  bool SkipConv = std::getenv("CRAFT_SKIP_CONV") != nullptr;
  for (const RowSpec &Row : Rows) {
    const ModelSpec *Spec = findModelSpec(Row.Name);
    if (SkipConv && Spec->Conv)
      continue;
    runRow(Row.Name, benchSamples(Row.DefaultSamples));
  }

  Table.print();
  benchjson::write("BENCH_table2.json", Records);
  return 0;
}
