//===- tests/test_batch_driver.cpp - Batch verification tests -------------===//
//
// Tests for the parallel batch-verification subsystem: the ThreadPool and
// parallelForIndex primitives, the deterministic per-task seed stream, the
// multi-input spec form, and the core batch contract — runSpecBatch
// produces byte-identical outcomes for every worker count.
//
//===----------------------------------------------------------------------===//

#include "data/GaussianMixture.h"
#include "linalg/KernelsBatched.h"
#include "nn/Solvers.h"
#include "nn/Training.h"
#include "support/Rng.h"
#include "support/ThreadPool.h"
#include "tool/Driver.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

using namespace craft;

//===----------------------------------------------------------------------===//
// ThreadPool primitives
//===----------------------------------------------------------------------===//

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.workerCount(), 4u);
  std::atomic<int> Count{0};
  for (int I = 0; I < 100; ++I)
    Pool.submit([&Count] { ++Count; });
  Pool.wait();
  EXPECT_EQ(Count.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool Pool(2);
  std::atomic<int> Count{0};
  Pool.submit([&Count] { ++Count; });
  Pool.wait();
  Pool.submit([&Count] { ++Count; });
  Pool.submit([&Count] { ++Count; });
  Pool.wait();
  EXPECT_EQ(Count.load(), 3);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> Count{0};
  {
    ThreadPool Pool(2);
    for (int I = 0; I < 50; ++I)
      Pool.submit([&Count] { ++Count; });
  } // No wait(): the destructor must still run everything.
  EXPECT_EQ(Count.load(), 50);
}

TEST(ThreadPoolTest, WaitRethrowsTaskException) {
  ThreadPool Pool(2);
  Pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(Pool.wait(), std::runtime_error);
  // The error is consumed: the pool stays usable afterwards.
  std::atomic<int> Count{0};
  Pool.submit([&Count] { ++Count; });
  Pool.wait();
  EXPECT_EQ(Count.load(), 1);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (int Jobs : {1, 2, 8}) {
    std::vector<int> Hits(257, 0);
    parallelForIndex(Hits.size(), Jobs, [&Hits](size_t I) { ++Hits[I]; });
    for (size_t I = 0; I < Hits.size(); ++I)
      ASSERT_EQ(Hits[I], 1) << "jobs " << Jobs << " index " << I;
  }
}

TEST(ParallelForTest, HandlesEmptyAndSingleElementRanges) {
  std::atomic<int> Count{0};
  parallelForIndex(0, 4, [&Count](size_t) { ++Count; });
  EXPECT_EQ(Count.load(), 0);
  parallelForIndex(1, 4, [&Count](size_t) { ++Count; });
  EXPECT_EQ(Count.load(), 1);
}

TEST(ParallelForTest, PropagatesTaskExceptions) {
  EXPECT_THROW(parallelForIndex(16, 4,
                                [](size_t I) {
                                  if (I == 7)
                                    throw std::runtime_error("boom");
                                }),
               std::runtime_error);
}

TEST(TaskSeedTest, DependsOnlyOnBaseAndIndex) {
  EXPECT_EQ(taskSeed(42, 0), taskSeed(42, 0));
  EXPECT_EQ(taskSeed(42, 9), taskSeed(42, 9));
  std::set<uint64_t> Seen;
  for (uint64_t I = 0; I < 1000; ++I)
    Seen.insert(taskSeed(42, I));
  EXPECT_EQ(Seen.size(), 1000u) << "seed stream collided";
  EXPECT_NE(taskSeed(42, 0), taskSeed(43, 0));
  // Seeds are usable directly: nonzero for a realistic base.
  EXPECT_NE(taskSeed(20230617, 0), 0u);
}

//===----------------------------------------------------------------------===//
// Multi-input specs
//===----------------------------------------------------------------------===//

TEST(MultiInputSpecTest, EachInputBlockBecomesOneQuery) {
  SpecParseResult R = parseSpec("model m.bin\n"
                                "output robust 1\n"
                                "alpha1 0.25\n"
                                "epsilon 0.1\n"
                                "input linf\n"
                                "  center 0.5 0.5\n"
                                "input linf\n"
                                "  center 0.25 0.75\n"
                                "  epsilon 0.05\n"
                                "input box\n"
                                "  lo 0 0\n"
                                "  hi 1 1\n");
  ASSERT_TRUE(R.ok());
  ASSERT_EQ(R.Specs.size(), 3u);
  // Shared directives reach every query.
  for (const VerificationSpec &S : R.Specs) {
    EXPECT_EQ(S.ModelPath, "m.bin");
    EXPECT_EQ(S.TargetClass, 1);
    EXPECT_DOUBLE_EQ(S.Alpha1, 0.25);
  }
  // File-wide epsilon is the default; a block may override it.
  EXPECT_DOUBLE_EQ(R.Specs[0].Epsilon, 0.1);
  EXPECT_DOUBLE_EQ(R.Specs[1].Epsilon, 0.05);
  EXPECT_DOUBLE_EQ(R.Specs[1].InLo[0], 0.2);
  EXPECT_DOUBLE_EQ(R.Specs[2].InHi[1], 1.0);
  // Back-compat: Spec is the first query.
  ASSERT_TRUE(R.Spec.has_value());
  EXPECT_DOUBLE_EQ(R.Spec->Epsilon, 0.1);
}

TEST(MultiInputSpecTest, CertificatePathsGetPerQuerySuffixes) {
  SpecParseResult R = parseSpec("model m.bin\n"
                                "output robust 0\n"
                                "certificate out.cert\n"
                                "epsilon 0.1\n"
                                "input linf\n  center 0.5\n"
                                "input linf\n  center 0.6\n");
  ASSERT_TRUE(R.ok());
  ASSERT_EQ(R.Specs.size(), 2u);
  EXPECT_EQ(R.Specs[0].CertificatePath, "out.cert");
  EXPECT_EQ(R.Specs[1].CertificatePath, "out.cert.1");
}

TEST(MultiInputSpecTest, RegionLinesOutsideABlockAreDiagnosed) {
  SpecParseResult R = parseSpec("model m.bin\ncenter 0.5\n"
                                "output robust 0\n");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Diagnostics[0].Message.find("must follow an 'input' line"),
            std::string::npos)
      << R.Diagnostics[0].Message;
  EXPECT_EQ(R.Diagnostics[0].Line, 2);
}

TEST(MultiInputSpecTest, ParsesAttackAndSeedDirectives) {
  SpecParseResult R = parseSpec("model m.bin\noutput robust 0\n"
                                "attack on\nseed 7\n"
                                "input linf\n  center 0.5\n"
                                "  epsilon 0.1\n");
  ASSERT_TRUE(R.ok());
  EXPECT_TRUE(R.Spec->Attack);
  EXPECT_EQ(R.Spec->AttackSeed, 7u);
  // The full uint64 seed range is accepted (beyond int and double).
  SpecParseResult Wide = parseSpec("model m.bin\noutput robust 0\n"
                                   "seed 18446744073709551615\n"
                                   "input linf\n  center 0.5\n"
                                   "  epsilon 0.1\n");
  ASSERT_TRUE(Wide.ok());
  EXPECT_EQ(Wide.Spec->AttackSeed, 18446744073709551615ull);
  // One past 2^64-1 is diagnosed, not silently clamped.
  SpecParseResult Over = parseSpec("model m.bin\noutput robust 0\n"
                                   "seed 18446744073709551616\n"
                                   "input linf\n  center 0.5\n"
                                   "  epsilon 0.1\n");
  ASSERT_FALSE(Over.ok());
  EXPECT_NE(Over.Diagnostics[0].Message.find("'seed'"), std::string::npos);
  SpecParseResult Bad = parseSpec("model m.bin\noutput robust 0\n"
                                  "attack maybe\n"
                                  "input linf\n  center 0.5\n"
                                  "  epsilon 0.1\n");
  ASSERT_FALSE(Bad.ok());
  EXPECT_NE(Bad.Diagnostics[0].Message.find("'attack'"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// runSpecBatch determinism
//===----------------------------------------------------------------------===//

namespace {

/// Tiny trained model shared by the batch tests (same recipe as the
/// test_tool driver fixture, separate file so the suites stay independent).
struct BatchFixture {
  std::string ModelPath = "/tmp/craft_batch_model.bin";
  std::vector<Vector> Samples;
  std::vector<int> Labels;
};

BatchFixture &batchFixture() {
  static BatchFixture *F = [] {
    auto *Out = new BatchFixture;
    Rng DataRng(71);
    Dataset Train = makeGaussianMixture(DataRng, 250, 5, 3);
    Rng InitRng(72);
    MonDeq Model = MonDeq::randomFc(InitRng, 5, 10, 3, 3.0);
    TrainOptions Opts;
    Opts.Epochs = 10;
    Opts.Verbose = false;
    trainMonDeq(Model, Train, Opts);
    Model.save(Out->ModelPath);
    FixpointSolver Solver(Model, Splitting::PeacemanRachford);
    for (size_t I = 0; I < Train.size() && Out->Samples.size() < 6; ++I)
      if (Solver.predict(Train.input(I)) == Train.Labels[I]) {
        Out->Samples.push_back(Train.input(I));
        Out->Labels.push_back(Train.Labels[I]);
      }
    return Out;
  }();
  return *F;
}

VerificationSpec specFor(const BatchFixture &Fix, size_t Sample,
                         double Epsilon) {
  VerificationSpec Spec;
  Spec.ModelPath = Fix.ModelPath;
  Spec.Center = Fix.Samples[Sample];
  Spec.Epsilon = Epsilon;
  Spec.TargetClass = Fix.Labels[Sample];
  Spec.Alpha1 = 0.5;
  Spec.InLo = Vector(Spec.Center.size());
  Spec.InHi = Vector(Spec.Center.size());
  for (size_t I = 0; I < Spec.Center.size(); ++I) {
    Spec.InLo[I] = std::max(Spec.Center[I] - Epsilon, 0.0);
    Spec.InHi[I] = std::min(Spec.Center[I] + Epsilon, 1.0);
  }
  return Spec;
}

/// Byte-identical outcome check, wall time excluded.
void expectSameOutcome(const RunOutcome &A, const RunOutcome &B,
                       size_t Index) {
  EXPECT_EQ(A.ModelLoaded, B.ModelLoaded) << "query " << Index;
  EXPECT_EQ(A.Certified, B.Certified) << "query " << Index;
  EXPECT_EQ(A.Containment, B.Containment) << "query " << Index;
  EXPECT_EQ(A.Refuted, B.Refuted) << "query " << Index;
  EXPECT_EQ(A.CertificateWritten, B.CertificateWritten) << "query " << Index;
  EXPECT_EQ(A.AttackSeed, B.AttackSeed) << "query " << Index;
  EXPECT_EQ(A.Detail, B.Detail) << "query " << Index;
  EXPECT_EQ(std::memcmp(&A.MarginLower, &B.MarginLower, sizeof(double)), 0)
      << "query " << Index << ": margins differ in some bit ("
      << A.MarginLower << " vs " << B.MarginLower << ")";
}

} // namespace

TEST(BatchDriverTest, OutcomesMatchInputOrder) {
  BatchFixture &Fix = batchFixture();
  ASSERT_GE(Fix.Samples.size(), 2u);
  std::vector<VerificationSpec> Specs;
  Specs.push_back(specFor(Fix, 0, 0.02));
  VerificationSpec Missing = specFor(Fix, 1, 0.02);
  Missing.ModelPath = "/nonexistent/model.bin";
  Specs.push_back(Missing);
  Specs.push_back(specFor(Fix, 1, 0.02));

  BatchOptions Opts;
  Opts.Jobs = 3;
  std::vector<RunOutcome> Outs = runSpecBatch(Specs, Opts);
  ASSERT_EQ(Outs.size(), 3u);
  EXPECT_TRUE(Outs[0].ModelLoaded);
  EXPECT_FALSE(Outs[1].ModelLoaded) << "results are slotted by input index";
  EXPECT_TRUE(Outs[2].ModelLoaded);
}

TEST(BatchDriverTest, JobCountNeverChangesOutcomes) {
  BatchFixture &Fix = batchFixture();
  ASSERT_GE(Fix.Samples.size(), 4u);
  // Mix of easy (small epsilon) and hopeless (huge epsilon, PGD refutation
  // enabled) queries so both code paths cross worker threads.
  std::vector<VerificationSpec> Specs;
  for (size_t I = 0; I < 4; ++I)
    Specs.push_back(specFor(Fix, I, 0.02));
  for (size_t I = 0; I < 2; ++I) {
    VerificationSpec Hard = specFor(Fix, I, 0.5);
    Hard.Attack = true;
    Specs.push_back(Hard);
  }

  BatchOptions Serial;
  Serial.Jobs = 1;
  std::vector<RunOutcome> Baseline = runSpecBatch(Specs, Serial);
  ASSERT_EQ(Baseline.size(), Specs.size());
  for (int Jobs : {2, 4}) {
    BatchOptions Parallel;
    Parallel.Jobs = Jobs;
    std::vector<RunOutcome> Outs = runSpecBatch(Specs, Parallel);
    ASSERT_EQ(Outs.size(), Baseline.size());
    for (size_t I = 0; I < Outs.size(); ++I)
      expectSameOutcome(Baseline[I], Outs[I], I);
  }
}

//===----------------------------------------------------------------------===//
// Batch-gemm fusion: fused waves must never change any outcome
//===----------------------------------------------------------------------===//

namespace {

/// Model big enough that the solver's layer gemms clear the batched
/// tier's default fusion threshold (2^18 multiply-adds): the
/// Peaceman-Rachford state matrix is 192 x 192, so a step gemm against a
/// k >= 8-generator abstract value is wave-eligible. Untrained on
/// purpose — fusion equivalence is about arithmetic, not accuracy.
struct FusionFixture {
  MonDeq Model;
  std::vector<VerificationSpec> Specs;
};

FusionFixture &fusionFixture() {
  static FusionFixture *F = [] {
    Rng InitRng(91);
    auto *Out = new FusionFixture{
        MonDeq::randomFc(InitRng, 16, 96, 3, 20.0), {}};
    Out->Model.fbAlphaBound(); // Warm the lazy cache before fan-out.
    Rng CenterRng(92);
    for (size_t I = 0; I < 6; ++I) {
      VerificationSpec Spec;
      Spec.ModelPath = "<preloaded>";
      Spec.Center = Vector(16);
      for (size_t J = 0; J < 16; ++J)
        Spec.Center[J] = CenterRng.uniform(0.2, 0.8);
      Spec.Epsilon = 0.01;
      Spec.TargetClass = int(I % 3);
      Spec.InLo = Vector(16);
      Spec.InHi = Vector(16);
      for (size_t J = 0; J < 16; ++J) {
        Spec.InLo[J] = Spec.Center[J] - Spec.Epsilon;
        Spec.InHi[J] = Spec.Center[J] + Spec.Epsilon;
      }
      // Mix fusible (Craft/Box) and unenrolled (Crown) queries so the
      // rendezvous proves it never stalls on non-participating workers.
      Spec.Verifier = I == 4 ? SpecVerifier::Crown
                             : (I % 2 ? SpecVerifier::Box
                                      : SpecVerifier::Craft);
      Out->Specs.push_back(std::move(Spec));
    }
    return Out;
  }();
  return *F;
}

} // namespace

TEST(BatchFusionTest, FusedOutcomesAreByteIdenticalToSequential) {
  FusionFixture &Fix = fusionFixture();
  std::vector<const MonDeq *> Models(Fix.Specs.size(), &Fix.Model);

  // Ground truth: one worker, no gate (batchFansOut is false at Jobs = 1,
  // so no fusion machinery is even constructed).
  std::vector<RunOutcome> Sequential =
      runSpecBatchLoaded(Fix.Specs, Models, 1);
  ASSERT_EQ(Sequential.size(), Fix.Specs.size());

  // Fusion off, parallel: the pre-existing jobs-1-vs-N contract.
  std::vector<RunOutcome> Unfused =
      runSpecBatchLoaded(Fix.Specs, Models, 4, /*FuseBatchGemms=*/false);
  for (size_t I = 0; I < Sequential.size(); ++I)
    expectSameOutcome(Sequential[I], Unfused[I], I);

  // Fusion on, parallel: outcomes must still be byte-identical, and the
  // batched tier must actually have fused work (with four identically
  // shaped co-queries the rendezvous aligns well within its window).
  kernels::resetBatchGemmStats();
  std::vector<RunOutcome> Fused =
      runSpecBatchLoaded(Fix.Specs, Models, 4, /*FuseBatchGemms=*/true);
  for (size_t I = 0; I < Sequential.size(); ++I)
    expectSameOutcome(Sequential[I], Fused[I], I);
  const kernels::BatchGemmStats S = kernels::batchGemmStats();
  EXPECT_GT(S.Waves, 0u) << "no rendezvous wave ever fired";
  EXPECT_GT(S.FusedProblems, 0u) << "no gemm executed fused";
  EXPECT_LT(S.PanelsPackedShared, S.PanelsPackedUnshared)
      << "pack sharing saved no work";
}

TEST(BatchFusionTest, KillSwitchDisablesFusionWithoutChangingOutcomes) {
  FusionFixture &Fix = fusionFixture();
  std::vector<const MonDeq *> Models(Fix.Specs.size(), &Fix.Model);
  std::vector<RunOutcome> Baseline = runSpecBatchLoaded(Fix.Specs, Models, 1);

  ASSERT_EQ(setenv("CRAFT_BATCH_FUSE", "0", 1), 0);
  kernels::resetBatchGemmStats();
  std::vector<RunOutcome> Disabled =
      runSpecBatchLoaded(Fix.Specs, Models, 4, /*FuseBatchGemms=*/true);
  ASSERT_EQ(unsetenv("CRAFT_BATCH_FUSE"), 0);

  EXPECT_EQ(kernels::batchGemmStats().Waves, 0u)
      << "CRAFT_BATCH_FUSE=0 must prevent any wave";
  for (size_t I = 0; I < Baseline.size(); ++I)
    expectSameOutcome(Baseline[I], Disabled[I], I);
}

TEST(BatchDriverTest, AttackSeedsAreDerivedFromTaskIndex) {
  BatchFixture &Fix = batchFixture();
  ASSERT_GE(Fix.Samples.size(), 2u);
  std::vector<VerificationSpec> Specs;
  for (size_t I = 0; I < 2; ++I) {
    VerificationSpec Hard = specFor(Fix, I, 0.5);
    Hard.Attack = true;
    Specs.push_back(Hard);
  }
  BatchOptions Opts;
  Opts.Jobs = 2;
  std::vector<RunOutcome> Outs = runSpecBatch(Specs, Opts);
  ASSERT_EQ(Outs.size(), 2u);
  for (size_t I = 0; I < Outs.size(); ++I) {
    ASSERT_FALSE(Outs[I].Certified) << "query " << I
                                    << ": epsilon 0.5 should not certify";
    EXPECT_EQ(Outs[I].AttackSeed, taskSeed(Opts.BaseSeed, I))
        << "query " << I;
  }
  // A spec-pinned seed wins over the derived one.
  Specs[0].AttackSeed = 12345;
  std::vector<RunOutcome> Pinned = runSpecBatch(Specs, Opts);
  EXPECT_EQ(Pinned[0].AttackSeed, 12345u);
}
