//===- domains/Activations.cpp --------------------------------------------===//

#include "domains/Activations.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace craft;

double craft::evalActivation(SmoothActivation Act, double X) {
  switch (Act) {
  case SmoothActivation::Sigmoid:
    return 1.0 / (1.0 + std::exp(-X));
  case SmoothActivation::Tanh:
    return std::tanh(X);
  }
  assert(false && "unknown activation");
  return 0.0;
}

double craft::evalActivationDerivative(SmoothActivation Act, double X) {
  switch (Act) {
  case SmoothActivation::Sigmoid: {
    double S = evalActivation(Act, X);
    return S * (1.0 - S);
  }
  case SmoothActivation::Tanh: {
    double T = std::tanh(X);
    return 1.0 - T * T;
  }
  }
  assert(false && "unknown activation");
  return 0.0;
}

/// Interior tangent points where f'(x) = Lambda. Both activations have
/// symmetric bell-shaped derivatives, so there are at most two such points
/// +-XStar with a closed form:
///  - sigmoid: s(1-s) = lambda  =>  s = (1 +- sqrt(1-4 lambda)) / 2,
///    x = logit(s);
///  - tanh: 1 - t^2 = lambda    =>  t = +- sqrt(1 - lambda), x = atanh(t).
static double tangentAbscissa(SmoothActivation Act, double Lambda) {
  switch (Act) {
  case SmoothActivation::Sigmoid: {
    double Disc = 1.0 - 4.0 * Lambda;
    if (Disc <= 0.0)
      return 0.0; // Lambda >= max slope 1/4: tangent only at 0.
    double S = 0.5 * (1.0 + std::sqrt(Disc));
    return std::log(S / (1.0 - S));
  }
  case SmoothActivation::Tanh: {
    if (Lambda >= 1.0)
      return 0.0;
    double T = std::sqrt(1.0 - Lambda);
    return std::atanh(T);
  }
  }
  assert(false && "unknown activation");
  return 0.0;
}

ActivationRelaxation craft::relaxActivation(SmoothActivation Act, double Lo,
                                            double Hi) {
  assert(Lo <= Hi && "empty input interval");
  ActivationRelaxation R;
  double FLo = evalActivation(Act, Lo), FHi = evalActivation(Act, Hi);

  if (Hi - Lo < 1e-12) {
    // Degenerate interval: exact evaluation, slope = derivative.
    R.Lambda = evalActivationDerivative(Act, Lo);
    double Off = FLo - R.Lambda * Lo;
    R.OffsetLo = R.OffsetHi = Off;
    return R;
  }

  R.Lambda = (FHi - FLo) / (Hi - Lo); // Secant slope (in (0, f'(0)]).

  // Extrema of g(x) = f(x) - Lambda x over [Lo, Hi]: at the endpoints
  // (equal by construction of the secant) and at interior tangent points.
  double GEnd = FLo - R.Lambda * Lo;
  R.OffsetLo = GEnd;
  R.OffsetHi = GEnd;
  double XStar = tangentAbscissa(Act, R.Lambda);
  for (double X : {XStar, -XStar}) {
    if (X <= Lo || X >= Hi)
      continue;
    double G = evalActivation(Act, X) - R.Lambda * X;
    R.OffsetLo = std::min(R.OffsetLo, G);
    R.OffsetHi = std::max(R.OffsetHi, G);
  }
  return R;
}

CHZonotope craft::applyActivationPrefix(const CHZonotope &Z,
                                        SmoothActivation Act, size_t Count) {
  assert(Count <= Z.dim() && "activation prefix out of range");
  Vector Lo = Z.lowerBounds(), Hi = Z.upperBounds();
  Vector Center = Z.center();
  Matrix Gens = Z.generators();
  Vector Box = Z.boxRadius();

  for (size_t I = 0; I < Count; ++I) {
    ActivationRelaxation R = relaxActivation(Act, Lo[I], Hi[I]);
    double Mid = 0.5 * (R.OffsetLo + R.OffsetHi);
    double Rad = 0.5 * (R.OffsetHi - R.OffsetLo);
    Center[I] = R.Lambda * Center[I] + Mid;
    for (size_t J = 0, K = Gens.cols(); J < K; ++J)
      Gens(I, J) *= R.Lambda;
    Box[I] = R.Lambda * Box[I] + Rad;
  }
  return CHZonotope(std::move(Center), std::move(Gens), Z.termIds(),
                    std::move(Box));
}

//===----------------------------------------------------------------------===//
// Proximal operators (App. B.6 pipeline)
//===----------------------------------------------------------------------===//

/// sigma^{-1}(y) on the activation's open range.
static double activationInverse(SmoothActivation Act, double Y) {
  switch (Act) {
  case SmoothActivation::Sigmoid:
    return std::log(Y / (1.0 - Y));
  case SmoothActivation::Tanh:
    return 0.5 * std::log((1.0 + Y) / (1.0 - Y));
  }
  assert(false && "unknown activation");
  return 0.0;
}

/// (sigma^{-1})'(y) = 1 / sigma'(sigma^{-1}(y)).
static double activationInverseDerivative(SmoothActivation Act, double Y) {
  switch (Act) {
  case SmoothActivation::Sigmoid:
    return 1.0 / (Y * (1.0 - Y));
  case SmoothActivation::Tanh:
    return 1.0 / (1.0 - Y * Y);
  }
  assert(false && "unknown activation");
  return 0.0;
}

/// Open range (RLo, RHi) of the activation.
static void activationRange(SmoothActivation Act, double &RLo, double &RHi) {
  switch (Act) {
  case SmoothActivation::Sigmoid:
    RLo = 0.0;
    RHi = 1.0;
    return;
  case SmoothActivation::Tanh:
    RLo = -1.0;
    RHi = 1.0;
    return;
  }
  assert(false && "unknown activation");
  RLo = -1.0; // Unreachable; keeps the outputs initialized under NDEBUG.
  RHi = 1.0;
}

double craft::proxActivation(SmoothActivation Act, double Alpha, double V) {
  assert(Alpha >= 0.0 && "negative prox scaling");
  if (Alpha <= 0.0)
    return V; // prox_{0 f} = identity.

  double RLo, RHi;
  activationRange(Act, RLo, RHi);
  // F(y) = (1 - a) y + a sigma^{-1}(y) - V is strictly increasing with
  // range R over the open interval: a bracketed root always exists.
  double Lo = RLo + 1e-15, Hi = RHi - 1e-15;
  double Y = std::clamp(evalActivation(Act, V), Lo, Hi); // Good initializer.
  for (int It = 0; It < 100; ++It) {
    double F = (1.0 - Alpha) * Y + Alpha * activationInverse(Act, Y) - V;
    if (F > 0.0)
      Hi = Y;
    else
      Lo = Y;
    double DF = (1.0 - Alpha) + Alpha * activationInverseDerivative(Act, Y);
    double Next = Y - F / DF;
    if (!(Next > Lo && Next < Hi))
      Next = 0.5 * (Lo + Hi); // Bisection safeguard.
    if (std::fabs(Next - Y) < 1e-15 * (1.0 + std::fabs(Y))) {
      Y = Next;
      break;
    }
    Y = Next;
  }
  return Y;
}

double craft::proxActivationDerivative(SmoothActivation Act, double Alpha,
                                       double V) {
  if (Alpha <= 0.0)
    return 1.0;
  double Y = proxActivation(Act, Alpha, V);
  return 1.0 / ((1.0 - Alpha) + Alpha * activationInverseDerivative(Act, Y));
}

/// Interior tangent points of prox_{a f} where its derivative equals
/// Lambda: psi(y) = (1/Lambda - (1 - a)) / a with psi = (sigma^{-1})',
/// solved in closed form per activation, then mapped back to the
/// pre-activation v = (1 - a) y + a sigma^{-1}(y). Both branches are
/// mapped explicitly: the sigmoid prox is symmetric about v = (1 - a)/2,
/// not 0, so negating one branch (as the pure-sigmoid transformer may)
/// would miss a tangent point. Returns the number of points written.
static int proxTangentPoints(SmoothActivation Act, double Alpha,
                             double Lambda, double Out[2]) {
  double Psi = (1.0 / Lambda - (1.0 - Alpha)) / Alpha;
  if (Psi <= 0.0)
    return 0;
  auto toV = [&](double Y) {
    return (1.0 - Alpha) * Y + Alpha * activationInverse(Act, Y);
  };
  switch (Act) {
  case SmoothActivation::Sigmoid: {
    // 1 / (y (1 - y)) = Psi  =>  y (1 - y) = 1 / Psi.
    double Disc = 1.0 - 4.0 / Psi;
    if (Disc <= 0.0)
      return 0;
    double Root = 0.5 * std::sqrt(Disc);
    Out[0] = toV(0.5 + Root);
    Out[1] = toV(0.5 - Root);
    return 2;
  }
  case SmoothActivation::Tanh: {
    // 1 / (1 - y^2) = Psi  =>  y^2 = 1 - 1 / Psi.
    double Y2 = 1.0 - 1.0 / Psi;
    if (Y2 <= 0.0)
      return 0;
    double Y = std::sqrt(Y2);
    Out[0] = toV(Y);
    Out[1] = toV(-Y);
    return 2;
  }
  }
  assert(false && "unknown activation");
  return 0;
}

ActivationRelaxation craft::relaxProxActivation(SmoothActivation Act,
                                                double Alpha, double Lo,
                                                double Hi) {
  assert(Lo <= Hi && "empty input interval");
  ActivationRelaxation R;
  if (Alpha <= 0.0) { // Identity.
    R.Lambda = 1.0;
    return R;
  }
  double FLo = proxActivation(Act, Alpha, Lo);
  double FHi = proxActivation(Act, Alpha, Hi);
  if (Hi - Lo < 1e-12) {
    R.Lambda = proxActivationDerivative(Act, Alpha, Lo);
    double Off = FLo - R.Lambda * Lo;
    R.OffsetLo = R.OffsetHi = Off;
    return R;
  }
  R.Lambda = (FHi - FLo) / (Hi - Lo); // Secant slope.

  // Endpoint offsets are equal up to prox solver error; include both.
  R.OffsetLo = std::min(FLo - R.Lambda * Lo, FHi - R.Lambda * Hi);
  R.OffsetHi = std::max(FLo - R.Lambda * Lo, FHi - R.Lambda * Hi);
  double VStar[2];
  int NStar = proxTangentPoints(Act, Alpha, R.Lambda, VStar);
  for (int K = 0; K < NStar; ++K) {
    double V = VStar[K];
    if (V <= Lo || V >= Hi)
      continue;
    double G = proxActivation(Act, Alpha, V) - R.Lambda * V;
    R.OffsetLo = std::min(R.OffsetLo, G);
    R.OffsetHi = std::max(R.OffsetHi, G);
  }
  // Guard against residual solver error in the prox evaluations.
  double Pad = 1e-12 * (1.0 + std::fabs(R.OffsetHi) + std::fabs(R.OffsetLo));
  R.OffsetLo -= Pad;
  R.OffsetHi += Pad;
  return R;
}

CHZonotope craft::applyProxActivationPrefix(const CHZonotope &Z,
                                            SmoothActivation Act,
                                            double Alpha, size_t Count) {
  assert(Count <= Z.dim() && "activation prefix out of range");
  Vector Lo = Z.lowerBounds(), Hi = Z.upperBounds();
  Vector Center = Z.center();
  Matrix Gens = Z.generators();
  Vector Box = Z.boxRadius();

  for (size_t I = 0; I < Count; ++I) {
    ActivationRelaxation R = relaxProxActivation(Act, Alpha, Lo[I], Hi[I]);
    double Mid = 0.5 * (R.OffsetLo + R.OffsetHi);
    double Rad = 0.5 * (R.OffsetHi - R.OffsetLo);
    Center[I] = R.Lambda * Center[I] + Mid;
    for (size_t J = 0, K = Gens.cols(); J < K; ++J)
      Gens(I, J) *= R.Lambda;
    Box[I] = R.Lambda * Box[I] + Rad;
  }
  return CHZonotope(std::move(Center), std::move(Gens), Z.termIds(),
                    std::move(Box));
}
