//===- tests/test_linalg.cpp - Linear algebra substrate tests -------------===//

#include "linalg/Eig.h"
#include "linalg/Lu.h"
#include "linalg/Matrix.h"
#include "linalg/Pca.h"
#include "linalg/Qr.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace craft;

namespace {

Matrix randomMatrix(Rng &R, size_t Rows, size_t Cols, double Scale = 1.0) {
  Matrix M(Rows, Cols);
  for (size_t I = 0; I < Rows; ++I)
    for (size_t J = 0; J < Cols; ++J)
      M(I, J) = R.gaussian(0.0, Scale);
  return M;
}

Vector randomVector(Rng &R, size_t N, double Scale = 1.0) {
  Vector V(N);
  for (size_t I = 0; I < N; ++I)
    V[I] = R.gaussian(0.0, Scale);
  return V;
}

double maxAbsDiff(const Matrix &A, const Matrix &B) {
  return (A - B).maxAbs();
}

//===----------------------------------------------------------------------===//
// Vector
//===----------------------------------------------------------------------===//

TEST(VectorTest, ArithmeticAndNorms) {
  Vector A = {1.0, -2.0, 3.0};
  Vector B = {0.5, 0.5, 0.5};
  Vector Sum = A + B;
  EXPECT_DOUBLE_EQ(Sum[0], 1.5);
  EXPECT_DOUBLE_EQ(Sum[1], -1.5);
  EXPECT_DOUBLE_EQ(Sum[2], 3.5);
  EXPECT_DOUBLE_EQ(A.normInf(), 3.0);
  EXPECT_DOUBLE_EQ(A.norm1(), 6.0);
  EXPECT_NEAR(A.norm2(), std::sqrt(14.0), 1e-14);
  EXPECT_DOUBLE_EQ(dot(A, B), 0.5 - 1.0 + 1.5);
}

TEST(VectorTest, CwiseOps) {
  Vector A = {1.0, -2.0};
  Vector B = {-3.0, 5.0};
  Vector Mx = cwiseMax(A, B);
  Vector Mn = cwiseMin(A, B);
  EXPECT_DOUBLE_EQ(Mx[0], 1.0);
  EXPECT_DOUBLE_EQ(Mx[1], 5.0);
  EXPECT_DOUBLE_EQ(Mn[0], -3.0);
  EXPECT_DOUBLE_EQ(Mn[1], -2.0);
  Vector Abs = A.abs();
  EXPECT_DOUBLE_EQ(Abs[1], 2.0);
  Vector Floored = B.cwiseMax(0.0);
  EXPECT_DOUBLE_EQ(Floored[0], 0.0);
  EXPECT_DOUBLE_EQ(Floored[1], 5.0);
}

//===----------------------------------------------------------------------===//
// Matrix
//===----------------------------------------------------------------------===//

TEST(MatrixTest, MatmulKnown) {
  Matrix A = {{1.0, 2.0}, {3.0, 4.0}};
  Matrix B = {{5.0, 6.0}, {7.0, 8.0}};
  Matrix C = A * B;
  EXPECT_DOUBLE_EQ(C(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(C(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(C(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(C(1, 1), 50.0);
}

TEST(MatrixTest, MatvecKnown) {
  Matrix A = {{1.0, 0.0, -1.0}, {2.0, 1.0, 0.0}};
  Vector X = {3.0, 4.0, 5.0};
  Vector Y = A * X;
  EXPECT_DOUBLE_EQ(Y[0], -2.0);
  EXPECT_DOUBLE_EQ(Y[1], 10.0);
}

TEST(MatrixTest, TransposeIdentityDiagonal) {
  Matrix A = {{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  Matrix At = A.transpose();
  EXPECT_EQ(At.rows(), 3u);
  EXPECT_EQ(At.cols(), 2u);
  EXPECT_DOUBLE_EQ(At(2, 1), 6.0);
  Matrix I = Matrix::identity(3);
  EXPECT_NEAR(maxAbsDiff(I * At, At), 0.0, 1e-15);
  Matrix D = Matrix::diagonal(Vector{2.0, 3.0});
  EXPECT_DOUBLE_EQ((D * A)(1, 0), 12.0);
}

TEST(MatrixTest, HcatAndColRange) {
  Matrix A = {{1.0}, {2.0}};
  Matrix B = {{3.0, 4.0}, {5.0, 6.0}};
  Matrix C = Matrix::hcat(A, B);
  EXPECT_EQ(C.cols(), 3u);
  EXPECT_DOUBLE_EQ(C(1, 2), 6.0);
  Matrix Mid = C.colRange(1, 2);
  EXPECT_NEAR(maxAbsDiff(Mid, B), 0.0, 1e-15);
  // hcat with an empty side is the identity operation.
  Matrix E;
  EXPECT_NEAR(maxAbsDiff(Matrix::hcat(E, B), B), 0.0, 1e-15);
}

TEST(MatrixTest, RowAbsSums) {
  Matrix A = {{1.0, -2.0}, {-3.0, -4.0}};
  Vector S = A.rowAbsSums();
  EXPECT_DOUBLE_EQ(S[0], 3.0);
  EXPECT_DOUBLE_EQ(S[1], 7.0);
}

TEST(MatrixTest, MatmulAssociativityProperty) {
  Rng R(7);
  Matrix A = randomMatrix(R, 4, 6);
  Matrix B = randomMatrix(R, 6, 3);
  Matrix C = randomMatrix(R, 3, 5);
  EXPECT_LT(maxAbsDiff((A * B) * C, A * (B * C)), 1e-12);
}

//===----------------------------------------------------------------------===//
// LU
//===----------------------------------------------------------------------===//

TEST(LuTest, SolveKnownSystem) {
  Matrix A = {{2.0, 1.0}, {1.0, 3.0}};
  LuDecomposition Lu(A);
  ASSERT_FALSE(Lu.isSingular());
  Vector X = Lu.solve(Vector{5.0, 10.0});
  EXPECT_NEAR(X[0], 1.0, 1e-12);
  EXPECT_NEAR(X[1], 3.0, 1e-12);
}

TEST(LuTest, DeterminantKnown) {
  Matrix A = {{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_NEAR(LuDecomposition(A).determinant(), -2.0, 1e-12);
  // Permutation-heavy case exercises the pivot sign.
  Matrix P = {{0.0, 1.0}, {1.0, 0.0}};
  EXPECT_NEAR(LuDecomposition(P).determinant(), -1.0, 1e-12);
}

TEST(LuTest, SingularDetection) {
  Matrix A = {{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_TRUE(LuDecomposition(A).isSingular());
  EXPECT_DOUBLE_EQ(LuDecomposition(A).determinant(), 0.0);
}

class LuRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(LuRandomTest, InverseRoundTrip) {
  Rng R(100 + GetParam());
  size_t N = static_cast<size_t>(GetParam());
  Matrix A = randomMatrix(R, N, N);
  // Diagonal boost keeps the random matrix comfortably non-singular.
  for (size_t I = 0; I < N; ++I)
    A(I, I) += 3.0;
  LuDecomposition Lu(A);
  ASSERT_FALSE(Lu.isSingular());
  EXPECT_LT(maxAbsDiff(A * Lu.inverse(), Matrix::identity(N)), 1e-9);

  Vector B = randomVector(R, N);
  Vector X = Lu.solve(B);
  EXPECT_LT((A * X - B).normInf(), 1e-9);

  Matrix Bm = randomMatrix(R, N, 3);
  Matrix Xm = Lu.solve(Bm);
  EXPECT_LT(maxAbsDiff(A * Xm, Bm), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuRandomTest,
                         ::testing::Values(1, 2, 3, 5, 10, 25, 60));

//===----------------------------------------------------------------------===//
// Symmetric eigendecomposition
//===----------------------------------------------------------------------===//

TEST(EigTest, Known2x2) {
  Matrix A = {{2.0, 1.0}, {1.0, 2.0}};
  SymmetricEig E = symmetricEig(A);
  EXPECT_NEAR(E.Values[0], 1.0, 1e-10);
  EXPECT_NEAR(E.Values[1], 3.0, 1e-10);
}

TEST(EigTest, DiagonalMatrix) {
  Matrix A = Matrix::diagonal(Vector{5.0, -1.0, 2.0});
  SymmetricEig E = symmetricEig(A);
  EXPECT_NEAR(E.Values[0], -1.0, 1e-12);
  EXPECT_NEAR(E.Values[1], 2.0, 1e-12);
  EXPECT_NEAR(E.Values[2], 5.0, 1e-12);
}

class EigRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(EigRandomTest, ReconstructionAndOrthogonality) {
  Rng R(200 + GetParam());
  size_t N = static_cast<size_t>(GetParam());
  Matrix M = randomMatrix(R, N, N);
  Matrix A = 0.5 * (M + M.transpose());
  SymmetricEig E = symmetricEig(A);

  // Eigenvalues ascend.
  for (size_t I = 1; I < N; ++I)
    EXPECT_LE(E.Values[I - 1], E.Values[I] + 1e-12);

  // V^T V = I.
  EXPECT_LT(maxAbsDiff(E.Vectors.transpose() * E.Vectors,
                       Matrix::identity(N)),
            1e-9);

  // A v = lambda v for every pair.
  for (size_t J = 0; J < N; ++J) {
    Vector V = E.Vectors.col(J);
    Vector Res = A * V - E.Values[J] * V;
    EXPECT_LT(Res.normInf(), 1e-8) << "eigenpair " << J;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigRandomTest,
                         ::testing::Values(1, 2, 3, 4, 8, 20, 50));

TEST(EigTest, SpectralNormMatchesKnown) {
  // Diagonal: spectral norm is the largest |entry|.
  Matrix D = Matrix::diagonal(Vector{-7.0, 3.0, 1.0});
  EXPECT_NEAR(spectralNorm(D), 7.0, 1e-9);
  // Rank-1 u v^T has spectral norm |u| |v|.
  Vector U = {3.0, 4.0};
  Vector V = {1.0, 2.0, 2.0};
  Matrix R1(2, 3);
  for (size_t I = 0; I < 2; ++I)
    for (size_t J = 0; J < 3; ++J)
      R1(I, J) = U[I] * V[J];
  EXPECT_NEAR(spectralNorm(R1), 5.0 * 3.0, 1e-8);
}

//===----------------------------------------------------------------------===//
// QR
//===----------------------------------------------------------------------===//

class QrRandomTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(QrRandomTest, FactorizationProperties) {
  auto [RowsI, ColsI] = GetParam();
  size_t Rows = static_cast<size_t>(RowsI), Cols = static_cast<size_t>(ColsI);
  Rng R(300 + RowsI * 17 + ColsI);
  Matrix A = randomMatrix(R, Rows, Cols);
  QrResult F = qr(A);
  EXPECT_LT(maxAbsDiff(F.Q * F.R, A), 1e-10);
  EXPECT_LT(maxAbsDiff(F.Q.transpose() * F.Q, Matrix::identity(Rows)), 1e-10);
  // R is upper trapezoidal.
  for (size_t I = 1; I < Rows; ++I)
    for (size_t J = 0; J < std::min<size_t>(I, Cols); ++J)
      EXPECT_NEAR(F.R(I, J), 0.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Shapes, QrRandomTest,
                         ::testing::Values(std::pair{3, 3}, std::pair{5, 2},
                                           std::pair{2, 5}, std::pair{10, 10},
                                           std::pair{1, 1}));

TEST(QrTest, RankDetection) {
  Matrix A = {{1.0, 2.0, 3.0}, {2.0, 4.0, 6.0}, {0.0, 0.0, 1.0}};
  EXPECT_EQ(matrixRank(A), 2u);
  EXPECT_EQ(matrixRank(Matrix(3, 3, 0.0)), 0u);
  EXPECT_EQ(matrixRank(Matrix::identity(4)), 4u);
}

//===----------------------------------------------------------------------===//
// PCA
//===----------------------------------------------------------------------===//

TEST(PcaTest, BasisIsOrthogonalAndOrdered) {
  Rng R(42);
  Matrix A = randomMatrix(R, 5, 12);
  Matrix B = pcaBasis(A);
  EXPECT_LT(maxAbsDiff(B.transpose() * B, Matrix::identity(5)), 1e-9);

  // Column j of B explains at least as much variance as column j+1.
  Matrix Proj = B.transpose() * A;
  Vector Var(5, 0.0);
  for (size_t I = 0; I < 5; ++I)
    for (size_t J = 0; J < 12; ++J)
      Var[I] += Proj(I, J) * Proj(I, J);
  for (size_t I = 1; I < 5; ++I)
    EXPECT_GE(Var[I - 1], Var[I] - 1e-9);
}

TEST(PcaTest, DominantDirectionRecovered) {
  // Columns clustered along (3, 4)/5 with tiny noise: the first principal
  // direction must align with it.
  Rng R(43);
  Matrix A(2, 40);
  for (size_t J = 0; J < 40; ++J) {
    double T = R.gaussian(0.0, 2.0);
    A(0, J) = 0.6 * T + R.gaussian(0.0, 1e-3);
    A(1, J) = 0.8 * T + R.gaussian(0.0, 1e-3);
  }
  Matrix B = pcaBasis(A);
  double Align = std::fabs(0.6 * B(0, 0) + 0.8 * B(1, 0));
  EXPECT_NEAR(Align, 1.0, 1e-4);
}

TEST(PcaTest, RankDeficientStillInvertible) {
  Matrix A(4, 2); // Rank <= 2 in R^4.
  A(0, 0) = 1.0;
  A(1, 1) = 2.0;
  Matrix B = pcaBasis(A);
  EXPECT_FALSE(LuDecomposition(B).isSingular());
}

TEST(PcaTest, EmptyGeneratorsGiveIdentity) {
  Matrix A(3, 0);
  Matrix B = pcaBasis(A);
  EXPECT_LT(maxAbsDiff(B, Matrix::identity(3)), 1e-15);
}

} // namespace
