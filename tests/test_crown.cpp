//===- tests/test_crown.cpp - Unrolled linear-bound baseline tests --------===//
//
// Tests for the Table 1 "Polyhedra" comparator (core/UnrolledCrown.h):
// soundness of the k-step linear bounds against concrete trajectories,
// soundness of the tail-corrected margins against concrete fixpoint
// margins, contraction-factor correctness, unroll-depth monotonicity, and
// cross-checks against the Craft verifier on the paper's running example.
//
//===----------------------------------------------------------------------===//

#include "core/UnrolledCrown.h"
#include "core/Verifier.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace craft;

namespace {

/// The paper's 2-d running example (Eq. 1): W given directly.
MonDeq runningExample() {
  Matrix W = {{-4.0, -1.0}, {1.0, -4.0}};
  Matrix U = {{1.0, 1.0}, {-1.0, 1.0}};
  Matrix V = {{1.0, -1.0}, {0.0, 0.0}};
  return MonDeq::fromW(4.0, W, U, Vector(2), V, Vector(2));
}

Vector randomInput(Rng &R, size_t Q) {
  Vector X(Q);
  for (size_t I = 0; I < Q; ++I)
    X[I] = R.uniform(0.1, 0.9);
  return X;
}

} // namespace

TEST(CrownTest, ContractionFactorBelowOneInsideConvergenceRange) {
  Rng R(21);
  MonDeq Model = MonDeq::randomFc(R, 10, 8, 3);
  CrownVerifier Ver(Model); // Default alpha: 0.9 * fbAlphaBound.
  EXPECT_LT(Ver.contraction(), 1.0);
  EXPECT_GT(Ver.contraction(), 0.0);

  CrownOptions TooBig;
  TooBig.Alpha = 10.0 * Model.fbAlphaBound();
  CrownVerifier Bad(Model, TooBig);
  EXPECT_GE(Bad.contraction(), 1.0);
}

TEST(CrownTest, OutsideConvergenceRangeNothingIsCertified) {
  Rng R(22);
  MonDeq Model = MonDeq::randomFc(R, 6, 5, 3);
  CrownOptions TooBig;
  TooBig.Alpha = 10.0 * Model.fbAlphaBound();
  CrownVerifier Ver(Model, TooBig);
  Vector X = randomInput(R, 6);
  CrownResult Res = Ver.verifyRobustness(X, 0, 1e-6);
  EXPECT_FALSE(Res.Certified);
  EXPECT_GE(Res.Tail, 1e300);
}

TEST(CrownTest, StateBoundsCoverConcreteTrajectories) {
  // The k-step linear bounds must cover the concrete k-th FB iterate from
  // s_0 = z*(center) for sampled inputs.
  Rng R(23);
  MonDeq Model = MonDeq::randomFc(R, 8, 6, 3);
  CrownOptions Opts;
  Opts.UnrollSteps = 25;
  CrownVerifier Ver(Model, Opts);
  Vector X = randomInput(R, 8);
  double Eps = 0.05;
  CrownResult Res = Ver.verifyRobustness(X, 0, Eps);

  FixpointSolver Pr(Model, Splitting::PeacemanRachford);
  FixpointSolver Fb(Model, Splitting::ForwardBackward,
                    0.9 * Model.fbAlphaBound());
  Vector Center = X;
  for (double &V : Center)
    V = std::clamp(V, 0.0, 1.0);
  Vector S0 = Pr.solve(Center).Z;

  for (int Trial = 0; Trial < 50; ++Trial) {
    Vector XP = X;
    for (size_t I = 0; I < XP.size(); ++I)
      XP[I] = std::clamp(X[I] + R.uniform(-Eps, Eps), 0.0, 1.0);
    Vector S = S0;
    for (int K = 0; K < Opts.UnrollSteps; ++K)
      S = Fb.fbStep(XP, S);
    for (size_t I = 0; I < S.size(); ++I) {
      EXPECT_GE(S[I], Res.StateBounds.lowerBounds()[I] - 1e-7);
      EXPECT_LE(S[I], Res.StateBounds.upperBounds()[I] + 1e-7);
    }
  }
}

class CrownSoundnessTest : public ::testing::TestWithParam<int> {};

TEST_P(CrownSoundnessTest, MarginLowerBoundsConcreteFixpointMargins) {
  // The tail-corrected margin must lower-bound the true fixpoint margin
  // for every sampled input in the ball.
  Rng R(100 + GetParam());
  MonDeq Model = MonDeq::randomFc(R, 8, 6, 4);
  CrownVerifier Ver(Model);
  Vector X = randomInput(R, 8);
  FixpointSolver Solver(Model, Splitting::PeacemanRachford);
  int Target = Solver.predict(X);
  double Eps = 0.03;
  CrownResult Res = Ver.verifyRobustness(X, Target, Eps);

  for (int Trial = 0; Trial < 40; ++Trial) {
    Vector XP = X;
    for (size_t I = 0; I < XP.size(); ++I)
      XP[I] = std::clamp(X[I] + R.uniform(-Eps, Eps), 0.0, 1.0);
    Vector Y = Solver.logits(XP);
    double Margin = 1e300;
    for (size_t C = 0; C < Y.size(); ++C)
      if ((int)C != Target)
        Margin = std::min(Margin, Y[Target] - Y[C]);
    ASSERT_GE(Margin, Res.MarginLower - 1e-6)
        << "seed " << GetParam() << " trial " << Trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrownSoundnessTest, ::testing::Range(0, 8));

TEST(CrownTest, DeeperUnrollingShrinksTheTail) {
  Rng R(24);
  MonDeq Model = MonDeq::randomFc(R, 8, 6, 3);
  Vector X = randomInput(R, 8);
  CrownOptions Shallow, Deep;
  Shallow.UnrollSteps = 5;
  Deep.UnrollSteps = 50;
  CrownResult RS = CrownVerifier(Model, Shallow).verifyRobustness(X, 0, 0.02);
  CrownResult RD = CrownVerifier(Model, Deep).verifyRobustness(X, 0, 0.02);
  EXPECT_LT(RD.Tail, RS.Tail);
}

TEST(CrownTest, CertifiesTheRunningExampleRegion) {
  // The paper's Section 2 example: the 0.05-box around (0.2, 0.5) is
  // classified to class 1 (y > 0); the unrolled baseline with its tail
  // should certify this easy 2-d instance, in agreement with Craft.
  MonDeq Model = runningExample();
  CrownOptions Opts;
  Opts.Alpha = 0.1;
  Opts.UnrollSteps = 80;
  CrownVerifier Ver(Model, Opts);
  Vector X = {0.2, 0.5};
  CrownResult Res = Ver.verifyRegion({0.15, 0.45}, {0.25, 0.55}, 0);
  EXPECT_TRUE(Res.Certified);
  EXPECT_GT(Res.MarginLower, 0.0);

  CraftVerifier Craft(Model);
  CraftResult CraftRes = Craft.verifyRegion({0.15, 0.45}, {0.25, 0.55}, 0);
  EXPECT_TRUE(CraftRes.Certified);
}

TEST(CrownTest, AdaptiveLowerSlopeIsNeverLooser) {
  Rng R(25);
  MonDeq Model = MonDeq::randomFc(R, 8, 6, 3);
  Vector X = randomInput(R, 8);
  CrownOptions Adaptive, Fixed;
  Adaptive.AdaptiveLower = true;
  Fixed.AdaptiveLower = false;
  CrownResult RA = CrownVerifier(Model, Adaptive).verifyRobustness(X, 0, 0.02);
  CrownResult RF = CrownVerifier(Model, Fixed).verifyRobustness(X, 0, 0.02);
  // Adaptive slopes tighten (or match) the state bounds' mean width.
  EXPECT_LE(RA.StateBounds.meanWidth(), RF.StateBounds.meanWidth() + 1e-9);
}
