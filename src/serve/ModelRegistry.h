//===- serve/ModelRegistry.h - Process-lifetime model cache -----*- C++ -*-===//
//
// Part of the Craft reproduction (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serve daemon's model store: each model file is loaded exactly once
/// per process, keyed by path, pinned for the process lifetime, and shared
/// read-only across every request that names it. Loading also computes the
/// model's semantic hash (`hashModel`) — the content identity the
/// ResultCache keys on — and warms the lazy FB alpha-bound cache so the
/// shared instance is safe to hand to concurrent workers.
///
/// Amortizing model load is the serve subsystem's founding win: repeated
/// queries against one monDEQ (alpha sweeps, width experiments,
/// CEGAR-style refinement loops) are the common traffic pattern, and
/// one-shot `craft verify` pays the load on every invocation.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFT_SERVE_MODELREGISTRY_H
#define CRAFT_SERVE_MODELREGISTRY_H

#include "nn/MonDeq.h"

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace craft {
namespace serve {

/// Loads models on first use and pins them until process exit. A failed
/// load is also pinned (negative caching): a bad path fails fast on every
/// subsequent request instead of re-trying the filesystem. Thread-safe;
/// concurrent first requests for one path perform one load.
class ModelRegistry {
public:
  /// One pinned model. Model is null iff loading failed.
  struct Entry {
    const MonDeq *Model = nullptr;
    uint64_t Hash = 0;       ///< Semantic content hash (hashModel).
    std::string Error;       ///< Load failure message when Model is null.
  };

  /// Returns the pinned entry for \p Path, loading it on first use.
  Entry get(const std::string &Path);

  /// Number of distinct paths requested so far (loaded or failed).
  size_t size() const;
  /// Number of successfully loaded (pinned) models.
  size_t loadedCount() const;

private:
  struct Pinned {
    std::once_flag Once;
    std::unique_ptr<MonDeq> Model; ///< Stable address for the Entry.
    uint64_t Hash = 0;
    std::string Error;
  };

  mutable std::mutex Mutex;
  /// node-based map: Pinned addresses are stable across insertions.
  std::map<std::string, Pinned> Entries;
};

} // namespace serve
} // namespace craft

#endif // CRAFT_SERVE_MODELREGISTRY_H
