//===- support/TraceJson.cpp - Chrome trace_event export ------------------===//
//
// Stack reconstruction: records arrive sorted by (tid, start, depth); a
// record opens after every already-open span that ended at or before its
// start has been closed. Because each record carries its own end time,
// the emitted B/E stream is balanced and properly nested per thread by
// construction — the property trace viewers require and the tests pin.
//
// JSON is assembled by hand (the json:: value type lives in serve/, a
// layer above support/). Timestamps are microseconds with nanosecond
// decimals, the trace_event convention.
//
//===----------------------------------------------------------------------===//

#include "support/TraceJson.h"

#include "support/Telemetry.h"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace craft {
namespace tracejson {

namespace {

void appendEscaped(std::string &Out, const std::string &S) {
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(C)));
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
}

/// Microsecond timestamp with ns precision, e.g. 12.345.
std::string microseconds(uint64_t Ns) {
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%llu.%03u",
                static_cast<unsigned long long>(Ns / 1000),
                static_cast<unsigned>(Ns % 1000));
  return Buf;
}

void appendEvent(std::string &Out, bool &First, char Phase, const char *Name,
                 uint32_t Tid, uint64_t TsNs) {
  if (!First)
    Out += ",\n";
  First = false;
  Out += "  {\"name\": \"";
  appendEscaped(Out, Name);
  Out += "\", \"ph\": \"";
  Out += Phase;
  Out += "\", \"pid\": 1, \"tid\": ";
  Out += std::to_string(Tid);
  Out += ", \"ts\": ";
  Out += microseconds(TsNs);
  Out += "}";
}

} // namespace

std::string toChromeTraceJson() {
  std::vector<telemetry::SpanRecord> Records = telemetry::traceSpans();

  std::string Out = "{\"traceEvents\": [\n";
  bool First = true;

  for (const auto &[Tid, Label] : telemetry::traceThreadLabels()) {
    if (!First)
      Out += ",\n";
    First = false;
    Out += "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
           "\"tid\": ";
    Out += std::to_string(Tid);
    Out += ", \"args\": {\"name\": \"";
    appendEscaped(Out, Label);
    Out += "\"}}";
  }

  // Records are sorted by (tid, start, depth); one open-span stack per
  // thread run. A parent's record sorts before its children (same start
  // implies lower depth first), and stack tops that ended before the next
  // record starts are closed first, so nesting comes out proper.
  struct Open {
    const char *Name;
    uint64_t EndNs;
  };
  std::vector<Open> Stack;
  size_t I = 0;
  while (I < Records.size()) {
    uint32_t Tid = Records[I].Tid;
    Stack.clear();
    for (; I < Records.size() && Records[I].Tid == Tid; ++I) {
      const telemetry::SpanRecord &Rec = Records[I];
      while (!Stack.empty() && Stack.back().EndNs <= Rec.StartNs) {
        appendEvent(Out, First, 'E', Stack.back().Name, Tid,
                    Stack.back().EndNs);
        Stack.pop_back();
      }
      appendEvent(Out, First, 'B', Rec.Name, Tid, Rec.StartNs);
      Stack.push_back({Rec.Name, Rec.StartNs + Rec.DurNs});
    }
    while (!Stack.empty()) {
      appendEvent(Out, First, 'E', Stack.back().Name, Tid,
                  Stack.back().EndNs);
      Stack.pop_back();
    }
  }

  Out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return Out;
}

bool writeTraceFile(const std::string &Path, std::string &Error) {
  std::string Doc = toChromeTraceJson();
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F) {
    Error = "cannot open '" + Path + "' for writing";
    return false;
  }
  bool Ok = std::fwrite(Doc.data(), 1, Doc.size(), F) == Doc.size();
  if (std::fclose(F) != 0)
    Ok = false;
  if (!Ok)
    Error = "short write to '" + Path + "'";
  return Ok;
}

bool maybeWriteTrace(const std::string &ExplicitPath, std::string &Error) {
  if (!telemetry::traceEnabled())
    return true;
  std::string Path = ExplicitPath;
  if (Path.empty()) {
    const char *Env = std::getenv("CRAFT_TRACE_OUT");
    Path = Env && *Env ? Env : "craft_trace.json";
  }
  return writeTraceFile(Path, Error);
}

} // namespace tracejson
} // namespace craft
