//===- support/Rng.h - Deterministic random number generation --*- C++ -*-===//
//
// Part of the Craft reproduction of "Abstract Interpretation of Fixpoint
// Iterators with Applications to Neural Networks" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic pseudo-random number generation used by dataset synthesis,
/// weight initialization, and the PGD attack. All experiment entry points
/// construct Rng with fixed seeds so every run of the harness is repeatable.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFT_SUPPORT_RNG_H
#define CRAFT_SUPPORT_RNG_H

#include <cstdint>
#include <random>
#include <vector>

namespace craft {

/// Seedable pseudo-random generator with the distributions used in this
/// project. Thin wrapper over std::mt19937_64 to keep seeding conventions in
/// one place.
class Rng {
public:
  explicit Rng(uint64_t Seed) : Engine(Seed) {}

  /// Uniform sample in [Lo, Hi).
  double uniform(double Lo = 0.0, double Hi = 1.0) {
    return std::uniform_real_distribution<double>(Lo, Hi)(Engine);
  }

  /// Standard (or scaled) normal sample.
  double gaussian(double Mean = 0.0, double Stddev = 1.0) {
    return std::normal_distribution<double>(Mean, Stddev)(Engine);
  }

  /// Uniform integer in the inclusive range [Lo, Hi].
  int uniformInt(int Lo, int Hi) {
    return std::uniform_int_distribution<int>(Lo, Hi)(Engine);
  }

  /// Bernoulli sample with success probability \p P.
  bool bernoulli(double P) {
    return std::bernoulli_distribution(P)(Engine);
  }

  /// A vector of N i.i.d. gaussian samples.
  std::vector<double> gaussianVector(size_t N, double Mean = 0.0,
                                     double Stddev = 1.0);

  /// In-place Fisher-Yates shuffle of index vector contents.
  void shuffle(std::vector<int> &Indices);

  std::mt19937_64 &engine() { return Engine; }

private:
  std::mt19937_64 Engine;
};

} // namespace craft

#endif // CRAFT_SUPPORT_RNG_H
