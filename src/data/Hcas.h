//===- data/Hcas.h - Horizontal collision avoidance MDP ---------*- C++ -*-===//
//
// Part of the Craft reproduction (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Simplified Horizontal Collision Avoidance System (HCAS) substrate for the
/// global-certification experiment (Section 6.2, Fig. 11). The original HCAS
/// training tables (Julian & Kochenderfer 2019) come from solving a Markov
/// Decision Process; they are not available offline, so this module builds
/// and solves an analogous MDP by value iteration (DESIGN.md substitution 7):
///
///  - State: intruder position (x, y) [kft] and relative heading theta in
///    the ownship frame (ownship flies along +x).
///  - Actions: COC, WL, WR, SL, SR (clear-of-conflict / weak / strong turns).
///  - Dynamics: both aircraft fly at constant speed; ownship turns per the
///    advisory; the frame is re-aligned to the ownship each step.
///  - Reward: near-mid-air-collision penalty inside 0.5 kft separation,
///    small advisory costs (stronger turns cost more).
///
/// The resulting look-up-table policy is the training data for the monDEQ
/// that Craft then certifies region-by-region via domain splitting.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFT_DATA_HCAS_H
#define CRAFT_DATA_HCAS_H

#include "data/Dataset.h"
#include "support/Rng.h"

#include <array>
#include <string>

namespace craft {

/// HCAS advisory actions.
enum HcasAction : int {
  COC = 0, ///< Clear of conflict.
  WL = 1,  ///< Weak left.
  WR = 2,  ///< Weak right.
  SL = 3,  ///< Strong left.
  SR = 4,  ///< Strong right.
};

/// The solved HCAS MDP: a discretized policy table over (x, y, theta).
class HcasMdp {
public:
  static constexpr size_t NumActions = 5;
  // State-space extent (matches the paper's Fig. 11 axes).
  static constexpr double XMin = -5.0, XMax = 25.0;   // kft
  static constexpr double YMin = -10.0, YMax = 20.0;  // kft

  /// Builds the grid and solves the MDP by value iteration.
  HcasMdp();

  /// Greedy policy action at a (continuous) state.
  int policyAction(double X, double Y, double Theta) const;

  /// Normalizes a state into the network input in [0, 1]^3.
  static Vector normalizeInput(double X, double Y, double Theta);

  /// Samples \p Count states uniformly from the state space and labels them
  /// with the table policy.
  Dataset makeDataset(Rng &R, size_t Count) const;

  static const char *actionName(int Action);

private:
  double stateValue(double X, double Y, double Theta) const;
  double actionValue(double X, double Y, double Theta, int Action) const;

  static constexpr size_t NX = 46, NY = 46, NTheta = 24;
  std::vector<double> Values; ///< NX * NY * NTheta state values.
};

} // namespace craft

#endif // CRAFT_DATA_HCAS_H
