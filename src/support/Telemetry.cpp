//===- support/Telemetry.cpp - Metrics registry and span tracer -----------===//
//
// The one timing TU of the telemetry layer: monotonicNanos() owns the
// steady-clock access here, sanctioned by craft-lint's det-time rule
// (tools/craft_lint/Lint.cpp classify()) exactly like support/Timer.h.
// Everything else is shard bookkeeping:
//
//  - Each thread lazily allocates a CounterShard (atomic arrays indexed
//    by metric id) and a TraceRing (fixed-capacity span ring). Handles
//    write to their own thread's shard with relaxed atomics — no
//    cross-thread contention on the hot path.
//  - Readers fold: registry mutex -> sum live shards + retired totals.
//  - Thread exit retires the shard/ring into plain totals under the
//    registry mutex, so counts and spans survive worker churn.
//
// The registry itself is a leaked singleton: worker threads may retire
// after main() returns, and a destructed registry would turn that into a
// use-after-free. ~80 KB leaked once per process, by design.
//
//===----------------------------------------------------------------------===//

#include "support/Telemetry.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>

namespace craft {
namespace telemetry {

namespace {

constexpr uint32_t InvalidId = ~0u;
constexpr size_t MaxCounters = 192;
constexpr size_t MaxGauges = 64;
constexpr size_t MaxHistograms = 48;
/// Span records kept per thread; older spans are evicted whole.
constexpr size_t RingCapacity = 8192;
/// Cap on spans carried over from exited threads (keeps long-lived
/// daemons with worker churn bounded; oldest retired spans drop first).
constexpr size_t MaxRetiredSpans = 1 << 16;

/// Per-thread metric storage. Atomic so readers can fold while the owner
/// keeps writing; the owner only ever uses relaxed fetch_add.
struct CounterShard {
  std::atomic<uint64_t> Counters[MaxCounters];
  std::atomic<uint64_t> HistBuckets[MaxHistograms][Histogram::NumBuckets];
  std::atomic<uint64_t> HistSum[MaxHistograms];

  CounterShard() {
    for (auto &C : Counters)
      C.store(0, std::memory_order_relaxed);
    for (auto &H : HistBuckets)
      for (auto &B : H)
        B.store(0, std::memory_order_relaxed);
    for (auto &S : HistSum)
      S.store(0, std::memory_order_relaxed);
  }
};

/// Folded contributions of exited threads. Registry-mutex protected.
struct RetiredTotals {
  uint64_t Counters[MaxCounters] = {};
  uint64_t HistBuckets[MaxHistograms][Histogram::NumBuckets] = {};
  uint64_t HistSum[MaxHistograms] = {};
};

/// Per-thread span ring. The light mutex serializes the owner's pushes
/// against reader folds; uncontended in steady state.
struct TraceRing {
  std::mutex Mu;
  std::vector<SpanRecord> Slots;
  size_t Next = 0;
  uint32_t Tid = 0;
  std::string Label;
};

struct Registry {
  std::mutex Mu;
  // Metric names, indexed by id. Insertion order; snapshot sorts.
  std::vector<std::string> CounterNames;
  std::vector<std::string> GaugeNames;
  std::vector<std::string> HistogramNames;
  std::map<std::string, uint32_t> CounterIds;
  std::map<std::string, uint32_t> GaugeIds;
  std::map<std::string, uint32_t> HistogramIds;

  std::vector<CounterShard *> Shards;
  RetiredTotals Retired;
  std::atomic<int64_t> Gauges[MaxGauges];

  std::vector<TraceRing *> Rings;
  std::vector<SpanRecord> RetiredSpans;
  std::vector<std::pair<uint32_t, std::string>> RetiredLabels;
  uint32_t NextTid = 1;

  Registry() {
    for (auto &G : Gauges)
      G.store(0, std::memory_order_relaxed);
  }
};

Registry &reg() {
  // Leaked on purpose — see the file header.
  static Registry *R = new Registry();
  return *R;
}

/// Thread-local anchor whose destructor retires this thread's shard and
/// ring into the registry.
struct TlsState {
  CounterShard *Shard = nullptr;
  TraceRing *Ring = nullptr;
  uint32_t SpanDepth = 0;
  PhaseTotals Phases;

  ~TlsState() {
    if (!Shard && !Ring)
      return;
    Registry &R = reg();
    std::lock_guard<std::mutex> Lock(R.Mu);
    if (Shard) {
      for (size_t I = 0; I < MaxCounters; ++I)
        R.Retired.Counters[I] +=
            Shard->Counters[I].load(std::memory_order_relaxed);
      for (size_t H = 0; H < MaxHistograms; ++H) {
        for (size_t B = 0; B < Histogram::NumBuckets; ++B)
          R.Retired.HistBuckets[H][B] +=
              Shard->HistBuckets[H][B].load(std::memory_order_relaxed);
        R.Retired.HistSum[H] +=
            Shard->HistSum[H].load(std::memory_order_relaxed);
      }
      R.Shards.erase(std::remove(R.Shards.begin(), R.Shards.end(), Shard),
                     R.Shards.end());
      delete Shard;
    }
    if (Ring) {
      for (const SpanRecord &Rec : Ring->Slots)
        R.RetiredSpans.push_back(Rec);
      if (R.RetiredSpans.size() > MaxRetiredSpans)
        R.RetiredSpans.erase(R.RetiredSpans.begin(),
                             R.RetiredSpans.end() - MaxRetiredSpans);
      if (!Ring->Label.empty())
        R.RetiredLabels.emplace_back(Ring->Tid, Ring->Label);
      R.Rings.erase(std::remove(R.Rings.begin(), R.Rings.end(), Ring),
                    R.Rings.end());
      delete Ring;
    }
  }
};

thread_local TlsState Tls;

CounterShard &shard() {
  if (!Tls.Shard) {
    auto *S = new CounterShard();
    Registry &R = reg();
    std::lock_guard<std::mutex> Lock(R.Mu);
    R.Shards.push_back(S);
    Tls.Shard = S;
  }
  return *Tls.Shard;
}

TraceRing &ring() {
  if (!Tls.Ring) {
    auto *Rg = new TraceRing();
    Rg->Slots.reserve(RingCapacity);
    Registry &R = reg();
    std::lock_guard<std::mutex> Lock(R.Mu);
    Rg->Tid = R.NextTid++;
    R.Rings.push_back(Rg);
    Tls.Ring = Rg;
  }
  return *Tls.Ring;
}

/// -1 = not yet read from the environment.
std::atomic<int> TimingState{-1};
std::atomic<int> TraceState{-1};

bool envFlagIs(const char *Name, const char *Value) {
  const char *Env = std::getenv(Name);
  return Env && std::strcmp(Env, Value) == 0;
}

} // namespace

//===----------------------------------------------------------------------===//
// Clock and switches
//===----------------------------------------------------------------------===//

uint64_t monotonicNanos() {
  if (!timingEnabled())
    return 0;
  // Anchored at first use so exported timestamps start near zero.
  static const std::chrono::steady_clock::time_point Anchor =
      std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - Anchor)
          .count());
}

bool timingEnabled() {
  int S = TimingState.load(std::memory_order_relaxed);
  if (S < 0) {
    S = envFlagIs("CRAFT_TELEMETRY", "0") ? 0 : 1;
    TimingState.store(S, std::memory_order_relaxed);
  }
  return S == 1;
}

void setTimingEnabledForTest(bool Enabled) {
  TimingState.store(Enabled ? 1 : 0, std::memory_order_relaxed);
}

bool traceEnabled() {
  int S = TraceState.load(std::memory_order_relaxed);
  if (S < 0) {
    S = envFlagIs("CRAFT_TRACE", "1") ? 1 : 0;
    TraceState.store(S, std::memory_order_relaxed);
  }
  return S == 1 && timingEnabled();
}

void setTraceEnabled(bool Enabled) {
  TraceState.store(Enabled ? 1 : 0, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Histogram bucketing
//===----------------------------------------------------------------------===//

size_t Histogram::bucketFor(uint64_t V) {
  if (V < 4)
    return static_cast<size_t>(V); // 0..3 exact.
  // Octave o = floor(log2 V) >= 2, with 4 sub-buckets per octave picked
  // by the two bits below the leading one.
  unsigned O = static_cast<unsigned>(std::bit_width(V)) - 1;
  unsigned Sub = static_cast<unsigned>((V >> (O - 2)) & 3);
  size_t Idx = 4 + static_cast<size_t>(O - 2) * 4 + Sub;
  return Idx < NumBuckets ? Idx : NumBuckets - 1;
}

uint64_t Histogram::bucketUpperBound(size_t I) {
  if (I < 4)
    return static_cast<uint64_t>(I);
  if (I >= NumBuckets - 1)
    return UINT64_MAX; // Overflow bucket.
  size_t Rel = I - 4;
  unsigned O = static_cast<unsigned>(Rel / 4) + 2;
  unsigned Sub = static_cast<unsigned>(Rel % 4);
  // Largest V with octave O and sub-bucket Sub: the next boundary - 1.
  return ((static_cast<uint64_t>(4 + Sub + 1)) << (O - 2)) - 1;
}

uint64_t HistogramSnapshot::percentile(double P) const {
  if (Count == 0)
    return 0;
  double Clamped = std::min(100.0, std::max(0.0, P));
  uint64_t Rank = static_cast<uint64_t>(
      std::ceil(Clamped / 100.0 * static_cast<double>(Count)));
  if (Rank == 0)
    Rank = 1;
  uint64_t Seen = 0;
  for (size_t I = 0; I < Buckets.size(); ++I) {
    Seen += Buckets[I];
    if (Seen >= Rank)
      return Histogram::bucketUpperBound(I);
  }
  return Histogram::bucketUpperBound(Buckets.empty() ? 0 : Buckets.size() - 1);
}

//===----------------------------------------------------------------------===//
// Handles
//===----------------------------------------------------------------------===//

namespace {

/// Shared registration: returns the id for Name in (Names, Ids), or
/// InvalidId when the fixed capacity is exhausted (the handle goes inert
/// rather than aliasing another metric).
uint32_t internName(const char *Name, std::vector<std::string> &Names,
                    std::map<std::string, uint32_t> &Ids, size_t Capacity) {
  Registry &R = reg();
  std::lock_guard<std::mutex> Lock(R.Mu);
  auto It = Ids.find(Name);
  if (It != Ids.end())
    return It->second;
  if (Names.size() >= Capacity)
    return InvalidId;
  uint32_t Id = static_cast<uint32_t>(Names.size());
  Names.push_back(Name);
  Ids.emplace(Name, Id);
  return Id;
}

} // namespace

Counter counterMetric(const char *Name) {
  Registry &R = reg();
  return Counter(internName(Name, R.CounterNames, R.CounterIds, MaxCounters));
}

Gauge gaugeMetric(const char *Name) {
  Registry &R = reg();
  return Gauge(internName(Name, R.GaugeNames, R.GaugeIds, MaxGauges));
}

Histogram histogramMetric(const char *Name) {
  Registry &R = reg();
  return Histogram(
      internName(Name, R.HistogramNames, R.HistogramIds, MaxHistograms));
}

void Counter::add(uint64_t N) const {
  if (Id == InvalidId)
    return;
  shard().Counters[Id].fetch_add(N, std::memory_order_relaxed);
}

uint64_t Counter::value() const {
  if (Id == InvalidId)
    return 0;
  Registry &R = reg();
  std::lock_guard<std::mutex> Lock(R.Mu);
  uint64_t Total = R.Retired.Counters[Id];
  for (const CounterShard *S : R.Shards)
    Total += S->Counters[Id].load(std::memory_order_relaxed);
  return Total;
}

void Gauge::set(int64_t V) const {
  if (Id == InvalidId)
    return;
  reg().Gauges[Id].store(V, std::memory_order_relaxed);
}

void Gauge::add(int64_t Delta) const {
  if (Id == InvalidId)
    return;
  reg().Gauges[Id].fetch_add(Delta, std::memory_order_relaxed);
}

void Gauge::noteMax(int64_t V) const {
  if (Id == InvalidId)
    return;
  std::atomic<int64_t> &G = reg().Gauges[Id];
  int64_t Cur = G.load(std::memory_order_relaxed);
  while (Cur < V &&
         !G.compare_exchange_weak(Cur, V, std::memory_order_relaxed))
    ;
}

int64_t Gauge::value() const {
  if (Id == InvalidId)
    return 0;
  return reg().Gauges[Id].load(std::memory_order_relaxed);
}

void Histogram::observe(uint64_t V) const {
  if (Id == InvalidId)
    return;
  CounterShard &S = shard();
  S.HistBuckets[Id][bucketFor(V)].fetch_add(1, std::memory_order_relaxed);
  S.HistSum[Id].fetch_add(V, std::memory_order_relaxed);
}

namespace {

/// Registry-mutex-held fold of one histogram id into a snapshot.
HistogramSnapshot foldHistogramLocked(const Registry &R, uint32_t Id) {
  HistogramSnapshot Snap;
  Snap.Buckets.assign(Histogram::NumBuckets, 0);
  for (size_t B = 0; B < Histogram::NumBuckets; ++B)
    Snap.Buckets[B] = R.Retired.HistBuckets[Id][B];
  Snap.Sum = R.Retired.HistSum[Id];
  for (const CounterShard *S : R.Shards) {
    for (size_t B = 0; B < Histogram::NumBuckets; ++B)
      Snap.Buckets[B] += S->HistBuckets[Id][B].load(std::memory_order_relaxed);
    Snap.Sum += S->HistSum[Id].load(std::memory_order_relaxed);
  }
  for (uint64_t B : Snap.Buckets)
    Snap.Count += B;
  return Snap;
}

} // namespace

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot Snap;
  Snap.Buckets.assign(NumBuckets, 0);
  if (Id == InvalidId)
    return Snap;
  Registry &R = reg();
  std::lock_guard<std::mutex> Lock(R.Mu);
  return foldHistogramLocked(R, Id);
}

MetricsSnapshot snapshotMetrics() {
  MetricsSnapshot M;
  Registry &R = reg();
  std::lock_guard<std::mutex> Lock(R.Mu);
  for (uint32_t Id = 0; Id < R.CounterNames.size(); ++Id) {
    uint64_t Total = R.Retired.Counters[Id];
    for (const CounterShard *S : R.Shards)
      Total += S->Counters[Id].load(std::memory_order_relaxed);
    M.Counters.emplace_back(R.CounterNames[Id], Total);
  }
  for (uint32_t Id = 0; Id < R.GaugeNames.size(); ++Id)
    M.Gauges.emplace_back(R.GaugeNames[Id],
                          R.Gauges[Id].load(std::memory_order_relaxed));
  for (uint32_t Id = 0; Id < R.HistogramNames.size(); ++Id)
    M.Histograms.emplace_back(R.HistogramNames[Id],
                              foldHistogramLocked(R, Id));
  auto ByName = [](const auto &A, const auto &B) { return A.first < B.first; };
  std::sort(M.Counters.begin(), M.Counters.end(), ByName);
  std::sort(M.Gauges.begin(), M.Gauges.end(), ByName);
  std::sort(M.Histograms.begin(), M.Histograms.end(), ByName);
  return M;
}

//===----------------------------------------------------------------------===//
// Spans
//===----------------------------------------------------------------------===//

TraceSpan::TraceSpan(const char *N) : Name(N) {
  if (!traceEnabled())
    return;
  Armed = true;
  StartNs = monotonicNanos();
  ++Tls.SpanDepth;
}

TraceSpan::~TraceSpan() {
  if (!Armed)
    return;
  uint64_t EndNs = monotonicNanos();
  uint32_t Depth = --Tls.SpanDepth;
  TraceRing &Rg = ring();
  std::lock_guard<std::mutex> Lock(Rg.Mu);
  SpanRecord Rec{Name, StartNs, EndNs - StartNs, Rg.Tid, Depth};
  if (Rg.Slots.size() < RingCapacity) {
    Rg.Slots.push_back(Rec);
  } else {
    Rg.Slots[Rg.Next] = Rec;
    Rg.Next = (Rg.Next + 1) % RingCapacity;
  }
}

void setCurrentThreadLabel(const std::string &Label) {
  TraceRing &Rg = ring();
  std::lock_guard<std::mutex> Lock(Rg.Mu);
  Rg.Label = Label;
}

std::vector<SpanRecord> traceSpans() {
  std::vector<SpanRecord> Out;
  Registry &R = reg();
  std::lock_guard<std::mutex> Lock(R.Mu);
  Out = R.RetiredSpans;
  for (TraceRing *Rg : R.Rings) {
    std::lock_guard<std::mutex> RingLock(Rg->Mu);
    Out.insert(Out.end(), Rg->Slots.begin(), Rg->Slots.end());
  }
  std::sort(Out.begin(), Out.end(),
            [](const SpanRecord &A, const SpanRecord &B) {
              if (A.Tid != B.Tid)
                return A.Tid < B.Tid;
              if (A.StartNs != B.StartNs)
                return A.StartNs < B.StartNs;
              return A.Depth < B.Depth;
            });
  return Out;
}

std::vector<std::pair<uint32_t, std::string>> traceThreadLabels() {
  std::vector<std::pair<uint32_t, std::string>> Out;
  Registry &R = reg();
  std::lock_guard<std::mutex> Lock(R.Mu);
  Out = R.RetiredLabels;
  for (TraceRing *Rg : R.Rings) {
    std::lock_guard<std::mutex> RingLock(Rg->Mu);
    if (!Rg->Label.empty())
      Out.emplace_back(Rg->Tid, Rg->Label);
  }
  std::sort(Out.begin(), Out.end());
  return Out;
}

void clearTrace() {
  Registry &R = reg();
  std::lock_guard<std::mutex> Lock(R.Mu);
  R.RetiredSpans.clear();
  R.RetiredLabels.clear();
  for (TraceRing *Rg : R.Rings) {
    std::lock_guard<std::mutex> RingLock(Rg->Mu);
    Rg->Slots.clear();
    Rg->Next = 0;
  }
}

//===----------------------------------------------------------------------===//
// Phase attribution
//===----------------------------------------------------------------------===//

PhaseTimer::PhaseTimer(Phase Ph) : P(Ph) {
  if (!timingEnabled())
    return;
  Armed = true;
  StartNs = monotonicNanos();
}

PhaseTimer::~PhaseTimer() {
  if (!Armed)
    return;
  Tls.Phases.Ns[static_cast<size_t>(P)] += monotonicNanos() - StartNs;
}

PhaseTotals phaseTotals() { return Tls.Phases; }

} // namespace telemetry
} // namespace craft
