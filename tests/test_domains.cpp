//===- tests/test_domains.cpp - Abstract domain tests ---------------------===//
//
// Unit and property tests for the Interval and CH-Zonotope domains:
// transformer exactness/soundness, consolidation (Thm 4.1), containment
// (Thm 4.2), quasi-join, volume, and the LP containment baseline.
//
//===----------------------------------------------------------------------===//

#include "domains/CHZonotope.h"
#include "domains/Interval.h"
#include "domains/OrderReduction.h"
#include "domains/Volume.h"
#include "domains/ZonotopeContainmentLP.h"
#include "linalg/Lu.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace craft;

namespace {

Matrix randomMatrix(Rng &R, size_t Rows, size_t Cols, double Scale = 1.0) {
  Matrix M(Rows, Cols);
  for (size_t I = 0; I < Rows; ++I)
    for (size_t J = 0; J < Cols; ++J)
      M(I, J) = R.gaussian(0.0, Scale);
  return M;
}

Vector randomVector(Rng &R, size_t N, double Scale = 1.0) {
  Vector V(N);
  for (size_t I = 0; I < N; ++I)
    V[I] = R.gaussian(0.0, Scale);
  return V;
}

/// Random point of gamma(Z): evaluates center + A nu + diag(b) eta for
/// uniformly sampled nu, eta in [-1,1].
Vector samplePoint(Rng &R, const CHZonotope &Z) {
  Vector Nu(Z.numGenerators());
  for (double &V : Nu)
    V = R.uniform(-1.0, 1.0);
  Vector X = Z.center() + Z.generators() * Nu;
  for (size_t I = 0; I < Z.dim(); ++I)
    X[I] += Z.boxRadius()[I] * R.uniform(-1.0, 1.0);
  return X;
}

/// Random CH-Zonotope with K generators and a (possibly zero) box.
CHZonotope randomZonotope(Rng &R, size_t P, size_t K, bool WithBox) {
  Vector Center = randomVector(R, P, 2.0);
  Matrix Gens = randomMatrix(R, P, K, 0.5);
  std::vector<uint64_t> Ids(K);
  for (auto &Id : Ids)
    Id = freshErrorTermId();
  Vector Box(P, 0.0);
  if (WithBox)
    for (size_t I = 0; I < P; ++I)
      Box[I] = std::fabs(R.gaussian(0.0, 0.3));
  return CHZonotope(Center, Gens, Ids, Box);
}

/// Membership in a box-free zonotope with square invertible generators:
/// x in gamma(Z) iff ||A^{-1}(x - a)||_inf <= 1.
bool insideProper(const CHZonotope &Z, const Matrix &InvGens, const Vector &X,
                  double Tol = 1e-9) {
  Vector Nu = InvGens * (X - Z.center());
  // Any box slack can absorb per-dimension remainder; handle b = 0 exactly
  // and b > 0 conservatively by requiring the generator part alone to fit.
  return Nu.normInf() <= 1.0 + Tol;
}

//===----------------------------------------------------------------------===//
// IntervalVector
//===----------------------------------------------------------------------===//

TEST(IntervalTest, FromBoundsRoundTrip) {
  IntervalVector B = IntervalVector::fromBounds(Vector{-1.0, 2.0},
                                                Vector{3.0, 2.0});
  EXPECT_DOUBLE_EQ(B.lowerBounds()[0], -1.0);
  EXPECT_DOUBLE_EQ(B.upperBounds()[0], 3.0);
  EXPECT_DOUBLE_EQ(B.radius()[1], 0.0);
  EXPECT_DOUBLE_EQ(B.meanWidth(), 2.0);
}

TEST(IntervalTest, AffineIsExactHull) {
  IntervalVector B = IntervalVector::fromBounds(Vector{-1.0, 0.0},
                                                Vector{1.0, 2.0});
  Matrix M = {{1.0, -1.0}, {2.0, 0.0}};
  IntervalVector Y = B.affine(M, Vector{0.5, 0.0});
  // dim0: x0 - x1 + 0.5 in [-3, 1] + 0.5.
  EXPECT_DOUBLE_EQ(Y.lowerBounds()[0], -2.5);
  EXPECT_DOUBLE_EQ(Y.upperBounds()[0], 1.5);
  // dim1: 2 x0 in [-2, 2].
  EXPECT_DOUBLE_EQ(Y.lowerBounds()[1], -2.0);
  EXPECT_DOUBLE_EQ(Y.upperBounds()[1], 2.0);
}

TEST(IntervalTest, ReluPrefix) {
  IntervalVector B = IntervalVector::fromBounds(Vector{-2.0, -3.0, 1.0},
                                                Vector{-1.0, 4.0, 2.0});
  IntervalVector Y = B.reluPrefix(2);
  EXPECT_DOUBLE_EQ(Y.lowerBounds()[0], 0.0);
  EXPECT_DOUBLE_EQ(Y.upperBounds()[0], 0.0);
  EXPECT_DOUBLE_EQ(Y.lowerBounds()[1], 0.0);
  EXPECT_DOUBLE_EQ(Y.upperBounds()[1], 4.0);
  // Dimension 2 is beyond the prefix: untouched.
  EXPECT_DOUBLE_EQ(Y.lowerBounds()[2], 1.0);
}

TEST(IntervalTest, JoinAndContains) {
  IntervalVector A = IntervalVector::fromBounds(Vector{0.0}, Vector{1.0});
  IntervalVector B = IntervalVector::fromBounds(Vector{2.0}, Vector{3.0});
  IntervalVector J = IntervalVector::join(A, B);
  EXPECT_TRUE(J.contains(A));
  EXPECT_TRUE(J.contains(B));
  EXPECT_FALSE(A.contains(J));
}

TEST(IntervalTest, StackAndSlice) {
  IntervalVector A = IntervalVector::fromBounds(Vector{0.0}, Vector{1.0});
  IntervalVector B = IntervalVector::fromBounds(Vector{-1.0, 5.0},
                                                Vector{1.0, 6.0});
  IntervalVector S = IntervalVector::stack(A, B);
  EXPECT_EQ(S.dim(), 3u);
  EXPECT_DOUBLE_EQ(S.upperBounds()[2], 6.0);
  IntervalVector Back = S.slice(1, 2);
  EXPECT_TRUE(Back.contains(B));
  EXPECT_TRUE(B.contains(Back));
}

//===----------------------------------------------------------------------===//
// CH-Zonotope basics
//===----------------------------------------------------------------------===//

TEST(CHZonotopeTest, FromBoxBounds) {
  CHZonotope Z = CHZonotope::fromBox(Vector{-1.0, 2.0}, Vector{3.0, 2.0});
  EXPECT_EQ(Z.numGenerators(), 1u); // Zero-width dims get no column.
  EXPECT_DOUBLE_EQ(Z.lowerBounds()[0], -1.0);
  EXPECT_DOUBLE_EQ(Z.upperBounds()[0], 3.0);
  EXPECT_DOUBLE_EQ(Z.lowerBounds()[1], 2.0);
}

TEST(CHZonotopeTest, PointAbstraction) {
  CHZonotope Z = CHZonotope::point(Vector{1.0, -2.0});
  EXPECT_EQ(Z.numGenerators(), 0u);
  EXPECT_DOUBLE_EQ(Z.meanWidth(), 0.0);
}

TEST(CHZonotopeTest, AffineIsExactOnErrorTerms) {
  // Affine transformers on zonotopes are exact: evaluating the output
  // abstraction at the same error values must reproduce the mapped point.
  Rng R(1);
  CHZonotope Z = randomZonotope(R, 3, 5, /*WithBox=*/false);
  Matrix M = randomMatrix(R, 2, 3);
  Vector T = randomVector(R, 2);
  CHZonotope Y = Z.affine(M, T);
  ASSERT_EQ(Y.numGenerators(), Z.numGenerators());

  for (int Trial = 0; Trial < 20; ++Trial) {
    Vector Nu(Z.numGenerators());
    for (double &V : Nu)
      V = R.uniform(-1.0, 1.0);
    Vector X = Z.center() + Z.generators() * Nu;
    Vector Mapped = M * X + T;
    Vector YEval = Y.center() + Y.generators() * Nu;
    EXPECT_LT((Mapped - YEval).normInf(), 1e-10);
  }
}

TEST(CHZonotopeTest, AffineBoxCastKeepsBounds) {
  Rng R(2);
  CHZonotope Z = randomZonotope(R, 3, 4, /*WithBox=*/true);
  Matrix M = randomMatrix(R, 3, 3);
  Vector T = randomVector(R, 3);

  CHZonotope Cast = Z.affine(M, T, BoxPolicy::CastToGenerators);
  CHZonotope Ivl = Z.affine(M, T, BoxPolicy::IntervalMap);

  // Both are sound; sampled images must lie within both interval hulls, and
  // the cast variant is at least as tight.
  for (int Trial = 0; Trial < 50; ++Trial) {
    Vector X = samplePoint(R, Z);
    Vector Y = M * X + T;
    for (size_t I = 0; I < 3; ++I) {
      EXPECT_LE(Y[I], Cast.upperBounds()[I] + 1e-9);
      EXPECT_GE(Y[I], Cast.lowerBounds()[I] - 1e-9);
      EXPECT_LE(Y[I], Ivl.upperBounds()[I] + 1e-9);
      EXPECT_GE(Y[I], Ivl.lowerBounds()[I] - 1e-9);
    }
  }
  for (size_t I = 0; I < 3; ++I) {
    EXPECT_LE(Cast.upperBounds()[I], Ivl.upperBounds()[I] + 1e-9);
    EXPECT_GE(Cast.lowerBounds()[I], Ivl.lowerBounds()[I] - 1e-9);
  }
}

TEST(CHZonotopeTest, LinearCombineMergesSharedIds) {
  // y = Z - Z must be exactly {0} when ids are shared.
  Rng R(3);
  CHZonotope Z = randomZonotope(R, 3, 6, /*WithBox=*/false);
  Matrix I3 = Matrix::identity(3);
  Matrix NegI3 = -1.0 * Matrix::identity(3);
  std::pair<const Matrix *, const CHZonotope *> Terms[] = {{&I3, &Z},
                                                           {&NegI3, &Z}};
  CHZonotope Y = CHZonotope::linearCombine(Terms, Vector(3, 0.0));
  EXPECT_DOUBLE_EQ(Y.meanWidth(), 0.0);
  EXPECT_EQ(Y.numGenerators(), 0u); // Cancelled columns are pruned.
}

TEST(CHZonotopeTest, LinearCombineIndependentIdsConcatenate) {
  Rng R(4);
  CHZonotope A = randomZonotope(R, 2, 3, false);
  CHZonotope B = randomZonotope(R, 2, 4, false);
  Matrix I2 = Matrix::identity(2);
  std::pair<const Matrix *, const CHZonotope *> Terms[] = {{&I2, &A},
                                                           {&I2, &B}};
  CHZonotope Y = CHZonotope::linearCombine(Terms, Vector(2, 0.0));
  EXPECT_EQ(Y.numGenerators(), 7u);
  // Minkowski sum: interval hull adds radii.
  Vector Expect = A.concretizationRadius() + B.concretizationRadius();
  EXPECT_LT((Y.concretizationRadius() - Expect).normInf(), 1e-12);
}

//===----------------------------------------------------------------------===//
// ReLU transformer
//===----------------------------------------------------------------------===//

class ReluSoundnessTest : public ::testing::TestWithParam<int> {};

TEST_P(ReluSoundnessTest, SampledPointsStayInsideHull) {
  Rng R(600 + GetParam());
  bool Absorb = GetParam() % 2 == 0;
  CHZonotope Z = randomZonotope(R, 4, 6, /*WithBox=*/GetParam() % 3 == 0);
  CHZonotope Y = Z.reluPrefix(4, Vector(), Absorb);

  for (int Trial = 0; Trial < 100; ++Trial) {
    Vector Nu(Z.numGenerators());
    for (double &V : Nu)
      V = R.uniform(-1.0, 1.0);
    Vector X = Z.center() + Z.generators() * Nu;
    for (size_t I = 0; I < Z.dim(); ++I)
      X[I] += Z.boxRadius()[I] * R.uniform(-1.0, 1.0);
    // The relaxation is per-error-term affine, so membership of the image
    // is certain within the interval hull; additionally the generator part
    // must track the same nu for stable dimensions.
    for (size_t I = 0; I < Z.dim(); ++I) {
      double Relu = std::max(0.0, X[I]);
      EXPECT_LE(Relu, Y.upperBounds()[I] + 1e-9);
      EXPECT_GE(Relu, Y.lowerBounds()[I] - 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReluSoundnessTest, ::testing::Range(0, 12));

TEST(ReluTest, StableDimensionsExact) {
  // Strictly positive and strictly negative dims map exactly.
  Vector Center = {5.0, -5.0};
  Matrix Gens(2, 1);
  Gens(0, 0) = 1.0;
  Gens(1, 0) = 1.0;
  CHZonotope Z(Center, Gens, {freshErrorTermId()}, Vector(2, 0.0));
  CHZonotope Y = Z.reluPrefix(2);
  EXPECT_DOUBLE_EQ(Y.lowerBounds()[0], 4.0);
  EXPECT_DOUBLE_EQ(Y.upperBounds()[0], 6.0);
  EXPECT_DOUBLE_EQ(Y.lowerBounds()[1], 0.0);
  EXPECT_DOUBLE_EQ(Y.upperBounds()[1], 0.0);
}

TEST(ReluTest, UnstableDimensionMinimalAreaBounds) {
  // x in [-1, 3]: lambda = 3/4, y in [3/4 x, 3/4 x + 3/4].
  Vector Center = {1.0};
  Matrix Gens(1, 1);
  Gens(0, 0) = 2.0;
  CHZonotope Z(Center, Gens, {freshErrorTermId()}, Vector(1, 0.0));
  CHZonotope Y = Z.reluPrefix(1);
  // Upper bound: 3/4 * 3 + 3/4 = 3; lower: 3/4 * (-1) + 3/8 - 3/8 = -3/4.
  EXPECT_NEAR(Y.upperBounds()[0], 3.0, 1e-12);
  EXPECT_NEAR(Y.lowerBounds()[0], -0.75, 1e-12);
  // New error lands in the Box component (CH transformer default).
  EXPECT_GT(Y.boxRadius()[0], 0.0);
  EXPECT_EQ(Y.numGenerators(), 1u);
}

TEST(ReluTest, ZonotopeModeAppendsColumns) {
  Vector Center = {1.0};
  Matrix Gens(1, 1);
  Gens(0, 0) = 2.0;
  CHZonotope Z(Center, Gens, {freshErrorTermId()}, Vector(1, 0.0));
  CHZonotope Y = Z.reluPrefix(1, Vector(), /*AbsorbIntoBox=*/false);
  EXPECT_EQ(Y.numGenerators(), 2u);
  EXPECT_DOUBLE_EQ(Y.boxRadius()[0], 0.0);
  EXPECT_NEAR(Y.upperBounds()[0], 3.0, 1e-12);
}

TEST(ReluTest, LambdaOverrideSoundAcrossRange) {
  // Any lambda in [0, 1] gives a sound relaxation; scan a few.
  Rng R(77);
  CHZonotope Z = randomZonotope(R, 3, 4, false);
  for (double Lambda : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    CHZonotope Y = Z.reluPrefix(3, Vector(3, Lambda));
    for (int Trial = 0; Trial < 40; ++Trial) {
      Vector X = samplePoint(R, Z);
      for (size_t I = 0; I < 3; ++I) {
        double Relu = std::max(0.0, X[I]);
        EXPECT_LE(Relu, Y.upperBounds()[I] + 1e-9) << "lambda " << Lambda;
        EXPECT_GE(Relu, Y.lowerBounds()[I] - 1e-9) << "lambda " << Lambda;
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Consolidation (Thm 4.1) and containment (Thm 4.2)
//===----------------------------------------------------------------------===//

class ConsolidationTest : public ::testing::TestWithParam<int> {};

TEST_P(ConsolidationTest, ConsolidatedContainsOriginal) {
  Rng R(700 + GetParam());
  const size_t P = 4;
  CHZonotope Z = randomZonotope(R, P, 9, /*WithBox=*/GetParam() % 2 == 0);
  ConsolidationBasis Basis(P, 1);
  Basis.refresh(Z.generators());
  CHZonotope C = Z.consolidate(Basis.basis(), Basis.basisInv());
  ASSERT_EQ(C.numGenerators(), P);

  // Thm 4.1 argument: any generator point A nu must satisfy
  // ||A'^{-1} A nu||_inf <= 1 (the box part carries over unchanged).
  LuDecomposition Lu(C.generators());
  ASSERT_FALSE(Lu.isSingular());
  Matrix Inv = Lu.inverse();
  for (int Trial = 0; Trial < 50; ++Trial) {
    Vector Nu(Z.numGenerators());
    for (double &V : Nu)
      V = R.uniform(-1.0, 1.0);
    Vector GenPart = Z.generators() * Nu;
    Vector NuNew = Inv * GenPart;
    EXPECT_LE(NuNew.normInf(), 1.0 + 1e-9);
  }
  // Center and box are untouched.
  EXPECT_LT((C.center() - Z.center()).normInf(), 1e-15);
  EXPECT_LT((C.boxRadius() - Z.boxRadius()).normInf(), 1e-15);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConsolidationTest, ::testing::Range(0, 10));

TEST(ConsolidationTest, ExpansionEnlarges) {
  Rng R(71);
  CHZonotope Z = randomZonotope(R, 3, 7, false);
  ConsolidationBasis Basis(3, 1);
  Basis.refresh(Z.generators());
  CHZonotope Plain = Z.consolidate(Basis.basis(), Basis.basisInv());
  CHZonotope Expanded =
      Z.consolidate(Basis.basis(), Basis.basisInv(), 0.1, 0.05);
  for (size_t I = 0; I < 3; ++I)
    EXPECT_GT(Expanded.concretizationRadius()[I],
              Plain.concretizationRadius()[I]);
}

TEST(ConsolidationTest, RankDeficientGeneratorsStayProper) {
  // A single generator in R^3: consolidation must still produce an
  // invertible (floored) generator matrix.
  Matrix Gens(3, 1);
  Gens(0, 0) = 1.0;
  CHZonotope Z(Vector(3, 0.0), Gens, {freshErrorTermId()}, Vector(3, 0.0));
  ConsolidationBasis Basis(3, 1);
  Basis.refresh(Z.generators());
  CHZonotope C = Z.consolidate(Basis.basis(), Basis.basisInv());
  EXPECT_FALSE(LuDecomposition(C.generators()).isSingular());
}

TEST(ContainmentTest, DetectsContainedAndNot) {
  Rng R(73);
  const size_t P = 3;
  CHZonotope Inner = randomZonotope(R, P, 5, /*WithBox=*/true);
  ConsolidationBasis Basis(P, 1);
  Basis.refresh(Inner.generators());
  // The consolidation of Inner scaled up strictly contains Inner.
  CHZonotope Outer = Inner.consolidate(Basis.basis(), Basis.basisInv(),
                                       /*WMul=*/0.2, /*WAdd=*/0.1);
  Matrix OuterInv = LuDecomposition(Outer.generators()).inverse();
  ContainmentResult Res = containsCH(Outer, OuterInv, Inner);
  EXPECT_TRUE(Res.Contained);
  EXPECT_LE(Res.Slack, 1.0);

  // Shifting the inner far away must break containment.
  Vector ShiftedCenter = Inner.center();
  ShiftedCenter[0] += 100.0;
  CHZonotope Shifted(ShiftedCenter, Inner.generators(), Inner.termIds(),
                     Inner.boxRadius());
  EXPECT_FALSE(containsCH(Outer, OuterInv, Shifted).Contained);
}

TEST(ContainmentTest, SoundOnSampledPoints) {
  // When the check succeeds, every sampled inner point must lie in the
  // outer set (verified exactly via the proper representation, b = 0).
  Rng R(74);
  const size_t P = 4;
  for (int Case = 0; Case < 10; ++Case) {
    CHZonotope Inner = randomZonotope(R, P, 6, /*WithBox=*/true);
    ConsolidationBasis Basis(P, 1);
    Basis.refresh(Inner.generators());
    CHZonotope Outer =
        Inner.consolidate(Basis.basis(), Basis.basisInv(), 0.3, 0.2);
    // Fold the outer box into generators to allow exact membership testing.
    Vector NoBox(P, 0.0);
    Matrix FullGens = Matrix::hcat(
        Outer.generators(),
        Matrix::diagonal(Outer.boxRadius())); // p x (p + p): improper.
    // Re-consolidate to proper with zero expansion.
    std::vector<uint64_t> Ids(FullGens.cols());
    for (auto &Id : Ids)
      Id = freshErrorTermId();
    CHZonotope OuterFull(Outer.center(), FullGens, Ids, NoBox);
    ConsolidationBasis B2(P, 1);
    B2.refresh(FullGens);
    CHZonotope OuterProper = OuterFull.consolidate(B2.basis(), B2.basisInv());
    Matrix OuterInv = LuDecomposition(OuterProper.generators()).inverse();

    ContainmentResult Res = containsCH(OuterProper, OuterInv, Inner);
    if (!Res.Contained)
      continue;
    for (int Trial = 0; Trial < 30; ++Trial) {
      Vector X = samplePoint(R, Inner);
      EXPECT_TRUE(insideProper(OuterProper, OuterInv, X));
    }
  }
}

TEST(ContainmentTest, CompleteForProperPair) {
  // For two aligned boxes the check is exact: containment iff geometric
  // containment.
  CHZonotope Small = CHZonotope::fromBox(Vector{-1.0, -1.0}, Vector{1.0, 1.0});
  CHZonotope Big = CHZonotope::fromBox(Vector{-2.0, -2.0}, Vector{2.0, 2.0});
  Matrix BigInv = LuDecomposition(Big.generators()).inverse();
  EXPECT_TRUE(containsCH(Big, BigInv, Small).Contained);
  Matrix SmallInv = LuDecomposition(Small.generators()).inverse();
  EXPECT_FALSE(containsCH(Small, SmallInv, Big).Contained);
  // Slack is the exact ratio 2 for the reversed query.
  EXPECT_NEAR(containsCH(Small, SmallInv, Big).Slack, 2.0, 1e-12);
}

//===----------------------------------------------------------------------===//
// Stack / slice / join
//===----------------------------------------------------------------------===//

TEST(CHZonotopeTest, StackPreservesSharedIds) {
  Rng R(75);
  CHZonotope Z = randomZonotope(R, 2, 3, false);
  CHZonotope S = CHZonotope::stack(Z, Z);
  EXPECT_EQ(S.dim(), 4u);
  EXPECT_EQ(S.numGenerators(), 3u); // Shared ids merge, not duplicate.
  // Slicing back yields the original bounds.
  CHZonotope Back = S.slice(2, 2);
  EXPECT_LT((Back.lowerBounds() - Z.lowerBounds()).normInf(), 1e-12);
}

TEST(CHZonotopeTest, JoinIsSound) {
  Rng R(76);
  for (int Case = 0; Case < 8; ++Case) {
    CHZonotope A = randomZonotope(R, 3, 4, true);
    // B shares A's error terms partially (mimics one more solver iteration).
    Matrix M = randomMatrix(R, 3, 3, 0.4);
    CHZonotope B = A.affine(M, randomVector(R, 3, 0.5));
    CHZonotope J = CHZonotope::join(A, B);
    for (int Trial = 0; Trial < 40; ++Trial) {
      Vector XA = samplePoint(R, A);
      Vector XB = samplePoint(R, B);
      for (size_t I = 0; I < 3; ++I) {
        EXPECT_LE(XA[I], J.upperBounds()[I] + 1e-9);
        EXPECT_GE(XA[I], J.lowerBounds()[I] - 1e-9);
        EXPECT_LE(XB[I], J.upperBounds()[I] + 1e-9);
        EXPECT_GE(XB[I], J.lowerBounds()[I] - 1e-9);
      }
    }
  }
}

TEST(CHZonotopeTest, JoinOfIdenticalIsIdentity) {
  Rng R(78);
  CHZonotope A = randomZonotope(R, 3, 5, true);
  CHZonotope J = CHZonotope::join(A, A);
  EXPECT_LT((J.lowerBounds() - A.lowerBounds()).normInf(), 1e-12);
  EXPECT_LT((J.upperBounds() - A.upperBounds()).normInf(), 1e-12);
}

//===----------------------------------------------------------------------===//
// Volume
//===----------------------------------------------------------------------===//

TEST(VolumeTest, UnitBoxAndParallelogram) {
  CHZonotope Box = CHZonotope::fromBox(Vector{-1.0, -1.0}, Vector{1.0, 1.0});
  EXPECT_NEAR(zonotopeVolume(Box), 4.0, 1e-12);

  // Generators (1,0) and (1,1): area = 4 * |det| = 4.
  Matrix Gens = {{1.0, 1.0}, {0.0, 1.0}};
  CHZonotope Par(Vector(2, 0.0), Gens,
                 {freshErrorTermId(), freshErrorTermId()}, Vector(2, 0.0));
  EXPECT_NEAR(zonotopeVolume(Par), 4.0, 1e-12);
}

TEST(VolumeTest, BoxComponentCounts) {
  // Zonotope {0} + box [-1,1]^2: volume 4.
  CHZonotope Z(Vector(2, 0.0), Matrix(2, 0), {}, Vector(2, 1.0));
  EXPECT_NEAR(zonotopeVolume(Z), 4.0, 1e-12);
}

TEST(VolumeTest, DegenerateIsZero) {
  Matrix Gens(2, 1);
  Gens(0, 0) = 1.0;
  CHZonotope Z(Vector(2, 0.0), Gens, {freshErrorTermId()}, Vector(2, 0.0));
  EXPECT_DOUBLE_EQ(zonotopeVolume(Z), 0.0);
}

TEST(VolumeTest, MinkowskiSumGrowsVolume) {
  Rng R(79);
  CHZonotope A = randomZonotope(R, 2, 3, false);
  CHZonotope B = randomZonotope(R, 2, 2, false);
  Matrix I2 = Matrix::identity(2);
  std::pair<const Matrix *, const CHZonotope *> Terms[] = {{&I2, &A},
                                                           {&I2, &B}};
  CHZonotope Sum = CHZonotope::linearCombine(Terms, Vector(2, 0.0));
  EXPECT_GE(zonotopeVolume(Sum), zonotopeVolume(A) - 1e-12);
  EXPECT_GE(zonotopeVolume(Sum), zonotopeVolume(B) - 1e-12);
}

//===----------------------------------------------------------------------===//
// LP containment baseline (Sadraddini-Tedrake)
//===----------------------------------------------------------------------===//

TEST(LpContainmentTest, BoxesExact) {
  CHZonotope Small = CHZonotope::fromBox(Vector{-1.0, -1.0}, Vector{1.0, 1.0});
  CHZonotope Big = CHZonotope::fromBox(Vector{-1.5, -2.0}, Vector{1.5, 2.0});
  EXPECT_TRUE(containsZonotopeLP(Big, Small));
  EXPECT_FALSE(containsZonotopeLP(Small, Big));
}

TEST(LpContainmentTest, RotatedZonotope) {
  // Diamond (generators (1,1), (1,-1)) contains the box [-0.9, 0.9]^2
  // scaled by 0.5... check both directions on a known pair.
  Matrix DiamondGens = {{1.0, 1.0}, {1.0, -1.0}};
  CHZonotope Diamond(Vector(2, 0.0), DiamondGens,
                     {freshErrorTermId(), freshErrorTermId()},
                     Vector(2, 0.0));
  CHZonotope SmallBox =
      CHZonotope::fromBox(Vector{-0.9, -0.9}, Vector{0.9, 0.9});
  EXPECT_TRUE(containsZonotopeLP(Diamond, SmallBox));
  CHZonotope BigBox = CHZonotope::fromBox(Vector{-1.9, -1.9},
                                          Vector{1.9, 1.9});
  EXPECT_FALSE(containsZonotopeLP(Diamond, BigBox));
}

TEST(LpContainmentTest, AgreesWithCHCheckWhenCHSucceeds) {
  // The CH check is sound, the LP check is (near) complete: whenever CH says
  // contained, LP must agree.
  Rng R(80);
  for (int Case = 0; Case < 5; ++Case) {
    CHZonotope Inner = randomZonotope(R, 3, 4, false);
    ConsolidationBasis Basis(3, 1);
    Basis.refresh(Inner.generators());
    CHZonotope Outer =
        Inner.consolidate(Basis.basis(), Basis.basisInv(), 0.1, 0.05);
    Matrix OuterInv = LuDecomposition(Outer.generators()).inverse();
    if (containsCH(Outer, OuterInv, Inner).Contained) {
      EXPECT_TRUE(containsZonotopeLP(Outer, Inner));
    }
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Additional property sweeps
//===----------------------------------------------------------------------===//

namespace {

class LambdaScaleSweepTest : public ::testing::TestWithParam<double> {};

// Property: the ReLU transformer stays sound for any slope scaling factor
// (the knob lambda optimization turns, App. C).
TEST_P(LambdaScaleSweepTest, ScaledReluSound) {
  Rng R(900 + static_cast<int>(GetParam() * 100));
  CHZonotope Z = randomZonotope(R, 4, 5, /*WithBox=*/true);
  CHZonotope Y = Z.reluPrefix(4, Vector(), true, GetParam());
  for (int Trial = 0; Trial < 60; ++Trial) {
    Vector X = samplePoint(R, Z);
    for (size_t I = 0; I < 4; ++I) {
      double Relu = std::max(0.0, X[I]);
      EXPECT_LE(Relu, Y.upperBounds()[I] + 1e-9);
      EXPECT_GE(Relu, Y.lowerBounds()[I] - 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, LambdaScaleSweepTest,
                         ::testing::Values(0.0, 0.3, 0.7, 0.9, 1.0, 1.1,
                                           1.5, 3.0));

TEST(CHZonotopeTest, BoxCastToGeneratorsIsExact) {
  Rng R(901);
  CHZonotope Z = randomZonotope(R, 3, 4, /*WithBox=*/true);
  CHZonotope Cast = Z.boxCastToGenerators();
  EXPECT_DOUBLE_EQ(Cast.boxRadius().normInf(), 0.0);
  // Interval hulls agree exactly.
  EXPECT_LT((Cast.lowerBounds() - Z.lowerBounds()).normInf(), 1e-14);
  EXPECT_LT((Cast.upperBounds() - Z.upperBounds()).normInf(), 1e-14);
  // Idempotent on box-free inputs.
  CHZonotope Twice = Cast.boxCastToGenerators();
  EXPECT_EQ(Twice.numGenerators(), Cast.numGenerators());
}

TEST(ContainmentTest, SlackScalesLinearlyWithInner) {
  // For a box-free inner, the Thm 4.2 slack is 1-homogeneous in the inner
  // generators: scaling the inner scales the generator part of the slack.
  Rng R(902);
  CHZonotope Inner = randomZonotope(R, 3, 5, /*WithBox=*/false);
  ConsolidationBasis Basis(3, 1);
  Basis.refresh(Inner.generators());
  CHZonotope Outer = Inner.consolidate(Basis.basis(), Basis.basisInv(), 0.5,
                                       0.0);
  Matrix OuterInv = LuDecomposition(Outer.generators()).inverse();

  // Center the inner on the outer so the d-term vanishes.
  CHZonotope Centered(Outer.center(), Inner.generators(), Inner.termIds(),
                      Inner.boxRadius());
  double Slack1 = containsCH(Outer, OuterInv, Centered).Slack;
  Matrix Scaled = Centered.generators();
  Scaled *= 0.5;
  CHZonotope Half(Outer.center(), std::move(Scaled), Centered.termIds(),
                  Centered.boxRadius());
  double SlackHalf = containsCH(Outer, OuterInv, Half).Slack;
  EXPECT_NEAR(SlackHalf, 0.5 * Slack1, 1e-9);
}

TEST(ContainmentTest, ShrunkInnerAlwaysContained) {
  // If the check accepts the inner, it must accept any center-preserving
  // shrinking of it (monotonicity of Thm 4.2 in the inner size).
  Rng R(903);
  for (int Case = 0; Case < 6; ++Case) {
    CHZonotope Inner = randomZonotope(R, 4, 6, /*WithBox=*/true);
    ConsolidationBasis Basis(4, 1);
    Basis.refresh(Inner.generators());
    CHZonotope Outer =
        Inner.consolidate(Basis.basis(), Basis.basisInv(), 0.2, 0.1);
    Matrix OuterInv = LuDecomposition(Outer.generators()).inverse();
    if (!containsCH(Outer, OuterInv, Inner).Contained)
      continue;
    for (double Scale : {0.75, 0.5, 0.1}) {
      Matrix Gens = Inner.generators();
      Gens *= Scale;
      Vector Box = Inner.boxRadius();
      Box *= Scale;
      CHZonotope Shrunk(Inner.center(), std::move(Gens), Inner.termIds(),
                        std::move(Box));
      EXPECT_TRUE(containsCH(Outer, OuterInv, Shrunk).Contained)
          << "scale " << Scale;
    }
  }
}

TEST(CHZonotopeTest, SliceStackRoundTripWithBox) {
  Rng R(904);
  CHZonotope Top = randomZonotope(R, 2, 3, true);
  CHZonotope Bottom = randomZonotope(R, 3, 2, true);
  CHZonotope S = CHZonotope::stack(Top, Bottom);
  ASSERT_EQ(S.dim(), 5u);
  CHZonotope T2 = S.slice(0, 2), B2 = S.slice(2, 3);
  EXPECT_LT((T2.lowerBounds() - Top.lowerBounds()).normInf(), 1e-13);
  EXPECT_LT((T2.upperBounds() - Top.upperBounds()).normInf(), 1e-13);
  EXPECT_LT((B2.lowerBounds() - Bottom.lowerBounds()).normInf(), 1e-13);
  EXPECT_LT((B2.upperBounds() - Bottom.upperBounds()).normInf(), 1e-13);
}

TEST(VolumeTest, VolumeInvariantUnderRotation) {
  // Rotating a 2-d zonotope preserves its volume (|det R| = 1).
  Rng R(905);
  CHZonotope Z = randomZonotope(R, 2, 4, false);
  double Angle = 0.7;
  Matrix Rot = {{std::cos(Angle), -std::sin(Angle)},
                {std::sin(Angle), std::cos(Angle)}};
  CHZonotope Rotated = Z.affine(Rot, Vector(2, 0.0));
  EXPECT_NEAR(zonotopeVolume(Rotated), zonotopeVolume(Z), 1e-9);
}

TEST(OrderReductionTest, BasisRefreshScheduleHonored) {
  Rng R(906);
  ConsolidationBasis Basis(3, /*RefreshEvery=*/3);
  Matrix A1 = randomMatrix(R, 3, 6);
  Basis.refresh(A1);
  Matrix First = Basis.basis();
  // Two more refreshes reuse the cached basis even for new generators.
  Basis.refresh(randomMatrix(R, 3, 6));
  EXPECT_LT((Basis.basis() - First).maxAbs(), 1e-15);
  Basis.refresh(randomMatrix(R, 3, 6));
  EXPECT_LT((Basis.basis() - First).maxAbs(), 1e-15);
  // The fourth call recomputes.
  Matrix A2 = randomMatrix(R, 3, 6);
  Basis.refresh(A2);
  EXPECT_GT((Basis.basis() - First).maxAbs(), 1e-12);
  // invalidate() forces an immediate recomputation.
  Basis.invalidate();
  Basis.refresh(A1);
  EXPECT_LT((Basis.basis() - First).maxAbs(), 1e-12);
}

} // namespace
