//===- support/ThreadPool.cpp ---------------------------------------------===//

#include "support/ThreadPool.h"

#include "support/Telemetry.h"

#include <algorithm>
#include <string>

using namespace craft;

size_t ThreadPool::hardwareWorkers() {
  unsigned N = std::thread::hardware_concurrency();
  return N > 0 ? N : 1;
}

ThreadPool::ThreadPool(size_t NumWorkers) {
  if (NumWorkers == 0)
    NumWorkers = hardwareWorkers();
  Workers.reserve(NumWorkers);
  for (size_t I = 0; I < NumWorkers; ++I)
    Workers.emplace_back([this, I] {
      telemetry::setCurrentThreadLabel("worker " + std::to_string(I + 1));
      workerLoop();
    });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  WorkAvailable.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::submit(std::function<void()> Task) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Queue.push_back(std::move(Task));
    ++InFlight;
  }
  WorkAvailable.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mutex);
  AllDone.wait(Lock, [this] { return InFlight == 0; });
  if (FirstError) {
    std::exception_ptr E = FirstError;
    FirstError = nullptr;
    std::rethrow_exception(E);
  }
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WorkAvailable.wait(Lock,
                         [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping and drained.
      Task = std::move(Queue.front());
      Queue.pop_front();
    }
    std::exception_ptr Error;
    try {
      Task();
    } catch (...) {
      Error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      if (Error && !FirstError)
        FirstError = Error;
      if (--InFlight == 0)
        AllDone.notify_all();
    }
  }
}

void craft::parallelForIndex(size_t N, int Jobs,
                             const std::function<void(size_t)> &Fn) {
  size_t NumWorkers =
      Jobs <= 0 ? ThreadPool::hardwareWorkers() : static_cast<size_t>(Jobs);
  NumWorkers = std::min(NumWorkers, N);
  if (NumWorkers <= 1) {
    for (size_t I = 0; I < N; ++I)
      Fn(I);
    return;
  }
  ThreadPool Pool(NumWorkers);
  for (size_t I = 0; I < N; ++I)
    Pool.submit([&Fn, I] { Fn(I); });
  Pool.wait();
}

uint64_t craft::taskSeed(uint64_t Base, uint64_t Index) {
  // splitmix64 (Steele et al.): the stream position is Base + Index + 1, so
  // consecutive indices give statistically independent seeds and Index 0
  // never collides with a plain splitmix64(Base) user.
  uint64_t Z = Base + (Index + 1) * 0x9E3779B97F4A7C15ull;
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
  return Z ^ (Z >> 31);
}
