//===- bench/bench_fig17_adaptive_alpha.cpp -------------------------------===//
//
// Reproduces Fig. 17 (App. E.1): the distribution of line-searched phase-2
// step sizes alpha_2 for FB tightening, depending on the phase-1 PR step
// size alpha_1. Only samples that are not already certified at containment
// reach the line search.
//
// Expected shape: the selected alpha_2 varies per sample and shifts with
// alpha_1 -- the value of choosing alpha_2 adaptively (Thm 5.1 allows any
// alpha in [0, 1]).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <map>

using namespace craft;

int main() {
  std::printf("== Fig. 17: adaptive alpha_2 distributions (FCx87) ==\n\n");

  const ModelSpec *Spec = findModelSpec("mnist_fc87");
  MonDeq Model = getOrTrainModel(*Spec);
  Dataset Test = makeTestSet(*Spec, benchSamples(8));
  FixpointSolver Concrete(Model, Splitting::PeacemanRachford);

  for (double Alpha1 : {0.02, 0.12}) {
    CraftConfig Config = craftConfigFor(*Spec);
    Config.Alpha1 = Alpha1;
    Config.LambdaOptLevel = 0;
    CraftVerifier Verifier(Model, Config);

    std::map<double, std::pair<int, int>> Histogram; // alpha2 -> (cert, not).
    for (size_t I = 0; I < Test.size(); ++I) {
      if (Concrete.predict(Test.input(I)) != Test.Labels[I])
        continue;
      CraftResult Res = Verifier.verifyRobustness(Test.input(I),
                                                  Test.Labels[I],
                                                  Spec->Epsilon);
      if (Res.ChosenAlpha2 < 0.0)
        continue; // Phase 2 never ran (no containment).
      auto &Bucket = Histogram[Res.ChosenAlpha2];
      (Res.Certified ? Bucket.first : Bucket.second) += 1;
    }

    std::printf("alpha_1 = %.2f:\n", Alpha1);
    TablePrinter Table({"alpha_2", "#verified", "#not verified"});
    for (const auto &[Alpha2, Counts] : Histogram)
      Table.addRow({fmt(Alpha2, 3), fmt(static_cast<long>(Counts.first)),
                    fmt(static_cast<long>(Counts.second))});
    Table.print();
    std::printf("\n");
  }
  return 0;
}
