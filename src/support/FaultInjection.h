//===- support/FaultInjection.h - Deterministic fault injection -*- C++ -*-===//
//
// Part of the Craft reproduction (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, counter-driven fault injection for chaos testing the
/// serve stack. Faults are configured through the `CRAFT_FAULT`
/// environment variable (or programmatically via `configure`) with the
/// grammar:
///
///   CRAFT_FAULT=<site>:<kind>:every=N[,seed=S][;<site>:<kind>:...]
///
///   site  ::= socket.read | socket.write | socket.accept
///           | model.load  | sched.dispatch
///   kind  ::= fail   — the site reports failure (read/write/accept
///                      return an error, model load fails transiently,
///                      dispatch fails the batch without caching)
///   kind  ::= stall  — the site sleeps ~25ms, then proceeds normally
///   N     ::= 1..    — fire on every Nth hit of the site
///   S     ::= 0..    — phase offset added to the hit counter before
///                      the modulo, shifting WHICH hits fire
///
/// Firing is a pure function of the per-rule hit counter (plus the seed
/// offset), never of wall time or an unseeded RNG, so a fixed operation
/// sequence degrades identically on every run — the chaos suites assert
/// exact outcomes, not "something failed eventually". Counters are
/// process-global and monotonic; `configure` replaces all rules and
/// resets every counter.
///
/// When `CRAFT_FAULT` is unset and `configure` was never called, every
/// `at()` is a single relaxed atomic load — the production fast path.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFT_SUPPORT_FAULTINJECTION_H
#define CRAFT_SUPPORT_FAULTINJECTION_H

#include <string>

namespace craft {
namespace fault {

enum class Action {
  None, ///< Proceed normally (possibly after an injected stall).
  Fail, ///< The instrumented site must report failure.
};

/// Polls the named injection site. Advances that site's hit counter when
/// a rule matches; performs the stall sleep internally (stall rules
/// still return Action::None — the site proceeds after the delay).
Action at(const char *Site);

/// Replaces the active fault rules with \p Spec (same grammar as
/// CRAFT_FAULT; empty string disarms everything) and resets all hit
/// counters. Overrides any environment configuration. Returns false and
/// sets \p Error on a malformed spec, leaving the previous rules armed.
bool configure(const std::string &Spec, std::string *Error = nullptr);

/// True when at least one fault rule is armed.
bool armed();

} // namespace fault
} // namespace craft

#endif // CRAFT_SUPPORT_FAULTINJECTION_H
