//===- support/ThreadPool.h - Batch-work thread pool ------------*- C++ -*-===//
//
// Part of the Craft reproduction (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size worker pool for the batch-verification subsystem. The
/// certification workloads (Table 2 rows, multi-input spec files) are
/// embarrassingly parallel across inputs; this pool fans tasks out across
/// worker threads while the call sites keep results deterministic by
/// slotting them by task index, never by completion order.
///
/// Determinism contract for callers:
///  - key every result by the task's input index, not arrival order;
///  - derive per-task RNG seeds from the index (see taskSeed), never from
///    shared mutable generator state or the executing thread.
/// Under that contract the outcome of a batch is byte-identical for any
/// worker count, including the inline Jobs <= 1 path.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFT_SUPPORT_THREADPOOL_H
#define CRAFT_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace craft {

/// Fixed-size pool of worker threads draining a FIFO task queue.
class ThreadPool {
public:
  /// Spawns \p Workers threads (0 = one per hardware thread).
  explicit ThreadPool(size_t Workers = 0);

  /// Joins all workers; pending tasks are still executed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  size_t workerCount() const { return Workers.size(); }

  /// Enqueues \p Task. Tasks must not themselves block on this pool.
  void submit(std::function<void()> Task);

  /// Blocks until every submitted task has finished. If any task threw,
  /// rethrows the first captured exception (first by completion).
  void wait();

  /// Hardware concurrency with a floor of 1.
  static size_t hardwareWorkers();

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::deque<std::function<void()>> Queue;
  std::mutex Mutex;
  std::condition_variable WorkAvailable;
  std::condition_variable AllDone;
  size_t InFlight = 0; ///< Queued + currently executing tasks.
  bool Stopping = false;
  std::exception_ptr FirstError;
};

/// A contiguous half-open index range (one part of a static partition).
struct IndexRange {
  size_t Begin = 0;
  size_t End = 0;
  size_t size() const { return End - Begin; }
};

/// Part \p Part of the static partition of [0, N) into \p Parts contiguous
/// ranges whose sizes differ by at most one. Pure arithmetic on
/// (N, Parts, Part) — identical for every call, thread, and machine — so
/// work fanned out by partition index is deterministic by construction
/// (the kernel layer's tiled gemm/gemvAbs rest on this).
inline IndexRange staticPartition(size_t N, size_t Parts, size_t Part) {
  const size_t Base = N / Parts, Rem = N % Parts;
  const size_t Begin = Part * Base + (Part < Rem ? Part : Rem);
  return {Begin, Begin + Base + (Part < Rem ? 1 : 0)};
}

/// Runs Fn(I) for every I in [0, N) on \p Jobs workers (<= 0 = all
/// hardware threads; <= 1 or N <= 1 runs inline on the caller). Blocks
/// until all indices finish and rethrows the first task exception. Callers
/// keep determinism by writing results into slot I of a pre-sized buffer.
void parallelForIndex(size_t N, int Jobs,
                      const std::function<void(size_t)> &Fn);

/// Deterministic per-task seed stream: splitmix64 of \p Base advanced to
/// \p Index. Depends only on (Base, Index) — never on thread identity or
/// scheduling — so seeded tasks reproduce under any worker count.
uint64_t taskSeed(uint64_t Base, uint64_t Index);

} // namespace craft

#endif // CRAFT_SUPPORT_THREADPOOL_H
