//===- nn/MonDeq.cpp ------------------------------------------------------===//

#include "nn/MonDeq.h"

#include "domains/Activations.h"
#include "linalg/Eig.h"
#include "linalg/Kernels.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>

using namespace craft;

MonDeq::MonDeq(double Monotonicity, Matrix P, Matrix Q, Matrix U, Vector BiasZ,
               Matrix V, Vector BiasY)
    : M(Monotonicity), P(std::move(P)), Q(std::move(Q)), U(std::move(U)),
      BZ(std::move(BiasZ)), V(std::move(V)), BY(std::move(BiasY)) {
  assert(Monotonicity > 0.0 && "monotonicity parameter must be positive");
  rebuildW();
  assert(this->U.rows() == W.rows() && "U row count must match latent dim");
  assert(this->BZ.size() == W.rows() && "bias size must match latent dim");
  assert(this->V.cols() == W.rows() && "V column count must match latent dim");
}

MonDeq MonDeq::fromW(double Monotonicity, Matrix W, Matrix U, Vector BiasZ,
                     Matrix V, Vector BiasY) {
  MonDeq Model;
  Model.M = Monotonicity;
  Model.W = std::move(W);
  Model.U = std::move(U);
  Model.BZ = std::move(BiasZ);
  Model.V = std::move(V);
  Model.BY = std::move(BiasY);
  assert(Model.W.rows() == Model.W.cols() && "W must be square");
  return Model;
}

void MonDeq::rebuildW() {
  const size_t N = P.rows();
  assert(P.rows() == P.cols() && Q.rows() == Q.cols() && P.rows() == Q.rows() &&
         "P and Q must be square and equally sized");
  W = (1.0 - M) * Matrix::identity(N) - P.transpose() * P + Q - Q.transpose();
  CachedAlphaBound = -1.0;
}

MonDeq MonDeq::randomFc(Rng &R, size_t InputDim, size_t LatentDim,
                        size_t NumClasses, double M) {
  auto Gaussian = [&R](size_t Rows, size_t Cols, double Scale) {
    Matrix Out(Rows, Cols);
    for (size_t I = 0; I < Rows; ++I)
      for (size_t J = 0; J < Cols; ++J)
        Out(I, J) = R.gaussian(0.0, Scale);
    return Out;
  };
  double LatentScale = 1.0 / std::sqrt(static_cast<double>(LatentDim));
  double InputScale = 1.0 / std::sqrt(static_cast<double>(InputDim));
  return MonDeq(M, Gaussian(LatentDim, LatentDim, LatentScale),
                Gaussian(LatentDim, LatentDim, LatentScale),
                Gaussian(LatentDim, InputDim, InputScale), Vector(LatentDim),
                Gaussian(NumClasses, LatentDim, LatentScale),
                Vector(NumClasses));
}

MonDeq MonDeq::randomConv(Rng &R, size_t Channels, size_t Height, size_t Width,
                          size_t OutChannels, size_t Kernel, size_t Stride,
                          size_t NumClasses, double M) {
  assert(Height >= Kernel && Width >= Kernel && "kernel larger than image");
  // Valid (unpadded) strided convolution output extent.
  const size_t OutH = (Height - Kernel) / Stride + 1;
  const size_t OutW = (Width - Kernel) / Stride + 1;
  const size_t LatentDim = OutChannels * OutH * OutW;
  const size_t InputDim = Channels * Height * Width;

  // U: strided conv lowered to a dense matrix with the conv sparsity
  // pattern and shared-ish statistics (weights are drawn independently per
  // tap here; the verifier only sees the lowered matrix either way).
  Matrix U(LatentDim, InputDim, 0.0);
  double KScale = 1.0 / std::sqrt(static_cast<double>(Kernel * Kernel *
                                                      Channels));
  for (size_t Oc = 0; Oc < OutChannels; ++Oc)
    for (size_t Oy = 0; Oy < OutH; ++Oy)
      for (size_t Ox = 0; Ox < OutW; ++Ox) {
        size_t Row = (Oc * OutH + Oy) * OutW + Ox;
        for (size_t Ic = 0; Ic < Channels; ++Ic)
          for (size_t Ky = 0; Ky < Kernel; ++Ky)
            for (size_t Kx = 0; Kx < Kernel; ++Kx) {
              size_t Iy = Oy * Stride + Ky;
              size_t Ix = Ox * Stride + Kx;
              if (Iy >= Height || Ix >= Width)
                continue;
              size_t Col = (Ic * Height + Iy) * Width + Ix;
              U(Row, Col) = R.gaussian(0.0, KScale);
            }
      }

  auto Gaussian = [&R](size_t Rows, size_t Cols, double Scale) {
    Matrix Out(Rows, Cols);
    for (size_t I = 0; I < Rows; ++I)
      for (size_t J = 0; J < Cols; ++J)
        Out(I, J) = R.gaussian(0.0, Scale);
    return Out;
  };
  double LatentScale = 1.0 / std::sqrt(static_cast<double>(LatentDim));
  return MonDeq(M, Gaussian(LatentDim, LatentDim, LatentScale),
                Gaussian(LatentDim, LatentDim, LatentScale), std::move(U),
                Vector(LatentDim),
                Gaussian(NumClasses, LatentDim, LatentScale),
                Vector(NumClasses));
}

void MonDeq::applyParamUpdate(const Matrix &DeltaP, const Matrix &DeltaQ,
                              const Matrix &DeltaU, const Vector &DeltaBZ,
                              const Matrix &DeltaV, const Vector &DeltaBY) {
  assert(hasRawParams() && "cannot train a fromW model");
  P += DeltaP;
  Q += DeltaQ;
  U += DeltaU;
  BZ += DeltaBZ;
  V += DeltaV;
  BY += DeltaBY;
  rebuildW();
}

const char *craft::activationName(ActivationKind Act) {
  switch (Act) {
  case ActivationKind::ReLU:
    return "relu";
  case ActivationKind::Sigmoid:
    return "sigmoid";
  case ActivationKind::Tanh:
    return "tanh";
  }
  return "unknown";
}

Vector MonDeq::iterateF(const Vector &X, const Vector &Z) const {
  // W z + U x + b via destination-passing kernels: one allocation. U is a
  // lowered convolution for the conv models — structurally sparse — but
  // gemv has no zero-skip either way; the dense row walk wins on a vector.
  Vector Pre(latentDim());
  kernels::gemv(Pre, W, Z);
  kernels::gemv(Pre, U, X, 1.0, 1.0);
  kernels::axpy(Pre, 1.0, BZ);
  switch (Act) {
  case ActivationKind::ReLU:
    for (double &V : Pre)
      V = std::max(V, 0.0);
    return Pre;
  case ActivationKind::Sigmoid:
    for (double &V : Pre)
      V = evalActivation(SmoothActivation::Sigmoid, V);
    return Pre;
  case ActivationKind::Tanh:
    for (double &V : Pre)
      V = evalActivation(SmoothActivation::Tanh, V);
    return Pre;
  }
  return Pre;
}

double MonDeq::fbAlphaBound() const {
  if (CachedAlphaBound < 0.0) {
    double Norm = spectralNorm(Matrix::identity(W.rows()) - W);
    CachedAlphaBound = 2.0 * M / (Norm * Norm);
  }
  return CachedAlphaBound;
}

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

namespace {
constexpr uint32_t FileMagic = 0x43524654; // "CRFT"
// Version 2 appends the activation byte; version-1 files load as ReLU.
constexpr uint32_t FileVersion = 2;

bool writeMatrix(std::FILE *F, const Matrix &M) {
  uint64_t Dims[2] = {M.rows(), M.cols()};
  if (std::fwrite(Dims, sizeof(Dims), 1, F) != 1)
    return false;
  for (size_t R = 0; R < M.rows(); ++R)
    if (M.cols() > 0 &&
        std::fwrite(M.rowData(R), sizeof(double), M.cols(), F) != M.cols())
      return false;
  return true;
}

bool readMatrix(std::FILE *F, Matrix &M) {
  uint64_t Dims[2];
  if (std::fread(Dims, sizeof(Dims), 1, F) != 1)
    return false;
  M = Matrix(Dims[0], Dims[1]);
  for (size_t R = 0; R < M.rows(); ++R)
    if (M.cols() > 0 &&
        std::fread(M.rowData(R), sizeof(double), M.cols(), F) != M.cols())
      return false;
  return true;
}

bool writeVector(std::FILE *F, const Vector &V) {
  uint64_t N = V.size();
  if (std::fwrite(&N, sizeof(N), 1, F) != 1)
    return false;
  return V.empty() || std::fwrite(V.data(), sizeof(double), N, F) == N;
}

bool readVector(std::FILE *F, Vector &V) {
  uint64_t N;
  if (std::fread(&N, sizeof(N), 1, F) != 1)
    return false;
  V = Vector(N);
  return V.empty() || std::fread(V.data(), sizeof(double), N, F) == N;
}
} // namespace

bool MonDeq::save(const std::string &Path) const {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return false;
  uint8_t ActByte = static_cast<uint8_t>(Act);
  bool Ok = std::fwrite(&FileMagic, sizeof(FileMagic), 1, F) == 1 &&
            std::fwrite(&FileVersion, sizeof(FileVersion), 1, F) == 1 &&
            std::fwrite(&M, sizeof(M), 1, F) == 1 &&
            std::fwrite(&ActByte, sizeof(ActByte), 1, F) == 1 &&
            writeMatrix(F, P) && writeMatrix(F, Q) && writeMatrix(F, W) &&
            writeMatrix(F, U) && writeVector(F, BZ) && writeMatrix(F, V) &&
            writeVector(F, BY);
  std::fclose(F);
  return Ok;
}

std::optional<MonDeq> MonDeq::load(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return std::nullopt;
  MonDeq Model;
  uint32_t Magic = 0, Version = 0;
  bool Ok = std::fread(&Magic, sizeof(Magic), 1, F) == 1 &&
            std::fread(&Version, sizeof(Version), 1, F) == 1 &&
            Magic == FileMagic && (Version == 1 || Version == FileVersion) &&
            std::fread(&Model.M, sizeof(Model.M), 1, F) == 1;
  if (Ok && Version >= 2) {
    uint8_t ActByte = 0;
    Ok = std::fread(&ActByte, sizeof(ActByte), 1, F) == 1 && ActByte <= 2;
    Model.Act = static_cast<ActivationKind>(ActByte);
  }
  Ok = Ok && readMatrix(F, Model.P) && readMatrix(F, Model.Q) &&
       readMatrix(F, Model.W) && readMatrix(F, Model.U) &&
       readVector(F, Model.BZ) && readMatrix(F, Model.V) &&
       readVector(F, Model.BY);
  std::fclose(F);
  if (!Ok)
    return std::nullopt;
  return Model;
}
