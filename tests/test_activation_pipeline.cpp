//===- tests/test_activation_pipeline.cpp - App B.6 pipeline tests --------===//
//
// End-to-end tests for the smooth-activation monDEQ pipeline (App. B.6):
// proximal-operator correctness (the splitting resolvent prox_{a f}
// recovered from sigma alone), concrete solver convergence and agreement,
// abstract transformer soundness, Craft certification on tanh/sigmoid
// models, training via the generalized implicit gradients, and versioned
// serialization of the activation.
//
//===----------------------------------------------------------------------===//

#include "core/Verifier.h"
#include "data/GaussianMixture.h"
#include "domains/Activations.h"
#include "nn/Training.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

using namespace craft;

namespace {

MonDeq smoothModel(Rng &R, ActivationKind Act, size_t Q = 6, size_t P = 5,
                   size_t Classes = 3, double M = 2.0) {
  MonDeq Model = MonDeq::randomFc(R, Q, P, Classes, M);
  Model.setActivation(Act);
  return Model;
}

Vector randomInput(Rng &R, size_t Q) {
  Vector X(Q);
  for (size_t I = 0; I < Q; ++I)
    X[I] = R.uniform(0.1, 0.9);
  return X;
}

} // namespace

//===----------------------------------------------------------------------===//
// Proximal operator
//===----------------------------------------------------------------------===//

class ProxTest : public ::testing::TestWithParam<SmoothActivation> {};

TEST_P(ProxTest, AlphaOneRecoversTheActivation) {
  SmoothActivation Act = GetParam();
  for (double V : {-4.0, -1.0, -0.2, 0.0, 0.3, 1.5, 5.0})
    EXPECT_NEAR(proxActivation(Act, 1.0, V), evalActivation(Act, V), 1e-10);
}

TEST_P(ProxTest, AlphaZeroIsIdentity) {
  SmoothActivation Act = GetParam();
  for (double V : {-2.0, 0.0, 1.7})
    EXPECT_DOUBLE_EQ(proxActivation(Act, 0.0, V), V);
}

TEST_P(ProxTest, SolvesTheResolventEquation) {
  // (1 - a) y + a sigma^{-1}(y) = v must hold at the returned y — checked
  // in v-space away from the range boundary. At small a with extreme v the
  // true root sits closer to the boundary than one double ulp (the
  // inverse-activation term must absorb |v|/a), so the v-residual is
  // meaningless there; the y-space monotonicity test covers that regime.
  SmoothActivation Act = GetParam();
  auto inverse = [Act](double Y) {
    return Act == SmoothActivation::Tanh
               ? std::atanh(Y)
               : std::log(Y / (1.0 - Y));
  };
  double Mid = Act == SmoothActivation::Tanh ? 0.0 : 0.5;
  double HalfRange = Act == SmoothActivation::Tanh ? 1.0 : 0.5;
  for (double Alpha : {0.05, 0.3, 0.7, 1.0, 2.5})
    for (double V : {-3.0, -0.5, 0.01, 0.8, 4.0}) {
      double Y = proxActivation(Act, Alpha, V);
      if (std::fabs(Y - Mid) > 0.999 * HalfRange)
        continue; // Saturated root: below v-space double resolution.
      EXPECT_NEAR((1.0 - Alpha) * Y + Alpha * inverse(Y), V, 1e-8)
          << "alpha=" << Alpha << " v=" << V;
    }
}

TEST_P(ProxTest, IsMonotoneAndNonexpansive) {
  SmoothActivation Act = GetParam();
  double Alpha = 0.4;
  double Prev = proxActivation(Act, Alpha, -6.0);
  for (double V = -5.75; V <= 6.0; V += 0.25) {
    double Y = proxActivation(Act, Alpha, V);
    EXPECT_GT(Y, Prev);              // Strictly monotone.
    EXPECT_LE(Y - Prev, 0.25 + 1e-9); // 1-Lipschitz (firmly nonexpansive).
    Prev = Y;
  }
}

TEST_P(ProxTest, DerivativeMatchesFiniteDifference) {
  SmoothActivation Act = GetParam();
  for (double Alpha : {0.2, 0.9})
    for (double V : {-1.5, 0.0, 2.0}) {
      double H = 1e-6;
      double Fd = (proxActivation(Act, Alpha, V + H) -
                   proxActivation(Act, Alpha, V - H)) /
                  (2.0 * H);
      EXPECT_NEAR(proxActivationDerivative(Act, Alpha, V), Fd, 1e-5);
    }
}

TEST_P(ProxTest, RelaxationIsPointwiseSound) {
  SmoothActivation Act = GetParam();
  for (double Alpha : {0.1, 0.5, 1.0})
    for (auto [Lo, Hi] : {std::pair{-2.0, 1.0}, std::pair{-0.3, 0.4},
                          std::pair{0.5, 4.0}, std::pair{-5.0, 5.0}}) {
      ActivationRelaxation R = relaxProxActivation(Act, Alpha, Lo, Hi);
      for (int I = 0; I <= 200; ++I) {
        double V = Lo + (Hi - Lo) * I / 200.0;
        double Y = proxActivation(Act, Alpha, V);
        ASSERT_GE(Y, R.Lambda * V + R.OffsetLo - 1e-9);
        ASSERT_LE(Y, R.Lambda * V + R.OffsetHi + 1e-9);
      }
    }
}

INSTANTIATE_TEST_SUITE_P(Acts, ProxTest,
                         ::testing::Values(SmoothActivation::Tanh,
                                           SmoothActivation::Sigmoid),
                         [](const auto &Info) {
                           return Info.param == SmoothActivation::Tanh
                                      ? "tanh"
                                      : "sigmoid";
                         });

//===----------------------------------------------------------------------===//
// Concrete solvers on smooth monDEQs
//===----------------------------------------------------------------------===//

class SmoothSolverTest
    : public ::testing::TestWithParam<std::tuple<ActivationKind, int>> {};

TEST_P(SmoothSolverTest, FbAndPrAgreeOnTheFixpoint) {
  auto [Act, Seed] = GetParam();
  Rng R(300 + Seed);
  MonDeq Model = smoothModel(R, Act);
  Vector X = randomInput(R, 6);

  FixpointResult Fb =
      FixpointSolver(Model, Splitting::ForwardBackward).solve(X);
  FixpointResult Pr =
      FixpointSolver(Model, Splitting::PeacemanRachford).solve(X);
  ASSERT_TRUE(Fb.Converged);
  ASSERT_TRUE(Pr.Converged);
  EXPECT_LT((Fb.Z - Pr.Z).normInf(), 1e-6);
  // And the fixpoint satisfies z = sigma(W z + U x + b).
  EXPECT_LT((Model.iterateF(X, Pr.Z) - Pr.Z).normInf(), 1e-7);
}

TEST_P(SmoothSolverTest, FbStepPreservesTheFixpoint) {
  // The Thm 5.1 analog via the resolvent identity: one FB step at *any*
  // alpha maps the fixpoint onto itself.
  auto [Act, Seed] = GetParam();
  Rng R(330 + Seed);
  MonDeq Model = smoothModel(R, Act);
  Vector X = randomInput(R, 6);
  Vector ZStar =
      FixpointSolver(Model, Splitting::PeacemanRachford).solve(X, 1e-13).Z;
  for (double Alpha : {0.05, 0.3, 0.9}) {
    FixpointSolver Fb(Model, Splitting::ForwardBackward, Alpha);
    EXPECT_LT((Fb.fbStep(X, ZStar) - ZStar).normInf(), 1e-8)
        << "alpha=" << Alpha;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SmoothSolverTest,
    ::testing::Combine(::testing::Values(ActivationKind::Tanh,
                                         ActivationKind::Sigmoid),
                       ::testing::Range(0, 4)));

//===----------------------------------------------------------------------===//
// Abstract soundness and Craft certification
//===----------------------------------------------------------------------===//

class SmoothAbstractTest
    : public ::testing::TestWithParam<std::tuple<ActivationKind, int>> {};

TEST_P(SmoothAbstractTest, AbstractStepsCoverConcreteTrajectories) {
  auto [Act, Seed] = GetParam();
  Rng R(360 + Seed);
  MonDeq Model = smoothModel(R, Act);
  Vector X = randomInput(R, 6);
  double Eps = 0.04;
  Vector Lo = X, Hi = X;
  for (size_t I = 0; I < X.size(); ++I) {
    Lo[I] -= Eps;
    Hi[I] += Eps;
  }
  CHZonotope InputAbs = CHZonotope::fromBox(Lo, Hi);
  AbstractSolver Abs(Model, Splitting::PeacemanRachford, 1.0, InputAbs);
  FixpointSolver Conc(Model, Splitting::PeacemanRachford, 1.0);

  Vector ZC = Conc.solve(X).Z;
  CHZonotope S = Abs.initialState(ZC);
  constexpr int Steps = 8;
  std::vector<CHZonotope> States;
  for (int K = 0; K < Steps; ++K) {
    S = Abs.step(S);
    States.push_back(S);
  }

  for (int Trial = 0; Trial < 25; ++Trial) {
    Vector XP(X.size());
    for (size_t I = 0; I < X.size(); ++I)
      XP[I] = R.uniform(Lo[I], Hi[I]);
    Vector Z = ZC, U = ZC;
    for (int K = 0; K < Steps; ++K) {
      auto [ZN, UN] = Conc.prStep(XP, Z, U);
      Z = ZN;
      U = UN;
      IntervalVector Hull = States[(size_t)K].intervalHull();
      for (size_t I = 0; I < Z.size(); ++I) {
        ASSERT_GE(Z[I], Hull.lowerBounds()[I] - 1e-7) << "step " << K;
        ASSERT_LE(Z[I], Hull.upperBounds()[I] + 1e-7) << "step " << K;
      }
    }
  }
}

TEST_P(SmoothAbstractTest, CraftCertificationAgreesWithSampling) {
  auto [Act, Seed] = GetParam();
  Rng R(390 + Seed);
  MonDeq Model = smoothModel(R, Act);
  Vector X = randomInput(R, 6);
  FixpointSolver Solver(Model, Splitting::PeacemanRachford);
  int Target = Solver.predict(X);

  CraftConfig Cfg;
  Cfg.Alpha1 = 0.5;
  Cfg.LambdaOptLevel = 0;
  CraftVerifier Ver(Model, Cfg);
  CraftResult Res = Ver.verifyRobustness(X, Target, 0.02);
  if (!Res.Certified)
    return; // Nothing to validate against (soundness untestable here).
  for (int Trial = 0; Trial < 40; ++Trial) {
    Vector XP = X;
    for (size_t I = 0; I < XP.size(); ++I)
      XP[I] = std::clamp(X[I] + R.uniform(-0.02, 0.02), 0.0, 1.0);
    ASSERT_EQ(Solver.predict(XP), Target) << "certified but attackable";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SmoothAbstractTest,
    ::testing::Combine(::testing::Values(ActivationKind::Tanh,
                                         ActivationKind::Sigmoid),
                       ::testing::Range(0, 4)));

//===----------------------------------------------------------------------===//
// Training and serialization
//===----------------------------------------------------------------------===//

TEST(SmoothPipelineTest, TrainingImprovesTanhModelAccuracy) {
  Rng R(41);
  Rng DataRng(77);
  Dataset Train = makeGaussianMixture(DataRng, 150, 5, 3);
  MonDeq Model = smoothModel(R, ActivationKind::Tanh, 5, 8, 3, 3.0);
  double Before = evaluateAccuracy(Model, Train);
  TrainOptions Opts;
  Opts.Epochs = 8;
  Opts.Verbose = false;
  trainMonDeq(Model, Train, Opts);
  double After = evaluateAccuracy(Model, Train);
  EXPECT_GT(After, std::max(Before, 0.55));
}

TEST(SmoothPipelineTest, SerializationRoundTripsTheActivation) {
  Rng R(42);
  for (ActivationKind Act : {ActivationKind::ReLU, ActivationKind::Sigmoid,
                             ActivationKind::Tanh}) {
    MonDeq Model = smoothModel(R, Act);
    std::string Path = std::string("/tmp/craft_act_roundtrip_") +
                       activationName(Act) + ".bin";
    ASSERT_TRUE(Model.save(Path));
    auto Loaded = MonDeq::load(Path);
    ASSERT_TRUE(Loaded.has_value());
    EXPECT_EQ(Loaded->activation(), Act);
    // Semantics survive: same prediction on a random input.
    Vector X = randomInput(R, 6);
    EXPECT_EQ(predictClass(*Loaded, X), predictClass(Model, X));
    std::remove(Path.c_str());
  }
}

TEST(SmoothPipelineTest, ActivationNamesAreStable) {
  EXPECT_STREQ(activationName(ActivationKind::ReLU), "relu");
  EXPECT_STREQ(activationName(ActivationKind::Sigmoid), "sigmoid");
  EXPECT_STREQ(activationName(ActivationKind::Tanh), "tanh");
}
