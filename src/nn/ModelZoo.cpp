//===- nn/ModelZoo.cpp ----------------------------------------------------===//

#include "nn/ModelZoo.h"

#include "data/GaussianMixture.h"
#include "data/Hcas.h"
#include "data/SyntheticCifar.h"
#include "data/SyntheticMnist.h"
#include "nn/Training.h"
#include "support/Timer.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>

using namespace craft;

const std::vector<ModelSpec> &craft::modelZooSpecs() {
  // Epsilons follow Table 2: 0.05 on MNIST, 2/255 on CIFAR10.
  static const std::vector<ModelSpec> Specs = {
      {"mnist_fc40", "mnist", 40, false, 1000, 5, 0.01, false, 0.05, 11},
      {"mnist_fc87", "mnist", 87, false, 1000, 5, 0.01, false, 0.05, 12},
      {"mnist_fc100", "mnist", 100, false, 1000, 5, 0.01, false, 0.05, 13},
      {"mnist_fc200", "mnist", 200, false, 1000, 5, 0.01, false, 0.05, 14},
      {"mnist_conv", "mnist", 648, true, 500, 3, 0.01, true, 0.05, 15},
      {"cifar_fc200", "cifar", 200, false, 1000, 5, 0.01, false, 2.0 / 255.0,
       16},
      {"cifar_conv", "cifar", 800, true, 500, 3, 0.01, true, 2.0 / 255.0, 17},
      {"hcas_fc100", "hcas", 100, false, 4000, 12, 0.01, false, 0.01, 18},
      {"gmm_p2", "gmm", 2, false, 600, 30, 0.02, false, 0.02, 19},
      {"gmm_p3", "gmm", 3, false, 600, 30, 0.02, false, 0.02, 31},
      {"gmm_p4", "gmm", 4, false, 600, 30, 0.02, false, 0.02, 21},
  };
  return Specs;
}

const ModelSpec *craft::findModelSpec(const std::string &Name) {
  for (const ModelSpec &Spec : modelZooSpecs())
    if (Spec.Name == Name)
      return &Spec;
  return nullptr;
}

static Dataset makeDataset(const ModelSpec &Spec, size_t Count,
                           uint64_t SeedOffset) {
  Rng R(Spec.Seed * 1000003 + SeedOffset);
  if (Spec.DatasetKind == "mnist")
    return makeSyntheticMnist(R, Count);
  if (Spec.DatasetKind == "cifar")
    return makeSyntheticCifar(R, Count);
  if (Spec.DatasetKind == "gmm")
    return makeGaussianMixture(R, Count);
  if (Spec.DatasetKind == "hcas") {
    // The MDP solve is deterministic and somewhat costly; share one table.
    static const HcasMdp Mdp;
    return Mdp.makeDataset(R, Count);
  }
  assert(false && "unknown dataset kind");
  return Dataset();
}

Dataset craft::makeTrainSet(const ModelSpec &Spec) {
  return makeDataset(Spec, Spec.TrainSize, /*SeedOffset=*/1);
}

Dataset craft::makeTestSet(const ModelSpec &Spec, size_t Count) {
  return makeDataset(Spec, Count, /*SeedOffset=*/2);
}

std::string craft::modelCacheDir() {
  if (const char *Env = std::getenv("CRAFT_MODEL_DIR"))
    return Env;
  return "models";
}

MonDeq craft::getOrTrainModel(const ModelSpec &Spec, bool Verbose) {
  std::string Dir = modelCacheDir();
  std::string Path = Dir + "/" + Spec.Name + ".bin";
  if (std::optional<MonDeq> Cached = MonDeq::load(Path)) {
    if (Verbose)
      std::printf("[zoo] loaded cached model %s\n", Spec.Name.c_str());
    return *Cached;
  }

  if (Verbose)
    std::printf("[zoo] training %s (latent %zu, %zu samples, %d epochs)...\n",
                Spec.Name.c_str(), Spec.LatentDim, Spec.TrainSize,
                Spec.Epochs);
  WallTimer Timer;

  Dataset Train = makeTrainSet(Spec);
  Rng InitRng(Spec.Seed);
  MonDeq Model =
      Spec.Conv
          ? (Spec.DatasetKind == "mnist"
                 ? MonDeq::randomConv(InitRng, 1, MnistSide, MnistSide, 8, 4,
                                      3, Train.NumClasses)
                 : MonDeq::randomConv(InitRng, CifarChannels, CifarSide,
                                      CifarSide, 8, 4, 3, Train.NumClasses))
          : MonDeq::randomFc(InitRng, Train.inputDim(), Spec.LatentDim,
                             Train.NumClasses);
  assert(Model.latentDim() == Spec.LatentDim && "spec latent size mismatch");

  TrainOptions Opts;
  Opts.Epochs = Spec.Epochs;
  Opts.LearningRate = Spec.LearningRate;
  Opts.Seed = Spec.Seed + 777;
  Opts.Verbose = Verbose;
  Opts.JacobianFree = Spec.JacobianFree;
  TrainStats Stats = trainMonDeq(Model, Train, Opts);

  if (Verbose)
    std::printf("[zoo] %s trained in %.1fs, train accuracy %.1f%%\n",
                Spec.Name.c_str(), Timer.seconds(),
                100.0 * Stats.FinalTrainAccuracy);

  std::error_code Ec;
  std::filesystem::create_directories(Dir, Ec);
  if (!Model.save(Path) && Verbose)
    std::printf("[zoo] warning: could not cache model to %s\n", Path.c_str());
  return Model;
}
