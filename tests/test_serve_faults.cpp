//===- tests/test_serve_faults.cpp - Overload/failure hardening tests -----===//
//
// Drives every serve degradation path through the real in-process stack
// (scheduler, server, sockets, client): deterministic fault injection
// (CRAFT_FAULT sites), load shedding at the admission high-water mark,
// per-request deadlines and their never-cached contract, graceful drain,
// client retry/reconnect, the stdio transport's shutdown responsiveness,
// id echo on malformed requests, and the connection cap.
//
//===----------------------------------------------------------------------===//

#include "nn/MonDeq.h"
#include "serve/Client.h"
#include "serve/ModelRegistry.h"
#include "serve/Protocol.h"
#include "serve/Scheduler.h"
#include "serve/Server.h"
#include "support/FaultInjection.h"
#include "support/Rng.h"
#include "support/Socket.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace craft;
using namespace craft::serve;
using json::Value;

// This suite arms its own fault specs; an inherited CRAFT_FAULT (the CI
// chaos matrix exports one for the e2e daemons) must not pre-arm this
// process. Spend the env once-flag before any test runs.
static const bool FaultEnvNeutralized = [] {
  craft::fault::configure("");
  return true;
}();

namespace {

/// Arms a fault spec for one test scope and always disarms on exit, so a
/// failing assertion cannot leak faults into the next test.
struct FaultGuard {
  explicit FaultGuard(const std::string &Spec) {
    std::string Error;
    Armed = fault::configure(Spec, &Error);
    EXPECT_TRUE(Armed) << Spec << " -> " << Error;
  }
  ~FaultGuard() { fault::configure(""); }
  bool Armed = false;
};

/// Tiny fixture model (untrained — verdicts are irrelevant here, only
/// determinism and plumbing are under test).
struct FaultFixture {
  std::string ModelPath = "/tmp/craft_faults_model.bin";
};

FaultFixture &faultFixture() {
  static FaultFixture *F = [] {
    auto *Out = new FaultFixture;
    Rng InitRng(41);
    MonDeq Model = MonDeq::randomFc(InitRng, 5, 8, 3, 3.0);
    Model.save(Out->ModelPath);
    return Out;
  }();
  return *F;
}

/// One in-memory verification query against the fixture model. Distinct
/// \p Salt values give distinct cache keys.
VerificationSpec faultSpec(double Epsilon, double Salt = 0.0,
                           bool Attack = false) {
  FaultFixture &Fix = faultFixture();
  VerificationSpec Spec;
  Spec.ModelPath = Fix.ModelPath;
  Spec.Center = Vector(5);
  for (size_t I = 0; I < 5; ++I)
    Spec.Center[I] = 0.2 + 0.1 * double(I) + Salt;
  Spec.Epsilon = Epsilon;
  Spec.TargetClass = 0;
  Spec.Alpha1 = 0.5;
  Spec.Attack = Attack;
  Spec.InLo = Vector(5);
  Spec.InHi = Vector(5);
  for (size_t I = 0; I < 5; ++I) {
    Spec.InLo[I] = Spec.Center[I] - Epsilon;
    Spec.InHi[I] = Spec.Center[I] + Epsilon;
  }
  return Spec;
}

/// Spec text form of faultSpec for the wire-level tests. \p Inputs adds
/// that many input blocks (distinct centers, one query each).
std::string faultSpecText(double Epsilon, bool Attack, int Inputs = 1,
                          double Salt = 0.0) {
  FaultFixture &Fix = faultFixture();
  std::string S = "model " + Fix.ModelPath +
                  "\noutput robust 0\nalpha1 0.5\nepsilon " +
                  std::to_string(Epsilon) + "\nattack " +
                  (Attack ? "on" : "off") + "\n";
  char Buf[32];
  for (int B = 0; B < Inputs; ++B) {
    S += "input linf\n  center";
    for (int I = 0; I < 5; ++I) {
      std::snprintf(Buf, sizeof(Buf), " %.17g",
                    0.2 + 0.1 * double(I) + 0.01 * double(B) + Salt);
      S += Buf;
    }
    S += "\n";
  }
  return S;
}

/// Everything test-visible about an outcome except wall time.
std::string outcomeSignature(const ServeResult &R) {
  const RunOutcome &O = R.Outcome;
  return "loaded=" + std::to_string(O.ModelLoaded) +
         ",err=" + std::to_string(O.Error) +
         ",dle=" + std::to_string(O.DeadlineExceeded) +
         ",cert=" + std::to_string(O.Certified) +
         ",ref=" + std::to_string(O.Refuted) +
         ",cached=" + std::to_string(R.Cached) +
         ",over=" + std::to_string(R.Overloaded) +
         ",drain=" + std::to_string(R.Draining) + ",detail=" + O.Detail;
}

/// An in-process daemon on an ephemeral TCP port.
struct TcpServer {
  explicit TcpServer(ServerOptions Opts) : Daemon((Opts.Port = 0, Opts)) {
    std::string Error;
    Started = Daemon.start(Error);
    EXPECT_TRUE(Started) << Error;
  }
  Server Daemon;
  bool Started = false;
};

} // namespace

//===----------------------------------------------------------------------===//
// Fault injection machinery
//===----------------------------------------------------------------------===//

TEST(FaultInjectionTest, ConfigureValidatesSpecs) {
  std::string Error;
  EXPECT_TRUE(fault::configure(
      "socket.read:fail:every=3;model.load:fail:every=2,seed=7", &Error))
      << Error;
  EXPECT_TRUE(fault::armed());
  EXPECT_FALSE(fault::configure("bogus", &Error));
  EXPECT_FALSE(fault::configure("socket.read:fail", &Error));
  EXPECT_FALSE(fault::configure("nosite:fail:every=1", &Error));
  EXPECT_FALSE(fault::configure("socket.read:nokind:every=1", &Error));
  EXPECT_FALSE(fault::configure("socket.read:fail:every=0", &Error));
  EXPECT_FALSE(fault::configure("socket.read:fail:every=x", &Error));
  EXPECT_TRUE(fault::configure("", &Error)) << Error;
  EXPECT_FALSE(fault::armed());
}

TEST(FaultInjectionTest, CountersFireEveryNthDeterministically) {
  FaultGuard Guard("model.load:fail:every=3");
  // Unmatched sites never fire and disarmed processes pay only an atomic
  // load.
  EXPECT_EQ(fault::at("socket.read"), fault::Action::None);
  std::string Pattern;
  for (int I = 0; I < 9; ++I)
    Pattern += fault::at("model.load") == fault::Action::Fail ? 'F' : '.';
  EXPECT_EQ(Pattern, "..F..F..F");
  // Reconfiguring resets the counters: the pattern replays exactly.
  std::string Error;
  ASSERT_TRUE(fault::configure("model.load:fail:every=3", &Error)) << Error;
  std::string Replay;
  for (int I = 0; I < 9; ++I)
    Replay += fault::at("model.load") == fault::Action::Fail ? 'F' : '.';
  EXPECT_EQ(Replay, Pattern);
}

TEST(FaultInjectionTest, SeedShiftsTheFiringPhase) {
  FaultGuard Guard("model.load:fail:every=3,seed=1");
  std::string Pattern;
  for (int I = 0; I < 6; ++I)
    Pattern += fault::at("model.load") == fault::Action::Fail ? 'F' : '.';
  EXPECT_EQ(Pattern, ".F..F.");
}

TEST(FaultInjectionTest, ModelLoadFaultIsTransientNotPinned) {
  FaultGuard Guard("model.load:fail:every=2");
  ModelRegistry Reg;
  const std::string &Path = faultFixture().ModelPath;
  ModelRegistry::Entry A = Reg.get(Path); // Hit 1: passes.
  ASSERT_NE(A.Model, nullptr) << A.Error;
  ModelRegistry::Entry B = Reg.get(Path); // Hit 2: injected failure.
  EXPECT_EQ(B.Model, nullptr);
  EXPECT_NE(B.Error.find("injected fault"), std::string::npos) << B.Error;
  ModelRegistry::Entry C = Reg.get(Path); // Hit 3: heals.
  EXPECT_EQ(C.Model, A.Model)
      << "an injected load failure must not be negative-cached";
}

//===----------------------------------------------------------------------===//
// Scheduler: shedding, deadlines, dispatch faults
//===----------------------------------------------------------------------===//

TEST(SchedulerFaultTest, SubmitShedsAtHighWaterWithoutBlocking) {
  Scheduler::Options Opts;
  Opts.Jobs = 1;
  Opts.MaxBatch = 1;
  Opts.QueueCapacity = 4;
  Opts.ShedHighWater = 1;
  Scheduler Sched(Opts);

  // Occupy the dispatcher: a slow attack query plus a 25 ms dispatch
  // stall. The queue is then ours to fill while it runs.
  FaultGuard Guard("sched.dispatch:stall:every=1");
  std::future<ServeResult> Busy =
      Sched.submit(faultSpec(0.4, 0.0, /*Attack=*/true), false);
  // Wait until the dispatcher has popped it (the queue drains to 0);
  // from here it is busy for the stall + the verification.
  while (Sched.queueDepth() != 0 &&
         Busy.wait_for(std::chrono::seconds(0)) !=
             std::future_status::ready)
    std::this_thread::yield();

  std::future<ServeResult> Queued = Sched.submit(faultSpec(0.1, 1.0), false);
  std::future<ServeResult> Shed = Sched.submit(faultSpec(0.1, 2.0), false);
  // The shed future is ready IMMEDIATELY — while the queue still holds
  // the queued job — which is exactly what "submit never blocks past the
  // high-water mark" means.
  ASSERT_EQ(Shed.wait_for(std::chrono::seconds(0)),
            std::future_status::ready)
      << "a shed submission must resolve without waiting on the queue";
  ServeResult ShedResult = Shed.get();
  EXPECT_TRUE(ShedResult.Overloaded);
  EXPECT_NE(ShedResult.Outcome.Detail.find("admission queue"),
            std::string::npos)
      << ShedResult.Outcome.Detail;
  EXPECT_GE(Sched.stats().Shed, 1u);

  ServeResult BusyResult = Busy.get();
  ServeResult QueuedResult = Queued.get();
  EXPECT_FALSE(BusyResult.Overloaded);
  EXPECT_FALSE(QueuedResult.Overloaded);
  EXPECT_TRUE(QueuedResult.Outcome.ModelLoaded)
      << "admitted work must still complete normally";
}

TEST(SchedulerFaultTest, DeadlineOutcomeIsNeverCached) {
  Scheduler::Options Opts;
  Opts.Jobs = 1;
  Scheduler Sched(Opts);
  VerificationSpec Spec = faultSpec(0.05);

  // Budget 0 ms: expired before dispatch, resolves DeadlineExceeded.
  ServeResult Expired = Sched.submit(Spec, true, 0.0).get();
  EXPECT_TRUE(Expired.Outcome.DeadlineExceeded)
      << Expired.Outcome.Detail;
  EXPECT_FALSE(Expired.Outcome.Certified);
  EXPECT_FALSE(Expired.Cached);
  EXPECT_GE(Sched.stats().DeadlineExpired, 1u);

  // The SAME query without a deadline must execute fresh — a cache hit
  // here would mean the deadline outcome was memoized.
  ServeResult Fresh = Sched.submit(Spec).get();
  EXPECT_FALSE(Fresh.Cached)
      << "deadline outcomes must never be inserted into the cache";
  EXPECT_FALSE(Fresh.Outcome.DeadlineExceeded);
  ASSERT_TRUE(Fresh.Outcome.ModelLoaded) << Fresh.Outcome.Detail;

  // And the fresh outcome is cacheable as usual.
  ServeResult Hit = Sched.submit(Spec).get();
  EXPECT_TRUE(Hit.Cached);

  // A deadline query MAY be answered from the cache (instant and
  // deterministic) — only insertion is forbidden.
  ServeResult DeadlineHit = Sched.submit(Spec, true, 0.0).get();
  EXPECT_TRUE(DeadlineHit.Cached);
  EXPECT_FALSE(DeadlineHit.Outcome.DeadlineExceeded);
}

TEST(SchedulerFaultTest, DispatchFaultFailsTheBatchUncached) {
  VerificationSpec Spec = faultSpec(0.05, 3.0);
  {
    FaultGuard Guard("sched.dispatch:fail:every=1");
    Scheduler::Options Opts;
    Scheduler Sched(Opts);
    ServeResult R = Sched.submit(Spec).get();
    EXPECT_TRUE(R.Outcome.Error);
    EXPECT_NE(R.Outcome.Detail.find("injected fault"), std::string::npos)
        << R.Outcome.Detail;
  }
  // Faults disarmed: the same query on a fresh scheduler executes for
  // real — and on THIS scheduler the failure was not cached either.
  Scheduler::Options Opts;
  Scheduler Sched(Opts);
  ServeResult R = Sched.submit(Spec).get();
  EXPECT_FALSE(R.Cached);
  EXPECT_FALSE(R.Outcome.Error) << R.Outcome.Detail;
  ASSERT_TRUE(R.Outcome.ModelLoaded);
}

TEST(SchedulerFaultTest, DispatchStallDelaysButNeverChangesOutcomes) {
  VerificationSpec Spec = faultSpec(0.05, 4.0);
  ServeResult Baseline;
  {
    Scheduler::Options Opts;
    Scheduler Sched(Opts);
    Baseline = Sched.submit(Spec, false).get();
  }
  FaultGuard Guard("sched.dispatch:stall:every=1");
  Scheduler::Options Opts;
  Scheduler Sched(Opts);
  ServeResult Stalled = Sched.submit(Spec, false).get();
  EXPECT_EQ(outcomeSignature(Baseline), outcomeSignature(Stalled))
      << "a stall may cost wall time but must not change any outcome";
}

TEST(SchedulerFaultTest, ChaosScheduleIsDeterministic) {
  // A fixed operation sequence under a fixed fault spec must produce
  // identical test-visible outcomes on every run: per-rule counters are
  // the only fault state, and they reset on configure().
  auto runOnce = [] {
    std::string Error;
    EXPECT_TRUE(fault::configure(
        "model.load:fail:every=2;sched.dispatch:fail:every=3", &Error))
        << Error;
    Scheduler::Options Opts;
    Opts.Jobs = 1;
    Scheduler Sched(Opts);
    std::vector<std::string> Signatures;
    for (int I = 0; I < 6; ++I) {
      ServeResult R =
          Sched.submit(faultSpec(0.05, 10.0 + double(I)), false).get();
      Signatures.push_back(outcomeSignature(R));
    }
    return Signatures;
  };
  std::vector<std::string> First = runOnce();
  std::vector<std::string> Second = runOnce();
  fault::configure("");
  ASSERT_EQ(First.size(), Second.size());
  for (size_t I = 0; I < First.size(); ++I)
    EXPECT_EQ(First[I], Second[I]) << "op " << I;
  // The spec actually bit: some ops failed, some survived.
  bool AnyInjected = false, AnySurvived = false;
  for (const std::string &S : First) {
    AnyInjected |= S.find("injected fault") != std::string::npos;
    AnySurvived |= S.find("err=0") != std::string::npos &&
                   S.find("loaded=1") != std::string::npos;
  }
  EXPECT_TRUE(AnyInjected) << "fault spec never fired";
  EXPECT_TRUE(AnySurvived) << "fault spec killed every op";
}

//===----------------------------------------------------------------------===//
// Wire level: deadlines, drain, socket faults, retries
//===----------------------------------------------------------------------===//

TEST(ServeFaultsTest, DeadlineExceededEndToEndOverTcp) {
  ServerOptions SO;
  SO.Sched.Jobs = 1;
  TcpServer S(SO);
  ASSERT_TRUE(S.Started);

  ServeClient Client;
  std::string Error;
  ASSERT_TRUE(Client.connect(S.Daemon.boundPort(), Error)) << Error;

  const std::string Spec = faultSpecText(0.05, false);
  // Budget 0 ms: the deadline travels the wire, expires at the
  // scheduler, and the DeadlineExceeded outcome travels back losslessly.
  std::optional<VerifyReply> Expired =
      Client.verify(Spec, Error, true, /*DeadlineMs=*/0.0);
  ASSERT_TRUE(Expired.has_value()) << Error;
  ASSERT_EQ(Expired->Results.size(), 1u);
  EXPECT_TRUE(Expired->Results[0].Outcome.DeadlineExceeded)
      << Expired->Results[0].Outcome.Detail;
  EXPECT_FALSE(Expired->Results[0].Cached);

  // Identical query, no deadline: executes fresh (nothing was cached).
  std::optional<VerifyReply> Fresh = Client.verify(Spec, Error);
  ASSERT_TRUE(Fresh.has_value()) << Error;
  EXPECT_FALSE(Fresh->Results[0].Cached)
      << "the deadline outcome must not have been cached";
  EXPECT_FALSE(Fresh->Results[0].Outcome.DeadlineExceeded);

  std::optional<VerifyReply> Hit = Client.verify(Spec, Error);
  ASSERT_TRUE(Hit.has_value()) << Error;
  EXPECT_TRUE(Hit->Results[0].Cached);

  ASSERT_TRUE(Client.requestShutdown(Error)) << Error;
}

TEST(ServeFaultsTest, DrainFinishesInFlightAndRejectsNew) {
  ServerOptions SO;
  SO.Sched.Jobs = 1;
  TcpServer S(SO);
  ASSERT_TRUE(S.Started);
  const int Port = S.Daemon.boundPort();

  // Client A: a slow multi-query attack request, handled on its own
  // connection thread.
  std::string SlowError;
  std::optional<VerifyReply> SlowReply;
  std::thread A([&] {
    ServeClient Client;
    if (!Client.connect(Port, SlowError))
      return;
    SlowReply = Client.verify(faultSpecText(0.4, true, /*Inputs=*/4),
                              SlowError, false);
  });

  // Client B: wait until ALL of A's queries are admitted (draining
  // between two of A's submissions would reject the stragglers), then
  // drain.
  ServeClient B;
  std::string Error;
  ASSERT_TRUE(B.connect(Port, Error)) << Error;
  for (;;) {
    std::optional<Value> Stats = B.stats(Error);
    ASSERT_TRUE(Stats.has_value()) << Error;
    const Value *Sch = Stats->find("scheduler");
    ASSERT_NE(Sch, nullptr);
    if (Sch->numberOr("submitted", 0) >= 4.0)
      break;
    std::this_thread::yield();
  }
  ASSERT_TRUE(B.requestDrain(Error)) << Error;
  // The ack is written before the transport applies the drain (the
  // response must escape the socket first), so wait for the flag.
  while (!S.Daemon.draining() || !S.Daemon.scheduler().draining())
    std::this_thread::yield();

  // New work on the still-open connection is rejected with the
  // machine-readable draining code.
  std::optional<VerifyReply> Rejected =
      B.verify(faultSpecText(0.05, false, 1, 50.0), Error);
  EXPECT_FALSE(Rejected.has_value());
  EXPECT_EQ(B.lastErrorCode(), "draining") << Error;

  // A's in-flight request still finishes with a full reply.
  A.join();
  ASSERT_TRUE(SlowReply.has_value()) << SlowError;
  EXPECT_EQ(SlowReply->Results.size(), 4u);
  for (const WireResult &R : SlowReply->Results)
    EXPECT_FALSE(R.Outcome.Error) << R.Outcome.Detail;

  // And the daemon then shuts itself down (drain completes).
  for (int Waited = 0; Waited < 10000 && !S.Daemon.shuttingDown();
       Waited += 10)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(S.Daemon.shuttingDown())
      << "drain must end in a clean shutdown once in-flight work is done";
}

TEST(ServeFaultsTest, SocketFaultsSurfaceAsTransportErrors) {
  ServerOptions SO;
  TcpServer S(SO);
  ASSERT_TRUE(S.Started);

  ServeClient Client;
  std::string Error;
  ASSERT_TRUE(Client.connect(S.Daemon.boundPort(), Error)) << Error;

  {
    FaultGuard Guard("socket.write:fail:every=1");
    std::optional<Value> Doc =
        Client.roundTrip("{\"id\":1,\"method\":\"ping\"}", Error);
    EXPECT_FALSE(Doc.has_value());
    EXPECT_NE(Error.find("connection lost while sending"),
              std::string::npos)
        << Error;
  }
  {
    FaultGuard Guard("socket.read:fail:every=1");
    std::optional<Value> Doc =
        Client.roundTrip("{\"id\":2,\"method\":\"ping\"}", Error);
    EXPECT_FALSE(Doc.has_value());
    EXPECT_NE(Error.find("connection closed"), std::string::npos) << Error;
  }
  // Disarmed: a fresh connection works again (the failures were
  // injected, not real).
  ASSERT_TRUE(Client.reconnect(Error)) << Error;
  EXPECT_TRUE(Client.ping(Error)) << Error;
}

TEST(ServeFaultsTest, AcceptFaultsAreRetriedTransparently) {
  // Every other accept fails; pending connections survive in the backlog
  // and the accept loop's retry picks them up — clients never notice.
  FaultGuard Guard("socket.accept:fail:every=2");
  ServerOptions SO;
  TcpServer S(SO);
  ASSERT_TRUE(S.Started);
  for (int I = 0; I < 3; ++I) {
    ServeClient Client;
    std::string Error;
    ASSERT_TRUE(Client.connect(S.Daemon.boundPort(), Error)) << Error;
    EXPECT_TRUE(Client.ping(Error)) << "connection " << I << ": " << Error;
  }
}

TEST(ServeFaultsTest, ClientRetriesReconnectAndClassifiedRejections) {
  // A hand-rolled "flaky daemon": drops the first connection without
  // answering, answers the second with an overloaded rejection, then
  // serves a real pong. The retry layer must walk through all three.
  int Port = 0;
  std::string Error;
  SocketFd Listener = listenLocalhost(0, Port, Error);
  ASSERT_TRUE(Listener.valid()) << Error;

  std::atomic<int> Served{0};
  std::thread Fake([&] {
    // Connection 1: read the request, say nothing, hang up.
    {
      LineChannel Chan(acceptConnection(Listener));
      std::string Line;
      Chan.readLine(Line);
      Served.store(1);
    }
    // Connections 2..3 arrive on the reconnects.
    {
      LineChannel Chan(acceptConnection(Listener));
      std::string Line;
      if (Chan.readLine(Line))
        Chan.writeLine(makeErrorResponse(0, "try later", {}, "overloaded")
                           .serialize());
      // Same healthy connection: the overloaded retry does NOT
      // reconnect, so the next request arrives right here.
      if (Chan.readLine(Line)) {
        std::string E;
        std::optional<Value> Doc = json::parse(Line, E);
        Value Pong = Value::object();
        Pong.set("id", Value::number(
                           Doc ? Doc->numberOr("id", 0.0) : 0.0));
        Pong.set("ok", Value::boolean(true));
        Pong.set("pong", Value::boolean(true));
        Chan.writeLine(Pong.serialize());
        Served.store(2);
      }
    }
  });

  ServeClient Client;
  RetryPolicy Policy;
  Policy.MaxAttempts = 4;
  Policy.BackoffBaseMs = 1; // Keep the test fast; schedule still seeded.
  Client.setRetryPolicy(Policy);
  ASSERT_TRUE(Client.connect(Port, Error)) << Error;
  EXPECT_TRUE(Client.ping(Error))
      << "retry layer must survive a dropped connection and an "
         "overloaded rejection: "
      << Error;
  // Join before reading Served: the pong reaches the client a moment
  // before the fake server records having sent it.
  Fake.join();
  EXPECT_EQ(Served.load(), 2);
}

TEST(ServeFaultsTest, BackoffScheduleIsSeedDeterministic) {
  // Same seed, same jittered schedule — the client's sleeps derive from
  // taskSeed(Seed, attempt), never from wall time or global RNG state.
  auto schedule = [](uint64_t Seed) {
    std::vector<double> Out;
    for (int Attempt = 2; Attempt <= 5; ++Attempt) {
      Rng Jitter(taskSeed(Seed, static_cast<uint64_t>(Attempt)));
      Out.push_back(Jitter.uniform());
    }
    return Out;
  };
  EXPECT_EQ(schedule(7), schedule(7));
  EXPECT_NE(schedule(7), schedule(8));
}

//===----------------------------------------------------------------------===//
// Transports: stdio shutdown, id echo, connection cap
//===----------------------------------------------------------------------===//

TEST(ServeFaultsTest, RunStdioUnblocksOnConcurrentShutdown) {
  int InPipe[2], OutPipe[2];
  ASSERT_EQ(::pipe(InPipe), 0);
  ASSERT_EQ(::pipe(OutPipe), 0);
  std::FILE *In = ::fdopen(InPipe[0], "r");
  std::FILE *Out = ::fdopen(OutPipe[1], "w");
  ASSERT_NE(In, nullptr);
  ASSERT_NE(Out, nullptr);

  ServerOptions SO;
  SO.Port = -1;
  Server Daemon(SO);
  std::thread T([&] { Daemon.runStdio(In, Out); });

  // Prove the loop is serving: ping over the pipe, read the pong.
  const char *Ping = "{\"id\":1,\"method\":\"ping\"}\n";
  ASSERT_EQ(::write(InPipe[1], Ping, std::strlen(Ping)),
            (ssize_t)std::strlen(Ping));
  std::string Response;
  char C;
  while (::read(OutPipe[0], &C, 1) == 1 && C != '\n')
    Response += C;
  EXPECT_NE(Response.find("\"pong\""), std::string::npos) << Response;

  // No EOF, no further input: a getline-based loop would now block
  // forever. The polling loop must notice the shutdown and return.
  Daemon.shutdown();
  T.join(); // Hangs (and times out the test) on regression.

  std::fclose(In);
  std::fclose(Out);
  ::close(InPipe[1]);
  ::close(OutPipe[0]);
}

TEST(ServeFaultsTest, ErrorEnvelopesEchoTheRequestId) {
  ServerOptions SO;
  SO.Port = -1;
  Server Daemon(SO);
  Server::LineOutcome Act;

  // Unknown method: well-formed JSON, undecodable request — the id must
  // come back so a pipelining client can correlate the failure.
  std::string Error;
  std::optional<Value> Doc = json::parse(
      Daemon.handleLine("{\"id\":42,\"method\":\"bogus\"}", Act), Error);
  ASSERT_TRUE(Doc.has_value()) << Error;
  EXPECT_FALSE(Doc->boolOr("ok", true));
  EXPECT_EQ(Doc->numberOr("id", -1.0), 42.0);

  // Missing method, id present: still echoed.
  Doc = json::parse(Daemon.handleLine("{\"id\":7,\"spec\":\"x\"}", Act),
                    Error);
  ASSERT_TRUE(Doc.has_value()) << Error;
  EXPECT_EQ(Doc->numberOr("id", -1.0), 7.0);

  // Unparseable line: no id to echo, 0 stands in.
  Doc = json::parse(Daemon.handleLine("not json at all", Act), Error);
  ASSERT_TRUE(Doc.has_value()) << Error;
  EXPECT_EQ(Doc->numberOr("id", -1.0), 0.0);
}

TEST(ServeFaultsTest, ConnectionCapAnswersOverloadedInsteadOfGrowing) {
  ServerOptions SO;
  SO.MaxConnections = 1;
  TcpServer S(SO);
  ASSERT_TRUE(S.Started);

  // First connection occupies the only slot (ping proves it is fully
  // registered before the second connect races in).
  ServeClient First;
  std::string Error;
  ASSERT_TRUE(First.connect(S.Daemon.boundPort(), Error)) << Error;
  ASSERT_TRUE(First.ping(Error)) << Error;

  // Second connection: accepted just long enough to be told why not.
  SocketFd Fd = connectLocalhost(S.Daemon.boundPort(), Error);
  ASSERT_TRUE(Fd.valid()) << Error;
  LineChannel Chan(std::move(Fd));
  std::string Line;
  ASSERT_TRUE(Chan.readLine(Line)) << "cap rejection must be answered";
  std::optional<Value> Doc = json::parse(Line, Error);
  ASSERT_TRUE(Doc.has_value()) << Line << " -> " << Error;
  EXPECT_FALSE(Doc->boolOr("ok", true));
  EXPECT_EQ(Doc->stringOr("code", ""), "overloaded");
  EXPECT_NE(Doc->stringOr("error", "").find("connection limit"),
            std::string::npos);

  // The first connection still works.
  EXPECT_TRUE(First.ping(Error)) << Error;
}
