//===- linalg/Kernels.cpp - Backend dispatch + tiling for the kernels -----===//
//
// The public kernel entry points: alias/shape contracts, once-per-process
// backend selection (CPUID probe, CRAFT_KERNEL_BACKEND override), the
// measured-density probe behind gemmAuto, and ThreadPool tiling of large
// gemm/gemvAbs calls. The arithmetic lives in the backend TUs
// (KernelsScalar/Avx2/Avx512.cpp); everything here is structure-preserving,
// so backend, tiling, and thread count never change results.
//
//===----------------------------------------------------------------------===//

#include "linalg/KernelBackends.h"
#include "linalg/Kernels.h"
#include "linalg/KernelsBatched.h"
#include "linalg/KernelsTiling.h"

#include "support/ThreadPool.h"

#include <cassert>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <functional>
#include <mutex>

using namespace craft;
using namespace craft::kernels;

//===----------------------------------------------------------------------===//
// Alias assertions (debug builds)
//===----------------------------------------------------------------------===//

namespace {

#ifndef NDEBUG
/// Conservative storage-overlap test between two views' address ranges
/// (strided views are covered by their bounding span).
bool overlaps(const double *A, size_t ASpan, const double *B, size_t BSpan) {
  if (!A || !B || ASpan == 0 || BSpan == 0)
    return false;
  std::less<const double *> Lt;
  return !(Lt(A + ASpan - 1, B) || Lt(B + BSpan - 1, A));
}

size_t span(ConstMatrixView M) {
  return M.empty() ? 0 : (M.rows() - 1) * M.stride() + M.cols();
}

bool noAlias(MatrixView Out, ConstMatrixView In) {
  return !overlaps(Out.data(), (Out.empty() ? 0 : (Out.rows() - 1) *
                                                      Out.stride() +
                                                  Out.cols()),
                   In.data(), span(In));
}

bool noAlias(VectorView Out, ConstMatrixView In) {
  return !overlaps(Out.data(), Out.size(), In.data(), span(In));
}

bool noAlias(VectorView Out, ConstVectorView In) {
  return !overlaps(Out.data(), Out.size(), In.data(), In.size());
}
#endif

//===----------------------------------------------------------------------===//
// Backend selection
//===----------------------------------------------------------------------===//

bool cpuSupports(KernelBackend Backend) {
  switch (Backend) {
  case KernelBackend::Scalar:
    return true;
  case KernelBackend::Avx2:
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
    return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
    return false;
#endif
  case KernelBackend::Avx512:
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
    return __builtin_cpu_supports("avx512f");
#else
    return false;
#endif
  }
  return false;
}

/// Widest tier that is both compiled in and executable on this CPU.
KernelBackend widestAvailableBackend() {
  if (kernelTableFor(KernelBackend::Avx512))
    return KernelBackend::Avx512;
  if (kernelTableFor(KernelBackend::Avx2))
    return KernelBackend::Avx2;
  return KernelBackend::Scalar;
}

struct Dispatch {
  const KernelTable *Table;
  KernelBackend Kind;
};

Dispatch selectBackend() {
  KernelBackend Kind = widestAvailableBackend();
  if (const char *Env = std::getenv("CRAFT_KERNEL_BACKEND");
      Env && *Env != '\0') {
    KernelBackend Requested;
    bool Known = true;
    if (std::strcmp(Env, "scalar") == 0)
      Requested = KernelBackend::Scalar;
    else if (std::strcmp(Env, "avx2") == 0)
      Requested = KernelBackend::Avx2;
    else if (std::strcmp(Env, "avx512") == 0)
      Requested = KernelBackend::Avx512;
    else
      Known = false;
    if (!Known)
      std::fprintf(stderr,
                   "craft: unknown CRAFT_KERNEL_BACKEND '%s' "
                   "(expected scalar|avx2|avx512); using %s\n",
                   Env, kernelBackendName(Kind));
    else if (!kernelTableFor(Requested))
      std::fprintf(stderr,
                   "craft: CRAFT_KERNEL_BACKEND=%s unavailable on this "
                   "build/CPU; using %s\n",
                   Env, kernelBackendName(Kind));
    else
      Kind = Requested;
  }
  return {kernelTableFor(Kind), Kind};
}

/// The once-initialized process-wide dispatch decision.
const Dispatch &dispatch() {
  static const Dispatch D = selectBackend();
  return D;
}

//===----------------------------------------------------------------------===//
// Kernel thread pool (tiled large kernels)
//===----------------------------------------------------------------------===//

size_t configuredKernelThreads() {
  if (const char *Env = std::getenv("CRAFT_KERNEL_THREADS");
      Env && *Env != '\0') {
    long V = std::atol(Env);
    if (V == 0)
      return ThreadPool::hardwareWorkers();
    if (V > 0)
      return static_cast<size_t>(V);
  }
  return ThreadPool::hardwareWorkers();
}

// Tiling thresholds. Tiling only pays when the per-tile work dwarfs the
// submit/wake cost (~10 us): a p=200 CH-Zonotope generator product (~16M
// mul-adds) crosses GemmTileMinFlops, per-iteration p<=200 gemv-family
// calls stay serial, and conv-scale reductions (latent ~1300 x thousands
// of columns) cross GemvAbsTileMinElems.
constexpr size_t GemmTileMinFlops = size_t(1) << 22;
constexpr size_t GemvAbsTileMinElems = size_t(1) << 21;
// Minimum tile extents keep packing efficiency (gemm panels) and lane
// utilization (gemvAbs row blocks) intact.
constexpr size_t GemmMinTileCols = 32;
constexpr size_t GemvAbsMinTileRows = 64;

/// Per-call completion latch for one tiled kernel invocation. The kernel
/// pool is shared by every concurrent caller (batch-driver workers all
/// tile onto the same pool), so each caller must wait for *its* tiles
/// only — ThreadPool::wait() drains the pool-global in-flight count and
/// would both over-wait on peers and steal a peer's task exception.
class TileGroup {
public:
  explicit TileGroup(size_t Count) : Remaining(Count) {}

  void finish(std::exception_ptr E) {
    std::lock_guard<std::mutex> Lock(M);
    if (E && !Err)
      Err = E;
    if (--Remaining == 0)
      Done.notify_all();
  }

  /// Blocks until every tile of this call finished; rethrows the first
  /// tile exception (the output is partially written in that case, like
  /// any kernel call that did not return).
  void wait() {
    std::unique_lock<std::mutex> Lock(M);
    Done.wait(Lock, [this] { return Remaining == 0; });
    if (Err)
      std::rethrow_exception(Err);
  }

private:
  std::mutex M;
  std::condition_variable Done;
  size_t Remaining;
  std::exception_ptr Err;
};

using GemmFn = void (*)(MatrixView, ConstMatrixView, ConstMatrixView, double,
                        double);

/// Fans \p Fn out over \p Tiles contiguous column panels of Out/B on the
/// kernel pool. Column panels (not row tiles) so each task packs exactly
/// its own B panel — row splits would re-pack the full B once per tile.
/// The partition never changes any per-element operation order.
void runGemmTiled(GemmFn Fn, MatrixView Out, ConstMatrixView A,
                  ConstMatrixView B, double Alpha, double Beta,
                  size_t Tiles) {
  const size_t N = B.cols();
  if (Tiles <= 1 || N == 0) {
    Fn(Out, A, B, Alpha, Beta);
    return;
  }
  detail::runTiled(N, Tiles, [&](IndexRange R) {
    Fn(Out.colRange(R.Begin, R.size()), A, B.colRange(R.Begin, R.size()),
       Alpha, Beta);
  });
}

size_t gemmTileCount(size_t M, size_t N, size_t K) {
  if (detail::InKernelTile || M * N * K < GemmTileMinFlops ||
      N < 2 * GemmMinTileCols)
    return 1;
  const size_t Workers = kernelThreadCount();
  if (Workers <= 1)
    return 1;
  return Workers < N / GemmMinTileCols ? Workers : N / GemmMinTileCols;
}

} // namespace

//===----------------------------------------------------------------------===//
// Pool scaffold (declared in KernelsTiling.h; shared with KernelsBatched)
//===----------------------------------------------------------------------===//

ThreadPool &kernels::detail::kernelPool() {
  static ThreadPool Pool(configuredKernelThreads());
  return Pool;
}

thread_local bool kernels::detail::InKernelTile = false;

void kernels::detail::runTiled(size_t N, size_t Tiles,
                               const std::function<void(IndexRange)> &Body) {
  // Every part is accounted to the latch even when a submit itself throws
  // (the closure copy can bad_alloc), so already-running tiles never
  // signal a destroyed group and the caller's views stay alive until
  // every tile is done. Parts beyond N are empty and never submitted.
  TileGroup Group(Tiles < N ? Tiles : N);
  ThreadPool &Pool = kernelPool();
  std::exception_ptr SubmitError;
  for (size_t T = 0; T < Tiles; ++T) {
    IndexRange R = staticPartition(N, Tiles, T);
    if (R.size() == 0)
      continue;
    if (SubmitError) {
      Group.finish(nullptr); // Balance the latch for unsubmitted parts.
      continue;
    }
    try {
      Pool.submit([&Body, &Group, R] {
        KernelTileScope Scope;
        std::exception_ptr E;
        try {
          Body(R);
        } catch (...) {
          E = std::current_exception();
        }
        Group.finish(E);
      });
    } catch (...) {
      SubmitError = std::current_exception();
      Group.finish(SubmitError); // This part never started.
    }
  }
  Group.wait(); // Rethrows the first tile (or submit) error.
}

void kernels::detail::gemmNoFuse(MatrixView Out, ConstMatrixView A,
                                 ConstMatrixView B, double Alpha,
                                 double Beta) {
  runGemmTiled(dispatch().Table->Gemm, Out, A, B, Alpha, Beta,
               gemmTileCount(A.rows(), B.cols(), A.cols()));
}

const KernelTable &kernels::detail::activeKernelTable() {
  return *dispatch().Table;
}

//===----------------------------------------------------------------------===//
// Backend API
//===----------------------------------------------------------------------===//

const KernelTable *kernels::kernelTableFor(KernelBackend Backend) {
  if (!cpuSupports(Backend))
    return nullptr;
  switch (Backend) {
  case KernelBackend::Scalar:
    return &scalarKernelTable();
  case KernelBackend::Avx2:
#if CRAFT_KERNELS_HAVE_AVX2
    return &avx2KernelTable();
#else
    return nullptr;
#endif
  case KernelBackend::Avx512:
#if CRAFT_KERNELS_HAVE_AVX512
    return &avx512KernelTable();
#else
    return nullptr;
#endif
  }
  return nullptr;
}

KernelBackend kernels::activeKernelBackend() { return dispatch().Kind; }

const char *kernels::kernelBackendName(KernelBackend Backend) {
  switch (Backend) {
  case KernelBackend::Scalar:
    return "scalar";
  case KernelBackend::Avx2:
    return "avx2";
  case KernelBackend::Avx512:
    return "avx512";
  }
  return "unknown";
}

size_t kernels::kernelThreadCount() {
  static const size_t Count = configuredKernelThreads();
  return Count;
}

void kernels::detail::gemmTiled(MatrixView Out, ConstMatrixView A,
                                ConstMatrixView B, double Alpha, double Beta,
                                size_t Tiles) {
  runGemmTiled(dispatch().Table->Gemm, Out, A, B, Alpha, Beta, Tiles);
}

void kernels::detail::gemvAbsTiled(VectorView Out, ConstMatrixView M,
                                   ConstVectorView V, double Alpha,
                                   double Beta, size_t Tiles) {
  const size_t Rows = M.rows();
  const KernelTable &T = *dispatch().Table;
  if (Tiles <= 1 || Rows == 0) {
    T.GemvAbs(Out, M, V, Alpha, Beta);
    return;
  }
  runTiled(Rows, Tiles, [&](IndexRange R) {
    T.GemvAbs(Out.slice(R.Begin, R.size()), M.rowRange(R.Begin, R.size()), V,
              Alpha, Beta);
  });
}

//===----------------------------------------------------------------------===//
// Dispatched kernels
//===----------------------------------------------------------------------===//

void kernels::gemm(MatrixView Out, ConstMatrixView A, ConstMatrixView B,
                   double Alpha, double Beta) {
  assert(A.cols() == B.rows() && "gemm inner dimension mismatch");
  assert(Out.rows() == A.rows() && Out.cols() == B.cols() &&
         "gemm output shape mismatch");
  assert(noAlias(Out, A) && "gemm output aliases A");
  assert(noAlias(Out, B) && "gemm output aliases B");
  // Batch-fusion capture point: a thread enrolled in a GemmWaveGate hands
  // eligible calls to the wave executor instead of dispatching directly.
  // Fused execution replays the exact same per-element operation order, so
  // a captured call returns byte-identical results.
  if (wave::maybePost(Out, A, B, Alpha, Beta))
    return;
  detail::gemmNoFuse(Out, A, B, Alpha, Beta);
}

void kernels::gemmSparseAware(MatrixView Out, ConstMatrixView A,
                              ConstMatrixView B, double Alpha, double Beta) {
  assert(A.cols() == B.rows() && "gemm inner dimension mismatch");
  assert(Out.rows() == A.rows() && Out.cols() == B.cols() &&
         "gemm output shape mismatch");
  assert(noAlias(Out, A) && "gemm output aliases A");
  assert(noAlias(Out, B) && "gemm output aliases B");
  runGemmTiled(dispatch().Table->GemmSparse, Out, A, B, Alpha, Beta,
               gemmTileCount(A.rows(), B.cols(), A.cols()));
}

namespace {

/// Cheap measured-density probe: up to 256 entries sampled at an even
/// stride over A (deterministic — no RNG). The sparse-aware path pays a
/// branch per (row, k), which historically breaks even somewhere around a
/// third of the left operand being exact zeros; probe conservatively.
bool probeSparse(ConstMatrixView A) {
  const size_t Rows = A.rows(), Cols = A.cols();
  const size_t Total = Rows * Cols;
  if (Total == 0)
    return false;
  const size_t Samples = Total < 256 ? Total : 256;
  size_t Zeros = 0;
  for (size_t S = 0; S < Samples; ++S) {
    // Fixed-point stepping so the samples span the whole matrix even when
    // Total / Samples truncates (e.g. Total = 511).
    const size_t Idx = S * Total / Samples;
    if (A(Idx / Cols, Idx % Cols) == 0.0)
      ++Zeros;
  }
  return Zeros * 8 >= Samples * 3; // >= 37.5% sampled zeros.
}

} // namespace

void kernels::gemmAuto(MatrixView Out, ConstMatrixView A, ConstMatrixView B,
                       double Alpha, double Beta, DensityHint Hint) {
  const bool Sparse =
      Hint == DensityHint::Sparse ||
      (Hint == DensityHint::Probe && probeSparse(A));
  if (Sparse)
    gemmSparseAware(Out, A, B, Alpha, Beta);
  else
    gemm(Out, A, B, Alpha, Beta);
}

void kernels::gemv(VectorView Out, ConstMatrixView M, ConstVectorView V,
                   double Alpha, double Beta) {
  assert(M.cols() == V.size() && "gemv inner dimension mismatch");
  assert(Out.size() == M.rows() && "gemv output size mismatch");
  assert(noAlias(Out, M) && "gemv output aliases M");
  assert(noAlias(Out, V) && "gemv output aliases V");
  dispatch().Table->Gemv(Out, M, V, Alpha, Beta);
}

void kernels::gemvAbs(VectorView Out, ConstMatrixView M, ConstVectorView V,
                      double Alpha, double Beta) {
  assert(M.cols() == V.size() && "gemvAbs inner dimension mismatch");
  assert(Out.size() == M.rows() && "gemvAbs output size mismatch");
  assert(noAlias(Out, M) && "gemvAbs output aliases M");
  assert(noAlias(Out, V) && "gemvAbs output aliases V");
  size_t Tiles = 1;
  if (!detail::InKernelTile && M.rows() >= 2 * GemvAbsMinTileRows &&
      M.rows() * M.cols() >= GemvAbsTileMinElems) {
    const size_t Workers = kernelThreadCount();
    const size_t MaxTiles = M.rows() / GemvAbsMinTileRows;
    Tiles = Workers < MaxTiles ? Workers : MaxTiles;
  }
  if (Tiles <= 1)
    dispatch().Table->GemvAbs(Out, M, V, Alpha, Beta);
  else
    detail::gemvAbsTiled(Out, M, V, Alpha, Beta, Tiles);
}

void kernels::axpy(VectorView Y, double A, ConstVectorView X) {
  assert(Y.size() == X.size() && "axpy size mismatch");
  assert(noAlias(Y, X) && "axpy output aliases input");
  dispatch().Table->Axpy(Y, A, X);
}

void kernels::scale(VectorView X, double A) { dispatch().Table->Scale(X, A); }

double kernels::normInf(ConstVectorView X) {
  return dispatch().Table->NormInf(X);
}

void kernels::rowAbsSumsInto(VectorView Out, ConstMatrixView M, double Beta) {
  assert(Out.size() == M.rows() && "rowAbsSums output size mismatch");
  assert(noAlias(Out, M) && "rowAbsSums output aliases input");
  dispatch().Table->RowAbsSums(Out, M, Beta);
}

//===----------------------------------------------------------------------===//
// Non-dispatched kernels (pure data movement — no arithmetic to vectorize
// beyond what the compiler already does)
//===----------------------------------------------------------------------===//

void kernels::transposeInto(MatrixView Out, ConstMatrixView In) {
  assert(Out.rows() == In.cols() && Out.cols() == In.rows() &&
         "transpose output shape mismatch");
  assert(noAlias(Out, In) && "transpose output aliases input");
  for (size_t R = 0, E = In.rows(); R < E; ++R) {
    const double *Row = In.row(R);
    for (size_t C = 0, CE = In.cols(); C < CE; ++C)
      Out(C, R) = Row[C];
  }
}

void kernels::copyInto(MatrixView Out, ConstMatrixView In) {
  assert(Out.rows() == In.rows() && Out.cols() == In.cols() &&
         "copy shape mismatch");
  assert(noAlias(Out, In) && "copy output aliases input");
  for (size_t R = 0, E = In.rows(); R < E; ++R) {
    const double *Src = In.row(R);
    double *Dst = Out.row(R);
    for (size_t C = 0, CE = In.cols(); C < CE; ++C)
      Dst[C] = Src[C];
  }
}

void kernels::copyInto(VectorView Out, ConstVectorView In) {
  assert(Out.size() == In.size() && "copy size mismatch");
  assert(noAlias(Out, In) && "copy output aliases input");
  for (size_t I = 0, E = In.size(); I < E; ++I)
    Out[I] = In[I];
}

void kernels::fill(MatrixView Out, double Value) {
  for (size_t R = 0, E = Out.rows(); R < E; ++R) {
    double *Row = Out.row(R);
    for (size_t C = 0, CE = Out.cols(); C < CE; ++C)
      Row[C] = Value;
  }
}

void kernels::fill(VectorView Out, double Value) {
  for (size_t I = 0, E = Out.size(); I < E; ++I)
    Out[I] = Value;
}
