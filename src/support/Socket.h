//===- support/Socket.h - Localhost TCP helpers -----------------*- C++ -*-===//
//
// Part of the Craft reproduction (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thin POSIX socket helpers for the serve subsystem: a loopback-only TCP
/// listener, a loopback connector, and a line-oriented channel for the
/// newline-delimited JSON protocol. Everything binds/connects to
/// 127.0.0.1 exclusively — the serve daemon is a localhost service, not a
/// network-exposed one — and all failures are reported by return value
/// (never by exiting).
///
//===----------------------------------------------------------------------===//

#ifndef CRAFT_SUPPORT_SOCKET_H
#define CRAFT_SUPPORT_SOCKET_H

#include <string>

namespace craft {

/// Owning file-descriptor wrapper (closes on destruction, move-only).
class SocketFd {
public:
  SocketFd() = default;
  explicit SocketFd(int Fd) : Fd(Fd) {}
  ~SocketFd() { reset(); }

  SocketFd(SocketFd &&Other) noexcept : Fd(Other.Fd) { Other.Fd = -1; }
  SocketFd &operator=(SocketFd &&Other) noexcept {
    if (this != &Other) {
      reset();
      Fd = Other.Fd;
      Other.Fd = -1;
    }
    return *this;
  }
  SocketFd(const SocketFd &) = delete;
  SocketFd &operator=(const SocketFd &) = delete;

  int fd() const { return Fd; }
  bool valid() const { return Fd >= 0; }

  /// Closes the descriptor now (no-op when invalid).
  void reset();

  /// Half-closes both directions without releasing the descriptor: any
  /// thread blocked in recv on this fd wakes with end-of-stream. The
  /// server's shutdown path uses this to unblock connection threads.
  void shutdownBoth();

private:
  int Fd = -1;
};

/// Listens on 127.0.0.1:\p Port (0 = pick an ephemeral port). On success
/// returns a listening socket and stores the bound port in \p BoundPort;
/// on failure returns an invalid fd and stores a message in \p Error.
SocketFd listenLocalhost(int Port, int &BoundPort, std::string &Error);

/// Accepts one connection (blocking). Returns an invalid fd on error or
/// when the listener has been shut down.
SocketFd acceptConnection(const SocketFd &Listener);

/// Connects to 127.0.0.1:\p Port. Invalid fd + \p Error on failure.
SocketFd connectLocalhost(int Port, std::string &Error);

/// Buffered line IO over a socket: one '\n'-terminated message per call,
/// matching the serve protocol's newline-delimited JSON framing. Not
/// thread-safe; use one channel per connection thread.
class LineChannel {
public:
  explicit LineChannel(SocketFd Socket) : Socket(std::move(Socket)) {}

  bool valid() const { return Socket.valid(); }
  SocketFd &socket() { return Socket; }

  /// Reads up to and including the next '\n'; stores the line without the
  /// terminator in \p Line. Returns false on end-of-stream or error, or
  /// when a line exceeds \p MaxLineBytes (protects the server from an
  /// unbounded buffer — 64 MiB fits any realistic spec payload).
  bool readLine(std::string &Line, size_t MaxLineBytes = 64u << 20);

  /// Writes \p Line plus a '\n' terminator, retrying partial writes.
  /// Returns false when the peer is gone (never raises SIGPIPE).
  bool writeLine(const std::string &Line);

  /// Arms a receive timeout (SO_RCVTIMEO): a readLine stuck for \p Ms
  /// with no bytes fails with timedOut() set instead of blocking forever.
  /// 0 disables. Returns false when the option cannot be set.
  bool setRecvTimeoutMs(int Ms);

  /// True when the last readLine failure was a receive timeout (as
  /// opposed to end-of-stream or a hard error). The client's retry layer
  /// uses this to classify the failure as retryable-after-reconnect.
  bool timedOut() const { return TimedOut; }

private:
  SocketFd Socket;
  std::string Buffer; ///< Bytes received past the last returned line.
  bool TimedOut = false;
};

} // namespace craft

#endif // CRAFT_SUPPORT_SOCKET_H
