//===- tests/test_affine.cpp - Affine arithmetic tests --------------------===//
//
// Unit and property tests for the scalar affine-arithmetic library
// (domains/AffineForm.h): exactness of the linear fragment, soundness of
// every nonlinear transformer against dense concrete sampling, Chebyshev
// tightness versus plain interval evaluation, and correlation preservation
// through chains of operations.
//
//===----------------------------------------------------------------------===//

#include "domains/AffineForm.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <string>

using namespace craft;

namespace {

/// Checks that f(x) lies inside Y's band for every sampled x in X's range,
/// using the shared symbol between X and Y (pointwise soundness, stronger
/// than interval containment).
void expectPointwiseSound(const AffineForm &X, const AffineForm &Y,
                          const std::function<double(double)> &F,
                          double Tol = 1e-9) {
  ASSERT_EQ(X.terms().size(), 1u) << "input must be a single fresh symbol";
  uint64_t Id = X.terms()[0].first;
  double R = X.terms()[0].second;
  constexpr int Samples = 257;
  for (int I = 0; I < Samples; ++I) {
    double E = -1.0 + 2.0 * I / (Samples - 1);
    double Xv = X.center() + R * E;
    auto [Lo, Hi] = Y.evalPartial({{Id, E}});
    double Fv = F(Xv);
    EXPECT_GE(Fv, Lo - Tol) << "x = " << Xv;
    EXPECT_LE(Fv, Hi + Tol) << "x = " << Xv;
  }
}

struct UnaryCase {
  std::string Name;
  double Lo, Hi;
  AffineForm (AffineForm::*Op)() const;
  double (*F)(double);
};

double recipD(double X) { return 1.0 / X; }
double squareD(double X) { return X * X; }
double sigmoidD(double X) { return 1.0 / (1.0 + std::exp(-X)); }

} // namespace

//===----------------------------------------------------------------------===//
// Linear fragment is exact
//===----------------------------------------------------------------------===//

TEST(AffineFormTest, ConstantHasZeroRadius) {
  AffineForm C = AffineForm::constant(3.25);
  EXPECT_EQ(C.center(), 3.25);
  EXPECT_EQ(C.radius(), 0.0);
  EXPECT_TRUE(C.terms().empty());
}

TEST(AffineFormTest, RangeSpansInterval) {
  AffineForm X = AffineForm::range(-2.0, 6.0);
  EXPECT_DOUBLE_EQ(X.lo(), -2.0);
  EXPECT_DOUBLE_EQ(X.hi(), 6.0);
  EXPECT_EQ(X.terms().size(), 1u);
}

TEST(AffineFormTest, SelfSubtractionCancelsExactly) {
  AffineForm X = AffineForm::range(1.0, 5.0);
  AffineForm Z = X - X;
  EXPECT_DOUBLE_EQ(Z.center(), 0.0);
  EXPECT_DOUBLE_EQ(Z.radius(), 0.0);
}

TEST(AffineFormTest, LinearCombinationIsExact) {
  AffineForm X = AffineForm::range(0.0, 2.0);
  AffineForm Y = AffineForm::range(-1.0, 1.0);
  AffineForm Z = X * 3.0 + Y * -2.0 + 5.0;
  // Independent symbols: radius adds, centers map affinely.
  EXPECT_DOUBLE_EQ(Z.center(), 3.0 * 1.0 + 5.0);
  EXPECT_DOUBLE_EQ(Z.radius(), 3.0 * 1.0 + 2.0 * 1.0);
}

TEST(AffineFormTest, SharedSymbolAffineCancellation) {
  AffineForm X = AffineForm::range(0.0, 4.0);
  // 2x - x = x must have exactly x's interval, not the Minkowski sum.
  AffineForm Z = X * 2.0 - X;
  EXPECT_DOUBLE_EQ(Z.lo(), 0.0);
  EXPECT_DOUBLE_EQ(Z.hi(), 4.0);
}

TEST(AffineFormTest, EvalPartialPinsSharedSymbol) {
  AffineForm X = AffineForm::range(0.0, 2.0);
  uint64_t Id = X.terms()[0].first;
  AffineForm Y = X * 2.0 + 1.0;
  auto [Lo, Hi] = Y.evalPartial({{Id, 0.5}});
  // x = 1.5 => y = 4 exactly (no free symbols).
  EXPECT_DOUBLE_EQ(Lo, 4.0);
  EXPECT_DOUBLE_EQ(Hi, 4.0);
}

TEST(AffineFormTest, WidenedGrowsRadiusByDelta) {
  AffineForm X = AffineForm::range(0.0, 1.0);
  AffineForm W = X.widened(0.25);
  EXPECT_DOUBLE_EQ(W.radius(), X.radius() + 0.25);
  EXPECT_DOUBLE_EQ(W.center(), X.center());
}

//===----------------------------------------------------------------------===//
// Nonlinear transformer soundness (pointwise, parameterized over ranges)
//===----------------------------------------------------------------------===//

class UnarySoundnessTest : public ::testing::TestWithParam<UnaryCase> {};

TEST_P(UnarySoundnessTest, PointwiseSound) {
  const UnaryCase &C = GetParam();
  AffineForm X = AffineForm::range(C.Lo, C.Hi);
  AffineForm Y = (X.*C.Op)();
  expectPointwiseSound(X, Y, C.F);
}

TEST_P(UnarySoundnessTest, NoWiderThanIntervalEvaluation) {
  // The Chebyshev / min-range band must never be looser than evaluating f
  // over the whole interval without correlation (2x slack for the S-shaped
  // min-range transformers, which trade width for slope soundness).
  const UnaryCase &C = GetParam();
  AffineForm X = AffineForm::range(C.Lo, C.Hi);
  AffineForm Y = (X.*C.Op)();
  double FMin = 1e300, FMax = -1e300;
  for (int I = 0; I <= 512; ++I) {
    double Xv = C.Lo + (C.Hi - C.Lo) * I / 512.0;
    FMin = std::min(FMin, C.F(Xv));
    FMax = std::max(FMax, C.F(Xv));
  }
  EXPECT_LE(Y.width(), 2.0 * (FMax - FMin) + 1e-9) << C.Name;
  // And it must cover the true range.
  EXPECT_LE(Y.lo(), FMin + 1e-9) << C.Name;
  EXPECT_GE(Y.hi(), FMax - 1e-9) << C.Name;
}

INSTANTIATE_TEST_SUITE_P(
    Functions, UnarySoundnessTest,
    ::testing::Values(
        UnaryCase{"recip_narrow", 2.0, 3.0, &AffineForm::reciprocal, recipD},
        UnaryCase{"recip_wide", 0.1, 50.0, &AffineForm::reciprocal, recipD},
        UnaryCase{"recip_negative", -4.0, -0.5, &AffineForm::reciprocal,
                  recipD},
        UnaryCase{"sqrt_narrow", 16.0, 20.0, &AffineForm::sqrt, std::sqrt},
        UnaryCase{"sqrt_wide", 0.0, 100.0, &AffineForm::sqrt, std::sqrt},
        UnaryCase{"exp_neg", -3.0, 0.5, &AffineForm::exp, std::exp},
        UnaryCase{"exp_pos", 0.0, 4.0, &AffineForm::exp, std::exp},
        UnaryCase{"log_narrow", 1.0, 2.0, &AffineForm::log, std::log},
        UnaryCase{"log_wide", 0.01, 10.0, &AffineForm::log, std::log},
        UnaryCase{"tanh_cross", -2.0, 2.0, &AffineForm::tanh, std::tanh},
        UnaryCase{"tanh_pos", 0.5, 3.0, &AffineForm::tanh, std::tanh},
        UnaryCase{"tanh_neg", -5.0, -1.0, &AffineForm::tanh, std::tanh},
        UnaryCase{"sigmoid_cross", -4.0, 4.0, &AffineForm::sigmoid, sigmoidD},
        UnaryCase{"sigmoid_pos", 1.0, 6.0, &AffineForm::sigmoid, sigmoidD},
        UnaryCase{"square_cross", -1.5, 2.5, &AffineForm::square, squareD},
        UnaryCase{"square_pos", 1.0, 3.0, &AffineForm::square, squareD},
        UnaryCase{"cos_monotone", 0.2, 2.8, &AffineForm::cos, std::cos},
        UnaryCase{"cos_extremum", -1.0, 1.0, &AffineForm::cos, std::cos},
        UnaryCase{"cos_wide", -2.0, 9.0, &AffineForm::cos, std::cos},
        UnaryCase{"sin_monotone", -1.2, 1.2, &AffineForm::sin, std::sin},
        UnaryCase{"sin_extremum", 0.5, 2.8, &AffineForm::sin, std::sin}),
    [](const ::testing::TestParamInfo<UnaryCase> &Info) {
      return Info.param.Name;
    });

//===----------------------------------------------------------------------===//
// Specific transformer properties
//===----------------------------------------------------------------------===//

TEST(AffineFormTest, CosVeryWideFallsBackToUnitRange) {
  AffineForm X = AffineForm::range(0.0, 100.0);
  AffineForm Y = X.cos();
  EXPECT_LE(Y.hi(), 1.0 + 1e-9);
  EXPECT_GE(Y.lo(), -1.0 - 1e-9);
  EXPECT_GE(Y.hi(), 1.0 - 1e-9); // cos hits +1 inside [0, 100].
  EXPECT_LE(Y.lo(), -1.0 + 1e-9);
}

TEST(AffineFormTest, ChebyshevExpTighterThanInterval) {
  AffineForm X = AffineForm::range(0.0, 2.0);
  AffineForm Y = X.exp();
  double IntervalWidth = std::exp(2.0) - std::exp(0.0);
  // Chebyshev band width = max deviation band, strictly smaller than the
  // uncorrelated interval width for convex f on a non-trivial range.
  EXPECT_LT(Y.radius() - std::fabs(Y.terms().back().second) + 0.0, 1e300);
  double RemainderWidth = 2.0 * std::fabs(Y.terms().back().second);
  EXPECT_LT(RemainderWidth, 0.5 * IntervalWidth);
}

TEST(AffineFormTest, SquareTighterThanGenericProduct) {
  AffineForm X = AffineForm::range(-1.0, 3.0);
  EXPECT_LE(X.square().width(), (X * X).width() + 1e-12);
}

TEST(AffineFormTest, DivisionBySelfContainsOneAndIsTight) {
  AffineForm X = AffineForm::range(4.0, 5.0);
  AffineForm Q = X / X;
  EXPECT_LE(Q.lo(), 1.0);
  EXPECT_GE(Q.hi(), 1.0);
  // Correlated division: far tighter than the uncorrelated quotient
  // [4/5, 5/4] (width 0.45).
  EXPECT_LT(Q.width(), 0.1);
}

TEST(AffineFormTest, ReciprocalOfNegativeRangeMirrorsPositive) {
  AffineForm XPos = AffineForm::range(2.0, 4.0);
  AffineForm XNeg = AffineForm::range(-4.0, -2.0);
  AffineForm RPos = XPos.reciprocal();
  AffineForm RNeg = XNeg.reciprocal();
  EXPECT_NEAR(RNeg.lo(), -RPos.hi(), 1e-12);
  EXPECT_NEAR(RNeg.hi(), -RPos.lo(), 1e-12);
}

TEST(AffineFormTest, DegenerateInputsGiveDegenerateOutputs) {
  AffineForm C = AffineForm::constant(9.0);
  EXPECT_NEAR(C.sqrt().center(), 3.0, 1e-9);
  EXPECT_LT(C.sqrt().width(), 1e-9);
  EXPECT_NEAR(C.reciprocal().center(), 1.0 / 9.0, 1e-9);
  EXPECT_NEAR(C.exp().center(), std::exp(9.0), 1e-3);
  EXPECT_NEAR(C.log().center(), std::log(9.0), 1e-9);
  EXPECT_NEAR(C.tanh().center(), std::tanh(9.0), 1e-9);
}

TEST(AffineFormTest, SqrtOfSquareRecoversMagnitudeApproximately) {
  AffineForm X = AffineForm::range(2.0, 3.0);
  AffineForm Y = X.square().sqrt();
  // Sound: contains [2, 3].
  EXPECT_LE(Y.lo(), 2.0 + 1e-9);
  EXPECT_GE(Y.hi(), 3.0 - 1e-9);
  // And the composition stays within 2x of the exact width.
  EXPECT_LT(Y.width(), 2.0);
}

//===----------------------------------------------------------------------===//
// Consolidation and relational containment
//===----------------------------------------------------------------------===//

TEST(AffineFormTest, ConsolidatedPreservesHullWithFreshSymbol) {
  AffineForm X = AffineForm::range(0.0, 1.0);
  AffineForm Y = X.square() + X; // Multiple symbols.
  AffineForm C = Y.consolidated();
  EXPECT_EQ(C.terms().size(), 1u);
  EXPECT_NEAR(C.lo(), Y.lo(), 1e-12);
  EXPECT_NEAR(C.hi(), Y.hi(), 1e-12);
  EXPECT_NE(C.terms()[0].first, X.terms()[0].first) << "must decorrelate";
}

TEST(AffineFormTest, ConsolidatedExpansionWidensHull) {
  AffineForm X = AffineForm::range(2.0, 3.0);
  AffineForm C = X.consolidated(0.5);
  EXPECT_NEAR(C.lo(), 1.5, 1e-12);
  EXPECT_NEAR(C.hi(), 3.5, 1e-12);
}

TEST(AffineFormTest, RelationalContainmentWithEmptySliceIsIntervalCheck) {
  AffineForm Outer = AffineForm::range(0.0, 1.0);
  AffineForm Inner = AffineForm::range(0.25, 0.75);
  EXPECT_TRUE(Outer.containsRelational(Inner, {}));
  EXPECT_FALSE(Inner.containsRelational(Outer, {}));
}

TEST(AffineFormTest, RelationalContainmentRejectsSliceEscape) {
  // Inner fits the outer's interval hull but its slope w.r.t. the shared
  // input symbol differs, so some input slice escapes: the relational check
  // must reject what the interval check would accept. This is the exact
  // shape of the containment-unsoundness regression (see DESIGN.md).
  AffineForm X = AffineForm::range(-1.0, 1.0);
  uint64_t Id = X.terms()[0].first;
  AffineForm Outer = X + 10.0;                   // [9, 11], slope 1.
  AffineForm Inner = X * 0.5 + 10.0;             // [9.5, 10.5], slope 0.5.
  EXPECT_TRUE(Outer.contains(Inner));            // Interval hulls nest.
  EXPECT_FALSE(Outer.containsRelational(Inner, {Id}));
  // At slice x = -1 the outer covers exactly {9} but the inner sits at 9.5.
}

TEST(AffineFormTest, RelationalContainmentAcceptsTrueSliceInclusion) {
  AffineForm X = AffineForm::range(-1.0, 1.0);
  uint64_t Id = X.terms()[0].first;
  AffineForm Outer = (X + 10.0).widened(1.0); // Slope 1, slack 1 per slice.
  AffineForm Inner = (X + 10.2).widened(0.5); // Same slope, offset 0.2.
  EXPECT_TRUE(Outer.containsRelational(Inner, {Id}));
  // Offset + inner slack (0.7) fits the outer slack (1.0); tightening the
  // outer slack below 0.7 must flip the verdict.
  AffineForm TightOuter = (X + 10.0).widened(0.6);
  EXPECT_FALSE(TightOuter.containsRelational(Inner, {Id}));
}

//===----------------------------------------------------------------------===//
// Join and random-chain soundness
//===----------------------------------------------------------------------===//

TEST(AffineFormTest, JoinContainsBothOperands) {
  AffineForm A = AffineForm::range(0.0, 1.0);
  AffineForm B = AffineForm::range(0.5, 2.0);
  AffineForm J = AffineForm::join(A, B);
  EXPECT_TRUE(J.contains(A, 1e-12));
  EXPECT_TRUE(J.contains(B, 1e-12));
}

TEST(AffineFormTest, JoinOfEqualFormsIsNoWider) {
  AffineForm A = AffineForm::range(1.0, 2.0);
  AffineForm J = AffineForm::join(A, A);
  EXPECT_NEAR(J.lo(), A.lo(), 1e-12);
  EXPECT_NEAR(J.hi(), A.hi(), 1e-12);
}

class AffineChainTest : public ::testing::TestWithParam<int> {};

TEST_P(AffineChainTest, RandomExpressionChainIsPointwiseSound) {
  // Builds a random smooth expression chain over one input symbol and
  // checks band soundness pointwise. Exercises interactions of remainder
  // symbols across many operations.
  Rng R(1234 + GetParam());
  double Lo = R.uniform(0.5, 1.0);
  double Hi = Lo + R.uniform(0.1, 1.5);
  AffineForm X = AffineForm::range(Lo, Hi);
  uint64_t Id = X.terms()[0].first;

  AffineForm Y = X;
  std::function<double(double)> F = [](double V) { return V; };
  for (int Step = 0; Step < 6; ++Step) {
    int Op = R.uniformInt(0, 5);
    switch (Op) {
    case 0: {
      double S = R.uniform(-2.0, 2.0);
      Y = Y * S + 1.0;
      F = [F, S](double V) { return F(V) * S + 1.0; };
      break;
    }
    case 1:
      Y = Y.square() * 0.25;
      F = [F](double V) {
        double W = F(V);
        return W * W * 0.25;
      };
      break;
    case 2:
      Y = Y.tanh();
      F = [F](double V) { return std::tanh(F(V)); };
      break;
    case 3:
      Y = Y.sigmoid();
      F = [F](double V) { return sigmoidD(F(V)); };
      break;
    case 4:
      Y = Y.sin();
      F = [F](double V) { return std::sin(F(V)); };
      break;
    case 5:
      Y = Y + X; // Re-inject the input symbol (correlation stress).
      F = [F](double V) { return F(V) + V; };
      break;
    }
  }
  constexpr int Samples = 101;
  for (int I = 0; I < Samples; ++I) {
    double E = -1.0 + 2.0 * I / (Samples - 1);
    double Xv = X.center() + X.terms()[0].second * E;
    auto [BandLo, BandHi] = Y.evalPartial({{Id, E}});
    double Fv = F(Xv);
    ASSERT_GE(Fv, BandLo - 1e-7) << "seed " << GetParam() << " x=" << Xv;
    ASSERT_LE(Fv, BandHi + 1e-7) << "seed " << GetParam() << " x=" << Xv;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AffineChainTest, ::testing::Range(0, 16));
