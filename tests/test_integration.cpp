//===- tests/test_integration.cpp - Cross-module integration tests --------===//
//
// End-to-end consistency checks across the full pipeline: training ->
// attack -> verification, verifier-vs-verifier orderings, and the
// interplay of domain splitting with concrete prediction. All models are
// trained ad hoc (small + fast) so the suite is hermetic.
//
//===----------------------------------------------------------------------===//

#include "attack/Pgd.h"
#include "core/DomainSplitting.h"
#include "core/KleeneVerifier.h"
#include "core/LipschitzCert.h"
#include "core/Verifier.h"
#include "data/GaussianMixture.h"
#include "data/Hcas.h"
#include "nn/Training.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace craft;

namespace {

/// Shared trained model: 5-d GMM classifier with 8 latent dims.
const MonDeq &model() {
  static const MonDeq M = [] {
    Rng R(60);
    Dataset Train = makeGaussianMixture(R, 400, 5, 3, 0.18);
    MonDeq Net = MonDeq::randomFc(R, 5, 8, 3, 20.0);
    TrainOptions Opts;
    Opts.Epochs = 40;
    Opts.LearningRate = 0.02;
    trainMonDeq(Net, Train, Opts);
    return Net;
  }();
  return M;
}

//===----------------------------------------------------------------------===//
// Certificate vs attack consistency
//===----------------------------------------------------------------------===//

TEST(PipelineTest, CertificateAndAttackNeverBothSucceed) {
  // The fundamental consistency property of the whole system: if Craft
  // certifies the ball, PGD (a concrete search within that ball) can never
  // find an adversarial example.
  const MonDeq &Net = model();
  FixpointSolver Solver(Net, Splitting::PeacemanRachford);
  Rng R(61);
  Dataset Test = makeGaussianMixture(R, 20, 5, 3, 0.18);
  CraftConfig Config;
  Config.Alpha1 = 0.05;
  CraftVerifier Verifier(Net, Config);

  size_t Checked = 0;
  for (double Eps : {0.01, 0.05, 0.12}) {
    for (size_t I = 0; I < 6; ++I) {
      Vector X = Test.input(I);
      int Label = Solver.predict(X);
      CraftResult Res = Verifier.verifyRobustness(X, Label, Eps);

      PgdOptions Attack;
      Attack.Epsilon = Eps;
      Attack.Steps = 40;
      Attack.Restarts = 2;
      Attack.Seed = 70 + I;
      PgdResult Adv = pgdAttack(Net, Solver, X, Label, Attack);

      EXPECT_FALSE(Res.Certified && Adv.FoundAdversarial)
          << "certificate and adversarial example at eps " << Eps;
      ++Checked;
    }
  }
  EXPECT_EQ(Checked, 18u);
}

TEST(PipelineTest, LipschitzAndCraftCertificatesAgreeWithAttack) {
  const MonDeq &Net = model();
  FixpointSolver Solver(Net, Splitting::PeacemanRachford);
  LipschitzCertifier Lip(Net);
  Rng R(62);
  Dataset Test = makeGaussianMixture(R, 10, 5, 3, 0.18);

  for (size_t I = 0; I < 5; ++I) {
    Vector X = Test.input(I);
    int Label = Solver.predict(X);
    double Radius = Lip.certifiedRadius(X, Label);
    if (Radius <= 0.0)
      continue;
    PgdOptions Attack;
    Attack.Epsilon = 0.95 * Radius;
    Attack.Seed = 80 + I;
    EXPECT_FALSE(pgdAttack(Net, Solver, X, Label, Attack).FoundAdversarial);
  }
}

//===----------------------------------------------------------------------===//
// Verifier-vs-verifier orderings
//===----------------------------------------------------------------------===//

TEST(VerifierOrderingTest, BothKleeneModesAreSoundMarginBounds) {
  // Both Kleene joins are sound, so their reported margins must lower-bound
  // the true margin of every concrete input in the region. (No tightness
  // ordering holds between the modes: their termination criteria differ.)
  const MonDeq &Net = model();
  FixpointSolver Solver(Net, Splitting::PeacemanRachford);
  Rng R(63);
  Dataset Test = makeGaussianMixture(R, 8, 5, 3, 0.18);

  KleeneConfig Hull;
  Hull.Alpha = 0.9 * Net.fbAlphaBound();
  KleeneConfig Quasi = Hull;
  Quasi.Join = KleeneJoin::Quasi;
  KleeneVerifier HullV(Net, Hull), QuasiV(Net, Quasi);

  size_t Compared = 0;
  const double Eps = 0.02;
  for (size_t I = 0; I < 6; ++I) {
    Vector X = Test.input(I);
    int Label = Solver.predict(X);
    KleeneResult H = HullV.verifyRobustness(X, Label, Eps);
    KleeneResult Q = QuasiV.verifyRobustness(X, Label, Eps);
    if (!H.Converged || !Q.Converged)
      continue;
    ++Compared;
    for (int Trial = 0; Trial < 10; ++Trial) {
      Vector P = X;
      for (size_t J = 0; J < 5; ++J)
        P[J] = std::clamp(P[J] + R.uniform(-Eps, Eps), 0.0, 1.0);
      Vector Y = Solver.logits(P);
      double TrueMargin = 1e300;
      for (size_t C = 0; C < Y.size(); ++C)
        if (static_cast<int>(C) != Label)
          TrueMargin = std::min(TrueMargin, Y[Label] - Y[C]);
      EXPECT_GE(TrueMargin, H.BestMargin - 1e-7);
      EXPECT_GE(TrueMargin, Q.BestMargin - 1e-7);
    }
  }
  EXPECT_GE(Compared, 3u);
}

TEST(VerifierOrderingTest, CraftBeatsKleeneOnMargins) {
  const MonDeq &Net = model();
  FixpointSolver Solver(Net, Splitting::PeacemanRachford);
  Rng R(64);
  Dataset Test = makeGaussianMixture(R, 8, 5, 3, 0.18);

  CraftConfig CConfig;
  CConfig.Alpha1 = 0.05;
  CraftVerifier Craft(Net, CConfig);
  KleeneConfig KConfig;
  KConfig.Alpha = 0.9 * Net.fbAlphaBound();
  KConfig.Join = KleeneJoin::Quasi;
  KleeneVerifier Kleene(Net, KConfig);

  size_t Compared = 0, CraftWins = 0;
  for (size_t I = 0; I < 6; ++I) {
    Vector X = Test.input(I);
    int Label = Solver.predict(X);
    CraftResult C = Craft.verifyRobustness(X, Label, 0.03);
    KleeneResult K = Kleene.verifyRobustness(X, Label, 0.03);
    if (!C.Containment || !K.Converged)
      continue;
    ++Compared;
    CraftWins += C.BestMargin > K.BestMargin;
  }
  ASSERT_GE(Compared, 3u);
  EXPECT_EQ(CraftWins, Compared)
      << "Craft abstracts only fixpoints; Kleene covers all iterates";
}

TEST(VerifierOrderingTest, Phase2PrAlsoCertifies) {
  // "Only PR" (Table 4) is a supported configuration and still certifies
  // easy samples, just fewer than PR-then-FB overall.
  const MonDeq &Net = model();
  FixpointSolver Solver(Net, Splitting::PeacemanRachford);
  Rng R(65);
  Dataset Test = makeGaussianMixture(R, 8, 5, 3, 0.18);

  CraftConfig Config;
  Config.Alpha1 = 0.05;
  Config.Phase2Method = Splitting::PeacemanRachford;
  CraftVerifier Verifier(Net, Config);
  size_t Certified = 0;
  for (size_t I = 0; I < 6; ++I) {
    Vector X = Test.input(I);
    Certified += Verifier.verifyRobustness(X, Solver.predict(X), 0.01)
                     .Certified;
  }
  EXPECT_GT(Certified, 0u);
}

//===----------------------------------------------------------------------===//
// Domain splitting consistency
//===----------------------------------------------------------------------===//

TEST(SplittingIntegrationTest, CertifiedRegionsMatchConcretePredictions) {
  // Every certified region's class must equal the concrete prediction at
  // random points inside it (the certificate is a *global* statement).
  const MonDeq &Net = model();
  FixpointSolver Solver(Net, Splitting::PeacemanRachford);
  CraftConfig Config;
  Config.Alpha1 = 0.05;
  Config.LambdaOptLevel = 0;
  SplitResult Res = certifyByDomainSplitting(Net, Config, Vector(5, 0.4),
                                             Vector(5, 0.6), 8);
  ASSERT_GT(Res.NumCertified, 0u);

  Rng R(66);
  size_t PointsChecked = 0;
  for (const SplitRegion &Region : Res.Regions) {
    if (Region.CertifiedClass < 0)
      continue;
    for (int Trial = 0; Trial < 3; ++Trial) {
      Vector P(5);
      for (size_t J = 0; J < 5; ++J)
        P[J] = R.uniform(Region.Lo[J], Region.Hi[J]);
      EXPECT_EQ(Solver.predict(P), Region.CertifiedClass);
      ++PointsChecked;
    }
    if (PointsChecked > 60)
      break;
  }
  EXPECT_GT(PointsChecked, 0u);
}

TEST(SplittingIntegrationTest, DeeperSplittingCertifiesMore) {
  const MonDeq &Net = model();
  CraftConfig Config;
  Config.Alpha1 = 0.05;
  Config.LambdaOptLevel = 0;
  SplitResult Shallow = certifyByDomainSplitting(Net, Config, Vector(5, 0.4),
                                                 Vector(5, 0.6), 4);
  SplitResult Deep = certifyByDomainSplitting(Net, Config, Vector(5, 0.4),
                                              Vector(5, 0.6), 9);
  EXPECT_GE(Deep.CertifiedFraction, Shallow.CertifiedFraction - 1e-12);
}

//===----------------------------------------------------------------------===//
// HCAS end-to-end (miniature)
//===----------------------------------------------------------------------===//

TEST(HcasIntegrationTest, TrainedAdvisoryNetworkIsCertifiable) {
  // Miniature version of the Section 6.2 pipeline: MDP table -> monDEQ ->
  // region certification.
  static const HcasMdp Mdp;
  Rng R(67);
  Dataset Train = Mdp.makeDataset(R, 1500);
  MonDeq Net = MonDeq::randomFc(R, 3, 24, HcasMdp::NumActions, 20.0);
  TrainOptions Opts;
  Opts.Epochs = 12;
  trainMonDeq(Net, Train, Opts);
  Dataset Test = Mdp.makeDataset(R, 300);
  double Acc = evaluateAccuracy(Net, Test);
  EXPECT_GT(Acc, 0.6) << "advisory net should fit the policy table";

  CraftConfig Config;
  Config.Alpha1 = 0.06;
  Config.LambdaOptLevel = 0;
  constexpr double Deg = 3.14159265358979323846 / 180.0;
  Vector Lo = HcasMdp::normalizeInput(18.0, 14.0, -90.5 * Deg);
  Vector Hi = HcasMdp::normalizeInput(22.0, 18.0, -89.5 * Deg);
  SplitResult Res = certifyByDomainSplitting(Net, Config, Lo, Hi, 6);
  // Far-away intruder region: should be dominantly certifiable.
  EXPECT_GT(Res.CertifiedFraction, 0.2);
}

} // namespace
