//===- serve/Server.cpp ---------------------------------------------------===//

// craft-lint: allow-file(conc-thread) — the daemon owns one accepter, one
// reader thread per connection, a drain finisher, and a signal watcher by
// design; every one is joined in ~Server, and the tsan CI job runs this
// lifecycle under -fsanitize=thread.

#include "serve/Server.h"

#include "serve/Protocol.h"
#include "support/Telemetry.h"
#include "support/Timer.h"
#include "support/TraceJson.h"
#include "tool/SpecParser.h"

// craft-lint: allow(det-time) — backoff sleep duration only; wall-clock
// values never reach seeds, iteration order, or result payloads.
#include <chrono>
#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <poll.h>
#include <unistd.h>

using namespace craft;
using namespace craft::serve;
using json::Value;

namespace {

/// Write end of the live Server's signal pipe. The SIGTERM handler may
/// only touch async-signal-safe state, so it reads this atomic and
/// writes one byte; everything else happens on the watcher thread.
std::atomic<int> GSignalPipeW{-1};

extern "C" void craftOnSigterm(int) {
  int Fd = GSignalPipeW.load(std::memory_order_relaxed);
  if (Fd >= 0) {
    ssize_t Ignored = ::write(Fd, "T", 1);
    (void)Ignored;
  }
}

} // namespace

Server::Server(const ServerOptions &Opts) : Opts(Opts), Sched(Opts.Sched) {}

Server::~Server() {
  shutdown();
  if (Accepter.joinable())
    Accepter.join();
  // Connection threads and the signal watcher can both spawn the drain
  // finisher, so they are joined before it.
  std::list<Conn> Threads;
  {
    std::lock_guard<std::mutex> Lock(ConnMutex);
    Threads.splice(Threads.end(), Conns);
  }
  for (Conn &C : Threads)
    if (C.T.joinable())
      C.T.join();
  if (SigWatcher.joinable())
    SigWatcher.join();
  if (DrainFinisher.joinable())
    DrainFinisher.join();
  if (SignalInstalled) {
    GSignalPipeW.store(-1);
    std::signal(SIGTERM, SIG_DFL);
  }
  for (int &Fd : SigPipe)
    if (Fd >= 0) {
      ::close(Fd);
      Fd = -1;
    }
}

bool Server::start(std::string &Error) {
  if (Opts.Port < 0)
    return true;
  Listener = listenLocalhost(Opts.Port, PortBound, Error);
  if (!Listener.valid())
    return false;
  Accepter = std::thread([this] { acceptLoop(); });
  return true;
}

void Server::shutdown() {
  bool Expected = false;
  if (!Stopping.compare_exchange_strong(Expected, true))
    return;
  // Unblock the accept loop, then every connection reader.
  Listener.shutdownBoth();
  {
    std::lock_guard<std::mutex> Lock(ConnMutex);
    for (SocketFd *Conn : OpenConns)
      Conn->shutdownBoth();
  }
  // Drain queued verification work; futures held by connection threads
  // resolve here, letting those threads run to completion.
  Sched.stop();
  // Every worker's spans are final now: dump the trace ring (no-op
  // unless tracing is armed). Stopping's compare-exchange above makes
  // this once-per-process even when shutdown races itself.
  {
    std::string TraceError;
    if (!tracejson::maybeWriteTrace(Opts.TraceOutPath, TraceError))
      std::fprintf(stderr, "craft-serve: %s\n", TraceError.c_str());
  }
  // Wake the drain finisher (waits on DrainCv) and the signal watcher
  // (blocks reading the pipe). The empty critical section orders the
  // notify after any in-progress predicate evaluation.
  { std::lock_guard<std::mutex> Lock(DrainMutex); }
  DrainCv.notify_all();
  if (SigPipe[1] >= 0) {
    ssize_t Ignored = ::write(SigPipe[1], "Q", 1);
    (void)Ignored;
  }
  ShutdownCv.notify_all();
}

void Server::beginDrain() {
  bool Expected = false;
  if (!DrainStarted.compare_exchange_strong(Expected, true))
    return;
  if (Stopping.load())
    return; // Already past graceful: shutdown won the race.
  // From here on new verify submissions answer "draining"; requests
  // already admitted keep running.
  Sched.beginDrain();
  // Stop accepting. Existing connections stay open so in-flight
  // responses (and "draining" rejections) can still go out.
  Listener.shutdownBoth();
  // The caller is typically a connection thread that still has to write
  // its own drain acknowledgement, so the wait happens on a helper.
  DrainFinisher = std::thread([this] {
    std::unique_lock<std::mutex> Lock(DrainMutex);
    DrainCv.wait(Lock, [this] {
      return ActiveRequests.load() == 0 || Stopping.load();
    });
    Lock.unlock();
    shutdown();
  });
}

bool Server::installSignalDrain() {
  if (SignalInstalled)
    return true;
  if (::pipe(SigPipe) != 0)
    return false;
  GSignalPipeW.store(SigPipe[1]);
  std::signal(SIGTERM, craftOnSigterm);
  SignalInstalled = true;
  SigWatcher = std::thread([this] {
    for (;;) {
      char C = 0;
      ssize_t N = ::read(SigPipe[0], &C, 1);
      if (N < 0 && errno == EINTR)
        continue;
      if (N <= 0 || C == 'Q')
        return; // shutdown() says stop (or the pipe died).
      if (C == 'T')
        beginDrain();
    }
  });
  return true;
}

void Server::waitForShutdown() {
  std::unique_lock<std::mutex> Lock(ShutdownMutex);
  ShutdownCv.wait(Lock, [this] { return Stopping.load(); });
}

void Server::reapConnections() {
  std::list<Conn> Finished;
  {
    std::lock_guard<std::mutex> Lock(ConnMutex);
    for (auto It = Conns.begin(); It != Conns.end();) {
      auto Next = std::next(It);
      if (It->Done.load())
        Finished.splice(Finished.end(), Conns, It);
      It = Next;
    }
  }
  for (Conn &C : Finished)
    if (C.T.joinable())
      C.T.join();
}

void Server::acceptLoop() {
  for (;;) {
    reapConnections();
    SocketFd Sock = acceptConnection(Listener);
    if (!Sock.valid()) {
      if (Stopping.load() || DrainStarted.load())
        return;
      // Back off before retrying: persistent failures (EMFILE under fd
      // exhaustion) would otherwise busy-spin this thread at 100% CPU.
      // craft-lint: allow(det-time) — retry backoff, not a timing source.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    size_t Live;
    {
      std::lock_guard<std::mutex> Lock(ConnMutex);
      if (Stopping.load() || DrainStarted.load())
        return; // Raced shutdown/drain: drop the connection.
      Live = Conns.size();
    }
    if (Live >= Opts.MaxConnections) {
      // Answer before closing so the client sees a classified rejection
      // instead of a silent reset.
      LineChannel Tmp(std::move(Sock));
      Tmp.writeLine(makeErrorResponse(0,
                                      "connection limit reached (" +
                                          std::to_string(
                                              Opts.MaxConnections) +
                                          ")",
                                      {}, "overloaded")
                        .serialize());
      continue;
    }
    std::lock_guard<std::mutex> Lock(ConnMutex);
    if (Stopping.load())
      return;
    Conns.emplace_back();
    Conn &C = Conns.back();
    // &C stays valid: list nodes never move, and this node is only
    // erased after Done is set (reap) or in ~Server (join first).
    C.T = std::thread(
        [this, &C](SocketFd S) {
          connectionLoop(std::move(S));
          C.Done.store(true);
        },
        std::move(Sock));
  }
}

void Server::connectionLoop(SocketFd Socket) {
  LineChannel Chan(std::move(Socket));
  {
    std::lock_guard<std::mutex> Lock(ConnMutex);
    OpenConns.push_back(&Chan.socket());
  }
  std::string Line;
  while (!Stopping.load() && Chan.readLine(Line)) {
    if (Line.empty())
      continue; // Tolerate blank keep-alive lines.
    ActiveRequests.fetch_add(1);
    LineOutcome Act;
    std::string Response = handleLine(Line, Act);
    bool Wrote = Chan.writeLine(Response);
    {
      // Decrement under the mutex: otherwise the drain finisher could
      // evaluate its predicate between the decrement and the notify and
      // sleep through the final wakeup.
      std::lock_guard<std::mutex> Lock(DrainMutex);
      ActiveRequests.fetch_sub(1);
    }
    DrainCv.notify_all();
    if (Act.DrainRequested)
      beginDrain();
    if (Act.ShutdownRequested) {
      shutdown();
      break;
    }
    if (!Wrote)
      break;
  }
  std::lock_guard<std::mutex> Lock(ConnMutex);
  OpenConns.remove(&Chan.socket());
}

void Server::runStdio(std::FILE *In, std::FILE *Out) {
  // Raw-fd reads with poll, not stdio getline: a blocking getline would
  // ignore a concurrent shutdown/drain (TCP request, SIGTERM) until the
  // next input line arrived — possibly forever. The 100 ms poll tick
  // bounds how long a quiescent stdio transport outlives shutdown().
  const int Fd = ::fileno(In);
  std::string Pending;
  std::string Line;
  bool Eof = false;
  for (;;) {
    size_t Nl;
    while ((Nl = Pending.find('\n')) != std::string::npos) {
      Line.assign(Pending, 0, Nl);
      Pending.erase(0, Nl + 1);
      while (!Line.empty() &&
             (Line.back() == '\n' || Line.back() == '\r'))
        Line.pop_back();
      if (Line.empty())
        continue;
      LineOutcome Act;
      std::string Response = handleLine(Line, Act);
      std::fprintf(Out, "%s\n", Response.c_str());
      std::fflush(Out);
      if (Act.DrainRequested)
        beginDrain();
      if (Act.ShutdownRequested) {
        shutdown();
        return;
      }
      if (Stopping.load())
        return;
    }
    if (Eof || Stopping.load())
      return;
    struct pollfd Pfd;
    Pfd.fd = Fd;
    Pfd.events = POLLIN;
    Pfd.revents = 0;
    int Ready = ::poll(&Pfd, 1, /*timeout_ms=*/100);
    if (Ready < 0) {
      if (errno == EINTR)
        continue;
      return;
    }
    if (Ready == 0)
      continue; // Tick: recheck Stopping.
    char Chunk[4096];
    ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0) {
      Eof = true;
      // A final unterminated line still gets served (getline parity).
      if (!Pending.empty() && Pending.back() != '\n')
        Pending += '\n';
      continue;
    }
    Pending.append(Chunk, static_cast<size_t>(N));
  }
}

std::string Server::handleLine(const std::string &Line,
                               bool &ShutdownRequested) {
  LineOutcome Out;
  std::string Response = handleLine(Line, Out);
  ShutdownRequested = Out.ShutdownRequested;
  if (Out.DrainRequested)
    beginDrain(); // This caller cannot see the flag; act directly.
  return Response;
}

std::string Server::handleLine(const std::string &Line, LineOutcome &Act) {
  Act = LineOutcome();
  Requests.fetch_add(1);
  std::string Error;
  std::optional<Request> Req = decodeRequest(Line, Error);
  if (!Req) {
    // Echo the client's id when the line was well-formed JSON carrying
    // one, even though the request itself did not decode — a pipelining
    // client can then correlate the failure instead of seeing id 0.
    int64_t Id = 0;
    std::string ParseError;
    std::optional<Value> Doc = json::parse(Line, ParseError);
    if (Doc && Doc->isObject()) {
      const Value *IdV = Doc->find("id");
      if (IdV && IdV->isNumber()) {
        double D = IdV->asNumber();
        if (D >= -9.0e18 && D <= 9.0e18)
          Id = static_cast<int64_t>(D);
      }
    }
    return makeErrorResponse(Id, Error).serialize();
  }

  if (Req->Method == "ping") {
    Value Doc = Value::object();
    Doc.set("id", Value::number(static_cast<double>(Req->Id)));
    Doc.set("ok", Value::boolean(true));
    Doc.set("pong", Value::boolean(true));
    return Doc.serialize();
  }

  if (Req->Method == "shutdown") {
    Act.ShutdownRequested = true;
    Value Doc = Value::object();
    Doc.set("id", Value::number(static_cast<double>(Req->Id)));
    Doc.set("ok", Value::boolean(true));
    Doc.set("shutting_down", Value::boolean(true));
    return Doc.serialize();
  }

  if (Req->Method == "drain") {
    Act.DrainRequested = true;
    Value Doc = Value::object();
    Doc.set("id", Value::number(static_cast<double>(Req->Id)));
    Doc.set("ok", Value::boolean(true));
    Doc.set("draining", Value::boolean(true));
    return Doc.serialize();
  }

  if (Req->Method == "stats") {
    Scheduler::Stats S = Sched.stats();
    ResultCache::Stats C = Sched.cacheStats();
    Value Doc = Value::object();
    Doc.set("id", Value::number(static_cast<double>(Req->Id)));
    Doc.set("ok", Value::boolean(true));
    Doc.set("requests", Value::number(static_cast<double>(Requests.load())));
    Doc.set("draining", Value::boolean(DrainStarted.load()));
    Value Sch = Value::object();
    Sch.set("submitted", Value::number(static_cast<double>(S.Submitted)));
    Sch.set("cache_hits", Value::number(static_cast<double>(S.CacheHits)));
    Sch.set("coalesced", Value::number(static_cast<double>(S.Coalesced)));
    Sch.set("executed", Value::number(static_cast<double>(S.Executed)));
    Sch.set("batches", Value::number(static_cast<double>(S.Batches)));
    Sch.set("max_batch", Value::number(static_cast<double>(S.MaxBatchSeen)));
    Sch.set("shed", Value::number(static_cast<double>(S.Shed)));
    Sch.set("deadline_expired",
            Value::number(static_cast<double>(S.DeadlineExpired)));
    Sch.set("queue_depth",
            Value::number(static_cast<double>(Sched.queueDepth())));
    Doc.set("scheduler", std::move(Sch));
    Value Ca = Value::object();
    Ca.set("hits", Value::number(static_cast<double>(C.Hits)));
    Ca.set("misses", Value::number(static_cast<double>(C.Misses)));
    Ca.set("insertions", Value::number(static_cast<double>(C.Insertions)));
    Ca.set("evictions", Value::number(static_cast<double>(C.Evictions)));
    Ca.set("entries", Value::number(static_cast<double>(C.Entries)));
    Doc.set("cache", std::move(Ca));
    Value Mo = Value::object();
    Mo.set("known", Value::number(
                        static_cast<double>(Sched.registry().size())));
    Mo.set("loaded", Value::number(static_cast<double>(
                         Sched.registry().loadedCount())));
    Doc.set("models", std::move(Mo));
    return Doc.serialize();
  }

  if (Req->Method == "metrics") {
    // Full registry readout: every counter, gauge, and histogram in the
    // process, sorted by name (snapshotMetrics() orders them), so the
    // envelope is deterministic for a fixed traffic history.
    telemetry::MetricsSnapshot Snap = telemetry::snapshotMetrics();
    Value Doc = Value::object();
    Doc.set("id", Value::number(static_cast<double>(Req->Id)));
    Doc.set("ok", Value::boolean(true));
    Value Counters = Value::object();
    for (const auto &[Name, Total] : Snap.Counters)
      Counters.set(Name, Value::number(static_cast<double>(Total)));
    Doc.set("counters", std::move(Counters));
    Value Gauges = Value::object();
    for (const auto &[Name, V] : Snap.Gauges)
      Gauges.set(Name, Value::number(static_cast<double>(V)));
    Doc.set("gauges", std::move(Gauges));
    Value Hists = Value::object();
    for (const auto &[Name, H] : Snap.Histograms) {
      Value HV = Value::object();
      HV.set("count", Value::number(static_cast<double>(H.Count)));
      HV.set("sum", Value::number(static_cast<double>(H.Sum)));
      HV.set("mean", Value::number(H.mean()));
      HV.set("p50", Value::number(static_cast<double>(H.p50())));
      HV.set("p95", Value::number(static_cast<double>(H.p95())));
      HV.set("p99", Value::number(static_cast<double>(H.p99())));
      Hists.set(Name, std::move(HV));
    }
    Doc.set("histograms", std::move(Hists));
    return Doc.serialize();
  }

  if (Req->Method == "info") {
    ModelRegistry::Entry E = Sched.registry().get(Req->Model);
    if (!E.Model)
      return makeErrorResponse(Req->Id, E.Error).serialize();
    char HashHex[24];
    std::snprintf(HashHex, sizeof(HashHex), "%016llx",
                  static_cast<unsigned long long>(E.Hash));
    Value Doc = Value::object();
    Doc.set("id", Value::number(static_cast<double>(Req->Id)));
    Doc.set("ok", Value::boolean(true));
    Doc.set("model", Value::string(Req->Model));
    Doc.set("hash", Value::string(HashHex));
    Doc.set("input_dim",
            Value::number(static_cast<double>(E.Model->inputDim())));
    Doc.set("latent_dim",
            Value::number(static_cast<double>(E.Model->latentDim())));
    Doc.set("classes",
            Value::number(static_cast<double>(E.Model->outputDim())));
    Doc.set("activation",
            Value::string(activationName(E.Model->activation())));
    Doc.set("monotonicity", Value::number(E.Model->monotonicity()));
    return Doc.serialize();
  }

  // verify.
  WallTimer Clock;
  SpecParseResult Parsed = parseSpec(Req->SpecText, "<request>");
  if (!Parsed.ok()) {
    std::vector<std::string> Diags;
    for (const SpecDiagnostic &D : Parsed.Diagnostics)
      Diags.push_back(D.render("<request>"));
    return makeErrorResponse(Req->Id, "spec parse failed", Diags)
        .serialize();
  }
  // Submit every query before waiting on any: queries of one request are
  // admitted together and batch with whatever else is in flight.
  std::vector<std::future<ServeResult>> Futures;
  Futures.reserve(Parsed.Specs.size());
  for (const VerificationSpec &Spec : Parsed.Specs)
    Futures.push_back(Sched.submit(Spec, Req->UseCache, Req->DeadlineMs));
  std::vector<WireResult> Results;
  Results.reserve(Futures.size());
  bool AnyOverloaded = false;
  bool AnyDraining = false;
  for (std::future<ServeResult> &F : Futures) {
    ServeResult R = F.get();
    AnyOverloaded |= R.Overloaded;
    AnyDraining |= R.Draining;
    WireResult W;
    W.Outcome = std::move(R.Outcome);
    W.Cached = R.Cached;
    Results.push_back(std::move(W));
  }
  // Every future is consumed before answering: a partial request must
  // not leave orphaned futures behind. Shed/drain outrank any partial
  // results — the client retries the whole request.
  if (AnyOverloaded)
    return makeErrorResponse(Req->Id, "admission queue is full", {},
                             "overloaded")
        .serialize();
  if (AnyDraining)
    return makeErrorResponse(Req->Id, "server is draining", {}, "draining")
        .serialize();
  return makeVerifyResponse(Req->Id, Results, Clock.milliseconds())
      .serialize();
}
