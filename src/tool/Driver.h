//===- tool/Driver.h - Spec execution ---------------------------*- C++ -*-===//
//
// Part of the Craft reproduction (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes parsed verification specs against the selected engine (Craft,
/// Box, unrolled CROWN, or the Lipschitz certifier) and optionally emits a
/// proof witness. Pure library layer — the `craft` CLI wraps it with
/// argument handling and printing.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFT_TOOL_DRIVER_H
#define CRAFT_TOOL_DRIVER_H

#include "core/DomainSplitting.h"
#include "support/Deadline.h"
#include "tool/SpecParser.h"

#include <cstdint>
#include <string>
#include <vector>

namespace craft {

/// Where one query's wall time went, in milliseconds. Purely
/// observational — filled from support/Telemetry phase accumulators when
/// timing is enabled (CRAFT_TELEMETRY != 0) and left zero otherwise, and
/// never read back by any computation, so verdict fields are
/// byte-identical either way (pinned by tests/test_telemetry.cpp). The
/// serve layer adds its queue/cache/model-load slices before a result
/// crosses the wire as the optional "timings" object; `craft verify
/// --timings` prints the engine-side slices.
struct PhaseBreakdown {
  /// False = timing was disabled (or the outcome predates execution,
  /// e.g. a load failure); every field below is then zero.
  bool Populated = false;
  /// Serve only: admission-queue wait before dispatch picked the job up.
  double QueueWaitMs = 0.0;
  /// Serve only: result-cache key canonicalization + probe.
  double CacheProbeMs = 0.0;
  /// Serve only: model registry fetch (load + warm on a cold hit).
  double ModelLoadMs = 0.0;
  /// Engine run, inclusive of the consolidation slice below.
  double SolverMs = 0.0;
  /// consolidateProper order-reduction inside the engine run (the slice
  /// the paper's Table 4 attributes separately). Accumulated on the
  /// query's own thread: split-mode wave workers are not folded in.
  double ConsolidationMs = 0.0;
  /// Split-refinement wave loop (split-depth > 0 runs).
  double SplitMs = 0.0;
  /// Opt-in PGD refutation pass.
  double PgdMs = 0.0;
  /// Certificate construction + save.
  double CertificateMs = 0.0;
  /// Per-rung engine time of a cascade walk (slices of SolverMs, one per
  /// domain; all zero when the cascade is off or timing is disabled).
  double RungBoxMs = 0.0;
  double RungZonoMs = 0.0;
  double RungChzonoMs = 0.0;
  /// Solver iterations to convergence (Craft/Box: fixpoint iterations;
  /// split runs: verifier calls across all waves). Travels with the
  /// breakdown, so it is zero when unpopulated; the engines' own
  /// iteration histograms count regardless.
  uint64_t SolverIterations = 0;
};

/// Result of executing one spec.
struct RunOutcome {
  bool ModelLoaded = false;
  /// The spec cannot be run against this model (input-dimension mismatch,
  /// target class out of range, engine/region mismatch): the query never
  /// executed, so the verdict fields are meaningless. The CLI maps this —
  /// like a load failure — to exit 2, not to "undecided".
  bool Error = false;
  /// The query's time budget expired before the engine reached a verdict:
  /// neither certified nor refuted, but unlike a plain "undecided" the
  /// engine was cut short. Timing-dependent, so the serve layer never
  /// caches these outcomes. The CLI maps this to exit 4.
  bool DeadlineExceeded = false;
  bool Certified = false;
  /// Craft only: an abstract post-fixpoint was found.
  bool Containment = false;
  /// A concrete counterexample disproves the property (split refinement or
  /// the opt-in PGD refutation pass).
  bool Refuted = false;
  /// The witness point when Refuted (empty only for legacy producers).
  Vector Counterexample;
  /// Best margin lower bound the engine reports (engine-specific scale).
  double MarginLower = -1e300;
  double TimeSeconds = 0.0;
  /// Whether a certificate was requested, built, and written.
  bool CertificateWritten = false;
  /// RNG seed the PGD refutation pass ran with (0 = pass did not run).
  uint64_t AttackSeed = 0;
  /// Cascade runs only: \ref verifierDomainName of the rung that settled
  /// the verdict ("split" when the split engine did); empty when the
  /// cascade was off or no rung certified.
  std::string CascadeRung;
  /// Cascade runs only: times the query escalated to a more expensive
  /// rung (the last escalation being to the split engine when engaged).
  int CascadeEscalations = 0;
  /// Human-readable failure/summary detail.
  std::string Detail;
  /// Wall-time attribution (see PhaseBreakdown); zero when timing is off.
  PhaseBreakdown Phases;
};

/// Runs \p Spec. Never exits; all failures are reported in the outcome.
RunOutcome runSpec(const VerificationSpec &Spec);

// Forward-declared: the model type lives in nn/MonDeq.h.
class MonDeq;

/// Runs \p Spec against an already-loaded model (no file IO; ModelPath is
/// ignored). The model is strictly read-only here, so several workers may
/// share one instance — warm its lazy alpha-bound cache
/// (`Model.fbAlphaBound()`) before fanning out.
RunOutcome runSpecLoaded(const VerificationSpec &Spec, const MonDeq &Model);

/// Batch execution over preloaded models: Models[I] is the (shared,
/// read-only, warmed) model for Specs[I], or null when its load failed —
/// those slots report a load failure outcome. Unlike runSpecBatch, specs
/// run exactly as given: no per-index attack-seed derivation, so outcomes
/// depend only on each spec's own content, never on its position. This is
/// the serve scheduler's dispatch path, where batches are formed by
/// admission timing and positions are not reproducible.
///
/// When \p FuseBatchGemms is set (and the batch fans out across workers
/// with at least two Craft/Box queries), the workers enroll in a shared
/// GemmWaveGate: their layer gemms rendezvous and execute as fused waves
/// through the batched kernel tier, packing each shared model matrix once
/// per wave instead of once per query. Outcomes are byte-identical either
/// way (see linalg/KernelsBatched.h); CRAFT_BATCH_FUSE=0 is a runtime
/// kill switch.
std::vector<RunOutcome>
runSpecBatchLoaded(const std::vector<VerificationSpec> &Specs,
                   const std::vector<const MonDeq *> &Models, int Jobs,
                   bool FuseBatchGemms = true);

/// As above, with a per-spec RunControl: Controls[I] (when present) is
/// polled by spec I's engine at iteration/wave boundaries, and a spec cut
/// short without a verdict reports DeadlineExceeded. An empty vector (or
/// default-constructed entries) reproduces the overload above exactly.
std::vector<RunOutcome>
runSpecBatchLoaded(const std::vector<VerificationSpec> &Specs,
                   const std::vector<const MonDeq *> &Models, int Jobs,
                   bool FuseBatchGemms,
                   const std::vector<RunControl> &Controls);

/// Batch execution knobs for runSpecBatch.
struct BatchOptions {
  /// Worker threads (1 = inline on the caller, <= 0 = all hardware
  /// threads). Outcomes are independent of this value.
  int Jobs = 1;
  /// Base of the per-task seed stream: a task whose spec leaves AttackSeed
  /// at 0 runs with taskSeed(BaseSeed, task index), so seeds depend only on
  /// the task's position in the batch, never on scheduling.
  uint64_t BaseSeed = 20230617; // PLDI 2023 vintage.
  /// Wall-clock budget shared by the whole batch (< 0 = none). The clock
  /// starts when runSpecBatch is entered; specs still unresolved when it
  /// expires report DeadlineExceeded.
  double DeadlineMs = -1.0;
};

/// Runs every spec of a batch across a worker pool and returns outcomes in
/// input order. Apart from RunOutcome::TimeSeconds (wall time), results are
/// byte-identical for every Jobs value. When the batch itself fans out,
/// per-spec `split-jobs` is clamped to 1 (pool fan-outs compose
/// multiplicatively, and split outcomes do not depend on the value).
std::vector<RunOutcome> runSpecBatch(const std::vector<VerificationSpec> &Specs,
                                     const BatchOptions &Opts = {});

/// Result of one `craft split` global-certification run.
struct SplitRunOutcome {
  bool ModelLoaded = false;
  bool Error = false; ///< Spec/model mismatch (see RunOutcome::Error).
  SplitResult Split;
  double TimeSeconds = 0.0;
  std::string Detail;
};

/// `craft split`: global certification of \p Spec's input box by domain
/// splitting — every region is certified against the class its own center
/// predicts (the spec's target class is ignored), and the certified-volume
/// fraction is the headline result. \p Jobs and \p MaxDepth are the
/// resolved knobs (callers default them from the spec's `split-jobs` /
/// `split-depth`); Jobs <= 0 uses all hardware threads.
SplitRunOutcome runSplitCertification(const VerificationSpec &Spec, int Jobs,
                                      int MaxDepth);

/// `craft info`: prints model metadata (dims, activation, m, FB alpha
/// bound, semantic hash) to stdout. Returns false if loading fails.
bool printModelInfo(const std::string &ModelPath);

/// `craft check`: validates a certificate file against a model file and
/// prints the report. Returns true iff the certificate is accepted.
bool runCheck(const std::string &ModelPath, const std::string &CertPath);

} // namespace craft

#endif // CRAFT_TOOL_DRIVER_H
