//===- bench/bench_table4_ablation.cpp ------------------------------------===//
//
// Reproduces Table 4: ablation study of Craft's components on FCx87
// (eps = 0.05). Rows mirror the paper:
//   Reference, No Zono component (Box domain), No Box component (classic
//   Zonotope ReLU), Only PR (phase 2 = PR), Only FB (both phases FB),
//   No / Reduced lambda optimization, Same-iteration containment,
//   No Expansion.
//
// Expected shape: Box converges fast but certifies nothing; removing the
// Box component keeps precision but narrows the viable alpha range (see
// Fig. 12 harness); PR-then-FB (reference) certifies the most; same-iter
// containment certifies nothing; no expansion loses containment on many
// samples.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace craft;

int main() {
  std::printf("== Table 4: ablation study on FCx87 ==\n\n");

  const ModelSpec *Spec = findModelSpec("mnist_fc87");
  MonDeq Model = getOrTrainModel(*Spec);
  size_t Samples = benchSamples(5);
  PgdOptions Attack = pgdOptionsFor(*Spec);

  struct Ablation {
    const char *Name;
    CraftConfig Config;
  };
  CraftConfig Ref = craftConfigFor(*Spec);

  std::vector<Ablation> Rows;
  Rows.push_back({"Reference", Ref});
  {
    CraftConfig C = Ref;
    C.Domain = VerifierDomain::Box;
    Rows.push_back({"No Zono component", C});
  }
  {
    CraftConfig C = Ref;
    C.Domain = VerifierDomain::Zono;
    Rows.push_back({"No Box component", C});
  }
  {
    CraftConfig C = Ref;
    C.Phase2Method = Splitting::PeacemanRachford;
    Rows.push_back({"Only PR", C});
  }
  {
    CraftConfig C = Ref;
    // Paper: FB-only containment needs an alpha outside the concrete
    // convergence range (no formal guarantee, cf. Table 4 footnote).
    C.Phase1Method = Splitting::ForwardBackward;
    C.Alpha1 = 0.03;
    Rows.push_back({"Only FB (+)", C});
  }
  {
    CraftConfig C = Ref;
    C.LambdaOptLevel = 0;
    Rows.push_back({"No lambda opt.", C});
  }
  {
    CraftConfig C = Ref;
    C.LambdaOptLevel = 1;
    Rows.push_back({"Reduced lambda opt.", C});
  }
  {
    CraftConfig C = Ref;
    C.SameIterationContainment = true;
    Rows.push_back({"Same iter. containment", C});
  }
  {
    CraftConfig C = Ref;
    C.Expansion = ExpansionSchedule::None;
    Rows.push_back({"No Expansion", C});
  }

  TablePrinter Table({"Ablation", "#Cont", "#Cert", "Time[s]"});
  for (const Ablation &Row : Rows) {
    CertRow Res = evaluateCertification(*Spec, Model, Row.Config, Attack,
                                        Spec->Epsilon, Samples);
    Table.addRow({Row.Name, fmt(static_cast<long>(Res.Contained)),
                  fmt(static_cast<long>(Res.Certified)),
                  fmt(Res.MeanTimeSeconds, 2)});
  }
  std::printf("(+) no formal guarantee: conditions of Thm 3.1 unmet "
              "(alpha outside concrete convergence range)\n\n");
  Table.print();
  return 0;
}
