//===- tests/test_linalg_kernels.cpp - Kernel/view/workspace tests --------===//
//
// Coverage for the allocation-free linalg kernel layer: destination-passing
// kernels against reference loops, zero-copy view slicing against
// whole-matrix results, zero-dimension edge cases, aliasing contracts
// (asserted in debug builds), and workspace reuse across repeated calls.
//
//===----------------------------------------------------------------------===//

#include "linalg/KernelBackends.h"
#include "linalg/Kernels.h"
#include "linalg/Views.h"
#include "linalg/Workspace.h"

#include "domains/CHZonotope.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

using namespace craft;

namespace {

Matrix randomMatrix(Rng &R, size_t Rows, size_t Cols, double Scale = 1.0) {
  Matrix M(Rows, Cols);
  for (size_t I = 0; I < Rows; ++I)
    for (size_t J = 0; J < Cols; ++J)
      M(I, J) = R.gaussian(0.0, Scale);
  return M;
}

Vector randomVector(Rng &R, size_t N, double Scale = 1.0) {
  Vector V(N);
  for (size_t I = 0; I < N; ++I)
    V[I] = R.gaussian(0.0, Scale);
  return V;
}

/// Reference j-i-k triple loop, deliberately different from the kernel's
/// blocked i-k-j order.
Matrix refMatmul(const Matrix &A, const Matrix &B) {
  Matrix Out(A.rows(), B.cols());
  for (size_t J = 0; J < B.cols(); ++J)
    for (size_t I = 0; I < A.rows(); ++I) {
      double Sum = 0.0;
      for (size_t K = 0; K < A.cols(); ++K)
        Sum += A(I, K) * B(K, J);
      Out(I, J) = Sum;
    }
  return Out;
}

//===----------------------------------------------------------------------===//
// gemm
//===----------------------------------------------------------------------===//

TEST(Gemm, MatchesReferenceProduct) {
  Rng R(7);
  // Odd extents on purpose: 33 rows exercise the microtile row remainder
  // and 41 columns the lane remainder of the packed panel.
  Matrix A = randomMatrix(R, 33, 150);
  Matrix B = randomMatrix(R, 150, 41);
  Matrix Out(33, 41);
  kernels::gemm(Out, A, B);
  EXPECT_LT((Out - refMatmul(A, B)).maxAbs(), 1e-12);
}

TEST(Gemm, AlphaBetaSemantics) {
  Rng R(8);
  Matrix A = randomMatrix(R, 9, 11);
  Matrix B = randomMatrix(R, 11, 6);
  Matrix Prior = randomMatrix(R, 9, 6);
  Matrix Out = Prior;
  kernels::gemm(Out, A, B, 2.0, 0.5);
  Matrix Expect = 2.0 * (A * B) + 0.5 * Prior;
  EXPECT_LT((Out - Expect).maxAbs(), 1e-12);
}

TEST(Gemm, BetaZeroIgnoresGarbageOutput) {
  Rng R(9);
  Matrix A = randomMatrix(R, 5, 5);
  Matrix B = randomMatrix(R, 5, 5);
  Matrix Out(5, 5, 1e300); // Poisoned: beta = 0 must overwrite, not read.
  kernels::gemm(Out, A, B);
  EXPECT_LT((Out - refMatmul(A, B)).maxAbs(), 1e-12);
}

TEST(Gemm, SparseAwareIsBitwiseIdenticalToDense) {
  Rng R(10);
  Matrix A = randomMatrix(R, 20, 30);
  // Realistic structural sparsity: zero out most entries exactly.
  for (size_t I = 0; I < A.rows(); ++I)
    for (size_t J = 0; J < A.cols(); ++J)
      if ((I + J) % 3 != 0)
        A(I, J) = 0.0;
  Matrix B = randomMatrix(R, 30, 17);
  Matrix Dense(20, 17), Sparse(20, 17);
  kernels::gemm(Dense, A, B);
  kernels::gemmSparseAware(Sparse, A, B);
  for (size_t I = 0; I < Dense.rows(); ++I)
    for (size_t J = 0; J < Dense.cols(); ++J)
      EXPECT_EQ(Dense(I, J), Sparse(I, J));
}

TEST(Gemm, ZeroDimensions) {
  // Inner dimension zero: the product is the zero matrix.
  Matrix A(4, 0), B(0, 3);
  Matrix Out(4, 3, 7.0);
  kernels::gemm(Out, A, B);
  EXPECT_EQ(Out.maxAbs(), 0.0);
  // Zero-row and zero-column outputs must be accepted.
  Matrix Empty(0, 3);
  kernels::gemm(Empty, Matrix(0, 5), Matrix(5, 3));
  Matrix NoCols(3, 0);
  kernels::gemm(NoCols, Matrix(3, 5), Matrix(5, 0));
  SUCCEED();
}

//===----------------------------------------------------------------------===//
// gemv / gemvAbs / axpy / scale
//===----------------------------------------------------------------------===//

TEST(Gemv, MatchesOperatorAndAccumulates) {
  Rng R(11);
  Matrix M = randomMatrix(R, 13, 21);
  Vector V = randomVector(R, 21);
  Vector Out(13);
  kernels::gemv(Out, M, V);
  Vector Expect = M * V;
  for (size_t I = 0; I < Out.size(); ++I)
    EXPECT_DOUBLE_EQ(Out[I], Expect[I]);

  Vector Acc = randomVector(R, 13);
  Vector Expect2 = Acc + 3.0 * (M * V);
  kernels::gemv(Acc, M, V, 3.0, 1.0);
  for (size_t I = 0; I < Acc.size(); ++I)
    EXPECT_NEAR(Acc[I], Expect2[I], 1e-12);
}

TEST(Gemv, EmptyDimensions) {
  Vector Out;
  kernels::gemv(Out, Matrix(), Vector());
  Vector Out2(3, 5.0);
  kernels::gemv(Out2, Matrix(3, 0), Vector());
  for (size_t I = 0; I < 3; ++I)
    EXPECT_EQ(Out2[I], 0.0); // Empty sum, beta = 0: overwritten with 0.
}

TEST(GemvAbs, NeverMaterializesAbsMatrix) {
  Rng R(12);
  Matrix M = randomMatrix(R, 10, 14);
  Vector V = randomVector(R, 14);
  Vector Out(10);
  kernels::gemvAbs(Out, M, V);
  Vector Expect = M.abs() * V;
  for (size_t I = 0; I < Out.size(); ++I)
    EXPECT_EQ(Out[I], Expect[I]); // Bitwise: same reduction order.
}

TEST(AxpyScale, MatchReference) {
  Rng R(13);
  Vector Y = randomVector(R, 17), X = randomVector(R, 17);
  Vector Expect = Y + (-2.5) * X;
  kernels::axpy(Y, -2.5, X);
  for (size_t I = 0; I < Y.size(); ++I)
    EXPECT_EQ(Y[I], Expect[I]);
  Vector Scaled = X;
  kernels::scale(Scaled, 0.25);
  for (size_t I = 0; I < X.size(); ++I)
    EXPECT_EQ(Scaled[I], 0.25 * X[I]);
}

//===----------------------------------------------------------------------===//
// transposeInto / rowAbsSumsInto / copy / fill
//===----------------------------------------------------------------------===//

TEST(TransposeInto, MatchesAllocatingTranspose) {
  Rng R(14);
  Matrix M = randomMatrix(R, 7, 12);
  Matrix Out(12, 7);
  kernels::transposeInto(Out, M);
  EXPECT_EQ((Out - M.transpose()).maxAbs(), 0.0);
}

TEST(RowAbsSums, BetaAccumulates) {
  Rng R(15);
  Matrix M = randomMatrix(R, 6, 9);
  Vector Out(6, 10.0);
  kernels::rowAbsSumsInto(Out, M, 1.0);
  Vector Expect = M.rowAbsSums();
  for (size_t I = 0; I < 6; ++I)
    EXPECT_DOUBLE_EQ(Out[I], Expect[I] + 10.0);
}

//===----------------------------------------------------------------------===//
// Views: zero-copy slicing
//===----------------------------------------------------------------------===//

TEST(Views, BlockSlicingMatchesWholeMatrixResults) {
  Rng R(16);
  Matrix M = randomMatrix(R, 10, 16);
  // colRange view vs the allocating colRange copy.
  ConstMatrixView View = ConstMatrixView(M).colRange(3, 7);
  Matrix Copy = M.colRange(3, 7);
  ASSERT_EQ(View.rows(), Copy.rows());
  ASSERT_EQ(View.cols(), Copy.cols());
  EXPECT_EQ(View.stride(), M.cols()); // Zero-copy: parent stride.
  EXPECT_EQ(View.data(), M.rowData(0) + 3);
  for (size_t I = 0; I < View.rows(); ++I)
    for (size_t J = 0; J < View.cols(); ++J)
      EXPECT_EQ(View(I, J), Copy(I, J));
}

TEST(Views, StridedGemmMatchesWholeMatrixGemm) {
  Rng R(17);
  Matrix A = randomMatrix(R, 6, 20);
  Matrix B = randomMatrix(R, 8, 11);
  // Multiply a column slice of A (strided view) against a block of B.
  ConstMatrixView ASlice = ConstMatrixView(A).colRange(5, 8);
  ConstMatrixView BBlock = ConstMatrixView(B).block(0, 2, 8, 9);
  Matrix Out(6, 9);
  kernels::gemm(Out, ASlice, BBlock);
  Matrix Expect = A.colRange(5, 8) * B.colRange(2, 9);
  EXPECT_EQ((Out - Expect).maxAbs(), 0.0);
}

TEST(Views, StridedDestination) {
  Rng R(18);
  Matrix A = randomMatrix(R, 4, 5);
  Matrix B = randomMatrix(R, 5, 3);
  // Write the product into the middle columns of a wider matrix.
  Matrix Wide(4, 9, -1.0);
  kernels::gemm(MatrixView(Wide).colRange(3, 3), A, B);
  Matrix Expect = A * B;
  for (size_t I = 0; I < 4; ++I) {
    for (size_t J = 0; J < 3; ++J)
      EXPECT_EQ(Wide(I, 3 + J), Expect(I, J));
    EXPECT_EQ(Wide(I, 0), -1.0); // Surroundings untouched.
    EXPECT_EQ(Wide(I, 8), -1.0);
  }
}

TEST(Views, VectorSlice) {
  Vector V{1.0, 2.0, 3.0, 4.0, 5.0};
  ConstVectorView S = ConstVectorView(V).slice(1, 3);
  ASSERT_EQ(S.size(), 3u);
  EXPECT_EQ(S[0], 2.0);
  EXPECT_EQ(S[2], 4.0);
  EXPECT_EQ(S.data(), V.data() + 1);
}

//===----------------------------------------------------------------------===//
// Aliasing contract
//===----------------------------------------------------------------------===//

// gemm/gemv outputs must not overlap their inputs: the kernels read inputs
// while writing the output, so an aliased call would consume partially
// written data. The contract is enforced by assertions, which only fire in
// debug builds (the ASan/UBSan CI job); release builds document it here.
#ifndef NDEBUG
TEST(AliasingDeathTest, GemmOutputOverlappingInputAsserts) {
  Matrix A(4, 4, 1.0);
  EXPECT_DEATH(kernels::gemm(A, A, A), "alias");
}

TEST(AliasingDeathTest, GemvOutputOverlappingInputAsserts) {
  Matrix M(3, 3, 1.0);
  VectorView Row(M.rowData(0), 3);
  EXPECT_DEATH(kernels::gemv(Row, M, Vector(3, 1.0)), "alias");
}
#endif

//===----------------------------------------------------------------------===//
// Workspace
//===----------------------------------------------------------------------===//

TEST(Workspace, ReuseAcrossRepeatedCalls) {
  Workspace &W = Workspace::threadLocal();
  // Warm up, then verify repeated identical scopes reuse identical storage
  // (pointer-stable, no capacity growth).
  double *FirstPtr = nullptr;
  {
    WorkspaceScope WS(W);
    FirstPtr = WS.alloc(256);
  }
  size_t CapAfterWarmup = W.capacity();
  for (int Round = 0; Round < 10; ++Round) {
    WorkspaceScope WS(W);
    MatrixView M = WS.matrix(8, 16);
    VectorView V = WS.vector(128);
    EXPECT_EQ(M.data(), FirstPtr); // Rewound to the same offset.
    kernels::fill(M, 1.0);
    kernels::fill(V, 2.0);
  }
  EXPECT_EQ(W.capacity(), CapAfterWarmup);
}

TEST(Workspace, NestedScopesAreStackDiscipline) {
  Workspace &W = Workspace::threadLocal();
  WorkspaceScope Outer(W);
  VectorView A = Outer.vector(16);
  kernels::fill(A, 42.0);
  {
    WorkspaceScope Inner(W);
    VectorView B = Inner.vector(1 << 20); // Forces fresh-block growth.
    kernels::fill(B, 7.0);
    // Outer buffer must be untouched even though the arena grew.
    for (size_t I = 0; I < A.size(); ++I)
      EXPECT_EQ(A[I], 42.0);
  }
  // After the inner scope dies, the outer scope can keep allocating.
  VectorView C = Outer.vector(16);
  kernels::fill(C, 3.0);
  for (size_t I = 0; I < A.size(); ++I)
    EXPECT_EQ(A[I], 42.0);
}

TEST(Workspace, ZeroInitializedVariants) {
  WorkspaceScope WS;
  // Poison, rewind, and re-request: zeroMatrix must actually clear.
  {
    WorkspaceScope Poison;
    VectorView P = Poison.vector(64);
    kernels::fill(P, 1e300);
  }
  MatrixView M = WS.zeroMatrix(4, 8);
  VectorView V = WS.zeroVector(16);
  for (size_t I = 0; I < 4; ++I)
    for (size_t J = 0; J < 8; ++J)
      EXPECT_EQ(M(I, J), 0.0);
  for (size_t I = 0; I < 16; ++I)
    EXPECT_EQ(V[I], 0.0);
}

TEST(Workspace, ZeroSizedRequests) {
  WorkspaceScope WS;
  EXPECT_EQ(WS.alloc(0), nullptr);
  VectorView V = WS.vector(0);
  EXPECT_TRUE(V.empty());
  MatrixView M = WS.matrix(0, 5);
  EXPECT_TRUE(M.empty());
}

//===----------------------------------------------------------------------===//
// Backend equivalence: scalar vs dispatched SIMD vs ThreadPool-tiled
//===----------------------------------------------------------------------===//

// Every compiled-and-runnable backend table must produce byte-identical
// outputs to the scalar reference table — same per-element reduction
// order, no FMA contraction — on random, strided, unaligned-offset, and
// zero-dimension views. Byte-identical means bit patterns, not ==: these
// helpers memcmp, so a -0.0 vs +0.0 divergence fails too.

void expectBitEqual(ConstMatrixView A, ConstMatrixView B) {
  ASSERT_EQ(A.rows(), B.rows());
  ASSERT_EQ(A.cols(), B.cols());
  if (A.empty())
    return; // memcmp on empty views would pass null pointers (UB).
  for (size_t R = 0; R < A.rows(); ++R)
    EXPECT_EQ(0, std::memcmp(A.row(R), B.row(R), A.cols() * sizeof(double)))
        << "row " << R << " differs";
}

void expectBitEqual(ConstVectorView A, ConstVectorView B) {
  ASSERT_EQ(A.size(), B.size());
  if (A.empty())
    return;
  EXPECT_EQ(0, std::memcmp(A.data(), B.data(), A.size() * sizeof(double)));
}

std::vector<kernels::KernelBackend> availableBackends() {
  std::vector<kernels::KernelBackend> Backends;
  for (auto B : {kernels::KernelBackend::Scalar, kernels::KernelBackend::Avx2,
                 kernels::KernelBackend::Avx512})
    if (kernels::kernelTableFor(B))
      Backends.push_back(B);
  return Backends;
}

class BackendEquivalence
    : public ::testing::TestWithParam<kernels::KernelBackend> {
protected:
  const kernels::KernelTable &Table =
      *kernels::kernelTableFor(GetParam());
  const kernels::KernelTable &Ref =
      *kernels::kernelTableFor(kernels::KernelBackend::Scalar);
};

INSTANTIATE_TEST_SUITE_P(
    Backends, BackendEquivalence, ::testing::ValuesIn(availableBackends()),
    [](const ::testing::TestParamInfo<kernels::KernelBackend> &Info) {
      return kernels::kernelBackendName(Info.param);
    });

TEST_P(BackendEquivalence, GemmBitwiseMatchesScalar) {
  Rng R(101);
  const struct {
    size_t M, K, N;
  } Shapes[] = {{1, 1, 1},   {3, 5, 2},    {7, 13, 5},  {33, 150, 41},
                {64, 64, 64}, {4, 48, 96}, {5, 3, 200}, {87, 87, 174}};
  const struct {
    double Alpha, Beta;
  } Coeffs[] = {{1.0, 0.0}, {2.0, 0.5}, {1.0, 1.0}, {-0.25, 2.0}};
  for (const auto &S : Shapes) {
    Matrix A = randomMatrix(R, S.M, S.K);
    Matrix B = randomMatrix(R, S.K, S.N);
    for (const auto &C : Coeffs) {
      Matrix Prior = randomMatrix(R, S.M, S.N);
      Matrix OutRef = Prior, Out = Prior;
      Ref.Gemm(OutRef, A, B, C.Alpha, C.Beta);
      Table.Gemm(Out, A, B, C.Alpha, C.Beta);
      expectBitEqual(Out, OutRef);
      OutRef = Prior;
      Out = Prior;
      Ref.GemmSparse(OutRef, A, B, C.Alpha, C.Beta);
      Table.GemmSparse(Out, A, B, C.Alpha, C.Beta);
      expectBitEqual(Out, OutRef);
    }
  }
}

TEST_P(BackendEquivalence, GemmStridedUnalignedViews) {
  Rng R(102);
  // Operands and destination carved out of larger parents at column
  // offset 1: every row pointer is 8-byte-aligned but not 16/32/64-byte
  // aligned, and every view is strided.
  Matrix AParent = randomMatrix(R, 30, 60);
  Matrix BParent = randomMatrix(R, 40, 90);
  ConstMatrixView A = ConstMatrixView(AParent).block(1, 1, 23, 37);
  ConstMatrixView B = ConstMatrixView(BParent).block(2, 1, 37, 83);
  Matrix OutRefParent(25, 90, -7.0), OutParent(25, 90, -7.0);
  Ref.Gemm(MatrixView(OutRefParent).block(1, 1, 23, 83), A, B, 1.5, 0.0);
  Table.Gemm(MatrixView(OutParent).block(1, 1, 23, 83), A, B, 1.5, 0.0);
  // Whole-parent comparison: identical results and untouched surroundings.
  expectBitEqual(OutParent, OutRefParent);
}

TEST_P(BackendEquivalence, GemmZeroDimensions) {
  Matrix Out(4, 3, 7.0), OutRef(4, 3, 7.0);
  Table.Gemm(Out, Matrix(4, 0), Matrix(0, 3), 1.0, 0.0);
  Ref.Gemm(OutRef, Matrix(4, 0), Matrix(0, 3), 1.0, 0.0);
  expectBitEqual(Out, OutRef);
  EXPECT_EQ(Out.maxAbs(), 0.0); // K = 0, beta = 0: zeros, not garbage.
  Matrix Empty(0, 3), EmptyRef(0, 3);
  Table.Gemm(Empty, Matrix(0, 5), Matrix(5, 3), 1.0, 0.0);
  Matrix NoCols(3, 0);
  Table.Gemm(NoCols, Matrix(3, 5), Matrix(5, 0), 1.0, 0.0);
  SUCCEED();
}

TEST_P(BackendEquivalence, GemvFamilyBitwiseMatchesScalar) {
  Rng R(103);
  for (size_t Rows : {1u, 2u, 3u, 5u, 8u, 9u, 31u, 87u})
    for (size_t Cols : {1u, 4u, 17u, 64u}) {
      Matrix M = randomMatrix(R, Rows, Cols);
      Vector V = randomVector(R, Cols);
      Vector Prior = randomVector(R, Rows);
      for (double Beta : {0.0, 1.0, -0.5}) {
        Vector OutRef = Prior, Out = Prior;
        Ref.Gemv(OutRef, M, V, 1.25, Beta);
        Table.Gemv(Out, M, V, 1.25, Beta);
        expectBitEqual(Out, OutRef);
        OutRef = Prior;
        Out = Prior;
        Ref.GemvAbs(OutRef, M, V, 1.25, Beta);
        Table.GemvAbs(Out, M, V, 1.25, Beta);
        expectBitEqual(Out, OutRef);
        OutRef = Prior;
        Out = Prior;
        Ref.RowAbsSums(OutRef, M, Beta);
        Table.RowAbsSums(Out, M, Beta);
        expectBitEqual(Out, OutRef);
      }
      // Strided matrix operand (column sub-range of a wider parent).
      if (Cols >= 4) {
        ConstMatrixView MV = ConstMatrixView(M).colRange(1, Cols - 2);
        Vector VS = randomVector(R, Cols - 2);
        Vector OutRef = Prior, Out = Prior;
        Ref.GemvAbs(OutRef, MV, VS, 1.0, 0.0);
        Table.GemvAbs(Out, MV, VS, 1.0, 0.0);
        expectBitEqual(Out, OutRef);
      }
    }
  // Zero-dimension edges.
  Vector Empty, EmptyRef;
  Table.Gemv(Empty, Matrix(), Vector(), 1.0, 0.0);
  Vector Out3(3, 5.0), Out3Ref(3, 5.0);
  Table.Gemv(Out3, Matrix(3, 0), Vector(), 1.0, 0.0);
  Ref.Gemv(Out3Ref, Matrix(3, 0), Vector(), 1.0, 0.0);
  expectBitEqual(Out3, Out3Ref);
}

TEST_P(BackendEquivalence, VectorKernelsBitwiseMatchScalar) {
  Rng R(104);
  for (size_t N : {0u, 1u, 3u, 4u, 7u, 8u, 9u, 64u, 201u}) {
    Vector X = randomVector(R, N);
    Vector YRef = randomVector(R, N);
    Vector Y = YRef;
    Ref.Axpy(YRef, -2.5, X);
    Table.Axpy(Y, -2.5, X);
    expectBitEqual(Y, YRef);

    Vector SRef = X, S = X;
    Ref.Scale(SRef, 0.3);
    Table.Scale(S, 0.3);
    expectBitEqual(S, SRef);

    const double MaxRef = Ref.NormInf(X);
    const double Max = Table.NormInf(X);
    EXPECT_EQ(0, std::memcmp(&Max, &MaxRef, sizeof(double)));
  }
}

// The ThreadPool-tiled paths must be byte-identical to the untiled active
// backend for every tile count — the partition never changes any
// per-element reduction order.
TEST(TiledKernels, GemmTiledBitwiseMatchesUntiled) {
  Rng R(105);
  Matrix A = randomMatrix(R, 33, 70);
  Matrix B = randomMatrix(R, 70, 131);
  Matrix Prior = randomMatrix(R, 33, 131);
  Matrix Untiled = Prior;
  kernels::gemm(Untiled, A, B, 1.5, 0.5);
  for (size_t Tiles : {2u, 3u, 7u, 200u}) { // 200 > cols: empty tails.
    Matrix Out = Prior;
    kernels::detail::gemmTiled(Out, A, B, 1.5, 0.5, Tiles);
    expectBitEqual(Out, Untiled);
  }
}

TEST(TiledKernels, GemvAbsTiledBitwiseMatchesUntiled) {
  Rng R(106);
  Matrix M = randomMatrix(R, 131, 40);
  Vector V = randomVector(R, 40);
  Vector Prior = randomVector(R, 131);
  Vector Untiled = Prior;
  kernels::gemvAbs(Untiled, M, V, 2.0, 1.0);
  for (size_t Tiles : {2u, 5u, 131u, 500u}) {
    Vector Out = Prior;
    kernels::detail::gemvAbsTiled(Out, M, V, 2.0, 1.0, Tiles);
    expectBitEqual(Out, Untiled);
  }
}

TEST(GemmAuto, AllHintsBitwiseMatchExplicitKernels) {
  Rng R(107);
  // Dense left operand.
  Matrix ADense = randomMatrix(R, 20, 30);
  // Structurally sparse left operand (sign-split-like 2/3 zeros).
  Matrix ASparse = ADense;
  for (size_t I = 0; I < ASparse.rows(); ++I)
    for (size_t J = 0; J < ASparse.cols(); ++J)
      if ((I + J) % 3 != 0)
        ASparse(I, J) = 0.0;
  Matrix B = randomMatrix(R, 30, 17);
  for (const Matrix *A : {&ADense, &ASparse}) {
    Matrix Expect(20, 17);
    kernels::gemm(Expect, *A, B);
    for (auto Hint : {kernels::DensityHint::Probe, kernels::DensityHint::Dense,
                      kernels::DensityHint::Sparse}) {
      Matrix Out(20, 17);
      kernels::gemmAuto(Out, *A, B, 1.0, 0.0, Hint);
      expectBitEqual(Out, Expect);
    }
  }
}

TEST(BackendDispatch, ActiveBackendIsRunnableAndPublicApiUsesIt) {
  const kernels::KernelBackend Active = kernels::activeKernelBackend();
  ASSERT_NE(kernels::kernelTableFor(Active), nullptr);
  EXPECT_STRNE(kernels::kernelBackendName(Active), "unknown");
  EXPECT_GE(kernels::kernelThreadCount(), 1u);
  // The public entry points route through the active table.
  Rng R(108);
  Matrix A = randomMatrix(R, 9, 11), B = randomMatrix(R, 11, 13);
  Matrix ViaPublic(9, 13), ViaTable(9, 13);
  kernels::gemm(ViaPublic, A, B);
  kernels::kernelTableFor(Active)->Gemm(ViaTable, A, B, 1.0, 0.0);
  expectBitEqual(ViaPublic, ViaTable);
}

//===----------------------------------------------------------------------===//
// Kernel-layer integration with the domain layer
//===----------------------------------------------------------------------===//

TEST(LinearCombine, NullMatrixIsIdentity) {
  resetErrorTermIds();
  CHZonotope Z = CHZonotope::fromBox(Vector{0.0, -1.0, 2.0},
                                     Vector{1.0, 1.0, 2.5});
  Matrix I = Matrix::identity(3);
  Vector Offset{0.5, -0.5, 0.0};

  std::pair<const Matrix *, const CHZonotope *> Explicit[] = {{&I, &Z}};
  CHZonotope A = CHZonotope::linearCombine(Explicit, Offset);
  std::pair<const Matrix *, const CHZonotope *> Implicit[] = {{nullptr, &Z}};
  CHZonotope B = CHZonotope::linearCombine(Implicit, Offset);

  ASSERT_EQ(A.dim(), B.dim());
  ASSERT_EQ(A.numGenerators(), B.numGenerators());
  for (size_t I2 = 0; I2 < A.dim(); ++I2) {
    EXPECT_EQ(A.center()[I2], B.center()[I2]);
    EXPECT_EQ(A.boxRadius()[I2], B.boxRadius()[I2]);
    for (size_t J = 0; J < A.numGenerators(); ++J)
      EXPECT_EQ(A.generators()(I2, J), B.generators()(I2, J));
  }
  EXPECT_EQ(A.termIds(), B.termIds());
}

TEST(CHZonotope, WithBoxRadiusReplacesBoxOnly) {
  resetErrorTermIds();
  CHZonotope Z = CHZonotope::fromBox(Vector{0.0, 0.0}, Vector{1.0, 2.0});
  Vector Center = Z.center();
  Matrix Gens = Z.generators();
  CHZonotope W = std::move(Z).withBoxRadius(Vector{0.25, 0.75});
  EXPECT_EQ(W.boxRadius()[0], 0.25);
  EXPECT_EQ(W.boxRadius()[1], 0.75);
  for (size_t I = 0; I < 2; ++I) {
    EXPECT_EQ(W.center()[I], Center[I]);
    for (size_t J = 0; J < W.numGenerators(); ++J)
      EXPECT_EQ(W.generators()(I, J), Gens(I, J));
  }
}

} // namespace
