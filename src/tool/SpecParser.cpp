//===- tool/SpecParser.cpp ------------------------------------------------===//

#include "tool/SpecParser.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <sstream>

using namespace craft;

std::string SpecDiagnostic::render(const std::string &FileName) const {
  std::ostringstream Os;
  Os << FileName << ":" << Line << ":" << Column << ": error: " << Message;
  return Os.str();
}

namespace {

/// One whitespace-separated token with its source position.
struct Token {
  std::string Text;
  int Line;
  int Column;
};

/// Splits one line into tokens; '#' starts a comment.
void tokenizeLine(const std::string &LineText, int LineNo,
                  std::vector<Token> &Out) {
  size_t I = 0;
  while (I < LineText.size()) {
    if (LineText[I] == '#')
      return;
    if (std::isspace(static_cast<unsigned char>(LineText[I]))) {
      ++I;
      continue;
    }
    size_t Start = I;
    while (I < LineText.size() && LineText[I] != '#' &&
           !std::isspace(static_cast<unsigned char>(LineText[I])))
      ++I;
    Out.push_back({LineText.substr(Start, I - Start), LineNo,
                   static_cast<int>(Start) + 1});
  }
}

/// Parser state: one statement per line, two-level structure (the `input`
/// block's properties are recognized by keyword, so indentation is
/// cosmetic).
class Parser {
public:
  explicit Parser(const std::string &Source) {
    std::istringstream Is(Source);
    std::string LineText;
    int LineNo = 0;
    while (std::getline(Is, LineText)) {
      ++LineNo;
      std::vector<Token> Tokens;
      tokenizeLine(LineText, LineNo, Tokens);
      if (!Tokens.empty())
        Lines.push_back(std::move(Tokens));
    }
  }

  SpecParseResult run() {
    for (const std::vector<Token> &Line : Lines)
      statement(Line);
    finalize();
    SpecParseResult Result;
    Result.Diagnostics = std::move(Diags);
    if (Result.Diagnostics.empty()) {
      Result.Specs = std::move(Specs);
      Result.Spec = Result.Specs.front();
    }
    return Result;
  }

private:
  void error(const Token &At, const std::string &Message) {
    Diags.push_back({At.Line, At.Column, Message});
  }

  bool number(const Token &T, double &Out) {
    char *End = nullptr;
    Out = std::strtod(T.Text.c_str(), &End);
    if (End == T.Text.c_str() || *End != '\0') {
      error(T, "expected a number, got '" + T.Text + "'");
      return false;
    }
    // Overflowed literals (1e999) parse to inf; accepting them silently
    // produces nonsense regions and NaN margins downstream.
    if (!std::isfinite(Out)) {
      error(T, "number '" + T.Text + "' is out of range");
      return false;
    }
    return true;
  }

  /// Single-occurrence enforcement for file-wide directives: a second
  /// `model`/`output`/... would silently overwrite the first, which
  /// almost always means a concatenated or mangled spec file.
  bool once(const Token &Head) {
    if (!SeenOnce.insert(Head.Text).second) {
      error(Head, "duplicate '" + Head.Text + "' directive");
      return false;
    }
    return true;
  }

  bool integer(const Token &T, int &Out, int Min) {
    double V = 0.0;
    if (!number(T, V))
      return false;
    Out = static_cast<int>(V);
    if (Out != V || Out < Min) {
      error(T, "expected an integer >= " + std::to_string(Min) + ", got '" +
                   T.Text + "'");
      return false;
    }
    return true;
  }

  /// Parses `<v1> <v2> ...` or `fill <value> <count>` into \p Out.
  bool vectorTail(const std::vector<Token> &Line, size_t From, Vector &Out,
                  const char *What) {
    if (From >= Line.size()) {
      error(Line.back(), std::string("expected values after '") + What +
                             "'");
      return false;
    }
    if (Line[From].Text == "fill") {
      if (From + 2 >= Line.size()) {
        error(Line[From], "'fill' needs a value and a count");
        return false;
      }
      double Value = 0.0;
      int Count = 0;
      if (!number(Line[From + 1], Value) ||
          !integer(Line[From + 2], Count, 1))
        return false;
      Out = Vector(static_cast<size_t>(Count), Value);
      return true;
    }
    std::vector<double> Values;
    for (size_t I = From; I < Line.size(); ++I) {
      double V = 0.0;
      if (!number(Line[I], V))
        return false;
      Values.push_back(V);
    }
    Out = Vector(std::move(Values));
    return true;
  }

  /// One `input` block: the region lines that vary per query. Epsilon and
  /// clamp values fall back to the file-wide defaults when unset here.
  struct InputSection {
    std::string Kind; ///< "linf" or "box".
    Vector Center, Lo, Hi;
    double Epsilon = 0.0;
    bool HaveEpsilon = false;
    double ClampLo = 0.0, ClampHi = 1.0;
    bool HaveClamp = false;
  };

  /// Region lines must follow an `input` line; returns the open section.
  InputSection *section(const Token &Head) {
    if (Sections.empty()) {
      error(Head, "'" + Head.Text + "' must follow an 'input' line");
      return nullptr;
    }
    return &Sections.back();
  }

  void statement(const std::vector<Token> &Line) {
    const Token &Head = Line[0];
    const std::string &Kw = Head.Text;
    auto tailToken = [&](size_t I) -> const Token & {
      return I < Line.size() ? Line[I] : Line.back();
    };

    if (Kw == "model") {
      if (Line.size() != 2)
        return error(Head, "'model' takes exactly one path");
      if (!once(Head))
        return;
      Base.ModelPath = Line[1].Text;
    } else if (Kw == "input") {
      if (Line.size() != 2 ||
          (Line[1].Text != "linf" && Line[1].Text != "box"))
        return error(Head, "'input' must be 'input linf' or 'input box'");
      Sections.emplace_back();
      Sections.back().Kind = Line[1].Text;
    } else if (Kw == "center") {
      InputSection *S = section(Head);
      if (!S)
        return;
      if (S->Kind != "linf")
        return error(Head, "'center' applies to 'input linf' blocks");
      if (!S->Center.empty())
        return error(Head, "duplicate 'center' in this input block");
      vectorTail(Line, 1, S->Center, "center");
    } else if (Kw == "lo") {
      InputSection *S = section(Head);
      if (!S)
        return;
      if (S->Kind != "box")
        return error(Head, "'lo' applies to 'input box' blocks");
      if (!S->Lo.empty())
        return error(Head, "duplicate 'lo' in this input block");
      vectorTail(Line, 1, S->Lo, "lo");
    } else if (Kw == "hi") {
      InputSection *S = section(Head);
      if (!S)
        return;
      if (S->Kind != "box")
        return error(Head, "'hi' applies to 'input box' blocks");
      if (!S->Hi.empty())
        return error(Head, "duplicate 'hi' in this input block");
      vectorTail(Line, 1, S->Hi, "hi");
    } else if (Kw == "epsilon") {
      if (Line.size() != 2)
        return error(Head, "'epsilon' takes one number");
      double Eps = 0.0;
      if (!number(Line[1], Eps))
        return;
      if (Eps < 0.0)
        return error(Line[1], "epsilon must be nonnegative");
      if (Sections.empty()) {
        if (HaveDefaultEpsilon)
          return error(Head, "duplicate file-wide 'epsilon' directive");
        DefaultEpsilon = Eps;
        HaveDefaultEpsilon = true;
      } else {
        if (Sections.back().Kind != "linf")
          return error(Head, "'epsilon' applies to 'input linf' blocks");
        if (Sections.back().HaveEpsilon)
          return error(Head, "duplicate 'epsilon' in this input block");
        Sections.back().Epsilon = Eps;
        Sections.back().HaveEpsilon = true;
      }
    } else if (Kw == "clamp") {
      if (Line.size() != 3)
        return error(Head, "'clamp' takes a lower and an upper bound");
      double Lo = 0.0, Hi = 1.0;
      if (number(Line[1], Lo) && number(Line[2], Hi)) {
        if (Lo > Hi)
          return error(Line[1], "clamp range is empty");
        if (Sections.empty()) {
          if (HaveDefaultClamp)
            return error(Head, "duplicate file-wide 'clamp' directive");
          HaveDefaultClamp = true;
          DefaultClampLo = Lo;
          DefaultClampHi = Hi;
        } else {
          if (Sections.back().HaveClamp)
            return error(Head, "duplicate 'clamp' in this input block");
          Sections.back().ClampLo = Lo;
          Sections.back().ClampHi = Hi;
          Sections.back().HaveClamp = true;
        }
      }
    } else if (Kw == "output") {
      if (Line.size() != 3 || Line[1].Text != "robust")
        return error(Head, "'output' must be 'output robust <class>'");
      if (!once(Head))
        return;
      integer(Line[2], Base.TargetClass, 0);
    } else if (Kw == "verifier") {
      if (Line.size() != 2)
        return error(Head, "'verifier' takes one engine name");
      if (!once(Head))
        return;
      const std::string &Name = Line[1].Text;
      if (Name == "craft")
        Base.Verifier = SpecVerifier::Craft;
      else if (Name == "box")
        Base.Verifier = SpecVerifier::Box;
      else if (Name == "crown")
        Base.Verifier = SpecVerifier::Crown;
      else if (Name == "lipschitz")
        Base.Verifier = SpecVerifier::Lipschitz;
      else
        error(Line[1], "unknown verifier '" + Name +
                           "' (craft, box, crown, lipschitz)");
    } else if (Kw == "domain") {
      if (Line.size() != 2)
        return error(Head, "'domain' takes one domain name");
      if (!once(Head))
        return;
      std::optional<VerifierDomain> D = parseVerifierDomain(Line[1].Text);
      if (!D)
        return error(Line[1], "unknown domain '" + Line[1].Text +
                                  "' (box, zono, chzono)");
      Base.Domain = *D;
    } else if (Kw == "cascade") {
      if (Line.size() != 2)
        return error(Head,
                     "'cascade' takes one policy (off, adapt, full, or a "
                     "comma-separated rung list)");
      if (!once(Head))
        return;
      std::optional<CascadePolicy> P = CascadePolicy::parse(Line[1].Text);
      if (!P)
        return error(Line[1],
                     "invalid cascade policy '" + Line[1].Text +
                         "' (off, adapt, full, or distinct rungs from "
                         "box, zono, chzono)");
      Base.Cascade = *P;
    } else if (Kw == "alpha1") {
      // A bare `alpha1` was silently ignored before this arity check.
      if (Line.size() != 2)
        return error(Head, "'alpha1' takes one number");
      if (!once(Head) || !number(Line[1], Base.Alpha1))
        return;
      if (Base.Alpha1 <= 0.0)
        error(Line[1], "alpha1 must be positive");
    } else if (Kw == "alpha2") {
      if (Line.size() == 2) {
        if (once(Head))
          number(Line[1], Base.Alpha2);
      } else
        error(Head, "'alpha2' takes one number");
    } else if (Kw == "max-iterations") {
      if (Line.size() == 2) {
        if (once(Head))
          integer(Line[1], Base.MaxIterations, 1);
      } else
        error(Head, "'max-iterations' takes one integer");
    } else if (Kw == "split-depth") {
      if (Line.size() == 2) {
        if (once(Head))
          integer(Line[1], Base.SplitDepth, 0);
      } else
        error(Head, "'split-depth' takes one integer");
    } else if (Kw == "split-jobs") {
      if (Line.size() == 2) {
        if (once(Head))
          integer(Line[1], Base.SplitJobs, 0);
      } else
        error(Head, "'split-jobs' takes one integer (0 = all threads)");
    } else if (Kw == "lambda-opt") {
      if (Line.size() == 2) {
        if (once(Head) && integer(Line[1], Base.LambdaOptLevel, 0) &&
            Base.LambdaOptLevel > 2)
          error(Line[1], "lambda-opt level is 0, 1 or 2");
      } else
        error(Head, "'lambda-opt' takes one integer");
    } else if (Kw == "certificate") {
      if (Line.size() != 2)
        return error(Head, "'certificate' takes exactly one path");
      if (!once(Head))
        return;
      Base.CertificatePath = Line[1].Text;
    } else if (Kw == "attack") {
      if (Line.size() != 2 ||
          (Line[1].Text != "on" && Line[1].Text != "off"))
        return error(Head, "'attack' must be 'attack on' or 'attack off'");
      if (!once(Head))
        return;
      Base.Attack = Line[1].Text == "on";
    } else if (Kw == "seed") {
      if (Line.size() != 2)
        return error(Head, "'seed' takes one nonnegative integer");
      if (!once(Head))
        return;
      // Full-width parse: AttackSeed is uint64_t and any 64-bit seed is
      // legal, so the int-based integer() helper would be too narrow.
      const std::string &T = Line[1].Text;
      char *End = nullptr;
      errno = 0;
      unsigned long long V = std::strtoull(T.c_str(), &End, 10);
      if (T.empty() || T[0] == '-' || End == T.c_str() || *End != '\0' ||
          errno == ERANGE)
        return error(Line[1], "'seed' takes one nonnegative 64-bit integer");
      Base.AttackSeed = V;
    } else {
      error(Head, "unknown directive '" + Kw + "'");
    }
    (void)tailToken;
  }

  void finalize() {
    Token End{"", Lines.empty() ? 1 : Lines.back()[0].Line, 1};
    if (Base.ModelPath.empty())
      error(End, "missing 'model' directive");
    if (Base.TargetClass < 0)
      error(End, "missing 'output robust <class>' directive");
    // Domain selection and the cascade are craft-engine concepts: the box
    // engine is shorthand for craft-on-Box, and crown/lipschitz have no
    // pluggable domain at all.
    if (SeenOnce.count("domain") && Base.Verifier != SpecVerifier::Craft)
      error(End, "'domain' requires the craft engine (use 'domain box' "
                 "instead of 'verifier box' to run craft on intervals)");
    if (SeenOnce.count("cascade") && Base.Verifier != SpecVerifier::Craft)
      error(End, "'cascade' requires the craft engine");
    if (Sections.empty())
      return error(End, "missing 'input linf' or 'input box' block");

    for (size_t Idx = 0; Idx < Sections.size(); ++Idx) {
      const InputSection &Sec = Sections[Idx];
      VerificationSpec Spec = Base;
      Spec.ClampLo = Sec.HaveClamp ? Sec.ClampLo : DefaultClampLo;
      Spec.ClampHi = Sec.HaveClamp ? Sec.ClampHi : DefaultClampHi;
      if (Sec.Kind == "linf") {
        if (Sec.Center.empty())
          return error(End, "'input linf' needs a 'center' line");
        if (!Sec.HaveEpsilon && !HaveDefaultEpsilon)
          return error(End, "'input linf' needs an 'epsilon' line");
        Spec.Center = Sec.Center;
        Spec.Epsilon = Sec.HaveEpsilon ? Sec.Epsilon : DefaultEpsilon;
        Spec.InLo = Vector(Spec.Center.size());
        Spec.InHi = Vector(Spec.Center.size());
        for (size_t I = 0; I < Spec.Center.size(); ++I) {
          Spec.InLo[I] =
              std::max(Spec.Center[I] - Spec.Epsilon, Spec.ClampLo);
          Spec.InHi[I] =
              std::min(Spec.Center[I] + Spec.Epsilon, Spec.ClampHi);
        }
      } else {
        if (Sec.Lo.empty() || Sec.Hi.empty())
          return error(End, "'input box' needs 'lo' and 'hi' lines");
        if (Sec.Lo.size() != Sec.Hi.size())
          return error(End, "'lo' and 'hi' have different lengths");
        for (size_t I = 0; I < Sec.Lo.size(); ++I)
          if (Sec.Lo[I] > Sec.Hi[I])
            return error(End, "empty input box at dimension " +
                                  std::to_string(I));
        Spec.InLo = Sec.Lo;
        Spec.InHi = Sec.Hi;
      }
      // One witness file per query: suffix every query after the first so
      // a multi-input spec does not overwrite its own certificates.
      if (!Spec.CertificatePath.empty() && Idx > 0) {
        Spec.CertificatePath += '.'; // += pieces, not `"." + rvalue`: GCC
        Spec.CertificatePath += std::to_string(Idx); // 12 -Wrestrict misfires.
      }
      Specs.push_back(std::move(Spec));
    }
  }

  std::vector<std::vector<Token>> Lines;
  std::vector<SpecDiagnostic> Diags;
  VerificationSpec Base;
  std::vector<InputSection> Sections;
  std::vector<VerificationSpec> Specs;
  std::set<std::string> SeenOnce; ///< Single-occurrence directives seen.
  double DefaultEpsilon = 0.0;
  bool HaveDefaultEpsilon = false;
  bool HaveDefaultClamp = false;
  double DefaultClampLo = 0.0, DefaultClampHi = 1.0;
};

} // namespace

SpecParseResult craft::parseSpec(const std::string &Source,
                                 const std::string &FileName) {
  (void)FileName;
  return Parser(Source).run();
}

SpecParseResult craft::parseSpecFile(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    SpecParseResult Result;
    Result.Diagnostics.push_back({1, 1, "cannot open '" + Path + "'"});
    return Result;
  }
  std::string Source;
  char Buf[4096];
  size_t N = 0;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Source.append(Buf, N);
  std::fclose(F);
  return parseSpec(Source, Path);
}
