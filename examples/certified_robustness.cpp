//===- examples/certified_robustness.cpp - Proof witnesses demo -----------===//
//
// Demonstrates the auditable-verdict workflow: train a small monDEQ,
// certify a robustness ball, emit a self-contained proof witness, validate
// it with the independent directed-rounding checker, and show that
// tampering (wrong model, inflated radius) is caught. Run:
//
//   cmake --build build && ./build/examples/certified_robustness
//
//===----------------------------------------------------------------------===//

#include "cert/Certify.h"
#include "cert/Checker.h"
#include "data/GaussianMixture.h"
#include "nn/Training.h"

#include <cstdio>

using namespace craft;

int main() {
  printf("Auditable robustness verdicts: certify -> check -> tamper\n\n");

  Rng DataRng(61);
  Dataset Train = makeGaussianMixture(DataRng, 250, 5, 3);
  Dataset Test = makeGaussianMixture(DataRng, 10, 5, 3);
  Rng InitRng(62);
  MonDeq Model = MonDeq::randomFc(InitRng, 5, 10, 3, 3.0);
  TrainOptions TOpts;
  TOpts.Epochs = 10;
  TOpts.Verbose = false;
  trainMonDeq(Model, Train, TOpts);

  FixpointSolver Solver(Model, Splitting::PeacemanRachford);
  CraftConfig Cfg;
  Cfg.Alpha1 = 0.5;

  for (size_t I = 0; I < Test.size(); ++I) {
    Vector X = Test.input(I);
    int Cls = Solver.predict(X);
    if (Cls != Test.Labels[I])
      continue;
    auto Cert = certifyRobustness(Model, X, Cls, 0.03, Cfg);
    if (!Cert)
      continue;

    printf("sample %zu: certified class %d within eps = 0.03\n", I, Cls);
    printf("  witness: %zu-d proper outer state, %d containment step(s), "
           "phase-2 %s alpha=%.3f (%d steps)\n",
           Cert->Outer.dim(), Cert->ContainSteps,
           Cert->Phase2Method == Splitting::ForwardBackward ? "FB" : "PR",
           Cert->Alpha2, Cert->Phase2Steps);

    const std::string Path = "/tmp/craft_demo_cert.bin";
    saveCertificate(*Cert, Path);
    auto Loaded = loadCertificate(Path);
    CheckReport Report = checkCertificate(Model, *Loaded);
    printf("  independent check: %s (inverse residual %.2e, containment "
           "slack %.4f, rigorous margin %.4f)\n",
           Report.Ok ? "ACCEPTED" : "rejected", Report.InverseResidual,
           Report.ContainmentSlack, Report.MarginLower);

    // Tamper 1: present the certificate for a different model.
    Rng R(99);
    MonDeq Other = MonDeq::randomFc(R, 5, 10, 3, 3.0);
    printf("  tamper (wrong model):   %s at stage '%s'\n",
           checkCertificate(Other, *Loaded).Ok ? "ACCEPTED (BUG!)"
                                               : "rejected",
           checkCertificate(Other, *Loaded).Stage);

    // Tamper 2: inflate the claimed ball without refreshing the witness.
    RobustnessCertificate Inflated = *Loaded;
    for (size_t J = 0; J < Inflated.InLo.size(); ++J) {
      Inflated.InLo[J] -= 0.5;
      Inflated.InHi[J] += 0.5;
    }
    CheckReport Bad = checkCertificate(Model, Inflated);
    printf("  tamper (inflated ball): %s at stage '%s'\n",
           Bad.Ok ? "ACCEPTED (BUG!)" : "rejected", Bad.Stage);
    std::remove(Path.c_str());
    return 0;
  }
  printf("no certifiable sample found (unexpected on this seed)\n");
  return 1;
}
