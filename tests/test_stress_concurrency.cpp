//===- tests/test_stress_concurrency.cpp - MpmcQueue/ThreadPool stress ----===//
//
// High-contention stress for the concurrency primitives under the serve
// and split stacks: multi-producer/multi-consumer queue traffic with
// back-pressure, close() racing blocked producers, ThreadPool wave reuse
// (the SplitEngine pattern), teardown with work still queued, and
// exception propagation under contention.
//
// These tests assert conservation invariants (every accepted item is
// consumed exactly once) rather than timings, so they are meaningful
// under ThreadSanitizer — the tsan CI job runs this suite to detect
// races, not just crashes.
//
//===----------------------------------------------------------------------===//

#include "support/MpmcQueue.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

using namespace craft;

namespace {

TEST(MpmcStress, ManyProducersManyConsumersConserveItems) {
  // Tiny capacity forces constant back-pressure: producers block in
  // push, consumers block in pop, and every notify path gets exercised.
  MpmcQueue<int> Q(4);
  constexpr int Producers = 4, Consumers = 4, PerProducer = 2000;

  std::atomic<long long> PoppedSum{0};
  std::atomic<int> PoppedCount{0};
  std::vector<std::thread> Threads;
  for (int P = 0; P < Producers; ++P)
    Threads.emplace_back([&Q, P] {
      for (int I = 0; I < PerProducer; ++I) {
        int Item = P * PerProducer + I;
        ASSERT_TRUE(Q.push(std::move(Item)));
      }
    });
  for (int C = 0; C < Consumers; ++C)
    Threads.emplace_back([&Q, &PoppedSum, &PoppedCount] {
      while (std::optional<int> Item = Q.pop()) {
        PoppedSum.fetch_add(*Item);
        PoppedCount.fetch_add(1);
      }
    });

  for (int P = 0; P < Producers; ++P)
    Threads[P].join();
  Q.close(); // Producers done: consumers drain and see end-of-stream.
  for (int C = 0; C < Consumers; ++C)
    Threads[Producers + C].join();

  const int Total = Producers * PerProducer;
  EXPECT_EQ(PoppedCount.load(), Total);
  EXPECT_EQ(PoppedSum.load(),
            static_cast<long long>(Total) * (Total - 1) / 2);
}

TEST(MpmcStress, CloseRacingBlockedProducersKeepsOwnership) {
  MpmcQueue<std::unique_ptr<int>> Q(1);
  ASSERT_TRUE(Q.push(std::make_unique<int>(-1))); // Fill to capacity.

  constexpr int Producers = 8;
  std::atomic<int> Accepted{0}, Rejected{0};
  std::vector<std::thread> Threads;
  for (int P = 0; P < Producers; ++P)
    Threads.emplace_back([&Q, &Accepted, &Rejected, P] {
      std::unique_ptr<int> Item = std::make_unique<int>(P);
      if (Q.push(std::move(Item))) {
        Accepted.fetch_add(1);
      } else {
        // The documented contract: a failed push does not move the item,
        // so the producer still owns it (the serve scheduler unwinds a
        // job that raced shutdown through exactly this path).
        ASSERT_NE(Item, nullptr);
        ASSERT_EQ(*Item, P);
        Rejected.fetch_add(1);
      }
    });

  // Let producers pile up on the full queue, then close underneath them.
  std::this_thread::yield();
  Q.close();
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Accepted.load() + Rejected.load(), Producers);

  // Whatever was accepted before the close is still drainable.
  int Drained = 0;
  while (Q.pop())
    ++Drained;
  EXPECT_EQ(Drained, Accepted.load() + 1);
}

TEST(MpmcStress, TryPopContention) {
  MpmcQueue<int> Q(64);
  constexpr int Items = 4000;
  std::atomic<int> Got{0};
  std::vector<std::thread> Threads;
  for (int C = 0; C < 4; ++C)
    Threads.emplace_back([&Q, &Got] {
      int Item;
      for (;;) {
        if (Q.tryPop(Item)) {
          Got.fetch_add(1);
        } else if (Q.closed()) {
          // Empty-at-that-instant + closed can still strand items pushed
          // between the two checks; the mop-up below counts those.
          return;
        }
      }
    });
  for (int I = 0; I < Items; ++I)
    ASSERT_TRUE(Q.push(int(I)));
  Q.close();
  for (std::thread &T : Threads)
    T.join();
  // tryPop after close can race the final drain; mop up what is left.
  int Item;
  while (Q.tryPop(Item))
    Got.fetch_add(1);
  EXPECT_EQ(Got.load(), Items);
}

TEST(ThreadPoolStress, WaveReuseLikeSplitEngine) {
  // One persistent pool, many submit/wait waves — the SplitEngine usage
  // pattern whose wave accounting the TSan job watches.
  ThreadPool Pool(4);
  constexpr int Waves = 50, TasksPerWave = 64;
  for (int W = 0; W < Waves; ++W) {
    std::vector<int> Slots(TasksPerWave, -1);
    for (int I = 0; I < TasksPerWave; ++I)
      Pool.submit([&Slots, I, W] { Slots[I] = W * TasksPerWave + I; });
    Pool.wait();
    for (int I = 0; I < TasksPerWave; ++I)
      ASSERT_EQ(Slots[I], W * TasksPerWave + I);
  }
}

TEST(ThreadPoolStress, DestructorRunsPendingTasks) {
  // Teardown with work still queued: the documented contract is that
  // pending tasks execute before workers join.
  std::atomic<int> Ran{0};
  constexpr int Tasks = 500;
  {
    ThreadPool Pool(2);
    for (int I = 0; I < Tasks; ++I)
      Pool.submit([&Ran] { Ran.fetch_add(1); });
    // No wait(): the destructor must drain.
  }
  EXPECT_EQ(Ran.load(), Tasks);
}

TEST(ThreadPoolStress, ExceptionUnderContentionStillDrains) {
  ThreadPool Pool(4);
  std::atomic<int> Ran{0};
  constexpr int Tasks = 256;
  for (int I = 0; I < Tasks; ++I)
    Pool.submit([&Ran, I] {
      Ran.fetch_add(1);
      if (I % 37 == 0)
        throw std::runtime_error("task failure");
    });
  EXPECT_THROW(Pool.wait(), std::runtime_error);
  // Every task ran (failures don't cancel the queue), and the pool is
  // reusable after an exceptional wave.
  EXPECT_EQ(Ran.load(), Tasks);
  Pool.submit([&Ran] { Ran.fetch_add(1); });
  Pool.wait();
  EXPECT_EQ(Ran.load(), Tasks + 1);
}

TEST(ThreadPoolStress, ParallelForIndexMatchesSerial) {
  constexpr size_t N = 2048;
  std::vector<uint64_t> Serial(N), Parallel(N);
  auto Work = [](size_t I) { return taskSeed(20230617, I) % 1000003; };
  parallelForIndex(N, 1, [&](size_t I) { Serial[I] = Work(I); });
  parallelForIndex(N, 8, [&](size_t I) { Parallel[I] = Work(I); });
  EXPECT_EQ(Serial, Parallel);
}

} // namespace
