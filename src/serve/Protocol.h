//===- serve/Protocol.h - Newline-delimited JSON protocol -------*- C++ -*-===//
//
// Part of the Craft reproduction (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire protocol of the `craft serve` daemon: one JSON object per
/// line, over stdio or a localhost TCP connection. This header holds the
/// protocol's three pieces:
///
///  - a minimal self-contained JSON value type with a strict parser and a
///    single-line writer (NDJSON framing forbids raw newlines; the writer
///    escapes them);
///  - the request schema:
///      {"id": <n>, "method": "verify", "spec": "<spec text>",
///       "cache": <bool, default true>,
///       "deadline_ms": <ms, optional: per-request wall-clock budget>}
///      {"id": <n>, "method": "info", "model": "<path>"}
///      {"id": <n>, "method": "stats" | "metrics" | "ping" | "drain" |
///       "shutdown"}
///  - the response schema:
///      {"id": <n>, "ok": true, "results": [<result>...],
///       "server_ms": <t>}           (verify)
///      {"id": <n>, "ok": true, ...method-specific fields...}
///      {"id": <n>, "ok": false, "error": "<message>",
///       "code": "<machine code, optional>",
///       "diagnostics": ["<spec errors>"...]}
///    where "code" (when present) classifies the failure for retry logic:
///    "overloaded" (shed at admission, retryable) or "draining" (daemon
///    drains, retryable against a replacement);
///    and each verify <result> mirrors RunOutcome plus a "cached" flag:
///      {"model_loaded", "deadline_exceeded", "certified", "containment",
///       "refuted", "margin_lower", "time_s", "certificate_written",
///       "attack_seed" (decimal string: uint64 exceeds double),
///       "detail", "cached",
///       "timings" (optional: the PhaseBreakdown as an object of
///        *_ms numbers plus "solver_iterations"; absent when the server
///        runs with CRAFT_TELEMETRY=0)}
///
/// Encoding and decoding live here so the server, the client library, and
/// the tests round-trip through exactly one implementation.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFT_SERVE_PROTOCOL_H
#define CRAFT_SERVE_PROTOCOL_H

#include "tool/Driver.h"

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace craft {
namespace json {

/// A parsed JSON value. Object member order is preserved (the writer
/// emits members in insertion order, keeping encodings deterministic).
class Value {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Value() = default;
  static Value null() { return Value(); }
  static Value boolean(bool B);
  static Value number(double N);
  static Value string(std::string S);
  static Value array();
  static Value object();

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool asBool() const { return B; }
  double asNumber() const { return Num; }
  const std::string &asString() const { return Str; }
  const std::vector<Value> &elements() const { return Arr; }
  const std::vector<std::pair<std::string, Value>> &members() const {
    return Obj;
  }

  /// Object lookup; null when absent or not an object.
  const Value *find(const std::string &Key) const;

  /// Typed member accessors with defaults (object receivers only).
  std::string stringOr(const std::string &Key,
                       const std::string &Default) const;
  double numberOr(const std::string &Key, double Default) const;
  bool boolOr(const std::string &Key, bool Default) const;

  /// Appends to an array value.
  void push(Value V) { Arr.push_back(std::move(V)); }
  /// Sets an object member (appends; last set wins on lookup ties).
  void set(const std::string &Key, Value V);

  /// Serializes onto one line (no raw newlines anywhere in the output).
  std::string serialize() const;

private:
  Kind K = Kind::Null;
  bool B = false;
  double Num = 0.0;
  std::string Str;
  std::vector<Value> Arr;
  std::vector<std::pair<std::string, Value>> Obj;
};

/// Strict parse of one JSON document. Trailing non-whitespace, trailing
/// commas, comments, NaN/Infinity literals, and unpaired surrogates are
/// all rejected; \p Error gets a byte-offset diagnostic on failure.
std::optional<Value> parse(const std::string &Text, std::string &Error);

} // namespace json

namespace serve {

/// One decoded request line.
struct Request {
  /// Client-chosen correlation id, echoed on the response (0 if absent).
  int64_t Id = 0;
  /// "verify", "info", "stats", "metrics", "ping", "drain", "shutdown".
  std::string Method;
  std::string SpecText; ///< verify: the spec file contents.
  std::string Model;    ///< info: the model path.
  bool UseCache = true; ///< verify: false bypasses lookup and insertion.
  /// verify: wall-clock budget in ms (< 0 = none). Queries still
  /// unresolved when it expires answer deadline_exceeded.
  double DeadlineMs = -1.0;
};

/// Decodes one request line. On failure returns nullopt and fills
/// \p Error (the server answers with an ok:false envelope either way).
std::optional<Request> decodeRequest(const std::string &Line,
                                     std::string &Error);

/// Encodes \p Req as one request line (the client library's writer).
std::string encodeRequest(const Request &Req);

/// One per-query verify result as it crosses the wire.
struct WireResult {
  RunOutcome Outcome;
  bool Cached = false;
};

/// RunOutcome <-> JSON result object. Lossless for every field:
/// doubles travel as %.17g, the uint64 attack seed as a decimal string.
json::Value encodeResult(const WireResult &Result);
std::optional<WireResult> decodeResult(const json::Value &V);

/// Response envelope builders (all single-line serializable). \p Code,
/// when non-empty, is emitted as the machine-readable "code" member
/// ("overloaded" / "draining") that retry logic classifies on.
json::Value makeErrorResponse(int64_t Id, const std::string &Message,
                              const std::vector<std::string> &Diagnostics =
                                  {},
                              const std::string &Code = "");
json::Value makeVerifyResponse(int64_t Id,
                               const std::vector<WireResult> &Results,
                               double ServerMs);

} // namespace serve
} // namespace craft

#endif // CRAFT_SERVE_PROTOCOL_H
