//===- bench/bench_fig13_width.cpp ----------------------------------------===//
//
// Reproduces Fig. 13: mean concretization width over abstract solver
// iterations for a representative FCx40 sample, comparing the Box domain
// and CH-Zonotope under FB and PR splitting.
//
// Expected shape: Box diverges quickly under FB and is orders of magnitude
// wider under PR; CH-Zonotope widths show the consolidation sawtooth
// (consolidation enlarges, subsequent solver steps re-tighten) and stay
// small.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/AbstractSolver.h"
#include "domains/OrderReduction.h"

#include <algorithm>
#include <cmath>

using namespace craft;

int main() {
  std::printf("== Fig. 13: mean concretization width per iteration "
              "(FCx40) ==\n\n");

  const ModelSpec *Spec = findModelSpec("mnist_fc40");
  MonDeq Model = getOrTrainModel(*Spec);
  Dataset Test = makeTestSet(*Spec, 5);
  Vector X = Test.input(0);

  double Eps = Spec->Epsilon;
  Vector Lo(X.size()), Hi(X.size());
  for (size_t I = 0; I < X.size(); ++I) {
    Lo[I] = std::max(X[I] - Eps, 0.0);
    Hi[I] = std::min(X[I] + Eps, 1.0);
  }
  CHZonotope XAbs = CHZonotope::fromBox(Lo, Hi);
  IntervalVector XIv = IntervalVector::fromBounds(Lo, Hi);
  Vector ZStar =
      FixpointSolver(Model, Splitting::PeacemanRachford).solve(X).Z;

  const int Steps = 40;
  const int ConsolidateEvery = 3;

  auto traceCh = [&](Splitting Method, double Alpha) {
    AbstractSolver Solver(Model, Method, Alpha, XAbs);
    CHZonotope S = Solver.initialState(ZStar);
    ConsolidationBasis Basis(Solver.stateDim(), 30);
    std::vector<double> Widths;
    for (int N = 1; N <= Steps; ++N) {
      if ((N - 1) % ConsolidateEvery == 0)
        S = consolidateProper(S, Basis, 1e-3, 1e-2).Z;
      S = Solver.step(S);
      Widths.push_back(S.meanWidth());
    }
    return Widths;
  };

  auto traceBox = [&](Splitting Method, double Alpha) {
    AbstractSolver Solver(Model, Method, Alpha, XAbs);
    IntervalVector S = Solver.initialStateInterval(ZStar);
    std::vector<double> Widths;
    for (int N = 1; N <= Steps; ++N) {
      S = Solver.stepInterval(S);
      double W = S.meanWidth();
      Widths.push_back(std::min(W, 1e12));
      if (W > 1e12)
        break;
    }
    while (Widths.size() < static_cast<size_t>(Steps))
      Widths.push_back(1e12); // Diverged.
    return Widths;
  };

  double FbAlpha = 0.9 * Model.fbAlphaBound();
  std::vector<double> BoxFb = traceBox(Splitting::ForwardBackward, FbAlpha);
  std::vector<double> BoxPr = traceBox(Splitting::PeacemanRachford, 0.1);
  std::vector<double> ChFb = traceCh(Splitting::ForwardBackward, FbAlpha);
  std::vector<double> ChPr = traceCh(Splitting::PeacemanRachford, 0.1);

  TablePrinter Table({"iter", "Box FB", "Box PR", "CHZono FB", "CHZono PR"});
  for (int N = 0; N < Steps; ++N)
    Table.addRow({fmt(static_cast<long>(N + 1)), fmt(BoxFb[N], 4),
                  fmt(BoxPr[N], 4), fmt(ChFb[N], 4), fmt(ChPr[N], 4)});
  Table.print();

  std::printf("\nBox FB final/initial width ratio: %.3g (divergence "
              "expected)\n",
              BoxFb.back() / std::max(BoxFb.front(), 1e-300));
  std::printf("CHZono PR final width: %.4f (stays tight)\n", ChPr.back());
  return 0;
}
