//===- serve/Scheduler.cpp ------------------------------------------------===//

#include "serve/Scheduler.h"

#include "support/FaultInjection.h"
#include "support/Telemetry.h"
#include "tool/SpecCanon.h"

#include <algorithm>

using namespace craft;
using namespace craft::serve;

namespace {

std::future<ServeResult> readyResult(ServeResult Result) {
  std::promise<ServeResult> P;
  std::future<ServeResult> F = P.get_future();
  P.set_value(std::move(Result));
  return F;
}

/// The scheduler pipeline's process-wide series. Per-instance Stats are
/// deltas against a construction-time baseline of these.
const telemetry::Counter StatSubmitted =
    telemetry::counterMetric("serve.submitted");
const telemetry::Counter StatCacheHits =
    telemetry::counterMetric("serve.cache_hits");
const telemetry::Counter StatCoalesced =
    telemetry::counterMetric("serve.coalesced");
const telemetry::Counter StatExecuted =
    telemetry::counterMetric("serve.executed");
const telemetry::Counter StatBatches = telemetry::counterMetric("serve.batches");
const telemetry::Counter StatShed = telemetry::counterMetric("serve.shed");
const telemetry::Counter StatDeadlineExpired =
    telemetry::counterMetric("serve.deadline_expired");
/// Admission-queue depth, sampled at every enqueue and batch formation.
const telemetry::Gauge QueueDepthGauge =
    telemetry::gaugeMetric("serve.queue_depth");
const telemetry::Gauge MaxBatchGauge = telemetry::gaugeMetric("serve.max_batch");
/// Admission-to-dispatch wait per executed job (only observed while
/// timing is enabled — the values are clock reads).
const telemetry::Histogram QueueWaitHist =
    telemetry::histogramMetric("serve.queue_wait_ns");

Scheduler::Stats registryTotals() {
  Scheduler::Stats S;
  S.Submitted = StatSubmitted.value();
  S.CacheHits = StatCacheHits.value();
  S.Coalesced = StatCoalesced.value();
  S.Executed = StatExecuted.value();
  S.Batches = StatBatches.value();
  S.Shed = StatShed.value();
  S.DeadlineExpired = StatDeadlineExpired.value();
  return S;
}

} // namespace

Scheduler::Scheduler(const Options &Opts)
    : Opts(Opts), Cache(Opts.CacheCapacity, Opts.CacheShards),
      Queue(Opts.QueueCapacity), Base(registryTotals()) {
  // craft-lint: allow(conc-thread) — spawn of the joined dispatcher.
  Dispatcher = std::thread([this] {
    telemetry::setCurrentThreadLabel("serve dispatch");
    dispatchLoop();
  });
}

Scheduler::~Scheduler() { stop(); }

void Scheduler::stop() {
  Stopping.store(true);
  Queue.close();
  if (Dispatcher.joinable())
    Dispatcher.join();
}

Scheduler::Stats Scheduler::stats() const {
  const Stats Now = registryTotals();
  Stats S;
  S.Submitted = Now.Submitted - Base.Submitted;
  S.CacheHits = Now.CacheHits - Base.CacheHits;
  S.Coalesced = Now.Coalesced - Base.Coalesced;
  S.Executed = Now.Executed - Base.Executed;
  S.Batches = Now.Batches - Base.Batches;
  S.MaxBatchSeen = MaxBatchSeen.load();
  S.Shed = Now.Shed - Base.Shed;
  S.DeadlineExpired = Now.DeadlineExpired - Base.DeadlineExpired;
  return S;
}

std::future<ServeResult> Scheduler::submit(const VerificationSpec &Spec,
                                           bool UseCache,
                                           double DeadlineMs) {
  StatSubmitted.increment();
  if (Stopping.load()) {
    ServeResult R;
    R.Outcome.Detail = "server is shutting down";
    return readyResult(std::move(R));
  }
  if (Draining.load()) {
    ServeResult R;
    R.Draining = true;
    R.Outcome.Detail = "server is draining";
    return readyResult(std::move(R));
  }

  // The budget starts here: queue wait counts against the deadline.
  const bool HasDeadline = DeadlineMs >= 0.0;
  Deadline DeadlineAt(HasDeadline ? DeadlineMs : -1.0);

  // 1. Model resolution (load-once via the registry). monotonicNanos()
  // reads 0 when timing is disabled, so the phase slices are simply zero
  // then — no separate branch.
  const uint64_t ModelT0 = telemetry::monotonicNanos();
  ModelRegistry::Entry Model = Registry.get(Spec.ModelPath);
  const uint64_t ModelT1 = telemetry::monotonicNanos();
  if (!Model.Model) {
    ServeResult R;
    R.Outcome.Detail = Model.Error;
    return readyResult(std::move(R));
  }

  // 2. Content identity. Witness emission is a filesystem side effect, so
  // certificate queries always execute (no memoized outcome could redo
  // the write) and never populate the cache.
  const bool Cacheable = UseCache && Spec.CertificatePath.empty();
  // Server-default cascade: a craft query whose spec leaves `cascade`
  // unset adopts the daemon's policy here, BEFORE the cache key is
  // built, so the normalized query and an explicit twin share one cache
  // entry (and a cached single-rung verdict never answers a cascade
  // request, or vice versa).
  VerificationSpec Prepared = Spec;
  if (Prepared.Verifier == SpecVerifier::Craft &&
      Prepared.Cascade.Mode == CascadeMode::Unset)
    Prepared.Cascade = Opts.DefaultCascade;
  std::string Key = serveCacheKey(Prepared, Model.Hash);

  // 3. Deterministic attack seed, derived from the query's content alone.
  if (Prepared.Attack && Prepared.AttackSeed == 0)
    Prepared.AttackSeed = serveAttackSeed(Opts.BaseSeed, Key);

  std::unique_ptr<Job> NewJob;
  std::future<ServeResult> Future;
  {
    std::lock_guard<std::mutex> Lock(InFlightMutex);
    if (Cacheable && !HasDeadline) {
      // 4. Coalesce with an identical in-flight query. Deadline queries
      // never coalesce: each submission's budget is its own, and a job
      // listed for coalescing must also be cache-publishable.
      auto It = InFlight.find(Key);
      if (It != InFlight.end()) {
        It->second->Waiters.emplace_back();
        StatCoalesced.increment();
        return It->second->Waiters.back().get_future();
      }
    }
    if (Cacheable) {
      // 5. Cache probe, under the admission lock. finishJob publishes
      // to the cache before delisting from InFlight, and both steps of
      // this probe hold the lock, so an identical query always either
      // joins the in-flight job or sees its cached outcome — a key is
      // never executed twice. (Deadline queries probe too — a hit is
      // instant and deterministic — they just never populate.)
      if (std::optional<RunOutcome> Hit = Cache.lookup(Key)) {
        StatCacheHits.increment();
        ServeResult R;
        R.Outcome = *Hit;
        R.Cached = true;
        R.ModelHash = Model.Hash;
        return readyResult(std::move(R));
      }
    }
    // 6. Admit a fresh job. A deadline job runs with UseCache=false
    // semantics from here on: not listed for coalescing, outcome never
    // inserted — whether the budget suffices is submission timing, not
    // query content, and must not poison the deterministic cache.
    NewJob = std::make_unique<Job>();
    NewJob->Spec = std::move(Prepared);
    NewJob->Model = Model.Model;
    NewJob->ModelHash = Model.Hash;
    NewJob->Key = Key;
    NewJob->UseCache = Cacheable && !HasDeadline;
    NewJob->DeadlineAt = DeadlineAt;
    // Phase attribution: everything between model resolution and here is
    // key canonicalization + coalesce/cache probing; the queue wait runs
    // from this timestamp until dispatch picks the job up.
    NewJob->AdmitNs = telemetry::monotonicNanos();
    NewJob->CacheProbeMs =
        static_cast<double>(NewJob->AdmitNs - ModelT1) / 1e6;
    NewJob->ModelLoadMs = static_cast<double>(ModelT1 - ModelT0) / 1e6;
    NewJob->Waiters.emplace_back();
    Future = NewJob->Waiters.back().get_future();
    if (NewJob->UseCache)
      InFlight.emplace(Key, NewJob.get());
  }

  // Non-blocking admission (load shedding): a saturated daemon answers
  // Overloaded instead of head-of-line-blocking the connection thread.
  // Joiners may keep attaching to the job meanwhile — it is already
  // listed in-flight.
  const size_t HighWater =
      Opts.ShedHighWater > 0
          ? std::min(Opts.ShedHighWater, Opts.QueueCapacity)
          : Opts.QueueCapacity;
  const bool Admitted =
      Queue.size() < HighWater && Queue.tryPush(std::move(NewJob));
  QueueDepthGauge.set(static_cast<int64_t>(Queue.size()));
  if (!Admitted) {
    // Shed (or shutdown raced the admission); tryPush failed without
    // moving, so the job is still ours. Delist it first (under the lock,
    // so no joiner can attach to a dying job), then fail every attached
    // waiter.
    const bool ShuttingDown = Queue.closed();
    std::vector<std::promise<ServeResult>> Waiters;
    {
      std::lock_guard<std::mutex> Lock(InFlightMutex);
      if (NewJob->UseCache)
        InFlight.erase(NewJob->Key);
      Waiters = std::move(NewJob->Waiters);
    }
    ServeResult R;
    if (ShuttingDown) {
      R.Outcome.Detail = "server is shutting down";
    } else {
      R.Overloaded = true;
      R.Outcome.Detail = "admission queue is full";
      StatShed.increment();
    }
    for (std::promise<ServeResult> &P : Waiters)
      P.set_value(R);
  }
  return Future;
}

void Scheduler::finishJob(std::unique_ptr<Job> JobPtr,
                          const RunOutcome &Outcome, bool Publish) {
  // Publish before delisting (see the InFlight comment in the header).
  // Deadline outcomes are belt-and-braces excluded: deadline jobs carry
  // UseCache=false, and even a mislabeled one must never memoize a
  // timing-dependent result.
  if (Publish && JobPtr->UseCache && Outcome.ModelLoaded &&
      !Outcome.DeadlineExceeded)
    Cache.insert(JobPtr->Key, Outcome);
  std::vector<std::promise<ServeResult>> Waiters;
  {
    std::lock_guard<std::mutex> Lock(InFlightMutex);
    if (JobPtr->UseCache)
      InFlight.erase(JobPtr->Key);
    Waiters = std::move(JobPtr->Waiters);
  }
  ServeResult R;
  R.Outcome = Outcome;
  R.Cached = false;
  R.ModelHash = JobPtr->ModelHash;
  for (std::promise<ServeResult> &P : Waiters)
    P.set_value(R);
}

void Scheduler::dispatchLoop() {
  // A job deferred out of the previous batch (duplicate certificate
  // path); it leads the next batch.
  std::unique_ptr<Job> Carry;
  for (;;) {
    std::unique_ptr<Job> FirstJob;
    if (Carry) {
      FirstJob = std::move(Carry);
    } else {
      std::optional<std::unique_ptr<Job>> First = Queue.pop();
      if (!First)
        return; // Closed and drained.
      FirstJob = std::move(*First);
    }

    // Natural batching: take everything already admitted, up to the cap.
    // No admission timer — a lone query dispatches immediately; under
    // load the queue is non-empty and batches grow on their own.
    std::vector<std::unique_ptr<Job>> Batch;
    Batch.push_back(std::move(FirstJob));

    // Two queries naming one witness file must never share a batch:
    // parallelForIndex would run them concurrently and their
    // saveCertificate calls would race on the file (the one-shot CLI
    // rejects such batches up front; serve serializes them instead —
    // batches execute one after another, so deferring the duplicate to
    // the next batch is a strict happens-after). Only the first
    // conflict defers; anything behind it stays queued.
    auto conflictsWithBatch = [&Batch](const Job &J) {
      if (J.Spec.CertificatePath.empty())
        return false;
      for (const std::unique_ptr<Job> &B : Batch)
        if (B->Spec.CertificatePath == J.Spec.CertificatePath)
          return true;
      return false;
    };
    std::unique_ptr<Job> Next;
    while (Batch.size() < Opts.MaxBatch && Queue.tryPop(Next)) {
      if (conflictsWithBatch(*Next)) {
        Carry = std::move(Next);
        break;
      }
      Batch.push_back(std::move(Next));
    }

    // Jobs whose budget the queue wait already consumed fail fast here
    // instead of occupying a verification worker the engine would give
    // back at its first iteration boundary anyway.
    {
      std::vector<std::unique_ptr<Job>> Keep;
      Keep.reserve(Batch.size());
      for (std::unique_ptr<Job> &J : Batch) {
        if (!J->DeadlineAt.expired()) {
          Keep.push_back(std::move(J));
          continue;
        }
        StatDeadlineExpired.increment();
        RunOutcome Out;
        Out.ModelLoaded = true;
        Out.DeadlineExceeded = true;
        Out.Detail = "deadline exceeded before dispatch";
        if (telemetry::timingEnabled()) {
          // The engine never ran: the whole story is the queue wait.
          Out.Phases.Populated = true;
          Out.Phases.QueueWaitMs = static_cast<double>(
                                       telemetry::monotonicNanos() -
                                       J->AdmitNs) /
                                   1e6;
          Out.Phases.CacheProbeMs = J->CacheProbeMs;
          Out.Phases.ModelLoadMs = J->ModelLoadMs;
        }
        finishJob(std::move(J), Out);
      }
      Batch.swap(Keep);
    }
    if (Batch.empty())
      continue;

    // Injected dispatch failure: every job of the batch reports an error
    // outcome, and nothing is cached (the failure is synthetic).
    if (fault::at("sched.dispatch") == fault::Action::Fail) {
      RunOutcome Out;
      Out.ModelLoaded = true;
      Out.Error = true;
      Out.Detail = "injected fault: dispatch failed";
      for (std::unique_ptr<Job> &J : Batch)
        finishJob(std::move(J), Out, /*Publish=*/false);
      continue;
    }

    std::vector<VerificationSpec> Specs;
    std::vector<const MonDeq *> Models;
    std::vector<RunControl> Controls(Batch.size());
    Specs.reserve(Batch.size());
    Models.reserve(Batch.size());
    for (size_t I = 0; I < Batch.size(); ++I) {
      Specs.push_back(Batch[I]->Spec);
      Models.push_back(Batch[I]->Model);
      Controls[I].DeadlineAt = Batch[I]->DeadlineAt;
    }

    const bool Timing = telemetry::timingEnabled();
    const uint64_t DispatchNs = telemetry::monotonicNanos();
    if (Timing)
      for (const std::unique_ptr<Job> &J : Batch)
        QueueWaitHist.observe(DispatchNs - J->AdmitNs);
    QueueDepthGauge.set(static_cast<int64_t>(Queue.size()));

    TRACE_SPAN("serve.batch");
    std::vector<RunOutcome> Outcomes = runSpecBatchLoaded(
        Specs, Models, Opts.Jobs, Opts.FuseBatchGemms, Controls);

    StatBatches.increment();
    StatExecuted.add(Batch.size());
    MaxBatchGauge.noteMax(static_cast<int64_t>(Batch.size()));
    for (size_t Prev = MaxBatchSeen.load();
         Batch.size() > Prev &&
         !MaxBatchSeen.compare_exchange_weak(Prev, Batch.size());)
      ;
    for (const RunOutcome &Out : Outcomes)
      if (Out.DeadlineExceeded)
        StatDeadlineExpired.increment();

    for (size_t I = 0; I < Batch.size(); ++I) {
      if (Timing) {
        // Fold the scheduler-side slices into the engine's breakdown.
        // Cache hits never reach this path — a stored outcome is
        // returned verbatim, payload byte-identical to the first answer.
        PhaseBreakdown &Ph = Outcomes[I].Phases;
        Ph.Populated = true;
        Ph.QueueWaitMs =
            static_cast<double>(DispatchNs - Batch[I]->AdmitNs) / 1e6;
        Ph.CacheProbeMs = Batch[I]->CacheProbeMs;
        Ph.ModelLoadMs = Batch[I]->ModelLoadMs;
      }
      finishJob(std::move(Batch[I]), Outcomes[I]);
    }
  }
}
