//===- domains/Volume.cpp -------------------------------------------------===//

#include "domains/Volume.h"

#include "linalg/Lu.h"

#include <cmath>

using namespace craft;

/// Recursively enumerates p-subsets of columns, accumulating |det|.
static void sumSubsetDeterminants(const Matrix &Gens, size_t NextCol,
                                  std::vector<size_t> &Chosen, double &Acc) {
  const size_t P = Gens.rows();
  if (Chosen.size() == P) {
    Matrix Sub(P, P);
    for (size_t J = 0; J < P; ++J)
      for (size_t R = 0; R < P; ++R)
        Sub(R, J) = Gens(R, Chosen[J]);
    Acc += std::fabs(LuDecomposition(Sub).determinant());
    return;
  }
  size_t Remaining = P - Chosen.size();
  for (size_t C = NextCol; C + Remaining <= Gens.cols(); ++C) {
    Chosen.push_back(C);
    sumSubsetDeterminants(Gens, C + 1, Chosen, Acc);
    Chosen.pop_back();
  }
}

double craft::zonotopeVolume(const CHZonotope &Z) {
  const size_t P = Z.dim();
  if (P == 0)
    return 0.0;

  // Fold the Box component in as axis-aligned generator columns.
  size_t NumBoxCols = 0;
  for (size_t I = 0; I < P; ++I)
    if (Z.boxRadius()[I] > 0.0)
      ++NumBoxCols;
  Matrix Gens(P, Z.numGenerators() + NumBoxCols);
  for (size_t J = 0; J < Z.numGenerators(); ++J)
    for (size_t R = 0; R < P; ++R)
      Gens(R, J) = Z.generators()(R, J);
  size_t Col = Z.numGenerators();
  for (size_t I = 0; I < P; ++I)
    if (Z.boxRadius()[I] > 0.0)
      Gens(I, Col++) = Z.boxRadius()[I];

  if (Gens.cols() < P)
    return 0.0; // Degenerate: the set lies in a lower-dimensional subspace.

  double Acc = 0.0;
  std::vector<size_t> Chosen;
  Chosen.reserve(P);
  sumSubsetDeterminants(Gens, 0, Chosen, Acc);
  return std::ldexp(Acc, static_cast<int>(P)); // 2^p * sum |det|.
}
