//===- serve/Client.cpp ---------------------------------------------------===//

#include "serve/Client.h"

using namespace craft;
using namespace craft::serve;
using json::Value;

bool ServeClient::connect(int Port, std::string &Error) {
  SocketFd Fd = connectLocalhost(Port, Error);
  if (!Fd.valid())
    return false;
  Chan = std::make_unique<LineChannel>(std::move(Fd));
  return true;
}

std::optional<Value> ServeClient::roundTrip(const std::string &RequestLine,
                                            std::string &Error) {
  if (!Chan) {
    Error = "not connected";
    return std::nullopt;
  }
  if (!Chan->writeLine(RequestLine)) {
    Error = "connection lost while sending";
    return std::nullopt;
  }
  std::string Line;
  if (!Chan->readLine(Line)) {
    Error = "connection closed before a response arrived";
    return std::nullopt;
  }
  std::optional<Value> Doc = json::parse(Line, Error);
  if (!Doc)
    return std::nullopt;
  if (!Doc->isObject()) {
    Error = "response is not a JSON object";
    return std::nullopt;
  }
  return Doc;
}

namespace {

/// Extracts the server's error (+ diagnostics) from an ok:false envelope.
std::string envelopeError(const Value &Doc) {
  std::string Message = Doc.stringOr("error", "unspecified server error");
  if (const Value *Diags = Doc.find("diagnostics"))
    if (Diags->isArray())
      for (const Value &D : Diags->elements())
        if (D.isString())
          Message += "\n  " + D.asString();
  return Message;
}

} // namespace

std::optional<VerifyReply> ServeClient::verify(const std::string &SpecText,
                                               std::string &Error,
                                               bool UseCache) {
  Request Req;
  Req.Id = NextId++;
  Req.Method = "verify";
  Req.SpecText = SpecText;
  Req.UseCache = UseCache;
  std::optional<Value> Doc = roundTrip(encodeRequest(Req), Error);
  if (!Doc)
    return std::nullopt;
  if (!Doc->boolOr("ok", false)) {
    Error = envelopeError(*Doc);
    return std::nullopt;
  }
  const Value *Results = Doc->find("results");
  if (!Results || !Results->isArray()) {
    Error = "verify response lacks a results array";
    return std::nullopt;
  }
  VerifyReply Reply;
  Reply.ServerMs = Doc->numberOr("server_ms", 0.0);
  for (const Value &R : Results->elements()) {
    std::optional<WireResult> W = decodeResult(R);
    if (!W) {
      Error = "malformed result object in verify response";
      return std::nullopt;
    }
    Reply.Results.push_back(std::move(*W));
  }
  return Reply;
}

bool ServeClient::ping(std::string &Error) {
  Request Req;
  Req.Id = NextId++;
  Req.Method = "ping";
  std::optional<Value> Doc = roundTrip(encodeRequest(Req), Error);
  return Doc && Doc->boolOr("ok", false) && Doc->boolOr("pong", false);
}

std::optional<Value> ServeClient::stats(std::string &Error) {
  Request Req;
  Req.Id = NextId++;
  Req.Method = "stats";
  std::optional<Value> Doc = roundTrip(encodeRequest(Req), Error);
  if (!Doc)
    return std::nullopt;
  if (!Doc->boolOr("ok", false)) {
    Error = envelopeError(*Doc);
    return std::nullopt;
  }
  return Doc;
}

bool ServeClient::requestShutdown(std::string &Error) {
  Request Req;
  Req.Id = NextId++;
  Req.Method = "shutdown";
  std::optional<Value> Doc = roundTrip(encodeRequest(Req), Error);
  return Doc && Doc->boolOr("ok", false);
}
