//===- tests/test_split.cpp - Parallel split work-queue engine ------------===//
//
// Regression coverage for the branch-and-bound split engine
// (core/SplitEngine.h) and its driver wiring:
//
//  - degenerate boxes (lo[i] == hi[i]) certify through both splitting
//    entry points — the old volume-ratio bookkeeping computed 0/0 and
//    could never report Certified for them;
//  - outcomes are byte-identical for jobs = 1 vs N;
//  - a refutation aborts the remaining expansion deterministically;
//  - PGD probes on undecided leaves refute genuinely false properties;
//  - the driver surfaces counterexamples, flags spec/model mismatches as
//    errors, and diagnoses certificate requests on split runs.
//
//===----------------------------------------------------------------------===//

#include "core/DomainSplitting.h"
#include "data/GaussianMixture.h"
#include "nn/Solvers.h"
#include "nn/Training.h"
#include "support/Rng.h"
#include "support/ThreadPool.h"
#include "tool/Driver.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>

using namespace craft;

namespace {

/// Trained GMM fixture shared by every test (same recipe as the BnB
/// fixture in test_core, so certifiability thresholds carry over).
struct SplitFixture {
  MonDeq Model;
  Vector Sample;
  int SampleClass = -1;
  std::string ModelPath = "/tmp/craft_split_model.bin";
};

SplitFixture &fixture() {
  static SplitFixture *F = [] {
    auto *Out = new SplitFixture;
    Rng DataRng(91);
    Dataset Train = makeGaussianMixture(DataRng, 250, 5, 3);
    Rng InitRng(92);
    Out->Model = MonDeq::randomFc(InitRng, 5, 10, 3, 3.0);
    TrainOptions Opts;
    Opts.Epochs = 10;
    Opts.Verbose = false;
    trainMonDeq(Out->Model, Train, Opts);
    Out->Model.save(Out->ModelPath);
    FixpointSolver Solver(Out->Model, Splitting::PeacemanRachford);
    for (size_t I = 0; I < Train.size(); ++I)
      if (Solver.predict(Train.input(I)) == Train.Labels[I]) {
        Out->Sample = Train.input(I);
        Out->SampleClass = Train.Labels[I];
        break;
      }
    return Out;
  }();
  return *F;
}

CraftConfig splitConfig() {
  CraftConfig Cfg;
  Cfg.Alpha1 = 0.5;
  Cfg.LambdaOptLevel = 0;
  return Cfg;
}

/// Box around the fixture sample: the first \p NumWide dimensions are
/// widened by +-Eps (clamped to [0, 1]), the rest stay degenerate
/// (lo == hi == center).
void degenerateBox(const Vector &Center, double Eps, size_t NumWide,
                   Vector &Lo, Vector &Hi) {
  Lo = Center;
  Hi = Center;
  for (size_t I = 0; I < std::min(NumWide, Center.size()); ++I) {
    Lo[I] = std::max(Center[I] - Eps, 0.0);
    Hi[I] = std::min(Center[I] + Eps, 1.0);
  }
}

bool sameVector(const Vector &A, const Vector &B) {
  return A.size() == B.size() &&
         (A.empty() ||
          std::memcmp(A.data(), B.data(), A.size() * sizeof(double)) == 0);
}

void expectSameBnB(const BranchAndBoundResult &A,
                   const BranchAndBoundResult &B, const char *What) {
  EXPECT_EQ(A.Certified, B.Certified) << What;
  EXPECT_EQ(A.Refuted, B.Refuted) << What;
  EXPECT_EQ(A.RefutedByPgd, B.RefutedByPgd) << What;
  EXPECT_TRUE(sameVector(A.Counterexample, B.Counterexample)) << What;
  EXPECT_EQ(A.CounterexamplePath, B.CounterexamplePath) << What;
  EXPECT_EQ(A.PgdSeed, B.PgdSeed) << What;
  EXPECT_EQ(A.NumVerifierCalls, B.NumVerifierCalls) << What;
  EXPECT_EQ(A.NumLeaves, B.NumLeaves) << What;
  EXPECT_EQ(A.NumUndecided, B.NumUndecided) << What;
  EXPECT_EQ(A.NumWaves, B.NumWaves) << What;
  EXPECT_EQ(A.NumPgdProbes, B.NumPgdProbes) << What;
  EXPECT_EQ(std::memcmp(&A.CertifiedVolumeFraction,
                        &B.CertifiedVolumeFraction, sizeof(double)),
            0)
      << What << ": fractions differ in some bit ("
      << A.CertifiedVolumeFraction << " vs " << B.CertifiedVolumeFraction
      << ")";
}

void expectSameSplit(const SplitResult &A, const SplitResult &B,
                     const char *What) {
  EXPECT_EQ(std::memcmp(&A.CertifiedFraction, &B.CertifiedFraction,
                        sizeof(double)),
            0)
      << What;
  EXPECT_EQ(A.NumCertified, B.NumCertified) << What;
  EXPECT_EQ(A.NumVerifierCalls, B.NumVerifierCalls) << What;
  EXPECT_EQ(A.NumWaves, B.NumWaves) << What;
  ASSERT_EQ(A.Regions.size(), B.Regions.size()) << What;
  for (size_t I = 0; I < A.Regions.size(); ++I) {
    EXPECT_EQ(A.Regions[I].Path, B.Regions[I].Path) << What << " #" << I;
    EXPECT_EQ(A.Regions[I].CertifiedClass, B.Regions[I].CertifiedClass)
        << What << " #" << I;
    EXPECT_TRUE(sameVector(A.Regions[I].Lo, B.Regions[I].Lo))
        << What << " #" << I;
    EXPECT_TRUE(sameVector(A.Regions[I].Hi, B.Regions[I].Hi))
        << What << " #" << I;
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Degenerate boxes (the headline bug)
//===----------------------------------------------------------------------===//

TEST(SplitDegenerateTest, RootCertifiesDegenerateBox) {
  SplitFixture &Fix = fixture();
  ASSERT_GE(Fix.SampleClass, 0);
  Vector Lo, Hi;
  degenerateBox(Fix.Sample, 0.005, 2, Lo, Hi);
  CraftVerifier Plain(Fix.Model, splitConfig());
  if (!Plain.verifyRegion(Lo, Hi, Fix.SampleClass).Certified)
    GTEST_SKIP() << "fixture sample not plainly certifiable";

  // The box is degenerate in dimensions 2..4: the old volume bookkeeping
  // reported CertifiedVolumeFraction = 0/0 = 0 and could never certify.
  BranchAndBoundResult Res = verifyRobustnessSplit(
      Fix.Model, splitConfig(), Lo, Hi, Fix.SampleClass, /*MaxDepth=*/3);
  EXPECT_TRUE(Res.Certified);
  EXPECT_FALSE(Res.Refuted);
  EXPECT_DOUBLE_EQ(Res.CertifiedVolumeFraction, 1.0);
  EXPECT_EQ(Res.NumVerifierCalls, 1u) << "the root region must certify";
}

TEST(SplitDegenerateTest, PointBoxCertifies) {
  SplitFixture &Fix = fixture();
  Vector Lo = Fix.Sample, Hi = Fix.Sample; // Degenerate in every dim.
  CraftVerifier Plain(Fix.Model, splitConfig());
  if (!Plain.verifyRegion(Lo, Hi, Fix.SampleClass).Certified)
    GTEST_SKIP() << "point box not plainly certifiable";
  BranchAndBoundResult Res = verifyRobustnessSplit(
      Fix.Model, splitConfig(), Lo, Hi, Fix.SampleClass, /*MaxDepth=*/2);
  EXPECT_TRUE(Res.Certified);
  EXPECT_DOUBLE_EQ(Res.CertifiedVolumeFraction, 1.0);
}

TEST(SplitDegenerateTest, MustSplitDegenerateBoxCertifiesVolume) {
  // Find a widening plain Craft cannot certify, then show the split path
  // still accounts certified volume on the degenerate box (the old code
  // pinned the fraction to 0 regardless of what certified).
  SplitFixture &Fix = fixture();
  CraftVerifier Plain(Fix.Model, splitConfig());
  FixpointSolver Solver(Fix.Model, Splitting::PeacemanRachford);
  for (double Eps = 0.02; Eps < 0.5; Eps *= 1.5) {
    Vector Lo, Hi;
    degenerateBox(Fix.Sample, Eps, 2, Lo, Hi);
    if (Plain.verifyRegion(Lo, Hi, Fix.SampleClass).Certified)
      continue;
    BranchAndBoundResult Res = verifyRobustnessSplit(
        Fix.Model, splitConfig(), Lo, Hi, Fix.SampleClass, /*MaxDepth=*/6);
    if (Res.Refuted) {
      // Genuinely false at this widening: the witness must be real.
      EXPECT_NE(Solver.predict(Res.Counterexample), Fix.SampleClass);
      return;
    }
    EXPECT_GT(Res.CertifiedVolumeFraction, 0.0);
    EXPECT_GT(Res.NumVerifierCalls, 1u);
    EXPECT_GT(Res.NumWaves, 1u);
    return;
  }
  GTEST_SKIP() << "plain Craft certified every widening probed";
}

TEST(SplitDegenerateTest, GlobalSplittingCertifiesDegenerateBox) {
  SplitFixture &Fix = fixture();
  Vector Lo, Hi;
  degenerateBox(Fix.Sample, 0.005, 2, Lo, Hi);
  SplitResult Res = certifyByDomainSplitting(Fix.Model, splitConfig(), Lo,
                                             Hi, /*MaxDepth=*/4);
  // The old volume ratio reported 0% on any fixed-dimension slice.
  EXPECT_GT(Res.CertifiedFraction, 0.0);
  EXPECT_GT(Res.NumCertified, 0u);
  for (const SplitRegion &Region : Res.Regions)
    EXPECT_GE(Region.Path, 1u) << "leaves must carry their bisection path";
}

TEST(SplitEngineTest, MeasureIgnoresDegenerateDimensions) {
  Vector Lo{0.0, 0.25, 0.5}, Hi{0.5, 0.25, 1.0};
  EXPECT_DOUBLE_EQ(measureOf(Lo, Hi), 0.25);
  // A point box has measure 1 (the empty product), never 0.
  EXPECT_DOUBLE_EQ(measureOf(Vector{0.3, 0.4}, Vector{0.3, 0.4}), 1.0);
}

//===----------------------------------------------------------------------===//
// Determinism: jobs = 1 vs N
//===----------------------------------------------------------------------===//

TEST(SplitDeterminismTest, BnBOutcomesAreByteIdenticalAcrossJobs) {
  SplitFixture &Fix = fixture();
  Vector Lo, Hi;
  degenerateBox(Fix.Sample, 0.08, 4, Lo, Hi); // Wide enough to force work.
  SplitOptions Serial;
  Serial.MaxDepth = 5;
  Serial.Jobs = 1;
  BranchAndBoundResult Baseline = verifyRobustnessSplit(
      Fix.Model, splitConfig(), Lo, Hi, Fix.SampleClass, Serial);
  EXPECT_GT(Baseline.NumVerifierCalls + (Baseline.Refuted ? 1u : 0u), 1u)
      << "workload too trivial to exercise the waves";
  for (int Jobs : {2, 4, -1}) {
    SplitOptions Parallel = Serial;
    Parallel.Jobs = Jobs;
    BranchAndBoundResult Res = verifyRobustnessSplit(
        Fix.Model, splitConfig(), Lo, Hi, Fix.SampleClass, Parallel);
    expectSameBnB(Baseline, Res,
                  ("jobs=" + std::to_string(Jobs)).c_str());
  }
}

TEST(SplitDeterminismTest, GlobalOutcomesAreByteIdenticalAcrossJobs) {
  SplitFixture &Fix = fixture();
  SplitResult Baseline =
      certifyByDomainSplitting(Fix.Model, splitConfig(), Vector(5, 0.35),
                               Vector(5, 0.65), /*MaxDepth=*/6, /*Jobs=*/1);
  EXPECT_GT(Baseline.Regions.size(), 1u);
  SplitResult Par =
      certifyByDomainSplitting(Fix.Model, splitConfig(), Vector(5, 0.35),
                               Vector(5, 0.65), /*MaxDepth=*/6, /*Jobs=*/3);
  expectSameSplit(Baseline, Par, "jobs=3");
}

//===----------------------------------------------------------------------===//
// Early abort on refutation
//===----------------------------------------------------------------------===//

TEST(SplitAbortTest, RootProbeRefutesWithoutVerifierCalls) {
  SplitFixture &Fix = fixture();
  Vector Lo(5, 0.0), Hi(5, 1.0);
  FixpointSolver Solver(Fix.Model, Splitting::PeacemanRachford);
  Vector Center = 0.5 * (Lo + Hi);
  int WrongClass = (Solver.predict(Center) + 1) % 3;
  BranchAndBoundResult Res = verifyRobustnessSplit(
      Fix.Model, splitConfig(), Lo, Hi, WrongClass, /*MaxDepth=*/6);
  ASSERT_TRUE(Res.Refuted);
  EXPECT_FALSE(Res.RefutedByPgd);
  EXPECT_EQ(Res.NumVerifierCalls, 0u)
      << "a refuting probe wave must abort before any verifier call";
  EXPECT_EQ(Res.CounterexamplePath, 1u);
  EXPECT_TRUE(sameVector(Res.Counterexample, Center));
}

TEST(SplitAbortTest, DeepRefutationIsDeterministicAcrossJobs) {
  SplitFixture &Fix = fixture();
  Vector Lo(5, 0.0), Hi(5, 1.0);
  SplitOptions Serial;
  Serial.MaxDepth = 8;
  Serial.Jobs = 1;
  BranchAndBoundResult Baseline = verifyRobustnessSplit(
      Fix.Model, splitConfig(), Lo, Hi, Fix.SampleClass, Serial);
  ASSERT_TRUE(Baseline.Refuted)
      << "the whole input cube must cross a decision boundary";
  FixpointSolver Solver(Fix.Model, Splitting::PeacemanRachford);
  EXPECT_NE(Solver.predict(Baseline.Counterexample), Fix.SampleClass);
  SplitOptions Parallel = Serial;
  Parallel.Jobs = 4;
  BranchAndBoundResult Res = verifyRobustnessSplit(
      Fix.Model, splitConfig(), Lo, Hi, Fix.SampleClass, Parallel);
  expectSameBnB(Baseline, Res, "refuting run, jobs=4");
}

//===----------------------------------------------------------------------===//
// PGD probes on undecided leaves
//===----------------------------------------------------------------------===//

TEST(SplitPgdProbeTest, ProbesRefuteUndecidedLeaves) {
  SplitFixture &Fix = fixture();
  Vector Lo(5, 0.0), Hi(5, 1.0);
  FixpointSolver Solver(Fix.Model, Splitting::PeacemanRachford);
  int Target = Solver.predict(0.5 * (Lo + Hi));
  // Depth 0: the root is the only region; its center classifies to Target
  // so nothing refutes concretely, the verifier cannot certify the whole
  // cube, and the root becomes an undecided leaf — only the PGD probe can
  // find the (existing) counterexample.
  SplitOptions Opts;
  Opts.MaxDepth = 0;
  Opts.PgdProbes = true;
  Opts.Pgd.InputLo = 0.0;
  Opts.Pgd.InputHi = 1.0;
  BranchAndBoundResult Res = verifyRobustnessSplit(
      Fix.Model, splitConfig(), Lo, Hi, Target, Opts);
  ASSERT_TRUE(Res.Refuted) << "PGD must refute over the whole input cube";
  EXPECT_TRUE(Res.RefutedByPgd);
  EXPECT_EQ(Res.CounterexamplePath, 1u);
  EXPECT_EQ(Res.PgdSeed, taskSeed(Opts.ProbeSeedBase, 1));
  EXPECT_EQ(Res.NumPgdProbes, 1u);
  EXPECT_NE(Solver.predict(Res.Counterexample), Target);
  for (size_t I = 0; I < Res.Counterexample.size(); ++I) {
    EXPECT_GE(Res.Counterexample[I], 0.0);
    EXPECT_LE(Res.Counterexample[I], 1.0);
  }
}

//===----------------------------------------------------------------------===//
// Driver wiring
//===----------------------------------------------------------------------===//

namespace {

std::string specText(const SplitFixture &Fix, const Vector &Lo,
                     const Vector &Hi, int Target,
                     const std::string &Extra) {
  std::string S = "model " + Fix.ModelPath + "\ninput box\nlo";
  char Buf[40];
  for (size_t I = 0; I < Lo.size(); ++I) {
    std::snprintf(Buf, sizeof(Buf), " %.17g", Lo[I]);
    S += Buf;
  }
  S += "\nhi";
  for (size_t I = 0; I < Hi.size(); ++I) {
    std::snprintf(Buf, sizeof(Buf), " %.17g", Hi[I]);
    S += Buf;
  }
  S += "\noutput robust " + std::to_string(Target) +
       "\nverifier craft\nalpha1 0.5\nlambda-opt 0\n" + Extra;
  return S;
}

} // namespace

TEST(SplitDriverTest, ParsesSplitJobs) {
  SpecParseResult R = parseSpec("model m.bin\ninput box\nlo 0\nhi 1\n"
                                "output robust 0\nsplit-depth 3\n"
                                "split-jobs 4\n");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Spec->SplitJobs, 4);
  // 0 = all hardware threads; negatives are rejected.
  EXPECT_FALSE(parseSpec("model m.bin\ninput box\nlo 0\nhi 1\n"
                         "output robust 0\nsplit-jobs -2\n")
                   .ok());
}

TEST(SplitDriverTest, DegenerateSplitSpecCertifiesAcrossSplitJobs) {
  SplitFixture &Fix = fixture();
  Vector Lo, Hi;
  degenerateBox(Fix.Sample, 0.005, 2, Lo, Hi);
  CraftVerifier Plain(Fix.Model, splitConfig());
  if (!Plain.verifyRegion(Lo, Hi, Fix.SampleClass).Certified)
    GTEST_SKIP() << "fixture sample not plainly certifiable";
  RunOutcome Serial, Parallel;
  for (auto *Pair : {&Serial, &Parallel}) {
    std::string Extra = Pair == &Serial ? "split-depth 2\nsplit-jobs 1\n"
                                        : "split-depth 2\nsplit-jobs 3\n";
    SpecParseResult R =
        parseSpec(specText(Fix, Lo, Hi, Fix.SampleClass, Extra));
    ASSERT_TRUE(R.ok());
    *Pair = runSpec(*R.Spec);
    EXPECT_TRUE(Pair->Certified) << Pair->Detail;
    EXPECT_FALSE(Pair->Error);
  }
  // split-jobs is a pure performance knob.
  EXPECT_EQ(Serial.Certified, Parallel.Certified);
  EXPECT_EQ(Serial.Detail, Parallel.Detail);
}

TEST(SplitDriverTest, RefutedSplitSpecCarriesCounterexample) {
  SplitFixture &Fix = fixture();
  FixpointSolver Solver(Fix.Model, Splitting::PeacemanRachford);
  Vector Lo(5, 0.0), Hi(5, 1.0);
  int WrongClass = (Solver.predict(0.5 * (Lo + Hi)) + 1) % 3;
  SpecParseResult R = parseSpec(
      specText(Fix, Lo, Hi, WrongClass, "split-depth 4\n"));
  ASSERT_TRUE(R.ok());
  RunOutcome Out = runSpec(*R.Spec);
  ASSERT_TRUE(Out.Refuted);
  ASSERT_FALSE(Out.Counterexample.empty());
  EXPECT_NE(Solver.predict(Out.Counterexample), WrongClass);
  EXPECT_NE(Out.Detail.find("region path"), std::string::npos);
}

TEST(SplitDriverTest, CertificateOnSplitRunIsDiagnosedWithoutReproving) {
  SplitFixture &Fix = fixture();
  Vector Lo, Hi;
  degenerateBox(Fix.Sample, 0.005, 2, Lo, Hi);
  CraftVerifier Plain(Fix.Model, splitConfig());
  if (!Plain.verifyRegion(Lo, Hi, Fix.SampleClass).Certified)
    GTEST_SKIP() << "fixture sample not plainly certifiable";
  SpecParseResult R = parseSpec(specText(
      Fix, Lo, Hi, Fix.SampleClass,
      "split-depth 2\ncertificate /tmp/craft_split_cert.bin\n"));
  ASSERT_TRUE(R.ok());
  RunOutcome Out = runSpec(*R.Spec);
  ASSERT_TRUE(Out.Certified) << Out.Detail;
  EXPECT_FALSE(Out.CertificateWritten);
  EXPECT_NE(Out.Detail.find("certificates are not yet supported for split"),
            std::string::npos)
      << Out.Detail;
  EXPECT_EQ(Out.Detail.find("witness construction failed"),
            std::string::npos)
      << "the misleading failure text must be gone: " << Out.Detail;
}

TEST(SplitDriverTest, SpecModelMismatchesAreErrors) {
  SplitFixture &Fix = fixture();
  // Wrong input dimension.
  SpecParseResult R = parseSpec("model " + Fix.ModelPath +
                                "\ninput box\nlo 0 0\nhi 1 1\n"
                                "output robust 0\n");
  ASSERT_TRUE(R.ok());
  RunOutcome Out = runSpec(*R.Spec);
  EXPECT_TRUE(Out.ModelLoaded);
  EXPECT_TRUE(Out.Error);

  // Target class past the model's output dimension.
  R = parseSpec("model " + Fix.ModelPath +
                "\ninput box\nlo 0 0 0 0 0\nhi 1 1 1 1 1\n"
                "output robust 99\n");
  ASSERT_TRUE(R.ok());
  Out = runSpec(*R.Spec);
  EXPECT_TRUE(Out.ModelLoaded);
  EXPECT_TRUE(Out.Error);
  EXPECT_NE(Out.Detail.find("out of range"), std::string::npos);

  // Negative target class (unreachable through the parser, reachable
  // through the library API and the serve protocol).
  VerificationSpec Spec = *R.Spec;
  Spec.TargetClass = -3;
  Out = runSpec(Spec);
  EXPECT_TRUE(Out.Error);
}

TEST(SplitDriverTest, GlobalSplitCertificationRuns) {
  SplitFixture &Fix = fixture();
  Vector Lo, Hi;
  degenerateBox(Fix.Sample, 0.01, 2, Lo, Hi);
  SpecParseResult R =
      parseSpec(specText(Fix, Lo, Hi, Fix.SampleClass, ""));
  ASSERT_TRUE(R.ok());
  SplitRunOutcome Out = runSplitCertification(*R.Spec, /*Jobs=*/2,
                                              /*MaxDepth=*/3);
  ASSERT_TRUE(Out.ModelLoaded && !Out.Error) << Out.Detail;
  EXPECT_GT(Out.Split.CertifiedFraction, 0.0);
  EXPECT_GT(Out.Split.NumVerifierCalls, 0u);

  // Dimension mismatch surfaces as an error here too.
  VerificationSpec Bad = *R.Spec;
  Bad.InLo = Vector(2, 0.0);
  Bad.InHi = Vector(2, 1.0);
  SplitRunOutcome BadOut = runSplitCertification(Bad, 1, 2);
  EXPECT_TRUE(BadOut.ModelLoaded);
  EXPECT_TRUE(BadOut.Error);
}
