//===- core/ScalarFixpoint.cpp --------------------------------------------===//

#include "core/ScalarFixpoint.h"

#include <cassert>
#include <cmath>

using namespace craft;

double craft::solveScalarConcrete(const ScalarIterator &It, double X,
                                  double Tol, int MaxIter) {
  double S = It.S0;
  for (int N = 0; N < MaxIter; ++N) {
    double Next = It.ConcreteStep(X, S);
    if (std::fabs(Next - S) < Tol)
      return Next;
    S = Next;
  }
  return S;
}

ScalarAnalysis craft::analyzeScalarCraft(const ScalarIterator &It, double XLo,
                                         double XHi,
                                         const ScalarAnalysisOptions &Opts) {
  ScalarAnalysis Out;
  AffineForm X = AffineForm::range(XLo, XHi);
  double S0 = Opts.InitAtCenterFixpoint
                  ? solveScalarConcrete(It, 0.5 * (XLo + XHi))
                  : It.S0;
  AffineForm S = AffineForm::constant(S0);

  // Phase 1: joins-free iteration until containment (Thm 3.1). The iterates
  // stay correlated with the input (shared noise symbols), so a plain
  // interval comparison would be an invalid Thm 3.1 premise: it certifies
  // only the input-correlated (x, s) pairs while the theorem quantifies per
  // input. The slice-wise relational check runs the theorem's argument per
  // input slice instead (see AffineForm::containsRelational), keeping the
  // correlation precision that decorrelating consolidation would destroy.
  std::vector<uint64_t> InputIds;
  for (const auto &[Id, Coef] : X.terms())
    InputIds.push_back(Id);
  bool Contained = false;
  AffineForm LastCons;
  bool HaveCons = false;
  for (int N = 1; N <= Opts.MaxIterations; ++N) {
    Out.Iterations = N;
    if (Opts.ConsolidateEvery > 0 && (N - 1) % Opts.ConsolidateEvery == 0) {
      S = S.consolidated(Opts.WMul * S.radius() + Opts.WAdd);
      LastCons = S;
      HaveCons = true;
    }
    AffineForm Next = It.AbstractStep(X, S);
    Out.WidthTrace.push_back(Next.width());
    // Either check is individually a valid premise: against the raw
    // previous iterate (Thm 3.1 per input slice) or against the most
    // recent consolidated ancestor (the s-step form, Thm B.1).
    bool Hit =
        (N > 1 && S.containsRelational(Next, InputIds, Opts.ContainTol)) ||
        (HaveCons &&
         LastCons.containsRelational(Next, InputIds, Opts.ContainTol));
    if (Hit) {
      Contained = true;
      S = Next;
      break;
    }
    S = Next;
    if (S.width() > Opts.DivergenceWidth)
      break;
  }
  Out.Contained = Contained;
  if (!Contained)
    return Out;

  // Phase 2: fixpoint-set-preserving tightening (Thm 3.3); keep the best.
  AffineForm Best = S;
  for (int N = 0; N < Opts.TightenSteps; ++N) {
    S = It.AbstractStep(X, S);
    Out.WidthTrace.push_back(S.width());
    if (S.width() < Best.width())
      Best = S;
  }
  Out.Lo = Best.lo();
  Out.Hi = Best.hi();
  return Out;
}

ScalarAnalysis craft::analyzeScalarKleene(const ScalarIterator &It,
                                          double XLo, double XHi,
                                          const ScalarAnalysisOptions &Opts) {
  ScalarAnalysis Out;
  AffineForm X = AffineForm::range(XLo, XHi);
  double S0 = Opts.InitAtCenterFixpoint
                  ? solveScalarConcrete(It, 0.5 * (XLo + XHi))
                  : It.S0;
  AffineForm S = AffineForm::constant(S0);

  // Without a termination-condition transformer the generic Kleene driver
  // unrolls a fixed prefix, then joins every subsequent iterate into the
  // accumulator with a widening probe for post-fixpoint detection.
  for (int N = 1; N <= Opts.MaxIterations; ++N) {
    Out.Iterations = N;
    AffineForm Next = It.AbstractStep(X, S);
    if (N <= Opts.UnrollSteps) {
      S = Next;
    } else {
      S = AffineForm::join(S, Next);
      // Post-fixpoint probe with the slice-wise relational check (see the
      // phase-1 comment in analyzeScalarCraft): the widened accumulator is
      // a valid post-fixpoint witness only per input slice.
      AffineForm Probe = S.widened(0.02 * S.radius() + 1e-12);
      std::vector<uint64_t> InputIds;
      for (const auto &[Id, Coef] : X.terms())
        InputIds.push_back(Id);
      if (Probe.containsRelational(It.AbstractStep(X, Probe), InputIds,
                                   Opts.ContainTol)) {
        Out.Contained = true;
        S = Probe;
        Out.WidthTrace.push_back(S.width());
        break;
      }
    }
    Out.WidthTrace.push_back(S.width());
    if (S.width() > Opts.DivergenceWidth)
      break;
  }
  if (!Out.Contained)
    return Out;
  Out.Lo = S.lo();
  Out.Hi = S.hi();
  return Out;
}

//===----------------------------------------------------------------------===//
// Case-study iterators
//===----------------------------------------------------------------------===//

ScalarIterator craft::makeDampedLinearIterator(double A, double B,
                                               double Damping) {
  assert(std::fabs(1.0 - Damping + Damping * A) < 1.0 &&
         "damped linear iterator must be contractive");
  ScalarIterator It;
  It.Name = "damped-linear";
  It.ConcreteStep = [=](double X, double S) {
    return (1.0 - Damping) * S + Damping * (A * S + B * X);
  };
  It.AbstractStep = [=](const AffineForm &X, const AffineForm &S) {
    return S * (1.0 - Damping + Damping * A) + X * (Damping * B);
  };
  return It;
}

ScalarIterator craft::makeDampedCosineIterator(double K) {
  assert(std::fabs(K) < 1.0 && "cosine iterator contraction needs |k| < 1");
  ScalarIterator It;
  It.Name = "damped-cosine";
  It.ConcreteStep = [=](double X, double S) { return K * std::cos(S) + X; };
  It.AbstractStep = [=](const AffineForm &X, const AffineForm &S) {
    return S.cos() * K + X;
  };
  return It;
}

ScalarIterator craft::makeTanhNeuronIterator(double W) {
  assert(std::fabs(W) < 1.0 && "tanh neuron contraction needs |w| < 1");
  ScalarIterator It;
  It.Name = "tanh-neuron";
  It.ConcreteStep = [=](double X, double S) { return std::tanh(W * S + X); };
  It.AbstractStep = [=](const AffineForm &X, const AffineForm &S) {
    return (S * W + X).tanh();
  };
  return It;
}

ScalarIterator craft::makeNewtonSqrtIterator() {
  ScalarIterator It;
  It.Name = "newton-sqrt";
  It.S0 = 1.0;
  It.ConcreteStep = [](double X, double S) { return 0.5 * (S + X / S); };
  It.AbstractStep = [](const AffineForm &X, const AffineForm &S) {
    return (S + X / S) * 0.5;
  };
  return It;
}

ScalarIterator craft::makeHouseholderIterator() {
  ScalarIterator It;
  It.Name = "householder-rsqrt";
  It.S0 = 0.125;
  It.ConcreteStep = [](double X, double S) {
    double H = 1.0 - X * S * S;
    return S + S * (0.5 * H + 0.375 * H * H);
  };
  It.AbstractStep = [](const AffineForm &X, const AffineForm &S) {
    AffineForm H = (X * S.square()) * -1.0 + 1.0;
    AffineForm Update = H * 0.5 + H.square() * 0.375;
    return S + S * Update;
  };
  return It;
}
