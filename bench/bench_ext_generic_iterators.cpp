//===- bench/bench_ext_generic_iterators.cpp ------------------------------===//
//
// Extension experiment (Section 3 generality): Craft vs Kleene across
// generic scalar fixpoint iterators and input widths. For each iterator
// family the harness sweeps the input radius and reports the looseness of
// both analyses relative to the sampled exact fixpoint set, locating the
// radius at which Kleene stops converging while the joins-free driver
// still delivers a sound result — the Table 5 phenomenon, generalized.
//
//===----------------------------------------------------------------------===//

#include "core/ScalarFixpoint.h"
#include "support/Table.h"

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

using namespace craft;

namespace {

struct Family {
  std::string Name;
  ScalarIterator It;
  double Center;
  std::vector<double> Radii;
};

/// Looseness = (abstract width) / (exact width); 0 for divergence.
double looseness(const ScalarAnalysis &A, double ExactLo, double ExactHi) {
  if (!A.Contained)
    return 0.0;
  double Exact = std::max(ExactHi - ExactLo, 1e-12);
  return (A.Hi - A.Lo) / Exact;
}

} // namespace

int main() {
  printf("Extension: generic fixpoint iterators, Craft vs Kleene across\n"
         "input widths (looseness = abstract/exact width; '-' diverged)\n\n");

  std::vector<Family> Families = {
      {"damped-cosine k=0.5", makeDampedCosineIterator(0.5), 0.0,
       {0.1, 0.3, 0.6, 1.0, 1.5}},
      {"tanh-neuron w=0.8", makeTanhNeuronIterator(0.8), 0.0,
       {0.1, 0.3, 0.6, 1.0, 1.5}},
      {"newton-sqrt", makeNewtonSqrtIterator(), 20.0,
       {0.5, 2.0, 4.5, 8.0, 12.0}},
      {"householder-rsqrt", makeHouseholderIterator(), 20.0,
       {0.5, 2.0, 4.5, 6.0, 8.0}},
  };

  for (const Family &F : Families) {
    TablePrinter T({"radius", "exact width", "craft loose", "craft iters",
                    "kleene loose"});
    for (double R : F.Radii) {
      double XLo = F.Center - R, XHi = F.Center + R;
      double SMin = 1e300, SMax = -1e300;
      for (int I = 0; I <= 128; ++I) {
        double X = XLo + (XHi - XLo) * I / 128.0;
        double S = solveScalarConcrete(F.It, X);
        SMin = std::min(SMin, S);
        SMax = std::max(SMax, S);
      }
      ScalarAnalysis Craft = analyzeScalarCraft(F.It, XLo, XHi);
      ScalarAnalysis Kleene = analyzeScalarKleene(F.It, XLo, XHi);
      double LC = looseness(Craft, SMin, SMax);
      double LK = looseness(Kleene, SMin, SMax);
      T.addRow({fmt(R, 2), fmt(SMax - SMin, 4),
                Craft.Contained ? fmt(LC, 3) : "-",
                fmt((long)Craft.Iterations),
                Kleene.Contained ? fmt(LK, 3) : "-"});
    }
    printf("== %s ==\n", F.Name.c_str());
    T.print();
    printf("\n");
  }

  printf("Expected shape: Craft looseness stays close to 1 and degrades\n"
         "gracefully with radius; Kleene is uniformly looser and drops out\n"
         "(diverges) at a smaller radius in each family.\n");
  return 0;
}
