//===- tool/SpecParser.h - Verification spec files --------------*- C++ -*-===//
//
// Part of the Craft reproduction (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parser for the `craft` CLI's verification spec files: a small line-based
/// format describing one query — model, input region, postcondition, and
/// verifier knobs. Example:
///
///   # Robustness of a test image.
///   model models/mnist_fc40.bin
///   input linf
///     center fill 0.5 784
///     epsilon 0.05
///     clamp 0 1
///   output robust 3
///   verifier craft
///   alpha1 0.1
///   split-depth 4
///   certificate out.cert
///
/// `input box` with explicit `lo .../hi ...` vectors is the general form;
/// `center fill <value> <n>` broadcasts a constant, `center <v1> <v2> ...`
/// lists values. Diagnostics carry line/column and a message; parsing
/// never exits the process (library-friendly).
///
/// A spec file may contain several `input` blocks; each becomes one query
/// sharing the file's model, postcondition, and verifier knobs — the batch
/// form the parallel driver (`runSpecBatch`, `craft verify --jobs N`) fans
/// out across workers. `attack on` enables PGD refutation of uncertified
/// l-inf queries and `seed <n>` pins its RNG seed (0 or absent = a
/// deterministic per-query seed derived from the query's index).
/// `split-depth <n>` engages the branch-and-bound split engine and
/// `split-jobs <n>` fans its region waves out across n worker threads
/// (0 = all hardware threads) without changing any outcome.
///
/// `domain <box|zono|chzono>` selects the abstract domain the craft
/// engine runs in, and `cascade <off|adapt|full|rung,rung,...>` walks a
/// cheap-first domain cascade before the spec's own domain (see
/// tool/Cascade.h). Both require the craft engine.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFT_TOOL_SPECPARSER_H
#define CRAFT_TOOL_SPECPARSER_H

#include "linalg/Matrix.h"
#include "tool/Cascade.h"

#include <optional>
#include <string>
#include <vector>

namespace craft {

/// Which engine executes the query.
enum class SpecVerifier { Craft, Box, Crown, Lipschitz };

/// A parsed verification query.
struct VerificationSpec {
  std::string ModelPath;
  /// Input region, always normalized to a box.
  Vector InLo, InHi;
  /// l-inf form metadata (kept for reporting; empty center = box form).
  Vector Center;
  double Epsilon = 0.0;
  double ClampLo = 0.0, ClampHi = 1.0;
  int TargetClass = -1;
  SpecVerifier Verifier = SpecVerifier::Craft;
  /// Abstract domain the craft engine runs in (`domain` directive /
  /// --domain; the `box` engine shorthand pins it to Box).
  VerifierDomain Domain = VerifierDomain::CHZono;
  /// Cheap-first domain cascade (`cascade` directive / --cascade): walk
  /// cheaper rungs first, escalating until one certifies or the spec's
  /// own domain has run. Off/Unset = single-rung historic behavior.
  CascadePolicy Cascade;
  /// Knob overrides (< 0 / 0 = library default).
  double Alpha1 = -1.0;
  double Alpha2 = -1.0;
  int MaxIterations = 0;
  int LambdaOptLevel = -1;
  /// Branch-and-bound split budget for the craft engine (0 = no splits).
  int SplitDepth = 0;
  /// Worker threads for the split engine (0 = all hardware threads). A
  /// pure performance knob: split outcomes are byte-identical for every
  /// value, so it is excluded from the canonical spec form.
  int SplitJobs = 1;
  /// Emit a proof witness here when non-empty (Craft only). Multi-input
  /// specs write one file per query (".<index>" suffix after the first).
  std::string CertificatePath;
  /// Attempt PGD refutation when a query is not certified (l-inf only).
  bool Attack = false;
  /// PGD seed; 0 = derive per task from the batch index (see runSpecBatch).
  uint64_t AttackSeed = 0;
};

/// A parse diagnostic (1-based line and column).
struct SpecDiagnostic {
  int Line = 0;
  int Column = 0;
  std::string Message;
  std::string render(const std::string &FileName) const;
};

/// Parse result: the parsed queries or diagnostics (never both empty).
struct SpecParseResult {
  /// The first query — the whole spec for single-input files.
  std::optional<VerificationSpec> Spec;
  /// Every query, one per `input` block, in file order.
  std::vector<VerificationSpec> Specs;
  std::vector<SpecDiagnostic> Diagnostics;
  bool ok() const { return Spec.has_value(); }
};

/// Parses spec text (\p Source). \p FileName is used in diagnostics only.
SpecParseResult parseSpec(const std::string &Source,
                          const std::string &FileName = "<spec>");

/// Reads and parses a spec file; an unreadable file yields a diagnostic.
SpecParseResult parseSpecFile(const std::string &Path);

} // namespace craft

#endif // CRAFT_TOOL_SPECPARSER_H
