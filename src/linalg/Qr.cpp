//===- linalg/Qr.cpp ------------------------------------------------------===//

#include "linalg/Qr.h"

#include <algorithm>
#include <cmath>

using namespace craft;

QrResult craft::qr(const Matrix &A) {
  const size_t M = A.rows();
  const size_t N = A.cols();
  QrResult Out;
  Out.R = A;
  Out.Q = Matrix::identity(M);

  const size_t Steps = std::min(M == 0 ? 0 : M - 1, N);
  for (size_t K = 0; K < Steps; ++K) {
    // Build the Householder reflector annihilating R(K+1..M-1, K).
    double NormX = 0.0;
    for (size_t R = K; R < M; ++R)
      NormX += Out.R(R, K) * Out.R(R, K);
    NormX = std::sqrt(NormX);
    if (NormX < 1e-300)
      continue;
    double Alpha = Out.R(K, K) >= 0.0 ? -NormX : NormX;
    Vector V(M, 0.0);
    V[K] = Out.R(K, K) - Alpha;
    for (size_t R = K + 1; R < M; ++R)
      V[R] = Out.R(R, K);
    double VNorm2 = 0.0;
    for (size_t R = K; R < M; ++R)
      VNorm2 += V[R] * V[R];
    if (VNorm2 < 1e-300)
      continue;
    double Beta = 2.0 / VNorm2;

    // R <- (I - beta v v^T) R.
    for (size_t C = K; C < N; ++C) {
      double Dot = 0.0;
      for (size_t R = K; R < M; ++R)
        Dot += V[R] * Out.R(R, C);
      Dot *= Beta;
      for (size_t R = K; R < M; ++R)
        Out.R(R, C) -= Dot * V[R];
    }
    // Q <- Q (I - beta v v^T).
    for (size_t R = 0; R < M; ++R) {
      double Dot = 0.0;
      for (size_t C = K; C < M; ++C)
        Dot += Out.Q(R, C) * V[C];
      Dot *= Beta;
      for (size_t C = K; C < M; ++C)
        Out.Q(R, C) -= Dot * V[C];
    }
  }
  return Out;
}

size_t craft::matrixRank(const Matrix &A, double Tol) {
  if (A.rows() == 0 || A.cols() == 0)
    return 0;
  QrResult Qr = qr(A);
  const size_t D = std::min(A.rows(), A.cols());
  double MaxDiag = 0.0;
  for (size_t I = 0; I < D; ++I)
    MaxDiag = std::max(MaxDiag, std::fabs(Qr.R(I, I)));
  if (MaxDiag == 0.0)
    return 0;
  size_t Rank = 0;
  for (size_t I = 0; I < D; ++I)
    if (std::fabs(Qr.R(I, I)) > Tol * MaxDiag)
      ++Rank;
  return Rank;
}
