//===- linalg/Qr.h - Householder QR decomposition ---------------*- C++ -*-===//
//
// Part of the Craft reproduction (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Householder QR factorization with full Q accumulation. Used for rank
/// detection and for completing a rank-deficient column set to a full basis
/// during CH-Zonotope error consolidation (Section 4: "If k <= p, we pick a
/// subset with full rank and complete it to a basis").
///
//===----------------------------------------------------------------------===//

#ifndef CRAFT_LINALG_QR_H
#define CRAFT_LINALG_QR_H

#include "linalg/Matrix.h"

namespace craft {

/// QR factorization A = Q R with Q orthogonal (rows(A) x rows(A)) and R
/// upper trapezoidal (rows(A) x cols(A)).
struct QrResult {
  Matrix Q;
  Matrix R;
};

/// Householder QR of \p A (no pivoting).
QrResult qr(const Matrix &A);

/// Numerical rank of \p A: number of diagonal entries of R above
/// \p Tol * max |R_ii|.
size_t matrixRank(const Matrix &A, double Tol = 1e-10);

} // namespace craft

#endif // CRAFT_LINALG_QR_H
