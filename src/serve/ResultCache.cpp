//===- serve/ResultCache.cpp ----------------------------------------------===//

#include "serve/ResultCache.h"

#include "tool/SpecCanon.h"

using namespace craft;
using namespace craft::serve;

ResultCache::ResultCache(size_t Capacity, size_t Shards) {
  if (Capacity < 1)
    Capacity = 1;
  if (Shards < 1)
    Shards = 1;
  if (Shards > Capacity)
    Shards = Capacity; // No zero-capacity shards.
  PerShardCapacity = (Capacity + Shards - 1) / Shards;
  ShardList.reserve(Shards);
  for (size_t I = 0; I < Shards; ++I)
    ShardList.push_back(std::make_unique<Shard>());
}

ResultCache::Shard &ResultCache::shardFor(const std::string &Key) {
  // FNV-1a, not std::hash: the shard choice (and with it the eviction
  // pattern) is identical on every platform and standard library.
  return *ShardList[fnv1a64(Key.data(), Key.size()) % ShardList.size()];
}

std::optional<RunOutcome> ResultCache::lookup(const std::string &Key) {
  Shard &S = shardFor(Key);
  std::lock_guard<std::mutex> Lock(S.Mutex);
  auto It = S.Index.find(std::string_view(Key));
  if (It == S.Index.end()) {
    ++S.Misses;
    return std::nullopt;
  }
  ++S.Hits;
  S.Lru.splice(S.Lru.begin(), S.Lru, It->second); // Refresh recency.
  return It->second->second;
}

void ResultCache::insert(const std::string &Key,
                         const RunOutcome &Outcome) {
  Shard &S = shardFor(Key);
  std::lock_guard<std::mutex> Lock(S.Mutex);
  auto It = S.Index.find(std::string_view(Key));
  if (It != S.Index.end()) {
    It->second->second = Outcome;
    S.Lru.splice(S.Lru.begin(), S.Lru, It->second);
    return;
  }
  if (S.Lru.size() >= PerShardCapacity) {
    S.Index.erase(std::string_view(S.Lru.back().first));
    S.Lru.pop_back();
    ++S.Evictions;
  }
  S.Lru.emplace_front(Key, Outcome);
  S.Index.emplace(std::string_view(S.Lru.front().first), S.Lru.begin());
  ++S.Insertions;
}

ResultCache::Stats ResultCache::stats() const {
  Stats Out;
  for (const auto &SPtr : ShardList) {
    Shard &S = *SPtr;
    std::lock_guard<std::mutex> Lock(S.Mutex);
    Out.Hits += S.Hits;
    Out.Misses += S.Misses;
    Out.Insertions += S.Insertions;
    Out.Evictions += S.Evictions;
    Out.Entries += S.Lru.size();
  }
  return Out;
}
