//===- tools/craft_lint/main.cpp - craft-lint CLI -------------------------===//

#include "Lint.h"

#include <cstdio>

int main(int argc, char **argv) {
  std::vector<std::string> Args(argv + 1, argv + argc);
  std::string Out;
  int Code = craft::lint::lintMain(Args, Out);
  std::fputs(Out.c_str(), Code == 2 ? stderr : stdout);
  return Code;
}
