//===- support/RoundedInterval.h - Directed-rounding intervals --*- C++ -*-===//
//
// Part of the Craft reproduction (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Outward-rounded interval scalars for the certificate checker. Every
/// arithmetic result is widened by one ulp on each side via nextafter; in
/// IEEE-754 round-to-nearest, a single +,-,* result differs from the exact
/// value by at most half an ulp, so the widened interval provably brackets
/// the exact result without touching the FPU rounding mode (portable, and
/// safe under -O2 instruction reordering, unlike fesetround).
///
/// This is deliberately the minimal dialect the Thm 4.2 re-validation and
/// the margin re-evaluation need: add, subtract, multiply, divide by a
/// positive scalar interval, absolute value, max-with-zero, and
/// upper/lower extraction. Division is restricted to positive divisors
/// (the only use is delta / (1 - delta)).
///
//===----------------------------------------------------------------------===//

#ifndef CRAFT_SUPPORT_ROUNDEDINTERVAL_H
#define CRAFT_SUPPORT_ROUNDEDINTERVAL_H

#include <cassert>
#include <cmath>
#include <limits>

namespace craft {

/// Widens one step toward -infinity.
inline double roundDown(double X) {
  return std::nextafter(X, -std::numeric_limits<double>::infinity());
}
/// Widens one step toward +infinity.
inline double roundUp(double X) {
  return std::nextafter(X, std::numeric_limits<double>::infinity());
}

/// A closed interval [Lo, Hi] guaranteed to contain the exact value of the
/// computation that produced it.
struct RInterval {
  double Lo = 0.0;
  double Hi = 0.0;

  RInterval() = default;
  /// The exact double \p V (doubles are exact values; no widening needed).
  explicit RInterval(double V) : Lo(V), Hi(V) {}
  RInterval(double Lo, double Hi) : Lo(Lo), Hi(Hi) {
    assert(Lo <= Hi && "inverted interval");
  }

  RInterval operator+(const RInterval &R) const {
    return {roundDown(Lo + R.Lo), roundUp(Hi + R.Hi)};
  }
  RInterval operator-(const RInterval &R) const {
    return {roundDown(Lo - R.Hi), roundUp(Hi - R.Lo)};
  }
  RInterval operator*(const RInterval &R) const {
    double P1 = Lo * R.Lo, P2 = Lo * R.Hi, P3 = Hi * R.Lo, P4 = Hi * R.Hi;
    double Min = std::fmin(std::fmin(P1, P2), std::fmin(P3, P4));
    double Max = std::fmax(std::fmax(P1, P2), std::fmax(P3, P4));
    return {roundDown(Min), roundUp(Max)};
  }
  /// Division by a strictly positive divisor interval.
  RInterval operator/(const RInterval &R) const {
    assert(R.Lo > 0.0 && "division restricted to positive divisors");
    double P1 = Lo / R.Lo, P2 = Lo / R.Hi, P3 = Hi / R.Lo, P4 = Hi / R.Hi;
    double Min = std::fmin(std::fmin(P1, P2), std::fmin(P3, P4));
    double Max = std::fmax(std::fmax(P1, P2), std::fmax(P3, P4));
    return {roundDown(Min), roundUp(Max)};
  }

  RInterval abs() const {
    if (Lo >= 0.0)
      return *this;
    if (Hi <= 0.0)
      return {-Hi, -Lo};
    return {0.0, std::fmax(-Lo, Hi)};
  }

  /// max(0, .) elementwise on the interval.
  RInterval max0() const { return {std::fmax(Lo, 0.0), std::fmax(Hi, 0.0)}; }

  /// Interval hull with another interval.
  RInterval hull(const RInterval &R) const {
    return {std::fmin(Lo, R.Lo), std::fmax(Hi, R.Hi)};
  }

  /// True if the exact value is certainly <= Bound.
  bool certainlyLE(double Bound) const { return Hi <= Bound; }
  /// True if the exact value is certainly > Bound.
  bool certainlyGT(double Bound) const { return Lo > Bound; }
};

} // namespace craft

#endif // CRAFT_SUPPORT_ROUNDEDINTERVAL_H
