//===- domains/OrderReduction.h - PCA consolidation basis -------*- C++ -*-===//
//
// Part of the Craft reproduction (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Consolidation-basis management for CH-Zonotope order reduction. The paper
/// uses the PCA basis of the error matrix (Kopetzki et al. 2017) and, per
/// App. C, only recomputes it every 30 consolidations, reusing the cached
/// basis in between.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFT_DOMAINS_ORDERREDUCTION_H
#define CRAFT_DOMAINS_ORDERREDUCTION_H

#include "domains/CHZonotope.h"
#include "linalg/Matrix.h"

namespace craft {

/// Caches the PCA consolidation basis and its inverse, refreshing it every
/// \c RefreshEvery requests. PCA bases are orthogonal, so the inverse is the
/// transpose.
class ConsolidationBasis {
public:
  /// \p Dim is the state dimensionality p; \p RefreshEvery the number of
  /// consolidations between PCA recomputations (paper: 30).
  explicit ConsolidationBasis(size_t Dim, int RefreshEvery = 30);

  /// Returns the basis to use for the next consolidation, recomputing the
  /// PCA of \p Generators when the refresh counter expires.
  void refresh(const Matrix &Generators);

  const Matrix &basis() const { return Basis; }
  const Matrix &basisInv() const { return BasisInv; }

  /// Forces a PCA recomputation at the next \ref refresh call.
  void invalidate() { Counter = 0; }

private:
  Matrix Basis;
  Matrix BasisInv;
  int RefreshEvery;
  int Counter = 0;
};

/// A proper CH-Zonotope together with the inverse of its generator matrix,
/// the pair the Thm 4.2 containment check consumes.
struct ProperState {
  CHZonotope Z;
  Matrix InvGens;
};

/// Consolidates \p Z (Thm 4.1) with expansion (Eq. 10) against the cached
/// basis of \p Basis (refreshing it on schedule) and returns the proper
/// result with its generator inverse. Because the PCA basis is orthogonal,
/// the inverse is diag(1/c) * Basis^T — no LU factorization needed.
ProperState consolidateProper(const CHZonotope &Z, ConsolidationBasis &Basis,
                              double WMul = 0.0, double WAdd = 0.0);

} // namespace craft

#endif // CRAFT_DOMAINS_ORDERREDUCTION_H
