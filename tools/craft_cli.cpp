//===- tools/craft_cli.cpp - The craft command-line tool ------------------===//
//
// The end-user entry point of the repository:
//
//   craft verify [--jobs N] <spec-file>...   run verification specs
//   craft split [--jobs N] [--depth N] <spec-file>...
//                                            global certification by
//                                            domain splitting
//   craft serve [options]                    run the verification daemon
//   craft client --port N [...] <spec>...    query a running daemon
//   craft info <model.bin>                   print model metadata
//   craft check <model.bin> <cert>           validate a proof witness
//
// Spec files are documented in src/tool/SpecParser.h and README.md. A spec
// file may hold several `input` blocks; all queries from all files form one
// batch that `--jobs N` fans out across N worker threads (0 = all hardware
// threads). Results are printed in input order and are identical for every
// job count.
//
// Exit codes (verify and client; scripts and the serve smoke test branch
// on these):
//   0  every query certified
//   1  at least one query refuted by a concrete counterexample
//   2  usage, spec parse, model load, spec/model mismatch (wrong input
//      dimension, target class out of range), or transport errors
//   3  at least one query undecided (not certified, not refuted — e.g.
//      an exhausted iteration budget), and none refuted
//   4  at least one query cut short by a --deadline-ms budget (and none
//      refuted or errored) — a timing-dependent non-answer, distinct
//      from 3 so scripts can retry with a larger budget
// Errors dominate refutations dominate deadline-exceeded dominate
// undecided: a code >= 1 means "not every query certified", and 2
// additionally means "results incomplete".
// `craft split` reports the certified-volume fraction per query: 0 when
// every query certifies its whole box, 3 when volume is left uncertified,
// 2 on errors. `craft serve` exits 0 on a clean shutdown request and 2 on
// setup errors; `craft info` / `craft check` keep their 0/2 and 0/1/2
// contracts.
//
//===----------------------------------------------------------------------===//

#include "serve/Client.h"
#include "serve/Server.h"
#include "tool/Driver.h"

#include "linalg/Kernels.h"
#include "support/Telemetry.h"
#include "support/TraceJson.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <set>
#include <string>
#include <vector>

using namespace craft;

static int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  craft verify [--jobs N] [--deadline-ms N] [--timings]\n"
      "               [--domain box|zono|chzono]\n"
      "               [--cascade off|adapt|full|rung,...] <spec-file>...\n"
      "  craft split [--jobs N] [--depth N] <spec-file>...\n"
      "  craft serve [--port N] [--stdio] [--jobs N] [--max-batch N]\n"
      "              [--cache-entries N] [--queue-capacity N]\n"
      "              [--high-water N] [--max-conns N]\n"
      "              [--cascade off|adapt|full|rung,...]\n"
      "              [--trace-out FILE]\n"
      "  craft client --port N [--no-cache] [--ping] [--stats]\n"
      "               [--metrics] [--deadline-ms N] [--timeout-ms N]\n"
      "               [--retries N] [--drain] [--shutdown]\n"
      "               [<spec-file>...]\n"
      "  craft info <model.bin>\n"
      "  craft check <model.bin> <certificate.bin>\n"
      "exit codes (verify/client): 0 certified, 1 refuted, 2 error,\n"
      "3 undecided, 4 deadline exceeded\n");
  return 2;
}

namespace {

/// Exit codes of the verify/client contract (see the file header).
enum ExitCode {
  ExitCertified = 0,
  ExitRefuted = 1,
  ExitError = 2,
  ExitUnknown = 3,
  ExitDeadline = 4,
};

/// Folds one outcome into the aggregate exit code: error > refuted >
/// deadline-exceeded > undecided > certified. Load failures and
/// spec/model mismatches (RunOutcome::Error) are both errors: the query
/// never executed, so "undecided" would misreport a broken pipeline. A
/// deadline cut ranks above plain undecided (the budget, not the
/// verifier, decided) but below a refutation found before the cut.
void foldExit(int &Exit, const RunOutcome &Out) {
  int Code = !Out.ModelLoaded || Out.Error ? ExitError
             : Out.Certified               ? ExitCertified
             : Out.Refuted                 ? ExitRefuted
             : Out.DeadlineExceeded        ? ExitDeadline
                                           : ExitUnknown;
  // Severity order is not numeric order (3 and 4 rank below 1 and 2).
  auto Rank = [](int C) {
    return C == ExitError      ? 4
           : C == ExitRefuted  ? 3
           : C == ExitDeadline ? 2
           : C == ExitUnknown  ? 1
                               : 0;
  };
  if (Rank(Code) > Rank(Exit))
    Exit = Code;
}

/// Prints the witness point of a refutation (split refinement and the PGD
/// refutation pass both carry one).
void printCounterexample(const RunOutcome &Out) {
  if (!Out.Refuted || Out.Counterexample.empty())
    return;
  std::printf("counterexample");
  for (double C : Out.Counterexample)
    std::printf(" %.17g", C);
  std::printf("\n");
}

void printOutcome(const VerificationSpec &Spec, const RunOutcome &Out) {
  std::printf("engine       %s\n",
              Spec.Verifier == SpecVerifier::Craft      ? "craft"
              : Spec.Verifier == SpecVerifier::Box      ? "box"
              : Spec.Verifier == SpecVerifier::Crown    ? "crown"
                                                        : "lipschitz");
  std::printf("verdict      %s\n", Out.Certified          ? "CERTIFIED"
                                   : Out.Refuted          ? "REFUTED"
                                   : Out.DeadlineExceeded ? "DEADLINE EXCEEDED"
                                                          : "not certified");
  if (Spec.Verifier == SpecVerifier::Craft ||
      Spec.Verifier == SpecVerifier::Box)
    std::printf("containment  %s\n", Out.Containment ? "yes" : "no");
  std::printf("margin       %.6f\n", Out.MarginLower);
  std::printf("time         %.3f s\n", Out.TimeSeconds);
  if (!Out.CascadeRung.empty() || Out.CascadeEscalations > 0)
    std::printf("cascade      rung %s, %d escalation%s\n",
                Out.CascadeRung.empty() ? "(none)" : Out.CascadeRung.c_str(),
                Out.CascadeEscalations,
                Out.CascadeEscalations == 1 ? "" : "s");
  if (!Out.Detail.empty())
    std::printf("detail       %s\n", Out.Detail.c_str());
  printCounterexample(Out);
  if (!Spec.CertificatePath.empty() && Out.Certified)
    std::printf("certificate  %s\n",
                Out.CertificateWritten ? Spec.CertificatePath.c_str()
                : Spec.SplitDepth > 0  ? "(not supported for split runs)"
                                       : "(construction failed)");
}

/// `craft verify --timings`: the engine-side PhaseBreakdown of one query
/// (the serve-only queue/cache/model slices are always zero here). The
/// solver slice is inclusive of consolidation.
void printTimings(const RunOutcome &Out) {
  if (!Out.Phases.Populated) {
    std::printf("timings      (unavailable: CRAFT_TELEMETRY=0)\n");
    return;
  }
  const PhaseBreakdown &Ph = Out.Phases;
  std::printf("timings      solver %.3f ms (consolidation %.3f ms), "
              "split %.3f ms, pgd %.3f ms, certificate %.3f ms\n",
              Ph.SolverMs, Ph.ConsolidationMs, Ph.SplitMs, Ph.PgdMs,
              Ph.CertificateMs);
  if (Ph.RungBoxMs > 0.0 || Ph.RungZonoMs > 0.0 || Ph.RungChzonoMs > 0.0)
    std::printf("rungs        box %.3f ms, zono %.3f ms, chzono %.3f ms\n",
                Ph.RungBoxMs, Ph.RungZonoMs, Ph.RungChzonoMs);
  std::printf("iterations   %llu\n",
              static_cast<unsigned long long>(Ph.SolverIterations));
}

int runVerify(const std::vector<std::string> &Files, int Jobs,
              double DeadlineMs, bool Timings,
              std::optional<VerifierDomain> Domain,
              std::optional<CascadePolicy> Cascade) {
  std::vector<VerificationSpec> Specs;
  std::vector<const std::string *> Sources; // Spec I came from *Sources[I].
  bool ParseFailed = false;
  for (const std::string &File : Files) {
    SpecParseResult Parsed = parseSpecFile(File);
    if (!Parsed.ok()) {
      for (const SpecDiagnostic &D : Parsed.Diagnostics)
        std::fprintf(stderr, "%s\n", D.render(File).c_str());
      ParseFailed = true;
      continue;
    }
    for (VerificationSpec &Spec : Parsed.Specs) {
      Specs.push_back(std::move(Spec));
      Sources.push_back(&File);
    }
  }
  if (ParseFailed)
    return ExitError;

  // --domain / --cascade override every query, mirroring the spec
  // directives — and, like them, they only make sense for the craft
  // engine (the `box` engine keyword is craft-on-intervals shorthand).
  if (Domain || Cascade)
    for (size_t I = 0; I < Specs.size(); ++I) {
      if (Specs[I].Verifier != SpecVerifier::Craft &&
          Specs[I].Verifier != SpecVerifier::Box) {
        std::fprintf(stderr,
                     "error: %s requires the craft engine, but query %zu "
                     "(%s) uses another verifier\n",
                     Domain ? "--domain" : "--cascade", I + 1,
                     Sources[I]->c_str());
        return ExitError;
      }
      if (Domain) {
        Specs[I].Verifier = SpecVerifier::Craft;
        Specs[I].Domain = *Domain;
      }
      if (Cascade)
        Specs[I].Cascade = *Cascade;
    }

  // Workers would race writing the same witness file: the parser suffixes
  // certificate paths within one spec file, so only cross-file batches can
  // still collide — reject those up front.
  std::set<std::string> CertPaths;
  for (const VerificationSpec &Spec : Specs)
    if (!Spec.CertificatePath.empty() &&
        !CertPaths.insert(Spec.CertificatePath).second) {
      std::fprintf(stderr,
                   "error: certificate path '%s' is used by more than one "
                   "query in this batch\n",
                   Spec.CertificatePath.c_str());
      return ExitError;
    }

  BatchOptions Opts;
  Opts.Jobs = Jobs;
  Opts.DeadlineMs = DeadlineMs;
  std::vector<RunOutcome> Outcomes = runSpecBatch(Specs, Opts);

  int Exit = ExitCertified;
  for (size_t I = 0; I < Specs.size(); ++I) {
    if (Specs.size() > 1)
      std::printf("%s== query %zu (%s) ==\n", I == 0 ? "" : "\n", I + 1,
                  Sources[I]->c_str());
    const RunOutcome &Out = Outcomes[I];
    foldExit(Exit, Out);
    if (!Out.ModelLoaded || Out.Error) {
      std::fprintf(stderr, "error: %s\n", Out.Detail.c_str());
      continue;
    }
    printOutcome(Specs[I], Out);
    if (Timings)
      printTimings(Out);
  }
  // CRAFT_TRACE=1 runs dump the span ring next to the results (path from
  // $CRAFT_TRACE_OUT, default craft_trace.json); no-op otherwise.
  std::string TraceError;
  if (!tracejson::maybeWriteTrace("", TraceError))
    std::fprintf(stderr, "warning: %s\n", TraceError.c_str());
  return Exit;
}

/// `craft split`: global certification of each query's input box. Every
/// region is certified against the class its own center predicts, so the
/// spec's `output robust <class>` is ignored here; `--depth`/`--jobs`
/// override the spec's `split-depth`/`split-jobs`.
int runSplit(const std::vector<std::string> &Files, int Jobs, bool HaveJobs,
             long Depth) {
  std::vector<VerificationSpec> Specs;
  std::vector<const std::string *> Sources;
  for (const std::string &File : Files) {
    SpecParseResult Parsed = parseSpecFile(File);
    if (!Parsed.ok()) {
      for (const SpecDiagnostic &D : Parsed.Diagnostics)
        std::fprintf(stderr, "%s\n", D.render(File).c_str());
      return ExitError;
    }
    for (VerificationSpec &Spec : Parsed.Specs) {
      Specs.push_back(std::move(Spec));
      Sources.push_back(&File);
    }
  }

  int Exit = ExitCertified;
  for (size_t I = 0; I < Specs.size(); ++I) {
    const VerificationSpec &Spec = Specs[I];
    if (Specs.size() > 1)
      std::printf("%s== query %zu (%s) ==\n", I == 0 ? "" : "\n", I + 1,
                  Sources[I]->c_str());
    int QueryJobs =
        HaveJobs ? Jobs : (Spec.SplitJobs == 0 ? -1 : Spec.SplitJobs);
    int QueryDepth = Depth > 0 ? static_cast<int>(Depth)
                     : Spec.SplitDepth > 0 ? Spec.SplitDepth
                                           : 8;
    SplitRunOutcome Out = runSplitCertification(Spec, QueryJobs, QueryDepth);
    if (!Out.ModelLoaded || Out.Error) {
      std::fprintf(stderr, "error: %s\n", Out.Detail.c_str());
      Exit = ExitError;
      continue;
    }
    const SplitResult &Res = Out.Split;
    std::printf("certified    %.6f%% of the input box\n",
                100.0 * Res.CertifiedFraction);
    std::printf("regions      %zu (%zu certified, %zu undecided)\n",
                Res.Regions.size(), Res.NumCertified,
                Res.Regions.size() - Res.NumCertified);
    std::printf("calls        %zu verifier calls in %zu waves\n",
                Res.NumVerifierCalls, Res.NumWaves);
    std::printf("measure      %.6g over the non-degenerate dimensions\n",
                measureOf(Spec.InLo, Spec.InHi));
    std::printf("time         %.3f s\n", Out.TimeSeconds);
    // Exact leaf accounting, not the rounded fraction: a deep tree's
    // uncertified tail can vanish below double precision.
    if (Res.NumCertified < Res.Regions.size() && Exit == ExitCertified)
      Exit = ExitUnknown;
  }
  return Specs.empty() ? ExitError : Exit;
}

/// Parses a nonnegative integer option value (\p What for diagnostics).
bool parseCount(const char *Digits, const char *What, long Max,
                long &Value) {
  char *End = nullptr;
  errno = 0;
  Value = std::strtol(Digits, &End, 10);
  if (End == Digits || *End != '\0' || Value < 0 || errno == ERANGE ||
      Value > Max) {
    std::fprintf(stderr, "error: %s needs a count in [0, %ld]\n", What,
                 Max);
    return false;
  }
  return true;
}

/// Parses the --jobs count (\p Digits). On success stores a runSpecBatch
/// jobs value into \p Jobs (user's 0 = all hardware threads maps to the
/// API's <= 0 convention); on failure prints the error and returns false.
bool parseJobs(const char *Digits, int &Jobs) {
  long V = 0;
  if (!parseCount(Digits, "--jobs", 65536, V))
    return false;
  Jobs = V == 0 ? -1 : static_cast<int>(V);
  return true;
}

int runServe(int Argc, char **Argv) {
  serve::ServerOptions Opts;
  bool Stdio = false;
  bool HavePort = false;
  for (int I = 2; I < Argc; ++I) {
    auto needValue = [&](const char *Flag) -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: %s needs a value\n", Flag);
        return nullptr;
      }
      return Argv[++I];
    };
    if (std::strcmp(Argv[I], "--port") == 0) {
      const char *V = needValue("--port");
      long Port = 0;
      if (!V || !parseCount(V, "--port", 65535, Port))
        return ExitError;
      Opts.Port = static_cast<int>(Port);
      HavePort = true;
    } else if (std::strcmp(Argv[I], "--stdio") == 0) {
      Stdio = true;
    } else if (std::strcmp(Argv[I], "--jobs") == 0 ||
               std::strcmp(Argv[I], "-j") == 0) {
      const char *V = needValue("--jobs");
      if (!V || !parseJobs(V, Opts.Sched.Jobs))
        return ExitError;
    } else if (std::strcmp(Argv[I], "--max-batch") == 0) {
      const char *V = needValue("--max-batch");
      long N = 0;
      if (!V || !parseCount(V, "--max-batch", 1 << 20, N) || N < 1)
        return ExitError;
      Opts.Sched.MaxBatch = static_cast<size_t>(N);
    } else if (std::strcmp(Argv[I], "--cache-entries") == 0) {
      const char *V = needValue("--cache-entries");
      long N = 0;
      if (!V || !parseCount(V, "--cache-entries", 1L << 30, N) || N < 1)
        return ExitError;
      Opts.Sched.CacheCapacity = static_cast<size_t>(N);
    } else if (std::strcmp(Argv[I], "--queue-capacity") == 0) {
      const char *V = needValue("--queue-capacity");
      long N = 0;
      if (!V || !parseCount(V, "--queue-capacity", 1L << 20, N) || N < 1)
        return ExitError;
      Opts.Sched.QueueCapacity = static_cast<size_t>(N);
    } else if (std::strcmp(Argv[I], "--high-water") == 0) {
      const char *V = needValue("--high-water");
      long N = 0;
      if (!V || !parseCount(V, "--high-water", 1L << 20, N) || N < 1)
        return ExitError;
      Opts.Sched.ShedHighWater = static_cast<size_t>(N);
    } else if (std::strcmp(Argv[I], "--max-conns") == 0) {
      const char *V = needValue("--max-conns");
      long N = 0;
      if (!V || !parseCount(V, "--max-conns", 1L << 16, N) || N < 1)
        return ExitError;
      Opts.MaxConnections = static_cast<size_t>(N);
    } else if (std::strcmp(Argv[I], "--cascade") == 0) {
      const char *V = needValue("--cascade");
      if (!V)
        return ExitError;
      std::optional<CascadePolicy> P = CascadePolicy::parse(V);
      if (!P) {
        std::fprintf(stderr,
                     "error: invalid cascade policy '%s' (off, adapt, "
                     "full, or distinct rungs from box, zono, chzono)\n",
                     V);
        return ExitError;
      }
      // Server default: craft queries whose spec leaves `cascade` unset
      // adopt this policy at admission (see Scheduler::Options).
      Opts.Sched.DefaultCascade = *P;
    } else if (std::strcmp(Argv[I], "--trace-out") == 0) {
      const char *V = needValue("--trace-out");
      if (!V)
        return ExitError;
      // The flag both arms tracing and names the dump file; shutdown()
      // writes it (CRAFT_TRACE=1 without the flag also works, falling
      // back to $CRAFT_TRACE_OUT / craft_trace.json).
      Opts.TraceOutPath = V;
      telemetry::setTraceEnabled(true);
    } else {
      std::fprintf(stderr, "error: unknown serve option '%s'\n", Argv[I]);
      return usage();
    }
  }
  if (!HavePort && !Stdio)
    Stdio = true; // Bare `craft serve` is a stdio service.

  serve::Server Daemon(Opts);
  // SIGTERM means "drain": finish in-flight work, answer new queries
  // with "draining", exit 0 — what a supervisor (systemd, k8s) expects.
  Daemon.installSignalDrain();
  std::string Error;
  if (!Daemon.start(Error)) {
    std::fprintf(stderr, "error: cannot listen on 127.0.0.1:%d: %s\n",
                 Opts.Port, Error.c_str());
    return ExitError;
  }
  if (HavePort) {
    // Machine-parseable announce line: the e2e harness and scripts read
    // the ephemeral port from here. stdout unless stdio is the protocol
    // channel.
    std::fprintf(Stdio ? stderr : stdout,
                 "craft-serve: listening on 127.0.0.1:%d\n",
                 Daemon.boundPort());
    std::fflush(Stdio ? stderr : stdout);
  }
  if (Stdio)
    Daemon.runStdio(stdin, stdout);
  else
    Daemon.waitForShutdown();
  // Stdio EOF also lands here: drain and leave cleanly.
  Daemon.shutdown();
  return 0;
}

int runClient(int Argc, char **Argv) {
  int Port = -1;
  bool NoCache = false, Ping = false, Stats = false, Shutdown = false;
  bool Drain = false, Metrics = false;
  long DeadlineMs = -1, TimeoutMs = 0, Retries = 0;
  std::vector<std::string> Files;
  for (int I = 2; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--port") == 0) {
      if (I + 1 >= Argc)
        return usage();
      long V = 0;
      if (!parseCount(Argv[++I], "--port", 65535, V))
        return ExitError;
      Port = static_cast<int>(V);
    } else if (std::strcmp(Argv[I], "--no-cache") == 0) {
      NoCache = true;
    } else if (std::strcmp(Argv[I], "--ping") == 0) {
      Ping = true;
    } else if (std::strcmp(Argv[I], "--stats") == 0) {
      Stats = true;
    } else if (std::strcmp(Argv[I], "--metrics") == 0) {
      Metrics = true;
    } else if (std::strcmp(Argv[I], "--shutdown") == 0) {
      Shutdown = true;
    } else if (std::strcmp(Argv[I], "--drain") == 0) {
      Drain = true;
    } else if (std::strcmp(Argv[I], "--deadline-ms") == 0) {
      if (I + 1 >= Argc)
        return usage();
      if (!parseCount(Argv[++I], "--deadline-ms", 1L << 30, DeadlineMs))
        return ExitError;
    } else if (std::strcmp(Argv[I], "--timeout-ms") == 0) {
      if (I + 1 >= Argc)
        return usage();
      if (!parseCount(Argv[++I], "--timeout-ms", 1L << 30, TimeoutMs))
        return ExitError;
    } else if (std::strcmp(Argv[I], "--retries") == 0) {
      if (I + 1 >= Argc)
        return usage();
      if (!parseCount(Argv[++I], "--retries", 100, Retries))
        return ExitError;
    } else if (Argv[I][0] == '-') {
      std::fprintf(stderr, "error: unknown client option '%s'\n", Argv[I]);
      return usage();
    } else {
      Files.push_back(Argv[I]);
    }
  }
  if (Port < 0) {
    std::fprintf(stderr, "error: craft client needs --port N\n");
    return usage();
  }
  if (Files.empty() && !Ping && !Stats && !Metrics && !Shutdown && !Drain)
    return usage();

  serve::ServeClient Client;
  serve::RetryPolicy Policy;
  Policy.MaxAttempts = static_cast<int>(Retries) + 1;
  Policy.TimeoutMs = static_cast<int>(TimeoutMs);
  Client.setRetryPolicy(Policy);
  std::string Error;
  if (!Client.connect(Port, Error)) {
    std::fprintf(stderr, "error: cannot connect to 127.0.0.1:%d: %s\n",
                 Port, Error.c_str());
    return ExitError;
  }

  int Exit = ExitCertified;
  if (Ping) {
    if (!Client.ping(Error)) {
      std::fprintf(stderr, "error: ping failed: %s\n", Error.c_str());
      return ExitError;
    }
    std::printf("pong\n");
  }

  size_t QueryNo = 0;
  for (const std::string &File : Files) {
    std::FILE *F = std::fopen(File.c_str(), "rb");
    if (!F) {
      std::fprintf(stderr, "error: cannot open '%s'\n", File.c_str());
      return ExitError;
    }
    std::string SpecText;
    char Buf[4096];
    size_t N;
    while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
      SpecText.append(Buf, N);
    std::fclose(F);

    std::optional<serve::VerifyReply> Reply =
        Client.verify(SpecText, Error, !NoCache,
                      static_cast<double>(DeadlineMs));
    if (!Reply) {
      std::fprintf(stderr, "error: %s: %s\n", File.c_str(), Error.c_str());
      return ExitError;
    }
    for (const serve::WireResult &R : Reply->Results) {
      ++QueryNo;
      std::printf("%s== query %zu (%s) ==\n", QueryNo == 1 ? "" : "\n",
                  QueryNo, File.c_str());
      const RunOutcome &Out = R.Outcome;
      foldExit(Exit, Out);
      if (!Out.ModelLoaded || Out.Error) {
        std::printf("error        %s\n", Out.Detail.c_str());
        continue;
      }
      std::printf("verdict      %s\n",
                  Out.Certified          ? "CERTIFIED"
                  : Out.Refuted          ? "REFUTED"
                  : Out.DeadlineExceeded ? "DEADLINE EXCEEDED"
                                         : "not certified");
      std::printf("margin       %.6f\n", Out.MarginLower);
      std::printf("time         %.3f s\n", Out.TimeSeconds);
      std::printf("cached       %s\n", R.Cached ? "yes" : "no");
      if (!Out.CascadeRung.empty() || Out.CascadeEscalations > 0)
        std::printf("cascade      rung %s, %d escalation%s\n",
                    Out.CascadeRung.empty() ? "(none)"
                                            : Out.CascadeRung.c_str(),
                    Out.CascadeEscalations,
                    Out.CascadeEscalations == 1 ? "" : "s");
      if (!Out.Detail.empty())
        std::printf("detail       %s\n", Out.Detail.c_str());
      printCounterexample(Out);
    }
    std::printf("server time  %.3f ms\n", Reply->ServerMs);
  }

  if (Stats) {
    std::optional<json::Value> Doc = Client.stats(Error);
    if (!Doc) {
      std::fprintf(stderr, "error: stats failed: %s\n", Error.c_str());
      return ExitError;
    }
    std::printf("%s\n", Doc->serialize().c_str());
  }
  if (Metrics) {
    std::optional<json::Value> Doc = Client.metrics(Error);
    if (!Doc) {
      std::fprintf(stderr, "error: metrics failed: %s\n", Error.c_str());
      return ExitError;
    }
    std::printf("%s\n", Doc->serialize().c_str());
  }
  if (Drain) {
    if (!Client.requestDrain(Error)) {
      std::fprintf(stderr, "error: drain failed: %s\n", Error.c_str());
      return ExitError;
    }
    std::printf("server draining\n");
  }
  if (Shutdown) {
    if (!Client.requestShutdown(Error)) {
      std::fprintf(stderr, "error: shutdown failed: %s\n", Error.c_str());
      return ExitError;
    }
    std::printf("server shutting down\n");
  }
  return Exit;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage();
  // One startup line on stderr (stdout stays machine-parseable): which
  // kernel tier this process dispatched to, so perf reports are
  // attributable to the ISA in use.
  std::fprintf(stderr, "craft: kernel backend %s, %zu kernel thread%s\n",
               kernels::kernelBackendName(kernels::activeKernelBackend()),
               kernels::kernelThreadCount(),
               kernels::kernelThreadCount() == 1 ? "" : "s");
  if (std::strcmp(Argv[1], "verify") == 0) {
    int Jobs = 1;
    long DeadlineMs = -1; // < 0 = no budget.
    bool Timings = false;
    std::optional<VerifierDomain> Domain;
    std::optional<CascadePolicy> Cascade;
    std::vector<std::string> Files;
    for (int I = 2; I < Argc; ++I) {
      if (std::strcmp(Argv[I], "--jobs") == 0 ||
          std::strcmp(Argv[I], "-j") == 0) {
        if (I + 1 >= Argc)
          return usage();
        if (!parseJobs(Argv[++I], Jobs))
          return 2;
      } else if (std::strncmp(Argv[I], "--jobs=", 7) == 0) {
        if (!parseJobs(Argv[I] + 7, Jobs))
          return 2;
      } else if (std::strcmp(Argv[I], "--deadline-ms") == 0) {
        if (I + 1 >= Argc)
          return usage();
        if (!parseCount(Argv[++I], "--deadline-ms", 1L << 30, DeadlineMs))
          return 2;
      } else if (std::strcmp(Argv[I], "--timings") == 0) {
        Timings = true;
      } else if (std::strcmp(Argv[I], "--domain") == 0) {
        if (I + 1 >= Argc)
          return usage();
        Domain = parseVerifierDomain(Argv[++I]);
        if (!Domain) {
          std::fprintf(stderr,
                       "error: unknown domain '%s' (box, zono, chzono)\n",
                       Argv[I]);
          return 2;
        }
      } else if (std::strcmp(Argv[I], "--cascade") == 0) {
        if (I + 1 >= Argc)
          return usage();
        Cascade = CascadePolicy::parse(Argv[++I]);
        if (!Cascade) {
          std::fprintf(stderr,
                       "error: invalid cascade policy '%s' (off, adapt, "
                       "full, or distinct rungs from box, zono, chzono)\n",
                       Argv[I]);
          return 2;
        }
      } else if (Argv[I][0] == '-') {
        std::fprintf(stderr, "error: unknown option '%s'\n", Argv[I]);
        return usage();
      } else {
        Files.push_back(Argv[I]);
      }
    }
    if (Files.empty())
      return usage();
    return runVerify(Files, Jobs, static_cast<double>(DeadlineMs), Timings,
                     Domain, Cascade);
  }
  if (std::strcmp(Argv[1], "split") == 0) {
    int Jobs = 1;
    bool HaveJobs = false;
    long Depth = 0; // 0 = defer to the spec's split-depth (or 8).
    std::vector<std::string> Files;
    for (int I = 2; I < Argc; ++I) {
      if (std::strcmp(Argv[I], "--jobs") == 0 ||
          std::strcmp(Argv[I], "-j") == 0) {
        if (I + 1 >= Argc)
          return usage();
        if (!parseJobs(Argv[++I], Jobs))
          return 2;
        HaveJobs = true;
      } else if (std::strcmp(Argv[I], "--depth") == 0) {
        if (I + 1 >= Argc)
          return usage();
        if (!parseCount(Argv[++I], "--depth", MaxSupportedSplitDepth,
                        Depth))
          return 2;
        if (Depth < 1) {
          std::fprintf(stderr, "error: --depth needs a count in [1, %d]\n",
                       MaxSupportedSplitDepth);
          return 2;
        }
      } else if (Argv[I][0] == '-') {
        std::fprintf(stderr, "error: unknown option '%s'\n", Argv[I]);
        return usage();
      } else {
        Files.push_back(Argv[I]);
      }
    }
    if (Files.empty())
      return usage();
    return runSplit(Files, Jobs, HaveJobs, Depth);
  }
  if (std::strcmp(Argv[1], "serve") == 0)
    return runServe(Argc, Argv);
  if (std::strcmp(Argv[1], "client") == 0)
    return runClient(Argc, Argv);
  if (std::strcmp(Argv[1], "info") == 0 && Argc == 3)
    return printModelInfo(Argv[2]) ? 0 : 2;
  if (std::strcmp(Argv[1], "check") == 0 && Argc == 4)
    return runCheck(Argv[2], Argv[3]) ? 0 : 1;
  return usage();
}
