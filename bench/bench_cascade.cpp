//===- bench/bench_cascade.cpp - Cheap-first cascade effectiveness --------===//
//
// Measures what the domain cascade buys on a serve-shaped mixed batch:
// 64 queries (easy small-epsilon ones a cheap rung can absorb plus
// hopeless large-epsilon ones that walk the whole ladder) run once
// directly in CH-Zonotope and once under `cascade full`. Emits
// BENCH_cascade.json:
//
//   cascade_cheap_hit_rate   fraction of the batch certified at a rung
//                            cheaper than CH-Zonotope (direction
//                            "higher": the cascade's reason to exist)
//   cascade_qps              queries/sec of the cascade run (direction
//                            "higher": a drop is the regression)
//   cascade_direct_qps       queries/sec of the direct CH-Zonotope run,
//                            for eyeballing the speedup in artifacts
//
// Correctness is not timing-shaped: the harness self-checks by exit
// code that the cascade run's verdicts (certified/refuted/containment)
// are identical to the direct run's — the walk's last rung is the
// spec's own domain, so a cascade can only answer earlier, never
// differently — and that the cheap-hit rate clears the 30% bar the
// mixed batch is constructed to exceed. Margins are rung-specific by
// design and deliberately not compared.
//
// The model is trained (unlike the throughput benches): cheap rungs
// only absorb queries they can actually certify, which needs real
// decision margins, not arithmetic. CRAFT_JOBS sets the worker count
// (default 1: rates are about engine work, not fan-out; outcomes are
// identical for every value).
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"

#include "data/GaussianMixture.h"
#include "nn/Solvers.h"
#include "nn/Training.h"
#include "support/Rng.h"
#include "support/Timer.h"
#include "tool/Cascade.h"
#include "tool/Driver.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace craft;

namespace {

constexpr size_t BatchSize = 64;
constexpr double CheapHitBar = 0.30;

struct Workload {
  MonDeq Model;
  std::vector<VerificationSpec> Specs;
};

/// Same recipe as the driver-test fixtures: a tiny trained monDEQ and a
/// pool of correctly-predicted samples, cycled into a 64-query batch.
/// Two thirds get an easy radius a cheap rung certifies, one third a
/// hopeless one that escalates through the whole ladder.
Workload makeWorkload() {
  Workload W{MonDeq(), {}};
  Rng DataRng(101);
  Dataset Train = makeGaussianMixture(DataRng, 250, 5, 3);
  Rng InitRng(102);
  W.Model = MonDeq::randomFc(InitRng, 5, 10, 3, 3.0);
  TrainOptions Opts;
  Opts.Epochs = 10;
  Opts.Verbose = false;
  trainMonDeq(W.Model, Train, Opts);

  std::vector<Vector> Samples;
  std::vector<int> Labels;
  FixpointSolver Solver(W.Model, Splitting::PeacemanRachford);
  for (size_t I = 0; I < Train.size() && Samples.size() < 16; ++I)
    if (Solver.predict(Train.input(I)) == Train.Labels[I]) {
      Samples.push_back(Train.input(I));
      Labels.push_back(Train.Labels[I]);
    }

  for (size_t I = 0; I < BatchSize; ++I) {
    const size_t S = I % Samples.size();
    const double Epsilon = I % 3 == 2 ? 0.3 : 0.02;
    VerificationSpec Spec;
    Spec.ModelPath = "<preloaded>";
    Spec.Center = Samples[S];
    Spec.Epsilon = Epsilon;
    Spec.TargetClass = Labels[S];
    Spec.Alpha1 = 0.5;
    Spec.InLo = Vector(Spec.Center.size());
    Spec.InHi = Vector(Spec.Center.size());
    for (size_t J = 0; J < Spec.Center.size(); ++J) {
      Spec.InLo[J] = std::max(Spec.Center[J] - Epsilon, 0.0);
      Spec.InHi[J] = std::min(Spec.Center[J] + Epsilon, 1.0);
    }
    W.Specs.push_back(std::move(Spec));
  }
  return W;
}

} // namespace

int main() {
  std::printf("== bench_cascade: cheap-first domain cascade ==\n\n");

  int Jobs = 1;
  if (const char *Env = std::getenv("CRAFT_JOBS")) {
    long V = std::atol(Env);
    Jobs = V <= 0 ? 0 : int(V);
  }

  Workload W = makeWorkload();
  std::vector<const MonDeq *> Models(W.Specs.size(), &W.Model);
  bool Ok = true;

  // Direct CH-Zonotope pass: the verdict reference and the qps baseline.
  WallTimer DirectT;
  std::vector<RunOutcome> Direct = runSpecBatchLoaded(W.Specs, Models, Jobs);
  const double DirectSeconds = DirectT.seconds();

  std::vector<VerificationSpec> Cascaded = W.Specs;
  for (VerificationSpec &Spec : Cascaded)
    Spec.Cascade = *CascadePolicy::parse("full");
  WallTimer CascadeT;
  std::vector<RunOutcome> Outs = runSpecBatchLoaded(Cascaded, Models, Jobs);
  const double CascadeSeconds = CascadeT.seconds();

  size_t Certified = 0, CheapHits = 0, Escalations = 0;
  for (size_t I = 0; I < Outs.size(); ++I) {
    if (Direct[I].Certified != Outs[I].Certified ||
        Direct[I].Refuted != Outs[I].Refuted ||
        Direct[I].Containment != Outs[I].Containment) {
      std::fprintf(stderr,
                   "FAIL: cascade changed the verdict of query %zu — the "
                   "last rung must reproduce the direct run\n",
                   I);
      Ok = false;
    }
    Escalations += size_t(Outs[I].CascadeEscalations);
    if (Outs[I].Certified) {
      ++Certified;
      if (Outs[I].CascadeRung != verifierDomainName(VerifierDomain::CHZono))
        ++CheapHits;
    }
  }
  const double CheapHitRate = double(CheapHits) / double(Outs.size());
  const double CascadeQps = double(Outs.size()) / CascadeSeconds;
  const double DirectQps = double(Outs.size()) / DirectSeconds;

  std::printf("batch %zu (%d jobs): %zu certified, %zu at a cheap rung "
              "(hit rate %.2f), %zu escalations\n",
              Outs.size(), Jobs, Certified, CheapHits, CheapHitRate,
              Escalations);
  std::printf("cascade %8.1f q/s, direct chzono %8.1f q/s (%.2fx)\n",
              CascadeQps, DirectQps, CascadeQps / DirectQps);

  if (CheapHitRate < CheapHitBar) {
    std::fprintf(stderr,
                 "FAIL: cheap-hit rate %.2f below the %.2f bar — cheap "
                 "rungs stopped absorbing the easy queries\n",
                 CheapHitRate, CheapHitBar);
    Ok = false;
  }

  std::vector<benchjson::Record> Records;
  benchjson::Record R;
  R.Dims = "q64";
  R.Direction = "higher";
  R.Op = "cascade_cheap_hit_rate";
  R.NsPerOp = CheapHitRate;
  Records.push_back(R);
  R.Op = "cascade_qps";
  R.NsPerOp = CascadeQps;
  Records.push_back(R);
  R.Op = "cascade_direct_qps";
  R.NsPerOp = DirectQps;
  Records.push_back(R);
  benchjson::write("BENCH_cascade.json", Records);

  std::printf("%s\n", Ok ? "OK" : "FAILED");
  return Ok ? 0 : 1;
}
