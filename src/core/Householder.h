//===- core/Householder.h - Square-root case study --------------*- C++ -*-===//
//
// Part of the Craft reproduction (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Section 6.5 / App. A case study: abstract interpretation of
/// the Householder iteration for reciprocal square roots,
///
///   while s <= 0 or |s*s - 1/x| >= eps:
///     h = 1 - x s^2
///     s = s + s (0.5 h + 0.375 h^2)
///
/// which converges to s* = 1/sqrt(x). The analysis demonstrates Craft's
/// generality beyond monDEQs: the scalar program is abstracted with affine
/// arithmetic (1-d Zonotopes), where concretizations are intervals and the
/// containment check of Thm 3.1 is exact interval inclusion. The Kleene
/// baseline with semantic unrolling reproduces the imprecision/divergence
/// the paper reports (Table 5, Fig. 16), and the App. A extension widens
/// fixpoint abstractions by sqrt(eps) to cover all values reachable under
/// the concrete termination condition (Thms A.1/A.2).
///
//===----------------------------------------------------------------------===//

#ifndef CRAFT_CORE_HOUSEHOLDER_H
#define CRAFT_CORE_HOUSEHOLDER_H

#include "domains/AffineForm.h"

#include <vector>

namespace craft {

/// A closed interval (Hi < Lo encodes "divergence"/top).
struct SqrtInterval {
  double Lo = 0.0;
  double Hi = 0.0;
  bool Diverged = false;
};

/// Analysis knobs for the case study.
struct SqrtOptions {
  double S0 = 0.125;      ///< Paper initialization 2^-3.
  int MaxIterations = 200;
  double Epsilon = 1e-8;  ///< Termination threshold of the concrete program.
  bool Reachable = false; ///< App. A: widen by sqrt(eps) for reachability.
  int UnrollSteps = 4;    ///< Kleene semantic unrolling depth.
  int TightenSteps = 20;  ///< Craft phase-2 iterations after containment.
  /// Consolidate (decorrelate + collapse to a single symbol, the 1-d
  /// Thm 4.1) every r-th phase-1 iteration; 0 (default) disables. The
  /// containment check is the slice-wise relational one, sound against
  /// correlated iterates, so this is purely a representation-size knob; it
  /// costs the cross-iteration cancellation the wide input [16, 25] needs.
  int ConsolidateEvery = 0;
  double DivergenceWidth = 1e6;
};

/// Analysis result; intervals are reported for sqrt(x) = 1/s.
struct SqrtAnalysis {
  bool Converged = false;
  int Iterations = 0;
  SqrtInterval SInterval;    ///< Final abstraction of s.
  SqrtInterval RootInterval; ///< 1 / SInterval.
  std::vector<SqrtInterval> RootTrace; ///< Per-iteration 1/s (Fig. 16).
};

/// Craft-style analysis: iterate without joins until interval containment
/// (Thm 3.1), then tighten with further fixpoint-preserving iterations.
SqrtAnalysis analyzeSqrtCraft(double XLo, double XHi,
                              const SqrtOptions &Opts = {});

/// Kleene iteration with semantic unrolling (joins after the unrolled
/// prefix); diverges for wide inputs, per the paper.
SqrtAnalysis analyzeSqrtKleene(double XLo, double XHi,
                               const SqrtOptions &Opts = {});

/// Exact mathematical fixpoint set [sqrt(XLo), sqrt(XHi)].
SqrtInterval exactSqrtInterval(double XLo, double XHi);

/// Concrete execution of the program (returns s ~ 1/sqrt(x)).
double householderSqrtConcrete(double X, double S0 = 0.125,
                               double Epsilon = 1e-8,
                               int *IterationsOut = nullptr);

} // namespace craft

#endif // CRAFT_CORE_HOUSEHOLDER_H
