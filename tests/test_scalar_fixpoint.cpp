//===- tests/test_scalar_fixpoint.cpp - Generic scalar driver tests -------===//
//
// Tests for the generic Section 3 driver over scalar fixpoint iterators
// (core/ScalarFixpoint.h): ground-truth validation on the affine iterator,
// soundness of every case study against densely sampled concrete
// fixpoints, Craft-vs-Kleene precision ordering, divergence reporting, and
// consistency with the dedicated Householder implementation.
//
//===----------------------------------------------------------------------===//

#include "core/Householder.h"
#include "core/ScalarFixpoint.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

using namespace craft;

namespace {

struct CaseStudy {
  std::string Name;
  ScalarIterator It;
  double XLo, XHi;
  /// Exact fixpoint map, if known in closed form (nullptr otherwise: the
  /// test falls back to solving concretely).
  double (*Exact)(double);
};

double exactNewton(double X) { return std::sqrt(X); }
double exactHouseholder(double X) { return 1.0 / std::sqrt(X); }

/// Samples concrete fixpoints across the input range and checks each lies
/// within the analysis interval.
void expectCoversConcreteFixpoints(const CaseStudy &C,
                                   const ScalarAnalysis &A,
                                   double Tol = 1e-9) {
  ASSERT_TRUE(A.Contained) << C.Name;
  constexpr int Samples = 97;
  for (int I = 0; I < Samples; ++I) {
    double X = C.XLo + (C.XHi - C.XLo) * I / (Samples - 1);
    double SStar =
        C.Exact ? C.Exact(X) : solveScalarConcrete(C.It, X, 1e-13);
    EXPECT_GE(SStar, A.Lo - Tol) << C.Name << " x=" << X;
    EXPECT_LE(SStar, A.Hi + Tol) << C.Name << " x=" << X;
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Ground truth: the affine iterator has an exact abstract transformer
//===----------------------------------------------------------------------===//

TEST(ScalarFixpointTest, DampedLinearConvergesToExactFixpointSet) {
  // s* = b x / (1 - a) with a = 0.5, b = 1: fixpoint set = [2 xlo, 2 xhi].
  ScalarIterator It = makeDampedLinearIterator(0.5, 1.0);
  ScalarAnalysis A = analyzeScalarCraft(It, 1.0, 2.0);
  ASSERT_TRUE(A.Contained);
  EXPECT_NEAR(A.Lo, 2.0, 1e-6);
  EXPECT_NEAR(A.Hi, 4.0, 1e-6);
}

TEST(ScalarFixpointTest, DampedLinearWithDampingStillExact) {
  ScalarIterator It = makeDampedLinearIterator(0.5, 1.0, /*Damping=*/0.3);
  ScalarAnalysis A = analyzeScalarCraft(It, -1.0, 1.0);
  ASSERT_TRUE(A.Contained);
  EXPECT_NEAR(A.Lo, -2.0, 1e-6);
  EXPECT_NEAR(A.Hi, 2.0, 1e-6);
}

TEST(ScalarFixpointTest, ConcreteSolverMatchesClosedForm) {
  ScalarIterator It = makeDampedLinearIterator(0.25, 2.0);
  EXPECT_NEAR(solveScalarConcrete(It, 3.0), 2.0 * 3.0 / 0.75, 1e-9);
}

//===----------------------------------------------------------------------===//
// Case-study soundness (parameterized)
//===----------------------------------------------------------------------===//

class ScalarCaseStudyTest : public ::testing::TestWithParam<int> {
protected:
  static CaseStudy caseFor(int Index) {
    switch (Index) {
    case 0:
      return {"cosine", makeDampedCosineIterator(0.5), -0.3, 0.3, nullptr};
    case 1:
      return {"cosine-wide", makeDampedCosineIterator(0.7), -1.0, 1.0,
              nullptr};
    case 2:
      return {"tanh-neuron", makeTanhNeuronIterator(0.8), -0.5, 0.5,
              nullptr};
    case 3:
      return {"tanh-neuron-stiff", makeTanhNeuronIterator(0.95), -0.2, 0.2,
              nullptr};
    case 4:
      return {"newton-sqrt", makeNewtonSqrtIterator(), 16.0, 20.0,
              exactNewton};
    case 5:
      return {"newton-sqrt-wide", makeNewtonSqrtIterator(), 16.0, 25.0,
              exactNewton};
    case 6:
      return {"householder", makeHouseholderIterator(), 16.0, 20.0,
              exactHouseholder};
    default:
      return {"householder-wide", makeHouseholderIterator(), 16.0, 25.0,
              exactHouseholder};
    }
  }
};

TEST_P(ScalarCaseStudyTest, CraftCoversAllConcreteFixpoints) {
  CaseStudy C = caseFor(GetParam());
  ScalarAnalysis A = analyzeScalarCraft(C.It, C.XLo, C.XHi);
  expectCoversConcreteFixpoints(C, A);
}

TEST_P(ScalarCaseStudyTest, CraftIntervalIsReasonablyTight) {
  // The over-approximation should stay within 3x of the exact fixpoint-set
  // width (and never collapse below it).
  CaseStudy C = caseFor(GetParam());
  ScalarAnalysis A = analyzeScalarCraft(C.It, C.XLo, C.XHi);
  ASSERT_TRUE(A.Contained);
  double SMin = 1e300, SMax = -1e300;
  for (int I = 0; I <= 64; ++I) {
    double X = C.XLo + (C.XHi - C.XLo) * I / 64.0;
    double S = C.Exact ? C.Exact(X) : solveScalarConcrete(C.It, X, 1e-13);
    SMin = std::min(SMin, S);
    SMax = std::max(SMax, S);
  }
  double ExactWidth = SMax - SMin;
  EXPECT_GE(A.Hi - A.Lo, ExactWidth - 1e-9) << C.Name;
  EXPECT_LE(A.Hi - A.Lo, 3.0 * ExactWidth + 1e-6) << C.Name;
}

TEST_P(ScalarCaseStudyTest, KleeneIsNeverTighterThanCraft) {
  CaseStudy C = caseFor(GetParam());
  ScalarAnalysis Craft = analyzeScalarCraft(C.It, C.XLo, C.XHi);
  ScalarAnalysis Kleene = analyzeScalarKleene(C.It, C.XLo, C.XHi);
  ASSERT_TRUE(Craft.Contained);
  if (!Kleene.Contained)
    return; // Kleene diverged: trivially not tighter.
  EXPECT_GE(Kleene.Hi - Kleene.Lo, (Craft.Hi - Craft.Lo) - 1e-9) << C.Name;
  // Kleene must still be sound when it converges.
  expectCoversConcreteFixpoints(C, Kleene);
}

INSTANTIATE_TEST_SUITE_P(Cases, ScalarCaseStudyTest, ::testing::Range(0, 8));

//===----------------------------------------------------------------------===//
// Driver behavior
//===----------------------------------------------------------------------===//

TEST(ScalarFixpointTest, ExpansiveIteratorReportsNoContainment) {
  // s' = 1.05 s + x has no contraction; the driver must not claim a sound
  // result.
  ScalarIterator It;
  It.Name = "expansive";
  It.ConcreteStep = [](double X, double S) { return 1.05 * S + X; };
  It.AbstractStep = [](const AffineForm &X, const AffineForm &S) {
    return S * 1.05 + X;
  };
  ScalarAnalysisOptions Opts;
  Opts.InitAtCenterFixpoint = false;
  Opts.MaxIterations = 100;
  ScalarAnalysis A = analyzeScalarCraft(It, 0.5, 1.0, Opts);
  EXPECT_FALSE(A.Contained);
}

TEST(ScalarFixpointTest, CenterFixpointInitializationContractsQuickly) {
  // Newton-sqrt initialized at the center fixpoint (Alg. 1 line 2)
  // contracts within a handful of consolidation windows.
  ScalarIterator It = makeNewtonSqrtIterator();
  ScalarAnalysisOptions Warm;
  ScalarAnalysis A = analyzeScalarCraft(It, 16.0, 20.0, Warm);
  ASSERT_TRUE(A.Contained);
  EXPECT_LE(A.Iterations, 40);
}

TEST(ScalarFixpointTest, WidthTraceContractsAfterContainment) {
  ScalarIterator It = makeDampedCosineIterator(0.5);
  ScalarAnalysis A = analyzeScalarCraft(It, -0.5, 0.5);
  ASSERT_TRUE(A.Contained);
  ASSERT_GE(A.WidthTrace.size(), 2u);
  // Final tightened width no larger than the width at first containment.
  double AtContainment = A.WidthTrace[A.Iterations - 1];
  EXPECT_LE(A.Hi - A.Lo, AtContainment + 1e-12);
}

TEST(ScalarFixpointTest, GenericHouseholderMatchesDedicatedAnalysis) {
  // The generic driver on the Householder iterator must land within a few
  // percent of the dedicated Section 6.5 implementation (both sound, minor
  // schedule differences allowed).
  ScalarIterator It = makeHouseholderIterator();
  ScalarAnalysisOptions Opts;
  Opts.InitAtCenterFixpoint = false; // The dedicated analysis starts at S0.
  ScalarAnalysis Generic = analyzeScalarCraft(It, 16.0, 20.0, Opts);
  SqrtAnalysis Dedicated = analyzeSqrtCraft(16.0, 20.0);
  ASSERT_TRUE(Generic.Contained);
  ASSERT_TRUE(Dedicated.Converged);
  EXPECT_NEAR(Generic.Lo, Dedicated.SInterval.Lo, 0.02);
  EXPECT_NEAR(Generic.Hi, Dedicated.SInterval.Hi, 0.02);
}

TEST(ScalarFixpointTest, KleeneDivergesOnWideHouseholderInput) {
  // The paper's headline Kleene failure (Table 5, X = [16, 25]) reproduces
  // through the generic driver as well.
  ScalarIterator It = makeHouseholderIterator();
  ScalarAnalysisOptions Opts;
  Opts.InitAtCenterFixpoint = false;
  ScalarAnalysis Kleene = analyzeScalarKleene(It, 16.0, 25.0, Opts);
  EXPECT_FALSE(Kleene.Contained);
}

TEST(ScalarFixpointTest, RegressionIntervalContainmentWouldLoseFixpoints) {
  // Regression for the containment-unsoundness bug (DESIGN.md): for the
  // cosine iterator on [-0.3, 0.3], the second correlated iterate is
  // interval-contained in the first yet misses the edge fixpoints. The
  // slice-wise relational check must reject that pair, and the driver's
  // final interval must cover the edge fixpoints.
  ScalarIterator It = makeDampedCosineIterator(0.5);
  AffineForm X = AffineForm::range(-0.3, 0.3);
  AffineForm S0 = AffineForm::constant(solveScalarConcrete(It, 0.0));
  AffineForm S1 = It.AbstractStep(X, S0);
  AffineForm S2 = It.AbstractStep(X, S1);
  ASSERT_TRUE(S1.contains(S2, 1e-15)) << "scenario precondition";
  double FixHi = solveScalarConcrete(It, 0.3);
  ASSERT_GT(FixHi, S2.hi()) << "scenario precondition: S2 misses s*(0.3)";
  EXPECT_FALSE(
      S1.containsRelational(S2, {X.terms()[0].first}, 1e-15));

  ScalarAnalysis A = analyzeScalarCraft(It, -0.3, 0.3);
  ASSERT_TRUE(A.Contained);
  EXPECT_LE(A.Lo, solveScalarConcrete(It, -0.3) + 1e-9);
  EXPECT_GE(A.Hi, FixHi - 1e-9);
}

TEST(ScalarFixpointTest, ConsolidationKnobStaysSoundOnNarrowInputs) {
  // With periodic decorrelating consolidation the driver must remain sound
  // (the check degrades gracefully); precision may drop.
  ScalarIterator It = makeDampedCosineIterator(0.5);
  ScalarAnalysisOptions Opts;
  Opts.ConsolidateEvery = 2;
  ScalarAnalysis A = analyzeScalarCraft(It, -0.3, 0.3, Opts);
  ASSERT_TRUE(A.Contained);
  for (double X : {-0.3, 0.0, 0.3}) {
    double S = solveScalarConcrete(It, X);
    EXPECT_GE(S, A.Lo - 1e-9);
    EXPECT_LE(S, A.Hi + 1e-9);
  }
}

TEST(ScalarFixpointTest, TanhNeuronHullShrinksWithSmallerInputRange) {
  ScalarIterator It = makeTanhNeuronIterator(0.8);
  ScalarAnalysis Wide = analyzeScalarCraft(It, -0.5, 0.5);
  ScalarAnalysis Narrow = analyzeScalarCraft(It, -0.1, 0.1);
  ASSERT_TRUE(Wide.Contained);
  ASSERT_TRUE(Narrow.Contained);
  EXPECT_LT(Narrow.Hi - Narrow.Lo, Wide.Hi - Wide.Lo);
}
