//===- core/Verifier.h - The Craft verifier (Algorithm 1) -------*- C++ -*-===//
//
// Part of the Craft reproduction (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Craft (Convex Relaxation Abstract Fixpoint iTeration), the paper's
/// Algorithm 1 with the App. C engineering details:
///
///  Phase 1 (containment): iterate the abstract solver g#1 (PR by default),
///  consolidating every r-th iteration with expansion (Eq. 10), keeping the
///  last HistorySize consolidated proper states and checking the current
///  state against all of them (s-step containment, Thm B.1). Once contained,
///  the state provably over-approximates the true fixpoint set (Thm 3.1).
///
///  Phase 2 (tightening): apply fixpoint-set-preserving iterations
///  (Thm 3.3 / Thm 5.1) -- FB with a line-searched step size by default --
///  re-checking the postcondition each step, with the App. C abortion
///  heuristics and the optional lambda optimization for near-certified
///  samples.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFT_CORE_VERIFIER_H
#define CRAFT_CORE_VERIFIER_H

#include "core/AbstractSolver.h"
#include "domains/DomainConcept.h"
#include "domains/OrderReduction.h"
#include "support/Deadline.h"

namespace craft {

/// Expansion schedule for the consolidation coefficients (App. D.2).
enum class ExpansionSchedule {
  None,        ///< w_mul = w_add = 0 ("No Expansion" ablation).
  Constant,    ///< Fixed w_mul = 1e-3, w_add = 1e-2.
  Exponential, ///< Constant start, scaled by 1.1 / 1.2 every 2nd
               ///< consolidation (CIFAR configs).
};

/// All Craft knobs (defaults follow Table 7 for the small MNIST models).
struct CraftConfig {
  VerifierDomain Domain = VerifierDomain::CHZono;

  Splitting Phase1Method = Splitting::PeacemanRachford;
  double Alpha1 = 0.1;

  Splitting Phase2Method = Splitting::ForwardBackward;
  /// Phase-2 step size; < 0 enables the adaptive line search (FB only,
  /// sound for any alpha in [0,1] by Thm 5.1).
  double Alpha2 = -1.0;

  int MaxIterations = 500;  ///< n_max.
  int ConsolidateEvery = 3; ///< r.
  int PcaRefreshEvery = 30;
  int HistorySize = 10;
  int Phase2Window = 50; ///< r' (abort after 3 r' steps without progress).
  /// Hard cap on phase-2 tightening steps (<= MaxIterations). Large conv
  /// models set this low: each abstract step is O(p^3)-expensive and the
  /// no-progress window alone would dominate runtime.
  int Phase2MaxIterations = 500;
  /// Check containment against the history every this many iterations
  /// (1 = every iteration, App. C default). Large conv models raise it:
  /// each check is O(p^2 k) against up to HistorySize outer states.
  int ContainmentCheckEvery = 1;

  ExpansionSchedule Expansion = ExpansionSchedule::Constant;
  double WMul = 1e-3;
  double WAdd = 1e-2;

  /// Ablation "Same iter. containment": phase 2 may only certify from
  /// states contained in their predecessor.
  bool SameIterationContainment = false;
  /// Lambda optimization level: 0 = off, 1 = reduced, 2 = full (App. C).
  int LambdaOptLevel = 2;
  /// Engage lambda optimization only when the best margin is this close to
  /// certification (absolute logit-margin units).
  double LambdaOptMarginWindow = 1.0;

  double AbortWidth = 1e9; ///< Width blow-up abort (App. C).
  /// Clamp robustness balls to this input range (images live in [0,1]).
  double InputClampLo = 0.0;
  double InputClampHi = 1.0;

  /// Deadline/cancellation polled at iteration boundaries. A stop aborts
  /// tightening early — the partial result stays sound (not certified,
  /// never a wrong verdict). Default: never stops.
  RunControl Control;
};

/// Outcome of one Craft verification query.
struct CraftResult {
  bool Containment = false; ///< An abstract post-fixpoint was found.
  bool Certified = false;   ///< The postcondition holds.
  int ContainmentIteration = -1;
  int TotalIterations = 0;
  double BestMargin = -1e300; ///< Largest min-margin seen in phase 2.
  double ChosenAlpha2 = -1.0; ///< Line-search result (Fig. 17).
  IntervalVector FixpointHull; ///< Hull of the certified fixpoint set (z).
  double TimeSeconds = 0.0;
};

/// The Craft verifier bound to one model.
class CraftVerifier {
public:
  explicit CraftVerifier(const MonDeq &Model, CraftConfig Config = {});

  const CraftConfig &config() const { return Config; }

  /// l-inf robustness: does the model classify the (clamped) Epsilon-ball
  /// around X as TargetClass?
  CraftResult verifyRobustness(const Vector &X, int TargetClass,
                               double Epsilon) const;

  /// General box precondition against the "class = TargetClass"
  /// postcondition.
  CraftResult verifyRegion(const Vector &InLo, const Vector &InHi,
                           int TargetClass) const;

private:
  /// Algorithm 1, generic over the abstract domain \p Dom (one of the
  /// \ref AbstractDomain traits types from domains/DomainConcept.h).
  template <class Dom>
  CraftResult verifyImpl(const Vector &InLo, const Vector &InHi,
                         int TargetClass) const;

  const MonDeq &Model;
  CraftConfig Config;
};

} // namespace craft

#endif // CRAFT_CORE_VERIFIER_H
