//===- nn/MonDeq.h - Monotone operator deep equilibrium models --*- C++ -*-===//
//
// Part of the Craft reproduction (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Monotone Operator Deep Equilibrium Models (monDEQs, Winston & Kolter
/// 2020), the evaluation subject of the paper (Section 5.1):
///
///   z* = f(x, z*) = ReLU(W z* + U x + b),   y = V z* + v,
///
/// with W = (1 - m) I - P^T P + Q - Q^T for monotonicity parameter m > 0,
/// which guarantees existence and uniqueness of the fixpoint z*(x).
///
//===----------------------------------------------------------------------===//

#ifndef CRAFT_NN_MONDEQ_H
#define CRAFT_NN_MONDEQ_H

#include "linalg/Matrix.h"
#include "support/Rng.h"

#include <optional>
#include <string>

namespace craft {

/// Activation of the equilibrium layer. ReLU is the paper's main setting;
/// Sigmoid/Tanh exercise the App. B.6 pipeline (both are proximal operators
/// of CCP functions, so the Winston & Kolter convergence guarantees carry
/// over with prox_{a f} in place of ReLU in the splitting iterations).
enum class ActivationKind : uint8_t { ReLU = 0, Sigmoid = 1, Tanh = 2 };

/// Human-readable activation name.
const char *activationName(ActivationKind Act);

/// A monDEQ classifier/regressor. Owns the raw parametrization (P, Q, U, b,
/// V, v, m) and caches the derived iteration matrix W.
class MonDeq {
public:
  MonDeq() = default;

  /// Builds a monDEQ from its raw parameters; W is derived.
  MonDeq(double Monotonicity, Matrix P, Matrix Q, Matrix U, Vector BiasZ,
         Matrix V, Vector BiasY);

  /// Builds a monDEQ directly from W (for hand-constructed examples such as
  /// the paper's running example Eq. (1), where W is given). The caller is
  /// responsible for W satisfying the monotonicity condition.
  static MonDeq fromW(double Monotonicity, Matrix W, Matrix U, Vector BiasZ,
                      Matrix V, Vector BiasY);

  /// Random fully connected monDEQ: latent dim \p P, input dim \p Q,
  /// \p NumClasses outputs, monotonicity \p M (paper default: 20).
  static MonDeq randomFc(Rng &R, size_t InputDim, size_t LatentDim,
                         size_t NumClasses, double M = 20.0);

  /// Random convolution-structured monDEQ: the input map U has the sparsity
  /// pattern of a strided 2-D convolution over a (Channels x Height x Width)
  /// image while P/Q stay dense (see DESIGN.md substitution 3). The latent
  /// dimension is OutChannels * ceil(H/Stride) * ceil(W/Stride).
  static MonDeq randomConv(Rng &R, size_t Channels, size_t Height,
                           size_t Width, size_t OutChannels, size_t Kernel,
                           size_t Stride, size_t NumClasses, double M = 20.0);

  size_t inputDim() const { return U.cols(); }
  size_t latentDim() const { return W.rows(); }
  size_t outputDim() const { return V.rows(); }

  double monotonicity() const { return M; }
  /// Equilibrium-layer activation (ReLU unless overridden; App. B.6).
  ActivationKind activation() const { return Act; }
  /// Switches the activation. Affects the iteration semantics, the solvers
  /// and the abstract transformers; existing fixpoints become stale.
  void setActivation(ActivationKind NewAct) { Act = NewAct; }
  const Matrix &weightW() const { return W; }
  const Matrix &weightU() const { return U; }
  const Vector &biasZ() const { return BZ; }
  const Matrix &weightV() const { return V; }
  const Vector &biasY() const { return BY; }
  const Matrix &paramP() const { return P; }
  const Matrix &paramQ() const { return Q; }

  /// True if the model carries a raw (P, Q) parametrization (trainable);
  /// models built via fromW do not.
  bool hasRawParams() const { return P.rows() > 0; }

  /// Mutates the raw parameters (training); recomputes W.
  void applyParamUpdate(const Matrix &DeltaP, const Matrix &DeltaQ,
                        const Matrix &DeltaU, const Vector &DeltaBZ,
                        const Matrix &DeltaV, const Vector &DeltaBY);

  /// Output layer y = V z + v.
  Vector output(const Vector &Z) const { return V * Z + BY; }

  /// One application of the raw iteration f(x, z) = ReLU(W z + U x + b).
  Vector iterateF(const Vector &X, const Vector &Z) const;

  /// Upper bound on the FB step size with concrete convergence guarantees:
  /// 2 m / ||I - W||_2^2 (cached after first call).
  double fbAlphaBound() const;

  /// Serialization (binary, versioned). Returns false on I/O failure.
  bool save(const std::string &Path) const;
  static std::optional<MonDeq> load(const std::string &Path);

private:
  void rebuildW();

  double M = 1.0;
  ActivationKind Act = ActivationKind::ReLU;
  Matrix P, Q;  ///< Raw parametrization (may be empty for fromW models).
  Matrix W;     ///< (1-m) I - P^T P + Q - Q^T.
  Matrix U;
  Vector BZ;
  Matrix V;
  Vector BY;
  mutable double CachedAlphaBound = -1.0;
};

} // namespace craft

#endif // CRAFT_NN_MONDEQ_H
