//===- linalg/Pca.h - PCA basis for order reduction -------------*- C++ -*-===//
//
// Part of the Craft reproduction (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// PCA basis extraction for zonotope order reduction. Kopetzki et al. (2017)
/// found the PCA basis of the error matrix to give the tightest tractable
/// outer approximations in high dimensions; Section 4 of the paper adopts it
/// for CH-Zonotope error consolidation.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFT_LINALG_PCA_H
#define CRAFT_LINALG_PCA_H

#include "linalg/Matrix.h"

namespace craft {

/// Orthogonal p x p basis whose columns are the principal directions of the
/// columns of \p A (eigenvectors of A A^T), ordered by decreasing variance.
/// Always returns an invertible (orthogonal) matrix; directions with zero
/// variance are completed by the remaining eigenvectors, so rank-deficient
/// inputs are handled transparently.
Matrix pcaBasis(const Matrix &A);

} // namespace craft

#endif // CRAFT_LINALG_PCA_H
