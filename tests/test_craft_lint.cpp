//===- tests/test_craft_lint.cpp - craft-lint rule engine tests -----------===//
//
// Rule-positive / rule-negative fixtures for every invariant rule, the
// suppression grammar (line-scoped, file-wide, justification required,
// unknown rules rejected), the JSON output schema, and the CLI exit-code
// contract (0 clean / 1 violations / 2 usage error).
//
// Every forbidden construct below lives inside a string literal, which
// the linter's lexer skips — so this file itself lints clean.
//
//===----------------------------------------------------------------------===//

#include "Lint.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

using namespace craft::lint;

namespace {

/// Lints \p Src as file \p RelPath and returns the result.
LintResult lintSnippet(const std::string &RelPath, const std::string &Src) {
  LintResult R;
  lintBuffer(RelPath, RelPath, Src, {}, R);
  return R;
}

/// Unsuppressed diagnostics of rule \p Rule.
int countRule(const LintResult &R, const std::string &Rule) {
  int N = 0;
  for (const Diagnostic &D : R.Diagnostics)
    if (D.Rule == Rule && !D.Suppressed)
      ++N;
  return N;
}

int countSuppressed(const LintResult &R, const std::string &Rule) {
  int N = 0;
  for (const Diagnostic &D : R.Diagnostics)
    if (D.Rule == Rule && D.Suppressed)
      ++N;
  return N;
}

//===----------------------------------------------------------------------===//
// Determinism rules
//===----------------------------------------------------------------------===//

TEST(DetSeed, FlagsRawRandomnessInSrc) {
  LintResult R = lintSnippet("src/core/A.cpp",
                             "int f() { return rand(); }\n"
                             "long g() { return time(nullptr); }\n"
                             "#include <random>\n");
  EXPECT_EQ(countRule(R, "det-seed"), 3);
}

TEST(DetSeed, FlagsStdEngines) {
  LintResult R = lintSnippet(
      "src/nn/B.cpp", "std::mt19937 G(42);\nstd::random_device Dev;\n");
  EXPECT_EQ(countRule(R, "det-seed"), 2);
}

TEST(DetSeed, AllowedInRngTU) {
  LintResult R = lintSnippet("src/support/Rng.h",
                             "#include <random>\nstd::mt19937_64 Engine;\n");
  EXPECT_EQ(countRule(R, "det-seed"), 0);
}

TEST(DetSeed, MemberNamedTimeIsNotACall) {
  LintResult R = lintSnippet("src/core/A.cpp",
                             "double t = Timer.time(3); int u = x->time(1);\n"
                             "int timestep = 4; int mytime = timestep;\n");
  EXPECT_EQ(countRule(R, "det-seed"), 0);
}

TEST(DetSeed, LiteralsAndCommentsNeverMatch) {
  LintResult R = lintSnippet(
      "src/core/A.cpp",
      "// calling rand() would be bad\nconst char *S = \"rand()\";\n");
  EXPECT_EQ(countRule(R, "det-seed"), 0);
}

TEST(DetTime, FlagsChronoInSrcOnly) {
  const std::string Src =
      "#include <chrono>\nauto T = std::chrono::steady_clock::now();\n";
  EXPECT_EQ(countRule(lintSnippet("src/nn/C.cpp", Src), "det-time"), 2);
  // Tests and benches time and sleep legitimately: out of scope.
  EXPECT_EQ(countRule(lintSnippet("tests/t.cpp", Src), "det-time"), 0);
  EXPECT_EQ(countRule(lintSnippet("bench/b.cpp", Src), "det-time"), 0);
}

TEST(DetTime, AllowedInTimer) {
  LintResult R = lintSnippet("src/support/Timer.h",
                             "#include <chrono>\n"
                             "using C = std::chrono::steady_clock;\n");
  EXPECT_EQ(countRule(R, "det-time"), 0);
}

TEST(DetTime, AllowedInTelemetryImplOnly) {
  const std::string Src =
      "#include <chrono>\nauto T = std::chrono::steady_clock::now();\n";
  // The telemetry implementation is the second sanctioned clock TU.
  EXPECT_EQ(countRule(lintSnippet("src/support/Telemetry.cpp", Src),
                      "det-time"),
            0);
  // The header is included everywhere, so it stays in scope: clock
  // access must live behind monotonicNanos() in the .cpp.
  EXPECT_EQ(countRule(lintSnippet("src/support/Telemetry.h", Src),
                      "det-time"),
            2);
}

TEST(DetTime, InstrumentationMacrosInCoreAreClean) {
  // Regression: instrumenting a core TU with spans, counters, and phase
  // timers must not trip det-time — the macros expand to registry calls,
  // never to chrono tokens.
  LintResult R = lintSnippet(
      "src/core/Instrumented.cpp",
      "#include \"support/Telemetry.h\"\n"
      "void f() {\n"
      "  TRACE_SPAN(\"kleene.iterate\");\n"
      "  telemetry::PhaseTimer T(telemetry::Phase::Solver);\n"
      "  static const telemetry::Counter C =\n"
      "      telemetry::counterMetric(\"core.calls\");\n"
      "  C.increment();\n"
      "}\n");
  EXPECT_EQ(countRule(R, "det-time"), 0);
}

TEST(DetUnorderedIter, FlagsRangeForOverUnorderedMap) {
  LintResult R = lintSnippet(
      "src/serve/D.cpp",
      "std::unordered_map<std::string, int> Counts;\n"
      "void dump() { for (const auto &KV : Counts) { use(KV); } }\n");
  EXPECT_EQ(countRule(R, "det-unordered-iter"), 1);
}

TEST(DetUnorderedIter, FlagsIteratorWalk) {
  LintResult R = lintSnippet(
      "src/core/E.cpp",
      "std::unordered_set<int> Seen;\n"
      "auto It = Seen.begin();\nwhile (It != Seen.end()) ++It;\n");
  EXPECT_EQ(countRule(R, "det-unordered-iter"), 2);
}

TEST(DetUnorderedIter, KeyedLookupsAreFine) {
  LintResult R = lintSnippet(
      "src/serve/F.cpp",
      "std::unordered_map<std::string, int> Index;\n"
      "int get(const std::string &K) { return Index.find(K)->second; }\n"
      "void put(const std::string &K) { Index.emplace(K, 1); }\n");
  EXPECT_EQ(countRule(R, "det-unordered-iter"), 0);
}

TEST(DetUnorderedIter, OrderedContainersAndOtherDirsAreFine) {
  // std::map iterates in key order: deterministic, allowed.
  LintResult R1 = lintSnippet("src/core/G.cpp",
                              "std::map<int, int> M;\n"
                              "void f() { for (auto &KV : M) use(KV); }\n");
  EXPECT_EQ(countRule(R1, "det-unordered-iter"), 0);
  // Outside the result-path directories the rule does not apply.
  LintResult R2 = lintSnippet(
      "src/nn/H.cpp", "std::unordered_map<int, int> M;\n"
                      "void f() { for (auto &KV : M) use(KV); }\n");
  EXPECT_EQ(countRule(R2, "det-unordered-iter"), 0);
}

//===----------------------------------------------------------------------===//
// Soundness rules
//===----------------------------------------------------------------------===//

TEST(SoundFma, FlagsFmaOutsideKernelTUs) {
  const std::string Src = "double f(double a, double b, double c) {\n"
                          "  return std::fma(a, b, c);\n}\n"
                          "double g(double a) { return __builtin_fma(a, a, a); }\n";
  EXPECT_EQ(countRule(lintSnippet("src/core/I.cpp", Src), "sound-fma"), 2);
  EXPECT_EQ(
      countRule(lintSnippet("src/linalg/KernelsAvx2.cpp", Src), "sound-fma"),
      0);
}

TEST(SoundFma, SimilarNamesAreFine) {
  LintResult R = lintSnippet("src/core/J.cpp",
                             "int fmap(int x) { return x; }\n"
                             "int y = fmap(3); int fma = 0; fma = 1;\n");
  EXPECT_EQ(countRule(R, "sound-fma"), 0);
}

TEST(SoundFastmath, FlagsContractOnButNotOff) {
  EXPECT_EQ(countRule(lintSnippet("src/core/K.cpp",
                                  "#pragma STDC FP_CONTRACT ON\n"),
                      "sound-fastmath"),
            1);
  EXPECT_EQ(countRule(lintSnippet("src/core/K.cpp",
                                  "#pragma STDC FP_CONTRACT OFF\n"),
                      "sound-fastmath"),
            0);
  // No exemption anywhere — kernel TUs included.
  EXPECT_EQ(countRule(lintSnippet("src/linalg/KernelsAvx512.cpp",
                                  "#pragma GCC optimize (\"fast-math\")\n"),
                      "sound-fastmath"),
            1);
}

TEST(SoundRounding, CentralizedInRoundedInterval) {
  const std::string Src = "#include <cfenv>\n"
                          "void f() { fesetround(FE_UPWARD); }\n"
                          "double g(double x) { return nextafter(x, 1.0); }\n";
  // Include + fesetround + FE_UPWARD + nextafter.
  EXPECT_EQ(countRule(lintSnippet("src/lp/L.cpp", Src), "sound-rounding"), 4);
  EXPECT_EQ(countRule(lintSnippet("src/support/RoundedInterval.h", Src),
                      "sound-rounding"),
            0);
  // Tests build fixtures with nextafter (ulp separation): out of scope.
  EXPECT_EQ(countRule(lintSnippet("tests/t.cpp", Src), "sound-rounding"), 0);
}

//===----------------------------------------------------------------------===//
// Hot-path allocation
//===----------------------------------------------------------------------===//

TEST(HotAlloc, FlagsAllocationInKernelBodies) {
  LintResult R = lintSnippet(
      "src/linalg/KernelsGeneric.h",
      "namespace craft {\n"
      "inline void kern(double *Dst, size_t N) {\n"
      "  double *Tmp = new double[N];\n"
      "  std::vector<double> Buf(N);\n"
      "  std::string Label;\n"
      "  use(Tmp, Buf, Label, Dst);\n"
      "}\n"
      "} // namespace craft\n");
  EXPECT_EQ(countRule(R, "hot-alloc"), 3);
}

TEST(HotAlloc, BatchedTierIsInKernelScope) {
  // The batch-fused tier rides the Kernels* name prefix into hot-alloc
  // scope — pinned here so a rename cannot silently drop it.
  const std::string Src = "namespace craft {\n"
                          "void fuse(size_t N) {\n"
                          "  std::vector<double> Pack(N);\n"
                          "}\n"
                          "} // namespace craft\n";
  EXPECT_EQ(countRule(lintSnippet("src/linalg/KernelsBatched.cpp", Src),
                      "hot-alloc"),
            1);
  EXPECT_EQ(countRule(lintSnippet("src/linalg/KernelsBatched.h", Src),
                      "hot-alloc"),
            1);
  EXPECT_EQ(countRule(lintSnippet("src/linalg/KernelsTiling.h", Src),
                      "hot-alloc"),
            1);
}

TEST(SoundFma, BatchedTierIsNotFmaExempt) {
  // Only the three per-ISA TUs may spell FMA out; the batched tier
  // orchestrates their panel kernels and must never contract on its own.
  const std::string Src =
      "double f(double a, double b, double c) { return std::fma(a, b, c); }\n";
  EXPECT_EQ(countRule(lintSnippet("src/linalg/KernelsBatched.cpp", Src),
                      "sound-fma"),
            1);
  EXPECT_EQ(
      countRule(lintSnippet("src/linalg/KernelsScalar.cpp", Src), "sound-fma"),
      0);
}

TEST(HotAlloc, SignaturesAndOtherFilesAreFine) {
  // Outside a function body (a declaration's return/param types) the
  // tokens are part of the API, not a hot-path allocation.
  LintResult R1 = lintSnippet("src/linalg/Kernels.h",
                              "namespace craft {\n"
                              "void gemm(MatrixView A, MatrixView B);\n"
                              "}\n");
  EXPECT_EQ(countRule(R1, "hot-alloc"), 0);
  // Non-kernel linalg files may allocate.
  LintResult R2 = lintSnippet(
      "src/linalg/Matrix.cpp",
      "Matrix::Matrix(size_t N) { Data = new double[N]; }\n");
  EXPECT_EQ(countRule(R2, "hot-alloc"), 0);
}

//===----------------------------------------------------------------------===//
// Concurrency hygiene
//===----------------------------------------------------------------------===//

TEST(ConcDetach, FlagsDetachEverywhere) {
  EXPECT_EQ(countRule(lintSnippet("src/serve/M.cpp", "T.detach();\n"),
                      "conc-detach"),
            1);
  EXPECT_EQ(countRule(lintSnippet("tests/t.cpp", "Worker->detach();\n"),
                      "conc-detach"),
            1);
  // An unrelated method named detachable is fine.
  EXPECT_EQ(countRule(lintSnippet("src/serve/M.cpp", "T.detachable();\n"),
                      "conc-detach"),
            0);
}

TEST(ConcVolatile, FlagsVolatile) {
  EXPECT_EQ(countRule(lintSnippet("src/core/N.cpp",
                                  "volatile bool Ready = false;\n"),
                      "conc-volatile"),
            1);
}

TEST(ConcThread, NakedThreadOnlyInSupport) {
  const std::string Src = "std::thread T([] {});\n";
  EXPECT_EQ(countRule(lintSnippet("src/serve/O.cpp", Src), "conc-thread"), 1);
  EXPECT_EQ(countRule(lintSnippet("src/support/Pool.cpp", Src), "conc-thread"),
            0);
  // Tests/bench drive real threads deliberately: out of scope.
  EXPECT_EQ(countRule(lintSnippet("tests/t.cpp", Src), "conc-thread"), 0);
  // std::thread::id etc. is a type mention, not a spawn.
  EXPECT_EQ(countRule(lintSnippet("src/serve/O.cpp",
                                  "std::thread::id Who;\n"),
                      "conc-thread"),
            0);
}

//===----------------------------------------------------------------------===//
// Suppressions
//===----------------------------------------------------------------------===//

TEST(Suppression, LineScopedCoversNextLine) {
  LintResult R = lintSnippet(
      "src/core/P.cpp",
      "// craft-lint: allow(det-seed) — fixture generator, outcome-neutral\n"
      "int x = rand();\n"
      "int y = rand();\n"); // Third line: out of the suppression window.
  EXPECT_EQ(countRule(R, "det-seed"), 1);
  EXPECT_EQ(countSuppressed(R, "det-seed"), 1);
}

TEST(Suppression, WrappedCommentCoversLineBelowBlock) {
  LintResult R = lintSnippet(
      "src/core/Q.cpp",
      "// craft-lint: allow(det-seed) — a justification long enough to\n"
      "// wrap onto a second comment line before the code.\n"
      "int x = rand();\n");
  EXPECT_EQ(countRule(R, "det-seed"), 0);
  EXPECT_EQ(countSuppressed(R, "det-seed"), 1);
  ASSERT_FALSE(R.Diagnostics.empty());
  // The wrapped text is folded into one justification string.
  for (const Diagnostic &D : R.Diagnostics) {
    if (D.Suppressed) {
      EXPECT_NE(D.Justification.find("second comment line"),
                std::string::npos);
    }
  }
}

TEST(Suppression, FileWideCoversWholeFile) {
  LintResult R = lintSnippet(
      "src/core/R.cpp",
      "// craft-lint: allow-file(det-seed) — generator module, seeds are\n"
      "// fed from taskSeed by every caller.\n"
      "int x = rand();\n\n\nint y = rand();\n");
  EXPECT_EQ(countRule(R, "det-seed"), 0);
  EXPECT_EQ(countSuppressed(R, "det-seed"), 2);
}

TEST(Suppression, JustificationIsRequired) {
  LintResult R = lintSnippet("src/core/S.cpp",
                             "// craft-lint: allow(det-seed)\n"
                             "int x = rand();\n");
  // The bare waiver is itself a violation and does not suppress.
  EXPECT_EQ(countRule(R, "lint-suppression"), 1);
  EXPECT_EQ(countRule(R, "det-seed"), 1);
}

TEST(Suppression, UnknownRuleIsRejected) {
  LintResult R = lintSnippet(
      "src/core/T.cpp",
      "// craft-lint: allow(no-such-rule) — misspelled rule id\n");
  EXPECT_EQ(countRule(R, "lint-suppression"), 1);
}

TEST(Suppression, UnusedSuppressionWarnsButDoesNotFail) {
  LintResult R = lintSnippet(
      "src/core/U.cpp",
      "// craft-lint: allow(det-seed) — nothing here actually violates\n"
      "int x = 3;\n");
  EXPECT_EQ(countRule(R, "unused-suppression"), 1);
  EXPECT_EQ(R.unsuppressedErrors(), 0u); // Warning severity: exit stays 0.
}

TEST(Suppression, ProseMentionIsNotADirective) {
  LintResult R = lintSnippet(
      "src/core/V.cpp",
      "// This module is checked by craft-lint: allow nothing here.\n"
      "int x = 3;\n");
  EXPECT_EQ(countRule(R, "lint-suppression"), 0);
}

TEST(Suppression, MetaRuleIsNotWaivable) {
  LintResult R = lintSnippet(
      "src/core/W.cpp",
      "// craft-lint: allow-file(lint-suppression) — trying to silence\n"
      "// the suppression checker itself\n"
      "// craft-lint: allow(det-seed)\n"
      "int x = rand();\n");
  // The unjustified allow(det-seed) still reports.
  EXPECT_GE(countRule(R, "lint-suppression"), 1);
}

//===----------------------------------------------------------------------===//
// JSON schema
//===----------------------------------------------------------------------===//

TEST(Json, SchemaFields) {
  LintResult R = lintSnippet(
      "src/core/X.cpp",
      "int x = rand();\n"
      "// craft-lint: allow(conc-volatile) — optimization sink only\n"
      "volatile int V = 0;\n");
  std::string J = toJson(R);
  EXPECT_NE(J.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(J.find("\"files_scanned\": 1"), std::string::npos);
  EXPECT_NE(J.find("\"errors\": 1"), std::string::npos);
  EXPECT_NE(J.find("\"suppressed\": 1"), std::string::npos);
  EXPECT_NE(J.find("\"rule\": \"det-seed\""), std::string::npos);
  EXPECT_NE(J.find("\"severity\": \"error\""), std::string::npos);
  EXPECT_NE(J.find("\"suppressed\": true"), std::string::npos);
  EXPECT_NE(J.find("\"justification\": \"optimization sink only\""),
            std::string::npos);
  // Line/col are 1-based integers.
  EXPECT_NE(J.find("\"line\": 1"), std::string::npos);
}

TEST(Json, EmptyResultIsValid) {
  LintResult R = lintSnippet("src/core/Y.cpp", "int x = 3;\n");
  std::string J = toJson(R);
  EXPECT_NE(J.find("\"errors\": 0"), std::string::npos);
  EXPECT_NE(J.find("\"diagnostics\": []"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// CLI exit-code contract
//===----------------------------------------------------------------------===//

class LintCli : public ::testing::Test {
protected:
  void SetUp() override {
    Dir = std::filesystem::path(::testing::TempDir()) / "craft_lint_cli";
    std::filesystem::create_directories(Dir / "src" / "core");
  }
  void TearDown() override { std::filesystem::remove_all(Dir); }

  void write(const std::string &Rel, const std::string &Contents) {
    std::ofstream Out(Dir / Rel);
    Out << Contents;
  }

  int run(std::vector<std::string> Args, std::string &Out) {
    Args.insert(Args.begin(), {"--root", Dir.string()});
    return lintMain(Args, Out);
  }

  std::filesystem::path Dir;
};

TEST_F(LintCli, CleanTreeExitsZero) {
  write("src/core/clean.cpp", "int f() { return 3; }\n");
  std::string Out;
  EXPECT_EQ(run({(Dir / "src").string()}, Out), 0);
  EXPECT_NE(Out.find("0 violations"), std::string::npos);
}

TEST_F(LintCli, ViolationsExitOne) {
  write("src/core/bad.cpp", "int f() { return rand(); }\n");
  std::string Out;
  EXPECT_EQ(run({(Dir / "src").string()}, Out), 1);
  EXPECT_NE(Out.find("[det-seed]"), std::string::npos);
}

TEST_F(LintCli, SuppressedViolationExitsZero) {
  write("src/core/ok.cpp",
        "// craft-lint: allow(det-seed) — demo fixture for the exit test\n"
        "int f() { return rand(); }\n");
  std::string Out;
  EXPECT_EQ(run({(Dir / "src").string()}, Out), 0);
  EXPECT_NE(Out.find("1 suppressed"), std::string::npos);
}

TEST_F(LintCli, UsageErrorsExitTwo) {
  std::string Out;
  EXPECT_EQ(lintMain({}, Out), 2);                        // No inputs.
  EXPECT_EQ(lintMain({"--bogus-flag"}, Out), 2);          // Unknown flag.
  EXPECT_EQ(lintMain({"--rule"}, Out), 2);                // Missing value.
  EXPECT_EQ(lintMain({"--rule", "no-such", "x"}, Out), 2); // Unknown rule.
  EXPECT_EQ(lintMain({(Dir / "missing.cpp").string()}, Out), 2);
}

TEST_F(LintCli, RuleFilterRestrictsChecking) {
  write("src/core/two.cpp", "volatile int V = 0;\nint x = rand();\n");
  std::string Out;
  EXPECT_EQ(run({"--rule", "conc-volatile", (Dir / "src").string()}, Out), 1);
  EXPECT_NE(Out.find("[conc-volatile]"), std::string::npos);
  EXPECT_EQ(Out.find("[det-seed]"), std::string::npos);
}

TEST_F(LintCli, JsonFlagEmitsSchema) {
  write("src/core/j.cpp", "int x = rand();\n");
  std::string Out;
  EXPECT_EQ(run({"--json", (Dir / "src").string()}, Out), 1);
  EXPECT_NE(Out.find("\"schema_version\": 1"), std::string::npos);
}

TEST_F(LintCli, ListRulesDocumentsEveryRule) {
  std::string Out;
  EXPECT_EQ(lintMain({"--list-rules"}, Out), 0);
  for (const RuleInfo &R : allRules()) {
    EXPECT_NE(Out.find(R.Id), std::string::npos) << R.Id;
    EXPECT_NE(Out.find("protects:"), std::string::npos);
  }
}

} // namespace
