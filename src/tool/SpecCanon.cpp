//===- tool/SpecCanon.cpp -------------------------------------------------===//

#include "tool/SpecCanon.h"

#include "support/ThreadPool.h"

#include <cstdio>

using namespace craft;

uint64_t craft::fnv1a64(const void *Data, size_t Size) {
  const unsigned char *Bytes = static_cast<const unsigned char *>(Data);
  uint64_t H = 1469598103934665603ull;
  for (size_t I = 0; I < Size; ++I) {
    H ^= Bytes[I];
    H *= 1099511628211ull;
  }
  return H;
}

namespace {

void appendDouble(std::string &Out, double V) {
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  Out += Buf;
}

void appendVector(std::string &Out, const char *Name, const Vector &V) {
  Out += Name;
  Out += '=';
  for (size_t I = 0; I < V.size(); ++I) {
    if (I)
      Out += ',';
    appendDouble(Out, V[I]);
  }
  Out += ';';
}

} // namespace

std::string craft::canonicalSpec(const VerificationSpec &Spec) {
  // v2: domain and cascade joined the canonical form — a cached Box
  // verdict must never answer a CH-Zonotope request (and vice versa).
  std::string Out = "craftspec.v2;";
  Out += "verifier=";
  Out += Spec.Verifier == SpecVerifier::Craft   ? "craft"
         : Spec.Verifier == SpecVerifier::Box   ? "box"
         : Spec.Verifier == SpecVerifier::Crown ? "crown"
                                                : "lipschitz";
  Out += ";domain=";
  Out += verifierDomainName(Spec.Domain);
  Out += ";cascade=" + Spec.Cascade.render();
  Out += ";target=" + std::to_string(Spec.TargetClass) + ";";
  appendVector(Out, "lo", Spec.InLo);
  appendVector(Out, "hi", Spec.InHi);
  appendVector(Out, "center", Spec.Center);
  Out += "epsilon=";
  appendDouble(Out, Spec.Epsilon);
  Out += ";clamp=";
  appendDouble(Out, Spec.ClampLo);
  Out += ',';
  appendDouble(Out, Spec.ClampHi);
  Out += ";alpha1=";
  appendDouble(Out, Spec.Alpha1);
  Out += ";alpha2=";
  appendDouble(Out, Spec.Alpha2);
  Out += ";max-iterations=" + std::to_string(Spec.MaxIterations);
  Out += ";lambda-opt=" + std::to_string(Spec.LambdaOptLevel);
  // SplitJobs is deliberately absent: split outcomes are byte-identical
  // for every worker count, so two specs differing only in split-jobs are
  // the same query and must share one cache entry.
  Out += ";split-depth=" + std::to_string(Spec.SplitDepth);
  Out += ";attack=";
  Out += Spec.Attack ? '1' : '0';
  Out += ";seed=" + std::to_string(Spec.AttackSeed) + ";";
  return Out;
}

std::string craft::serveCacheKey(const VerificationSpec &Spec,
                                 uint64_t ModelHash) {
  std::string Key = canonicalSpec(Spec);
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(ModelHash));
  Key += "model=";
  Key += Buf;
  Key += ';';
  return Key;
}

uint64_t craft::serveAttackSeed(uint64_t BaseSeed,
                                const std::string &CacheKey) {
  // Route the content hash through the same splitmix64 stream the batch
  // driver uses, so serve seeds and batch seeds share one generator
  // family but can never collide by construction accident.
  return taskSeed(BaseSeed, fnv1a64(CacheKey.data(), CacheKey.size()));
}
