//===- linalg/KernelsBatched.h - Batch-fused gemm tier ----------*- C++ -*-===//
//
// Part of the Craft reproduction (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batched-gemm tier: fuses many small independent gemms into one
/// tiled dispatch over the persistent kernel pool and shares packed
/// operand panels across every problem that hits the same matrix — a
/// batch of 64 co-admitted queries against one model packs each weight
/// matrix once instead of 64 times.
///
/// Two entry layers:
///
///  - gemmBatched(): the direct API. Groups the problems by shared
///    operand content, packs each shared operand once, and fans the
///    members out over the kernel pool. Results are byte-identical to
///    looping kernels::gemm over the problems one by one.
///
///  - GemmWaveGate: the implicit capture layer the serve/batch driver
///    threads use. Worker threads verifying co-admitted queries enroll in
///    a gate (WaveWorkerScope); eligible kernels::gemm calls on enrolled
///    threads rendezvous inside the gate and execute together as one
///    gemmBatched() wave — the abstract-interpretation loops stay layer-
///    locked across queries without any changes to the solver code.
///
/// Determinism contract: fused execution replays the exact per-element
/// reduction order of the sequential kernels (ascending-k single
/// accumulator, mul then add, identical Alpha/Beta combine; shared-A
/// groups run transposed, which only commutes each individual IEEE
/// multiply), so fused results are byte-identical to sequential results.
/// Wave *composition* (which calls fuse together) depends on timing; the
/// values never do.
///
/// Panel-sharing lifetime contract: the shared pack lives in the wave
/// executor's Workspace scope; pool workers read it concurrently. This is
/// safe because arena blocks are never freed or moved while their thread
/// lives, and the executor blocks until every member task completed
/// before the scope unwinds.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFT_LINALG_KERNELSBATCHED_H
#define CRAFT_LINALG_KERNELSBATCHED_H

#include "linalg/Views.h"

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <span>

namespace craft {
namespace kernels {

/// One independent gemm: Out = Alpha * A * B + Beta * Out.
struct GemmProblem {
  MatrixView Out;
  ConstMatrixView A;
  ConstMatrixView B;
  double Alpha = 1.0;
  double Beta = 0.0;
};

/// Process-wide work counters for the batched tier (monotonic across
/// calls; snapshot with batchGemmStats, zero with resetBatchGemmStats).
struct BatchGemmStats {
  /// Rendezvous waves executed by GemmWaveGate.
  uint64_t Waves = 0;
  /// Problems executed inside a fused (shared-operand) group.
  uint64_t FusedProblems = 0;
  /// Problems handed to the batched tier but executed individually
  /// (no content-equal partner in their chunk).
  uint64_t PlainProblems = 0;
  /// Fused groups formed (shared-A and shared-B combined).
  uint64_t SharedGroups = 0;
  /// Operand panels actually packed by fused groups (one shared pack per
  /// group).
  uint64_t PanelsPackedShared = 0;
  /// Operand panels the same groups would have packed had every member
  /// run through the unfused gemm (one pack per member) — the work the
  /// sharing saved.
  uint64_t PanelsPackedUnshared = 0;
  /// Wave posts that timed out waiting for alignment and ran unfused.
  uint64_t PostTimeouts = 0;
};

BatchGemmStats batchGemmStats();
void resetBatchGemmStats();

/// Executes every problem, fusing content-equal operands: problems
/// sharing the same A run as one transposed group over a single packed
/// A^T (requires Beta == 0), remaining problems sharing the same B run
/// over a single packed B, and the rest run through the plain tiled path.
/// Byte-identical to calling kernels::gemm per problem, in any order —
/// each problem's output depends only on its own operands.
///
/// Outputs must not alias each other or any operand. Operand views must
/// stay valid for the whole call (members execute on pool threads).
void gemmBatched(std::span<const GemmProblem> Problems);

namespace wave {

/// Capture hook called by kernels::gemm: posts the call into the calling
/// thread's bound gate when the thread is enrolled and the call is
/// eligible (Beta == 0, nonzero shape, at least CRAFT_BATCH_FUSE_MIN_FLOPS
/// multiply-adds, not already inside a tile or wave). Returns true when
/// the gemm was executed (fused or via the gate's fallback); false means
/// the caller runs it unfused.
bool maybePost(MatrixView Out, ConstMatrixView A, ConstMatrixView B,
               double Alpha, double Beta);

} // namespace wave

/// Rendezvous point for one co-admitted batch: worker threads enroll,
/// and eligible kernels::gemm calls on enrolled threads block briefly
/// until every enrolled (non-paused) thread has posted its next gemm,
/// then execute together as one gemmBatched() wave. A post that waits
/// longer than CRAFT_BATCH_FUSE_WAIT_MS runs unfused — alignment
/// affects only throughput and the pack counters, never values.
///
/// Created per batch by the driver; destroyed only after every enrolled
/// scope exited (the driver joins its workers first).
class GemmWaveGate {
public:
  GemmWaveGate() = default;
  GemmWaveGate(const GemmWaveGate &) = delete;
  GemmWaveGate &operator=(const GemmWaveGate &) = delete;

  /// Hard cap on concurrently enrolled threads (and thus wave width).
  static constexpr size_t MaxWave = 512;

private:
  friend class WaveWorkerScope;
  friend class WavePauseScope;
  friend bool wave::maybePost(MatrixView, ConstMatrixView, ConstMatrixView,
                              double, double);

  enum class SlotState : uint8_t { Free, Pending, Taken, Done };

  /// One posted gemm awaiting (or undergoing) fused execution.
  struct Slot {
    MatrixView Out;
    ConstMatrixView A;
    ConstMatrixView B;
    double Alpha = 1.0;
    std::exception_ptr Err;
    SlotState State = SlotState::Free;
  };

  /// Registers the calling thread; false when the gate is full (the
  /// caller then runs unfused for the whole batch).
  bool enroll();
  void deregister();
  /// Excludes the calling thread from the rendezvous count while it runs
  /// a long gemm-free phase (e.g. the PGD attack fallback), so waiting
  /// posters do not stall on it.
  void pause();
  void resume();

  /// Posts one gemm and blocks until it executed (possibly by becoming
  /// the wave executor). Returns false when the post timed out and was
  /// withdrawn — the caller must run the gemm itself.
  bool post(MatrixView Out, ConstMatrixView A, ConstMatrixView B,
            double Alpha);

  /// With the lock held: while every active thread has a pending post,
  /// take the pending slots and run them as one gemmBatched() wave
  /// (unlocked), then mark them Done. Callers that change the
  /// rendezvous condition (post / pause / deregister) invoke this.
  void runWavesLocked(std::unique_lock<std::mutex> &Lock);

  bool waveReady() const {
    return !WaveInFlight && PendingCount > 0 &&
           PendingCount == Enrolled - Paused;
  }

  std::mutex M;
  std::condition_variable Cv;
  size_t Enrolled = 0;
  size_t Paused = 0;
  size_t PendingCount = 0;
  bool WaveInFlight = false;
  Slot Slots[MaxWave];
  /// Wave scratch (guarded by WaveInFlight; only the executor touches
  /// it). Member arrays, not stack, to keep executor frames small.
  size_t TakenIdx[MaxWave];
  GemmProblem WaveProblems[MaxWave];
};

/// RAII enrollment of the calling thread into \p Gate (nullptr = no-op:
/// the thread's gemms run unfused). Binds the gate as the thread's
/// capture target for kernels::gemm. Must be destroyed on the same
/// thread before the gate is destroyed.
class WaveWorkerScope {
public:
  explicit WaveWorkerScope(GemmWaveGate *Gate);
  ~WaveWorkerScope();
  WaveWorkerScope(const WaveWorkerScope &) = delete;
  WaveWorkerScope &operator=(const WaveWorkerScope &) = delete;

private:
  GemmWaveGate *Gate;
};

/// RAII pause of the calling thread's gate enrollment around gemm-free
/// phases (no-op when the thread is not enrolled or already paused).
class WavePauseScope {
public:
  WavePauseScope();
  ~WavePauseScope();
  WavePauseScope(const WavePauseScope &) = delete;
  WavePauseScope &operator=(const WavePauseScope &) = delete;

private:
  GemmWaveGate *Gate;
};

} // namespace kernels
} // namespace craft

#endif // CRAFT_LINALG_KERNELSBATCHED_H
