//===- tools/craft_lint/Lint.cpp - Repo invariant checker -----------------===//
//
// Lexer, suppression parser, rule engine, and CLI driver for craft-lint.
// Deliberately self-contained (no dependency on the craft library): the
// linter must build and run even when the library it polices does not.
//
//===----------------------------------------------------------------------===//

#include "Lint.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

using namespace craft;
using namespace craft::lint;

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

namespace {

enum class Tok {
  Ident,   ///< Identifier or keyword.
  Number,  ///< Numeric literal (pp-number; good enough here).
  String,  ///< String literal, raw strings included.
  Char,    ///< Character literal.
  Punct,   ///< Punctuation; `::` and `->` are single tokens.
  Comment, ///< // or /* */ comment, text without delimiters.
  PP,      ///< Whole preprocessor line (continuations folded).
};

struct Token {
  Tok Kind;
  std::string Text;
  int Line = 1; ///< 1-based line of the token's first character.
  int Col = 1;  ///< 1-based column.
};

bool isIdentStart(char C) {
  return std::isalpha(static_cast<unsigned char>(C)) || C == '_';
}
bool isIdentChar(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_';
}

/// Lexes \p Src into tokens. Comments are kept (the suppression parser
/// reads them); string/char literal *contents* are discarded so forbidden
/// names inside literals never match a rule.
std::vector<Token> lex(const std::string &Src) {
  std::vector<Token> Toks;
  size_t I = 0, N = Src.size();
  int Line = 1, Col = 1;
  auto advance = [&](size_t K) {
    for (size_t J = 0; J < K && I < N; ++J, ++I) {
      if (Src[I] == '\n') {
        ++Line;
        Col = 1;
      } else {
        ++Col;
      }
    }
  };
  auto atLineStart = [&] {
    // Only whitespace between the last newline and I?
    size_t J = I;
    while (J > 0 && Src[J - 1] != '\n') {
      if (!std::isspace(static_cast<unsigned char>(Src[J - 1])))
        return false;
      --J;
    }
    return true;
  };

  while (I < N) {
    char C = Src[I];
    int TLine = Line, TCol = Col;

    if (std::isspace(static_cast<unsigned char>(C))) {
      advance(1);
      continue;
    }

    // Preprocessor line: '#' first on its line; backslash continuations
    // and line comments are folded into one PP token.
    if (C == '#' && atLineStart()) {
      std::string Text;
      while (I < N) {
        if (Src[I] == '\\' && I + 1 < N && Src[I + 1] == '\n') {
          Text += ' ';
          advance(2);
          continue;
        }
        if (Src[I] == '\n')
          break;
        Text += Src[I];
        advance(1);
      }
      Toks.push_back({Tok::PP, Text, TLine, TCol});
      continue;
    }

    // Comments.
    if (C == '/' && I + 1 < N && Src[I + 1] == '/') {
      advance(2);
      std::string Text;
      while (I < N && Src[I] != '\n') {
        Text += Src[I];
        advance(1);
      }
      Toks.push_back({Tok::Comment, Text, TLine, TCol});
      continue;
    }
    if (C == '/' && I + 1 < N && Src[I + 1] == '*') {
      advance(2);
      std::string Text;
      while (I + 1 < N && !(Src[I] == '*' && Src[I + 1] == '/')) {
        Text += Src[I];
        advance(1);
      }
      advance(2);
      Toks.push_back({Tok::Comment, Text, TLine, TCol});
      continue;
    }

    // Raw string literal R"delim( ... )delim".
    if (C == 'R' && I + 1 < N && Src[I + 1] == '"') {
      size_t DelimBegin = I + 2;
      size_t Paren = Src.find('(', DelimBegin);
      if (Paren != std::string::npos && Paren - DelimBegin <= 16) {
        std::string Close =
            ")" + Src.substr(DelimBegin, Paren - DelimBegin) + "\"";
        size_t End = Src.find(Close, Paren + 1);
        size_t Stop = End == std::string::npos ? N : End + Close.size();
        advance(Stop - I);
        Toks.push_back({Tok::String, "", TLine, TCol});
        continue;
      }
    }

    // Ordinary string / char literals (prefixes like u8 lex as an
    // identifier first, which is harmless for our rules).
    if (C == '"' || C == '\'') {
      char Quote = C;
      advance(1);
      while (I < N && Src[I] != Quote) {
        if (Src[I] == '\\' && I + 1 < N)
          advance(2);
        else if (Src[I] == '\n')
          break; // Unterminated; resync at the newline.
        else
          advance(1);
      }
      advance(1);
      Toks.push_back(
          {Quote == '"' ? Tok::String : Tok::Char, "", TLine, TCol});
      continue;
    }

    if (isIdentStart(C)) {
      std::string Text;
      while (I < N && isIdentChar(Src[I])) {
        Text += Src[I];
        advance(1);
      }
      Toks.push_back({Tok::Ident, Text, TLine, TCol});
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(C))) {
      std::string Text;
      while (I < N && (isIdentChar(Src[I]) || Src[I] == '.' ||
                       ((Src[I] == '+' || Src[I] == '-') && !Text.empty() &&
                        (Text.back() == 'e' || Text.back() == 'E' ||
                         Text.back() == 'p' || Text.back() == 'P')))) {
        Text += Src[I];
        advance(1);
      }
      Toks.push_back({Tok::Number, Text, TLine, TCol});
      continue;
    }

    // Punctuation; `::` and `->` matter to the rules, so lex them whole.
    if (C == ':' && I + 1 < N && Src[I + 1] == ':') {
      Toks.push_back({Tok::Punct, "::", TLine, TCol});
      advance(2);
      continue;
    }
    if (C == '-' && I + 1 < N && Src[I + 1] == '>') {
      Toks.push_back({Tok::Punct, "->", TLine, TCol});
      advance(2);
      continue;
    }
    Toks.push_back({Tok::Punct, std::string(1, C), TLine, TCol});
    advance(1);
  }
  return Toks;
}

//===----------------------------------------------------------------------===//
// Suppressions
//===----------------------------------------------------------------------===//

/// One parsed `craft-lint: allow(...)` / `allow-file(...)` comment.
struct Suppression {
  std::set<std::string> Rules;
  bool FileWide = false;
  int Line = 0; ///< Line the comment starts on.
  int EndLine = 0;
  std::string Justification;
  bool Used = false;
};

std::string trimmed(const std::string &S) {
  size_t B = S.find_first_not_of(" \t");
  if (B == std::string::npos)
    return "";
  size_t E = S.find_last_not_of(" \t");
  return S.substr(B, E - B + 1);
}

/// Parses suppressions out of the comment tokens. A directive must START
/// the comment (after the doxygen slash run and whitespace) — prose that
/// merely mentions the marker, and indented documentation examples, never
/// parse as directives. Malformed directives (unparseable rule list,
/// unknown rule id, empty justification) are reported via \p Emit as
/// `lint-suppression` diagnostics so a typo can never silently disable a
/// rule.
template <typename EmitFn>
std::vector<Suppression> collectSuppressions(const std::vector<Token> &Toks,
                                             const EmitFn &Emit) {
  const std::string Marker = "craft-lint:";
  std::vector<Suppression> Out;
  for (size_t TI = 0; TI < Toks.size(); ++TI) {
    const Token &T = Toks[TI];
    if (T.Kind != Tok::Comment)
      continue;
    // Strip the doxygen continuation (`///` lexes as text starting "/")
    // and leading whitespace — one slash run only, so an example shown
    // inside a doc comment (`///   // craft-lint: ...`) stays inert.
    size_t Pos = 0;
    while (Pos < T.Text.size() && (T.Text[Pos] == '/' || T.Text[Pos] == '*'))
      ++Pos;
    while (Pos < T.Text.size() &&
           std::isspace(static_cast<unsigned char>(T.Text[Pos])))
      ++Pos;
    if (T.Text.compare(Pos, Marker.size(), Marker) != 0)
      continue;
    std::string Rest = T.Text.substr(Pos + Marker.size());
    std::string Directive = trimmed(Rest);
    bool FileWide = false;
    const std::string AllowFile = "allow-file(", Allow = "allow(";
    size_t Open;
    if (Directive.rfind(AllowFile, 0) == 0) {
      FileWide = true;
      Open = AllowFile.size();
    } else if (Directive.rfind(Allow, 0) == 0) {
      Open = Allow.size();
    } else {
      Emit(T.Line, T.Col, "lint-suppression",
           "unrecognized craft-lint directive (expected allow(...) or "
           "allow-file(...))");
      continue;
    }
    size_t Close = Directive.find(')', Open);
    if (Close == std::string::npos) {
      Emit(T.Line, T.Col, "lint-suppression",
           "unterminated rule list in craft-lint suppression");
      continue;
    }

    Suppression S;
    S.FileWide = FileWide;
    S.Line = T.Line;
    S.EndLine =
        T.Line + static_cast<int>(std::count(T.Text.begin(), T.Text.end(),
                                             '\n'));
    // A `//` comment block wrapping over several lines lexes as one token
    // per line; fold the continuation lines into this suppression's
    // coverage (and justification) so a wrapped justification still
    // shields the line below the block.
    std::string Continuation;
    for (size_t J = TI + 1; J < Toks.size(); ++J) {
      if (Toks[J].Kind != Tok::Comment || Toks[J].Line != S.EndLine + 1)
        break;
      std::string Cont = trimmed(Toks[J].Text);
      size_t P = 0;
      while (P < Cont.size() && (Cont[P] == '/' || Cont[P] == '*'))
        ++P;
      while (P < Cont.size() &&
             std::isspace(static_cast<unsigned char>(Cont[P])))
        ++P;
      if (Cont.compare(P, Marker.size(), Marker) == 0)
        break; // A new directive starts its own block.
      S.EndLine = Toks[J].Line;
      // Two appends, not `+= " " + ...`: GCC 12's -Wrestrict misfires on
      // const char* + string&& chains (same workaround as bench_fig2).
      Continuation += ' ';
      Continuation += trimmed(Cont.substr(P));
      TI = J;
    }
    std::stringstream List(Directive.substr(Open, Close - Open));
    std::string Rule;
    bool Ok = true;
    while (std::getline(List, Rule, ',')) {
      Rule = trimmed(Rule);
      bool Known = false;
      for (const RuleInfo &R : allRules())
        Known = Known || R.Id == Rule;
      if (!Known) {
        Emit(T.Line, T.Col, "lint-suppression",
             "suppression names unknown rule '" + Rule + "'");
        Ok = false;
        break;
      }
      S.Rules.insert(Rule);
    }
    if (!Ok || S.Rules.empty()) {
      if (Ok)
        Emit(T.Line, T.Col, "lint-suppression",
             "suppression with an empty rule list");
      continue;
    }

    // Justification: everything after ')', stripped of separator dashes.
    std::string Just = Directive.substr(Close + 1);
    size_t B = Just.find_first_not_of(" \t:-");
    // Tolerate UTF-8 em/en dashes as the separator.
    while (B != std::string::npos && B + 2 < Just.size() &&
           static_cast<unsigned char>(Just[B]) == 0xE2 &&
           static_cast<unsigned char>(Just[B + 1]) == 0x80) {
      B = Just.find_first_not_of(" \t:-", B + 3);
    }
    S.Justification = B == std::string::npos ? "" : trimmed(Just.substr(B));
    S.Justification = trimmed(S.Justification + Continuation);
    if (S.Justification.empty()) {
      Emit(T.Line, T.Col, "lint-suppression",
           "suppression without a justification (write `craft-lint: "
           "allow(rule) — why this is sound here`)");
      continue;
    }
    Out.push_back(std::move(S));
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Path scoping
//===----------------------------------------------------------------------===//

bool startsWith(const std::string &S, const std::string &Prefix) {
  return S.rfind(Prefix, 0) == 0;
}

std::string baseName(const std::string &Path) {
  size_t Slash = Path.find_last_of('/');
  return Slash == std::string::npos ? Path : Path.substr(Slash + 1);
}

/// Where a file sits in the repo, for rule scoping.
struct FileScope {
  bool InSrc = false;     ///< src/** — the shipped library.
  bool InTools = false;   ///< tools/** — CLI + this linter.
  bool InSupport = false; ///< src/support/**.
  bool IsRngTU = false;   ///< src/support/Rng.{h,cpp}.
  bool IsTimerTU = false; ///< src/support/Timer.h.
  /// src/support/Telemetry.cpp — the telemetry layer's one clock
  /// (monotonicNanos); its header stays chrono-free by design.
  bool IsTelemetryTU = false;
  bool IsRoundedTU = false; ///< src/support/RoundedInterval.h.
  bool IsIsaKernelTU = false; ///< Per-ISA kernel TU (owns its -m flags).
  /// src/linalg/Kernels* (hot-path tier): the dispatch layer, the per-ISA
  /// TUs, and the batch-fused tier (KernelsBatched.*, KernelsTiling.h) —
  /// the Kernels name prefix keeps future kernel files in scope by
  /// construction.
  bool IsKernelFile = false;
  bool InResultPath = false;  ///< core/domains/tool/serve result paths.
};

FileScope classify(const std::string &Rel) {
  FileScope FS;
  FS.InSrc = startsWith(Rel, "src/");
  FS.InTools = startsWith(Rel, "tools/");
  FS.InSupport = startsWith(Rel, "src/support/");
  FS.IsRngTU = Rel == "src/support/Rng.h" || Rel == "src/support/Rng.cpp";
  FS.IsTimerTU = Rel == "src/support/Timer.h";
  FS.IsTelemetryTU = Rel == "src/support/Telemetry.cpp";
  FS.IsRoundedTU = Rel == "src/support/RoundedInterval.h";
  // Exactly the three TUs whose -ffp-contract=off builds may spell FMA
  // out; the batched tier (KernelsBatched.cpp) stays un-exempt — it
  // orchestrates the per-ISA panel kernels and does no arithmetic itself.
  FS.IsIsaKernelTU = Rel == "src/linalg/KernelsScalar.cpp" ||
                     Rel == "src/linalg/KernelsAvx2.cpp" ||
                     Rel == "src/linalg/KernelsAvx512.cpp";
  FS.IsKernelFile =
      startsWith(Rel, "src/linalg/") && startsWith(baseName(Rel), "Kernels");
  FS.InResultPath = startsWith(Rel, "src/core/") ||
                    startsWith(Rel, "src/domains/") ||
                    startsWith(Rel, "src/tool/") ||
                    startsWith(Rel, "src/serve/");
  return FS;
}

//===----------------------------------------------------------------------===//
// Rule engine helpers
//===----------------------------------------------------------------------===//

bool tokenIs(const std::vector<Token> &T, size_t I, Tok K,
             const char *Text) {
  return I < T.size() && T[I].Kind == K && T[I].Text == Text;
}

/// True when token I is the identifier \p Name used as `std::Name` or a
/// bare `Name` (but not `foo::Name` for a foreign namespace `foo`).
bool isStdOrBare(const std::vector<Token> &T, size_t I, const char *Name) {
  if (!(T[I].Kind == Tok::Ident && T[I].Text == Name))
    return false;
  if (I >= 2 && tokenIs(T, I - 1, Tok::Punct, "::"))
    return T[I - 2].Kind == Tok::Ident && T[I - 2].Text == "std";
  return !(I >= 1 && tokenIs(T, I - 1, Tok::Punct, "::"));
}

/// True when the PP token text includes \p Header as `<Header>` or
/// `"Header"`.
bool ppIncludes(const std::string &PP, const std::string &Header) {
  if (PP.find("include") == std::string::npos)
    return false;
  return PP.find("<" + Header + ">") != std::string::npos ||
         PP.find("\"" + Header + "\"") != std::string::npos;
}

/// Names of variables declared in this file with an unordered_map /
/// unordered_set type (lexical heuristic: the last plain identifier after
/// the balanced template argument list and before a declarator
/// terminator). Also matches `auto &X : ...` aliasing — not needed; kept
/// simple on purpose.
std::set<std::string>
unorderedDeclNames(const std::vector<Token> &T) {
  std::set<std::string> Names;
  for (size_t I = 0; I < T.size(); ++I) {
    if (T[I].Kind != Tok::Ident ||
        (T[I].Text != "unordered_map" && T[I].Text != "unordered_set"))
      continue;
    size_t J = I + 1;
    if (J < T.size() && tokenIs(T, J, Tok::Punct, "<")) {
      int Depth = 0;
      for (; J < T.size(); ++J) {
        if (T[J].Kind != Tok::Punct)
          continue;
        if (T[J].Text == "<")
          ++Depth;
        else if (T[J].Text == ">" && --Depth == 0) {
          ++J;
          break;
        }
      }
    }
    // Collect `* & :: ident` runs; the last identifier before a
    // terminator is the declared name.
    std::string Last;
    for (; J < T.size(); ++J) {
      if (T[J].Kind == Tok::Ident) {
        Last = T[J].Text;
        continue;
      }
      if (T[J].Kind == Tok::Punct &&
          (T[J].Text == "*" || T[J].Text == "&" || T[J].Text == "::"))
        continue;
      break;
    }
    bool Terminated =
        J < T.size() && T[J].Kind == Tok::Punct &&
        (T[J].Text == ";" || T[J].Text == "=" || T[J].Text == "{" ||
         T[J].Text == "," || T[J].Text == ")");
    if (Terminated && !Last.empty())
      Names.insert(Last);
  }
  return Names;
}

} // namespace

//===----------------------------------------------------------------------===//
// Rule set
//===----------------------------------------------------------------------===//

const std::vector<RuleInfo> &craft::lint::allRules() {
  static const std::vector<RuleInfo> Rules = {
      {"det-seed", Severity::Error,
       "raw randomness (rand, random_device, mt19937, <random>, time(...)"
       " seeds) outside support/Rng",
       "all randomness flows through the deterministic taskSeed stream, so "
       "outcomes are byte-identical for any worker count"},
      {"det-time", Severity::Error,
       "std::chrono / clock calls outside support/Timer and "
       "support/Telemetry.cpp (src+tools scope)",
       "wall-clock values must never leak into seeds, iteration order, or "
       "result payloads"},
      {"det-unordered-iter", Severity::Error,
       "iteration over unordered containers in core/domains/tool/serve",
       "hash-table iteration order is implementation-defined; result paths "
       "must use deterministically ordered traversals"},
      {"sound-fma", Severity::Error,
       "std::fma / __builtin_fma outside the per-ISA kernel TUs",
       "a fused mul+add rounds once, not twice, silently changing results "
       "across backends; kernel TUs compile with -ffp-contract=off. The "
       "batched tier (KernelsBatched.*) is NOT exempt: it replays the "
       "per-ISA panel kernels and must never introduce contraction of its "
       "own"},
      {"sound-fastmath", Severity::Error,
       "fast-math / FP_CONTRACT pragmas or attributes anywhere",
       "value-changing FP optimizations break the outward-rounding "
       "soundness argument of support/RoundedInterval"},
      {"sound-rounding", Severity::Error,
       "rounding-mode / nextafter primitives outside "
       "support/RoundedInterval.h (src+tools scope)",
       "directed rounding is centralized so the certificate checker's "
       "bracketing proof holds everywhere it is used"},
      {"hot-alloc", Severity::Error,
       "new / malloc / std::vector / std::string in kernel function bodies",
       "the kernel tier is allocation-free by contract; scratch comes from "
       "the caller-owned Workspace arena. Covers every src/linalg/Kernels* "
       "file, including the batch-fused tier (KernelsBatched, "
       "KernelsTiling): shared packs and wave scratch live in arenas or "
       "fixed member arrays, never the heap"},
      {"conc-detach", Severity::Error, "std::thread::detach anywhere",
       "detached threads outlive their owners and race teardown; every "
       "thread in this repo is joined"},
      {"conc-volatile", Severity::Error,
       "volatile used where synchronization is meant",
       "volatile is not a memory fence; cross-thread state uses std::atomic "
       "or a mutex"},
      {"conc-thread", Severity::Error,
       "naked std::thread outside src/support (src scope)",
       "thread lifecycle is owned by the support layer (ThreadPool) or "
       "carries an explicit justified suppression at the spawn site"},
      {"lint-suppression", Severity::Error,
       "malformed or unjustified craft-lint suppression",
       "a suppression is an auditable waiver; without a justification it "
       "is a silent hole in the invariant"},
      {"unused-suppression", Severity::Warning,
       "suppression that matched no diagnostic",
       "stale waivers hide real regressions when the code they covered "
       "moves"},
  };
  return Rules;
}

//===----------------------------------------------------------------------===//
// Engine
//===----------------------------------------------------------------------===//

size_t LintResult::unsuppressedErrors() const {
  size_t N = 0;
  for (const Diagnostic &D : Diagnostics)
    if (!D.Suppressed && D.Sev == Severity::Error)
      ++N;
  return N;
}

size_t LintResult::suppressedCount() const {
  size_t N = 0;
  for (const Diagnostic &D : Diagnostics)
    if (D.Suppressed)
      ++N;
  return N;
}

void craft::lint::lintBuffer(const std::string &RelPath,
                             const std::string &DisplayPath,
                             const std::string &Contents,
                             const std::vector<std::string> &RuleFilter,
                             LintResult &Result) {
  const FileScope FS = classify(RelPath);
  const std::vector<Token> T = lex(Contents);

  auto ruleEnabled = [&RuleFilter](const std::string &Id) {
    return RuleFilter.empty() ||
           std::find(RuleFilter.begin(), RuleFilter.end(), Id) !=
               RuleFilter.end();
  };

  std::vector<Diagnostic> Raw;
  auto emit = [&](int Line, int Col, const std::string &Rule,
                  const std::string &Message) {
    if (!ruleEnabled(Rule))
      return;
    Severity Sev = Severity::Error;
    for (const RuleInfo &R : allRules())
      if (R.Id == Rule)
        Sev = R.Sev;
    Raw.push_back({DisplayPath, Line, Col, Rule, Sev, Message, false, ""});
  };

  // Suppressions first: their own diagnostics (lint-suppression) are
  // unconditional — a broken waiver must never be waivable by itself.
  std::vector<Suppression> Sups = collectSuppressions(T, emit);

  //-- det-seed ------------------------------------------------------------
  if (!FS.IsRngTU) {
    for (size_t I = 0; I < T.size(); ++I) {
      if (T[I].Kind == Tok::PP) {
        if (ppIncludes(T[I].Text, "random") || ppIncludes(T[I].Text, "ctime"))
          emit(T[I].Line, T[I].Col, "det-seed",
               "include of a raw randomness/time header; seed through "
               "support/Rng and taskSeed instead");
        continue;
      }
      if (T[I].Kind != Tok::Ident)
        continue;
      const std::string &Id = T[I].Text;
      bool RandName = Id == "rand" || Id == "srand" || Id == "drand48" ||
                      Id == "lrand48" || Id == "random_device" ||
                      Id == "mt19937" || Id == "mt19937_64" ||
                      Id == "minstd_rand" || Id == "default_random_engine";
      bool TimeCall = Id == "time" && I + 1 < T.size() &&
                      tokenIs(T, I + 1, Tok::Punct, "(") &&
                      !(I >= 1 && (tokenIs(T, I - 1, Tok::Punct, ".") ||
                                   tokenIs(T, I - 1, Tok::Punct, "->")));
      if (RandName || TimeCall)
        emit(T[I].Line, T[I].Col, "det-seed",
             "'" + Id +
                 "' is a nondeterministic seed source; derive seeds from "
                 "the taskSeed stream (support/ThreadPool.h)");
    }
  }

  //-- det-time ------------------------------------------------------------
  if ((FS.InSrc || FS.InTools) && !FS.IsTimerTU && !FS.IsTelemetryTU) {
    for (size_t I = 0; I < T.size(); ++I) {
      if (T[I].Kind == Tok::PP) {
        if (ppIncludes(T[I].Text, "chrono"))
          emit(T[I].Line, T[I].Col, "det-time",
               "include of <chrono> outside the sanctioned timing TUs "
               "(support/Timer.h, support/Telemetry.cpp); wrap timing in "
               "WallTimer or telemetry spans, or justify the use inline");
        continue;
      }
      if (T[I].Kind != Tok::Ident)
        continue;
      bool Chrono = T[I].Text == "chrono" && I >= 2 &&
                    tokenIs(T, I - 1, Tok::Punct, "::") &&
                    T[I - 2].Text == "std";
      bool ClockCall =
          (T[I].Text == "gettimeofday" || T[I].Text == "clock_gettime") ||
          (T[I].Text == "clock" && I + 1 < T.size() &&
           tokenIs(T, I + 1, Tok::Punct, "(") &&
           !(I >= 1 && (tokenIs(T, I - 1, Tok::Punct, ".") ||
                        tokenIs(T, I - 1, Tok::Punct, "->") ||
                        tokenIs(T, I - 1, Tok::Punct, "::"))));
      if (Chrono || ClockCall)
        emit(T[I].Line, T[I].Col, "det-time",
             "direct wall-clock access outside the sanctioned timing TUs "
             "(support/Timer.h, support/Telemetry.cpp)");
    }
  }

  //-- det-unordered-iter --------------------------------------------------
  if (FS.InResultPath) {
    const std::set<std::string> Unordered = unorderedDeclNames(T);
    if (!Unordered.empty()) {
      for (size_t I = 0; I < T.size(); ++I) {
        // `for ( ... : NAME )` — range-for whose range names a container.
        if (tokenIs(T, I, Tok::Ident, "for") && I + 1 < T.size() &&
            tokenIs(T, I + 1, Tok::Punct, "(")) {
          int Depth = 0;
          size_t ColonAt = 0;
          for (size_t J = I + 1; J < T.size(); ++J) {
            if (T[J].Kind != Tok::Punct)
              continue;
            if (T[J].Text == "(")
              ++Depth;
            else if (T[J].Text == ")") {
              if (--Depth == 0) {
                if (ColonAt) {
                  for (size_t K = ColonAt + 1; K < J; ++K)
                    if (T[K].Kind == Tok::Ident &&
                        Unordered.count(T[K].Text))
                      emit(T[K].Line, T[K].Col, "det-unordered-iter",
                           "range-for over unordered container '" +
                               T[K].Text +
                               "'; iteration order is nondeterministic");
                }
                break;
              }
            } else if (T[J].Text == ":" && Depth == 1 && !ColonAt) {
              ColonAt = J;
            }
          }
        }
        // NAME.begin() / NAME->begin() and friends.
        if (T[I].Kind == Tok::Ident && Unordered.count(T[I].Text) &&
            I + 2 < T.size() &&
            (tokenIs(T, I + 1, Tok::Punct, ".") ||
             tokenIs(T, I + 1, Tok::Punct, "->")) &&
            T[I + 2].Kind == Tok::Ident &&
            (T[I + 2].Text == "begin" || T[I + 2].Text == "end" ||
             T[I + 2].Text == "cbegin" || T[I + 2].Text == "cend"))
          emit(T[I].Line, T[I].Col, "det-unordered-iter",
               "iterator walk of unordered container '" + T[I].Text + "'");
      }
    }
  }

  //-- sound-fma -----------------------------------------------------------
  if (!FS.IsIsaKernelTU) {
    for (size_t I = 0; I < T.size(); ++I) {
      if (T[I].Kind != Tok::Ident)
        continue;
      const std::string &Id = T[I].Text;
      if (((Id == "fma" || Id == "fmaf" || Id == "fmal") &&
           isStdOrBare(T, I, Id.c_str()) && I + 1 < T.size() &&
           tokenIs(T, I + 1, Tok::Punct, "(")) ||
          startsWith(Id, "__builtin_fma"))
        emit(T[I].Line, T[I].Col, "sound-fma",
             "fused multiply-add outside the per-ISA kernel TUs rounds "
             "once instead of twice and diverges across backends");
    }
  }

  //-- sound-fastmath ------------------------------------------------------
  for (size_t I = 0; I < T.size(); ++I) {
    bool Hit = false;
    if (T[I].Kind == Tok::PP) {
      const std::string &P = T[I].Text;
      Hit = (P.find("FP_CONTRACT") != std::string::npos &&
             P.find("OFF") == std::string::npos) ||
            P.find("fast-math") != std::string::npos ||
            P.find("ffast-math") != std::string::npos ||
            P.find("float_control") != std::string::npos;
    } else if (T[I].Kind == Tok::String || T[I].Kind == Tok::Ident) {
      // __attribute__((optimize("-ffast-math"))) — the literal is
      // dropped by the lexer, so match the attribute identifier plus any
      // optimize token instead.
      Hit = T[I].Kind == Tok::Ident && T[I].Text == "__optimize__";
    }
    if (Hit)
      emit(T[I].Line, T[I].Col, "sound-fastmath",
           "value-changing floating-point mode; forbidden everywhere "
           "(even kernel TUs compile with -ffp-contract=off)");
  }

  //-- sound-rounding ------------------------------------------------------
  if ((FS.InSrc || FS.InTools) && !FS.IsRoundedTU) {
    for (size_t I = 0; I < T.size(); ++I) {
      if (T[I].Kind == Tok::PP) {
        if (ppIncludes(T[I].Text, "cfenv") || ppIncludes(T[I].Text, "fenv.h"))
          emit(T[I].Line, T[I].Col, "sound-rounding",
               "include of the FP-environment header outside "
               "support/RoundedInterval.h");
        continue;
      }
      if (T[I].Kind != Tok::Ident)
        continue;
      const std::string &Id = T[I].Text;
      if (Id == "fesetround" || Id == "fegetround" || Id == "fesetenv" ||
          Id == "feupdateenv" || Id == "feholdexcept" ||
          Id == "FE_DOWNWARD" || Id == "FE_UPWARD" || Id == "FE_TONEAREST" ||
          Id == "FE_TOWARDZERO" || Id == "nextafter" || Id == "nexttoward")
        emit(T[I].Line, T[I].Col, "sound-rounding",
             "'" + Id +
                 "' outside support/RoundedInterval.h; use roundUp/"
                 "roundDown so the bracketing proof stays centralized");
    }
  }

  //-- hot-alloc -----------------------------------------------------------
  if (FS.IsKernelFile) {
    // Brace depth that ignores namespace braces: depth >= 1 means "inside
    // a function or class body" — close enough for the kernel TUs, which
    // hold only free functions.
    std::vector<bool> NamespaceBrace;
    int Depth = 0;
    for (size_t I = 0; I < T.size(); ++I) {
      if (tokenIs(T, I, Tok::Punct, "{")) {
        bool IsNs = false;
        for (size_t B = I; B-- > 0;) {
          if (T[B].Kind == Tok::Comment || T[B].Kind == Tok::PP)
            continue;
          if (T[B].Kind == Tok::Ident) {
            if (T[B].Text == "namespace") {
              IsNs = true;
              break;
            }
            continue; // `namespace foo {` — keep looking one back.
          }
          break;
        }
        NamespaceBrace.push_back(IsNs);
        if (!IsNs)
          ++Depth;
        continue;
      }
      if (tokenIs(T, I, Tok::Punct, "}")) {
        if (!NamespaceBrace.empty()) {
          if (!NamespaceBrace.back() && Depth > 0)
            --Depth;
          NamespaceBrace.pop_back();
        }
        continue;
      }
      if (Depth < 1 || T[I].Kind != Tok::Ident)
        continue;
      const std::string &Id = T[I].Text;
      bool Alloc = Id == "new" || Id == "malloc" || Id == "calloc" ||
                   Id == "realloc";
      bool Container = (Id == "vector" || Id == "string") &&
                       isStdOrBare(T, I, Id.c_str()) && I >= 1 &&
                       tokenIs(T, I - 1, Tok::Punct, "::");
      if (Alloc || Container)
        emit(T[I].Line, T[I].Col, "hot-alloc",
             "'" + Id +
                 "' in a kernel function body; the kernel tier is "
                 "allocation-free — take scratch from the Workspace arena");
    }
  }

  //-- conc-detach ---------------------------------------------------------
  for (size_t I = 1; I < T.size(); ++I)
    if (T[I].Kind == Tok::Ident && T[I].Text == "detach" &&
        (tokenIs(T, I - 1, Tok::Punct, ".") ||
         tokenIs(T, I - 1, Tok::Punct, "->")))
      emit(T[I].Line, T[I].Col, "conc-detach",
           "detached threads race teardown; join every thread");

  //-- conc-volatile -------------------------------------------------------
  for (size_t I = 0; I < T.size(); ++I)
    if (T[I].Kind == Tok::Ident && T[I].Text == "volatile")
      emit(T[I].Line, T[I].Col, "conc-volatile",
           "volatile is not synchronization; use std::atomic or a mutex");

  //-- conc-thread ---------------------------------------------------------
  if (FS.InSrc && !FS.InSupport) {
    for (size_t I = 2; I < T.size(); ++I)
      if (T[I].Kind == Tok::Ident && T[I].Text == "thread" &&
          tokenIs(T, I - 1, Tok::Punct, "::") &&
          T[I - 2].Kind == Tok::Ident && T[I - 2].Text == "std" &&
          !(I + 1 < T.size() && tokenIs(T, I + 1, Tok::Punct, "::")))
        emit(T[I - 2].Line, T[I - 2].Col, "conc-thread",
             "naked std::thread outside src/support; use ThreadPool or "
             "justify the managed thread at the spawn site");
  }

  // Apply suppressions: a line-scoped `allow` covers its comment's lines
  // and the next line; `allow-file` covers the file.
  for (Diagnostic &D : Raw) {
    if (D.Rule == "lint-suppression")
      continue; // Never waivable.
    for (Suppression &S : Sups) {
      if (!S.Rules.count(D.Rule))
        continue;
      if (!S.FileWide && !(D.Line >= S.Line && D.Line <= S.EndLine + 1))
        continue;
      D.Suppressed = true;
      D.Justification = S.Justification;
      S.Used = true;
      break;
    }
  }
  for (const Suppression &S : Sups)
    if (!S.Used && ruleEnabled("unused-suppression"))
      Raw.push_back({DisplayPath, S.Line, 1, "unused-suppression",
                     Severity::Warning,
                     "suppression matched no diagnostic; remove it", false,
                     ""});

  std::sort(Raw.begin(), Raw.end(),
            [](const Diagnostic &A, const Diagnostic &B) {
              return std::tie(A.Line, A.Col, A.Rule) <
                     std::tie(B.Line, B.Col, B.Rule);
            });
  Result.Diagnostics.insert(Result.Diagnostics.end(), Raw.begin(),
                            Raw.end());
  ++Result.FilesScanned;
}

//===----------------------------------------------------------------------===//
// Output
//===----------------------------------------------------------------------===//

std::string craft::lint::renderDiagnostic(const Diagnostic &D) {
  std::string S = D.File + ":" + std::to_string(D.Line) + ":" +
                  std::to_string(D.Col) + ": " +
                  (D.Sev == Severity::Error ? "error" : "warning") +
                  ": [" + D.Rule + "] " + D.Message;
  if (D.Suppressed)
    S += " (suppressed: " + D.Justification + ")";
  return S;
}

namespace {

std::string jsonEscape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

} // namespace

std::string craft::lint::toJson(const LintResult &Result) {
  std::string S = "{\n  \"schema_version\": 1,\n  \"files_scanned\": " +
                  std::to_string(Result.FilesScanned) +
                  ",\n  \"errors\": " +
                  std::to_string(Result.unsuppressedErrors()) +
                  ",\n  \"suppressed\": " +
                  std::to_string(Result.suppressedCount()) +
                  ",\n  \"diagnostics\": [";
  bool First = true;
  for (const Diagnostic &D : Result.Diagnostics) {
    if (!First)
      S += ",";
    First = false;
    S += "\n    {\"file\": \"" + jsonEscape(D.File) +
         "\", \"line\": " + std::to_string(D.Line) +
         ", \"col\": " + std::to_string(D.Col) + ", \"rule\": \"" +
         jsonEscape(D.Rule) + "\", \"severity\": \"" +
         (D.Sev == Severity::Error ? "error" : "warning") +
         "\", \"suppressed\": " + (D.Suppressed ? "true" : "false") +
         ", \"message\": \"" + jsonEscape(D.Message) + "\"";
    if (D.Suppressed)
      S += ", \"justification\": \"" + jsonEscape(D.Justification) + "\"";
    S += "}";
  }
  S += First ? "]\n}\n" : "\n  ]\n}\n";
  return S;
}

//===----------------------------------------------------------------------===//
// CLI driver
//===----------------------------------------------------------------------===//

int craft::lint::lintMain(const std::vector<std::string> &Args,
                          std::string &Out) {
  namespace fs = std::filesystem;
  bool Json = false, ListRules = false;
  std::string Root;
  std::vector<std::string> RuleFilter, Paths;

  for (size_t I = 0; I < Args.size(); ++I) {
    const std::string &A = Args[I];
    if (A == "--json") {
      Json = true;
    } else if (A == "--list-rules") {
      ListRules = true;
    } else if (A == "--root" || A == "--rule") {
      if (I + 1 >= Args.size()) {
        Out += "craft-lint: missing argument to " + A + "\n";
        return 2;
      }
      if (A == "--root")
        Root = Args[++I];
      else
        RuleFilter.push_back(Args[++I]);
    } else if (!A.empty() && A[0] == '-') {
      Out += "craft-lint: unknown flag '" + A +
             "'\nusage: craft_lint [--json] [--list-rules] [--root DIR] "
             "[--rule ID]... PATH...\n";
      return 2;
    } else {
      Paths.push_back(A);
    }
  }

  for (const std::string &R : RuleFilter) {
    bool Known = false;
    for (const RuleInfo &Info : allRules())
      Known = Known || Info.Id == R;
    if (!Known) {
      Out += "craft-lint: unknown rule '" + R + "' (see --list-rules)\n";
      return 2;
    }
  }

  if (ListRules) {
    for (const RuleInfo &R : allRules())
      Out += R.Id + " [" +
             (R.Sev == Severity::Error ? "error" : "warning") + "]\n  " +
             R.Summary + "\n  protects: " + R.Invariant + "\n";
    return 0;
  }

  if (Paths.empty()) {
    Out += "craft-lint: no input paths\nusage: craft_lint [--json] "
           "[--list-rules] [--root DIR] [--rule ID]... PATH...\n";
    return 2;
  }

  // Expand directories into *.h / *.cpp files, sorted for stable output.
  std::vector<std::string> Files;
  std::error_code Ec;
  for (const std::string &P : Paths) {
    fs::path Path(P);
    if (fs::is_directory(Path, Ec)) {
      for (fs::recursive_directory_iterator It(Path, Ec), End;
           It != End && !Ec; It.increment(Ec)) {
        if (!It->is_regular_file())
          continue;
        std::string Ext = It->path().extension().string();
        if (Ext == ".h" || Ext == ".cpp" || Ext == ".hpp" || Ext == ".cc")
          Files.push_back(It->path().generic_string());
      }
    } else if (fs::is_regular_file(Path, Ec)) {
      Files.push_back(Path.generic_string());
    } else {
      Out += "craft-lint: cannot read '" + P + "'\n";
      return 2;
    }
  }
  std::sort(Files.begin(), Files.end());

  const fs::path RootPath =
      Root.empty() ? fs::current_path() : fs::path(Root);
  LintResult Result;
  for (const std::string &F : Files) {
    std::ifstream In(F, std::ios::binary);
    if (!In) {
      Out += "craft-lint: cannot read '" + F + "'\n";
      return 2;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    // Rule scoping keys off the repo-relative path with forward slashes.
    std::string Rel =
        fs::relative(fs::absolute(F), RootPath, Ec).generic_string();
    if (Ec || Rel.empty() || startsWith(Rel, ".."))
      Rel = F;
    lintBuffer(Rel, Rel, Buf.str(), RuleFilter, Result);
  }

  if (Json) {
    Out += toJson(Result);
  } else {
    for (const Diagnostic &D : Result.Diagnostics)
      if (!D.Suppressed)
        Out += renderDiagnostic(D) + "\n";
    Out += "craft-lint: " + std::to_string(Result.FilesScanned) +
           " files, " + std::to_string(Result.unsuppressedErrors()) +
           " violations, " + std::to_string(Result.suppressedCount()) +
           " suppressed\n";
  }
  return Result.unsuppressedErrors() > 0 ? 1 : 0;
}
