//===- linalg/Eig.cpp -----------------------------------------------------===//
//
// Householder tridiagonalization (tred2) + implicit-shift QL (tql2), the
// classic EISPACK pair. Indices are int internally to allow downward loops.
//
//===----------------------------------------------------------------------===//

#include "linalg/Eig.h"

#include <algorithm>
#include <cmath>
#include <numeric>

using namespace craft;

/// Reduces the symmetric matrix held in Z to tridiagonal form, accumulating
/// the orthogonal transformation in Z. On exit D holds the diagonal and E the
/// subdiagonal (E[0] unused).
static void tridiagonalize(Matrix &Z, Vector &D, Vector &E) {
  const int N = static_cast<int>(Z.rows());
  for (int I = N - 1; I >= 1; --I) {
    int L = I - 1;
    double H = 0.0, Scale = 0.0;
    if (L > 0) {
      for (int K = 0; K <= L; ++K)
        Scale += std::fabs(Z(I, K));
      if (Scale == 0.0) {
        E[I] = Z(I, L);
      } else {
        for (int K = 0; K <= L; ++K) {
          Z(I, K) /= Scale;
          H += Z(I, K) * Z(I, K);
        }
        double F = Z(I, L);
        double G = F >= 0.0 ? -std::sqrt(H) : std::sqrt(H);
        E[I] = Scale * G;
        H -= F * G;
        Z(I, L) = F - G;
        F = 0.0;
        for (int J = 0; J <= L; ++J) {
          Z(J, I) = Z(I, J) / H;
          G = 0.0;
          for (int K = 0; K <= J; ++K)
            G += Z(J, K) * Z(I, K);
          for (int K = J + 1; K <= L; ++K)
            G += Z(K, J) * Z(I, K);
          E[J] = G / H;
          F += E[J] * Z(I, J);
        }
        double HH = F / (H + H);
        for (int J = 0; J <= L; ++J) {
          F = Z(I, J);
          double GJ = E[J] - HH * F;
          E[J] = GJ;
          for (int K = 0; K <= J; ++K)
            Z(J, K) -= F * E[K] + GJ * Z(I, K);
        }
      }
    } else {
      E[I] = Z(I, L);
    }
    D[I] = H;
  }
  D[0] = 0.0;
  E[0] = 0.0;
  // 64-bit trip counts: with int, GCC's -O2 loop optimizer proves the inner
  // K loop could overflow at INT_MAX and emits -Waggressive-loop-opts.
  const long M = N;
  for (long I = 0; I < M; ++I) {
    if (D[I] != 0.0) {
      for (long J = 0; J < I; ++J) {
        double G = 0.0;
        for (long K = 0; K < I; ++K)
          G += Z(I, K) * Z(K, J);
        for (long K = 0; K < I; ++K)
          Z(K, J) -= G * Z(K, I);
      }
    }
    D[I] = Z(I, I);
    Z(I, I) = 1.0;
    for (long J = 0; J < I; ++J) {
      Z(J, I) = 0.0;
      Z(I, J) = 0.0;
    }
  }
}

/// QL algorithm with implicit shifts on the tridiagonal matrix (D, E),
/// rotating the eigenvector columns of Z along.
static void tridiagonalQL(Vector &D, Vector &E, Matrix &Z) {
  const int N = static_cast<int>(D.size());
  for (int I = 1; I < N; ++I)
    E[I - 1] = E[I];
  E[N - 1] = 0.0;

  for (int L = 0; L < N; ++L) {
    int Iter = 0;
    int M;
    do {
      for (M = L; M < N - 1; ++M) {
        double DD = std::fabs(D[M]) + std::fabs(D[M + 1]);
        if (std::fabs(E[M]) <= 1e-15 * DD)
          break;
      }
      if (M == L)
        break;
      // Fail-safe: the QL iteration essentially always converges within a
      // handful of sweeps; cap it to avoid a pathological infinite loop.
      if (Iter++ == 64)
        break;
      double G = (D[L + 1] - D[L]) / (2.0 * E[L]);
      double R = std::hypot(G, 1.0);
      G = D[M] - D[L] + E[L] / (G + (G >= 0.0 ? std::fabs(R) : -std::fabs(R)));
      double S = 1.0, C = 1.0, P = 0.0;
      bool Underflow = false;
      for (int I = M - 1; I >= L; --I) {
        double F = S * E[I];
        double B = C * E[I];
        R = std::hypot(F, G);
        E[I + 1] = R;
        if (R == 0.0) {
          D[I + 1] -= P;
          E[M] = 0.0;
          Underflow = true;
          break;
        }
        S = F / R;
        C = G / R;
        G = D[I + 1] - P;
        R = (D[I] - G) * S + 2.0 * C * B;
        P = S * R;
        D[I + 1] = G + P;
        G = C * R - B;
        for (int K = 0; K < N; ++K) {
          F = Z(K, I + 1);
          Z(K, I + 1) = S * Z(K, I) + C * F;
          Z(K, I) = C * Z(K, I) - S * F;
        }
      }
      if (Underflow)
        continue;
      D[L] -= P;
      E[L] = G;
      E[M] = 0.0;
    } while (true);
  }
}

SymmetricEig craft::symmetricEig(const Matrix &A) {
  assert(A.rows() == A.cols() && "symmetricEig requires a square matrix");
  const size_t N = A.rows();
  SymmetricEig Out;
  Out.Vectors = A;
  // Symmetrize defensively: callers may pass matrices that are symmetric
  // only up to rounding (e.g. A A^T computed in floating point).
  for (size_t R = 0; R < N; ++R)
    for (size_t C = R + 1; C < N; ++C) {
      double Avg = 0.5 * (Out.Vectors(R, C) + Out.Vectors(C, R));
      Out.Vectors(R, C) = Avg;
      Out.Vectors(C, R) = Avg;
    }
  Out.Values = Vector(N);
  if (N == 0)
    return Out;
  if (N == 1) {
    Out.Values[0] = A(0, 0);
    Out.Vectors(0, 0) = 1.0;
    return Out;
  }

  Vector E(N);
  tridiagonalize(Out.Vectors, Out.Values, E);
  tridiagonalQL(Out.Values, E, Out.Vectors);

  // Sort eigenpairs by ascending eigenvalue.
  std::vector<size_t> Order(N);
  std::iota(Order.begin(), Order.end(), 0);
  std::sort(Order.begin(), Order.end(), [&](size_t I, size_t J) {
    return Out.Values[I] < Out.Values[J];
  });
  Vector SortedValues(N);
  Matrix SortedVectors(N, N);
  for (size_t J = 0; J < N; ++J) {
    SortedValues[J] = Out.Values[Order[J]];
    for (size_t R = 0; R < N; ++R)
      SortedVectors(R, J) = Out.Vectors(R, Order[J]);
  }
  Out.Values = std::move(SortedValues);
  Out.Vectors = std::move(SortedVectors);
  return Out;
}

double craft::spectralNorm(const Matrix &M) {
  if (M.rows() == 0 || M.cols() == 0)
    return 0.0;
  // Work with the smaller Gram matrix of the two possibilities.
  Matrix G = M.rows() <= M.cols() ? M * M.transpose() : M.transpose() * M;
  SymmetricEig Eig = symmetricEig(G);
  double MaxEig = Eig.Values[Eig.Values.size() - 1];
  return std::sqrt(std::max(0.0, MaxEig));
}
