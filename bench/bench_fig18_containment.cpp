//===- bench/bench_fig18_containment.cpp ----------------------------------===//
//
// Reproduces Fig. 18 (App. E.2): tightness and runtime of the CH-Zonotope
// containment check (Thm 4.2, O(p^3)) against the close-to-lossless
// LP-based zonotope containment of Sadraddini & Tedrake (2019, ~O(p^6)),
// solved with the built-in simplex (GUROBI substitute, DESIGN.md
// substitution 5).
//
// Instances are (outer, inner) pairs harvested from real Craft phase-1
// runs: the outer is the consolidated proper state, the inner is the next
// abstract iterate at the moment Thm 4.2 first succeeds. Tightness is
// measured as the largest inner scaling factor the LP check still accepts
// (binary search) -- values near 1.0 mean the fast check loses little.
//
// The paper uses p = 40 with GUROBI; the dense simplex substitute makes
// p = 16 (state dim; FB on a 16-latent model) the tractable default.
// Expected shape: scaling factors ~1.0-1.05, runtime gap of 3-5 orders of
// magnitude, growing with p.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/AbstractSolver.h"
#include "data/GaussianMixture.h"
#include "domains/OrderReduction.h"
#include "domains/ZonotopeContainmentLP.h"

#include <cmath>

using namespace craft;

namespace {

/// Scales the inner CH-Zonotope about its center by Factor.
CHZonotope scaleAboutCenter(const CHZonotope &Z, double Factor) {
  Matrix Gens = Z.generators();
  Gens *= Factor;
  Vector Box = Z.boxRadius();
  Box *= Factor;
  return CHZonotope(Z.center(), std::move(Gens), Z.termIds(),
                    std::move(Box));
}

} // namespace

int main() {
  std::printf("== Fig. 18: CH-Zonotope vs LP containment (precision & "
              "runtime) ==\n\n");

  const size_t LatentDim = 16;
  const size_t NumInstances = benchSamples(4);
  Rng R(7777);

  // Small trained-free monDEQ over the GMM input space; FB keeps the state
  // dimension at p (the paper also uses FB for this study).
  MonDeq Model = MonDeq::randomFc(R, 5, LatentDim, 3, 20.0);
  Dataset Inputs = makeGaussianMixture(R, NumInstances + 4, 5, 3, 0.3);
  double FbAlpha = 0.9 * Model.fbAlphaBound();

  TablePrinter Table({"instance", "CH[us]", "LP[s]", "LP/CH speedup",
                      "max LP scale", "CH precision loss"});

  size_t Made = 0;
  for (size_t I = 0; I < Inputs.size() && Made < NumInstances; ++I) {
    // Run Craft phase 1 to harvest a genuine containment instance.
    Vector X = Inputs.input(I);
    Vector Lo(X.size()), Hi(X.size());
    for (size_t J = 0; J < X.size(); ++J) {
      Lo[J] = std::max(X[J] - 0.02, 0.0);
      Hi[J] = std::min(X[J] + 0.02, 1.0);
    }
    CHZonotope XAbs = CHZonotope::fromBox(Lo, Hi);
    AbstractSolver Solver(Model, Splitting::ForwardBackward, FbAlpha, XAbs);
    Vector ZStar =
        FixpointSolver(Model, Splitting::PeacemanRachford).solve(X).Z;
    CHZonotope S = Solver.initialState(ZStar);
    ConsolidationBasis Basis(LatentDim, 30);

    bool Harvested = false;
    ProperState Outer;
    CHZonotope Inner;
    for (int N = 1; N <= 200 && !Harvested; ++N) {
      if ((N - 1) % 3 == 0)
        Outer = consolidateProper(S, Basis, 1e-4, 1e-4);
      S = (N - 1) % 3 == 0 ? Solver.step(Outer.Z) : Solver.step(S);
      if (Outer.Z.dim() > 0 &&
          containsCH(Outer.Z, Outer.InvGens, S).Contained) {
        Inner = S;
        Harvested = true;
      }
    }
    if (!Harvested)
      continue;
    ++Made;

    // CH-Zonotope check runtime (repeat for a stable microsecond figure).
    WallTimer ChTimer;
    const int Reps = 200;
    for (int Rep = 0; Rep < Reps; ++Rep)
      containsCH(Outer.Z, Outer.InvGens, Inner);
    double ChMicros = ChTimer.seconds() / Reps * 1e6;

    // LP check runtime.
    WallTimer LpTimer;
    bool LpAgrees = containsZonotopeLP(Outer.Z, Inner);
    double LpSeconds = LpTimer.seconds();

    // Tightness: largest scaling of the inner the LP check still accepts.
    double MaxScale = 1.0;
    if (LpAgrees) {
      double LoS = 1.0, HiS = 1.6;
      while (containsZonotopeLP(Outer.Z, scaleAboutCenter(Inner, HiS)) &&
             HiS < 8.0)
        HiS *= 1.3;
      for (int Step = 0; Step < 7; ++Step) {
        double Mid = 0.5 * (LoS + HiS);
        if (containsZonotopeLP(Outer.Z, scaleAboutCenter(Inner, Mid)))
          LoS = Mid;
        else
          HiS = Mid;
      }
      MaxScale = LoS;
    }

    Table.addRow({fmt(static_cast<long>(Made)), fmt(ChMicros, 1),
                  fmt(LpSeconds, 4),
                  fmt(LpSeconds * 1e6 / std::max(ChMicros, 1e-3), 0) + "x",
                  fmt(MaxScale, 3),
                  fmt(100.0 * (MaxScale - 1.0), 1) + "%"});
  }
  Table.print();
  std::printf("\n(LP instances grow ~O(p^6); raising p via the model size "
              "makes the LP check intractable, mirroring the paper's "
              "claim.)\n");
  return 0;
}
