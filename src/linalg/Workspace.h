//===- linalg/Workspace.h - Per-thread scratch arena ------------*- C++ -*-===//
//
// Part of the Craft reproduction (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A per-thread bump arena for kernel scratch buffers. The Kleene/abstract
/// solver hot loops need the same temporaries (mapped generator matrices,
/// consolidation coefficients, row-abs-sum accumulators) on every
/// iteration; routing them through the arena amortizes the heap traffic to
/// zero after the first iteration instead of reallocating per call.
///
/// Lifetime contract:
///  - Scratch is only handed out through a WorkspaceScope. Destroying the
///    scope rewinds the arena to where it was at scope entry, invalidating
///    every buffer the scope handed out. Scopes nest like stack frames
///    (strict LIFO, enforced by construction order in C++ scopes).
///  - Views obtained from a scope must not escape it: never store them in a
///    returned object, and never resize/reallocate around them.
///  - Arena blocks are never freed or moved while the thread lives, so a
///    buffer stays valid (and stays at the same address) for the whole
///    lifetime of the scope that produced it, even when inner scopes grow
///    the arena with fresh blocks.
///  - Workspace::threadLocal() hands each thread (main or ThreadPool
///    worker) its own arena, so batch-verification workers never contend
///    or share scratch.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFT_LINALG_WORKSPACE_H
#define CRAFT_LINALG_WORKSPACE_H

#include "linalg/Views.h"

#include <cstddef>
#include <memory>
#include <vector>

namespace craft {

class WorkspaceScope;

/// A growable bump arena of double buffers. Use via WorkspaceScope.
class Workspace {
public:
  Workspace() = default;
  Workspace(const Workspace &) = delete;
  Workspace &operator=(const Workspace &) = delete;

  /// The calling thread's arena (one per thread, created on first use).
  static Workspace &threadLocal();

  /// Total doubles reserved across all blocks (diagnostics/tests).
  size_t capacity() const;
  /// High-water mark of live doubles (diagnostics/tests).
  size_t highWater() const { return HighWater; }

private:
  friend class WorkspaceScope;

  struct Block {
    std::unique_ptr<double[]> Data;
    size_t Capacity = 0;
  };

  /// Bump-allocates \p Count doubles (uninitialized).
  double *allocate(size_t Count);

  std::vector<Block> Blocks;
  size_t CurBlock = 0; ///< Block the bump pointer lives in.
  size_t CurUsed = 0;  ///< Doubles used in the current block.
  size_t LiveDoubles = 0;
  size_t HighWater = 0;
};

/// RAII scratch frame: buffers handed out by this scope are valid until the
/// scope is destroyed. See the file comment for the full lifetime contract.
class WorkspaceScope {
public:
  explicit WorkspaceScope(Workspace &W = Workspace::threadLocal())
      : W(W), SavedBlock(W.CurBlock), SavedUsed(W.CurUsed),
        SavedLive(W.LiveDoubles) {}
  ~WorkspaceScope() {
    W.CurBlock = SavedBlock;
    W.CurUsed = SavedUsed;
    W.LiveDoubles = SavedLive;
  }
  WorkspaceScope(const WorkspaceScope &) = delete;
  WorkspaceScope &operator=(const WorkspaceScope &) = delete;

  /// Uninitialized scratch of \p Count doubles.
  double *alloc(size_t Count) { return W.allocate(Count); }

  /// Uninitialized scratch vector.
  VectorView vector(size_t Size) {
    return VectorView(W.allocate(Size), Size);
  }
  /// Zero-initialized scratch vector.
  VectorView zeroVector(size_t Size) {
    VectorView V = vector(Size);
    for (size_t I = 0; I < Size; ++I)
      V[I] = 0.0;
    return V;
  }

  /// Uninitialized scratch matrix (contiguous, stride == cols).
  MatrixView matrix(size_t Rows, size_t Cols) {
    return MatrixView(W.allocate(Rows * Cols), Rows, Cols);
  }
  /// Zero-initialized scratch matrix.
  MatrixView zeroMatrix(size_t Rows, size_t Cols) {
    MatrixView M = matrix(Rows, Cols);
    double *D = M.data();
    for (size_t I = 0, E = Rows * Cols; I < E; ++I)
      D[I] = 0.0;
    return M;
  }

private:
  Workspace &W;
  size_t SavedBlock;
  size_t SavedUsed;
  size_t SavedLive;
};

} // namespace craft

#endif // CRAFT_LINALG_WORKSPACE_H
