//===- serve/Scheduler.h - Admission batching scheduler ---------*- C++ -*-===//
//
// Part of the Craft reproduction (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serve daemon's execution pipeline. Connection threads submit
/// queries; a single dispatcher thread coalesces whatever is in flight
/// into one batch and runs it through the existing batch machinery
/// (runSpecBatchLoaded -> parallelForIndex -> ThreadPool), so N clients
/// share one verification pool instead of oversubscribing the SIMD kernel
/// tier with N independent fan-outs. Batches form by "natural batching":
/// the dispatcher takes one query (blocking), drains everything else
/// already queued (non-blocking, up to MaxBatch), and dispatches — under
/// load batches grow automatically, while a lone request never waits on a
/// timer.
///
/// Per-query flow in submit():
///  1. resolve the model through the ModelRegistry (load-once, pinned);
///  2. build the cache key (canonical spec + model hash);
///  3. derive the deterministic attack seed from that key — never from
///     admission order, so outcomes are independent of batch composition;
///  4. coalesce with an identical in-flight query if one exists;
///  5. consult the ResultCache (hit -> ready future, `Cached` set);
///  6. otherwise enqueue on the bounded admission queue — non-blocking:
///     past the shed high-water mark the query fails fast with an
///     Overloaded result instead of head-of-line-blocking the
///     connection thread (load shedding).
///
/// Determinism: a query's outcome depends only on its cache key. The
/// jobs-1-vs-N and batched-vs-sequential equivalence is enforced by
/// tests/test_serve.cpp.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFT_SERVE_SCHEDULER_H
#define CRAFT_SERVE_SCHEDULER_H

#include "serve/ModelRegistry.h"
#include "serve/ResultCache.h"
#include "support/MpmcQueue.h"
#include "tool/Driver.h"

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace craft {
namespace serve {

/// What a submitted query resolves to.
struct ServeResult {
  RunOutcome Outcome;
  bool Cached = false;
  uint64_t ModelHash = 0; ///< 0 when the model failed to load.
  /// Shed at admission: the queue was past the high-water mark, nothing
  /// executed. Retryable — the protocol layer maps it to `Overloaded`.
  bool Overloaded = false;
  /// Rejected because the daemon is draining. Retryable (against a
  /// replacement instance); mapped to `Draining`.
  bool Draining = false;
};

/// Coalescing, caching scheduler in front of the verification pool.
class Scheduler {
public:
  struct Options {
    /// Verification worker threads per batch (<= 0 = all hardware
    /// threads, 1 = inline). Outcomes are independent of this value.
    int Jobs = 1;
    /// Hard cap on queries dispatched as one batch.
    size_t MaxBatch = 64;
    /// Admission queue bound.
    size_t QueueCapacity = 1024;
    /// Load shedding: submit never blocks — a query arriving while the
    /// queue holds at least this many jobs (or tryPush finds it full) is
    /// shed with ServeResult::Overloaded. 0 = QueueCapacity, i.e. shed
    /// exactly when the queue is full.
    size_t ShedHighWater = 0;
    /// Base of the content-derived attack-seed stream (see
    /// serveAttackSeed). Matches the batch driver's default vintage.
    uint64_t BaseSeed = 20230617;
    /// ResultCache sizing.
    size_t CacheCapacity = 4096;
    size_t CacheShards = 8;
    /// Server-default cascade policy, adopted by craft-engine queries
    /// whose spec leaves `cascade` unset (an explicit `cascade off`
    /// sticks). Applied during admission BEFORE the cache key is built,
    /// so a normalized query and its explicit twin share one cache
    /// entry. Unset = no default (historic single-rung behavior).
    CascadePolicy DefaultCascade;
    /// Fuse co-batched queries' layer gemms through the batched kernel
    /// tier (linalg/KernelsBatched.h): each batch's workers rendezvous
    /// their gemms into shared-pack waves. Outcomes are byte-identical
    /// with or without fusion; CRAFT_BATCH_FUSE=0 also disables it at
    /// runtime.
    bool FuseBatchGemms = true;
  };

  /// Pipeline counters, as a snapshot since this scheduler's construction.
  /// The live series are process-wide `serve.*` metrics on the telemetry
  /// registry (support/Telemetry.h); stats() reads them and subtracts the
  /// construction-time baseline, so per-instance semantics (and the
  /// `stats` protocol envelope) are unchanged.
  struct Stats {
    uint64_t Submitted = 0;
    uint64_t CacheHits = 0;
    uint64_t Coalesced = 0; ///< Joined an identical in-flight query.
    uint64_t Executed = 0;
    uint64_t Batches = 0;
    size_t MaxBatchSeen = 0;
    uint64_t Shed = 0; ///< Rejected at admission (queue past high water).
    /// Queries whose deadline expired (before dispatch or mid-engine).
    uint64_t DeadlineExpired = 0;
  };

  explicit Scheduler(const Options &Opts);
  /// Stops and joins the dispatcher; queued queries still complete.
  ~Scheduler();

  Scheduler(const Scheduler &) = delete;
  Scheduler &operator=(const Scheduler &) = delete;

  /// Submits one query. The future becomes ready when the query is
  /// answered (possibly immediately: cache hit, model-load failure, shed,
  /// or draining — submit itself NEVER blocks on a saturated queue).
  /// \p UseCache false bypasses both cache lookup and insertion.
  /// \p DeadlineMs >= 0 arms a wall-clock budget starting now (queue wait
  /// counts); an expired query resolves to a DeadlineExceeded outcome.
  /// Deadline queries may be answered from the cache (a hit is instant
  /// and deterministic) but are never coalesced, never listed in-flight,
  /// and their outcomes are NEVER inserted into the cache — whether the
  /// budget sufficed is a property of this submission's timing, not of
  /// the query's content, and must not poison the deterministic cache.
  std::future<ServeResult> submit(const VerificationSpec &Spec,
                                  bool UseCache = true,
                                  double DeadlineMs = -1.0);

  /// Drains queued work, then stops the dispatcher. Subsequent submits
  /// fail fast with an error outcome. Idempotent.
  void stop();

  /// Graceful drain: new submissions resolve to Draining; everything
  /// already admitted (queued or executing) still completes. Idempotent;
  /// stop() remains the terminal step.
  void beginDrain() { Draining.store(true); }
  bool draining() const { return Draining.load(); }

  /// Jobs currently waiting in the admission queue.
  size_t queueDepth() const { return Queue.size(); }

  Stats stats() const;
  ResultCache::Stats cacheStats() const { return Cache.stats(); }
  ModelRegistry &registry() { return Registry; }

private:
  /// One admitted (cache-missed, deduplicated) query awaiting dispatch.
  struct Job {
    VerificationSpec Spec;
    const MonDeq *Model = nullptr;
    uint64_t ModelHash = 0;
    std::string Key;
    bool UseCache = true;
    /// Budget armed at admission (inactive for deadline-free queries).
    Deadline DeadlineAt;
    /// Telemetry: admission timestamp (queue-wait attribution) and the
    /// submit-side phase slices, merged into the freshly executed
    /// outcome's PhaseBreakdown at dispatch. All zero when timing is
    /// disabled; cache hits return the stored outcome verbatim instead.
    uint64_t AdmitNs = 0;
    double CacheProbeMs = 0.0;
    double ModelLoadMs = 0.0;
    /// Every submitter waiting on this query (1 + coalesced joiners).
    std::vector<std::promise<ServeResult>> Waiters;
  };

  void dispatchLoop();
  /// \p Publish false suppresses the cache insert (injected dispatch
  /// faults must not memoize their synthetic failure).
  void finishJob(std::unique_ptr<Job> JobPtr, const RunOutcome &Outcome,
                 bool Publish = true);

  Options Opts;
  ModelRegistry Registry;
  ResultCache Cache;
  MpmcQueue<std::unique_ptr<Job>> Queue;

  /// Key -> in-flight job (queued or executing), for coalescing. A job
  /// stays listed from admission until finishJob, which inserts the
  /// outcome into the cache *before* delisting; submit probes InFlight
  /// and the cache under this one mutex, so an identical query always
  /// either joins the job's waiters or finds the cached outcome — a key
  /// is never executed twice concurrently.
  std::unordered_map<std::string, Job *> InFlight;
  mutable std::mutex InFlightMutex;

  /// Registry totals at construction: stats() reports current - Base, so
  /// each instance sees only its own traffic even though the serve.*
  /// series are process-wide.
  Stats Base;
  /// Largest batch this instance dispatched. A high-water mark has no
  /// meaningful process-wide delta, so it stays on the instance (the
  /// registry's serve.max_batch gauge tracks the process-wide max).
  std::atomic<size_t> MaxBatchSeen{0};

  std::atomic<bool> Stopping{false};
  std::atomic<bool> Draining{false};
  // craft-lint: allow(conc-thread) — the one dispatcher thread; stop()
  // closes the queue and joins it, and ~Scheduler calls stop().
  std::thread Dispatcher;
};

} // namespace serve
} // namespace craft

#endif // CRAFT_SERVE_SCHEDULER_H
