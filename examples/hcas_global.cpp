//===- examples/hcas_global.cpp - Global certification demo ---------------===//
//
// Global (whole-input-space) guarantees via domain splitting (Section 6.2):
// an HCAS advisory network is certified region-by-region so that every
// input in a certified region provably yields the same advisory.
//
// Run:  ./build/examples/hcas_global [max_split_depth] [jobs]
//
// jobs fans the split waves out across worker threads (0 = all hardware
// threads); the certified regions are identical for every value.
//
//===----------------------------------------------------------------------===//

#include "core/DomainSplitting.h"
#include "data/Hcas.h"
#include "nn/ModelZoo.h"
#include "nn/Training.h"

#include <cstdio>
#include <cstdlib>

using namespace craft;

int main(int Argc, char **Argv) {
  int MaxDepth = Argc > 1 ? std::atoi(Argv[1]) : 9;
  int Jobs = Argc > 2 ? std::atoi(Argv[2]) : 1;

  const ModelSpec *Spec = findModelSpec("hcas_fc100");
  MonDeq Model = getOrTrainModel(*Spec);
  Dataset Test = makeTestSet(*Spec, 300);
  std::printf("HCAS monDEQ accuracy vs the MDP policy table: %.1f%%\n",
              100.0 * evaluateAccuracy(Model, Test));

  // Certify a head-on encounter slice: intruder ahead-left, approaching.
  constexpr double Deg = 3.14159265358979323846 / 180.0;
  Vector Lo = HcasMdp::normalizeInput(0.0, -2.0, -91.0 * Deg);
  Vector Hi = HcasMdp::normalizeInput(10.0, 2.0, -89.0 * Deg);

  CraftConfig Config;
  Config.Alpha1 = 0.06;
  Config.LambdaOptLevel = 0;
  SplitResult Res =
      certifyByDomainSplitting(Model, Config, Lo, Hi, MaxDepth, Jobs);

  std::printf("certified %.1f%% of the encounter region "
              "(%zu regions, %zu certified)\n",
              100.0 * Res.CertifiedFraction, Res.Regions.size(),
              Res.NumCertified);

  // Advisory inventory over certified regions.
  size_t PerAction[HcasMdp::NumActions] = {};
  for (const SplitRegion &Region : Res.Regions)
    if (Region.CertifiedClass >= 0)
      ++PerAction[Region.CertifiedClass];
  std::printf("certified advisories: ");
  for (size_t A = 0; A < HcasMdp::NumActions; ++A)
    if (PerAction[A] > 0)
      std::printf("%s x%zu  ", HcasMdp::actionName(static_cast<int>(A)),
                  PerAction[A]);
  std::printf("\n");
  return 0;
}
