//===- lp/Simplex.cpp -----------------------------------------------------===//

#include "lp/Simplex.h"

#include "linalg/Kernels.h"

#include <cmath>
#include <limits>

using namespace craft;

namespace {

/// Full-tableau simplex working state. Rows 0..M-1 are constraints; the
/// objective (reduced-cost) row is kept separately.
class Tableau {
public:
  Tableau(const Matrix &A, const Vector &B, size_t NumArtificials);

  /// Runs simplex iterations on the current objective row until optimality,
  /// unboundedness, or the iteration budget runs out.
  LpStatus iterate(int &Budget, bool ForbidArtificials);

  /// Installs the reduced-cost row for cost vector \p Cost (sized to the
  /// total number of columns).
  void setObjective(const Vector &Cost);

  size_t numRows() const { return M; }
  size_t numCols() const { return N; }
  size_t numStructural() const { return NumStructural; }
  double objectiveValue() const { return ObjValue; }
  int basicVariable(size_t Row) const { return Basis[Row]; }
  double rhs(size_t Row) const { return T(Row, N); }

  /// Extracts the structural part of the current basic solution.
  Vector solution() const;

  /// Tries to pivot artificial variables out of the basis (post phase 1).
  void driveOutArtificials();

private:
  void pivot(size_t Row, size_t Col);

  size_t M;              ///< Number of constraint rows.
  size_t N;              ///< Total number of columns (structural+artificial).
  size_t NumStructural;  ///< Columns that belong to the original problem.
  Matrix T;              ///< M x (N+1) tableau; last column is the rhs.
  Vector Obj;            ///< Reduced-cost row, length N.
  double ObjValue = 0.0; ///< Negated objective accumulator.
  std::vector<int> Basis;
  Vector Cost; ///< Current cost vector (for reduced cost bookkeeping).
};

} // namespace

Tableau::Tableau(const Matrix &A, const Vector &B, size_t NumArtificials)
    : M(A.rows()), N(A.cols() + NumArtificials), NumStructural(A.cols()),
      T(A.rows(), A.cols() + NumArtificials + 1), Obj(N), Basis(M, -1) {
  for (size_t R = 0; R < M; ++R) {
    // Normalize to b >= 0 so the artificial basis is feasible.
    double Sign = B[R] < 0.0 ? -1.0 : 1.0;
    for (size_t C = 0; C < A.cols(); ++C)
      T(R, C) = Sign * A(R, C);
    T(R, N) = Sign * B[R];
    T(R, NumStructural + R) = 1.0;
    Basis[R] = static_cast<int>(NumStructural + R);
  }
}

void Tableau::setObjective(const Vector &Cost) {
  assert(Cost.size() == N && "cost vector size mismatch");
  this->Cost = Cost;
  // Reduced costs: r = c - c_B^T B^{-1} A; with a full tableau the term
  // B^{-1} A is exactly the tableau body, so subtract basic-cost-weighted
  // rows from c.
  Obj = Cost;
  ObjValue = 0.0;
  for (size_t R = 0; R < M; ++R) {
    double CB = Cost[static_cast<size_t>(Basis[R])];
    if (CB == 0.0)
      continue;
    kernels::axpy(Obj, -CB, ConstVectorView(T.rowData(R), N));
    ObjValue += CB * T(R, N);
  }
}

void Tableau::pivot(size_t Row, size_t Col) {
  // Row operations as axpy/scale kernels over tableau row views (the rhs
  // column rides along in the same contiguous row).
  double Inv = 1.0 / T(Row, Col);
  VectorView PivotRow(T.rowData(Row), N + 1);
  kernels::scale(PivotRow, Inv);
  for (size_t R = 0; R < M; ++R) {
    if (R == Row)
      continue;
    double Factor = T(R, Col);
    if (Factor == 0.0)
      continue;
    kernels::axpy(VectorView(T.rowData(R), N + 1), -Factor, PivotRow);
  }
  double ObjFactor = Obj[Col];
  if (ObjFactor != 0.0) {
    kernels::axpy(Obj, -ObjFactor, ConstVectorView(T.rowData(Row), N));
    ObjValue += ObjFactor * T(Row, N);
  }
  Basis[Row] = static_cast<int>(Col);
}

LpStatus Tableau::iterate(int &Budget, bool ForbidArtificials) {
  const double Eps = 1e-9;
  int DegenerateSteps = 0;
  while (Budget-- > 0) {
    // Entering variable: Dantzig rule, falling back to Bland's rule once we
    // observe a long degenerate streak (anti-cycling).
    bool Bland = DegenerateSteps > 200;
    size_t Entering = N;
    double BestReduced = -Eps;
    for (size_t C = 0; C < N; ++C) {
      if (ForbidArtificials && C >= NumStructural)
        continue;
      double R = Obj[C];
      if (R < BestReduced) {
        Entering = C;
        if (Bland)
          break;
        BestReduced = R;
      }
    }
    if (Entering == N)
      return LpStatus::Optimal;

    // Ratio test.
    size_t Leaving = M;
    double BestRatio = std::numeric_limits<double>::infinity();
    for (size_t R = 0; R < M; ++R) {
      double Coef = T(R, Entering);
      if (Coef <= Eps)
        continue;
      double Ratio = T(R, N) / Coef;
      if (Ratio < BestRatio - Eps ||
          (Ratio < BestRatio + Eps && Leaving != M &&
           Basis[R] < Basis[Leaving])) {
        BestRatio = Ratio;
        Leaving = R;
      }
    }
    if (Leaving == M)
      return LpStatus::Unbounded;
    DegenerateSteps = BestRatio < Eps ? DegenerateSteps + 1 : 0;
    pivot(Leaving, Entering);
  }
  return LpStatus::IterationLimit;
}

Vector Tableau::solution() const {
  Vector X(NumStructural, 0.0);
  for (size_t R = 0; R < M; ++R) {
    int Var = Basis[R];
    if (Var >= 0 && static_cast<size_t>(Var) < NumStructural)
      X[static_cast<size_t>(Var)] = T(R, N);
  }
  return X;
}

void Tableau::driveOutArtificials() {
  const double Eps = 1e-9;
  for (size_t R = 0; R < M; ++R) {
    if (static_cast<size_t>(Basis[R]) < NumStructural)
      continue;
    // Pivot on any usable structural column; if none exists the row is
    // redundant and the artificial stays basic at value zero, which is
    // harmless as long as it is forbidden from re-entering.
    for (size_t C = 0; C < NumStructural; ++C) {
      if (std::fabs(T(R, C)) > Eps) {
        pivot(R, C);
        break;
      }
    }
  }
}

LpSolution craft::solveLp(const LpProblem &Problem, int MaxIterations) {
  assert(Problem.A.rows() == Problem.B.size() && "A/b size mismatch");
  assert(Problem.A.cols() == Problem.C.size() && "A/c size mismatch");
  LpSolution Out;
  const size_t M = Problem.A.rows();
  const size_t N = Problem.A.cols();

  Tableau Tab(Problem.A, Problem.B, M);

  // Phase 1: minimize the sum of artificial variables.
  Vector Phase1Cost(N + M, 0.0);
  for (size_t I = 0; I < M; ++I)
    Phase1Cost[N + I] = 1.0;
  Tab.setObjective(Phase1Cost);
  int Budget = MaxIterations;
  LpStatus Phase1 = Tab.iterate(Budget, /*ForbidArtificials=*/false);
  if (Phase1 == LpStatus::IterationLimit) {
    Out.Status = LpStatus::IterationLimit;
    return Out;
  }
  if (Tab.objectiveValue() > 1e-7) {
    Out.Status = LpStatus::Infeasible;
    return Out;
  }
  Tab.driveOutArtificials();

  // Phase 2: original objective over structural columns only.
  Vector Phase2Cost(N + M, 0.0);
  for (size_t I = 0; I < N; ++I)
    Phase2Cost[I] = Problem.C[I];
  Tab.setObjective(Phase2Cost);
  LpStatus Phase2 = Tab.iterate(Budget, /*ForbidArtificials=*/true);
  Out.Status = Phase2;
  if (Phase2 != LpStatus::Optimal)
    return Out;
  Out.X = Tab.solution();
  Out.Objective = Tab.objectiveValue();
  return Out;
}

bool craft::isFeasible(const Matrix &A, const Vector &B, int MaxIterations) {
  LpProblem P;
  P.A = A;
  P.B = B;
  P.C = Vector(A.cols(), 0.0);
  LpSolution S = solveLp(P, MaxIterations);
  return S.Status == LpStatus::Optimal;
}
