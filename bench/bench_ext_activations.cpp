//===- bench/bench_ext_activations.cpp ------------------------------------===//
//
// Extension experiment (App. B.6): certification across equilibrium
// activations. Trains one monDEQ per activation (ReLU / tanh / sigmoid) on
// the Gaussian mixture dataset under identical budgets, then sweeps l-inf
// radii and reports accuracy, containment, certified counts, and mean
// verification time. Shape to expect: all three activations reach abstract
// containment (PR contraction is an operator property, not an activation
// one); the smooth activations' 1-Lipschitz saturation makes their
// certified radii comparable to ReLU's at matched accuracy.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "data/GaussianMixture.h"

using namespace craft;

int main() {
  std::printf("== Extension: certification across activations (App. B.6) "
              "==\n\n");

  Rng DataRng(7);
  Dataset Train = makeGaussianMixture(DataRng, 300, 5, 3);
  Dataset Test = makeGaussianMixture(DataRng, (size_t)benchSamples(20), 5, 3);

  struct Entry {
    ActivationKind Act;
    MonDeq Model;
  };
  std::vector<Entry> Entries;
  for (ActivationKind Act : {ActivationKind::ReLU, ActivationKind::Sigmoid,
                             ActivationKind::Tanh}) {
    Rng InitRng(11);
    MonDeq Model = MonDeq::randomFc(InitRng, 5, 10, 3, /*M=*/3.0);
    Model.setActivation(Act);
    TrainOptions Opts;
    Opts.Epochs = 12;
    Opts.Verbose = false;
    trainMonDeq(Model, Train, Opts);
    Entries.push_back({Act, std::move(Model)});
  }

  TablePrinter T({"activation", "eps", "#acc", "#cont", "#cert",
                  "time [s]"});
  for (const Entry &E : Entries) {
    CraftConfig Cfg;
    Cfg.Alpha1 = 0.5;
    Cfg.LambdaOptLevel = E.Act == ActivationKind::ReLU ? 2 : 0;
    CraftVerifier Verifier(E.Model, Cfg);
    FixpointSolver Solver(E.Model, Splitting::PeacemanRachford);
    for (double Eps : {0.02, 0.05, 0.1}) {
      int Accurate = 0, Contained = 0, Certified = 0;
      double Time = 0.0;
      for (size_t I = 0; I < Test.size(); ++I) {
        Vector X = Test.input(I);
        if (Solver.predict(X) != Test.Labels[I])
          continue;
        ++Accurate;
        WallTimer Clock;
        CraftResult Res =
            Verifier.verifyRobustness(X, Test.Labels[I], Eps);
        Time += Clock.seconds();
        Contained += Res.Containment;
        Certified += Res.Certified;
      }
      T.addRow({activationName(E.Act), fmt(Eps, 2), fmt((long)Accurate),
                fmt((long)Contained), fmt((long)Certified),
                fmt(Accurate ? Time / Accurate : 0.0, 3)});
    }
  }
  T.print();
  return 0;
}
