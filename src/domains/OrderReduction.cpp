//===- domains/OrderReduction.cpp -----------------------------------------===//

#include "domains/OrderReduction.h"

#include "linalg/Kernels.h"
#include "linalg/Pca.h"
#include "linalg/Workspace.h"

#include <algorithm>

using namespace craft;

ConsolidationBasis::ConsolidationBasis(size_t Dim, int RefreshEvery)
    : Basis(Matrix::identity(Dim)), BasisInv(Matrix::identity(Dim)),
      RefreshEvery(RefreshEvery) {}

void ConsolidationBasis::refresh(const Matrix &Generators) {
  if (Counter > 0) {
    --Counter;
    return;
  }
  Basis = pcaBasis(Generators);
  BasisInv = Basis.transpose();
  Counter = RefreshEvery - 1;
}

ProperState craft::consolidateProper(const CHZonotope &Z,
                                     ConsolidationBasis &Basis, double WMul,
                                     double WAdd) {
  const size_t P = Z.dim();
  Basis.refresh(Z.generators());
  const Matrix &B = Basis.basis();
  const Matrix &BInv = Basis.basisInv();

  // Consolidation coefficients (Thm 4.1) with expansion (Eq. 10) and the
  // positivity floor that keeps the result proper. The p x k mapped
  // generator matrix is workspace scratch: consolidateProper runs every
  // few Kleene iterations and this temporary dominated its heap traffic.
  WorkspaceScope WS;
  VectorView C = WS.vector(P);
  if (Z.numGenerators() > 0) {
    MatrixView Mapped = WS.matrix(P, Z.numGenerators());
    kernels::gemm(Mapped, BInv, Z.generators());
    kernels::rowAbsSumsInto(C, Mapped);
  } else {
    kernels::fill(C, 0.0);
  }
  for (size_t I = 0; I < P; ++I)
    C[I] = std::max((1.0 + WMul) * C[I] + WAdd, 1e-12);

  Matrix Gens(P, P);
  Matrix Inv(P, P);
  std::vector<uint64_t> Ids(P);
  for (size_t J = 0; J < P; ++J) {
    Ids[J] = freshErrorTermId();
    for (size_t R = 0; R < P; ++R) {
      Gens(R, J) = B(R, J) * C[J];
      Inv(J, R) = BInv(J, R) / C[J]; // (B diag(c))^{-1} = diag(1/c) B^T.
    }
  }
  ProperState Out;
  Out.Z = CHZonotope(Z.center(), std::move(Gens), std::move(Ids),
                     Z.boxRadius());
  Out.InvGens = std::move(Inv);
  return Out;
}
