//===- linalg/Views.h - Non-owning matrix/vector views ----------*- C++ -*-===//
//
// Part of the Craft reproduction (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Non-owning, span-style views over dense row-major double storage: the
/// argument types of the allocation-free kernel layer (linalg/Kernels.h).
/// A MatrixView carries an explicit row stride, so sub-blocks (row ranges,
/// column ranges) of a Matrix — or of a Workspace scratch buffer — are
/// zero-copy slices of the parent storage.
///
/// Ownership rules:
///  - Views never own storage and never allocate; the viewed object
///    (Matrix, Vector, Workspace scope, or raw buffer) must outlive every
///    view into it.
///  - Mutable views (MatrixView, VectorView) convert implicitly to their
///    Const counterparts; the reverse is impossible by construction.
///  - A view taken on a Matrix/Vector is invalidated by anything that
///    invalidates the container's data() pointer (resize, move-from).
///
//===----------------------------------------------------------------------===//

#ifndef CRAFT_LINALG_VIEWS_H
#define CRAFT_LINALG_VIEWS_H

#include "linalg/Matrix.h"

#include <cassert>
#include <cstddef>

namespace craft {

/// Immutable view of a contiguous double sequence.
class ConstVectorView {
public:
  ConstVectorView() = default;
  ConstVectorView(const double *Data, size_t Size) : Ptr(Data), Count(Size) {
    assert((Data != nullptr || Size == 0) && "null view with nonzero size");
  }
  /*implicit*/ ConstVectorView(const Vector &V)
      : Ptr(V.data()), Count(V.size()) {}

  size_t size() const { return Count; }
  bool empty() const { return Count == 0; }
  const double *data() const { return Ptr; }

  double operator[](size_t I) const {
    assert(I < Count && "vector view index out of range");
    return Ptr[I];
  }

  /// Zero-copy sub-range [First, First+Size).
  ConstVectorView slice(size_t First, size_t Size) const {
    assert(First + Size <= Count && "vector view slice out of range");
    return ConstVectorView(Ptr + First, Size);
  }

private:
  const double *Ptr = nullptr;
  size_t Count = 0;
};

/// Mutable view of a contiguous double sequence.
class VectorView {
public:
  VectorView() = default;
  VectorView(double *Data, size_t Size) : Ptr(Data), Count(Size) {
    assert((Data != nullptr || Size == 0) && "null view with nonzero size");
  }
  /*implicit*/ VectorView(Vector &V) : Ptr(V.data()), Count(V.size()) {}

  size_t size() const { return Count; }
  bool empty() const { return Count == 0; }
  double *data() const { return Ptr; }

  double &operator[](size_t I) const {
    assert(I < Count && "vector view index out of range");
    return Ptr[I];
  }

  /*implicit*/ operator ConstVectorView() const {
    return ConstVectorView(Ptr, Count);
  }

  VectorView slice(size_t First, size_t Size) const {
    assert(First + Size <= Count && "vector view slice out of range");
    return VectorView(Ptr + First, Size);
  }

private:
  double *Ptr = nullptr;
  size_t Count = 0;
};

/// Immutable view of a row-major matrix with an explicit row stride
/// (Stride >= Cols; rows are contiguous, consecutive rows are Stride
/// doubles apart).
class ConstMatrixView {
public:
  ConstMatrixView() = default;
  ConstMatrixView(const double *Data, size_t Rows, size_t Cols, size_t Stride)
      : Ptr(Data), NumRows(Rows), NumCols(Cols), RowStride(Stride) {
    assert(Stride >= Cols && "row stride must cover the columns");
  }
  ConstMatrixView(const double *Data, size_t Rows, size_t Cols)
      : ConstMatrixView(Data, Rows, Cols, Cols) {}
  /*implicit*/ ConstMatrixView(const Matrix &M)
      : ConstMatrixView(M.rows() ? M.rowData(0) : nullptr, M.rows(), M.cols(),
                        M.cols()) {}

  size_t rows() const { return NumRows; }
  size_t cols() const { return NumCols; }
  size_t stride() const { return RowStride; }
  bool empty() const { return NumRows == 0 || NumCols == 0; }
  const double *data() const { return Ptr; }

  double operator()(size_t R, size_t C) const {
    assert(R < NumRows && C < NumCols && "matrix view index out of range");
    return Ptr[R * RowStride + C];
  }
  const double *row(size_t R) const {
    assert(R < NumRows && "matrix view row out of range");
    return Ptr + R * RowStride;
  }
  /// Row \p R as a contiguous vector view.
  ConstVectorView rowVec(size_t R) const {
    return ConstVectorView(row(R), NumCols);
  }

  /// Zero-copy sub-block [R0, R0+Rows) x [C0, C0+Cols).
  ConstMatrixView block(size_t R0, size_t C0, size_t Rows, size_t Cols) const {
    assert(R0 + Rows <= NumRows && C0 + Cols <= NumCols &&
           "matrix view block out of range");
    return ConstMatrixView(Ptr + R0 * RowStride + C0, Rows, Cols, RowStride);
  }
  ConstMatrixView colRange(size_t First, size_t Count) const {
    return block(0, First, NumRows, Count);
  }
  ConstMatrixView rowRange(size_t First, size_t Count) const {
    return block(First, 0, Count, NumCols);
  }

private:
  const double *Ptr = nullptr;
  size_t NumRows = 0;
  size_t NumCols = 0;
  size_t RowStride = 0;
};

/// Mutable view of a row-major matrix with an explicit row stride.
class MatrixView {
public:
  MatrixView() = default;
  MatrixView(double *Data, size_t Rows, size_t Cols, size_t Stride)
      : Ptr(Data), NumRows(Rows), NumCols(Cols), RowStride(Stride) {
    assert(Stride >= Cols && "row stride must cover the columns");
  }
  MatrixView(double *Data, size_t Rows, size_t Cols)
      : MatrixView(Data, Rows, Cols, Cols) {}
  /*implicit*/ MatrixView(Matrix &M)
      : MatrixView(M.rows() ? M.rowData(0) : nullptr, M.rows(), M.cols(),
                   M.cols()) {}

  size_t rows() const { return NumRows; }
  size_t cols() const { return NumCols; }
  size_t stride() const { return RowStride; }
  bool empty() const { return NumRows == 0 || NumCols == 0; }
  double *data() const { return Ptr; }

  double &operator()(size_t R, size_t C) const {
    assert(R < NumRows && C < NumCols && "matrix view index out of range");
    return Ptr[R * RowStride + C];
  }
  double *row(size_t R) const {
    assert(R < NumRows && "matrix view row out of range");
    return Ptr + R * RowStride;
  }
  VectorView rowVec(size_t R) const { return VectorView(row(R), NumCols); }

  /*implicit*/ operator ConstMatrixView() const {
    return ConstMatrixView(Ptr, NumRows, NumCols, RowStride);
  }

  MatrixView block(size_t R0, size_t C0, size_t Rows, size_t Cols) const {
    assert(R0 + Rows <= NumRows && C0 + Cols <= NumCols &&
           "matrix view block out of range");
    return MatrixView(Ptr + R0 * RowStride + C0, Rows, Cols, RowStride);
  }
  MatrixView colRange(size_t First, size_t Count) const {
    return block(0, First, NumRows, Count);
  }
  MatrixView rowRange(size_t First, size_t Count) const {
    return block(First, 0, Count, NumCols);
  }

private:
  double *Ptr = nullptr;
  size_t NumRows = 0;
  size_t NumCols = 0;
  size_t RowStride = 0;
};

} // namespace craft

#endif // CRAFT_LINALG_VIEWS_H
