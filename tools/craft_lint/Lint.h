//===- tools/craft_lint/Lint.h - Repo invariant checker ---------*- C++ -*-===//
//
// Part of the Craft reproduction (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The craft-lint tool: lexical static analysis that machine-checks the
/// repo invariants the paper's guarantees rest on. The soundness of a
/// "certified" answer and its byte-identical reproducibility across job
/// counts depend on implementation discipline that no compiler flag
/// enforces: directed rounding flows only through support/RoundedInterval,
/// kernel TUs never fuse mul+add, randomness comes only from the taskSeed
/// stream via support/Rng, and result paths never iterate hash containers.
/// Each rule here turns one of those conventions into a diagnostic.
///
/// The tool lexes C++ sources (comments, strings, raw strings, and
/// preprocessor lines are recognized, so tokens inside them never match)
/// and runs path-scoped token rules. Violations can be suppressed inline:
///
///   // craft-lint: allow(rule-id) — justification text
///   // craft-lint: allow-file(rule-id) — justification text
///
/// `allow` covers its own line and the next source line; `allow-file`
/// covers the whole file. A suppression with no justification text is
/// itself a violation — the acceptance bar is "zero unsuppressed
/// violations, every suppression justified".
///
/// Exit-code contract (see lintMain): 0 clean, 1 violations, 2 usage
/// error.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFT_TOOLS_CRAFT_LINT_LINT_H
#define CRAFT_TOOLS_CRAFT_LINT_LINT_H

#include <string>
#include <vector>

namespace craft {
namespace lint {

/// Diagnostic severity. Errors fail the run (exit 1); warnings are
/// reported but never affect the exit code.
enum class Severity { Warning, Error };

/// One rule of the rule set.
struct RuleInfo {
  std::string Id;          ///< Stable rule name used in suppressions.
  Severity Sev;            ///< Severity of its diagnostics.
  std::string Summary;     ///< One-line description (--list-rules).
  std::string Invariant;   ///< Which repo contract the rule protects.
};

/// The built-in rule set, in reporting order.
const std::vector<RuleInfo> &allRules();

/// One finding.
struct Diagnostic {
  std::string File; ///< Path as given (repo-relative in the CI run).
  int Line = 0;     ///< 1-based.
  int Col = 0;      ///< 1-based.
  std::string Rule;
  Severity Sev = Severity::Error;
  std::string Message;
  bool Suppressed = false;      ///< Matched a justified suppression.
  std::string Justification;    ///< The suppression's justification.
};

/// Aggregate result of linting one or more files.
struct LintResult {
  std::vector<Diagnostic> Diagnostics; ///< Suppressed ones included.
  size_t FilesScanned = 0;

  size_t unsuppressedErrors() const;
  size_t suppressedCount() const;
};

/// Lints one in-memory source buffer. \p RelPath is the repo-relative
/// path (forward slashes) used for rule scoping; diagnostics carry
/// \p DisplayPath (usually the same). \p RuleFilter, when non-empty,
/// restricts checking to those rule ids.
void lintBuffer(const std::string &RelPath, const std::string &DisplayPath,
                const std::string &Contents,
                const std::vector<std::string> &RuleFilter,
                LintResult &Result);

/// Serializes \p Result as the machine-readable JSON document
/// (schema_version 1; see README "Static analysis & invariants").
std::string toJson(const LintResult &Result);

/// Renders one diagnostic as `file:line:col: severity: [rule] message`.
std::string renderDiagnostic(const Diagnostic &D);

/// The CLI entry point (main() is a thin wrapper; tests call this
/// directly). Arguments: [--json] [--list-rules] [--root DIR]
/// [--rule ID]... PATH... where PATH is a file or a directory scanned
/// recursively for *.h / *.cpp. Output is appended to \p Out. Returns
/// the process exit code: 0 clean, 1 unsuppressed error-severity
/// violations, 2 usage error (unknown flag, unknown rule, no inputs,
/// unreadable path).
int lintMain(const std::vector<std::string> &Args, std::string &Out);

} // namespace lint
} // namespace craft

#endif // CRAFT_TOOLS_CRAFT_LINT_LINT_H
