//===- core/UnrolledCrown.h - Linear-bound unrolling baseline ---*- C++ -*-===//
//
// Part of the Craft reproduction (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Table 1 "Polyhedra" comparator implemented honestly for fixpoint
/// iterators: CROWN/DeepPoly-style linear bound propagation (restricted
/// polyhedra, Singh et al. 2019 / Zhang et al. 2018) through a *fixed
/// unrolling* of the Forward-Backward iteration, made sound for the true
/// fixpoints by an explicit contraction tail bound.
///
/// Linear bounds  L_k x + l_k <= s_k(x) <= U_k x + u_k  are propagated
/// through k solver steps (affine part exactly via positive/negative row
/// splitting, ReLU via the CROWN relaxation with adaptive lower slopes).
/// Because s_k is the k-th *iterate*, not the fixpoint, certified margins
/// subtract the tail
///
///   ||s_k(x) - s*(x)||_2 <= L_a^k * R_0,
///   L_a = sqrt(1 - 2 a m + a^2 ||I - W||_2^2) < 1,
///   R_0 >= max_x ||s_0 - s*(x)||_2  (Lipschitz bound on x -> z*(x)),
///
/// which is only finite inside FB's concrete convergence range — exactly
/// the Table 1 observation that domains without a native inclusion check
/// need convergence-rate side conditions to say anything about fixpoints,
/// while CH-Zonotope's containment check needs none. The paper's second
/// inclusion obstacle (co-NP-hard projection of the input dimensions,
/// Section 2.3) is why this baseline certifies a postcondition directly
/// instead of attempting fixpoint containment.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFT_CORE_UNROLLEDCROWN_H
#define CRAFT_CORE_UNROLLEDCROWN_H

#include "domains/DomainConcept.h"
#include "domains/Interval.h"
#include "nn/Solvers.h"

namespace craft {

/// Knobs for the unrolled linear-bound verifier.
struct CrownOptions {
  /// FB step size; <= 0 selects 0.9 * fbAlphaBound() (the largest step
  /// with a concrete convergence guarantee, up to the safety factor).
  double Alpha = -1.0;
  /// Number of unrolled solver steps k.
  int UnrollSteps = 60;
  /// CROWN adaptive lower ReLU slope (1 if u > -l else 0) instead of the
  /// fixed 0 lower bound.
  bool AdaptiveLower = true;
  /// Clamp robustness balls to this input range (images live in [0,1]).
  double InputClampLo = 0.0;
  double InputClampHi = 1.0;
};

/// Result of one unrolled-CROWN verification query.
struct CrownResult {
  bool Certified = false;
  /// Sound lower bound on the min rival margin of the *fixpoint* outputs
  /// (iterate margin minus the contraction tail).
  double MarginLower = -1e300;
  /// Min rival margin of the k-th iterate (before the tail correction).
  double IterateMargin = -1e300;
  /// Margin-space tail bound subtracted for soundness.
  double Tail = 1e300;
  /// Per-step contraction factor L_a (>= 1 means no guarantee: the result
  /// is reported uncertified with an infinite tail).
  double Contraction = 1e300;
  /// Interval bounds on the k-th iterate (concretized linear bounds).
  IntervalVector StateBounds;
};

/// Unrolled-CROWN verifier bound to one model.
class CrownVerifier {
public:
  explicit CrownVerifier(const MonDeq &Model, CrownOptions Options = {});

  const CrownOptions &options() const { return Opts; }
  /// Per-step l2 contraction factor of the FB iteration at this alpha.
  double contraction() const { return Contraction; }

  /// l-inf robustness: does the model classify the (clamped) Epsilon-ball
  /// around X as TargetClass?
  CrownResult verifyRobustness(const Vector &X, int TargetClass,
                               double Epsilon) const;

  /// General box precondition against the "class = TargetClass"
  /// postcondition.
  CrownResult verifyRegion(const Vector &InLo, const Vector &InHi,
                           int TargetClass) const;

  /// Domain-generic entry: verifies the concretization of any portfolio
  /// domain's abstract input state. Linear-bound propagation starts from a
  /// box, so concretize-to-box is the one operation it needs — any domain
  /// satisfying \ref AbstractDomain plugs in here.
  template <class Dom>
  CrownResult verifyRegionAbs(const typename Dom::State &Input,
                              int TargetClass) const {
    IntervalVector Hull = Dom::hull(Input);
    return verifyRegion(Hull.lowerBounds(), Hull.upperBounds(), TargetClass);
  }

private:
  const MonDeq &Model;
  CrownOptions Opts;
  double Alpha;
  double Contraction;  ///< L_a.
  double LatentLip2;   ///< l2 Lipschitz bound of x -> z*(x).
  Matrix StateMatrix;  ///< (1-a) I + a W.
  Matrix SplitPos;     ///< max(StateMatrix, 0): sign-split upper half.
  Matrix SplitNeg;     ///< min(StateMatrix, 0): sign-split lower half.
  Matrix InputMatrix;  ///< a U.
  Vector Offset;       ///< a b.
};

} // namespace craft

#endif // CRAFT_CORE_UNROLLEDCROWN_H
