//===- tests/test_support.cpp - Support utility tests ---------------------===//

#include "support/Rng.h"
#include "support/Table.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

#include <set>

using namespace craft;

namespace {

TEST(RngTest, DeterministicPerSeed) {
  Rng A(42), B(42), C(43);
  for (int I = 0; I < 100; ++I) {
    double VA = A.uniform(), VB = B.uniform(), VC = C.uniform();
    EXPECT_DOUBLE_EQ(VA, VB);
    if (VA != VC)
      SUCCEED();
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng R(1);
  for (int I = 0; I < 1000; ++I) {
    double V = R.uniform(-2.5, 7.0);
    EXPECT_GE(V, -2.5);
    EXPECT_LT(V, 7.0);
  }
}

TEST(RngTest, UniformIntInclusive) {
  Rng R(2);
  std::set<int> Seen;
  for (int I = 0; I < 500; ++I) {
    int V = R.uniformInt(3, 6);
    EXPECT_GE(V, 3);
    EXPECT_LE(V, 6);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 4u) << "all values in [3,6] should appear";
}

TEST(RngTest, GaussianMomentsRoughlyCorrect) {
  Rng R(3);
  double Sum = 0.0, SumSq = 0.0;
  const int N = 20000;
  for (int I = 0; I < N; ++I) {
    double V = R.gaussian(2.0, 3.0);
    Sum += V;
    SumSq += V * V;
  }
  double Mean = Sum / N;
  double Var = SumSq / N - Mean * Mean;
  EXPECT_NEAR(Mean, 2.0, 0.1);
  EXPECT_NEAR(Var, 9.0, 0.5);
}

TEST(RngTest, GaussianVectorAndShuffle) {
  Rng R(4);
  std::vector<double> V = R.gaussianVector(50, 0.0, 1.0);
  EXPECT_EQ(V.size(), 50u);
  std::vector<int> Order = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> Original = Order;
  R.shuffle(Order);
  std::sort(Order.begin(), Order.end());
  EXPECT_EQ(Order, Original) << "shuffle must be a permutation";
}

TEST(FmtTest, FormatsNumbers) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.14159, 4), "3.1416");
  EXPECT_EQ(fmt(-0.5, 1), "-0.5");
  EXPECT_EQ(fmt(42L), "42");
  EXPECT_EQ(fmt(-7L), "-7");
}

TEST(TimerTest, MeasuresElapsedTime) {
  WallTimer T;
  // craft-lint: allow(conc-volatile) — single-threaded optimization
  // barrier so the loop below isn't folded away; not synchronization.
  volatile double Sink = 0.0;
  for (int I = 0; I < 2000000; ++I)
    Sink = Sink + I * 1e-9; // No compound assignment: volatile += is
                            // deprecated in C++20 (-Wvolatile).
  double S = T.seconds();
  EXPECT_GT(S, 0.0);
  EXPECT_LT(S, 30.0);
  EXPECT_NEAR(T.milliseconds(), T.seconds() * 1e3, T.seconds() * 50);
  T.reset();
  EXPECT_LT(T.seconds(), 1.0);
}

} // namespace
