//===- core/LipschitzCert.h - Lipschitz-bound certification -----*- C++ -*-===//
//
// Part of the Craft reproduction (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lipschitz-bound robustness certification for monDEQs in the style of
/// Pabbaraju et al. (2021) / the 'Lipschitz model' of Chen et al. (2021) --
/// the fast-but-loose baseline family of Section 6.1 and App. D.4.
///
/// Strong monotonicity gives the global l2 Lipschitz bound of the fixpoint
/// map, ||z*(x1) - z*(x2)||_2 <= (||U||_2 / m) ||x1 - x2||_2, so a sample is
/// certified when every center margin beats the worst output swing. l-inf
/// balls are handled via the sqrt(q) norm conversion (App. D.4), which is
/// exactly what makes these bounds loose in the l-inf setting the paper
/// targets.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFT_CORE_LIPSCHITZCERT_H
#define CRAFT_CORE_LIPSCHITZCERT_H

#include "nn/Solvers.h"

namespace craft {

/// Lipschitz-bound certifier bound to one model (norm computations cached).
class LipschitzCertifier {
public:
  explicit LipschitzCertifier(const MonDeq &Model);

  /// Global l2 Lipschitz constant of x -> z*(x): ||U||_2 / m.
  double latentLipschitz2() const { return LatentL2; }

  /// Certifies l-inf robustness of the Epsilon-ball around \p X for class
  /// \p TargetClass: margins at the center must exceed the Lipschitz bound
  /// on the margin change, per rival class pair.
  bool certify(const Vector &X, int TargetClass, double EpsilonInf) const;

  /// Largest epsilon certified at \p X (0 if the center is misclassified).
  double certifiedRadius(const Vector &X, int TargetClass) const;

private:
  const MonDeq &Model;
  double LatentL2;
  /// Per-rival l2 norms ||V_t - V_i||_2 are recomputed per query (target
  /// class varies); the latent bound dominates the cost and is cached.
  FixpointSolver Solver;
};

} // namespace craft

#endif // CRAFT_CORE_LIPSCHITZCERT_H
