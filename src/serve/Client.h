//===- serve/Client.h - Serve protocol client library -----------*- C++ -*-===//
//
// Part of the Craft reproduction (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Client side of the serve protocol: connects to a `craft serve` daemon
/// on localhost, sends one newline-delimited JSON request per call, and
/// decodes the response. One connection per client; requests on a
/// connection are answered in order. The `craft client` subcommand, the
/// e2e test, and the bench_serve load generator all drive the daemon
/// through this class, so wire handling exists exactly once.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFT_SERVE_CLIENT_H
#define CRAFT_SERVE_CLIENT_H

#include "serve/Protocol.h"
#include "support/Socket.h"

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace craft {
namespace serve {

/// A decoded verify response (the per-query results in request order).
struct VerifyReply {
  std::vector<WireResult> Results;
  double ServerMs = 0.0;
};

/// Blocking localhost client for one serve connection.
class ServeClient {
public:
  /// Connects to 127.0.0.1:\p Port. False + \p Error on failure.
  bool connect(int Port, std::string &Error);

  bool connected() const { return Chan != nullptr; }

  /// Sends one raw request line and returns the parsed response
  /// envelope, or nullopt with \p Error set (transport or JSON failure).
  std::optional<json::Value> roundTrip(const std::string &RequestLine,
                                       std::string &Error);

  /// Verifies one spec text. On an ok:false envelope, returns nullopt
  /// with the server's error (and rendered diagnostics) in \p Error.
  std::optional<VerifyReply> verify(const std::string &SpecText,
                                    std::string &Error,
                                    bool UseCache = true);

  /// True when the daemon answers a ping.
  bool ping(std::string &Error);

  /// Fetches the stats envelope.
  std::optional<json::Value> stats(std::string &Error);

  /// Asks the daemon to shut down. True once the ack arrives.
  bool requestShutdown(std::string &Error);

  void close() { Chan.reset(); }

private:
  int64_t NextId = 1;
  std::unique_ptr<LineChannel> Chan;
};

} // namespace serve
} // namespace craft

#endif // CRAFT_SERVE_CLIENT_H
