//===- bench/bench_fig12_alpha_sweep.cpp ----------------------------------===//
//
// Reproduces Fig. 12: stability ranges of the dampening parameter alpha for
// containment detection and certification, per fixpoint solver and with /
// without the CH-Zonotope Box component.
//
// Expected shape: PR detects containment across the whole alpha range
// (insensitive); FB only in a narrow alpha window; dropping the Box
// component shrinks both ranges; PR-then-FB certifies the most samples.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace craft;

namespace {

struct SweepConfig {
  const char *Name;
  Splitting Phase1;
  Splitting Phase2;
  bool UseBox;
};

} // namespace

int main() {
  std::printf("== Fig. 12: alpha stability ranges (FCx40, eps = 0.05) ==\n\n");

  const ModelSpec *Spec = findModelSpec("mnist_fc40");
  MonDeq Model = getOrTrainModel(*Spec);
  Dataset Test = makeTestSet(*Spec, benchSamples(5));
  FixpointSolver Concrete(Model, Splitting::PeacemanRachford);

  const double Alphas[] = {0.01, 0.025, 0.05, 0.075, 0.1, 0.125, 0.15};
  const SweepConfig Sweeps[] = {
      {"PR", Splitting::PeacemanRachford, Splitting::PeacemanRachford, true},
      {"PR no Box", Splitting::PeacemanRachford,
       Splitting::PeacemanRachford, false},
      {"FwdBwd", Splitting::ForwardBackward, Splitting::ForwardBackward,
       true},
      {"FwdBwd no Box", Splitting::ForwardBackward,
       Splitting::ForwardBackward, false},
      {"PR then FwdBwd", Splitting::PeacemanRachford,
       Splitting::ForwardBackward, true},
      {"PR then FwdBwd no Box", Splitting::PeacemanRachford,
       Splitting::ForwardBackward, false},
  };

  TablePrinter Table({"Solver", "alpha", "#Cont", "#Cert"});
  for (const SweepConfig &Sweep : Sweeps) {
    for (double Alpha : Alphas) {
      CraftConfig Config = craftConfigFor(*Spec);
      Config.Phase1Method = Sweep.Phase1;
      Config.Phase2Method = Sweep.Phase2;
      Config.Alpha1 = Alpha;
      Config.Domain =
          Sweep.UseBox ? VerifierDomain::CHZono : VerifierDomain::Zono;
      Config.LambdaOptLevel = 0; // Sweep cost control.
      // Non-contracting (alpha, method) pairs burn the full budget per
      // sample; cap it (containment, when it happens, comes early).
      Config.MaxIterations = 120;
      Config.Phase2MaxIterations = 60;
      CraftVerifier Verifier(Model, Config);

      size_t Cont = 0, Cert = 0;
      for (size_t I = 0; I < Test.size(); ++I) {
        if (Concrete.predict(Test.input(I)) != Test.Labels[I])
          continue;
        CraftResult Res = Verifier.verifyRobustness(Test.input(I),
                                                    Test.Labels[I],
                                                    Spec->Epsilon);
        Cont += Res.Containment;
        Cert += Res.Certified;
      }
      Table.addRow({Sweep.Name, fmt(Alpha, 3), fmt(static_cast<long>(Cont)),
                    fmt(static_cast<long>(Cert))});
    }
  }
  Table.print();
  return 0;
}
