//===- support/Rng.cpp ----------------------------------------------------===//

#include "support/Rng.h"

#include <algorithm>

using namespace craft;

std::vector<double> Rng::gaussianVector(size_t N, double Mean, double Stddev) {
  std::vector<double> Out(N);
  std::normal_distribution<double> Dist(Mean, Stddev);
  for (double &V : Out)
    V = Dist(Engine);
  return Out;
}

void Rng::shuffle(std::vector<int> &Indices) {
  std::shuffle(Indices.begin(), Indices.end(), Engine);
}
