//===- core/DomainSplitting.h - Global certification ------------*- C++ -*-===//
//
// Part of the Craft reproduction (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Domain splitting for global robustness certification (Section 6.2): the
/// input space is recursively bisected along the widest dimension; each
/// region is certified with Craft against the class predicted at its
/// center; regions that fail are split further until a depth budget is
/// exhausted. The certified volume fraction is the headline metric (the
/// paper reports 82.8% on the HCAS input space).
///
//===----------------------------------------------------------------------===//

#ifndef CRAFT_CORE_DOMAINSPLITTING_H
#define CRAFT_CORE_DOMAINSPLITTING_H

#include "core/Verifier.h"

#include <vector>

namespace craft {

/// One leaf region of the splitting tree.
struct SplitRegion {
  Vector Lo;
  Vector Hi;
  int CertifiedClass = -1; ///< -1: not certified.
};

/// Aggregate splitting outcome.
struct SplitResult {
  std::vector<SplitRegion> Regions;
  double CertifiedFraction = 0.0; ///< Volume-weighted.
  size_t NumCertified = 0;
  size_t NumVerifierCalls = 0;
};

/// Exhaustively certifies the box [Lo, Hi] by recursive bisection, running
/// the Craft verifier on each candidate region. \p MaxDepth bounds the
/// number of splits along any root-to-leaf path.
SplitResult certifyByDomainSplitting(const MonDeq &Model,
                                     const CraftConfig &Config,
                                     const Vector &Lo, const Vector &Hi,
                                     int MaxDepth);

/// Outcome of a branch-and-bound local-robustness query.
struct BranchAndBoundResult {
  /// Every leaf certified to the target class: the property holds.
  bool Certified = false;
  /// A concrete counterexample was found: the property provably fails.
  bool Refuted = false;
  Vector Counterexample; ///< Valid when Refuted.
  size_t NumVerifierCalls = 0;
  size_t NumLeaves = 0;
  /// Volume fraction of the input box certified (1.0 when Certified).
  double CertifiedVolumeFraction = 0.0;
};

/// Branch-and-bound refinement of a *local* robustness query: certifies
/// that every point of the box [Lo, Hi] classifies to \p TargetClass,
/// bisecting uncertified regions along their widest dimension up to
/// \p MaxDepth splits. Region centers are tested concretely first, so the
/// procedure is anytime-refuting: a misclassified center is a definitive
/// counterexample. Neither Certified nor Refuted means the depth budget
/// ran out undecided (the verifier is incomplete, Section 5.2).
BranchAndBoundResult verifyRobustnessSplit(const MonDeq &Model,
                                           const CraftConfig &Config,
                                           const Vector &Lo,
                                           const Vector &Hi, int TargetClass,
                                           int MaxDepth);

} // namespace craft

#endif // CRAFT_CORE_DOMAINSPLITTING_H
