//===- tests/test_verifier_config.cpp - Verifier configuration tests ------===//
//
// Behavioral checks for the CraftConfig knobs: ablation flags, containment
// check frequency, expansion schedules, and phase-2 budgets. Complements
// test_core (algorithmic correctness) with configuration-space coverage.
//
//===----------------------------------------------------------------------===//

#include "core/Verifier.h"
#include "data/GaussianMixture.h"
#include "nn/Training.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace craft;

namespace {

const MonDeq &model() {
  static const MonDeq M = [] {
    Rng R(90);
    Dataset Train = makeGaussianMixture(R, 400, 5, 3, 0.18);
    MonDeq Net = MonDeq::randomFc(R, 5, 10, 3, 20.0);
    TrainOptions Opts;
    Opts.Epochs = 40;
    Opts.LearningRate = 0.02;
    trainMonDeq(Net, Train, Opts);
    return Net;
  }();
  return M;
}

struct Sample {
  Vector X;
  int Label;
};

std::vector<Sample> samples(size_t N) {
  Rng R(91);
  Dataset Test = makeGaussianMixture(R, N, 5, 3, 0.18);
  FixpointSolver Solver(model(), Splitting::PeacemanRachford);
  std::vector<Sample> Out;
  for (size_t I = 0; I < Test.size(); ++I)
    Out.push_back({Test.input(I), Solver.predict(Test.input(I))});
  return Out;
}

size_t countCertified(const CraftConfig &Config, double Eps = 0.03) {
  CraftVerifier Verifier(model(), Config);
  size_t Certified = 0;
  for (const Sample &S : samples(6))
    Certified += Verifier.verifyRobustness(S.X, S.Label, Eps).Certified;
  return Certified;
}

TEST(ConfigTest, SparserContainmentChecksStillConverge) {
  // Raising ContainmentCheckEvery (the conv-model cost lever) may delay
  // containment detection but must not lose it.
  CraftConfig Every1, Every5;
  Every1.Alpha1 = Every5.Alpha1 = 0.05;
  Every5.ContainmentCheckEvery = 5;
  CraftVerifier V1(model(), Every1), V5(model(), Every5);
  for (const Sample &S : samples(4)) {
    CraftResult R1 = V1.verifyRobustness(S.X, S.Label, 0.03);
    CraftResult R5 = V5.verifyRobustness(S.X, S.Label, 0.03);
    EXPECT_EQ(R1.Containment, R5.Containment);
    if (R1.Containment && R5.Containment) {
      EXPECT_GE(R5.ContainmentIteration, R1.ContainmentIteration);
    }
  }
}

TEST(ConfigTest, SameIterationContainmentNeverBetter) {
  CraftConfig Ref, SameIter;
  Ref.Alpha1 = SameIter.Alpha1 = 0.05;
  SameIter.SameIterationContainment = true;
  EXPECT_LE(countCertified(SameIter), countCertified(Ref));
}

TEST(ConfigTest, ExponentialExpansionStillSoundAndConverges) {
  CraftConfig Exp;
  Exp.Alpha1 = 0.05;
  Exp.Expansion = ExpansionSchedule::Exponential;
  CraftVerifier Verifier(model(), Exp);
  FixpointSolver Solver(model(), Splitting::PeacemanRachford);
  Rng R(92);
  for (const Sample &S : samples(4)) {
    CraftResult Res = Verifier.verifyRobustness(S.X, S.Label, 0.03);
    if (!Res.Containment)
      continue;
    // Soundness: sampled fixpoints stay inside the certified hull.
    for (int Trial = 0; Trial < 10; ++Trial) {
      Vector X = S.X;
      for (size_t J = 0; J < 5; ++J)
        X[J] = std::clamp(X[J] + R.uniform(-0.03, 0.03), 0.0, 1.0);
      Vector Z = Solver.solve(X, 1e-11, 3000).Z;
      for (size_t J = 0; J < Z.size(); ++J) {
        EXPECT_GE(Z[J], Res.FixpointHull.lowerBounds()[J] - 1e-7);
        EXPECT_LE(Z[J], Res.FixpointHull.upperBounds()[J] + 1e-7);
      }
    }
  }
}

TEST(ConfigTest, FixedAlpha2SkipsLineSearch) {
  CraftConfig Fixed;
  Fixed.Alpha1 = 0.05;
  Fixed.Alpha2 = 0.04;
  CraftVerifier Verifier(model(), Fixed);
  for (const Sample &S : samples(3)) {
    CraftResult Res = Verifier.verifyRobustness(S.X, S.Label, 0.03);
    // ChosenAlpha2 stays -1 when certification succeeds at containment
    // (phase 2 never runs); when phase 2 ran, it must be the fixed value.
    if (Res.Containment && Res.ChosenAlpha2 >= 0.0) {
      EXPECT_DOUBLE_EQ(Res.ChosenAlpha2, 0.04);
    }
  }
}

TEST(ConfigTest, Phase2BudgetBoundsIterations) {
  // A tiny phase-2 budget must still be sound (possibly less precise).
  CraftConfig Tiny, Full;
  Tiny.Alpha1 = Full.Alpha1 = 0.05;
  Tiny.Phase2MaxIterations = 2;
  Tiny.LambdaOptLevel = 0;
  Full.LambdaOptLevel = 0;
  CraftVerifier TinyV(model(), Tiny), FullV(model(), Full);
  for (const Sample &S : samples(3)) {
    CraftResult T = TinyV.verifyRobustness(S.X, S.Label, 0.03);
    CraftResult F = FullV.verifyRobustness(S.X, S.Label, 0.03);
    if (T.Containment && F.Containment) {
      EXPECT_LE(T.BestMargin, F.BestMargin + 1e-7)
          << "more tightening cannot hurt the margin";
    }
  }
}

TEST(ConfigTest, LambdaOptOnlyHelps) {
  CraftConfig NoOpt, Opt;
  NoOpt.Alpha1 = Opt.Alpha1 = 0.05;
  NoOpt.LambdaOptLevel = 0;
  Opt.LambdaOptLevel = 2;
  EXPECT_GE(countCertified(Opt, 0.06), countCertified(NoOpt, 0.06));
}

TEST(ConfigTest, RejectsFbThenPr) {
#ifdef NDEBUG
  GTEST_SKIP() << "constructor guard is an assert (debug builds only)";
#else
  CraftConfig Bad;
  Bad.Phase1Method = Splitting::ForwardBackward;
  Bad.Phase2Method = Splitting::PeacemanRachford;
  EXPECT_DEATH({ CraftVerifier V(model(), Bad); (void)V; }, "unsupported");
#endif
}

} // namespace
