//===- bench/bench_micro_domain_ops.cpp -----------------------------------===//
//
// google-benchmark micro-benchmarks backing the complexity claims of
// Table 1 / Section 2.3: CH-Zonotope containment and consolidation are
// O(p^2 (p + k)) and one abstract solver propagation step is O(p^3)-class,
// so doubling p should roughly 8x these timings (check the reported Time
// column scaling).
//
// Besides the console report, the harness writes BENCH_micro.json — one
// record per benchmark run with (op, dims, ns_per_op, allocs_per_op) — so
// the perf trajectory of the domain hot paths is machine-checkable across
// PRs. Allocations are counted via the AllocCounter.h global operator
// new replacement.
//
//===----------------------------------------------------------------------===//

#include "AllocCounter.h"
#include "BenchJson.h"

#include "core/AbstractSolver.h"
#include "domains/OrderReduction.h"
#include "linalg/Kernels.h"
#include "nn/MonDeq.h"
#include "support/Rng.h"

#include <benchmark/benchmark.h>

#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

using namespace craft;

namespace {

/// Records the allocation counter at construction and publishes the
/// per-iteration delta as the "allocs_per_op" user counter on destruction.
class AllocScope {
public:
  explicit AllocScope(benchmark::State &State)
      : State(State), Before(benchalloc::allocations()) {}
  ~AllocScope() {
    uint64_t Delta = benchalloc::allocations() - Before;
    State.counters["allocs_per_op"] = benchmark::Counter(
        static_cast<double>(Delta) /
        static_cast<double>(State.iterations() > 0 ? State.iterations() : 1));
  }

private:
  benchmark::State &State;
  uint64_t Before;
};

/// Builds a consolidated (outer, inner) pair of dimension P with K inner
/// generator columns.
struct ContainmentFixture {
  ProperState Outer;
  CHZonotope Inner;

  explicit ContainmentFixture(size_t P, size_t K) {
    Rng R(P * 131 + K);
    Vector Center(P);
    Matrix Gens(P, K);
    std::vector<uint64_t> Ids(K);
    for (size_t I = 0; I < P; ++I)
      Center[I] = R.gaussian();
    for (size_t I = 0; I < P; ++I)
      for (size_t J = 0; J < K; ++J)
        Gens(I, J) = R.gaussian(0.0, 0.3);
    for (auto &Id : Ids)
      Id = freshErrorTermId();
    Inner = CHZonotope(Center, Gens, Ids, Vector(P, 0.05));
    ConsolidationBasis Basis(P, 1);
    Outer = consolidateProper(Inner, Basis, 0.1, 0.1);
  }
};

/// Dense affine map fixture: a random p x p matrix applied to a CH-Zonotope
/// with k = 2p generator columns (the shape of one abstract solver
/// propagation sub-step at paper model dimensions).
struct AffineFixture {
  CHZonotope Z;
  Matrix M;
  Vector T;

  explicit AffineFixture(size_t P) {
    ContainmentFixture Inner(P, 2 * P);
    Z = Inner.Inner;
    Rng R(P * 977 + 5);
    M = Matrix(P, P);
    for (size_t I = 0; I < P; ++I)
      for (size_t J = 0; J < P; ++J)
        M(I, J) = R.gaussian(0.0, 1.0 / static_cast<double>(P));
    T = Vector(P, 0.01);
  }
};

void BM_ContainmentCheck(benchmark::State &State) {
  size_t P = static_cast<size_t>(State.range(0));
  ContainmentFixture Fixture(P, 2 * P);
  AllocScope Allocs(State);
  for (auto _ : State)
    benchmark::DoNotOptimize(
        containsCH(Fixture.Outer.Z, Fixture.Outer.InvGens, Fixture.Inner));
  State.SetComplexityN(State.range(0));
}

void BM_Consolidation(benchmark::State &State) {
  size_t P = static_cast<size_t>(State.range(0));
  ContainmentFixture Fixture(P, 2 * P);
  ConsolidationBasis Basis(P, 1000000); // Basis cached: measure Thm 4.1 only.
  Basis.refresh(Fixture.Inner.generators());
  AllocScope Allocs(State);
  for (auto _ : State)
    benchmark::DoNotOptimize(
        consolidateProper(Fixture.Inner, Basis, 1e-3, 1e-2));
  State.SetComplexityN(State.range(0));
}

void BM_CHZAffine(benchmark::State &State) {
  size_t P = static_cast<size_t>(State.range(0));
  AffineFixture Fixture(P);
  AllocScope Allocs(State);
  for (auto _ : State)
    benchmark::DoNotOptimize(Fixture.Z.affine(Fixture.M, Fixture.T));
  State.SetComplexityN(State.range(0));
}

void BM_PcaBasisRefresh(benchmark::State &State) {
  size_t P = static_cast<size_t>(State.range(0));
  ContainmentFixture Fixture(P, 2 * P);
  AllocScope Allocs(State);
  for (auto _ : State) {
    ConsolidationBasis Basis(P, 1);
    Basis.refresh(Fixture.Inner.generators());
    benchmark::DoNotOptimize(Basis.basis());
  }
  State.SetComplexityN(State.range(0));
}

/// Dense gemm at the CH-Zonotope hot-path shape: a p x p affine map times
/// the p x 2p generator block. This is the kernel the SIMD backend tiers
/// were built for; the trajectory of this number tracks raw FLOP
/// throughput per ISA (see the "backend" field of the JSON record).
void BM_GemmDense(benchmark::State &State) {
  size_t P = static_cast<size_t>(State.range(0));
  Rng R(P * 31 + 7);
  Matrix A(P, P), B(P, 2 * P), Out(P, 2 * P);
  for (size_t I = 0; I < P; ++I)
    for (size_t J = 0; J < P; ++J)
      A(I, J) = R.gaussian();
  for (size_t I = 0; I < P; ++I)
    for (size_t J = 0; J < 2 * P; ++J)
      B(I, J) = R.gaussian();
  AllocScope Allocs(State);
  for (auto _ : State) {
    kernels::gemm(Out, A, B);
    benchmark::DoNotOptimize(Out.rowData(0));
  }
  State.SetComplexityN(State.range(0));
}

/// |M| * v at the concretization shape (p x 2p): the containment check's
/// inner reduction, row-lane vectorized in the SIMD tiers.
void BM_GemvAbs(benchmark::State &State) {
  size_t P = static_cast<size_t>(State.range(0));
  Rng R(P * 57 + 3);
  Matrix M(P, 2 * P);
  Vector V(2 * P), Out(P);
  for (size_t I = 0; I < P; ++I)
    for (size_t J = 0; J < 2 * P; ++J)
      M(I, J) = R.gaussian();
  for (size_t J = 0; J < 2 * P; ++J)
    V[J] = 0.05 + 0.001 * static_cast<double>(J);
  AllocScope Allocs(State);
  for (auto _ : State) {
    kernels::gemvAbs(Out, M, V);
    benchmark::DoNotOptimize(Out.data());
  }
  State.SetComplexityN(State.range(0));
}

void BM_AbstractSolverStep(benchmark::State &State) {
  size_t P = static_cast<size_t>(State.range(0));
  Rng R(P);
  MonDeq Model = MonDeq::randomFc(R, 16, P, 4, 20.0);
  CHZonotope X = CHZonotope::fromBox(Vector(16, 0.2), Vector(16, 0.8));
  AbstractSolver Solver(Model, Splitting::PeacemanRachford, 0.1, X);
  CHZonotope S = Solver.initialState(Vector(P, 0.1));
  S = Solver.step(S);
  AllocScope Allocs(State);
  for (auto _ : State)
    benchmark::DoNotOptimize(Solver.step(S));
  State.SetComplexityN(State.range(0));
}

/// Console reporter that additionally writes one BENCH_micro.json record
/// per plain iteration run (aggregates and complexity fits are skipped)
/// with the fields the perf-trajectory tooling consumes. Wrapping the
/// display reporter avoids google-benchmark's requirement that a separate
/// file reporter be paired with --benchmark_out.
class JsonFileReporter : public benchmark::ConsoleReporter {
public:
  explicit JsonFileReporter(std::string Path) : Path(std::move(Path)) {}

  void ReportRuns(const std::vector<Run> &Runs) override {
    benchmark::ConsoleReporter::ReportRuns(Runs);
    for (const Run &R : Runs) {
      // Plain iteration runs only. (No error filter: Run::error_occurred
      // was removed in google-benchmark 1.8, and these fixtures cannot
      // fail mid-run.)
      if (R.run_type != Run::RT_Iteration || R.report_big_o || R.report_rms)
        continue;
      benchjson::Record Rec;
      std::string Name = R.benchmark_name();
      size_t Slash = Name.find('/');
      Rec.Op = Name.substr(0, Slash);
      Rec.Dims = Slash == std::string::npos ? "" : Name.substr(Slash + 1);
      Rec.NsPerOp = R.iterations > 0
                        ? R.real_accumulated_time * 1e9 /
                              static_cast<double>(R.iterations)
                        : 0.0;
      auto It = R.counters.find("allocs_per_op");
      Rec.AllocsPerOp = It != R.counters.end() ? It->second.value : 0.0;
      Records.push_back(std::move(Rec));
    }
  }

  void Finalize() override {
    benchmark::ConsoleReporter::Finalize();
    benchjson::write(Path.c_str(), Records);
  }

private:
  std::string Path;
  std::vector<benchjson::Record> Records;
};

} // namespace

// Paper dimensions (MNIST FC latent sizes 40/87/100/200) on top of the
// power-of-two complexity sweep.
BENCHMARK(BM_ContainmentCheck)->RangeMultiplier(2)->Range(16, 256)
    ->Arg(87)->Arg(100)->Arg(200)->Complexity();
BENCHMARK(BM_Consolidation)->RangeMultiplier(2)->Range(16, 256)
    ->Arg(87)->Arg(100)->Arg(200)->Complexity();
BENCHMARK(BM_CHZAffine)->Arg(40)->Arg(64)->Arg(87)->Arg(100)->Arg(128)
    ->Arg(200)->Complexity();
BENCHMARK(BM_GemmDense)->Arg(87)->Arg(100)->Arg(200)->Complexity();
BENCHMARK(BM_GemvAbs)->Arg(87)->Arg(100)->Arg(200)->Complexity();
BENCHMARK(BM_PcaBasisRefresh)->RangeMultiplier(2)->Range(16, 128)
    ->Complexity();
BENCHMARK(BM_AbstractSolverStep)->RangeMultiplier(2)->Range(16, 128)
    ->Complexity();

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  JsonFileReporter Reporter("BENCH_micro.json");
  benchmark::RunSpecifiedBenchmarks(&Reporter);
  benchmark::Shutdown();
  return 0;
}
