//===- linalg/KernelBackends.h - Kernel backend tables ----------*- C++ -*-===//
//
// Part of the Craft reproduction (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The backend seam beneath the public kernel API (linalg/Kernels.h): each
/// instruction-set tier exports one KernelTable of function pointers, and
/// the dispatcher in Kernels.cpp picks a table once per process (CPUID
/// probe, overridable via CRAFT_KERNEL_BACKEND). This header is internal
/// plumbing plus the test surface — the equivalence suite iterates the
/// tables directly to assert that every backend produces byte-identical
/// results.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFT_LINALG_KERNELBACKENDS_H
#define CRAFT_LINALG_KERNELBACKENDS_H

#include "linalg/Kernels.h"
#include "linalg/Views.h"

namespace craft {
namespace kernels {

/// One instruction-set tier's kernel entry points. All tables implement
/// the same canonical per-element operation order (see KernelsGeneric.h),
/// so swapping tables never changes results, only throughput.
struct KernelTable {
  void (*Gemm)(MatrixView, ConstMatrixView, ConstMatrixView, double, double);
  void (*GemmSparse)(MatrixView, ConstMatrixView, ConstMatrixView, double,
                     double);
  void (*Gemv)(VectorView, ConstMatrixView, ConstVectorView, double, double);
  void (*GemvAbs)(VectorView, ConstMatrixView, ConstVectorView, double,
                  double);
  void (*RowAbsSums)(VectorView, ConstMatrixView, double);
  void (*Axpy)(VectorView, double, ConstVectorView);
  void (*Scale)(VectorView, double);
  double (*NormInf)(ConstVectorView);
  /// One packed-B column-panel step of the dense gemm: Out columns
  /// [J0, J0+NP) against an already-packed panel (KernelsGeneric.h
  /// gemmPanel layout, Pack[k * NP + j]). The batched tier packs a shared
  /// B once and replays this entry across every problem in a group; the
  /// per-element operation order matches Gemm exactly, so sharing the
  /// pack never changes results.
  void (*GemmPanel)(MatrixView, ConstMatrixView, const double *, size_t,
                    size_t, double, double);
  /// The panel width (NC) this tier's Gemm uses; GemmPanel callers must
  /// partition columns with the same width to replay the same panels.
  size_t PanelCols;
};

/// The portable fallback table (always present).
const KernelTable &scalarKernelTable();

#if CRAFT_KERNELS_HAVE_AVX2
const KernelTable &avx2KernelTable();
#endif
#if CRAFT_KERNELS_HAVE_AVX512
const KernelTable &avx512KernelTable();
#endif

/// Table for \p Backend, or nullptr when that tier was not compiled in or
/// the running CPU lacks the instructions (test/diagnostic surface; the
/// dispatcher never hands out a table the host cannot execute).
const KernelTable *kernelTableFor(KernelBackend Backend);

namespace detail {

/// Column-panel-tiled gemm over the active backend: output columns are
/// split into \p Tiles contiguous panels fanned out on the kernel thread
/// pool. Per-element operation order is independent of the partition, so
/// results are byte-identical to the untiled kernel for every tile count.
/// Exposed for the equivalence tests; production calls size the tile count
/// from the dispatch thresholds.
void gemmTiled(MatrixView Out, ConstMatrixView A, ConstMatrixView B,
               double Alpha, double Beta, size_t Tiles);

/// Row-tiled gemvAbs over the active backend (same determinism argument).
void gemvAbsTiled(VectorView Out, ConstMatrixView M, ConstVectorView V,
                  double Alpha, double Beta, size_t Tiles);

} // namespace detail

} // namespace kernels
} // namespace craft

#endif // CRAFT_LINALG_KERNELBACKENDS_H
