//===- domains/DomainConcept.h - Abstract-domain portfolio seam -*- C++ -*-===//
//
// Part of the Craft reproduction (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pluggable abstract-domain seam the iterator machinery (CraftVerifier,
/// KleeneVerifier, UnrolledCrown, SplitEngine) is generic over. Each domain
/// is a stateless vtable-free traits type satisfying \ref AbstractDomain:
/// a `State` (the abstract value), a `HistoryEntry` (what the s-step
/// containment check of Thm B.1 compares against), and the operations the
/// fixpoint iterators actually use — initial state, one abstract solver
/// step, z-part extraction, consolidation, containment, join, widening,
/// concretize-to-box, width, and margin lower bounds.
///
/// Three domains form the portfolio, ordered cheap-to-precise:
///
///  - \ref BoxDomain     — interval vectors (the paper's "No Zono
///                         component" ablation, Table 4). O(p^2) per step.
///  - \ref ZonoDomain    — classic Zonotope: CH-Zonotope machinery with
///                         the box component off, so the ReLU mints fresh
///                         error columns ("No Box component" ablation).
///  - \ref CHZonoDomain  — the paper's CH-Zonotope (Section 4).
///
/// The solver-facing operations (initial/step/zPart) are templated on the
/// solver type so this header stays a pure domains/ citizen — core/ depends
/// on domains/, never the other way around.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFT_DOMAINS_DOMAINCONCEPT_H
#define CRAFT_DOMAINS_DOMAINCONCEPT_H

#include "domains/CHZonotope.h"
#include "domains/Interval.h"
#include "domains/OrderReduction.h"

#include <concepts>
#include <optional>
#include <string_view>
#include <utility>

namespace craft {

/// Abstract domain selector (Table 1 / Fig. 13 comparisons and the cascade
/// rungs). CHZono and Box keep their historic enum values; Zono replaces
/// the old `UseBoxComponent = false` ablation flag.
enum class VerifierDomain {
  CHZono, ///< CH-Zonotope (the paper's domain).
  Box,    ///< Interval domain ("No Zono component" ablation).
  Zono,   ///< Classic Zonotope ("No Box component" ablation).
};

/// Canonical lowercase spelling used by the spec `domain` directive, the
/// cascade policy, SpecCanon keys, and telemetry series names.
inline const char *verifierDomainName(VerifierDomain D) {
  switch (D) {
  case VerifierDomain::CHZono:
    return "chzono";
  case VerifierDomain::Box:
    return "box";
  case VerifierDomain::Zono:
    return "zono";
  }
  return "chzono";
}

/// Parses a \ref verifierDomainName spelling; nullopt on anything else.
inline std::optional<VerifierDomain> parseVerifierDomain(std::string_view S) {
  if (S == "chzono")
    return VerifierDomain::CHZono;
  if (S == "box")
    return VerifierDomain::Box;
  if (S == "zono")
    return VerifierDomain::Zono;
  return std::nullopt;
}

/// Whether the CH-Zonotope ReLU absorbs new error terms into the box
/// component for this domain (the knob the old UseBoxComponent bool
/// toggled). Box never reaches the CH-Zonotope ReLU.
constexpr bool absorbBoxFor(VerifierDomain D) {
  return D != VerifierDomain::Zono;
}

/// Cost/precision rank inside the portfolio: cheaper (and no more precise)
/// domains rank lower. The cascade only inserts rungs of strictly lower
/// rank than the final domain.
constexpr int domainRank(VerifierDomain D) {
  switch (D) {
  case VerifierDomain::Box:
    return 0;
  case VerifierDomain::Zono:
    return 1;
  case VerifierDomain::CHZono:
    return 2;
  }
  return 2;
}

//===----------------------------------------------------------------------===//
// BoxDomain
//===----------------------------------------------------------------------===//

/// Interval-vector domain. No consolidation machinery: history entries are
/// plain state copies and containment is the componentwise interval check.
struct BoxDomain {
  using State = IntervalVector;
  using HistoryEntry = IntervalVector;
  static constexpr VerifierDomain Kind = VerifierDomain::Box;
  static constexpr bool HasConsolidation = false;
  static constexpr const char *Name = "box";

  template <class Solver>
  static State initial(const Solver &S, const Vector &ZStar) {
    return S.initialStateInterval(ZStar);
  }
  template <class Solver>
  static State step(const Solver &S, const State &X, double /*LambdaScale*/) {
    return S.stepInterval(X);
  }
  template <class Solver> static State zPart(const Solver &S, const State &X) {
    return S.zPartInterval(X);
  }

  static bool contains(const HistoryEntry &Outer, const State &Inner) {
    return Outer.contains(Inner);
  }
  static double widthInf(const State &X) { return X.radius().normInf(); }
  static IntervalVector hull(const State &X) { return X; }
  static State fromHull(const IntervalVector &H) { return H; }
  static State join(const State &A, const State &B) {
    return IntervalVector::join(A, B);
  }
  /// Kleene widening: grow each radius multiplicatively (plus a floor) so
  /// the ascending chain stabilizes.
  static State widen(const State &X, double Factor) {
    Vector R = X.radius();
    for (size_t I = 0; I < R.size(); ++I)
      R[I] += Factor * R[I] + 1e-9;
    return IntervalVector(X.center(), std::move(R));
  }
  /// Lower bounds of the margin system D z + Off (interval evaluation).
  static Vector marginLowerBounds(const State &Z, const Matrix &D,
                                  const Vector &Off) {
    return Z.affine(D, Off).lowerBounds();
  }
};

//===----------------------------------------------------------------------===//
// Zonotope family (classic Zonotope and CH-Zonotope)
//===----------------------------------------------------------------------===//

/// The two zonotope-backed domains share every operation except the ReLU's
/// box-absorption policy (\p AbsorbBox), i.e. exactly the old
/// UseBoxComponent ablation axis.
template <bool AbsorbBox> struct ZonotopeFamilyDomain {
  using State = CHZonotope;
  using HistoryEntry = ProperState;
  static constexpr VerifierDomain Kind =
      AbsorbBox ? VerifierDomain::CHZono : VerifierDomain::Zono;
  static constexpr bool HasConsolidation = true;
  static constexpr const char *Name = AbsorbBox ? "chzono" : "zono";

  template <class Solver>
  static State initial(const Solver &S, const Vector &ZStar) {
    return S.initialState(ZStar);
  }
  template <class Solver>
  static State step(const Solver &S, const State &X, double LambdaScale) {
    return S.step(X, LambdaScale, AbsorbBox);
  }
  template <class Solver> static State zPart(const Solver &S, const State &X) {
    return S.zPart(X);
  }

  /// Thm 4.1 consolidation with Eq. 10 expansion; the returned proper
  /// state carries the generator inverse the Thm 4.2 check consumes.
  static HistoryEntry consolidate(const State &X, ConsolidationBasis &Basis,
                                  double WMul, double WAdd) {
    return consolidateProper(X, Basis, WMul, WAdd);
  }
  static bool contains(const HistoryEntry &Outer, const State &Inner) {
    return containsCH(Outer.Z, Outer.InvGens, Inner).Contained;
  }
  static double widthInf(const State &X) {
    return X.concretizationRadius().normInf();
  }
  static IntervalVector hull(const State &X) { return X.intervalHull(); }
  /// Box-shaped zonotope over the hull (no generators — what the Kleene
  /// interval-hull accumulator rebuilds each join).
  static State fromHull(const IntervalVector &H) {
    return CHZonotope(H.center(), Matrix(H.dim(), 0), {}, H.radius());
  }
  static State join(const State &A, const State &B) {
    return CHZonotope::join(A, B);
  }
  /// Kleene widening: grow the Box component by a fraction of the full
  /// concretization radius (plus a floor).
  static State widen(const State &X, double Factor) {
    Vector Widened = X.boxRadius();
    Vector Radius = X.concretizationRadius();
    for (size_t I = 0; I < Widened.size(); ++I)
      Widened[I] += Factor * Radius[I] + 1e-9;
    State Copy = X;
    return std::move(Copy).withBoxRadius(std::move(Widened));
  }
  /// Lower bounds of the margin system D z + Off, evaluated exactly as one
  /// affine map on the zonotope (the precision the portfolio pays for).
  static Vector marginLowerBounds(const State &Z, const Matrix &D,
                                  const Vector &Off) {
    return Z.affine(D, Off, BoxPolicy::IntervalMap).lowerBounds();
  }
};

using CHZonoDomain = ZonotopeFamilyDomain</*AbsorbBox=*/true>;
using ZonoDomain = ZonotopeFamilyDomain</*AbsorbBox=*/false>;

//===----------------------------------------------------------------------===//
// Concept and dispatch
//===----------------------------------------------------------------------===//

/// The contract the iterator machinery compiles against. \p Solver is the
/// abstract transformer type (core/AbstractSolver in production; tests may
/// substitute fakes), kept a parameter so domains/ never names core/ types.
template <class D, class Solver>
concept AbstractDomain = requires(const Solver &S, const typename D::State &X,
                                  const typename D::HistoryEntry &H,
                                  const IntervalVector &IV, const Vector &V,
                                  const Matrix &M) {
  typename D::State;
  typename D::HistoryEntry;
  { D::Kind } -> std::convertible_to<VerifierDomain>;
  { D::HasConsolidation } -> std::convertible_to<bool>;
  { D::initial(S, V) } -> std::same_as<typename D::State>;
  { D::step(S, X, double{}) } -> std::same_as<typename D::State>;
  { D::zPart(S, X) } -> std::same_as<typename D::State>;
  { D::contains(H, X) } -> std::same_as<bool>;
  { D::widthInf(X) } -> std::convertible_to<double>;
  { D::hull(X) } -> std::same_as<IntervalVector>;
  { D::fromHull(IV) } -> std::same_as<typename D::State>;
  { D::join(X, X) } -> std::same_as<typename D::State>;
  { D::widen(X, double{}) } -> std::same_as<typename D::State>;
  { D::marginLowerBounds(X, M, V) } -> std::same_as<Vector>;
};

/// Runtime-to-compile-time domain dispatch: invokes \p F with a value of
/// the traits type selected by \p Kind.
template <class Fn> decltype(auto) withDomain(VerifierDomain Kind, Fn &&F) {
  switch (Kind) {
  case VerifierDomain::Box:
    return std::forward<Fn>(F)(BoxDomain{});
  case VerifierDomain::Zono:
    return std::forward<Fn>(F)(ZonoDomain{});
  case VerifierDomain::CHZono:
    break;
  }
  return std::forward<Fn>(F)(CHZonoDomain{});
}

} // namespace craft

#endif // CRAFT_DOMAINS_DOMAINCONCEPT_H
