//===- support/Timer.h - Wall-clock timing ----------------------*- C++ -*-===//
//
// Part of the Craft reproduction (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal wall-clock timer used by the benchmark harnesses to report
/// per-sample verification times.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFT_SUPPORT_TIMER_H
#define CRAFT_SUPPORT_TIMER_H

#include <chrono>

namespace craft {

/// Wall-clock stopwatch. Starts on construction; \ref seconds returns the
/// elapsed time and \ref reset restarts the clock.
class WallTimer {
public:
  WallTimer() : Start(Clock::now()) {}

  void reset() { Start = Clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace craft

#endif // CRAFT_SUPPORT_TIMER_H
