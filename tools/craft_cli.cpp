//===- tools/craft_cli.cpp - The craft command-line tool ------------------===//
//
// The end-user entry point of the repository:
//
//   craft verify <spec-file>          run a verification spec
//   craft info <model.bin>            print model metadata
//   craft check <model.bin> <cert>    validate a proof witness
//
// Spec files are documented in src/tool/SpecParser.h and README.md. Exit
// status: 0 = certified / accepted / info printed, 1 = not certified or
// rejected, 2 = usage or input errors.
//
//===----------------------------------------------------------------------===//

#include "tool/Driver.h"

#include <cstdio>
#include <cstring>

using namespace craft;

static int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  craft verify <spec-file>\n"
               "  craft info <model.bin>\n"
               "  craft check <model.bin> <certificate.bin>\n");
  return 2;
}

static int runVerify(const char *Path) {
  SpecParseResult Parsed = parseSpecFile(Path);
  if (!Parsed.ok()) {
    for (const SpecDiagnostic &D : Parsed.Diagnostics)
      std::fprintf(stderr, "%s\n", D.render(Path).c_str());
    return 2;
  }
  const VerificationSpec &Spec = *Parsed.Spec;
  RunOutcome Out = runSpec(Spec);
  if (!Out.ModelLoaded) {
    std::fprintf(stderr, "error: %s\n", Out.Detail.c_str());
    return 2;
  }
  std::printf("engine       %s\n",
              Spec.Verifier == SpecVerifier::Craft      ? "craft"
              : Spec.Verifier == SpecVerifier::Box      ? "box"
              : Spec.Verifier == SpecVerifier::Crown    ? "crown"
                                                        : "lipschitz");
  std::printf("verdict      %s\n",
              Out.Certified ? "CERTIFIED" : "not certified");
  if (Spec.Verifier == SpecVerifier::Craft ||
      Spec.Verifier == SpecVerifier::Box)
    std::printf("containment  %s\n", Out.Containment ? "yes" : "no");
  std::printf("margin       %.6f\n", Out.MarginLower);
  std::printf("time         %.3f s\n", Out.TimeSeconds);
  if (!Out.Detail.empty())
    std::printf("detail       %s\n", Out.Detail.c_str());
  if (!Spec.CertificatePath.empty() && Out.Certified)
    std::printf("certificate  %s\n", Out.CertificateWritten
                                         ? Spec.CertificatePath.c_str()
                                         : "(construction failed)");
  return Out.Certified ? 0 : 1;
}

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage();
  if (std::strcmp(Argv[1], "verify") == 0 && Argc == 3)
    return runVerify(Argv[2]);
  if (std::strcmp(Argv[1], "info") == 0 && Argc == 3)
    return printModelInfo(Argv[2]) ? 0 : 2;
  if (std::strcmp(Argv[1], "check") == 0 && Argc == 4)
    return runCheck(Argv[2], Argv[3]) ? 0 : 1;
  return usage();
}
