//===- cert/Certify.h - Certificate construction ----------------*- C++ -*-===//
//
// Part of the Craft reproduction (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds RobustnessCertificates for queries the Craft verifier can
/// certify. Construction reruns a compact certifying pipeline (phase-1
/// containment, witness consolidation, phase-2 recipe replay) and then
/// *self-checks* the result with the independent checker, so an emitted
/// certificate is guaranteed to validate. Certification is on-demand: it
/// roughly doubles the verification cost, which is why the verifier itself
/// does not emit witnesses.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFT_CERT_CERTIFY_H
#define CRAFT_CERT_CERTIFY_H

#include "cert/Certificate.h"
#include "core/Verifier.h"

#include <optional>

namespace craft {

/// Attempts to build a self-contained certificate that the (clamped)
/// Epsilon-ball around \p X is classified as \p TargetClass. Returns
/// nullopt when verification or witness construction fails (the query may
/// still be verifiable by CraftVerifier with other schedules; a missing
/// certificate is not a refutation).
std::optional<RobustnessCertificate>
certifyRobustness(const MonDeq &Model, const Vector &X, int TargetClass,
                  double Epsilon, const CraftConfig &Config = {});

/// Box-precondition variant.
std::optional<RobustnessCertificate>
certifyRegion(const MonDeq &Model, const Vector &InLo, const Vector &InHi,
              int TargetClass, const CraftConfig &Config = {});

} // namespace craft

#endif // CRAFT_CERT_CERTIFY_H
