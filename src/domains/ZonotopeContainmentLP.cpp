//===- domains/ZonotopeContainmentLP.cpp ----------------------------------===//

#include "domains/ZonotopeContainmentLP.h"

#include "linalg/Kernels.h"
#include "lp/Simplex.h"

using namespace craft;

/// Returns [A, diag(b) nonzero columns]: the generator matrix with the Box
/// component folded in.
static Matrix fullGenerators(const CHZonotope &Z) {
  const size_t P = Z.dim();
  size_t NumBoxCols = 0;
  for (size_t I = 0; I < P; ++I)
    if (Z.boxRadius()[I] > 0.0)
      ++NumBoxCols;
  Matrix G(P, Z.numGenerators() + NumBoxCols);
  if (Z.numGenerators() > 0)
    kernels::copyInto(MatrixView(G).colRange(0, Z.numGenerators()),
                      Z.generators());
  size_t Col = Z.numGenerators();
  for (size_t I = 0; I < P; ++I)
    if (Z.boxRadius()[I] > 0.0)
      G(I, Col++) = Z.boxRadius()[I];
  return G;
}

bool craft::containsZonotopeLP(const CHZonotope &Outer,
                               const CHZonotope &Inner,
                               LpContainmentStats *Stats) {
  assert(Outer.dim() == Inner.dim() && "containment dimension mismatch");
  const size_t P = Outer.dim();
  Matrix X = fullGenerators(Inner); // p x KIn
  Matrix Y = fullGenerators(Outer); // p x KOut
  const size_t KIn = X.cols();
  const size_t KOut = Y.cols();

  // Variables (all >= 0):
  //   GammaPos, GammaNeg : KOut x KIn each (Gamma = GammaPos - GammaNeg)
  //   BetaPos, BetaNeg   : KOut each
  //   Slack              : KOut (row-sum constraints)
  // Layout: [GP(row-major) | GN | BP | BN | S].
  const size_t NG = KOut * KIn;
  const size_t NumVars = 2 * NG + 2 * KOut + KOut;
  const size_t RowsEqGen = P * KIn; // X = Y Gamma
  const size_t RowsEqCen = P;       // a_in - a_out = Y beta
  const size_t RowsRowSum = KOut;   // sum_j |Gamma_ij| + |beta_i| + s_i = 1
  const size_t NumRows = RowsEqGen + RowsEqCen + RowsRowSum;

  if (Stats) {
    Stats->NumVariables = NumVars;
    Stats->NumConstraints = NumRows;
  }

  LpProblem Lp;
  Lp.A = Matrix(NumRows, NumVars);
  Lp.B = Vector(NumRows);
  Lp.C = Vector(NumVars, 0.0);

  auto gammaPos = [&](size_t R, size_t C) { return R * KIn + C; };
  auto gammaNeg = [&](size_t R, size_t C) { return NG + R * KIn + C; };
  const size_t BetaPos0 = 2 * NG;
  const size_t BetaNeg0 = 2 * NG + KOut;
  const size_t Slack0 = 2 * NG + 2 * KOut;

  // X(:, j) = Y * Gamma(:, j) for each inner generator j.
  size_t Row = 0;
  for (size_t J = 0; J < KIn; ++J)
    for (size_t I = 0; I < P; ++I, ++Row) {
      for (size_t K = 0; K < KOut; ++K) {
        Lp.A(Row, gammaPos(K, J)) = Y(I, K);
        Lp.A(Row, gammaNeg(K, J)) = -Y(I, K);
      }
      Lp.B[Row] = X(I, J);
    }

  // a_in - a_out = Y beta.
  for (size_t I = 0; I < P; ++I, ++Row) {
    for (size_t K = 0; K < KOut; ++K) {
      Lp.A(Row, BetaPos0 + K) = Y(I, K);
      Lp.A(Row, BetaNeg0 + K) = -Y(I, K);
    }
    Lp.B[Row] = Inner.center()[I] - Outer.center()[I];
  }

  // Row-sum constraints: sum_j (GP + GN)_kj + BP_k + BN_k + s_k = 1.
  for (size_t K = 0; K < KOut; ++K, ++Row) {
    for (size_t J = 0; J < KIn; ++J) {
      Lp.A(Row, gammaPos(K, J)) = 1.0;
      Lp.A(Row, gammaNeg(K, J)) = 1.0;
    }
    Lp.A(Row, BetaPos0 + K) = 1.0;
    Lp.A(Row, BetaNeg0 + K) = 1.0;
    Lp.A(Row, Slack0 + K) = 1.0;
    Lp.B[Row] = 1.0;
  }
  assert(Row == NumRows && "constraint row miscount");

  LpSolution Sol = solveLp(Lp, /*MaxIterations=*/200000);
  return Sol.Status == LpStatus::Optimal;
}
