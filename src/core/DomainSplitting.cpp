//===- core/DomainSplitting.cpp -------------------------------------------===//

#include "core/DomainSplitting.h"

using namespace craft;

SplitResult craft::certifyByDomainSplitting(const MonDeq &Model,
                                            const CraftConfig &Config,
                                            const Vector &Lo, const Vector &Hi,
                                            int MaxDepth, int Jobs) {
  SplitEngineOptions Opts;
  Opts.MaxDepth = MaxDepth;
  Opts.Jobs = Jobs;
  Opts.TargetClass = -1; // Global mode: certify each region's own class.
  SplitEngineResult Run = runSplitEngine(Model, Config, Lo, Hi, Opts);

  SplitResult Result;
  Result.Regions.reserve(Run.Leaves.size());
  for (SplitLeaf &Leaf : Run.Leaves)
    Result.Regions.push_back({std::move(Leaf.Lo), std::move(Leaf.Hi),
                              Leaf.CertifiedClass, Leaf.Path});
  Result.CertifiedFraction = Run.certifiedFraction();
  Result.NumCertified = Run.NumCertified;
  Result.NumVerifierCalls = Run.NumVerifierCalls;
  Result.NumWaves = Run.NumWaves;
  return Result;
}

BranchAndBoundResult craft::verifyRobustnessSplit(const MonDeq &Model,
                                                  const CraftConfig &Config,
                                                  const Vector &Lo,
                                                  const Vector &Hi,
                                                  int TargetClass,
                                                  const SplitOptions &Opts) {
  SplitEngineOptions Engine;
  Engine.MaxDepth = Opts.MaxDepth;
  Engine.Jobs = Opts.Jobs;
  Engine.TargetClass = TargetClass;
  Engine.PgdProbes = Opts.PgdProbes;
  Engine.Pgd = Opts.Pgd;
  Engine.ProbeSeedBase = Opts.ProbeSeedBase;
  SplitEngineResult Run = runSplitEngine(Model, Config, Lo, Hi, Engine);

  BranchAndBoundResult Result;
  Result.Refuted = Run.Refuted;
  Result.RefutedByPgd = Run.RefutedByPgd;
  Result.Counterexample = std::move(Run.Counterexample);
  Result.CounterexamplePath = Run.CounterexamplePath;
  Result.PgdSeed = Run.PgdSeed;
  Result.NumVerifierCalls = Run.NumVerifierCalls;
  Result.NumLeaves = Run.NumCertified + Run.NumUndecided;
  Result.NumUndecided = Run.NumUndecided;
  Result.NumWaves = Run.NumWaves;
  Result.NumPgdProbes = Run.NumPgdProbes;
  if (!Result.Refuted) {
    // Exact leaf-unit accounting: no rounding guard needed — a fully
    // certified tree sums to the root's units exactly, degenerate
    // dimensions included.
    Result.CertifiedVolumeFraction = Run.certifiedFraction();
    Result.Certified = Run.fullyCertified();
  }
  return Result;
}

BranchAndBoundResult craft::verifyRobustnessSplit(const MonDeq &Model,
                                                  const CraftConfig &Config,
                                                  const Vector &Lo,
                                                  const Vector &Hi,
                                                  int TargetClass,
                                                  int MaxDepth) {
  SplitOptions Opts;
  Opts.MaxDepth = MaxDepth;
  return verifyRobustnessSplit(Model, Config, Lo, Hi, TargetClass, Opts);
}
