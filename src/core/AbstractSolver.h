//===- core/AbstractSolver.h - Abstract operator splitting ------*- C++ -*-===//
//
// Part of the Craft reproduction (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sound abstract transformers g# for the monDEQ fixpoint solvers of
/// Section 5 over the CH-Zonotope and Box domains.
///
/// Forward-Backward (Eq. 8) is one affine map plus one ReLU:
///   s' = ReLU(((1-a) I + a W) s + a U x + a b).
///
/// Peaceman-Rachford (Eq. 9) operates on the stacked state s = [z; u] of
/// dimension 2p. All four affine sub-steps compose into a single affine
/// map followed by a partial ReLU on the z-half:
///   u_next = (2 M^{-1} - I)(2 z - u) + 2 a M^{-1} (U x + b),
///   s'     = [ReLU(u_next); u_next],         M = I + a (I - W).
///
/// Composing the affine steps before abstraction keeps the transformer
/// exact up to the single ReLU relaxation per iteration.
///
/// The solver is bound to one input abstraction X so that the input
/// contribution (InputMatrix * X) is mapped once and reused every
/// iteration with shared error-term ids -- this is what keeps the abstract
/// state correlated with the input region across iterations.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFT_CORE_ABSTRACTSOLVER_H
#define CRAFT_CORE_ABSTRACTSOLVER_H

#include "domains/CHZonotope.h"
#include "domains/DomainConcept.h"
#include "domains/Interval.h"
#include "nn/Solvers.h"

namespace craft {

/// Abstract transformer for one solver iteration, bound to a model, a
/// splitting method, a step size, and an input abstraction.
class AbstractSolver {
public:
  /// \p Alpha <= 0 selects the same defaults as the concrete FixpointSolver.
  AbstractSolver(const MonDeq &Model, Splitting Method, double Alpha,
                 const CHZonotope &InputAbs);

  Splitting method() const { return Method; }
  double alpha() const { return Alpha; }

  /// State dimension: p for FB, 2p for PR.
  size_t stateDim() const { return StateMatrix.rows(); }
  size_t latentDim() const { return LatentDim; }

  /// Initial abstract state from the concrete center fixpoint (Alg. 1
  /// line 2): {z*} for FB, {[z*; z*]} for PR.
  CHZonotope initialState(const Vector &ZStar) const;
  IntervalVector initialStateInterval(const Vector &ZStar) const;

  /// One abstract solver step on the CH-Zonotope domain. \p LambdaScale
  /// scales the default ReLU slopes (lambda optimization, App. C);
  /// \p AbsorbBox selects the CH-Zonotope ReLU (Box absorption) vs the
  /// classic Zonotope ReLU (fresh columns).
  CHZonotope step(const CHZonotope &State, double LambdaScale = 1.0,
                  bool AbsorbBox = true) const;

  /// One abstract solver step on the Box domain.
  IntervalVector stepInterval(const IntervalVector &State) const;

  /// Extracts the z-part of a state abstraction (identity for FB).
  CHZonotope zPart(const CHZonotope &State) const;
  IntervalVector zPartInterval(const IntervalVector &State) const;

  const Matrix &stateMatrix() const { return StateMatrix; }
  const Vector &offset() const { return Offset; }

private:
  size_t LatentDim;
  Splitting Method;
  double Alpha;
  ActivationKind Act; ///< Equilibrium activation (App. B.6 dispatch).
  Matrix StateMatrix;          ///< stateDim x stateDim affine map.
  Vector Offset;               ///< Constant part (biases).
  CHZonotope InputContrib;     ///< InputMatrix * X, shared ids, mapped once.
  IntervalVector InputContribIv;
};

/// Margin rows D with D_i = V_t - V_i for rivals i != t, plus offsets —
/// the one linear system every domain's margin evaluation shares.
void classificationMarginSystem(const MonDeq &Model, int TargetClass,
                                Matrix &D, Vector &Off);

/// Lower bounds on the classification margins y_t - y_i for all rivals
/// i != t, evaluated on the z-part abstraction in domain \p Dom (exactly,
/// as one affine map, for the zonotope family; by interval arithmetic for
/// Box). Positive everywhere means the postcondition "class t" holds
/// (Alg. 1 line 13).
template <class Dom>
Vector classificationMarginsIn(const MonDeq &Model,
                               const typename Dom::State &Z, int TargetClass) {
  Matrix D;
  Vector Off;
  classificationMarginSystem(Model, TargetClass, D, Off);
  return Dom::marginLowerBounds(Z, D, Off);
}

/// Domain-deducing conveniences (the historic overload set; callers that
/// already know the domain statically should prefer the template above).
inline Vector classificationMargins(const MonDeq &Model, const CHZonotope &Z,
                                    int TargetClass) {
  return classificationMarginsIn<CHZonoDomain>(Model, Z, TargetClass);
}
inline Vector classificationMargins(const MonDeq &Model,
                                    const IntervalVector &Z, int TargetClass) {
  return classificationMarginsIn<BoxDomain>(Model, Z, TargetClass);
}

} // namespace craft

#endif // CRAFT_CORE_ABSTRACTSOLVER_H
