//===- linalg/Pca.cpp -----------------------------------------------------===//

#include "linalg/Pca.h"

#include "linalg/Eig.h"

using namespace craft;

Matrix craft::pcaBasis(const Matrix &A) {
  const size_t P = A.rows();
  if (P == 0)
    return Matrix();
  if (A.cols() == 0)
    return Matrix::identity(P);

  // Eigenvectors of the Gram matrix A A^T span R^p (the eigensolver returns
  // a full orthonormal set even when A is rank deficient), so the basis is
  // orthogonal and invertible by construction.
  Matrix Gram = A * A.transpose();
  SymmetricEig Eig = symmetricEig(Gram);

  // symmetricEig sorts ascending; PCA wants descending variance.
  Matrix Basis(P, P);
  for (size_t J = 0; J < P; ++J)
    for (size_t R = 0; R < P; ++R)
      Basis(R, J) = Eig.Vectors(R, P - 1 - J);
  return Basis;
}
