//===- core/Verifier.cpp --------------------------------------------------===//

#include "core/Verifier.h"

#include "support/Telemetry.h"
#include "support/Timer.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <memory>

using namespace craft;

CraftVerifier::CraftVerifier(const MonDeq &Model, CraftConfig Config)
    : Model(Model), Config(Config) {
  assert(!(Config.Phase1Method == Splitting::ForwardBackward &&
           Config.Phase2Method == Splitting::PeacemanRachford) &&
         "FB-then-PR is unsupported: the PR auxiliary set U* would be "
         "unknown (Section 6.3)");
}

CraftResult CraftVerifier::verifyRobustness(const Vector &X, int TargetClass,
                                            double Epsilon) const {
  Vector Lo(X.size()), Hi(X.size());
  for (size_t I = 0; I < X.size(); ++I) {
    Lo[I] = std::max(X[I] - Epsilon, Config.InputClampLo);
    Hi[I] = std::min(X[I] + Epsilon, Config.InputClampHi);
  }
  return verifyRegion(Lo, Hi, TargetClass);
}

CraftResult CraftVerifier::verifyRegion(const Vector &InLo, const Vector &InHi,
                                        int TargetClass) const {
  return Config.Domain == VerifierDomain::CHZono
             ? verifyCH(InLo, InHi, TargetClass)
             : verifyBox(InLo, InHi, TargetClass);
}

namespace {

/// Iterations-to-containment distribution across every verifyRegion call
/// in the process (the paper's Table 2 N column as a live metric).
/// Counts regardless of whether timing is enabled.
const telemetry::Histogram IterationsHist =
    telemetry::histogramMetric("craft.iterations");

/// Shared phase-2 bookkeeping: best margin, certification flag, and the
/// no-progress abortion window of App. C.
class MarginTracker {
public:
  MarginTracker(int WindowSteps) : WindowSteps(WindowSteps) {}

  /// Returns true when phase 2 should stop (certified or stalled).
  bool update(const Vector &Margins, const IntervalVector &Hull) {
    double MinMargin = 1e300;
    for (double M : Margins)
      MinMargin = std::min(MinMargin, M);
    if (MinMargin > Best + 1e-12) {
      Best = MinMargin;
      BestHull = Hull;
      SinceImprovement = 0;
    } else {
      ++SinceImprovement;
    }
    Certified = Certified || MinMargin > 0.0;
    return Certified || SinceImprovement >= WindowSteps;
  }

  double best() const { return Best; }
  bool certified() const { return Certified; }
  const IntervalVector &bestHull() const { return BestHull; }

private:
  int WindowSteps;
  int SinceImprovement = 0;
  double Best = -1e300;
  bool Certified = false;
  IntervalVector BestHull;
};

} // namespace

CraftResult CraftVerifier::verifyCH(const Vector &InLo, const Vector &InHi,
                                    int TargetClass) const {
  WallTimer Timer;
  TRACE_SPAN("craft.verify");
  CraftResult Res;

  CHZonotope X = CHZonotope::fromBox(InLo, InHi);
  Vector Center = 0.5 * (InLo + InHi);
  Vector ZStar =
      FixpointSolver(Model, Splitting::PeacemanRachford).solve(Center).Z;

  // Phase 1: abstract iteration until s-step containment (Thm 3.1 / B.1).
  AbstractSolver Solver1(Model, Config.Phase1Method, Config.Alpha1, X);
  CHZonotope S = Solver1.initialState(ZStar);
  ConsolidationBasis Basis(Solver1.stateDim(), Config.PcaRefreshEvery);
  std::deque<ProperState> History;

  double WMul = 0.0, WAdd = 0.0;
  if (Config.Expansion != ExpansionSchedule::None) {
    WMul = Config.WMul;
    WAdd = Config.WAdd;
  }
  int Consolidations = 0;
  bool Contained = false;

  for (int N = 1; N <= Config.MaxIterations && !Contained; ++N) {
    if (Config.Control.stopRequested())
      break; // Deadline/cancel: give up containment search, stay sound.
    Res.TotalIterations = N;
    if ((N - 1) % Config.ConsolidateEvery == 0) {
      telemetry::PhaseTimer ConsolidatePhase(
          telemetry::Phase::Consolidation);
      TRACE_SPAN("craft.consolidate");
      ProperState PS = consolidateProper(S, Basis, WMul, WAdd);
      S = PS.Z;
      History.push_front(std::move(PS));
      if (History.size() > static_cast<size_t>(Config.HistorySize))
        History.pop_back();
      if (Config.Expansion == ExpansionSchedule::Exponential &&
          ++Consolidations % 2 == 0) {
        WMul *= 1.1;
        WAdd *= 1.2;
      }
    }
    S = Solver1.step(S, 1.0, Config.UseBoxComponent);
    if (N % Config.ContainmentCheckEvery == 0) {
      for (const ProperState &PS : History)
        if (containsCH(PS.Z, PS.InvGens, S).Contained) {
          Contained = true;
          Res.ContainmentIteration = N;
          break;
        }
    }
    if (S.concretizationRadius().normInf() > Config.AbortWidth)
      break;
  }
  IterationsHist.observe(static_cast<uint64_t>(Res.TotalIterations));

  Res.Containment = Contained;
  if (!Contained) {
    Res.TimeSeconds = Timer.seconds();
    return Res;
  }

  // S provably contains the true fixpoint set. Seed the result with its
  // margins before tightening.
  {
    CHZonotope Z = Solver1.zPart(S);
    MarginTracker Seed(1);
    Seed.update(classificationMargins(Model, Z, TargetClass),
                Z.intervalHull());
    Res.BestMargin = Seed.best();
    Res.Certified = Seed.certified();
    Res.FixpointHull = Seed.bestHull();
    if (Res.Certified) {
      Res.TimeSeconds = Timer.seconds();
      return Res;
    }
  }

  // Phase 2: fixpoint-set-preserving tightening (Thm 3.3 / 5.1).
  // PR must keep its phase-1 alpha (preservation only holds for fixed
  // alpha); FB may use any alpha in [0,1] and is line searched.
  auto runPhase2 = [&](const AbstractSolver &Solver2, CHZonotope S2,
                       double LambdaScale, int MaxSteps) -> MarginTracker {
    TRACE_SPAN("craft.phase2");
    MarginTracker Track(3 * Config.Phase2Window);
    ConsolidationBasis Basis2(Solver2.stateDim(), Config.PcaRefreshEvery);
    for (int Step = 0; Step < MaxSteps; ++Step) {
      if (Config.Control.stopRequested())
        break; // Stop tightening; the best margin so far stands.
      bool UsableForCertification = true;
      if (Config.SameIterationContainment) {
        // Ablation: certify only from states contained in their
        // consolidated predecessor.
        ProperState PS = [&] {
          telemetry::PhaseTimer ConsolidatePhase(
              telemetry::Phase::Consolidation);
          return consolidateProper(S2, Basis2, 0.0, 0.0);
        }();
        CHZonotope Next =
            Solver2.step(PS.Z, LambdaScale, Config.UseBoxComponent);
        UsableForCertification =
            containsCH(PS.Z, PS.InvGens, Next).Contained;
        S2 = std::move(Next);
      } else {
        if (Step > 0 && Step % Config.ConsolidateEvery == 0) {
          telemetry::PhaseTimer ConsolidatePhase(
              telemetry::Phase::Consolidation);
          S2 = consolidateProper(S2, Basis2, 0.0, 0.0).Z;
        }
        S2 = Solver2.step(S2, LambdaScale, Config.UseBoxComponent);
      }
      if (S2.concretizationRadius().normInf() > Config.AbortWidth)
        break;
      if (!UsableForCertification)
        continue;
      CHZonotope Z = Solver2.zPart(S2);
      if (Track.update(classificationMargins(Model, Z, TargetClass),
                       Z.intervalHull()))
        break;
    }
    return Track;
  };

  bool Phase2IsPr = Config.Phase2Method == Splitting::PeacemanRachford;
  CHZonotope SEntry = Phase2IsPr ? S : Solver1.zPart(S);

  double Alpha2 = Config.Alpha2;
  std::unique_ptr<AbstractSolver> Solver2Storage;
  const AbstractSolver *Solver2 = nullptr;
  if (Phase2IsPr && Config.Phase1Method == Splitting::PeacemanRachford) {
    Solver2 = &Solver1;
    Alpha2 = Solver1.alpha();
  } else if (Phase2IsPr) {
    Solver2 = &Solver1; // Phase 1 was PR too (ctor forbids FB-then-PR).
  } else {
    // FB tightening. Adaptive line search over alpha in [0, 1] (Thm 5.1)
    // when no fixed alpha was configured: probe a short unroll per
    // candidate and keep the best margin.
    if (Alpha2 < 0.0) {
      static const double Candidates[] = {0.01, 0.02, 0.03, 0.05,
                                          0.08, 0.12, 0.2,  0.35};
      double BestProbe = -1e300;
      for (double Cand : Candidates) {
        if (Config.Control.stopRequested())
          break;
        AbstractSolver Probe(Model, Splitting::ForwardBackward, Cand, X);
        MarginTracker Track = runPhase2(Probe, SEntry, 1.0, /*MaxSteps=*/6);
        if (Track.best() > BestProbe) {
          BestProbe = Track.best();
          Alpha2 = Cand;
        }
      }
    }
    Solver2Storage = std::make_unique<AbstractSolver>(
        Model, Splitting::ForwardBackward, Alpha2, X);
    Solver2 = Solver2Storage.get();
  }
  Res.ChosenAlpha2 = Alpha2;

  MarginTracker Main =
      runPhase2(*Solver2, SEntry, 1.0,
                std::min(Config.MaxIterations, Config.Phase2MaxIterations));
  if (Main.best() > Res.BestMargin) {
    Res.BestMargin = Main.best();
    Res.FixpointHull = Main.bestHull();
  }
  Res.Certified = Main.certified();

  // Lambda optimization (App. C): only for samples close to certification.
  if (!Res.Certified && Config.LambdaOptLevel > 0 &&
      Res.BestMargin > -Config.LambdaOptMarginWindow) {
    std::vector<double> Scales =
        Config.LambdaOptLevel >= 2
            ? std::vector<double>{0.8, 0.9, 0.95, 1.05, 1.1, 1.25}
            : std::vector<double>{0.9, 1.1};
    int Steps = Config.LambdaOptLevel >= 2 ? 40 : 20;
    for (double Scale : Scales) {
      if (Config.Control.stopRequested())
        break;
      MarginTracker Track = runPhase2(*Solver2, SEntry, Scale, Steps);
      if (Track.best() > Res.BestMargin) {
        Res.BestMargin = Track.best();
        Res.FixpointHull = Track.bestHull();
      }
      if (Track.certified()) {
        Res.Certified = true;
        break;
      }
    }
  }

  Res.TimeSeconds = Timer.seconds();
  return Res;
}

CraftResult CraftVerifier::verifyBox(const Vector &InLo, const Vector &InHi,
                                     int TargetClass) const {
  WallTimer Timer;
  TRACE_SPAN("craft.verify");
  CraftResult Res;

  CHZonotope X = CHZonotope::fromBox(InLo, InHi);
  Vector Center = 0.5 * (InLo + InHi);
  Vector ZStar =
      FixpointSolver(Model, Splitting::PeacemanRachford).solve(Center).Z;

  AbstractSolver Solver1(Model, Config.Phase1Method, Config.Alpha1, X);
  IntervalVector S = Solver1.initialStateInterval(ZStar);
  std::deque<IntervalVector> History;
  bool Contained = false;

  for (int N = 1; N <= Config.MaxIterations && !Contained; ++N) {
    if (Config.Control.stopRequested())
      break;
    Res.TotalIterations = N;
    History.push_front(S);
    if (History.size() > static_cast<size_t>(Config.HistorySize))
      History.pop_back();
    S = Solver1.stepInterval(S);
    for (const IntervalVector &Prev : History)
      if (Prev.contains(S)) {
        Contained = true;
        Res.ContainmentIteration = N;
        break;
      }
    if (S.radius().normInf() > Config.AbortWidth)
      break;
  }
  IterationsHist.observe(static_cast<uint64_t>(Res.TotalIterations));

  Res.Containment = Contained;
  if (!Contained) {
    Res.TimeSeconds = Timer.seconds();
    return Res;
  }

  MarginTracker Track(3 * Config.Phase2Window);
  IntervalVector Z = Solver1.zPartInterval(S);
  Track.update(classificationMargins(Model, Z, TargetClass), Z);

  // Phase 2 on the Box domain (PR phase-1 alpha retained; Box has no
  // consolidation or lambda choices).
  for (int Step = 0; Step < Config.MaxIterations; ++Step) {
    if (Config.Control.stopRequested())
      break;
    S = Solver1.stepInterval(S);
    if (S.radius().normInf() > Config.AbortWidth)
      break;
    IntervalVector ZI = Solver1.zPartInterval(S);
    if (Track.update(classificationMargins(Model, ZI, TargetClass), ZI))
      break;
  }
  Res.BestMargin = Track.best();
  Res.Certified = Track.certified();
  Res.FixpointHull = Track.bestHull();
  Res.TimeSeconds = Timer.seconds();
  return Res;
}
