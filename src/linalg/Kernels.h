//===- linalg/Kernels.h - Destination-passing linalg kernels ----*- C++ -*-===//
//
// Part of the Craft reproduction (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// In-place, destination-passing dense kernels over the view layer
/// (linalg/Views.h): the allocation-free core the CH-Zonotope and Kleene
/// hot paths run on. The allocating Matrix/Vector operators are thin
/// wrappers over these.
///
/// Conventions:
///  - Kernels never allocate. The caller owns every buffer (typically a
///    result Matrix/Vector or a WorkspaceScope scratch view).
///  - Out must not alias any input (asserted in debug builds). Aliased
///    updates would read partially written output; use a workspace
///    temporary when an in-place product is needed.
///  - Every kernel has one fixed operation order (per output element the
///    inner dimension is reduced in ascending order with a single
///    accumulator), so results are deterministic and independent of
///    blocking, thread count, and call site — the jobs-1-vs-N
///    byte-identical guarantee of the batch driver rests on this.
///  - gemm is dense: no per-element zero test in the inner loop (a branch
///    per multiply costs more than the multiply on dense data).
///    gemmSparseAware keeps the `A(i,k) == 0` row-skip for callers whose
///    left operand is *structurally* sparse (identity/diagonal/selection
///    maps, lowered convolutions, sign-split CROWN matrices).
///
//===----------------------------------------------------------------------===//

#ifndef CRAFT_LINALG_KERNELS_H
#define CRAFT_LINALG_KERNELS_H

#include "linalg/Views.h"

namespace craft {
namespace kernels {

/// Out = Alpha * A * B + Beta * Out (row-major gemm, blocked i-k-j with an
/// unrolled inner loop). Beta == 0 writes Out without reading it.
void gemm(MatrixView Out, ConstMatrixView A, ConstMatrixView B,
          double Alpha = 1.0, double Beta = 0.0);

/// gemm variant that skips inner-loop work for exactly-zero A(i,k): only
/// profitable when A is structurally sparse; bitwise-identical results to
/// the dense kernel on finite data.
void gemmSparseAware(MatrixView Out, ConstMatrixView A, ConstMatrixView B,
                     double Alpha = 1.0, double Beta = 0.0);

/// Out = Alpha * M * V + Beta * Out. Beta == 0 writes Out without reading
/// it.
void gemv(VectorView Out, ConstMatrixView M, ConstVectorView V,
          double Alpha = 1.0, double Beta = 0.0);

/// Out = Alpha * |M| * V + Beta * Out (elementwise absolute value of M,
/// never materialized). The workhorse of concretization and the Thm 4.2
/// containment check.
void gemvAbs(VectorView Out, ConstMatrixView M, ConstVectorView V,
             double Alpha = 1.0, double Beta = 0.0);

/// Y += A * X.
void axpy(VectorView Y, double A, ConstVectorView X);

/// X *= A.
void scale(VectorView X, double A);

/// Largest absolute entry (0 for the empty view).
double normInf(ConstVectorView X);

/// Out = In^T. Out must be In.cols() x In.rows().
void transposeInto(MatrixView Out, ConstMatrixView In);

/// Out[r] = sum_c |M(r, c)| + Beta * Out[r] (the |M| 1 of zonotope
/// concretization). Beta == 0 writes Out without reading it.
void rowAbsSumsInto(VectorView Out, ConstMatrixView M, double Beta = 0.0);

/// Out = In (shapes must match; strides may differ).
void copyInto(MatrixView Out, ConstMatrixView In);
void copyInto(VectorView Out, ConstVectorView In);

/// Out(r, c) = Value everywhere.
void fill(MatrixView Out, double Value);
void fill(VectorView Out, double Value);

} // namespace kernels
} // namespace craft

#endif // CRAFT_LINALG_KERNELS_H
