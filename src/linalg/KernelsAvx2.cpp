//===- linalg/KernelsAvx2.cpp - AVX2 kernel backend -----------------------===//
//
// The generic kernel bodies at lane width four. This TU is the only one
// built with -mavx2 -mfma (see src/CMakeLists.txt); the dispatcher only
// selects the table after a runtime CPUID check, so the rest of the binary
// stays runnable on baseline x86-64. When the toolchain cannot target AVX2
// the TU compiles to nothing and the dispatcher never references it.
//
//===----------------------------------------------------------------------===//

#include "linalg/KernelBackends.h"

#if CRAFT_KERNELS_HAVE_AVX2 && defined(__AVX2__) && defined(__FMA__)

#include "linalg/KernelsGeneric.h"

using namespace craft;
using namespace craft::kernels;

const KernelTable &kernels::avx2KernelTable() {
  static const KernelTable Table =
      generic::makeKernelTable<simd::Lane<simd::Avx2Tag>>();
  return Table;
}

#endif // CRAFT_KERNELS_HAVE_AVX2 && __AVX2__ && __FMA__
