//===- linalg/KernelsGeneric.h - Lane-generic kernel bodies -----*- C++ -*-===//
//
// Part of the Craft reproduction (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one implementation of every dispatched kernel, written against the
/// lane abstraction (linalg/Simd.h) and instantiated once per backend TU
/// (KernelsScalar.cpp / KernelsAvx2.cpp / KernelsAvx512.cpp). Vectorization
/// is strictly across *independent output elements* — j-lanes in gemm,
/// row-lanes in the gemv-family reductions — so instantiating at a
/// different lane width never reorders any per-element reduction.
///
/// Canonical per-element operation order (identical in every backend, every
/// lane width, every remainder path, and every thread tiling):
///
///   gemm:        acc = (((0 + A(i,0)*B(0,j)) + A(i,1)*B(1,j)) + ...)
///                acc = acc * Alpha
///                Out = Beta == 0 ? acc : acc + Beta * Out   (Beta == 0
///                never reads Out)
///   gemv(Abs):   same shape over columns of row i (|M| applied per load)
///   rowAbsSums:  acc over |M(i, c)| ascending c, then the Beta combine
///   axpy:        Y[i] = Y[i] + (A * X[i])
///   scale:       X[i] = A * X[i]
///   normInf:     max-reduction (exact: max never rounds on finite data)
///
/// Every product is rounded individually (mul then add; no FMA — the TUs
/// are built with -ffp-contract=off), which is what makes scalar, AVX2,
/// AVX-512, and ThreadPool-tiled runs byte-identical on finite data.
///
/// gemm packs the B column panel it is working on into workspace scratch
/// (contiguous rows, cache-line-aligned base) and holds a 4-row x 1-lane
/// block of accumulators in registers across the full inner dimension; the
/// packed values are exact copies, so packing never changes results.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFT_LINALG_KERNELSGENERIC_H
#define CRAFT_LINALG_KERNELSGENERIC_H

#include "linalg/KernelBackends.h"
#include "linalg/Simd.h"
#include "linalg/Workspace.h"

#include <cassert>
#include <cmath>

namespace craft {
namespace kernels {
namespace generic {

/// Final per-element combine for one register of accumulated dot products:
/// acc * Alpha, then the Beta rule. Beta == 0 must not read Out (it may be
/// uninitialized scratch).
template <class L>
inline void combineStore(double *Out, typename L::Reg Acc, double Alpha,
                         double Beta) {
  Acc = L::mul(Acc, L::set1(Alpha));
  if (Beta == 0.0)
    L::storeu(Out, Acc);
  else
    L::storeu(Out, L::add(Acc, L::mul(L::set1(Beta), L::loadu(Out))));
}

/// Scalar twin of combineStore — the identical operation sequence at lane
/// width one, used by every remainder path.
inline void combineStore1(double *Out, double Acc, double Alpha,
                          double Beta) {
  Acc = Acc * Alpha;
  *Out = Beta == 0.0 ? Acc : Acc + Beta * *Out;
}

/// Out = Alpha * A * B + Beta * Out over a packed B panel. \p Pack holds
/// rows [0, K) x columns [J0, J0 + NP) of B contiguously (stride NP).
template <class L, bool SkipZeros>
void gemmPanel(MatrixView Out, ConstMatrixView A, const double *Pack,
               size_t J0, size_t NP, double Alpha, double Beta) {
  constexpr size_t W = L::Width;
  constexpr size_t MR = 4; // Rows of register accumulators per microtile.
  const size_t M = A.rows(), K = A.cols();
  const size_t NV = NP - NP % W; // Lane-covered columns of this panel.

  size_t I0 = 0;
  for (; I0 + MR <= M; I0 += MR) {
    const double *ARow0 = A.row(I0 + 0);
    const double *ARow1 = A.row(I0 + 1);
    const double *ARow2 = A.row(I0 + 2);
    const double *ARow3 = A.row(I0 + 3);
    for (size_t JV = 0; JV < NV; JV += W) {
      typename L::Reg Acc0 = L::zero(), Acc1 = L::zero(), Acc2 = L::zero(),
                      Acc3 = L::zero();
      const double *BP = Pack + JV;
      for (size_t Kk = 0; Kk < K; ++Kk, BP += NP) {
        const typename L::Reg Bv = L::loadu(BP);
        const double A0 = ARow0[Kk], A1 = ARow1[Kk], A2 = ARow2[Kk],
                     A3 = ARow3[Kk];
        if (!SkipZeros || A0 != 0.0)
          Acc0 = L::add(Acc0, L::mul(L::set1(A0), Bv));
        if (!SkipZeros || A1 != 0.0)
          Acc1 = L::add(Acc1, L::mul(L::set1(A1), Bv));
        if (!SkipZeros || A2 != 0.0)
          Acc2 = L::add(Acc2, L::mul(L::set1(A2), Bv));
        if (!SkipZeros || A3 != 0.0)
          Acc3 = L::add(Acc3, L::mul(L::set1(A3), Bv));
      }
      combineStore<L>(Out.row(I0 + 0) + J0 + JV, Acc0, Alpha, Beta);
      combineStore<L>(Out.row(I0 + 1) + J0 + JV, Acc1, Alpha, Beta);
      combineStore<L>(Out.row(I0 + 2) + J0 + JV, Acc2, Alpha, Beta);
      combineStore<L>(Out.row(I0 + 3) + J0 + JV, Acc3, Alpha, Beta);
    }
    // Panel columns not covered by a full lane: same ops at width one.
    for (size_t J = NV; J < NP; ++J) {
      const double *Rows[MR] = {ARow0, ARow1, ARow2, ARow3};
      for (size_t R = 0; R < MR; ++R) {
        double Acc = 0.0;
        const double *BP = Pack + J;
        for (size_t Kk = 0; Kk < K; ++Kk, BP += NP) {
          const double Av = Rows[R][Kk];
          if (!SkipZeros || Av != 0.0)
            Acc = Acc + Av * BP[0];
        }
        combineStore1(Out.row(I0 + R) + J0 + J, Acc, Alpha, Beta);
      }
    }
  }
  // Remainder rows, one at a time (1 x W microtile + width-one tail).
  for (; I0 < M; ++I0) {
    const double *ARow = A.row(I0);
    for (size_t JV = 0; JV < NV; JV += W) {
      typename L::Reg Acc = L::zero();
      const double *BP = Pack + JV;
      for (size_t Kk = 0; Kk < K; ++Kk, BP += NP) {
        const double Av = ARow[Kk];
        if (!SkipZeros || Av != 0.0)
          Acc = L::add(Acc, L::mul(L::set1(Av), L::loadu(BP)));
      }
      combineStore<L>(Out.row(I0) + J0 + JV, Acc, Alpha, Beta);
    }
    for (size_t J = NV; J < NP; ++J) {
      double Acc = 0.0;
      const double *BP = Pack + J;
      for (size_t Kk = 0; Kk < K; ++Kk, BP += NP) {
        const double Av = ARow[Kk];
        if (!SkipZeros || Av != 0.0)
          Acc = Acc + Av * BP[0];
      }
      combineStore1(Out.row(I0) + J0 + J, Acc, Alpha, Beta);
    }
  }
}

template <class L, bool SkipZeros>
void gemmBody(MatrixView Out, ConstMatrixView A, ConstMatrixView B,
              double Alpha, double Beta) {
  assert(A.cols() == B.rows() && "gemm inner dimension mismatch");
  assert(Out.rows() == A.rows() && Out.cols() == B.cols() &&
         "gemm output shape mismatch");
  const size_t M = A.rows(), K = A.cols(), N = B.cols();
  if (M == 0 || N == 0)
    return;
  if (K == 0) {
    // Empty reduction: acc = 0, then the same Alpha/Beta combine every
    // other path performs (so e.g. Alpha < 0 yields the same -0.0 here as
    // it would in the lane path). Handled before packing — there is no
    // panel to point into.
    for (size_t R = 0; R < M; ++R)
      for (size_t J = 0; J < N; ++J)
        combineStore1(Out.row(R) + J, 0.0, Alpha, Beta);
    return;
  }

  // Column-panel width: a multiple of the lane width, sized so a full-K
  // packed panel stays cache-resident (K~400 x 48 doubles ~ 150 KiB).
  constexpr size_t NC = L::Width >= 8 ? 64 : 48;
  static_assert(NC % L::Width == 0, "panel width must cover whole lanes");

  WorkspaceScope WS;
  double *Pack = WS.alloc(K * (N < NC ? N : NC));
  for (size_t J0 = 0; J0 < N; J0 += NC) {
    const size_t NP = N - J0 < NC ? N - J0 : NC;
    // Pack the panel: exact copies, rows contiguous at stride NP.
    for (size_t Kk = 0; Kk < K; ++Kk) {
      const double *Src = B.row(Kk) + J0;
      double *Dst = Pack + Kk * NP;
      for (size_t J = 0; J < NP; ++J)
        Dst[J] = Src[J];
    }
    gemmPanel<L, SkipZeros>(Out, A, Pack, J0, NP, Alpha, Beta);
  }
}

/// Row-lane gemv family: lane l accumulates output row R0 + l, each lane a
/// single accumulator over ascending columns — exactly the scalar order.
template <class L, bool Abs>
void gemvBody(VectorView Out, ConstMatrixView M, ConstVectorView V,
              double Alpha, double Beta) {
  assert(M.cols() == V.size() && "gemv inner dimension mismatch");
  assert(Out.size() == M.rows() && "gemv output size mismatch");
  constexpr size_t W = L::Width;
  const size_t Rows = M.rows(), Cols = M.cols(), S = M.stride();
  size_t R0 = 0;
  for (; R0 + W <= Rows; R0 += W) {
    typename L::Reg Acc = L::zero();
    const double *Base = M.row(R0);
    for (size_t C = 0; C < Cols; ++C) {
      typename L::Reg Col = L::loadStrided(Base + C, S);
      if (Abs)
        Col = L::abs(Col);
      Acc = L::add(Acc, L::mul(Col, L::set1(V[C])));
    }
    combineStore<L>(Out.data() + R0, Acc, Alpha, Beta);
  }
  for (; R0 < Rows; ++R0) {
    const double *Row = M.row(R0);
    double Acc = 0.0;
    for (size_t C = 0; C < Cols; ++C)
      Acc = Acc + (Abs ? std::fabs(Row[C]) : Row[C]) * V[C];
    combineStore1(Out.data() + R0, Acc, Alpha, Beta);
  }
}

template <class L>
void rowAbsSumsBody(VectorView Out, ConstMatrixView M, double Beta) {
  assert(Out.size() == M.rows() && "rowAbsSums output size mismatch");
  constexpr size_t W = L::Width;
  const size_t Rows = M.rows(), Cols = M.cols(), S = M.stride();
  size_t R0 = 0;
  for (; R0 + W <= Rows; R0 += W) {
    typename L::Reg Acc = L::zero();
    const double *Base = M.row(R0);
    for (size_t C = 0; C < Cols; ++C)
      Acc = L::add(Acc, L::abs(L::loadStrided(Base + C, S)));
    // No Alpha on this kernel: combine is the Beta rule alone.
    double *O = Out.data() + R0;
    if (Beta == 0.0)
      L::storeu(O, Acc);
    else
      L::storeu(O, L::add(Acc, L::mul(L::set1(Beta), L::loadu(O))));
  }
  for (; R0 < Rows; ++R0) {
    const double *Row = M.row(R0);
    double Acc = 0.0;
    for (size_t C = 0; C < Cols; ++C)
      Acc = Acc + std::fabs(Row[C]);
    Out[R0] = Beta == 0.0 ? Acc : Acc + Beta * Out[R0];
  }
}

template <class L> void axpyBody(VectorView Y, double A, ConstVectorView X) {
  assert(Y.size() == X.size() && "axpy size mismatch");
  constexpr size_t W = L::Width;
  const size_t N = Y.size();
  const typename L::Reg Av = L::set1(A);
  size_t I = 0;
  for (; I + W <= N; I += W) {
    double *P = Y.data() + I;
    L::storeu(P, L::add(L::loadu(P), L::mul(Av, L::loadu(X.data() + I))));
  }
  for (; I < N; ++I)
    Y[I] = Y[I] + A * X[I];
}

template <class L> void scaleBody(VectorView X, double A) {
  constexpr size_t W = L::Width;
  const size_t N = X.size();
  const typename L::Reg Av = L::set1(A);
  size_t I = 0;
  for (; I + W <= N; I += W) {
    double *P = X.data() + I;
    L::storeu(P, L::mul(Av, L::loadu(P)));
  }
  for (; I < N; ++I)
    X[I] = A * X[I];
}

template <class L> double normInfBody(ConstVectorView X) {
  // max is exact (never rounds), so lane-partitioned reduction order is
  // immaterial on the finite data this runs on.
  constexpr size_t W = L::Width;
  const size_t N = X.size();
  typename L::Reg MaxV = L::zero();
  size_t I = 0;
  for (; I + W <= N; I += W)
    MaxV = L::max(MaxV, L::abs(L::loadu(X.data() + I)));
  double Lanes[W];
  L::storeu(Lanes, MaxV);
  double Max = 0.0;
  for (size_t Ln = 0; Ln < W; ++Ln)
    Max = Max > Lanes[Ln] ? Max : Lanes[Ln];
  for (; I < N; ++I) {
    const double V = std::fabs(X[I]);
    Max = Max > V ? Max : V;
  }
  return Max;
}

/// The per-backend table: one instantiation of every body above.
template <class L> KernelTable makeKernelTable() {
  KernelTable T;
  T.Gemm = &gemmBody<L, false>;
  T.GemmSparse = &gemmBody<L, true>;
  T.Gemv = &gemvBody<L, false>;
  T.GemvAbs = &gemvBody<L, true>;
  T.RowAbsSums = &rowAbsSumsBody<L>;
  T.Axpy = &axpyBody<L>;
  T.Scale = &scaleBody<L>;
  T.NormInf = &normInfBody<L>;
  T.GemmPanel = &gemmPanel<L, false>;
  T.PanelCols = L::Width >= 8 ? 64 : 48;
  return T;
}

} // namespace generic
} // namespace kernels
} // namespace craft

#endif // CRAFT_LINALG_KERNELSGENERIC_H
