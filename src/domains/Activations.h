//===- domains/Activations.h - Smooth activation transformers ---*- C++ -*-===//
//
// Part of the Craft reproduction (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CH-Zonotope transformers for smooth S-shaped activations (sigmoid,
/// tanh), per App. B.6 of the paper: Craft extends beyond ReLU monDEQs as
/// long as (i) the activation is the proximal operator of a CCP function
/// (both are) and (ii) a sound abstract transformer exists. These
/// transformers adapt the parallel-line relaxation of Singh et al. (2018):
/// over the input interval [l, u] the function is sandwiched between two
/// lines of the secant slope
///
///   lambda = (f(u) - f(l)) / (u - l),
///
/// and the offset interval is computed from the extrema of f(x) - lambda x
/// (at the interval endpoints and at the interior tangent points where
/// f'(x) = lambda). The resulting relaxation error is absorbed into the
/// CH-Zonotope Box component, exactly like the ReLU transformer, so the
/// generator count stays constant during iteration.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFT_DOMAINS_ACTIVATIONS_H
#define CRAFT_DOMAINS_ACTIVATIONS_H

#include "domains/CHZonotope.h"

namespace craft {

/// Supported smooth activations.
enum class SmoothActivation {
  Sigmoid, ///< 1 / (1 + exp(-x)).
  Tanh,
};

/// Scalar evaluation (exposed for tests and concrete solvers).
double evalActivation(SmoothActivation Act, double X);
/// Scalar derivative.
double evalActivationDerivative(SmoothActivation Act, double X);

/// Sound linear relaxation of \p Act over [Lo, Hi]: f(x) is contained in
/// Lambda * x + [OffsetLo, OffsetHi] for all x in [Lo, Hi].
struct ActivationRelaxation {
  double Lambda = 0.0;
  double OffsetLo = 0.0;
  double OffsetHi = 0.0;
};
ActivationRelaxation relaxActivation(SmoothActivation Act, double Lo,
                                     double Hi);

/// Abstract transformer: applies \p Act to dimensions [0, Count) of \p Z
/// (remaining dimensions pass through), absorbing relaxation error into the
/// Box component.
CHZonotope applyActivationPrefix(const CHZonotope &Z, SmoothActivation Act,
                                 size_t Count);

//===----------------------------------------------------------------------===//
// Proximal operators (App. B.6 pipeline)
//===----------------------------------------------------------------------===//
//
// The Winston & Kolter operator-splitting solvers iterate the *scaled*
// resolvent prox_{a f}, not sigma itself (they coincide only for ReLU,
// whose prox is scaling-invariant, and at a = 1). Since sigma = prox_f,
// the CCP function's derivative is f'(y) = sigma^{-1}(y) - y, so
// prox_{a f}(v) is the unique root y of
//
//   (1 - a) y + a sigma^{-1}(y) = v,
//
// a strictly monotone scalar equation solved by safeguarded Newton. The
// derivative d/dv prox_{a f}(v) = 1 / ((1 - a) + a (sigma^{-1})'(y)) is
// bell-shaped like the activation's own, so the same parallel-line
// relaxation applies.

/// prox_{Alpha * f}(V) for the CCP f with sigma = prox_f.
double proxActivation(SmoothActivation Act, double Alpha, double V);

/// d/dV prox_{Alpha * f}(V); lies in (0, 1] for Alpha in [0, 1].
double proxActivationDerivative(SmoothActivation Act, double Alpha,
                                double V);

/// Sound linear relaxation of prox_{Alpha * f} over [Lo, Hi] (secant slope
/// with interior tangent offsets, mirroring relaxActivation).
ActivationRelaxation relaxProxActivation(SmoothActivation Act, double Alpha,
                                         double Lo, double Hi);

/// Abstract transformer: applies prox_{Alpha * f} to dimensions [0, Count)
/// of \p Z, absorbing relaxation error into the Box component.
CHZonotope applyProxActivationPrefix(const CHZonotope &Z,
                                     SmoothActivation Act, double Alpha,
                                     size_t Count);

} // namespace craft

#endif // CRAFT_DOMAINS_ACTIVATIONS_H
