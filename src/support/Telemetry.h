//===- support/Telemetry.h - Metrics registry and span tracer ---*- C++ -*-===//
//
// Process-wide observability substrate: a MetricsRegistry of named
// monotonic counters, gauges, and fixed-bucket log-scale histograms
// (p50/p95/p99 readout), plus a Tracer of nestable spans exportable as
// Chrome trace_event JSON (see support/TraceJson.h).
//
// Hot-path contract:
//  - Counter::add / Histogram::observe are one relaxed fetch_add on a
//    per-thread shard; name resolution happens once, at handle creation.
//    Registration takes a mutex, so resolve handles at namespace scope or
//    construction time, never per call.
//  - Shards are folded on read (value() / snapshotMetrics()); a thread
//    that exits retires its shard into plain totals, so counts survive
//    worker churn.
//
// Determinism contract:
//  - This header contains no clock access; the single clock of the
//    telemetry layer (monotonicNanos) lives in Telemetry.cpp, which is a
//    lint-sanctioned timing TU alongside support/Timer.h. Instrumentation
//    macros in core/serve headers therefore never trip `det-time`.
//  - Telemetry never branches computation: counters and histograms always
//    count (they back functional stats like the serve cache hit rate),
//    while clock reads (spans, PhaseTimer) are skipped entirely when
//    CRAFT_TELEMETRY=0. Either way, verification outcomes are
//    byte-identical — pinned by tests/test_telemetry.cpp.
//
// Switches:
//  - CRAFT_TELEMETRY=0  disables all clock reads (timingEnabled()).
//  - CRAFT_TRACE=1      arms span recording (traceEnabled()); rings are
//                        dumped via support/TraceJson.h on shutdown.
//
//===----------------------------------------------------------------------===//

#ifndef CRAFT_SUPPORT_TELEMETRY_H
#define CRAFT_SUPPORT_TELEMETRY_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace craft {
namespace telemetry {

/// Monotonic nanoseconds since the first call in this process. The only
/// clock of the telemetry layer; implemented in Telemetry.cpp (the
/// lint-sanctioned TU). Returns 0 without touching the clock when
/// timingEnabled() is false.
uint64_t monotonicNanos();

/// True unless the environment says CRAFT_TELEMETRY=0 (checked once and
/// cached). Gates every clock read of this layer; counters keep counting
/// regardless.
bool timingEnabled();

/// Test hook: force timingEnabled() on or off in-process, so one test
/// binary can compare telemetry-on vs telemetry-off outcomes.
void setTimingEnabledForTest(bool Enabled);

/// True when span recording is armed: CRAFT_TRACE=1 in the environment
/// (checked once) or setTraceEnabled(true). Implies timingEnabled() for
/// the spans themselves.
bool traceEnabled();

/// Arms (or disarms) span recording — `craft serve --trace-out` uses this
/// so a flag works without the environment variable.
void setTraceEnabled(bool Enabled);

//===----------------------------------------------------------------------===//
// Metrics
//===----------------------------------------------------------------------===//

/// Folded state of one histogram. Buckets are log-scale with 4
/// sub-buckets per octave (see Histogram::bucketFor); percentiles report
/// the upper bound of the bucket containing the rank, so they are exact
/// for small values (v < 4 has its own bucket each) and within ~19% above
/// that. Zero samples read as 0 everywhere.
struct HistogramSnapshot {
  uint64_t Count = 0;
  uint64_t Sum = 0; ///< Exact sum of observed values (mean = Sum/Count).
  std::vector<uint64_t> Buckets;

  /// Value at percentile \p P in [0, 100]: upper bound of the bucket
  /// where the cumulative count first reaches ceil(P/100 * Count).
  uint64_t percentile(double P) const;
  uint64_t p50() const { return percentile(50.0); }
  uint64_t p95() const { return percentile(95.0); }
  uint64_t p99() const { return percentile(99.0); }
  double mean() const {
    return Count == 0 ? 0.0
                      : static_cast<double>(Sum) / static_cast<double>(Count);
  }
};

/// Interval readout over a process-global series: the activity between
/// two snapshots of the SAME histogram (per-bucket After - Before).
/// \p Before must have been taken first; the bench harnesses use this to
/// read one phase's latencies out of a registry that never resets.
inline HistogramSnapshot diffSnapshots(const HistogramSnapshot &Before,
                                       const HistogramSnapshot &After) {
  HistogramSnapshot D;
  D.Count = After.Count - Before.Count;
  D.Sum = After.Sum - Before.Sum;
  D.Buckets.resize(After.Buckets.size());
  for (size_t I = 0; I < After.Buckets.size(); ++I)
    D.Buckets[I] =
        After.Buckets[I] - (I < Before.Buckets.size() ? Before.Buckets[I] : 0);
  return D;
}

/// Handle to a named monotonic counter. Cheap to copy; add() is one
/// relaxed fetch_add on this thread's shard.
class Counter {
public:
  Counter() = default;
  void add(uint64_t N) const;
  void increment() const { add(1); }
  /// Folded total across live shards and retired threads.
  uint64_t value() const;

private:
  friend Counter counterMetric(const char *Name);
  explicit Counter(uint32_t Id) : Id(Id) {}
  uint32_t Id = ~0u;
};

/// Handle to a named gauge (a settable int64, e.g. queue depth).
class Gauge {
public:
  Gauge() = default;
  void set(int64_t V) const;
  void add(int64_t Delta) const;
  /// Raises the gauge to \p V if it is below (CAS loop) — for
  /// high-water-mark gauges like the largest batch seen.
  void noteMax(int64_t V) const;
  int64_t value() const;

private:
  friend Gauge gaugeMetric(const char *Name);
  explicit Gauge(uint32_t Id) : Id(Id) {}
  uint32_t Id = ~0u;
};

/// Handle to a named log-scale histogram of uint64 values (latencies in
/// nanoseconds, iteration counts, wave sizes...).
class Histogram {
public:
  /// 4 sub-buckets per octave up to 2^63 keeps the whole bucket array at
  /// a fixed 252 slots; values past the last bound land in the overflow
  /// bucket (the final slot, with upper bound UINT64_MAX).
  static constexpr size_t NumBuckets = 252;

  Histogram() = default;
  void observe(uint64_t V) const;
  HistogramSnapshot snapshot() const;

  /// Bucket index for value \p V: 0..3 exact, then 4 sub-buckets per
  /// octave. Monotone in V by construction.
  static size_t bucketFor(uint64_t V);
  /// Largest value that lands in bucket \p I (what percentile() reports).
  static uint64_t bucketUpperBound(size_t I);

private:
  friend Histogram histogramMetric(const char *Name);
  explicit Histogram(uint32_t Id) : Id(Id) {}
  uint32_t Id = ~0u;
};

/// Resolve (registering on first use) the handle for \p Name. Names are
/// process-global: two calls with the same name alias the same series.
/// \p Name must outlive the process (string literals). On registry
/// exhaustion returns an inert handle that counts nothing.
Counter counterMetric(const char *Name);
Gauge gaugeMetric(const char *Name);
Histogram histogramMetric(const char *Name);

/// Full registry readout, each section sorted by name so the serve
/// `metrics` envelope is deterministic.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> Counters;
  std::vector<std::pair<std::string, int64_t>> Gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> Histograms;
};
MetricsSnapshot snapshotMetrics();

//===----------------------------------------------------------------------===//
// Tracing
//===----------------------------------------------------------------------===//

/// One completed span, recorded at scope exit. Spans nest per thread
/// (Depth), so the export can reconstruct a balanced B/E stream even
/// after ring eviction drops old records — eviction drops whole spans,
/// never half of a pair.
struct SpanRecord {
  const char *Name = ""; ///< String literal; not owned.
  uint64_t StartNs = 0;
  uint64_t DurNs = 0;
  uint32_t Tid = 0; ///< Telemetry thread id (registration order, from 1).
  uint32_t Depth = 0;
};

/// RAII span. Inert unless traceEnabled(); two clock reads when armed.
/// Use via TRACE_SPAN below.
class TraceSpan {
public:
  explicit TraceSpan(const char *Name);
  ~TraceSpan();
  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

private:
  const char *Name;
  uint64_t StartNs = 0;
  bool Armed = false;
};

/// Labels this thread in trace exports ("worker 3", "serve dispatch").
void setCurrentThreadLabel(const std::string &Label);

/// All recorded spans (live rings + retired threads), sorted by
/// (Tid, StartNs, Depth) — the order TraceJson consumes.
std::vector<SpanRecord> traceSpans();

/// Labels registered via setCurrentThreadLabel, as (tid, label).
std::vector<std::pair<uint32_t, std::string>> traceThreadLabels();

/// Drops every recorded span and label (tests; between bench phases).
void clearTrace();

#define CRAFT_TELEMETRY_CONCAT2(A, B) A##B
#define CRAFT_TELEMETRY_CONCAT(A, B) CRAFT_TELEMETRY_CONCAT2(A, B)

/// TRACE_SPAN("split.wave"): scoped span covering the rest of the
/// enclosing block. Safe in any header — expands to no clock access
/// unless tracing is armed at run time.
#define TRACE_SPAN(NameLiteral)                                               \
  ::craft::telemetry::TraceSpan CRAFT_TELEMETRY_CONCAT(                       \
      CraftTraceSpan_, __LINE__)(NameLiteral)

//===----------------------------------------------------------------------===//
// Per-query phase attribution
//===----------------------------------------------------------------------===//

/// Phases a query's wall time is attributed to, accumulated per thread.
/// The driver snapshots phaseTotals() around a query and diffs — see
/// tool/Driver.cpp.
enum class Phase : unsigned {
  Solver = 0,    ///< Engine run (inclusive of consolidation below).
  Consolidation, ///< consolidateProper inside the engine run.
  Split,         ///< SplitEngine wave loop.
  Pgd,           ///< PGD refutation pass.
  Certificate,   ///< Certificate construction + save.
  Count
};

/// RAII accumulator: adds the scope's duration to this thread's total for
/// \p P. Inert (no clock reads) when !timingEnabled(). Nesting different
/// phases double-attributes the inner time to both, deliberately: Solver
/// is inclusive, Consolidation is the named slice of it.
class PhaseTimer {
public:
  explicit PhaseTimer(Phase P);
  ~PhaseTimer();
  PhaseTimer(const PhaseTimer &) = delete;
  PhaseTimer &operator=(const PhaseTimer &) = delete;

private:
  Phase P;
  uint64_t StartNs = 0;
  bool Armed = false;
};

/// This thread's accumulated nanoseconds per phase since thread start.
struct PhaseTotals {
  uint64_t Ns[static_cast<size_t>(Phase::Count)] = {};
  uint64_t of(Phase P) const { return Ns[static_cast<size_t>(P)]; }
};
PhaseTotals phaseTotals();

} // namespace telemetry
} // namespace craft

#endif // CRAFT_SUPPORT_TELEMETRY_H
