//===- bench/bench_table3_baselines.cpp -----------------------------------===//
//
// Reproduces Table 3: Craft vs the SemiSDP-class baselines on FCx40 and
// FCx87 across perturbation radii eps in {0.01, 0.02, 0.05, 0.07, 0.10}.
//
// SemiSDP (Chen et al. 2021) needs an industrial SDP solver (unavailable
// offline); per DESIGN.md substitution 4 its two qualitative axes are
// reproduced with fully implemented comparators:
//   - precision: the Lipschitz-bound certifier (Pabbaraju-style l2 bound
//     with the sqrt(q) l-inf conversion) certifies far fewer samples;
//   - runtime/scalability: bench_fig18_containment shows the LP-based
//     check underlying SemiSDP-class precision is orders of magnitude
//     slower per query and infeasible at Craft's sizes.
//
// Expected shape: at small eps both Craft and the upper bound saturate; as
// eps grows Craft certifies a decreasing but substantial fraction while the
// Lipschitz baseline collapses to ~0 (the sqrt(784) conversion penalty).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/LipschitzCert.h"

using namespace craft;

int main() {
  std::printf("== Table 3: Craft vs baseline certification across eps ==\n");
  std::printf("(SemiSDP substitution documented in DESIGN.md; Lipschitz "
              "baseline shown)\n\n");

  const double Epsilons[] = {0.01, 0.02, 0.05, 0.07, 0.10};
  const char *Models[] = {"mnist_fc40", "mnist_fc87"};
  size_t Samples = benchSamples(6);

  TablePrinter Table({"Model", "eps", "#Acc", "#Bound", "Lip#Cert",
                      "Lip[ms]", "Craft#Cert", "Craft[s]"});

  for (const char *Name : Models) {
    const ModelSpec *Spec = findModelSpec(Name);
    MonDeq Model = getOrTrainModel(*Spec);
    Dataset Test = makeTestSet(*Spec, Samples);
    FixpointSolver Concrete(Model, Splitting::PeacemanRachford);
    LipschitzCertifier Lipschitz(Model);
    CraftVerifier Verifier(Model, craftConfigFor(*Spec));

    for (double Eps : Epsilons) {
      size_t Accurate = 0, Bound = 0, LipCert = 0, CraftCert = 0;
      double LipTime = 0.0, CraftTime = 0.0;
      for (size_t I = 0; I < Test.size(); ++I) {
        Vector X = Test.input(I);
        int Label = Test.Labels[I];
        if (Concrete.predict(X) != Label)
          continue;
        ++Accurate;

        PgdOptions Attack = pgdOptionsFor(*Spec);
        Attack.Epsilon = Eps;
        Attack.Seed = 2000 + I;
        if (!pgdAttack(Model, Concrete, X, Label, Attack).FoundAdversarial)
          ++Bound;

        WallTimer LipTimer;
        LipCert += Lipschitz.certify(X, Label, Eps);
        LipTime += LipTimer.seconds();

        WallTimer CraftTimer;
        CraftCert += Verifier.verifyRobustness(X, Label, Eps).Certified;
        CraftTime += CraftTimer.seconds();
      }
      double Denominator = Accurate > 0 ? static_cast<double>(Accurate) : 1.0;
      Table.addRow({Name, fmt(Eps, 2), fmt(static_cast<long>(Accurate)),
                    fmt(static_cast<long>(Bound)),
                    fmt(static_cast<long>(LipCert)),
                    fmt(1e3 * LipTime / Denominator, 2),
                    fmt(static_cast<long>(CraftCert)),
                    fmt(CraftTime / Denominator, 2)});
    }
  }

  Table.print();
  return 0;
}
