//===- bench/bench_fig2_running_example.cpp -------------------------------===//
//
// Reproduces the overview figures on the paper's running example (Eq. 1):
//   - Fig. 2a: the decision landscape of the 2-d monDEQ over [-1, 1]^2;
//   - Fig. 2b/2c + Fig. 4: abstractions of the fixpoint set and of the
//     output score for the input region X (0.05-box around (0.2, 0.5)),
//     comparing Kleene iteration and Craft (with CH-Zonotope).
//
// Expected shape: the concrete fixpoint s* ~ (0.1231, 0.0846) with score
// y ~ 0.0385; Craft's output interval lies strictly above 0 (certified);
// Kleene's contains 0 (not certifiable).
//
//===----------------------------------------------------------------------===//

#include "core/KleeneVerifier.h"
#include "core/Verifier.h"
#include "nn/Solvers.h"
#include "support/Table.h"

#include <cstdio>

using namespace craft;

static MonDeq runningExample() {
  Matrix W = {{-4.0, -1.0}, {1.0, -4.0}};
  Matrix U = {{1.0, 1.0}, {-1.0, 1.0}};
  Matrix V = {{0.0, 0.0}, {1.0, -1.0}}; // Logits (0, y): class 1 iff y > 0.
  return MonDeq::fromW(4.0, W, U, Vector(2, 0.0), V, Vector(2, 0.0));
}

int main() {
  std::printf("== Fig. 2 / Fig. 4: the running example (Eq. 1) ==\n\n");
  MonDeq Model = runningExample();
  FixpointSolver Solver(Model, Splitting::PeacemanRachford);

  // Fig. 2a: decision landscape over [-1, 1]^2 ('#' = class 1, '.' = 0,
  // 'X' marks the example input).
  std::printf("decision landscape over [-1,1]^2:\n");
  const int Grid = 31;
  for (int Row = 0; Row < Grid; ++Row) {
    double X2 = 1.0 - 2.0 * Row / (Grid - 1);
    std::string Line;
    for (int Col = 0; Col < Grid; ++Col) {
      double X1 = -1.0 + 2.0 * Col / (Grid - 1);
      bool Mark = std::abs(X1 - 0.2) < 0.034 && std::abs(X2 - 0.5) < 0.034;
      Line += Mark ? 'X' : (Solver.predict(Vector{X1, X2}) == 1 ? '#' : '.');
    }
    std::printf("%s\n", Line.c_str());
  }

  // Concrete reference point.
  FixpointResult Fix = Solver.solve(Vector{0.2, 0.5}, 1e-12, 1000);
  Vector Y = Model.output(Fix.Z);
  std::printf("\nconcrete: s* = (%.4f, %.4f), score y = %.4f -> class %d\n\n",
              Fix.Z[0], Fix.Z[1], Y[1], Y[1] > 0 ? 1 : 0);

  // Abstractions of the fixpoint set and the output for the 0.05-box.
  CraftConfig CConfig;
  CConfig.Alpha1 = 0.1;
  CConfig.InputClampLo = -1.0;
  CConfig.InputClampHi = 1.0;
  CraftResult Craft = CraftVerifier(Model, CConfig)
                          .verifyRobustness(Vector{0.2, 0.5}, 1, 0.05);

  KleeneConfig KConfig;
  KConfig.Alpha = 0.1;
  KConfig.InputClampLo = -1.0;
  KConfig.InputClampHi = 1.0;
  KleeneResult Kleene = KleeneVerifier(Model, KConfig)
                            .verifyRobustness(Vector{0.2, 0.5}, 1, 0.05);

  TablePrinter Table({"method", "S* dim1", "S* dim2", "score low bound",
                      "certified"});
  // Each hull label is pre-built in a single snprintf — no std::string
  // concatenation anywhere near the row construction.
  auto hullCell = [](const IntervalVector &H, size_t Dim) {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "[%.4f, %.4f]", H.lowerBounds()[Dim],
                  H.upperBounds()[Dim]);
    return std::string(Buf);
  };
  const std::string CraftDim1 = hullCell(Craft.FixpointHull, 0);
  const std::string CraftDim2 = hullCell(Craft.FixpointHull, 1);
  const std::string KleeneDim1 = hullCell(Kleene.FixpointHull, 0);
  const std::string KleeneDim2 = hullCell(Kleene.FixpointHull, 1);
  Table.addRow({"Craft (CH-Zonotope)", CraftDim1, CraftDim2,
                fmt(Craft.BestMargin, 4), Craft.Certified ? "yes" : "no"});
  Table.addRow({"Kleene iteration", KleeneDim1, KleeneDim2,
                fmt(Kleene.BestMargin, 4), Kleene.Certified ? "yes" : "no"});
  Table.print();

  std::printf("\nCraft hull mean width %.4f vs Kleene %.4f "
              "(Craft strictly tighter, Fig. 2b/4)\n",
              Craft.FixpointHull.meanWidth(),
              Kleene.FixpointHull.meanWidth());
  return 0;
}
