//===- domains/CHZonotope.h - The CH-Zonotope abstract domain ---*- C++ -*-===//
//
// Part of the Craft reproduction (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Containing-Hybrid-Zonotope (CH-Zonotope) abstract domain of Section 4:
///
///   Z = A nu + diag(b) eta + a,   nu in [-1,1]^k, eta in [-1,1]^p,
///
/// i.e. a zonotope with generator matrix A (the "error matrix"), an
/// axis-aligned Box error vector b, and center a. A CH-Zonotope is "proper"
/// when A is square and invertible, which is what enables the O(p^3)
/// containment check of Thm 4.2. A standard Zonotope is the special case
/// b = 0, so this single class also implements the plain Zonotope domain
/// used by the Kleene baseline and the Householder case study.
///
/// Generator columns carry globally unique error-term ids. Shared ids across
/// abstract values denote the same underlying noise symbol; linearCombine
/// merges coefficients for shared ids, which is how the abstract solver
/// iteration g#(X, S) keeps the state correlated with the input region
/// across iterations.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFT_DOMAINS_CHZONOTOPE_H
#define CRAFT_DOMAINS_CHZONOTOPE_H

#include "domains/Interval.h"
#include "linalg/Kernels.h"
#include "linalg/Matrix.h"
#include "linalg/Views.h"

#include <cstdint>
#include <span>
#include <utility>

namespace craft {

/// Mints a fresh, process-unique error-term id.
uint64_t freshErrorTermId();
/// Resets the id counter (test isolation only).
void resetErrorTermIds();

/// Controls how the Box error component participates in affine maps.
enum class BoxPolicy {
  /// Cast Box errors to fresh generator columns before the map (the paper's
  /// transformer): precise, grows k by the number of nonzero box entries.
  CastToGenerators,
  /// Map the Box radius through |M| (interval-style): sound and size
  /// preserving but ignores rotation of the box.
  IntervalMap,
};

/// A CH-Zonotope abstract value.
class CHZonotope {
public:
  CHZonotope() = default;

  /// Degenerate abstraction of a single concrete point.
  static CHZonotope point(const Vector &Center);

  /// Abstraction of an axis-aligned box, one fresh generator column per
  /// dimension with nonzero radius (so correlations with this region are
  /// trackable through shared ids).
  static CHZonotope fromBox(const Vector &Lo, const Vector &Hi);

  /// Builds a CH-Zonotope from raw parts (ids must be unique).
  CHZonotope(Vector Center, Matrix Generators, std::vector<uint64_t> TermIds,
             Vector BoxRadius);

  size_t dim() const { return Center.size(); }
  size_t numGenerators() const { return Generators.cols(); }

  const Vector &center() const { return Center; }
  const Matrix &generators() const { return Generators; }
  const std::vector<uint64_t> &termIds() const { return TermIds; }
  const Vector &boxRadius() const { return BoxRadius; }

  /// Per-dimension concretization radius: |A| 1 + b.
  Vector concretizationRadius() const;
  /// Destination-passing form of \ref concretizationRadius (\p Out must
  /// have size dim()); the per-iteration checks of the Kleene loop use
  /// this with workspace scratch.
  void concretizationRadiusInto(VectorView Out) const;
  Vector lowerBounds() const;
  Vector upperBounds() const;
  /// Interval hull of the concretization.
  IntervalVector intervalHull() const;
  /// Mean per-dimension width of the concretization (Fig. 13 metric).
  double meanWidth() const;

  /// Affine image M * this + T.
  CHZonotope affine(const Matrix &M, const Vector &T,
                    BoxPolicy Policy = BoxPolicy::CastToGenerators) const;

  /// Sum_i M_i * Z_i + Offset with error-term-id alignment: columns with the
  /// same id across operands are summed into a single output column. This is
  /// the key precision-preserving operation of the abstract solver step
  /// g#(X, S) = ... W S + U X ...
  ///
  /// A null matrix pointer denotes the identity map (the operand must
  /// already have the output dimension): the hot solver step adds its
  /// precomputed input contribution this way without materializing — or
  /// multiplying by — a p x p identity.
  ///
  /// \p Hint describes the density of the map matrices and is forwarded
  /// to the generator gemms. The abstract solver step passes Dense — its
  /// maps are the monDEQ state matrices, and skipping the probe keeps the
  /// hot gemms eligible for batch fusion without a per-call density scan.
  static CHZonotope
  linearCombine(std::span<const std::pair<const Matrix *, const CHZonotope *>>
                    Terms,
                const Vector &Offset,
                BoxPolicy Policy = BoxPolicy::CastToGenerators,
                kernels::DensityHint Hint = kernels::DensityHint::Probe);

  /// ReLU transformer applied to dimensions [0, Count); remaining dimensions
  /// pass through. Per-dimension relaxation slopes can be overridden via
  /// \p LambdaOverride (empty = minimal-area default u/(u-l), scaled by
  /// \p LambdaScale and clamped to [0,1] — the knob the paper's lambda
  /// optimization tunes, App. C). If \p AbsorbIntoBox, new relaxation error
  /// goes to the Box component (the CH-Zonotope transformer — representation
  /// size stays constant); otherwise each unstable dimension appends a fresh
  /// generator column (the classic Zonotope transformer).
  CHZonotope reluPrefix(size_t Count, const Vector &LambdaOverride = Vector(),
                        bool AbsorbIntoBox = true,
                        double LambdaScale = 1.0) const;

  /// Error consolidation (Thm 4.1) with expansion (Eq. 10): replaces the
  /// generator matrix by Basis * diag(c) with
  /// c = (1+WMul) |Basis^{-1} A| 1 + WAdd, minting fresh ids. \p BasisInv
  /// must be the inverse of \p Basis. The result is proper whenever all
  /// consolidation coefficients are positive; zero coefficients are floored
  /// (a sound enlargement) to retain invertibility.
  CHZonotope consolidate(const Matrix &Basis, const Matrix &BasisInv,
                         double WMul = 0.0, double WAdd = 0.0) const;

  /// Casts the Box component into axis-aligned generator columns with fresh
  /// ids (exact). Useful before consolidation when the Box carries most of
  /// the radius, so the consolidated generators cover the full set.
  CHZonotope boxCastToGenerators() const;

  /// Keeps dimensions [First, First+Count) (column slicing of the state,
  /// e.g. extracting Z from S = [Z; U]).
  CHZonotope slice(size_t First, size_t Count) const;

  /// Vertical concatenation with id alignment (shared ids stay shared).
  static CHZonotope stack(const CHZonotope &Top, const CHZonotope &Bottom);

  /// This value with the Box error vector replaced (rvalue-only: reuses the
  /// center/generator storage — the Kleene widening step rewrites the Box
  /// every iteration and must not copy the generator matrix to do so).
  CHZonotope withBoxRadius(Vector NewBox) &&;

  /// Sound quasi-join for the Kleene baseline (non-lattice domain, per Gange
  /// et al. 2013): averages coefficients of shared ids, drops unshared
  /// columns into a covering Box residual.
  static CHZonotope join(const CHZonotope &A, const CHZonotope &B);

private:
  Vector Center;
  Matrix Generators; ///< p x k error matrix A.
  std::vector<uint64_t> TermIds;
  Vector BoxRadius; ///< Box error vector b >= 0 (size p).
};

/// Result of the approximate containment check.
struct ContainmentResult {
  bool Contained = false;
  /// max_i of the Thm 4.2 left-hand side; <= 1 means contained. Useful as a
  /// tightness diagnostic (Fig. 18).
  double Slack = 0.0;
};

/// CH-Zonotope containment check (Thm 4.2): is \p Inner contained in the
/// proper CH-Zonotope \p Outer? \p OuterInvGens must be the inverse of
/// Outer's generator matrix. Sound but incomplete; O(p^2 (p + k)).
ContainmentResult containsCH(const CHZonotope &Outer,
                             const Matrix &OuterInvGens,
                             const CHZonotope &Inner);

} // namespace craft

#endif // CRAFT_DOMAINS_CHZONOTOPE_H
