//===- domains/AffineForm.h - Scalar affine arithmetic ----------*- C++ -*-===//
//
// Part of the Craft reproduction (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scalar affine arithmetic (1-d Zonotopes with tracked noise symbols),
/// Taylor1+ style (Ghorbal et al. 2009). This is the domain the paper's
/// Section 6.5 case study runs on, promoted to a reusable library so that
/// arbitrary scalar fixpoint iterators (core/ScalarFixpoint.h) can be
/// analyzed, not just the Householder program.
///
/// A form represents c + sum_i a_i e_i with e_i in [-1, 1]. Every nonlinear
/// operation appends its linearization remainder as a fresh *tracked*
/// symbol. Tracking matters for fixpoint iteration: remainder symbols
/// re-enter later iterations with opposite-sign coefficients and cancel,
/// which is what lets abstract iterations of contractive maps contract; an
/// anonymous error bound would accumulate and diverge (see DESIGN.md).
///
/// Nonlinear unary functions use the Chebyshev (minimax) linearization on
/// intervals where the function is convex or concave, and the min-range
/// (DeepZ-style minimal-slope) linearization for the S-shaped activations
/// tanh/sigmoid on sign-crossing intervals. Trigonometric functions
/// enumerate the interior extrema of f(x) - alpha x exactly.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFT_DOMAINS_AFFINEFORM_H
#define CRAFT_DOMAINS_AFFINEFORM_H

#include <cstdint>
#include <utility>
#include <vector>

namespace craft {

/// Scalar affine form c + sum_i a_i e_i, e_i in [-1, 1].
class AffineForm {
public:
  AffineForm() = default;
  static AffineForm constant(double Value);
  /// Fresh noise symbol spanning [Lo, Hi].
  static AffineForm range(double Lo, double Hi);

  double center() const { return Center; }
  double radius() const;
  double lo() const { return Center - radius(); }
  double hi() const { return Center + radius(); }
  double width() const { return 2.0 * radius(); }

  /// Noise terms (id, coefficient), sorted by id. Exposed for evaluation in
  /// tests and for the generic scalar fixpoint driver.
  const std::vector<std::pair<uint64_t, double>> &terms() const {
    return Terms;
  }

  /// Evaluates the form with the symbols listed in \p Fixed pinned to the
  /// given values (in [-1, 1]) and every other symbol ranging freely;
  /// returns the induced [lo, hi]. Used by soundness property tests.
  std::pair<double, double>
  evalPartial(const std::vector<std::pair<uint64_t, double>> &Fixed) const;

  AffineForm operator+(const AffineForm &Rhs) const;
  AffineForm operator-(const AffineForm &Rhs) const;
  AffineForm operator*(const AffineForm &Rhs) const;
  AffineForm operator*(double Scale) const;
  AffineForm operator+(double Offset) const;
  AffineForm operator-(double Offset) const { return *this + (-Offset); }
  AffineForm operator/(const AffineForm &Rhs) const;

  /// In-place scalar forms: the fixpoint iterators chain scale-and-shift
  /// steps every iteration, and the copying operators would churn a term
  /// vector per link of the chain.
  AffineForm &operator*=(double Scale) {
    Center *= Scale;
    for (auto &[Id, Coef] : Terms)
      Coef *= Scale;
    return *this;
  }
  AffineForm &operator+=(double Offset) {
    Center += Offset;
    return *this;
  }

  /// Tighter transformer for x^2 (remainder [0, r^2] recentered).
  AffineForm square() const;

  /// 1/x; requires the concretization to be bounded away from 0.
  AffineForm reciprocal() const;
  /// sqrt(x); requires lo() >= 0 (degenerate zero-width handled exactly).
  AffineForm sqrt() const;
  /// e^x.
  AffineForm exp() const;
  /// ln(x); requires lo() > 0.
  AffineForm log() const;
  /// tanh(x) via min-range linearization (sound on any interval).
  AffineForm tanh() const;
  /// Logistic sigmoid 1 / (1 + e^-x) via min-range linearization.
  AffineForm sigmoid() const;
  /// sin(x); exact extremum enumeration, interval fallback on wide inputs.
  AffineForm sin() const;
  /// cos(x).
  AffineForm cos() const;

  /// Enlarges the form by a fresh symbol of magnitude \p Delta (used for
  /// the App. A reachable-value expansion).
  AffineForm widened(double Delta) const;

  /// 1-d error consolidation (the scalar analog of Thm 4.1): a fresh
  /// single-symbol form spanning [lo - Expand, hi + Expand]. Beyond bounding
  /// the representation size, consolidation *decorrelates* the form from
  /// every earlier symbol — including the input's — which is what makes a
  /// subsequent containment check a valid premise for Thm 3.1: the theorem
  /// needs the abstract step to be sound for all (x, s) pairs independently,
  /// and a state that shares symbols with the input only covers the
  /// correlated pairs. See DESIGN.md ("consolidation is load-bearing").
  AffineForm consolidated(double Expand = 0.0) const;

  /// Sound quasi-join: shared symbols averaged, residual into a fresh
  /// symbol.
  static AffineForm join(const AffineForm &A, const AffineForm &B);

  /// Exact set containment (1-d concretizations are intervals). Note that
  /// for the Thm 3.1 containment premise this check is only valid when the
  /// outer form shares no symbols with the analyzed input — use
  /// containsRelational for correlated iterates.
  bool contains(const AffineForm &Inner, double Tol = 0.0) const {
    return Inner.lo() >= lo() - Tol && Inner.hi() <= hi() + Tol;
  }

  /// Slice-wise containment w.r.t. the shared symbols \p SliceIds (sorted):
  /// true if for every valuation e of the sliced symbols, the inner slice
  /// interval is contained in the outer slice interval, i.e.
  ///
  ///   |c' - c| + sum_{i in SliceIds} |a'_i - a_i| + r'_free <= r_free,
  ///
  /// where r_free sums the non-sliced coefficients of each side. Slicing on
  /// the *input* symbols makes this a valid Thm 3.1 premise for iterates
  /// that stay correlated with the input: the theorem's argument then runs
  /// per input slice (for each x, trajectories from the outer slice remain
  /// in the inner slice), without the precision loss of decorrelating
  /// first. With empty SliceIds this degrades to the interval check, which
  /// is the sound choice only for input-decorrelated outers.
  bool containsRelational(const AffineForm &Inner,
                          const std::vector<uint64_t> &SliceIds,
                          double Tol = 0.0) const;

private:
  /// Builds alpha * this + Zeta with a fresh remainder symbol of magnitude
  /// Delta: the common tail of every unary linearization.
  AffineForm linearized(double Alpha, double Zeta, double Delta) const;

  double Center = 0.0;
  /// Noise terms, sorted by id (fresh ids are globally increasing, so
  /// appending a fresh term preserves the order).
  std::vector<std::pair<uint64_t, double>> Terms;
};

} // namespace craft

#endif // CRAFT_DOMAINS_AFFINEFORM_H
