//===- bench/bench_split.cpp - Split-engine scaling -----------------------===//
//
// Measures the parallel work-queue split engine against its serial (jobs=1)
// configuration on a >= 64-region workload, emitting BENCH_split.json:
//
//   split_global_serial / split_global_parallel   global certification
//   split_bnb_serial / split_bnb_parallel         branch-and-bound query
//   split_parallel_speedup                        serial/parallel ratio of
//                                                 the global run (direction
//                                                 "higher": a drop is the
//                                                 regression)
//   split_verifier_calls                          regions processed (gated:
//                                                 a call-count explosion is
//                                                 a regression even when
//                                                 per-call time improves)
//
// ns_per_op is the wall time of one whole split run. The harness
// self-checks two bars by exit code:
//   - determinism: serial and parallel outcomes must be byte-identical;
//   - scaling: on hosts with >= 2 hardware threads, the parallel global
//     run must beat serial by >= 1.1x (skipped on single-core hosts,
//     where the pool can only add overhead).
//
// The speedup RECORD is emitted unconditionally — including on 1-core
// hosts, where only the exit-code bar is skipped. Dropping the record
// there used to make the baseline row silently vanish from the
// comparison, so a real scaling regression on multi-core runners could
// hide behind a 1-core baseline refresh.
//
// CRAFT_SPLIT_DEPTH overrides the split budget (default 9 -> ~hundreds of
// regions on the GMM workload).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "BenchJson.h"

#include "core/DomainSplitting.h"
#include "data/GaussianMixture.h"
#include "support/Rng.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

using namespace craft;

namespace {

/// Same recipe as the test fixtures: small and fast to train, with real
/// decision boundaries inside [0.3, 0.7]^5 so shallow regions stay
/// uncertified and the tree fans out.
MonDeq trainWorkloadModel(Vector &Sample, int &SampleClass) {
  Rng DataRng(91);
  Dataset Train = makeGaussianMixture(DataRng, 250, 5, 3);
  Rng InitRng(92);
  MonDeq Model = MonDeq::randomFc(InitRng, 5, 10, 3, 3.0);
  TrainOptions Opts;
  Opts.Epochs = 10;
  Opts.Verbose = false;
  trainMonDeq(Model, Train, Opts);
  FixpointSolver Solver(Model, Splitting::PeacemanRachford);
  for (size_t I = 0; I < Train.size(); ++I)
    if (Solver.predict(Train.input(I)) == Train.Labels[I]) {
      Sample = Train.input(I);
      SampleClass = Train.Labels[I];
      break;
    }
  return Model;
}

CraftConfig workloadConfig() {
  CraftConfig Config;
  Config.Alpha1 = 0.5;
  Config.LambdaOptLevel = 0; // Many small regions; keep each cheap.
  return Config;
}

bool sameSplit(const SplitResult &A, const SplitResult &B) {
  if (std::memcmp(&A.CertifiedFraction, &B.CertifiedFraction,
                  sizeof(double)) != 0 ||
      A.NumCertified != B.NumCertified ||
      A.NumVerifierCalls != B.NumVerifierCalls ||
      A.NumWaves != B.NumWaves || A.Regions.size() != B.Regions.size())
    return false;
  for (size_t I = 0; I < A.Regions.size(); ++I)
    if (A.Regions[I].Path != B.Regions[I].Path ||
        A.Regions[I].CertifiedClass != B.Regions[I].CertifiedClass)
      return false;
  return true;
}

bool sameBnB(const BranchAndBoundResult &A, const BranchAndBoundResult &B) {
  return A.Certified == B.Certified && A.Refuted == B.Refuted &&
         A.NumVerifierCalls == B.NumVerifierCalls &&
         A.NumLeaves == B.NumLeaves && A.NumWaves == B.NumWaves &&
         std::memcmp(&A.CertifiedVolumeFraction,
                     &B.CertifiedVolumeFraction, sizeof(double)) == 0;
}

} // namespace

int main() {
  std::printf("== bench_split: parallel work-queue split engine ==\n\n");

  int Depth = 9;
  if (const char *Env = std::getenv("CRAFT_SPLIT_DEPTH"))
    Depth = std::max(1, std::atoi(Env));
  const size_t Hardware = ThreadPool::hardwareWorkers();

  Vector Sample;
  int SampleClass = -1;
  MonDeq Model = trainWorkloadModel(Sample, SampleClass);
  CraftConfig Config = workloadConfig();
  const Vector Lo(5, 0.3), Hi(5, 0.7);

  // Global certification workload (the Fig. 11 shape).
  WallTimer T1;
  SplitResult GlobalSerial =
      certifyByDomainSplitting(Model, Config, Lo, Hi, Depth, /*Jobs=*/1);
  double GlobalSerialSec = T1.seconds();
  WallTimer T2;
  SplitResult GlobalParallel =
      certifyByDomainSplitting(Model, Config, Lo, Hi, Depth, /*Jobs=*/-1);
  double GlobalParallelSec = T2.seconds();

  std::printf("global  depth %d: %zu regions, %zu verifier calls, %zu "
              "waves, %.1f%% certified\n",
              Depth, GlobalSerial.Regions.size(),
              GlobalSerial.NumVerifierCalls, GlobalSerial.NumWaves,
              100.0 * GlobalSerial.CertifiedFraction);
  std::printf("global  serial %.3f s, parallel(%zu) %.3f s  ->  %.2fx\n\n",
              GlobalSerialSec, Hardware, GlobalParallelSec,
              GlobalSerialSec / GlobalParallelSec);

  // Branch-and-bound workload: a ball around a correctly classified
  // training sample, wide enough that the root fails and the tree fans
  // out into a mix of certified and undecided leaves (no refutation, so
  // the whole tree is processed).
  Vector BnbLo = Sample, BnbHi = Sample;
  for (size_t I = 0; I < BnbLo.size(); ++I) {
    BnbLo[I] = std::max(BnbLo[I] - 0.012, 0.0);
    BnbHi[I] = std::min(BnbHi[I] + 0.012, 1.0);
  }
  int Target = SampleClass;
  SplitOptions BnbSerial;
  BnbSerial.MaxDepth = Depth;
  BnbSerial.Jobs = 1;
  WallTimer T3;
  BranchAndBoundResult BnbA =
      verifyRobustnessSplit(Model, Config, BnbLo, BnbHi, Target, BnbSerial);
  double BnbSerialSec = T3.seconds();
  SplitOptions BnbParallel = BnbSerial;
  BnbParallel.Jobs = -1;
  WallTimer T4;
  BranchAndBoundResult BnbB =
      verifyRobustnessSplit(Model, Config, BnbLo, BnbHi, Target, BnbParallel);
  double BnbParallelSec = T4.seconds();

  std::printf("bnb     depth %d: %s, %zu verifier calls, %zu leaves\n",
              Depth,
              BnbA.Certified  ? "certified"
              : BnbA.Refuted  ? "refuted"
                              : "undecided",
              BnbA.NumVerifierCalls, BnbA.NumLeaves);
  std::printf("bnb     serial %.3f s, parallel(%zu) %.3f s  ->  %.2fx\n\n",
              BnbSerialSec, Hardware, BnbParallelSec,
              BnbSerialSec / BnbParallelSec);

  char Dims[16];
  std::snprintf(Dims, sizeof(Dims), "d%d", Depth);
  std::vector<benchjson::Record> Records;
  auto record = [&Records, &Dims](const char *Op, double NsPerOp,
                                  const char *Direction = "") {
    benchjson::Record R;
    R.Op = Op;
    R.Dims = Dims;
    R.NsPerOp = NsPerOp;
    R.Direction = Direction;
    Records.push_back(std::move(R));
  };
  record("split_global_serial", GlobalSerialSec * 1e9);
  record("split_global_parallel", GlobalParallelSec * 1e9);
  record("split_bnb_serial", BnbSerialSec * 1e9);
  record("split_bnb_parallel", BnbParallelSec * 1e9);
  // Always emitted, even when the 1-core host skips the >= 1.1x exit
  // bar below: the record is what lets bench_compare see a scaling
  // regression at all, and a missing row is just a "note", not a gate.
  record("split_parallel_speedup", GlobalSerialSec / GlobalParallelSec,
         "higher");
  // Region counts ride the same gate: ns_per_op holds the call count, so
  // a >1.3x explosion in processed regions fails bench_compare even when
  // each call got faster.
  record("split_verifier_calls",
         static_cast<double>(GlobalSerial.NumVerifierCalls));
  benchjson::write("BENCH_split.json", Records);

  // Acceptance bars.
  bool Ok = true;
  if (GlobalSerial.NumVerifierCalls < 64) {
    std::fprintf(stderr,
                 "FAIL: workload too small (%zu regions < 64) — raise "
                 "CRAFT_SPLIT_DEPTH\n",
                 GlobalSerial.NumVerifierCalls);
    Ok = false;
  }
  if (!sameSplit(GlobalSerial, GlobalParallel) || !sameBnB(BnbA, BnbB)) {
    std::fprintf(stderr, "FAIL: serial and parallel outcomes differ — the "
                         "jobs-1-vs-N determinism contract is broken\n");
    Ok = false;
  }
  if (Hardware >= 2) {
    double Speedup = GlobalSerialSec / GlobalParallelSec;
    if (Speedup < 1.1) {
      std::fprintf(stderr,
                   "FAIL: parallel global split only %.2fx vs serial on "
                   "%zu hardware threads (need >= 1.1x)\n",
                   Speedup, Hardware);
      Ok = false;
    }
  } else {
    std::printf("single hardware thread: scaling bar skipped "
                "(determinism bar still enforced)\n");
  }
  std::printf("%s\n", Ok ? "OK" : "FAILED");
  return Ok ? 0 : 1;
}
