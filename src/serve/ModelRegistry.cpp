//===- serve/ModelRegistry.cpp --------------------------------------------===//

#include "serve/ModelRegistry.h"

#include "cert/Certificate.h"
#include "support/FaultInjection.h"

using namespace craft;
using namespace craft::serve;

ModelRegistry::Entry ModelRegistry::get(const std::string &Path) {
  // Injected load failure, checked BEFORE the call_once so the failure is
  // transient: a later request re-enters the real load path and can
  // succeed. (Real load failures stay pinned — a missing file does not
  // heal; an injected fault must.)
  if (fault::at("model.load") == fault::Action::Fail) {
    Entry E;
    E.Error = "injected fault: model load failed for '" + Path + "'";
    return E;
  }

  Pinned *Slot;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Slot = &Entries[Path]; // std::map: reference stays valid forever.
  }
  // The load runs outside the registry mutex — a slow disk read of one
  // model must not serialize requests for already-pinned models — and
  // call_once collapses concurrent first requests into one load. Only
  // the publication into the slot retakes the mutex: loadedCount()
  // walks the slots under it with no call_once ordering of its own.
  std::call_once(Slot->Once, [&] {
    std::optional<MonDeq> Loaded = MonDeq::load(Path);
    std::unique_ptr<MonDeq> Model;
    uint64_t Hash = 0;
    std::string Error;
    if (!Loaded) {
      Error = "cannot load model '" + Path + "'";
    } else {
      Model = std::make_unique<MonDeq>(std::move(*Loaded));
      Hash = hashModel(*Model);
      Model->fbAlphaBound(); // Warm the lazy cache before sharing.
    }
    std::lock_guard<std::mutex> Lock(Mutex);
    Slot->Model = std::move(Model);
    Slot->Hash = Hash;
    Slot->Error = std::move(Error);
  });
  Entry E;
  E.Model = Slot->Model.get();
  E.Hash = Slot->Hash;
  E.Error = Slot->Error;
  return E;
}

size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Entries.size();
}

size_t ModelRegistry::loadedCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  size_t N = 0;
  for (const auto &Entry : Entries)
    if (Entry.second.Model)
      ++N;
  return N;
}
