//===- tests/test_cascade.cpp - Cheap-first domain cascade ----------------===//
//
// The cascade contract: CascadePolicy parsing/resolution is pure and
// canonical, walks always end in the spec's own domain so cascade verdicts
// match direct runs exactly, cheap rungs actually absorb part of a mixed
// batch, and cascade outcomes — including the rung attribution — are
// byte-identical for every worker count.
//
//===----------------------------------------------------------------------===//

#include "data/GaussianMixture.h"
#include "nn/Solvers.h"
#include "nn/Training.h"
#include "support/Rng.h"
#include "tool/Cascade.h"
#include "tool/Driver.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

using namespace craft;

//===----------------------------------------------------------------------===//
// CascadePolicy: parse / render / resolve
//===----------------------------------------------------------------------===//

TEST(CascadePolicyTest, ParseKeywordsAndRungLists) {
  std::optional<CascadePolicy> Off = CascadePolicy::parse("off");
  ASSERT_TRUE(Off.has_value());
  EXPECT_EQ(Off->Mode, CascadeMode::Off);
  EXPECT_FALSE(Off->active());

  std::optional<CascadePolicy> Adapt = CascadePolicy::parse("adapt");
  ASSERT_TRUE(Adapt.has_value());
  EXPECT_EQ(Adapt->Mode, CascadeMode::Adapt);
  EXPECT_TRUE(Adapt->active());

  // `full` is shorthand for the whole cheap prefix.
  std::optional<CascadePolicy> Full = CascadePolicy::parse("full");
  ASSERT_TRUE(Full.has_value());
  EXPECT_EQ(Full->Mode, CascadeMode::Fixed);
  ASSERT_EQ(Full->Rungs.size(), 2u);
  EXPECT_EQ(Full->Rungs[0], VerifierDomain::Box);
  EXPECT_EQ(Full->Rungs[1], VerifierDomain::Zono);

  std::optional<CascadePolicy> List = CascadePolicy::parse("box,zono");
  ASSERT_TRUE(List.has_value());
  EXPECT_EQ(List->Mode, CascadeMode::Fixed);
  ASSERT_EQ(List->Rungs.size(), 2u);
  EXPECT_EQ(List->Rungs[0], VerifierDomain::Box);
  EXPECT_EQ(List->Rungs[1], VerifierDomain::Zono);

  std::optional<CascadePolicy> One = CascadePolicy::parse("box");
  ASSERT_TRUE(One.has_value());
  ASSERT_EQ(One->Rungs.size(), 1u);
}

TEST(CascadePolicyTest, ParseRejectsUnknownAndDuplicateRungs) {
  EXPECT_FALSE(CascadePolicy::parse("hexagon").has_value());
  EXPECT_FALSE(CascadePolicy::parse("box,box").has_value());
  EXPECT_FALSE(CascadePolicy::parse("box,,zono").has_value());
  EXPECT_FALSE(CascadePolicy::parse("").has_value());
  EXPECT_FALSE(CascadePolicy::parse("box zono").has_value());
}

TEST(CascadePolicyTest, RenderIsCanonical) {
  // Unset and Off execute identically, so they share one canonical
  // spelling (and thus one serve cache entry).
  EXPECT_EQ(CascadePolicy{}.render(), "off");
  EXPECT_EQ(CascadePolicy::parse("off")->render(), "off");
  EXPECT_EQ(CascadePolicy::parse("adapt")->render(), "adapt");
  EXPECT_EQ(CascadePolicy::parse("box,zono")->render(), "box,zono");
  // `full` and its expansion are the same query.
  EXPECT_EQ(CascadePolicy::parse("full")->render(),
            CascadePolicy::parse("box,zono")->render());
}

TEST(CascadePolicyTest, ResolveAlwaysEndsInTheFinalDomain) {
  for (const char *Text : {"off", "adapt", "full", "box", "zono", "box,zono"})
    for (VerifierDomain Final :
         {VerifierDomain::Box, VerifierDomain::Zono, VerifierDomain::CHZono})
      for (size_t P : {4u, 300u, 2000u}) {
        std::vector<VerifierDomain> Rungs =
            CascadePolicy::parse(Text)->resolve(Final, P);
        ASSERT_FALSE(Rungs.empty()) << Text;
        EXPECT_EQ(Rungs.back(), Final) << Text;
        // Strictly increasing precision: no rung repeats, none outranks
        // the final domain.
        for (size_t I = 0; I + 1 < Rungs.size(); ++I)
          EXPECT_LT(domainRank(Rungs[I]), domainRank(Rungs[I + 1])) << Text;
      }
}

TEST(CascadePolicyTest, ResolveFiltersRungsAtOrAboveTheFinalDomain) {
  CascadePolicy Full = *CascadePolicy::parse("full");
  // Final Box: nothing is cheaper than Box, single-rung walk.
  EXPECT_EQ(Full.resolve(VerifierDomain::Box, 10).size(), 1u);
  // Final Zono: only Box remains of the cheap prefix.
  std::vector<VerifierDomain> Rungs = Full.resolve(VerifierDomain::Zono, 10);
  ASSERT_EQ(Rungs.size(), 2u);
  EXPECT_EQ(Rungs[0], VerifierDomain::Box);
  // Off: always exactly the final domain.
  EXPECT_EQ(CascadePolicy{}.resolve(VerifierDomain::CHZono, 10).size(), 1u);
}

TEST(CascadePolicyTest, AdaptPicksTheStartingRungFromProblemSize) {
  CascadePolicy Adapt = *CascadePolicy::parse("adapt");
  // Small latent space: full ladder.
  std::vector<VerifierDomain> Small =
      Adapt.resolve(VerifierDomain::CHZono, 64);
  ASSERT_EQ(Small.size(), 3u);
  EXPECT_EQ(Small[0], VerifierDomain::Box);
  EXPECT_EQ(Small[1], VerifierDomain::Zono);
  // Mid-size: the box probe no longer amortizes, start at zonotope.
  std::vector<VerifierDomain> Mid =
      Adapt.resolve(VerifierDomain::CHZono, 512);
  ASSERT_EQ(Mid.size(), 2u);
  EXPECT_EQ(Mid[0], VerifierDomain::Zono);
  // Large: straight to the precise domain.
  std::vector<VerifierDomain> Large =
      Adapt.resolve(VerifierDomain::CHZono, 4096);
  ASSERT_EQ(Large.size(), 1u);
  // Purity: same inputs, same walk (the jobs-1-vs-N anchor).
  EXPECT_EQ(Adapt.resolve(VerifierDomain::CHZono, 512),
            Adapt.resolve(VerifierDomain::CHZono, 512));
}

//===----------------------------------------------------------------------===//
// Driver-level cascade walks
//===----------------------------------------------------------------------===//

namespace {

/// Tiny trained model shared by the cascade tests (same recipe as the
/// batch-driver fixture, separate file so the suites stay independent).
struct CascadeFixture {
  std::string ModelPath = "/tmp/craft_cascade_model.bin";
  std::vector<Vector> Samples;
  std::vector<int> Labels;
};

CascadeFixture &cascadeFixture() {
  static CascadeFixture *F = [] {
    auto *Out = new CascadeFixture;
    Rng DataRng(81);
    Dataset Train = makeGaussianMixture(DataRng, 250, 5, 3);
    Rng InitRng(82);
    MonDeq Model = MonDeq::randomFc(InitRng, 5, 10, 3, 3.0);
    TrainOptions Opts;
    Opts.Epochs = 10;
    Opts.Verbose = false;
    trainMonDeq(Model, Train, Opts);
    Model.save(Out->ModelPath);
    FixpointSolver Solver(Model, Splitting::PeacemanRachford);
    for (size_t I = 0; I < Train.size() && Out->Samples.size() < 8; ++I)
      if (Solver.predict(Train.input(I)) == Train.Labels[I]) {
        Out->Samples.push_back(Train.input(I));
        Out->Labels.push_back(Train.Labels[I]);
      }
    return Out;
  }();
  return *F;
}

VerificationSpec specFor(const CascadeFixture &Fix, size_t Sample,
                         double Epsilon) {
  VerificationSpec Spec;
  Spec.ModelPath = Fix.ModelPath;
  Spec.Center = Fix.Samples[Sample];
  Spec.Epsilon = Epsilon;
  Spec.TargetClass = Fix.Labels[Sample];
  Spec.Alpha1 = 0.5;
  Spec.InLo = Vector(Spec.Center.size());
  Spec.InHi = Vector(Spec.Center.size());
  for (size_t I = 0; I < Spec.Center.size(); ++I) {
    Spec.InLo[I] = std::max(Spec.Center[I] - Epsilon, 0.0);
    Spec.InHi[I] = std::min(Spec.Center[I] + Epsilon, 1.0);
  }
  return Spec;
}

/// A mixed difficulty batch: easy queries a cheap rung can absorb plus
/// hard ones that must escalate to the final domain.
std::vector<VerificationSpec> mixedBatch(const CascadeFixture &Fix) {
  std::vector<VerificationSpec> Specs;
  for (size_t I = 0; I < Fix.Samples.size(); ++I)
    Specs.push_back(specFor(Fix, I, 0.02));
  for (size_t I = 0; I < Fix.Samples.size(); ++I)
    Specs.push_back(specFor(Fix, I, 0.25));
  return Specs;
}

} // namespace

TEST(CascadeDriverTest, VerdictsMatchDirectChzonoRuns) {
  CascadeFixture &Fix = cascadeFixture();
  ASSERT_GE(Fix.Samples.size(), 4u);
  std::vector<VerificationSpec> Direct = mixedBatch(Fix);
  std::vector<VerificationSpec> Cascaded = mixedBatch(Fix);
  for (VerificationSpec &Spec : Cascaded)
    Spec.Cascade = *CascadePolicy::parse("full");

  BatchOptions Serial;
  Serial.Jobs = 1;
  std::vector<RunOutcome> Want = runSpecBatch(Direct, Serial);
  std::vector<RunOutcome> Got = runSpecBatch(Cascaded, Serial);
  ASSERT_EQ(Want.size(), Got.size());
  size_t Certified = 0, CheapHits = 0;
  for (size_t I = 0; I < Want.size(); ++I) {
    // The last rung is the direct run, so the cascade can never flip a
    // verdict in either direction — only answer it earlier.
    EXPECT_EQ(Want[I].Certified, Got[I].Certified) << "query " << I;
    EXPECT_EQ(Want[I].Refuted, Got[I].Refuted) << "query " << I;
    EXPECT_EQ(Want[I].Containment, Got[I].Containment) << "query " << I;
    if (Got[I].Certified) {
      ++Certified;
      EXPECT_FALSE(Got[I].CascadeRung.empty())
          << "certified cascade runs must attribute their rung";
      if (Got[I].CascadeRung != "chzono")
        ++CheapHits;
    }
    // Direct runs never report cascade state.
    EXPECT_TRUE(Want[I].CascadeRung.empty()) << "query " << I;
    EXPECT_EQ(Want[I].CascadeEscalations, 0) << "query " << I;
  }
  ASSERT_GT(Certified, 0u) << "fixture must certify its easy queries";
  // The cascade's reason to exist: cheap rungs absorb part of the batch.
  EXPECT_GT(CheapHits, 0u);
}

TEST(CascadeDriverTest, EscalationPathIsReported) {
  CascadeFixture &Fix = cascadeFixture();
  ASSERT_GE(Fix.Samples.size(), 1u);
  // Hopeless radius: every rung fails, the walk must record one
  // escalation per unsuccessful cheap rung and stay uncertified.
  VerificationSpec Hard = specFor(Fix, 0, 0.45);
  Hard.Cascade = *CascadePolicy::parse("full");
  RunOutcome Out = runSpec(Hard);
  ASSERT_TRUE(Out.ModelLoaded);
  EXPECT_FALSE(Out.Certified);
  EXPECT_EQ(Out.CascadeEscalations, 2) << "box and zono must both escalate";
  EXPECT_TRUE(Out.CascadeRung.empty())
      << "no rung certified, so none is attributed";
  EXPECT_NE(Out.Detail.find("cascade exhausted"), std::string::npos)
      << Out.Detail;

  // An easy query under the same policy stops at a cheap rung and never
  // reaches chzono.
  VerificationSpec Easy = specFor(Fix, 0, 0.02);
  Easy.Cascade = *CascadePolicy::parse("full");
  RunOutcome EasyOut = runSpec(Easy);
  ASSERT_TRUE(EasyOut.ModelLoaded);
  EXPECT_TRUE(EasyOut.Certified);
  EXPECT_NE(EasyOut.CascadeRung, "chzono");
  EXPECT_NE(EasyOut.Detail.find("cascade certified at rung"),
            std::string::npos)
      << EasyOut.Detail;
}

TEST(CascadeDriverTest, JobCountNeverChangesCascadeOutcomes) {
  CascadeFixture &Fix = cascadeFixture();
  ASSERT_GE(Fix.Samples.size(), 4u);
  std::vector<VerificationSpec> Specs = mixedBatch(Fix);
  for (size_t I = 0; I < Specs.size(); ++I)
    Specs[I].Cascade = *CascadePolicy::parse(I % 2 ? "adapt" : "full");

  BatchOptions Serial;
  Serial.Jobs = 1;
  std::vector<RunOutcome> Baseline = runSpecBatch(Specs, Serial);
  for (int Jobs : {2, 4}) {
    BatchOptions Parallel;
    Parallel.Jobs = Jobs;
    std::vector<RunOutcome> Outs = runSpecBatch(Specs, Parallel);
    ASSERT_EQ(Outs.size(), Baseline.size());
    for (size_t I = 0; I < Outs.size(); ++I) {
      EXPECT_EQ(Baseline[I].Certified, Outs[I].Certified) << "query " << I;
      EXPECT_EQ(Baseline[I].Refuted, Outs[I].Refuted) << "query " << I;
      EXPECT_EQ(Baseline[I].CascadeRung, Outs[I].CascadeRung)
          << "query " << I;
      EXPECT_EQ(Baseline[I].CascadeEscalations, Outs[I].CascadeEscalations)
          << "query " << I;
      EXPECT_EQ(Baseline[I].Detail, Outs[I].Detail) << "query " << I;
      EXPECT_EQ(std::memcmp(&Baseline[I].MarginLower, &Outs[I].MarginLower,
                            sizeof(double)),
                0)
          << "query " << I << ": margins differ in some bit";
    }
  }
}

TEST(CascadeDriverTest, SpecDirectivesReachTheDriver) {
  // End-to-end through the parser: `domain` pins the engine's domain and
  // `cascade` arms the walk, byte-identically to setting the fields.
  CascadeFixture &Fix = cascadeFixture();
  VerificationSpec Base = specFor(Fix, 0, 0.02);
  std::string Source = "model " + Fix.ModelPath +
                       "\n"
                       "verifier craft\n"
                       "domain zono\n"
                       "cascade box,zono\n"
                       "alpha1 0.5\n"
                       "output robust " +
                       std::to_string(Base.TargetClass) +
                       "\n"
                       "input box\n";
  auto appendVec = [&](const char *Name, const Vector &V) {
    Source += Name;
    for (size_t I = 0; I < V.size(); ++I) {
      Source += ' ';
      Source += std::to_string(V[I]);
    }
    Source += '\n';
  };
  appendVec("  lo", Base.InLo);
  appendVec("  hi", Base.InHi);
  SpecParseResult Parsed = parseSpec(Source);
  ASSERT_TRUE(Parsed.ok()) << (Parsed.Diagnostics.empty()
                                   ? "?"
                                   : Parsed.Diagnostics[0].Message);
  EXPECT_EQ(Parsed.Spec->Domain, VerifierDomain::Zono);
  EXPECT_EQ(Parsed.Spec->Cascade.render(), "box,zono");

  RunOutcome Out = runSpec(*Parsed.Spec);
  ASSERT_TRUE(Out.ModelLoaded);
  // Final domain Zono: the resolved walk is box -> zono.
  if (Out.Certified) {
    EXPECT_TRUE(Out.CascadeRung == "box" || Out.CascadeRung == "zono")
        << Out.CascadeRung;
  }
}
