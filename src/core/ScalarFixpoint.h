//===- core/ScalarFixpoint.h - Generic scalar fixpoint analysis -*- C++ -*-===//
//
// Part of the Craft reproduction (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Section 3 framework instantiated for *arbitrary* scalar
/// fixpoint iterators over the affine-arithmetic domain: "the above results
/// can be used to construct abstract interpreters for arbitrary locally
/// Lipschitz iterative processes converging to unique fixpoints in finitely
/// many steps" (Section 3). The Householder case study (core/Householder.h)
/// is one instance; this header makes the driver generic and ships several
/// further case studies:
///
///  - a damped linear iterator (exact fixpoint set known in closed form,
///    used to validate the driver),
///  - a damped cosine iterator s' = k cos(s) + x (globally contractive),
///  - a one-neuron tanh equilibrium s' = tanh(w s + x) (the scalar shadow
///    of the App. B.6 tanh-monDEQ pipeline),
///  - Newton's method for sqrt, s' = (s + x/s)/2 (superlinear local
///    contraction, exercises the division transformer),
///  - the Householder reciprocal-sqrt step (cross-checked against the
///    dedicated Section 6.5 implementation).
///
/// The driver mirrors Algorithm 1: iterate the abstract step without joins
/// until exact interval containment (Thm 3.1 — concretizations are
/// intervals in 1-d, so the containment check is exact), then tighten with
/// fixpoint-set-preserving iterations (Thm 3.3). A Kleene baseline with
/// semantic unrolling and a widening probe is provided for comparison.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFT_CORE_SCALARFIXPOINT_H
#define CRAFT_CORE_SCALARFIXPOINT_H

#include "domains/AffineForm.h"

#include <functional>
#include <string>
#include <vector>

namespace craft {

/// A scalar fixpoint program s* = g(x, s*) with matching concrete and
/// abstract step semantics. The abstract step must be a sound transformer
/// of the concrete one; the concrete iteration must converge to a unique
/// fixpoint for every input in the analyzed range (the Section 3
/// prerequisites).
struct ScalarIterator {
  std::string Name;
  std::function<double(double X, double S)> ConcreteStep;
  std::function<AffineForm(const AffineForm &X, const AffineForm &S)>
      AbstractStep;
  /// Initialization s_0 used when Options.InitAtCenterFixpoint is off.
  double S0 = 0.0;
};

/// Analysis knobs (defaults follow the Householder case study).
struct ScalarAnalysisOptions {
  int MaxIterations = 300;
  int TightenSteps = 30;
  /// Initialize the abstract state at the concrete fixpoint of the center
  /// input (Algorithm 1 line 2) instead of at ScalarIterator::S0.
  bool InitAtCenterFixpoint = true;
  /// Consolidate (decorrelate + collapse to a single symbol, the 1-d
  /// Thm 4.1) every r-th phase-1 iteration; 0 disables. Off by default:
  /// the driver's containment check is the slice-wise relational one
  /// (AffineForm::containsRelational), which is sound against correlated
  /// iterates, so consolidation is purely a representation-size control —
  /// and it costs precision on wide inputs where cross-iteration remainder
  /// cancellation matters (e.g. Householder on [16, 25]).
  int ConsolidateEvery = 0;
  /// Expansion (Eq. 10) applied during consolidation: the consolidated
  /// interval is widened by WMul * radius + WAdd (paper defaults, App D.2).
  /// Without expansion a decorrelated iteration can approach its width
  /// equilibrium from below and never strictly contract — the exact failure
  /// mode the paper's "No Expansion" ablation (Table 4) demonstrates.
  double WMul = 1e-3;
  double WAdd = 1e-2;
  /// Kleene semantic-unrolling depth (Kleene driver only).
  int UnrollSteps = 4;
  double DivergenceWidth = 1e9;
  double ContainTol = 1e-15;
};

/// Result of one scalar fixpoint analysis.
struct ScalarAnalysis {
  bool Contained = false; ///< Thm 3.1 post-fixpoint found (sound result).
  int Iterations = 0;     ///< Phase-1 iterations performed.
  double Lo = 0.0, Hi = 0.0; ///< Final fixpoint-set over-approximation.
  /// Per-iteration interval widths (phase 1 then phase 2), for traces.
  std::vector<double> WidthTrace;
};

/// Concrete fixpoint of \p It for input \p X (damped iteration from S0).
double solveScalarConcrete(const ScalarIterator &It, double X,
                           double Tol = 1e-12, int MaxIter = 100000);

/// Craft-style analysis of \p It over the input range [XLo, XHi]:
/// joins-free iteration to containment (Thm 3.1), then tightening
/// (Thm 3.3), keeping the tightest sound abstraction.
ScalarAnalysis analyzeScalarCraft(const ScalarIterator &It, double XLo,
                                  double XHi,
                                  const ScalarAnalysisOptions &Opts = {});

/// Kleene baseline: semantic unrolling, then joins with a widening probe.
ScalarAnalysis analyzeScalarKleene(const ScalarIterator &It, double XLo,
                                   double XHi,
                                   const ScalarAnalysisOptions &Opts = {});

//===----------------------------------------------------------------------===//
// Case-study iterators
//===----------------------------------------------------------------------===//

/// s' = (1 - d) s + d (a s + b x): affine in (x, s), contractive for
/// |1 - d + d a| < 1, with exact fixpoint s*(x) = b x / (1 - a). The
/// abstract transformer is exact (no nonlinear remainder), so the analysis
/// must converge to the exact fixpoint set — the driver's ground truth.
ScalarIterator makeDampedLinearIterator(double A = 0.5, double B = 1.0,
                                        double Damping = 1.0);

/// s' = k cos(s) + x, globally contractive for |k| < 1 (|d/ds| <= |k|).
ScalarIterator makeDampedCosineIterator(double K = 0.5);

/// s' = tanh(w s + x), contractive for |w| < 1: a one-neuron tanh
/// equilibrium model (scalar shadow of App. B.6).
ScalarIterator makeTanhNeuronIterator(double W = 0.8);

/// Newton's method for sqrt(x): s' = (s + x / s) / 2. Requires x > 0 and
/// an initialization near the root (use InitAtCenterFixpoint).
ScalarIterator makeNewtonSqrtIterator();

/// One Householder reciprocal-sqrt step (the Section 6.5 program),
/// converging to 1/sqrt(x).
ScalarIterator makeHouseholderIterator();

} // namespace craft

#endif // CRAFT_CORE_SCALARFIXPOINT_H
