//===- tests/test_linalg_kernels.cpp - Kernel/view/workspace tests --------===//
//
// Coverage for the allocation-free linalg kernel layer: destination-passing
// kernels against reference loops, zero-copy view slicing against
// whole-matrix results, zero-dimension edge cases, aliasing contracts
// (asserted in debug builds), and workspace reuse across repeated calls.
//
//===----------------------------------------------------------------------===//

#include "linalg/KernelBackends.h"
#include "linalg/Kernels.h"
#include "linalg/KernelsBatched.h"
#include "linalg/Views.h"
#include "linalg/Workspace.h"

#include "domains/CHZonotope.h"
#include "support/Rng.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

using namespace craft;

namespace {

Matrix randomMatrix(Rng &R, size_t Rows, size_t Cols, double Scale = 1.0) {
  Matrix M(Rows, Cols);
  for (size_t I = 0; I < Rows; ++I)
    for (size_t J = 0; J < Cols; ++J)
      M(I, J) = R.gaussian(0.0, Scale);
  return M;
}

Vector randomVector(Rng &R, size_t N, double Scale = 1.0) {
  Vector V(N);
  for (size_t I = 0; I < N; ++I)
    V[I] = R.gaussian(0.0, Scale);
  return V;
}

/// Reference j-i-k triple loop, deliberately different from the kernel's
/// blocked i-k-j order.
Matrix refMatmul(const Matrix &A, const Matrix &B) {
  Matrix Out(A.rows(), B.cols());
  for (size_t J = 0; J < B.cols(); ++J)
    for (size_t I = 0; I < A.rows(); ++I) {
      double Sum = 0.0;
      for (size_t K = 0; K < A.cols(); ++K)
        Sum += A(I, K) * B(K, J);
      Out(I, J) = Sum;
    }
  return Out;
}

//===----------------------------------------------------------------------===//
// gemm
//===----------------------------------------------------------------------===//

TEST(Gemm, MatchesReferenceProduct) {
  Rng R(7);
  // Odd extents on purpose: 33 rows exercise the microtile row remainder
  // and 41 columns the lane remainder of the packed panel.
  Matrix A = randomMatrix(R, 33, 150);
  Matrix B = randomMatrix(R, 150, 41);
  Matrix Out(33, 41);
  kernels::gemm(Out, A, B);
  EXPECT_LT((Out - refMatmul(A, B)).maxAbs(), 1e-12);
}

TEST(Gemm, AlphaBetaSemantics) {
  Rng R(8);
  Matrix A = randomMatrix(R, 9, 11);
  Matrix B = randomMatrix(R, 11, 6);
  Matrix Prior = randomMatrix(R, 9, 6);
  Matrix Out = Prior;
  kernels::gemm(Out, A, B, 2.0, 0.5);
  Matrix Expect = 2.0 * (A * B) + 0.5 * Prior;
  EXPECT_LT((Out - Expect).maxAbs(), 1e-12);
}

TEST(Gemm, BetaZeroIgnoresGarbageOutput) {
  Rng R(9);
  Matrix A = randomMatrix(R, 5, 5);
  Matrix B = randomMatrix(R, 5, 5);
  Matrix Out(5, 5, 1e300); // Poisoned: beta = 0 must overwrite, not read.
  kernels::gemm(Out, A, B);
  EXPECT_LT((Out - refMatmul(A, B)).maxAbs(), 1e-12);
}

TEST(Gemm, SparseAwareIsBitwiseIdenticalToDense) {
  Rng R(10);
  Matrix A = randomMatrix(R, 20, 30);
  // Realistic structural sparsity: zero out most entries exactly.
  for (size_t I = 0; I < A.rows(); ++I)
    for (size_t J = 0; J < A.cols(); ++J)
      if ((I + J) % 3 != 0)
        A(I, J) = 0.0;
  Matrix B = randomMatrix(R, 30, 17);
  Matrix Dense(20, 17), Sparse(20, 17);
  kernels::gemm(Dense, A, B);
  kernels::gemmSparseAware(Sparse, A, B);
  for (size_t I = 0; I < Dense.rows(); ++I)
    for (size_t J = 0; J < Dense.cols(); ++J)
      EXPECT_EQ(Dense(I, J), Sparse(I, J));
}

TEST(Gemm, ZeroDimensions) {
  // Inner dimension zero: the product is the zero matrix.
  Matrix A(4, 0), B(0, 3);
  Matrix Out(4, 3, 7.0);
  kernels::gemm(Out, A, B);
  EXPECT_EQ(Out.maxAbs(), 0.0);
  // Zero-row and zero-column outputs must be accepted.
  Matrix Empty(0, 3);
  kernels::gemm(Empty, Matrix(0, 5), Matrix(5, 3));
  Matrix NoCols(3, 0);
  kernels::gemm(NoCols, Matrix(3, 5), Matrix(5, 0));
  SUCCEED();
}

//===----------------------------------------------------------------------===//
// gemv / gemvAbs / axpy / scale
//===----------------------------------------------------------------------===//

TEST(Gemv, MatchesOperatorAndAccumulates) {
  Rng R(11);
  Matrix M = randomMatrix(R, 13, 21);
  Vector V = randomVector(R, 21);
  Vector Out(13);
  kernels::gemv(Out, M, V);
  Vector Expect = M * V;
  for (size_t I = 0; I < Out.size(); ++I)
    EXPECT_DOUBLE_EQ(Out[I], Expect[I]);

  Vector Acc = randomVector(R, 13);
  Vector Expect2 = Acc + 3.0 * (M * V);
  kernels::gemv(Acc, M, V, 3.0, 1.0);
  for (size_t I = 0; I < Acc.size(); ++I)
    EXPECT_NEAR(Acc[I], Expect2[I], 1e-12);
}

TEST(Gemv, EmptyDimensions) {
  Vector Out;
  kernels::gemv(Out, Matrix(), Vector());
  Vector Out2(3, 5.0);
  kernels::gemv(Out2, Matrix(3, 0), Vector());
  for (size_t I = 0; I < 3; ++I)
    EXPECT_EQ(Out2[I], 0.0); // Empty sum, beta = 0: overwritten with 0.
}

TEST(GemvAbs, NeverMaterializesAbsMatrix) {
  Rng R(12);
  Matrix M = randomMatrix(R, 10, 14);
  Vector V = randomVector(R, 14);
  Vector Out(10);
  kernels::gemvAbs(Out, M, V);
  Vector Expect = M.abs() * V;
  for (size_t I = 0; I < Out.size(); ++I)
    EXPECT_EQ(Out[I], Expect[I]); // Bitwise: same reduction order.
}

TEST(AxpyScale, MatchReference) {
  Rng R(13);
  Vector Y = randomVector(R, 17), X = randomVector(R, 17);
  Vector Expect = Y + (-2.5) * X;
  kernels::axpy(Y, -2.5, X);
  for (size_t I = 0; I < Y.size(); ++I)
    EXPECT_EQ(Y[I], Expect[I]);
  Vector Scaled = X;
  kernels::scale(Scaled, 0.25);
  for (size_t I = 0; I < X.size(); ++I)
    EXPECT_EQ(Scaled[I], 0.25 * X[I]);
}

//===----------------------------------------------------------------------===//
// transposeInto / rowAbsSumsInto / copy / fill
//===----------------------------------------------------------------------===//

TEST(TransposeInto, MatchesAllocatingTranspose) {
  Rng R(14);
  Matrix M = randomMatrix(R, 7, 12);
  Matrix Out(12, 7);
  kernels::transposeInto(Out, M);
  EXPECT_EQ((Out - M.transpose()).maxAbs(), 0.0);
}

TEST(RowAbsSums, BetaAccumulates) {
  Rng R(15);
  Matrix M = randomMatrix(R, 6, 9);
  Vector Out(6, 10.0);
  kernels::rowAbsSumsInto(Out, M, 1.0);
  Vector Expect = M.rowAbsSums();
  for (size_t I = 0; I < 6; ++I)
    EXPECT_DOUBLE_EQ(Out[I], Expect[I] + 10.0);
}

//===----------------------------------------------------------------------===//
// Views: zero-copy slicing
//===----------------------------------------------------------------------===//

TEST(Views, BlockSlicingMatchesWholeMatrixResults) {
  Rng R(16);
  Matrix M = randomMatrix(R, 10, 16);
  // colRange view vs the allocating colRange copy.
  ConstMatrixView View = ConstMatrixView(M).colRange(3, 7);
  Matrix Copy = M.colRange(3, 7);
  ASSERT_EQ(View.rows(), Copy.rows());
  ASSERT_EQ(View.cols(), Copy.cols());
  EXPECT_EQ(View.stride(), M.cols()); // Zero-copy: parent stride.
  EXPECT_EQ(View.data(), M.rowData(0) + 3);
  for (size_t I = 0; I < View.rows(); ++I)
    for (size_t J = 0; J < View.cols(); ++J)
      EXPECT_EQ(View(I, J), Copy(I, J));
}

TEST(Views, StridedGemmMatchesWholeMatrixGemm) {
  Rng R(17);
  Matrix A = randomMatrix(R, 6, 20);
  Matrix B = randomMatrix(R, 8, 11);
  // Multiply a column slice of A (strided view) against a block of B.
  ConstMatrixView ASlice = ConstMatrixView(A).colRange(5, 8);
  ConstMatrixView BBlock = ConstMatrixView(B).block(0, 2, 8, 9);
  Matrix Out(6, 9);
  kernels::gemm(Out, ASlice, BBlock);
  Matrix Expect = A.colRange(5, 8) * B.colRange(2, 9);
  EXPECT_EQ((Out - Expect).maxAbs(), 0.0);
}

TEST(Views, StridedDestination) {
  Rng R(18);
  Matrix A = randomMatrix(R, 4, 5);
  Matrix B = randomMatrix(R, 5, 3);
  // Write the product into the middle columns of a wider matrix.
  Matrix Wide(4, 9, -1.0);
  kernels::gemm(MatrixView(Wide).colRange(3, 3), A, B);
  Matrix Expect = A * B;
  for (size_t I = 0; I < 4; ++I) {
    for (size_t J = 0; J < 3; ++J)
      EXPECT_EQ(Wide(I, 3 + J), Expect(I, J));
    EXPECT_EQ(Wide(I, 0), -1.0); // Surroundings untouched.
    EXPECT_EQ(Wide(I, 8), -1.0);
  }
}

TEST(Views, VectorSlice) {
  Vector V{1.0, 2.0, 3.0, 4.0, 5.0};
  ConstVectorView S = ConstVectorView(V).slice(1, 3);
  ASSERT_EQ(S.size(), 3u);
  EXPECT_EQ(S[0], 2.0);
  EXPECT_EQ(S[2], 4.0);
  EXPECT_EQ(S.data(), V.data() + 1);
}

//===----------------------------------------------------------------------===//
// Aliasing contract
//===----------------------------------------------------------------------===//

// gemm/gemv outputs must not overlap their inputs: the kernels read inputs
// while writing the output, so an aliased call would consume partially
// written data. The contract is enforced by assertions, which only fire in
// debug builds (the ASan/UBSan CI job); release builds document it here.
#ifndef NDEBUG
TEST(AliasingDeathTest, GemmOutputOverlappingInputAsserts) {
  Matrix A(4, 4, 1.0);
  EXPECT_DEATH(kernels::gemm(A, A, A), "alias");
}

TEST(AliasingDeathTest, GemvOutputOverlappingInputAsserts) {
  Matrix M(3, 3, 1.0);
  VectorView Row(M.rowData(0), 3);
  EXPECT_DEATH(kernels::gemv(Row, M, Vector(3, 1.0)), "alias");
}
#endif

//===----------------------------------------------------------------------===//
// Workspace
//===----------------------------------------------------------------------===//

TEST(Workspace, ReuseAcrossRepeatedCalls) {
  Workspace &W = Workspace::threadLocal();
  // Warm up, then verify repeated identical scopes reuse identical storage
  // (pointer-stable, no capacity growth).
  double *FirstPtr = nullptr;
  {
    WorkspaceScope WS(W);
    FirstPtr = WS.alloc(256);
  }
  size_t CapAfterWarmup = W.capacity();
  for (int Round = 0; Round < 10; ++Round) {
    WorkspaceScope WS(W);
    MatrixView M = WS.matrix(8, 16);
    VectorView V = WS.vector(128);
    EXPECT_EQ(M.data(), FirstPtr); // Rewound to the same offset.
    kernels::fill(M, 1.0);
    kernels::fill(V, 2.0);
  }
  EXPECT_EQ(W.capacity(), CapAfterWarmup);
}

TEST(Workspace, NestedScopesAreStackDiscipline) {
  Workspace &W = Workspace::threadLocal();
  WorkspaceScope Outer(W);
  VectorView A = Outer.vector(16);
  kernels::fill(A, 42.0);
  {
    WorkspaceScope Inner(W);
    VectorView B = Inner.vector(1 << 20); // Forces fresh-block growth.
    kernels::fill(B, 7.0);
    // Outer buffer must be untouched even though the arena grew.
    for (size_t I = 0; I < A.size(); ++I)
      EXPECT_EQ(A[I], 42.0);
  }
  // After the inner scope dies, the outer scope can keep allocating.
  VectorView C = Outer.vector(16);
  kernels::fill(C, 3.0);
  for (size_t I = 0; I < A.size(); ++I)
    EXPECT_EQ(A[I], 42.0);
}

TEST(Workspace, ZeroInitializedVariants) {
  WorkspaceScope WS;
  // Poison, rewind, and re-request: zeroMatrix must actually clear.
  {
    WorkspaceScope Poison;
    VectorView P = Poison.vector(64);
    kernels::fill(P, 1e300);
  }
  MatrixView M = WS.zeroMatrix(4, 8);
  VectorView V = WS.zeroVector(16);
  for (size_t I = 0; I < 4; ++I)
    for (size_t J = 0; J < 8; ++J)
      EXPECT_EQ(M(I, J), 0.0);
  for (size_t I = 0; I < 16; ++I)
    EXPECT_EQ(V[I], 0.0);
}

TEST(Workspace, ZeroSizedRequests) {
  WorkspaceScope WS;
  EXPECT_EQ(WS.alloc(0), nullptr);
  VectorView V = WS.vector(0);
  EXPECT_TRUE(V.empty());
  MatrixView M = WS.matrix(0, 5);
  EXPECT_TRUE(M.empty());
}

//===----------------------------------------------------------------------===//
// Backend equivalence: scalar vs dispatched SIMD vs ThreadPool-tiled
//===----------------------------------------------------------------------===//

// Every compiled-and-runnable backend table must produce byte-identical
// outputs to the scalar reference table — same per-element reduction
// order, no FMA contraction — on random, strided, unaligned-offset, and
// zero-dimension views. Byte-identical means bit patterns, not ==: these
// helpers memcmp, so a -0.0 vs +0.0 divergence fails too.

void expectBitEqual(ConstMatrixView A, ConstMatrixView B) {
  ASSERT_EQ(A.rows(), B.rows());
  ASSERT_EQ(A.cols(), B.cols());
  if (A.empty())
    return; // memcmp on empty views would pass null pointers (UB).
  for (size_t R = 0; R < A.rows(); ++R)
    EXPECT_EQ(0, std::memcmp(A.row(R), B.row(R), A.cols() * sizeof(double)))
        << "row " << R << " differs";
}

void expectBitEqual(ConstVectorView A, ConstVectorView B) {
  ASSERT_EQ(A.size(), B.size());
  if (A.empty())
    return;
  EXPECT_EQ(0, std::memcmp(A.data(), B.data(), A.size() * sizeof(double)));
}

std::vector<kernels::KernelBackend> availableBackends() {
  std::vector<kernels::KernelBackend> Backends;
  for (auto B : {kernels::KernelBackend::Scalar, kernels::KernelBackend::Avx2,
                 kernels::KernelBackend::Avx512})
    if (kernels::kernelTableFor(B))
      Backends.push_back(B);
  return Backends;
}

class BackendEquivalence
    : public ::testing::TestWithParam<kernels::KernelBackend> {
protected:
  const kernels::KernelTable &Table =
      *kernels::kernelTableFor(GetParam());
  const kernels::KernelTable &Ref =
      *kernels::kernelTableFor(kernels::KernelBackend::Scalar);
};

INSTANTIATE_TEST_SUITE_P(
    Backends, BackendEquivalence, ::testing::ValuesIn(availableBackends()),
    [](const ::testing::TestParamInfo<kernels::KernelBackend> &Info) {
      return kernels::kernelBackendName(Info.param);
    });

TEST_P(BackendEquivalence, GemmBitwiseMatchesScalar) {
  Rng R(101);
  const struct {
    size_t M, K, N;
  } Shapes[] = {{1, 1, 1},   {3, 5, 2},    {7, 13, 5},  {33, 150, 41},
                {64, 64, 64}, {4, 48, 96}, {5, 3, 200}, {87, 87, 174}};
  const struct {
    double Alpha, Beta;
  } Coeffs[] = {{1.0, 0.0}, {2.0, 0.5}, {1.0, 1.0}, {-0.25, 2.0}};
  for (const auto &S : Shapes) {
    Matrix A = randomMatrix(R, S.M, S.K);
    Matrix B = randomMatrix(R, S.K, S.N);
    for (const auto &C : Coeffs) {
      Matrix Prior = randomMatrix(R, S.M, S.N);
      Matrix OutRef = Prior, Out = Prior;
      Ref.Gemm(OutRef, A, B, C.Alpha, C.Beta);
      Table.Gemm(Out, A, B, C.Alpha, C.Beta);
      expectBitEqual(Out, OutRef);
      OutRef = Prior;
      Out = Prior;
      Ref.GemmSparse(OutRef, A, B, C.Alpha, C.Beta);
      Table.GemmSparse(Out, A, B, C.Alpha, C.Beta);
      expectBitEqual(Out, OutRef);
    }
  }
}

TEST_P(BackendEquivalence, GemmStridedUnalignedViews) {
  Rng R(102);
  // Operands and destination carved out of larger parents at column
  // offset 1: every row pointer is 8-byte-aligned but not 16/32/64-byte
  // aligned, and every view is strided.
  Matrix AParent = randomMatrix(R, 30, 60);
  Matrix BParent = randomMatrix(R, 40, 90);
  ConstMatrixView A = ConstMatrixView(AParent).block(1, 1, 23, 37);
  ConstMatrixView B = ConstMatrixView(BParent).block(2, 1, 37, 83);
  Matrix OutRefParent(25, 90, -7.0), OutParent(25, 90, -7.0);
  Ref.Gemm(MatrixView(OutRefParent).block(1, 1, 23, 83), A, B, 1.5, 0.0);
  Table.Gemm(MatrixView(OutParent).block(1, 1, 23, 83), A, B, 1.5, 0.0);
  // Whole-parent comparison: identical results and untouched surroundings.
  expectBitEqual(OutParent, OutRefParent);
}

TEST_P(BackendEquivalence, GemmZeroDimensions) {
  Matrix Out(4, 3, 7.0), OutRef(4, 3, 7.0);
  Table.Gemm(Out, Matrix(4, 0), Matrix(0, 3), 1.0, 0.0);
  Ref.Gemm(OutRef, Matrix(4, 0), Matrix(0, 3), 1.0, 0.0);
  expectBitEqual(Out, OutRef);
  EXPECT_EQ(Out.maxAbs(), 0.0); // K = 0, beta = 0: zeros, not garbage.
  Matrix Empty(0, 3), EmptyRef(0, 3);
  Table.Gemm(Empty, Matrix(0, 5), Matrix(5, 3), 1.0, 0.0);
  Matrix NoCols(3, 0);
  Table.Gemm(NoCols, Matrix(3, 5), Matrix(5, 0), 1.0, 0.0);
  SUCCEED();
}

TEST_P(BackendEquivalence, GemvFamilyBitwiseMatchesScalar) {
  Rng R(103);
  for (size_t Rows : {1u, 2u, 3u, 5u, 8u, 9u, 31u, 87u})
    for (size_t Cols : {1u, 4u, 17u, 64u}) {
      Matrix M = randomMatrix(R, Rows, Cols);
      Vector V = randomVector(R, Cols);
      Vector Prior = randomVector(R, Rows);
      for (double Beta : {0.0, 1.0, -0.5}) {
        Vector OutRef = Prior, Out = Prior;
        Ref.Gemv(OutRef, M, V, 1.25, Beta);
        Table.Gemv(Out, M, V, 1.25, Beta);
        expectBitEqual(Out, OutRef);
        OutRef = Prior;
        Out = Prior;
        Ref.GemvAbs(OutRef, M, V, 1.25, Beta);
        Table.GemvAbs(Out, M, V, 1.25, Beta);
        expectBitEqual(Out, OutRef);
        OutRef = Prior;
        Out = Prior;
        Ref.RowAbsSums(OutRef, M, Beta);
        Table.RowAbsSums(Out, M, Beta);
        expectBitEqual(Out, OutRef);
      }
      // Strided matrix operand (column sub-range of a wider parent).
      if (Cols >= 4) {
        ConstMatrixView MV = ConstMatrixView(M).colRange(1, Cols - 2);
        Vector VS = randomVector(R, Cols - 2);
        Vector OutRef = Prior, Out = Prior;
        Ref.GemvAbs(OutRef, MV, VS, 1.0, 0.0);
        Table.GemvAbs(Out, MV, VS, 1.0, 0.0);
        expectBitEqual(Out, OutRef);
      }
    }
  // Zero-dimension edges.
  Vector Empty, EmptyRef;
  Table.Gemv(Empty, Matrix(), Vector(), 1.0, 0.0);
  Vector Out3(3, 5.0), Out3Ref(3, 5.0);
  Table.Gemv(Out3, Matrix(3, 0), Vector(), 1.0, 0.0);
  Ref.Gemv(Out3Ref, Matrix(3, 0), Vector(), 1.0, 0.0);
  expectBitEqual(Out3, Out3Ref);
}

TEST_P(BackendEquivalence, VectorKernelsBitwiseMatchScalar) {
  Rng R(104);
  for (size_t N : {0u, 1u, 3u, 4u, 7u, 8u, 9u, 64u, 201u}) {
    Vector X = randomVector(R, N);
    Vector YRef = randomVector(R, N);
    Vector Y = YRef;
    Ref.Axpy(YRef, -2.5, X);
    Table.Axpy(Y, -2.5, X);
    expectBitEqual(Y, YRef);

    Vector SRef = X, S = X;
    Ref.Scale(SRef, 0.3);
    Table.Scale(S, 0.3);
    expectBitEqual(S, SRef);

    const double MaxRef = Ref.NormInf(X);
    const double Max = Table.NormInf(X);
    EXPECT_EQ(0, std::memcmp(&Max, &MaxRef, sizeof(double)));
  }
}

// The ThreadPool-tiled paths must be byte-identical to the untiled active
// backend for every tile count — the partition never changes any
// per-element reduction order.
TEST(TiledKernels, GemmTiledBitwiseMatchesUntiled) {
  Rng R(105);
  Matrix A = randomMatrix(R, 33, 70);
  Matrix B = randomMatrix(R, 70, 131);
  Matrix Prior = randomMatrix(R, 33, 131);
  Matrix Untiled = Prior;
  kernels::gemm(Untiled, A, B, 1.5, 0.5);
  for (size_t Tiles : {2u, 3u, 7u, 200u}) { // 200 > cols: empty tails.
    Matrix Out = Prior;
    kernels::detail::gemmTiled(Out, A, B, 1.5, 0.5, Tiles);
    expectBitEqual(Out, Untiled);
  }
}

TEST(TiledKernels, GemvAbsTiledBitwiseMatchesUntiled) {
  Rng R(106);
  Matrix M = randomMatrix(R, 131, 40);
  Vector V = randomVector(R, 40);
  Vector Prior = randomVector(R, 131);
  Vector Untiled = Prior;
  kernels::gemvAbs(Untiled, M, V, 2.0, 1.0);
  for (size_t Tiles : {2u, 5u, 131u, 500u}) {
    Vector Out = Prior;
    kernels::detail::gemvAbsTiled(Out, M, V, 2.0, 1.0, Tiles);
    expectBitEqual(Out, Untiled);
  }
}

TEST(GemmAuto, AllHintsBitwiseMatchExplicitKernels) {
  Rng R(107);
  // Dense left operand.
  Matrix ADense = randomMatrix(R, 20, 30);
  // Structurally sparse left operand (sign-split-like 2/3 zeros).
  Matrix ASparse = ADense;
  for (size_t I = 0; I < ASparse.rows(); ++I)
    for (size_t J = 0; J < ASparse.cols(); ++J)
      if ((I + J) % 3 != 0)
        ASparse(I, J) = 0.0;
  Matrix B = randomMatrix(R, 30, 17);
  for (const Matrix *A : {&ADense, &ASparse}) {
    Matrix Expect(20, 17);
    kernels::gemm(Expect, *A, B);
    for (auto Hint : {kernels::DensityHint::Probe, kernels::DensityHint::Dense,
                      kernels::DensityHint::Sparse}) {
      Matrix Out(20, 17);
      kernels::gemmAuto(Out, *A, B, 1.0, 0.0, Hint);
      expectBitEqual(Out, Expect);
    }
  }
}

TEST(BackendDispatch, ActiveBackendIsRunnableAndPublicApiUsesIt) {
  const kernels::KernelBackend Active = kernels::activeKernelBackend();
  ASSERT_NE(kernels::kernelTableFor(Active), nullptr);
  EXPECT_STRNE(kernels::kernelBackendName(Active), "unknown");
  EXPECT_GE(kernels::kernelThreadCount(), 1u);
  // The public entry points route through the active table.
  Rng R(108);
  Matrix A = randomMatrix(R, 9, 11), B = randomMatrix(R, 11, 13);
  Matrix ViaPublic(9, 13), ViaTable(9, 13);
  kernels::gemm(ViaPublic, A, B);
  kernels::kernelTableFor(Active)->Gemm(ViaTable, A, B, 1.0, 0.0);
  expectBitEqual(ViaPublic, ViaTable);
}

//===----------------------------------------------------------------------===//
// Kernel-layer integration with the domain layer
//===----------------------------------------------------------------------===//

TEST(LinearCombine, NullMatrixIsIdentity) {
  resetErrorTermIds();
  CHZonotope Z = CHZonotope::fromBox(Vector{0.0, -1.0, 2.0},
                                     Vector{1.0, 1.0, 2.5});
  Matrix I = Matrix::identity(3);
  Vector Offset{0.5, -0.5, 0.0};

  std::pair<const Matrix *, const CHZonotope *> Explicit[] = {{&I, &Z}};
  CHZonotope A = CHZonotope::linearCombine(Explicit, Offset);
  std::pair<const Matrix *, const CHZonotope *> Implicit[] = {{nullptr, &Z}};
  CHZonotope B = CHZonotope::linearCombine(Implicit, Offset);

  ASSERT_EQ(A.dim(), B.dim());
  ASSERT_EQ(A.numGenerators(), B.numGenerators());
  for (size_t I2 = 0; I2 < A.dim(); ++I2) {
    EXPECT_EQ(A.center()[I2], B.center()[I2]);
    EXPECT_EQ(A.boxRadius()[I2], B.boxRadius()[I2]);
    for (size_t J = 0; J < A.numGenerators(); ++J)
      EXPECT_EQ(A.generators()(I2, J), B.generators()(I2, J));
  }
  EXPECT_EQ(A.termIds(), B.termIds());
}

//===----------------------------------------------------------------------===//
// Batched gemm: fusion must be byte-identical to the looped kernels
//===----------------------------------------------------------------------===//

// Every gemmBatched result below is compared bitwise against looping
// kernels::gemm over the same problems — the batched tier's whole
// contract is that grouping, pack sharing, and fan-out are structure-only
// and never change any per-element reduction order.

/// Runs \p Problems both ways — batched into the problems' own outputs,
/// looped into \p Expected (parallel array of same-shaped matrices) — and
/// compares bitwise.
void expectBatchedMatchesLooped(std::vector<kernels::GemmProblem> &Problems,
                                std::vector<Matrix> &Expected) {
  ASSERT_EQ(Problems.size(), Expected.size());
  for (size_t I = 0; I < Problems.size(); ++I)
    kernels::gemm(Expected[I], Problems[I].A, Problems[I].B,
                  Problems[I].Alpha, Problems[I].Beta);
  kernels::gemmBatched(Problems);
  for (size_t I = 0; I < Problems.size(); ++I)
    expectBitEqual(ConstMatrixView(Problems[I].Out), ConstMatrixView(Expected[I]));
}

TEST(BatchedGemm, SharedAGroupBitwiseMatchesLooped) {
  Rng R(201);
  // One model-layer matrix, many queries: each member holds its *own
  // copy* of A (distinct storage, equal content — exactly the serve
  // shape, where every query owns its solver's state matrix), its own B
  // of ragged width, and its own Alpha.
  Matrix AMaster = randomMatrix(R, 33, 50);
  std::vector<Matrix> ACopies(7, AMaster);
  std::vector<Matrix> Bs, Outs, Expected;
  const size_t Widths[] = {1, 5, 17, 41, 64, 65, 130};
  for (size_t I = 0; I < 7; ++I) {
    Bs.push_back(randomMatrix(R, 50, Widths[I]));
    Outs.emplace_back(33, Widths[I], 1e300); // Poison: Beta = 0 overwrites.
    Expected.emplace_back(33, Widths[I]);
  }
  std::vector<kernels::GemmProblem> Problems;
  for (size_t I = 0; I < 7; ++I)
    Problems.push_back({Outs[I], ACopies[I], Bs[I], 0.5 * double(I + 1), 0.0});
  kernels::resetBatchGemmStats();
  expectBatchedMatchesLooped(Problems, Expected);
  const kernels::BatchGemmStats S = kernels::batchGemmStats();
  EXPECT_EQ(S.SharedGroups, 1u);
  EXPECT_EQ(S.FusedProblems, 7u);
  EXPECT_EQ(S.PlainProblems, 0u);
  // The whole point: one shared pack instead of one per member.
  EXPECT_LT(S.PanelsPackedShared, S.PanelsPackedUnshared);
}

TEST(BatchedGemm, SharedBGroupKeepsPerMemberAlphaBeta) {
  Rng R(202);
  // Shared right operand, per-member accumulation: Beta != 0 members are
  // shared-B eligible (only shared-A requires Beta == 0).
  Matrix BMaster = randomMatrix(R, 40, 70);
  std::vector<Matrix> BCopies(5, BMaster);
  std::vector<Matrix> As, Outs, Expected;
  const double Alphas[] = {1.0, -0.25, 2.0, 1.0, 0.5};
  const double Betas[] = {1.0, 0.5, -1.0, 2.0, 0.25};
  for (size_t I = 0; I < 5; ++I) {
    As.push_back(randomMatrix(R, 9 + 3 * I, 40));
    Matrix Prior = randomMatrix(R, 9 + 3 * I, 70);
    Outs.push_back(Prior);
    Expected.push_back(Prior); // Same prior contents: Beta reads them.
  }
  std::vector<kernels::GemmProblem> Problems;
  for (size_t I = 0; I < 5; ++I)
    Problems.push_back({Outs[I], As[I], BCopies[I], Alphas[I], Betas[I]});
  kernels::resetBatchGemmStats();
  expectBatchedMatchesLooped(Problems, Expected);
  const kernels::BatchGemmStats S = kernels::batchGemmStats();
  EXPECT_EQ(S.SharedGroups, 1u);
  EXPECT_EQ(S.FusedProblems, 5u);
  EXPECT_LT(S.PanelsPackedShared, S.PanelsPackedUnshared);
}

TEST(BatchedGemm, MixedBatchGroupsAndLeftovers) {
  Rng R(203);
  // A realistic admission mix: a shared-A clique, a shared-B clique, a
  // Beta != 0 problem whose A matches the clique (must fall out of the
  // shared-A pass), and fully distinct leftovers.
  Matrix A1 = randomMatrix(R, 20, 30);
  Matrix A1Copy = A1;
  Matrix B1 = randomMatrix(R, 25, 35);
  Matrix B1Copy = B1;
  std::vector<Matrix> Outs, Expected;
  // Problems hold views into Outs: reserve so growth never relocates.
  Outs.reserve(8);
  Expected.reserve(8);
  std::vector<kernels::GemmProblem> Problems;
  auto add = [&](size_t M, size_t N) -> size_t {
    Outs.emplace_back(M, N, 0.0);
    Expected.emplace_back(M, N, 0.0);
    return Outs.size() - 1;
  };
  Matrix B2 = randomMatrix(R, 30, 12), B3 = randomMatrix(R, 30, 28);
  Problems.push_back({Outs[add(20, 12)], A1, B2, 1.0, 0.0});
  Problems.push_back({Outs[add(20, 28)], A1Copy, B3, -2.0, 0.0});
  Matrix A2 = randomMatrix(R, 8, 25), A3 = randomMatrix(R, 14, 25);
  Problems.push_back({Outs[add(8, 35)], A2, B1, 1.0, 0.0});
  Problems.push_back({Outs[add(14, 35)], A3, B1Copy, 1.0, 0.0});
  // A matches the shared-A clique but Beta != 0: accumulates into Out.
  Matrix B4 = randomMatrix(R, 30, 12);
  Problems.push_back({Outs[add(20, 12)], A1, B4, 1.0, 1.0});
  // Distinct leftover + K == 0 degenerate (plain path).
  Matrix A4 = randomMatrix(R, 6, 11), B5 = randomMatrix(R, 11, 4);
  Problems.push_back({Outs[add(6, 4)], A4, B5, 1.0, 0.0});
  Matrix A5(3, 0), B6(0, 5);
  Problems.push_back({Outs[add(3, 5)], A5, B6, 1.0, 0.0});
  kernels::resetBatchGemmStats();
  expectBatchedMatchesLooped(Problems, Expected);
  const kernels::BatchGemmStats S = kernels::batchGemmStats();
  EXPECT_EQ(S.SharedGroups, 2u);  // One shared-A, one shared-B.
  EXPECT_EQ(S.FusedProblems, 4u);
  EXPECT_EQ(S.PlainProblems, 3u); // Beta mismatch, distinct, degenerate.
}

TEST(BatchedGemm, StridedUnalignedViews) {
  Rng R(204);
  // Operands and destinations carved out of larger parents at column
  // offset 1 (8-byte- but not 64-byte-aligned rows, all views strided).
  Matrix AParent = randomMatrix(R, 30, 60);
  ConstMatrixView A = ConstMatrixView(AParent).block(1, 1, 23, 37);
  Matrix ACopy(23, 37);
  kernels::copyInto(MatrixView(ACopy), A); // Equal content, packed stride.
  Matrix B1Parent = randomMatrix(R, 40, 90);
  Matrix B2Parent = randomMatrix(R, 40, 50);
  ConstMatrixView B1 = ConstMatrixView(B1Parent).block(2, 1, 37, 83);
  ConstMatrixView B2 = ConstMatrixView(B2Parent).block(0, 1, 37, 44);
  Matrix Out1Parent(25, 90, -7.0), Out2Parent(25, 50, -7.0);
  std::vector<kernels::GemmProblem> Problems = {
      {MatrixView(Out1Parent).block(1, 1, 23, 83), A, B1, 1.5, 0.0},
      {MatrixView(Out2Parent).block(1, 1, 23, 44), ACopy, B2, 1.5, 0.0},
  };
  Matrix Exp1Parent(25, 90, -7.0), Exp2Parent(25, 50, -7.0);
  kernels::gemm(MatrixView(Exp1Parent).block(1, 1, 23, 83), A, B1, 1.5, 0.0);
  kernels::gemm(MatrixView(Exp2Parent).block(1, 1, 23, 44), ACopy, B2, 1.5,
                0.0);
  kernels::resetBatchGemmStats();
  kernels::gemmBatched(Problems);
  EXPECT_EQ(kernels::batchGemmStats().SharedGroups, 1u); // Content-equal A.
  // Whole-parent comparison: identical results and untouched borders.
  expectBitEqual(Out1Parent, Exp1Parent);
  expectBitEqual(Out2Parent, Exp2Parent);
}

TEST(BatchedGemm, ChunkingPastFiveTwelve) {
  Rng R(205);
  // 600 problems sharing one A: crosses the 512-problem chunk boundary,
  // so the tier must form (at least) two shared groups and still match.
  const size_t Count = 600;
  Matrix AMaster = randomMatrix(R, 6, 10);
  std::vector<Matrix> ACopies(Count, AMaster);
  std::vector<Matrix> Bs, Outs, Expected;
  Bs.reserve(Count);
  for (size_t I = 0; I < Count; ++I) {
    Bs.push_back(randomMatrix(R, 10, 3 + I % 5));
    Outs.emplace_back(6, 3 + I % 5);
    Expected.emplace_back(6, 3 + I % 5);
  }
  std::vector<kernels::GemmProblem> Problems;
  Problems.reserve(Count);
  for (size_t I = 0; I < Count; ++I)
    Problems.push_back({Outs[I], ACopies[I], Bs[I], 1.0, 0.0});
  kernels::resetBatchGemmStats();
  expectBatchedMatchesLooped(Problems, Expected);
  const kernels::BatchGemmStats S = kernels::batchGemmStats();
  EXPECT_EQ(S.SharedGroups, 2u); // One per chunk.
  EXPECT_EQ(S.FusedProblems, Count);
}

TEST(BatchedGemm, EmptyBatch) {
  kernels::gemmBatched({});
  SUCCEED();
}

// The implicit capture layer: worker threads enrolled in one GemmWaveGate
// post their kernels::gemm calls into fused waves. Wave *composition* is
// timing-dependent (a poster that waits out the fusion window runs
// unfused), so these tests assert values — which must be byte-identical
// to unenrolled execution no matter how the waves formed — plus only
// timing-independent counter facts.
TEST(GemmWave, EnrolledWorkersBitwiseMatchUnenrolled) {
  Rng R(206);
  const size_t Workers = 4;
  // 64^3 = 2^18 multiply-adds: exactly the default fusion threshold, so
  // every post is eligible without touching the environment.
  const size_t Dim = 64;
  Matrix AMaster = randomMatrix(R, Dim, Dim);
  std::vector<Matrix> ACopies(Workers, AMaster);
  std::vector<Matrix> Bs, Outs, Expected;
  for (size_t I = 0; I < Workers; ++I) {
    Bs.push_back(randomMatrix(R, Dim, Dim));
    Outs.emplace_back(Dim, Dim, 1e300);
    Expected.emplace_back(Dim, Dim);
  }
  for (size_t I = 0; I < Workers; ++I)
    kernels::gemm(Expected[I], ACopies[I], Bs[I]);

  kernels::GemmWaveGate Gate;
  parallelForIndex(Workers, int(Workers), [&](size_t I) {
    kernels::WaveWorkerScope Scope(&Gate);
    kernels::gemm(Outs[I], ACopies[I], Bs[I]);
  });
  for (size_t I = 0; I < Workers; ++I)
    expectBitEqual(ConstMatrixView(Outs[I]), ConstMatrixView(Expected[I]));
}

TEST(GemmWave, MultipleRoundsAndPauses) {
  Rng R(207);
  const size_t Workers = 3, Rounds = 5, Dim = 64;
  Matrix AMaster = randomMatrix(R, Dim, Dim);
  std::vector<Matrix> ACopies(Workers, AMaster);
  std::vector<std::vector<Matrix>> Bs(Workers), Outs(Workers), Expected(Workers);
  for (size_t W = 0; W < Workers; ++W)
    for (size_t K = 0; K < Rounds; ++K) {
      Bs[W].push_back(randomMatrix(R, Dim, Dim));
      Outs[W].emplace_back(Dim, Dim, 1e300);
      Expected[W].emplace_back(Dim, Dim);
      kernels::gemm(Expected[W].back(), AMaster, Bs[W].back());
    }

  kernels::GemmWaveGate Gate;
  parallelForIndex(Workers, int(Workers), [&](size_t W) {
    kernels::WaveWorkerScope Scope(&Gate);
    for (size_t K = 0; K < Rounds; ++K) {
      kernels::gemm(Outs[W][K], ACopies[W], Bs[W][K]);
      if (K == 2) {
        // A gemm-free phase: the pause keeps peers from stalling on us;
        // values after resume must be unaffected.
        kernels::WavePauseScope Paused;
      }
    }
  });
  for (size_t W = 0; W < Workers; ++W)
    for (size_t K = 0; K < Rounds; ++K)
      expectBitEqual(ConstMatrixView(Outs[W][K]),
                     ConstMatrixView(Expected[W][K]));
}

TEST(GemmWave, NullGateAndSmallGemmsAreUnfusedNoOps) {
  Rng R(208);
  Matrix A = randomMatrix(R, 9, 11), B = randomMatrix(R, 11, 6);
  Matrix Out(9, 6), Expect(9, 6);
  kernels::gemm(Expect, A, B);
  {
    kernels::WaveWorkerScope Scope(nullptr); // No gate: plain execution.
    kernels::gemm(Out, A, B);
  }
  expectBitEqual(ConstMatrixView(Out), ConstMatrixView(Expect));
  kernels::GemmWaveGate Gate;
  {
    // Enrolled, but 9*11*6 is far below the fusion threshold: the call
    // must not block waiting for nonexistent peers.
    kernels::WaveWorkerScope Scope(&Gate);
    Matrix Out2(9, 6);
    kernels::gemm(Out2, A, B);
    expectBitEqual(ConstMatrixView(Out2), ConstMatrixView(Expect));
  }
}

TEST(CHZonotope, WithBoxRadiusReplacesBoxOnly) {
  resetErrorTermIds();
  CHZonotope Z = CHZonotope::fromBox(Vector{0.0, 0.0}, Vector{1.0, 2.0});
  Vector Center = Z.center();
  Matrix Gens = Z.generators();
  CHZonotope W = std::move(Z).withBoxRadius(Vector{0.25, 0.75});
  EXPECT_EQ(W.boxRadius()[0], 0.25);
  EXPECT_EQ(W.boxRadius()[1], 0.75);
  for (size_t I = 0; I < 2; ++I) {
    EXPECT_EQ(W.center()[I], Center[I]);
    for (size_t J = 0; J < W.numGenerators(); ++J)
      EXPECT_EQ(W.generators()(I, J), Gens(I, J));
  }
}

} // namespace
