//===- serve/ResultCache.h - Sharded LRU outcome cache ----------*- C++ -*-===//
//
// Part of the Craft reproduction (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Memoization of verification outcomes: a sharded LRU cache keyed by the
/// serve cache key (canonical spec serialization + semantic model hash —
/// see tool/SpecCanon.h). A hit returns the stored RunOutcome verbatim,
/// including its original TimeSeconds, so a repeated query's payload is
/// byte-identical to the first answer; only the transport-level `cached`
/// flag differs.
///
/// Sharding bounds lock contention under concurrent serve traffic: the
/// key's FNV-1a hash picks the shard (stable across platforms, so
/// eviction behavior is reproducible), and each shard runs an independent
/// exact LRU under its own mutex. Capacity is enforced per shard
/// (ceil(Capacity / Shards) each), which bounds total entries by
/// Capacity + Shards - 1.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFT_SERVE_RESULTCACHE_H
#define CRAFT_SERVE_RESULTCACHE_H

#include "tool/Driver.h"

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace craft {
namespace serve {

/// Thread-safe sharded LRU map from cache key to RunOutcome.
class ResultCache {
public:
  /// Snapshot since this cache's construction. The live series are the
  /// process-wide `serve.cache.*` counters on the telemetry registry;
  /// stats() subtracts the construction-time baseline, so per-instance
  /// semantics are unchanged. Entries is a live fold of the shards.
  struct Stats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Insertions = 0;
    uint64_t Evictions = 0;
    size_t Entries = 0;
  };

  /// \p Capacity total entries across \p Shards shards (both floored
  /// at 1).
  explicit ResultCache(size_t Capacity = 4096, size_t Shards = 8);

  ResultCache(const ResultCache &) = delete;
  ResultCache &operator=(const ResultCache &) = delete;

  /// Returns the cached outcome and refreshes its LRU position, or
  /// nullopt (counting a miss).
  std::optional<RunOutcome> lookup(const std::string &Key);

  /// Inserts (or refreshes) \p Key, evicting the shard's least recently
  /// used entry when the shard is full. Re-inserting an existing key
  /// overwrites its value — outcomes for one key are identical by the
  /// determinism contract, so this is only reached by racing misses.
  void insert(const std::string &Key, const RunOutcome &Outcome);

  Stats stats() const;
  size_t shardCount() const { return ShardList.size(); }

private:
  struct Shard {
    std::mutex Mutex;
    /// Front = most recently used. Node owns the key string; the index
    /// below views it (list nodes never move).
    std::list<std::pair<std::string, RunOutcome>> Lru;
    std::unordered_map<std::string_view,
                       std::list<std::pair<std::string, RunOutcome>>::iterator>
        Index;
  };

  Shard &shardFor(const std::string &Key);

  size_t PerShardCapacity;
  std::vector<std::unique_ptr<Shard>> ShardList;
  /// Registry totals at construction (Entries unused); see Stats.
  Stats Base;
};

} // namespace serve
} // namespace craft

#endif // CRAFT_SERVE_RESULTCACHE_H
