//===- bench/bench_batch_throughput.cpp - Batched-gemm serve throughput ---===//
//
// Measures what admission batching buys once it reaches the FLOPs: the
// fused runSpecBatchLoaded path (co-admitted queries executing their
// layer gemms as shared-pack waves through the batched kernel tier)
// against the same batch with fusion off, at batch sizes 32/64/128/256.
// Emits BENCH_batch.json:
//
//   batch_throughput      ns per query of the fused batch run
//   batch_qps             queries/sec of the fused run (direction
//                         "higher": a drop is the regression)
//   batch_pack_sharing    unshared/shared packed-panel ratio — how many
//                         B-panel packs the wave tier skipped per pack
//                         it actually did (direction "higher"; 1.0 =
//                         sharing saved nothing)
//
// Wave composition is admission-timing dependent, so pack counts are a
// work counter, not a deterministic quantity — the CI gate runs these
// records at the same generous 3.0x threshold as the other
// timing-shaped benches. Outcome CORRECTNESS is not timing-shaped:
// the harness self-checks by exit code that the fused batch-32 run is
// byte-identical to the sequential (jobs=1, no gate) run, and that
// waves actually fired and pack sharing actually saved packs on the
// largest batch (skipped only at CRAFT_JOBS=1, where no gate exists).
//
// Workers default to max(4, hardware threads): the rendezvous needs
// >= 2 workers to fan out at all, and on few-core hosts
// oversubscription still demonstrates sharing — posters block on the
// wave, they do not need their own core. CRAFT_JOBS overrides
// (0 = all hardware threads, same convention as the other harnesses).
// CRAFT_BENCH_SHORT=1 restricts the sweep to batches {32, 64} (the CI
// smoke shape); the dropped b128/b256 baseline rows are "missing from
// current run" notes in bench_compare, never failures.
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"

#include "linalg/KernelsBatched.h"
#include "nn/MonDeq.h"
#include "support/Rng.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"
#include "tool/Driver.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

using namespace craft;

namespace {

/// Same shape as the fusion tests: latent dim 96 puts the 192 x 192
/// Peaceman-Rachford state matrix comfortably over the batched tier's
/// default fusion threshold, and input dim 16 keeps query setup cheap.
/// Untrained on purpose — throughput is about arithmetic, not accuracy.
MonDeq workloadModel() {
  Rng InitRng(91);
  MonDeq Model = MonDeq::randomFc(InitRng, 16, 96, 3, 20.0);
  Model.fbAlphaBound(); // Warm the lazy cache before any fan-out.
  return Model;
}

/// A serve-shaped batch: distinct centers, alternating Craft/Box
/// engines (both wave-eligible), fixed epsilon. Every batch size reuses
/// the same leading prefix so runs are comparable across sizes.
std::vector<VerificationSpec> makeBatch(size_t Count) {
  Rng CenterRng(92);
  std::vector<VerificationSpec> Specs;
  Specs.reserve(Count);
  for (size_t I = 0; I < Count; ++I) {
    VerificationSpec Spec;
    Spec.ModelPath = "<preloaded>";
    Spec.Center = Vector(16);
    for (size_t J = 0; J < 16; ++J)
      Spec.Center[J] = CenterRng.uniform(0.2, 0.8);
    Spec.Epsilon = 0.01;
    Spec.TargetClass = int(I % 3);
    Spec.InLo = Vector(16);
    Spec.InHi = Vector(16);
    for (size_t J = 0; J < 16; ++J) {
      Spec.InLo[J] = Spec.Center[J] - Spec.Epsilon;
      Spec.InHi[J] = Spec.Center[J] + Spec.Epsilon;
    }
    Spec.Verifier = I % 2 ? SpecVerifier::Box : SpecVerifier::Craft;
    Specs.push_back(std::move(Spec));
  }
  return Specs;
}

bool sameOutcome(const RunOutcome &A, const RunOutcome &B) {
  return A.ModelLoaded == B.ModelLoaded && A.Error == B.Error &&
         A.Certified == B.Certified && A.Containment == B.Containment &&
         A.Refuted == B.Refuted &&
         std::memcmp(&A.MarginLower, &B.MarginLower, sizeof(double)) == 0;
}

} // namespace

int main() {
  std::printf("== bench_batch_throughput: batch-fused gemm waves ==\n\n");

  const size_t Hardware = ThreadPool::hardwareWorkers();
  int Workers = int(Hardware < 4 ? 4 : Hardware);
  if (const char *Env = std::getenv("CRAFT_JOBS")) {
    long V = std::atol(Env);
    if (V == 0)
      Workers = int(Hardware);
    else if (V > 0)
      Workers = int(V);
  }
  const bool Short = std::getenv("CRAFT_BENCH_SHORT") != nullptr;
  std::vector<size_t> Batches = Short ? std::vector<size_t>{32, 64}
                                      : std::vector<size_t>{32, 64, 128, 256};

  MonDeq Model = workloadModel();
  std::vector<benchjson::Record> Records;
  bool Ok = true;

  // Correctness bar first: the fused batch-32 outcomes must be
  // byte-identical to one worker with no fusion machinery at all.
  {
    std::vector<VerificationSpec> Specs = makeBatch(32);
    std::vector<const MonDeq *> Models(Specs.size(), &Model);
    std::vector<RunOutcome> Sequential =
        runSpecBatchLoaded(Specs, Models, /*Jobs=*/1);
    std::vector<RunOutcome> Fused =
        runSpecBatchLoaded(Specs, Models, Workers,
                           /*FuseBatchGemms=*/true);
    for (size_t I = 0; I < Specs.size(); ++I)
      if (!sameOutcome(Sequential[I], Fused[I])) {
        std::fprintf(stderr,
                     "FAIL: fused outcome %zu differs from sequential — "
                     "the wave tier changed a verdict\n",
                     I);
        Ok = false;
        break;
      }
  }

  // Wave occupancy comes out of the kernel tier's own registry series
  // (gemm.batch.wave_members) — the shared histogram readout, not a
  // local tally. The registry never resets, so each batch size reads
  // its interval with diffSnapshots.
  const telemetry::Histogram WaveMembers =
      telemetry::histogramMetric("gemm.batch.wave_members");
  kernels::BatchGemmStats Last = {};
  for (size_t Batch : Batches) {
    std::vector<VerificationSpec> Specs = makeBatch(Batch);
    std::vector<const MonDeq *> Models(Specs.size(), &Model);

    kernels::resetBatchGemmStats();
    const telemetry::HistogramSnapshot WavesBefore = WaveMembers.snapshot();
    WallTimer T;
    std::vector<RunOutcome> Outs =
        runSpecBatchLoaded(Specs, Models, Workers,
                           /*FuseBatchGemms=*/true);
    double Seconds = T.seconds();
    Last = kernels::batchGemmStats();
    const telemetry::HistogramSnapshot Occupancy =
        telemetry::diffSnapshots(WavesBefore, WaveMembers.snapshot());
    (void)Outs;

    double NsPerQuery = Seconds * 1e9 / double(Batch);
    double Qps = double(Batch) / Seconds;
    double Sharing =
        Last.PanelsPackedShared
            ? double(Last.PanelsPackedUnshared) /
                  double(Last.PanelsPackedShared)
            : 1.0; // No waves (e.g. CRAFT_JOBS=1): sharing saved nothing.

    std::printf("batch %3zu (%d workers): %8.1f q/s, %.2f ms/query, "
                "%" PRIu64 " waves (occupancy p50 %" PRIu64 " p95 %" PRIu64
                "), %" PRIu64 " fused / %" PRIu64
                " plain gemms, pack sharing %.2fx (%" PRIu64
                " shared vs %" PRIu64 " unfused panels)\n",
                Batch, Workers, Qps, NsPerQuery / 1e6, Last.Waves,
                Occupancy.p50(), Occupancy.p95(), Last.FusedProblems,
                Last.PlainProblems, Sharing, Last.PanelsPackedShared,
                Last.PanelsPackedUnshared);

    char Dims[16];
    std::snprintf(Dims, sizeof(Dims), "b%zu", Batch);
    benchjson::Record R;
    R.Dims = Dims;
    R.Op = "batch_throughput";
    R.NsPerOp = NsPerQuery;
    Records.push_back(R);
    R.Op = "batch_qps";
    R.NsPerOp = Qps;
    R.Direction = "higher";
    Records.push_back(R);
    R.Op = "batch_pack_sharing";
    R.NsPerOp = Sharing;
    Records.push_back(R);
  }
  benchjson::write("BENCH_batch.json", Records);

  // Fusion must demonstrably fire wherever the gate can fan out. At
  // CRAFT_JOBS=1 the batch never fans out, no gate is built, and only
  // the byte-identity bar above applies.
  if (Workers >= 2) {
    if (Last.Waves == 0 || Last.FusedProblems == 0) {
      std::fprintf(stderr, "FAIL: no fused wave fired with %d workers "
                           "— batching never reached the FLOPs\n",
                   Workers);
      Ok = false;
    }
    if (Last.PanelsPackedShared >= Last.PanelsPackedUnshared) {
      std::fprintf(stderr,
                   "FAIL: pack sharing saved no panels (%" PRIu64
                   " shared vs %" PRIu64 " unfused)\n",
                   Last.PanelsPackedShared, Last.PanelsPackedUnshared);
      Ok = false;
    }
  } else {
    std::printf("CRAFT_JOBS=1: fusion bars skipped "
                "(byte-identity bar still enforced)\n");
  }
  std::printf("%s\n", Ok ? "OK" : "FAILED");
  return Ok ? 0 : 1;
}
