//===- tool/Driver.h - Spec execution ---------------------------*- C++ -*-===//
//
// Part of the Craft reproduction (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes parsed verification specs against the selected engine (Craft,
/// Box, unrolled CROWN, or the Lipschitz certifier) and optionally emits a
/// proof witness. Pure library layer — the `craft` CLI wraps it with
/// argument handling and printing.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFT_TOOL_DRIVER_H
#define CRAFT_TOOL_DRIVER_H

#include "tool/SpecParser.h"

#include <string>

namespace craft {

/// Result of executing one spec.
struct RunOutcome {
  bool ModelLoaded = false;
  bool Certified = false;
  /// Craft only: an abstract post-fixpoint was found.
  bool Containment = false;
  /// Best margin lower bound the engine reports (engine-specific scale).
  double MarginLower = -1e300;
  double TimeSeconds = 0.0;
  /// Whether a certificate was requested, built, and written.
  bool CertificateWritten = false;
  /// Human-readable failure/summary detail.
  std::string Detail;
};

/// Runs \p Spec. Never exits; all failures are reported in the outcome.
RunOutcome runSpec(const VerificationSpec &Spec);

/// `craft info`: prints model metadata (dims, activation, m, FB alpha
/// bound, semantic hash) to stdout. Returns false if loading fails.
bool printModelInfo(const std::string &ModelPath);

/// `craft check`: validates a certificate file against a model file and
/// prints the report. Returns true iff the certificate is accepted.
bool runCheck(const std::string &ModelPath, const std::string &CertPath);

} // namespace craft

#endif // CRAFT_TOOL_DRIVER_H
