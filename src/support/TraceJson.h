//===- support/TraceJson.h - Chrome trace_event export ----------*- C++ -*-===//
//
// Exports the telemetry span rings (support/Telemetry.h) as Chrome
// trace_event JSON — the {"traceEvents": [...]} format that
// chrome://tracing and Perfetto load directly.
//
// Spans are recorded as completed (start, duration) pairs, so the
// exporter reconstructs each thread's nesting stack and emits a balanced,
// properly nested B/E event stream per thread: a B is always closed by
// its own E, even after ring eviction dropped neighbours. Thread labels
// registered via setCurrentThreadLabel become thread_name metadata
// events. tools/trace_check.py and tests/test_telemetry.cpp both pin
// this well-formedness.
//
//===----------------------------------------------------------------------===//

#ifndef CRAFT_SUPPORT_TRACEJSON_H
#define CRAFT_SUPPORT_TRACEJSON_H

#include <string>

namespace craft {
namespace tracejson {

/// Serializes every recorded span as one Chrome trace_event JSON
/// document. Deterministic for a fixed set of records; an empty ring
/// yields a valid document with an empty traceEvents array.
std::string toChromeTraceJson();

/// Writes toChromeTraceJson() to \p Path. False + \p Error on I/O
/// failure.
bool writeTraceFile(const std::string &Path, std::string &Error);

/// Shutdown hook: when tracing is armed (telemetry::traceEnabled()),
/// writes the ring to \p ExplicitPath if non-empty, else to
/// $CRAFT_TRACE_OUT, else to "craft_trace.json". No-op (returning true)
/// when tracing is off. Returns false + \p Error only on write failure.
bool maybeWriteTrace(const std::string &ExplicitPath, std::string &Error);

} // namespace tracejson
} // namespace craft

#endif // CRAFT_SUPPORT_TRACEJSON_H
