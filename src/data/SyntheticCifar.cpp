//===- data/SyntheticCifar.cpp --------------------------------------------===//

#include "data/SyntheticCifar.h"

#include <algorithm>
#include <cmath>

using namespace craft;

Dataset craft::makeSyntheticCifar(Rng &R, size_t Count) {
  Dataset Data;
  Data.NumClasses = 10;
  Data.Inputs = Matrix(Count, CifarDim);
  Data.Labels.resize(Count);

  for (size_t N = 0; N < Count; ++N) {
    int Class = R.uniformInt(0, 9);
    Data.Labels[N] = Class;

    // Class signature: a base color per channel plus an oriented sinusoidal
    // texture whose frequency/orientation depend on the class. Random phase
    // and strong pixel noise create heavy intra-class variation.
    double BaseR = 0.25 + 0.05 * ((Class * 3) % 10);
    double BaseG = 0.25 + 0.05 * ((Class * 7 + 2) % 10);
    double BaseB = 0.25 + 0.05 * ((Class * 9 + 5) % 10);
    double Freq = 0.25 + 0.08 * (Class % 5);
    double Angle = 0.31 * (Class % 7);
    double Phase = R.uniform(0.0, 6.28318);
    double CosA = std::cos(Angle), SinA = std::sin(Angle);
    double Base[3] = {BaseR, BaseG, BaseB};

    for (size_t C = 0; C < CifarChannels; ++C)
      for (size_t Y = 0; Y < CifarSide; ++Y)
        for (size_t X = 0; X < CifarSide; ++X) {
          double T = Freq * (CosA * static_cast<double>(X) +
                             SinA * static_cast<double>(Y)) +
                     Phase;
          double Texture = 0.12 * std::sin(T + 1.2 * static_cast<double>(C));
          double Value = Base[C] + Texture + R.gaussian(0.0, 0.22);
          Data.Inputs(N, (C * CifarSide + Y) * CifarSide + X) =
              std::clamp(Value, 0.0, 1.0);
        }
  }
  return Data;
}
