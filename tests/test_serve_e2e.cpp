//===- tests/test_serve_e2e.cpp - Serve daemon end-to-end test ------------===//
//
// Process-level test of `craft serve`: starts the real daemon on an
// ephemeral TCP port, drives it with the real `craft client` binary and
// the ServeClient library, and pins the serve contract end to end:
//
//  - the announce line carries the bound port;
//  - a first `craft client` pass certifies the smoke spec (exit 0);
//  - a second identical pass is served 100% from the ResultCache with
//    byte-identical result payloads;
//  - a shutdown request stops the daemon, which exits 0 (clean shutdown);
//  - SIGTERM drains gracefully and still exits 0.
//
// Under a CRAFT_FAULT environment (the CI chaos matrix), the exact-count
// lifecycle tests skip and ChaosLifecycle runs instead: the daemon
// inherits the fault spec, and a retrying client must still get work
// done and shut it down cleanly.
//
// Usage: test_serve_e2e <path-to-craft-binary> <fixture-dir>
// (wired by ctest with the CliSmoke fixture directory).
//
//===----------------------------------------------------------------------===//

#include "serve/Client.h"
#include "support/FaultInjection.h"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <string>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace craft;
using namespace craft::serve;

namespace {

std::string CraftBinary;
std::string FixtureDir;

/// True when the CI chaos matrix armed a fault spec: the forked daemon
/// inherits it, so exact-count assertions do not hold.
bool chaosMode() {
  const char *Spec = std::getenv("CRAFT_FAULT");
  return Spec && *Spec;
}

/// Runs \p Argv (null-terminated) with stdout/stderr appended to
/// \p OutputPath (empty = /dev/null). Returns the exit code, or -1.
int runProcess(const std::vector<std::string> &Args,
               const std::string &OutputPath) {
  pid_t Pid = ::fork();
  if (Pid < 0)
    return -1;
  if (Pid == 0) {
    const char *Path =
        OutputPath.empty() ? "/dev/null" : OutputPath.c_str();
    int Fd = ::open(Path, O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (Fd >= 0) {
      ::dup2(Fd, STDOUT_FILENO);
      ::dup2(Fd, STDERR_FILENO);
      ::close(Fd);
    }
    std::vector<char *> Argv;
    for (const std::string &A : Args)
      Argv.push_back(const_cast<char *>(A.c_str()));
    Argv.push_back(nullptr);
    ::execv(Argv[0], Argv.data());
    _exit(127);
  }
  int Status = 0;
  if (::waitpid(Pid, &Status, 0) != Pid)
    return -1;
  return WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
}

/// A running `craft serve --port 0` daemon (stdout captured to a file so
/// the announce line can be read back).
class ServeDaemon {
public:
  bool start() {
    OutPath = FixtureDir + "/serve_e2e_out.txt";
    std::remove(OutPath.c_str());
    Pid = ::fork();
    if (Pid < 0)
      return false;
    if (Pid == 0) {
      int Fd = ::open(OutPath.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (Fd >= 0) {
        ::dup2(Fd, STDOUT_FILENO);
        ::close(Fd);
      }
      // stderr (the kernel-backend line) goes to /dev/null to keep ctest
      // logs clean.
      int Null = ::open("/dev/null", O_WRONLY);
      if (Null >= 0) {
        ::dup2(Null, STDERR_FILENO);
        ::close(Null);
      }
      ::execl(CraftBinary.c_str(), CraftBinary.c_str(), "serve", "--port",
              "0", "--jobs", "2", static_cast<char *>(nullptr));
      _exit(127);
    }
    return true;
  }

  /// Polls the captured stdout for the announce line; returns the port.
  int waitForPort(int TimeoutMs = 10000) {
    for (int Waited = 0; Waited < TimeoutMs; Waited += 20) {
      std::FILE *F = std::fopen(OutPath.c_str(), "r");
      if (F) {
        char Line[256] = {0};
        if (std::fgets(Line, sizeof(Line), F)) {
          const char *Colon = std::strstr(Line, "127.0.0.1:");
          if (Colon) {
            std::fclose(F);
            return std::atoi(Colon + std::strlen("127.0.0.1:"));
          }
        }
        std::fclose(F);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return -1;
  }

  /// Waits for daemon exit; returns its exit code (or -1).
  int wait() {
    if (Pid <= 0)
      return -1;
    int Status = 0;
    if (::waitpid(Pid, &Status, 0) != Pid)
      return -1;
    Pid = -1;
    return WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
  }

  void killIfRunning() {
    if (Pid > 0) {
      ::kill(Pid, SIGKILL);
      wait();
    }
  }

  ~ServeDaemon() { killIfRunning(); }

  pid_t pid() const { return Pid; }

private:
  pid_t Pid = -1;
  std::string OutPath;
};

std::string readFile(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return {};
  std::string Out;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  std::fclose(F);
  return Out;
}

/// Strips the transport-level flag so payload comparisons isolate the
/// byte-identical outcome contract.
std::string payloadKey(WireResult W) {
  W.Cached = false;
  return encodeResult(W).serialize();
}

} // namespace

TEST(ServeE2eTest, FullLifecycleWithClientBinaryAndCache) {
  if (chaosMode())
    GTEST_SKIP() << "exact-count lifecycle assertions need a fault-free "
                    "daemon; ChaosLifecycle covers CRAFT_FAULT runs";
  const std::string SpecPath = FixtureDir + "/smoke.spec";
  const std::string SpecText = readFile(SpecPath);
  ASSERT_FALSE(SpecText.empty()) << "missing fixture " << SpecPath;

  ServeDaemon Daemon;
  ASSERT_TRUE(Daemon.start());
  int Port = Daemon.waitForPort();
  ASSERT_GT(Port, 0) << "daemon never announced its port";

  // Pass 1 and 2 through the real `craft client` binary: both must exit
  // 0 (all certified), and the second pass's printed results must all be
  // cache hits.
  const std::string Pass1Out = FixtureDir + "/serve_e2e_client1.txt";
  const std::string Pass2Out = FixtureDir + "/serve_e2e_client2.txt";
  std::remove(Pass1Out.c_str());
  std::remove(Pass2Out.c_str());
  const std::string PortStr = std::to_string(Port);
  EXPECT_EQ(runProcess({CraftBinary, "client", "--port", PortStr, SpecPath},
                       Pass1Out),
            0);
  EXPECT_EQ(runProcess({CraftBinary, "client", "--port", PortStr, SpecPath},
                       Pass2Out),
            0);
  const std::string Out1 = readFile(Pass1Out);
  const std::string Out2 = readFile(Pass2Out);
  EXPECT_NE(Out1.find("cached       no"), std::string::npos) << Out1;
  EXPECT_EQ(Out2.find("cached       no"), std::string::npos)
      << "second pass must be 100% cache hits:\n"
      << Out2;
  EXPECT_NE(Out2.find("cached       yes"), std::string::npos) << Out2;

  // Library passes: assert byte-identical payloads and the cache flags
  // field by field.
  ServeClient Client;
  std::string Error;
  ASSERT_TRUE(Client.connect(Port, Error)) << Error;
  ASSERT_TRUE(Client.ping(Error)) << Error;

  std::optional<VerifyReply> First = Client.verify(SpecText, Error);
  ASSERT_TRUE(First.has_value()) << Error;
  ASSERT_EQ(First->Results.size(), 3u) << "smoke spec has three queries";
  for (const WireResult &R : First->Results) {
    EXPECT_TRUE(R.Outcome.Certified) << R.Outcome.Detail;
    EXPECT_TRUE(R.Cached) << "the client binary's passes already "
                             "populated the cache for these queries";
  }

  std::optional<VerifyReply> Second = Client.verify(SpecText, Error);
  ASSERT_TRUE(Second.has_value()) << Error;
  ASSERT_EQ(Second->Results.size(), First->Results.size());
  for (size_t I = 0; I < Second->Results.size(); ++I) {
    EXPECT_TRUE(Second->Results[I].Cached);
    EXPECT_EQ(payloadKey(First->Results[I]),
              payloadKey(Second->Results[I]))
        << "query " << I << ": cached payload must be byte-identical";
  }

  // Stats must agree: all 12 queries submitted, only 3 executed.
  std::optional<json::Value> Stats = Client.stats(Error);
  ASSERT_TRUE(Stats.has_value()) << Error;
  const json::Value *Sched = Stats->find("scheduler");
  ASSERT_NE(Sched, nullptr);
  EXPECT_EQ(Sched->numberOr("submitted", -1), 12.0);
  EXPECT_EQ(Sched->numberOr("executed", -1), 3.0);
  EXPECT_EQ(Sched->numberOr("cache_hits", -1), 9.0);

  // Clean shutdown: ack arrives, daemon exits 0.
  EXPECT_TRUE(Client.requestShutdown(Error)) << Error;
  EXPECT_EQ(Daemon.wait(), 0) << "daemon must exit 0 on shutdown request";
}

TEST(ServeE2eTest, ClientReportsConnectionFailureAsError) {
  // Nothing listens here: `craft client` must exit 2, not hang or crash.
  EXPECT_EQ(runProcess({CraftBinary, "client", "--port", "1", "--ping"},
                       ""),
            2);
}

TEST(ServeE2eTest, SigtermDrainsGracefullyAndExitsZero) {
  if (chaosMode())
    GTEST_SKIP() << "covered (with faults) by ChaosLifecycle";
  const std::string SpecPath = FixtureDir + "/smoke.spec";
  ServeDaemon Daemon;
  ASSERT_TRUE(Daemon.start());
  int Port = Daemon.waitForPort();
  ASSERT_GT(Port, 0) << "daemon never announced its port";

  // Real work first, so the drain has a warm daemon to wind down.
  EXPECT_EQ(runProcess({CraftBinary, "client", "--port",
                        std::to_string(Port), SpecPath},
                       ""),
            0);

  // SIGTERM = graceful drain: finish in-flight work, then exit 0. A
  // daemon that dies by default signal disposition reports 'killed by
  // signal' (-1 here), failing this.
  ASSERT_EQ(::kill(Daemon.pid(), SIGTERM), 0);
  EXPECT_EQ(Daemon.wait(), 0) << "SIGTERM must end in a clean exit 0";
}

TEST(ServeE2eTest, ChaosLifecycle) {
  if (!chaosMode())
    GTEST_SKIP() << "runs only under the CRAFT_FAULT chaos matrix";
  const std::string SpecPath = FixtureDir + "/smoke.spec";
  const std::string SpecText = readFile(SpecPath);
  ASSERT_FALSE(SpecText.empty()) << "missing fixture " << SpecPath;

  // The daemon inherits CRAFT_FAULT from the environment: its sockets,
  // model loads, and dispatches fail on the configured cadence.
  ServeDaemon Daemon;
  ASSERT_TRUE(Daemon.start());
  int Port = Daemon.waitForPort();
  ASSERT_GT(Port, 0) << "daemon never announced its port";

  // A retrying client must ride out the injected failures: at least one
  // ping and one verify must eventually succeed.
  ServeClient Client;
  RetryPolicy Policy;
  Policy.MaxAttempts = 10;
  Policy.TimeoutMs = 5000;
  Policy.BackoffBaseMs = 5;
  Client.setRetryPolicy(Policy);
  std::string Error;
  ASSERT_TRUE(Client.connect(Port, Error)) << Error;
  EXPECT_TRUE(Client.ping(Error))
      << "retries exhausted without a single pong: " << Error;
  std::optional<VerifyReply> Reply = Client.verify(SpecText, Error);
  ASSERT_TRUE(Reply.has_value())
      << "retries exhausted without a verify reply: " << Error;
  for (const WireResult &R : Reply->Results)
    EXPECT_FALSE(R.Outcome.DeadlineExceeded);

  // Wind the daemon down; if the shutdown ack itself falls to a fault,
  // SIGTERM (graceful drain) is the fallback — either way, exit 0.
  if (!Client.requestShutdown(Error))
    ASSERT_EQ(::kill(Daemon.pid(), SIGTERM), 0) << Error;
  EXPECT_EQ(Daemon.wait(), 0)
      << "daemon must exit cleanly even under injected faults";
}

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: test_serve_e2e <craft-binary> <fixture-dir>\n");
    return 2;
  }
  CraftBinary = argv[1];
  FixtureDir = argv[2];
  // The chaos matrix arms CRAFT_FAULT for the *daemon under test* (it
  // inherits the env). The harness's own process must stay fault-free —
  // its ServeClient sockets would otherwise fail on the same cadence.
  fault::configure("");
  return RUN_ALL_TESTS();
}
