//===- examples/quickstart.cpp - 5-minute tour of the Craft API ----------===//
//
// Builds the paper's 2-d running example monDEQ by hand, runs concrete
// inference, and certifies an l-inf robustness property with Craft.
//
// Run:  ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "core/Verifier.h"
#include "nn/Solvers.h"

#include <cstdio>

using namespace craft;

int main() {
  // 1. A monDEQ computes y = V z* + v at the unique fixpoint
  //    z* = ReLU(W z* + U x + b). Here: the running example of the paper
  //    (Eq. 1), a 2-d classifier with class 1 iff s1 - s2 > 0.
  Matrix W = {{-4.0, -1.0}, {1.0, -4.0}};
  Matrix U = {{1.0, 1.0}, {-1.0, 1.0}};
  Matrix V = {{0.0, 0.0}, {1.0, -1.0}}; // Two logits: (0, s1 - s2).
  MonDeq Model = MonDeq::fromW(/*Monotonicity=*/4.0, W, U, Vector(2, 0.0),
                               V, Vector(2, 0.0));

  // 2. Concrete inference: solve the fixpoint with Peaceman-Rachford
  //    splitting (convergent for any alpha > 0) and apply the output layer.
  Vector X = {0.2, 0.5};
  FixpointSolver Solver(Model, Splitting::PeacemanRachford);
  FixpointResult Fix = Solver.solve(X);
  std::printf("fixpoint z* = (%.4f, %.4f) after %d iterations\n", Fix.Z[0],
              Fix.Z[1], Fix.Iterations);
  std::printf("prediction: class %d (score %.4f)\n", Solver.predict(X),
              Model.output(Fix.Z)[1]);

  // 3. Certification: is every input within l-inf distance 0.05 of x
  //    classified the same way? Craft answers by computing a sound
  //    CH-Zonotope over-approximation of the *set of fixpoints* for the
  //    whole input region (Alg. 1) and checking the margins on it.
  CraftConfig Config;
  Config.Alpha1 = 0.1;      // PR step size for the containment phase.
  Config.InputClampLo = -1.0; // This model's inputs live in [-1, 1]^2.
  Config.InputClampHi = 1.0;
  CraftVerifier Verifier(Model, Config);

  CraftResult Res = Verifier.verifyRobustness(X, /*TargetClass=*/1,
                                              /*Epsilon=*/0.05);
  std::printf("\ncontainment found at iteration %d\n",
              Res.ContainmentIteration);
  std::printf("certified: %s (worst-case margin %.4f, %.2f ms)\n",
              Res.Certified ? "YES" : "no", Res.BestMargin,
              1e3 * Res.TimeSeconds);
  std::printf("certified fixpoint set hull: [%.4f, %.4f] x [%.4f, %.4f]\n",
              Res.FixpointHull.lowerBounds()[0],
              Res.FixpointHull.upperBounds()[0],
              Res.FixpointHull.lowerBounds()[1],
              Res.FixpointHull.upperBounds()[1]);
  return Res.Certified ? 0 : 1;
}
