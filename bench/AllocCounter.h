//===- bench/AllocCounter.h - Heap allocation counting ----------*- C++ -*-===//
//
// Part of the Craft reproduction (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Global operator new/delete replacements that count heap allocations, so
/// benchmark harnesses can report allocs/op alongside ns/op and the perf
/// trajectory of the allocation-free linalg kernel work is measurable
/// across PRs.
///
/// Include this header in exactly ONE translation unit per binary (the
/// harness main file): it *defines* the replaceable global allocation
/// functions. The counter is atomic, so worker threads spawned by the
/// batch-verification subsystem are counted too.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFT_BENCH_ALLOCCOUNTER_H
#define CRAFT_BENCH_ALLOCCOUNTER_H

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace craft {
namespace benchalloc {

inline std::atomic<uint64_t> AllocCount{0};

/// Total heap allocations (operator new calls) since process start.
inline uint64_t allocations() {
  return AllocCount.load(std::memory_order_relaxed);
}

inline void *countedAlloc(std::size_t Size) {
  AllocCount.fetch_add(1, std::memory_order_relaxed);
  if (void *P = std::malloc(Size ? Size : 1))
    return P;
  throw std::bad_alloc();
}

inline void *countedAlignedAlloc(std::size_t Size, std::size_t Align) {
  AllocCount.fetch_add(1, std::memory_order_relaxed);
  // aligned_alloc requires the size to be a multiple of the alignment.
  std::size_t Rounded = (Size + Align - 1) / Align * Align;
  if (void *P = std::aligned_alloc(Align, Rounded ? Rounded : Align))
    return P;
  throw std::bad_alloc();
}

} // namespace benchalloc
} // namespace craft

// Replaceable global allocation functions. The nothrow variants forward to
// these by default, so replacing the ordinary set is sufficient.
void *operator new(std::size_t Size) {
  return craft::benchalloc::countedAlloc(Size);
}
void *operator new[](std::size_t Size) {
  return craft::benchalloc::countedAlloc(Size);
}
void *operator new(std::size_t Size, std::align_val_t Align) {
  return craft::benchalloc::countedAlignedAlloc(
      Size, static_cast<std::size_t>(Align));
}
void *operator new[](std::size_t Size, std::align_val_t Align) {
  return craft::benchalloc::countedAlignedAlloc(
      Size, static_cast<std::size_t>(Align));
}
void operator delete(void *P) noexcept { std::free(P); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete(void *P, std::size_t) noexcept { std::free(P); }
void operator delete[](void *P, std::size_t) noexcept { std::free(P); }
void operator delete(void *P, std::align_val_t) noexcept { std::free(P); }
void operator delete[](void *P, std::align_val_t) noexcept { std::free(P); }
void operator delete(void *P, std::size_t, std::align_val_t) noexcept {
  std::free(P);
}
void operator delete[](void *P, std::size_t, std::align_val_t) noexcept {
  std::free(P);
}

#endif // CRAFT_BENCH_ALLOCCOUNTER_H
