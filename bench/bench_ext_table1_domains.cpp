//===- bench/bench_ext_table1_domains.cpp ---------------------------------===//
//
// Extension experiment: the Table 1 / Section 2.3 domain comparison made
// quantitative, with the "(Restricted) Polyhedra" row implemented as the
// unrolled-CROWN baseline (core/UnrolledCrown.h). On the trained FCx40
// model, for a range of l-inf radii, the harness certifies the same
// samples with
//
//   Box            — interval iteration (tractable inclusion, no precision),
//   Polyhedra      — CROWN linear bounds through k unrolled FB steps plus
//                    a contraction tail (no native inclusion check: sound
//                    only inside FB's concrete convergence range),
//   CH-Zonotope    — the paper's Craft verifier.
//
// Expected shape (Table 1's checkmarks, quantified): Box certifies nothing
// beyond tiny radii; the polyhedra baseline is precise at small radii but
// its tail erodes the margin as eps grows; Craft certifies the most, with
// comparable runtime.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/UnrolledCrown.h"
#include "support/Rng.h"

using namespace craft;

int main() {
  std::printf("== Extension: Table 1 domain comparison on FCx40 ==\n\n");

  const ModelSpec *Spec = findModelSpec("mnist_fc40");
  MonDeq Model = getOrTrainModel(*Spec);
  Dataset Test = makeTestSet(*Spec, benchSamples(10));

  CraftConfig BoxCfg = craftConfigFor(*Spec);
  BoxCfg.Domain = VerifierDomain::Box;
  CraftConfig ChCfg = craftConfigFor(*Spec);
  CrownOptions CrownCfg;
  CrownCfg.UnrollSteps = 60;

  CraftVerifier BoxVer(Model, BoxCfg);
  CraftVerifier ChVer(Model, ChCfg);
  CrownVerifier CrownVer(Model, CrownCfg);
  FixpointSolver Solver(Model, Splitting::PeacemanRachford);

  TablePrinter T({"eps", "#acc", "box cert", "crown cert", "craft cert",
                  "box t[s]", "crown t[s]", "craft t[s]"});
  for (double Eps : {0.01, 0.05, 0.1, 0.15, 0.2}) {
    int Accurate = 0, BoxCert = 0, CrownCert = 0, CraftCert = 0;
    double BoxTime = 0.0, CrownTime = 0.0, CraftTime = 0.0;
    for (size_t I = 0; I < Test.size(); ++I) {
      Vector X = Test.input(I);
      if (Solver.predict(X) != Test.Labels[I])
        continue;
      ++Accurate;
      int Target = Test.Labels[I];
      {
        WallTimer Clock;
        BoxCert += BoxVer.verifyRobustness(X, Target, Eps).Certified;
        BoxTime += Clock.seconds();
      }
      {
        WallTimer Clock;
        CrownCert += CrownVer.verifyRobustness(X, Target, Eps).Certified;
        CrownTime += Clock.seconds();
      }
      {
        WallTimer Clock;
        CraftCert += ChVer.verifyRobustness(X, Target, Eps).Certified;
        CraftTime += Clock.seconds();
      }
    }
    double Inv = Accurate > 0 ? 1.0 / Accurate : 0.0;
    T.addRow({fmt(Eps, 3), fmt((long)Accurate), fmt((long)BoxCert),
              fmt((long)CrownCert), fmt((long)CraftCert),
              fmt(BoxTime * Inv, 3), fmt(CrownTime * Inv, 3),
              fmt(CraftTime * Inv, 3)});
  }
  T.print();

  std::printf("\ncontraction factor at crown's alpha: %.4f "
              "(tail ~ %.2e after %d steps)\n",
              CrownVer.contraction(),
              std::pow(CrownVer.contraction(), CrownCfg.UnrollSteps),
              CrownCfg.UnrollSteps);
  std::printf("Expected shape: Box 0 everywhere beyond tiny radii; CROWN\n"
              "competitive while its contraction tail is negligible; Craft\n"
              "certifies at least as much (Table 1's precision column).\n");

  // Second axis: the polyhedra baseline's guarantee *requires* FB's
  // concrete contraction, which degrades as the monotonicity parameter m
  // shrinks (alpha range ~ 2m/||I-W||^2). Craft's containment check has no
  // such side condition — the structural Table 1 point.
  std::printf("\n== Structural axis: monotonicity m vs the contraction tail "
              "==\n\n");
  TablePrinter T2({"m", "contraction", "k for tail<1e-3", "crown cert",
                   "craft cert"});
  for (double M : {20.0, 5.0, 1.0, 0.2}) {
    Rng R(42);
    MonDeq Rand = MonDeq::randomFc(R, 40, 30, 4, M);
    CrownVerifier CV(Rand, CrownCfg);
    CraftVerifier Craft(Rand);
    FixpointSolver Pred(Rand, Splitting::PeacemanRachford);
    int CrownCert = 0, CraftCert = 0, Trials = 5;
    Rng RX(43);
    for (int I = 0; I < Trials; ++I) {
      Vector X(40);
      for (double &V : X)
        V = RX.uniform(0.2, 0.8);
      int Cls = Pred.predict(X);
      CrownCert += CV.verifyRobustness(X, Cls, 0.01).Certified;
      CraftCert += Craft.verifyRobustness(X, Cls, 0.01).Certified;
    }
    double C = CV.contraction();
    long KNeeded =
        C < 1.0 ? (long)std::ceil(std::log(1e-3) / std::log(C)) : -1;
    T2.addRow({fmt(M, 1), fmt(C, 4), KNeeded >= 0 ? fmt(KNeeded) : "inf",
               fmt((long)CrownCert) + "/" + fmt((long)Trials),
               fmt((long)CraftCert) + "/" + fmt((long)Trials)});
  }
  T2.print();
  std::printf("\nAs m drops, the FB contraction approaches 1 and the\n"
              "unrolling depth needed for a sound tail explodes, while the\n"
              "containment-based verifier is unaffected.\n");
  return 0;
}
