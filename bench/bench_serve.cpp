//===- bench/bench_serve.cpp - Serve daemon load generator ----------------===//
//
// Load generator for the `craft serve` subsystem: starts an in-process
// daemon on an ephemeral TCP port, fans CRAFT_SERVE_CLIENTS client
// threads (default 4) out over real loopback connections, and measures
// per-request latency in two phases over CRAFT_SERVE_QUERIES distinct
// queries (default 32, one `input` block each, all against one model):
//
//   cold  every query seen for the first time — full verification cost,
//         amortized model load, admission batching across clients;
//   hot   the identical queries again — served from the ResultCache.
//
// A third phase floods a deliberately starved daemon (one worker, batch
// 1, queue capacity 2, shed high-water 1) with uncacheable queries from
// every client at once. Under saturation the contract is fail-fast:
// past the high-water mark a submission is answered immediately with an
// ok:false "overloaded" envelope instead of queueing without bound, so
// the tail latency (serve_overload_p99) stays bounded and the shed rate
// (serve_shed_rate, direction=higher: a DROP means the daemon went back
// to blocking) stays substantial.
//
// Reports mean/p50/p95/p99 latency and aggregate throughput per phase
// plus the hot-phase cache hit rate, prints a table, and emits
// BENCH_serve.json. Latency percentiles come from the shared telemetry
// histograms (support/Telemetry.h) — the same log-scale readout the
// serve `metrics` envelope reports — and, because the daemon runs
// in-process against the same registry, the server-side admission-queue
// wait is read straight from its serve.queue_wait_ns series and gated
// as serve_queue_wait_p99. Records use the shared BenchJson schema
// (latency records carry
// ns_per_op; throughput records encode ns per request, so lower is
// better everywhere and bench_compare.py gates them uniformly; the
// serve_hot_mean record carries the hit rate). The serve acceptance bar
// — cache hits >= 5x faster than cold on average — is checked at the
// end and reflected in the exit code, which is what lets CI catch a
// cache regression that would silently turn hits into recomputes.
//
// CRAFT_SERVE_JOBS sizes the daemon's verification pool (default 0 =
// all hardware threads).
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"

#include "nn/MonDeq.h"
#include "serve/Client.h"
#include "serve/Server.h"
#include "support/Rng.h"
#include "support/Telemetry.h"
#include "support/Timer.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

using namespace craft;
using namespace craft::serve;

namespace {

int envInt(const char *Name, int Default) {
  const char *V = std::getenv(Name);
  return V && *V ? std::atoi(V) : Default;
}

// Per-request latencies go through the shared telemetry histograms (the
// same readout the serve `metrics` envelope reports) instead of a local
// sort-and-index percentile helper. One series per phase; interval
// readout via diffSnapshots keeps phases separable even though the
// registry never resets.
const telemetry::Histogram RequestHist =
    telemetry::histogramMetric("bench.serve.request_ns");

struct PhaseStats {
  double MeanNs = 0.0, P50Ns = 0.0, P95Ns = 0.0, P99Ns = 0.0;
  double ThroughputNsPerReq = 0.0; ///< Wall time / requests (aggregate).
  double HitRate = 0.0;
};

PhaseStats statsFromSnapshot(const telemetry::HistogramSnapshot &S) {
  PhaseStats P;
  P.MeanNs = S.mean();
  P.P50Ns = static_cast<double>(S.p50());
  P.P95Ns = static_cast<double>(S.p95());
  P.P99Ns = static_cast<double>(S.p99());
  return P;
}

/// Runs one phase: every client thread sends its share of the queries
/// over its own connection, timing each round trip.
PhaseStats runPhase(int Port, const std::vector<std::string> &SpecTexts,
                    size_t Clients) {
  std::vector<int> Cached(SpecTexts.size(), 0);
  std::vector<int> Failed(Clients, 0);
  const telemetry::HistogramSnapshot Before = RequestHist.snapshot();
  WallTimer Wall;
  std::vector<std::thread> Threads;
  for (size_t C = 0; C < Clients; ++C) {
    Threads.emplace_back([&, C] {
      ServeClient Client;
      std::string Error;
      if (!Client.connect(Port, Error)) {
        Failed[C] = 1;
        return;
      }
      for (size_t I = C; I < SpecTexts.size(); I += Clients) {
        WallTimer T;
        std::optional<VerifyReply> Reply =
            Client.verify(SpecTexts[I], Error);
        RequestHist.observe(static_cast<uint64_t>(T.seconds() * 1e9));
        if (!Reply || Reply->Results.empty()) {
          Failed[C] = 1;
          return;
        }
        Cached[I] = Reply->Results[0].Cached ? 1 : 0;
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();
  const double WallSec = Wall.seconds();
  for (size_t C = 0; C < Clients; ++C)
    if (Failed[C]) {
      std::fprintf(stderr, "error: client %zu failed its phase\n", C);
      std::exit(2);
    }

  PhaseStats S = statsFromSnapshot(
      telemetry::diffSnapshots(Before, RequestHist.snapshot()));
  size_t Hits = 0;
  for (int Flag : Cached)
    Hits += static_cast<size_t>(Flag);
  S.ThroughputNsPerReq = WallSec * 1e9 / SpecTexts.size();
  S.HitRate = static_cast<double>(Hits) / SpecTexts.size();
  return S;
}

struct OverloadStats {
  double P99Ns = 0.0;   ///< Over every request, shed answers included.
  double ShedRate = 0.0; ///< Fraction answered with "overloaded".
};

/// Floods a starved daemon (worker pool of 1, batch 1, queue capacity 2,
/// shed high-water 1) with \p Clients * \p PerClient uncacheable copies
/// of \p SpecText. Shed answers are expected and timed like any other
/// response; any other failure aborts the bench.
OverloadStats runOverloadPhase(const std::string &SpecText, size_t Clients,
                               size_t PerClient) {
  ServerOptions Opts;
  Opts.Port = 0;
  Opts.Sched.Jobs = 1;
  Opts.Sched.MaxBatch = 1;
  Opts.Sched.QueueCapacity = 2;
  Opts.Sched.ShedHighWater = 1;
  Server Daemon(Opts);
  std::string Error;
  if (!Daemon.start(Error)) {
    std::fprintf(stderr, "error: cannot start overload daemon: %s\n",
                 Error.c_str());
    std::exit(2);
  }
  const size_t Total = Clients * PerClient;
  std::vector<int> Shed(Total, 0);
  std::vector<int> Failed(Clients, 0);
  const telemetry::HistogramSnapshot Before = RequestHist.snapshot();
  std::vector<std::thread> Threads;
  for (size_t C = 0; C < Clients; ++C) {
    Threads.emplace_back([&, C] {
      ServeClient Client;
      std::string Err;
      if (!Client.connect(Daemon.boundPort(), Err)) {
        Failed[C] = 1;
        return;
      }
      for (size_t I = 0; I < PerClient; ++I) {
        const size_t Slot = C * PerClient + I;
        WallTimer T;
        std::optional<VerifyReply> Reply =
            Client.verify(SpecText, Err, /*UseCache=*/false);
        RequestHist.observe(static_cast<uint64_t>(T.seconds() * 1e9));
        if (Reply)
          continue;
        if (Client.lastErrorCode() == "overloaded") {
          Shed[Slot] = 1;
          continue;
        }
        Failed[C] = 1;
        return;
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();
  for (size_t C = 0; C < Clients; ++C)
    if (Failed[C]) {
      std::fprintf(stderr,
                   "error: client %zu failed the overload phase\n", C);
      std::exit(2);
    }
  Daemon.shutdown();

  OverloadStats S;
  size_t ShedCount = 0;
  for (int Flag : Shed)
    ShedCount += static_cast<size_t>(Flag);
  S.ShedRate = static_cast<double>(ShedCount) / Total;
  S.P99Ns = static_cast<double>(
      telemetry::diffSnapshots(Before, RequestHist.snapshot()).p99());
  return S;
}

} // namespace

int main() {
  const size_t Clients =
      static_cast<size_t>(std::max(1, envInt("CRAFT_SERVE_CLIENTS", 4)));
  const size_t Queries =
      static_cast<size_t>(std::max(1, envInt("CRAFT_SERVE_QUERIES", 32)));
  const int Jobs = envInt("CRAFT_SERVE_JOBS", 0);

  // One synthetic model for every query: the registry pins it after the
  // first load, so the cold phase already amortizes model IO. Untrained
  // weights are fine — the phase contrast measures verification cost vs
  // cache lookup, not certification rates.
  Rng ModelRng(20230617);
  MonDeq Model = MonDeq::randomFc(ModelRng, 10, 30, 4, 3.0);
  const std::string ModelPath = "serve_bench_model.bin";
  if (!Model.save(ModelPath)) {
    std::fprintf(stderr, "error: cannot write %s\n", ModelPath.c_str());
    return 2;
  }

  // Distinct queries: deterministic centers, one input block per spec
  // text so each request measures one query's round trip.
  Rng CenterRng(7);
  std::vector<std::string> SpecTexts;
  SpecTexts.reserve(Queries);
  for (size_t Q = 0; Q < Queries; ++Q) {
    // += pieces, not a `+` chain: GCC 12 -Wrestrict misfires on string
    // operator+ chains (same workaround as the spec parser and fig2).
    std::string S = "model ";
    S += ModelPath;
    S += "\noutput robust 0\nverifier craft\nalpha1 0.5\n"
         "epsilon 0.01\ninput linf\n  center";
    char Buf[32];
    for (size_t I = 0; I < Model.inputDim(); ++I) {
      std::snprintf(Buf, sizeof(Buf), " %.17g",
                    0.25 + 0.5 * CenterRng.uniform());
      S += Buf;
    }
    S += "\n";
    SpecTexts.push_back(std::move(S));
  }

  ServerOptions Opts;
  Opts.Port = 0;
  Opts.Sched.Jobs = Jobs == 0 ? -1 : Jobs;
  Opts.Sched.MaxBatch = 64;
  Server Daemon(Opts);
  std::string Error;
  if (!Daemon.start(Error)) {
    std::fprintf(stderr, "error: cannot start daemon: %s\n",
                 Error.c_str());
    return 2;
  }
  std::printf("bench_serve: %zu clients x %zu queries, jobs=%d, "
              "port=%d\n",
              Clients, Queries, Jobs, Daemon.boundPort());

  PhaseStats Cold = runPhase(Daemon.boundPort(), SpecTexts, Clients);
  if (Cold.HitRate != 0.0) {
    std::fprintf(stderr, "error: cold phase saw cache hits (%.2f)\n",
                 Cold.HitRate);
    return 2;
  }
  PhaseStats Hot = runPhase(Daemon.boundPort(), SpecTexts, Clients);

  // The daemon runs in-process, so its scheduler feeds the same registry:
  // read the server-side admission-queue wait straight from the series
  // the `metrics` envelope reports. Snapshot before the overload phase —
  // the starved daemon's (deliberately awful) waits are its own record.
  const double QueueWaitP99Ns = static_cast<double>(
      telemetry::histogramMetric("serve.queue_wait_ns").snapshot().p99());

  Daemon.shutdown();

  OverloadStats Over = runOverloadPhase(SpecTexts[0], Clients, 8);
  std::remove(ModelPath.c_str());

  auto Ms = [](double Ns) { return Ns / 1e6; };
  std::printf("\n%-10s %10s %10s %10s %10s %12s %8s\n", "phase", "mean",
              "p50", "p95", "p99", "req/s", "hits");
  for (const auto &[Name, S] :
       {std::pair<const char *, const PhaseStats &>{"cold", Cold},
        {"hot", Hot}})
    std::printf("%-10s %8.3fms %8.3fms %8.3fms %8.3fms %12.0f %7.0f%%\n",
                Name, Ms(S.MeanNs), Ms(S.P50Ns), Ms(S.P95Ns),
                Ms(S.P99Ns), 1e9 / S.ThroughputNsPerReq,
                100.0 * S.HitRate);
  std::printf("overload   p99 %8.3fms, shed rate %3.0f%% (starved "
              "daemon, %zu clients x 8)\n",
              Ms(Over.P99Ns), 100.0 * Over.ShedRate, Clients);

  std::string Dims = "c";
  Dims += std::to_string(Clients);
  Dims += 'q';
  Dims += std::to_string(Queries);
  std::vector<benchjson::Record> Records;
  auto addRecord = [&](const char *Op, double Ns, double HitRate = -1.0) {
    benchjson::Record R;
    R.Op = Op;
    R.Dims = Dims;
    R.NsPerOp = Ns;
    R.CacheHitRate = HitRate;
    Records.push_back(std::move(R));
  };
  addRecord("serve_cold_mean", Cold.MeanNs);
  addRecord("serve_cold_p95", Cold.P95Ns);
  addRecord("serve_cold_throughput", Cold.ThroughputNsPerReq);
  addRecord("serve_hot_mean", Hot.MeanNs, Hot.HitRate);
  addRecord("serve_hot_p95", Hot.P95Ns);
  addRecord("serve_hot_p99", Hot.P99Ns);
  addRecord("serve_hot_throughput", Hot.ThroughputNsPerReq);
  addRecord("serve_queue_wait_p99", QueueWaitP99Ns);
  addRecord("serve_overload_p99", Over.P99Ns);
  {
    // Shed rate rides in ns_per_op like the hit rate does; direction
    // "higher" flips the gate so a daemon that quietly stops shedding
    // (and starts blocking) regresses the record.
    benchjson::Record R;
    R.Op = "serve_shed_rate";
    R.Dims = Dims;
    R.NsPerOp = Over.ShedRate;
    R.Direction = "higher";
    Records.push_back(std::move(R));
  }
  benchjson::write("BENCH_serve.json", Records);

  const double Speedup = Cold.MeanNs / Hot.MeanNs;
  std::printf("\ncache speedup: %.1fx (mean cold / mean hot)\n", Speedup);
  if (Hot.HitRate < 1.0) {
    std::fprintf(stderr,
                 "FAIL: hot phase hit rate %.2f < 1.0 — identical "
                 "queries must be served from the cache\n",
                 Hot.HitRate);
    return 1;
  }
  if (Speedup < 5.0) {
    std::fprintf(stderr,
                 "FAIL: cache-hit mean latency is only %.1fx lower than "
                 "cold (acceptance bar: >= 5x)\n",
                 Speedup);
    return 1;
  }
  if (Over.ShedRate <= 0.0) {
    std::fprintf(stderr,
                 "FAIL: the saturated daemon never shed — overload must "
                 "be answered with 'overloaded', not absorbed by "
                 "blocking\n");
    return 1;
  }
  std::printf("OK: >= 5x cache-hit acceptance bar met, overload shed "
              "rate %.0f%%\n",
              100.0 * Over.ShedRate);
  return 0;
}
