//===- cert/Checker.cpp ---------------------------------------------------===//

#include "cert/Checker.h"

#include "domains/Activations.h"
#include "linalg/Lu.h"
#include "support/RoundedInterval.h"

#include <cmath>
#include <limits>

using namespace craft;

namespace {

/// The checker's own solver-step composition (independent of
/// core/AbstractSolver): state map, input map and offset for one FB or PR
/// iteration, plus the activation prefix.
struct StepMaps {
  size_t LatentDim = 0;
  size_t StateDim = 0;
  Matrix StateMatrix;
  CHZonotope InputContrib; ///< InputMatrix * X, ids shared across steps.
  Vector Offset;
  ActivationKind Act = ActivationKind::ReLU;
  double Alpha = 1.0;
};

StepMaps buildStepMaps(const MonDeq &Model, Splitting Method, double Alpha,
                       const CHZonotope &X) {
  const size_t P = Model.latentDim();
  StepMaps Maps;
  Maps.LatentDim = P;
  Maps.Act = Model.activation();
  Maps.Alpha = Alpha;

  Matrix InputMatrix;
  if (Method == Splitting::ForwardBackward) {
    Maps.StateDim = P;
    Maps.StateMatrix = Alpha * Model.weightW();
    for (size_t I = 0; I < P; ++I)
      Maps.StateMatrix(I, I) += 1.0 - Alpha;
    InputMatrix = Alpha * Model.weightU();
    Maps.Offset = Alpha * Model.biasZ();
  } else {
    Maps.StateDim = 2 * P;
    Matrix M = Matrix::identity(P) +
               Alpha * (Matrix::identity(P) - Model.weightW());
    Matrix MInv = LuDecomposition(M).inverse();
    Matrix T = 2.0 * MInv - Matrix::identity(P);
    Maps.StateMatrix = Matrix(2 * P, 2 * P);
    Matrix InputHalf = (2.0 * Alpha) * (MInv * Model.weightU());
    Vector OffsetHalf = (2.0 * Alpha) * (MInv * Model.biasZ());
    InputMatrix = Matrix(2 * P, Model.inputDim());
    Maps.Offset = Vector(2 * P);
    for (size_t I = 0; I < P; ++I) {
      for (size_t J = 0; J < P; ++J) {
        Maps.StateMatrix(I, J) = 2.0 * T(I, J);
        Maps.StateMatrix(I, P + J) = -T(I, J);
        Maps.StateMatrix(P + I, J) = 2.0 * T(I, J);
        Maps.StateMatrix(P + I, P + J) = -T(I, J);
      }
      for (size_t J = 0; J < Model.inputDim(); ++J) {
        InputMatrix(I, J) = InputHalf(I, J);
        InputMatrix(P + I, J) = InputHalf(I, J);
      }
      Maps.Offset[I] = OffsetHalf[I];
      Maps.Offset[P + I] = OffsetHalf[I];
    }
  }
  Maps.InputContrib = X.affine(InputMatrix, Vector(Maps.StateDim, 0.0));
  return Maps;
}

CHZonotope stepOnce(const StepMaps &Maps, const CHZonotope &S,
                    double LambdaScale, bool AbsorbIntoBox) {
  Matrix Identity = Matrix::identity(Maps.StateDim);
  std::pair<const Matrix *, const CHZonotope *> Terms[] = {
      {&Maps.StateMatrix, &S}, {&Identity, &Maps.InputContrib}};
  CHZonotope Pre = CHZonotope::linearCombine(Terms, Maps.Offset);
  switch (Maps.Act) {
  case ActivationKind::ReLU:
    return Pre.reluPrefix(Maps.LatentDim, Vector(), AbsorbIntoBox,
                          LambdaScale);
  case ActivationKind::Sigmoid:
    return applyProxActivationPrefix(Pre, SmoothActivation::Sigmoid,
                                     Maps.Alpha, Maps.LatentDim);
  case ActivationKind::Tanh:
    return applyProxActivationPrefix(Pre, SmoothActivation::Tanh,
                                     Maps.Alpha, Maps.LatentDim);
  }
  return Pre;
}

/// Rigorous per-row |R M| 1 (upper bounds) and ||R M||_inf upper bound.
void rigorousRowAbsSums(const Matrix &R, const Matrix &M,
                        std::vector<double> &RowUpper, double &NormUpper) {
  const size_t P = R.rows();
  const size_t K = M.cols();
  RowUpper.assign(P, 0.0);
  NormUpper = 0.0;
  for (size_t I = 0; I < P; ++I) {
    RInterval Sum(0.0);
    for (size_t C = 0; C < K; ++C) {
      RInterval Entry(0.0);
      for (size_t J = 0; J < R.cols(); ++J)
        Entry = Entry + RInterval(R(I, J)) * RInterval(M(J, C));
      Sum = Sum + Entry.abs();
    }
    RowUpper[I] = Sum.Hi;
    if (!(Sum.Hi <= NormUpper)) // NaN-hostile max.
      NormUpper = Sum.Hi;
  }
}

/// Rigorous margins of the z-part of \p S: per rival class, a lower bound
/// on (V_t - V_i) z + (v_t - v_i) over the concretization. Returns the
/// minimum over rivals.
double rigorousMarginLower(const MonDeq &Model, const CHZonotope &S,
                           size_t LatentDim, int TargetClass) {
  const Matrix &V = Model.weightV();
  const Vector &VB = Model.biasY();
  const Matrix &A = S.generators();
  const Vector &C = S.center();
  const Vector &B = S.boxRadius();
  double Worst = 1e300;
  for (size_t Rival = 0; Rival < Model.outputDim(); ++Rival) {
    if ((int)Rival == TargetClass)
      continue;
    RInterval CenterTerm(VB[TargetClass] - VB[Rival]);
    RInterval Radius(0.0);
    for (size_t J = 0; J < LatentDim; ++J) {
      RInterval D =
          RInterval(V(TargetClass, J)) - RInterval(V(Rival, J));
      CenterTerm = CenterTerm + D * RInterval(C[J]);
      Radius = Radius + D.abs() * RInterval(B[J]);
    }
    for (size_t K = 0; K < A.cols(); ++K) {
      RInterval Coef(0.0);
      for (size_t J = 0; J < LatentDim; ++J) {
        RInterval D =
            RInterval(V(TargetClass, J)) - RInterval(V(Rival, J));
        Coef = Coef + D * RInterval(A(J, K));
      }
      Radius = Radius + Coef.abs();
    }
    RInterval Lower = CenterTerm - Radius;
    Worst = std::fmin(Worst, Lower.Lo);
  }
  return Worst;
}

} // namespace

CheckReport craft::checkCertificate(const MonDeq &Model,
                                    const RobustnessCertificate &Cert) {
  CheckReport Report;

  // Stage 1: binding and recipe sanity.
  if (hashModel(Model) != Cert.ModelHash) {
    Report.Stage = "model-hash";
    return Report;
  }
  const size_t P = Model.latentDim();
  size_t ExpectDim =
      Cert.Phase1Method == Splitting::PeacemanRachford ? 2 * P : P;
  if (Cert.InLo.size() != Model.inputDim() ||
      Cert.InHi.size() != Model.inputDim() ||
      Cert.Outer.dim() != ExpectDim ||
      Cert.Outer.numGenerators() != ExpectDim || Cert.TargetClass < 0 ||
      (size_t)Cert.TargetClass >= Model.outputDim() || Cert.Alpha1 <= 0.0 ||
      Cert.ContainSteps < 1 || Cert.Domain == VerifierDomain::Box) {
    Report.Stage = "recipe";
    return Report;
  }
  // Replay in the domain that certified: with the box component off
  // (classic Zonotope) the ReLU mints fresh error columns instead of
  // absorbing nonlinearity into the box radius. Both transformers are
  // sound, so the domain only has to match the recipe, not be trusted.
  const bool AbsorbIntoBox = absorbBoxFor(Cert.Domain);
  // Phase-2 preservation preconditions: FB needs alpha in [0, 1]
  // (Thm 5.1 / the prox resolvent identity); PR preserves fixpoints only
  // at the phase-1 step size (its auxiliary state depends on alpha).
  if (Cert.Phase2Method == Splitting::ForwardBackward) {
    if (Cert.Alpha2 < 0.0 || Cert.Alpha2 > 1.0) {
      Report.Stage = "recipe";
      return Report;
    }
  } else if (Cert.Alpha2 != Cert.Alpha1) {
    Report.Stage = "recipe";
    return Report;
  }

  // Stage 2: replay phase 1 from Outer and rigorously re-check Thm 4.2.
  CHZonotope X = CHZonotope::fromBox(Cert.InLo, Cert.InHi);
  StepMaps Phase1 =
      buildStepMaps(Model, Cert.Phase1Method, Cert.Alpha1, X);
  if (Phase1.StateDim != Cert.Outer.dim()) {
    Report.Stage = "recipe";
    return Report;
  }
  CHZonotope S = Cert.Outer;
  for (int Step = 0; Step < Cert.ContainSteps; ++Step)
    S = stepOnce(Phase1, S, 1.0, AbsorbIntoBox);

  const Matrix &A = Cert.Outer.generators();
  LuDecomposition Lu(A);
  if (Lu.isSingular()) {
    Report.InverseResidual = std::numeric_limits<double>::infinity();
    Report.Stage = "inverse";
    return Report;
  }
  Matrix R = Lu.inverse(); // Approximate; verified below.
  for (size_t I = 0; I < R.rows(); ++I)
    for (size_t J = 0; J < R.cols(); ++J)
      if (!std::isfinite(R(I, J))) {
        Report.InverseResidual = std::numeric_limits<double>::infinity();
        Report.Stage = "inverse";
        return Report;
      }

  // delta >= ||R A - I||_inf, rigorously. NaN-hostile comparisons
  // throughout: fmax ignores NaN operands, so the accumulation uses the
  // !(x <= y) form that treats NaN as failure.
  double Delta = 0.0;
  {
    const size_t N = A.rows();
    for (size_t I = 0; I < N; ++I) {
      RInterval RowSum(0.0);
      for (size_t J = 0; J < N; ++J) {
        RInterval Entry(0.0);
        for (size_t K = 0; K < N; ++K)
          Entry = Entry + RInterval(R(I, K)) * RInterval(A(K, J));
        if (I == J)
          Entry = Entry - RInterval(1.0);
        RowSum = RowSum + Entry.abs();
      }
      if (!(RowSum.Hi <= Delta))
        Delta = RowSum.Hi;
    }
  }
  Report.InverseResidual = Delta;
  if (!(Delta < 1.0)) { // Rejects NaN as well.
    Report.Stage = "inverse";
    return Report;
  }

  // Residual box d = max(0, |a' - a| + b' - b), rigorous upper bounds.
  const size_t N = Cert.Outer.dim();
  Matrix DiagD(N, N);
  {
    const Vector &AOut = Cert.Outer.center();
    const Vector &BOut = Cert.Outer.boxRadius();
    const Vector &AIn = S.center();
    const Vector &BIn = S.boxRadius();
    for (size_t I = 0; I < N; ++I) {
      RInterval D = (RInterval(AIn[I]) - RInterval(AOut[I])).abs() +
                    RInterval(BIn[I]) - RInterval(BOut[I]);
      DiagD(I, I) = D.max0().Hi;
    }
  }

  // Thm 4.2 with the verified inverse: per row,
  //   |A^{-1} A'| 1 + |A^{-1} diag(d)| 1
  //     <= |R A'| 1 + |R diag(d)| 1 + delta/(1-delta) (||R A'|| + ||R d||).
  {
    std::vector<double> T1, T2;
    double N1 = 0.0, N2 = 0.0;
    rigorousRowAbsSums(R, S.generators(), T1, N1);
    rigorousRowAbsSums(R, DiagD, T2, N2);
    RInterval DeltaIv(Delta);
    RInterval Correction =
        DeltaIv / (RInterval(1.0) - DeltaIv) * (RInterval(N1) + RInterval(N2));
    double WorstRow = 0.0;
    for (size_t I = 0; I < N; ++I) {
      RInterval Row =
          RInterval(T1[I]) + RInterval(T2[I]) + Correction;
      if (!(Row.Hi <= WorstRow)) // NaN-hostile max.
        WorstRow = Row.Hi;
    }
    Report.ContainmentSlack = WorstRow;
    if (!(WorstRow <= 1.0)) {
      Report.Stage = "containment";
      return Report;
    }
  }

  // Stage 3: phase-2 replay with rigorous margins. S provably contains the
  // true fixpoint set; every fixpoint-set-preserving step keeps that.
  auto checkMargins = [&](const CHZonotope &State) {
    double Lower =
        rigorousMarginLower(Model, State, P, Cert.TargetClass);
    Report.MarginLower = std::fmax(Report.MarginLower, Lower);
    return Lower > 0.0;
  };

  CHZonotope S2 = S;
  bool SwitchToLatent = Cert.Phase2Method == Splitting::ForwardBackward &&
                        Cert.Phase1Method == Splitting::PeacemanRachford;
  if (SwitchToLatent)
    S2 = S.slice(0, P);
  if (checkMargins(S2)) {
    Report.Ok = true;
    Report.Stage = "ok";
    Report.CertifiedAtStep = 0;
    return Report;
  }
  StepMaps Phase2 = Cert.Phase2Method == Cert.Phase1Method &&
                            Cert.Alpha2 == Cert.Alpha1
                        ? Phase1
                        : buildStepMaps(Model, Cert.Phase2Method,
                                        Cert.Alpha2, X);
  for (int Step = 1; Step <= Cert.Phase2Steps; ++Step) {
    S2 = stepOnce(Phase2, S2, Cert.LambdaScale, AbsorbIntoBox);
    if (checkMargins(S2)) {
      Report.Ok = true;
      Report.Stage = "ok";
      Report.CertifiedAtStep = Step;
      return Report;
    }
  }
  Report.Stage = "margins";
  return Report;
}
