//===- support/Table.h - Console table formatting ---------------*- C++ -*-===//
//
// Part of the Craft reproduction (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Column-aligned console table printer used by the benchmark harnesses to
/// emit the same rows the paper's tables report, plus small numeric
/// formatting helpers.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFT_SUPPORT_TABLE_H
#define CRAFT_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace craft {

/// Collects string rows and prints them with per-column alignment. Used by
/// every bench/* harness so the reproduced tables are easy to diff against
/// the paper.
class TablePrinter {
public:
  explicit TablePrinter(std::vector<std::string> Headers)
      : Headers(std::move(Headers)) {}

  void addRow(std::vector<std::string> Row);

  /// Renders the table (headers, separator, rows) to stdout.
  void print() const;

private:
  std::vector<std::string> Headers;
  std::vector<std::vector<std::string>> Rows;
};

/// Formats \p Value with \p Precision digits after the decimal point.
std::string fmt(double Value, int Precision = 2);

/// Formats \p Value as an integer string.
std::string fmt(long Value);

} // namespace craft

#endif // CRAFT_SUPPORT_TABLE_H
