//===- tool/SpecCanon.h - Canonical spec serialization ----------*- C++ -*-===//
//
// Part of the Craft reproduction (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Canonical, content-addressed identity for verification queries: the
/// serve layer's ResultCache keys and deterministic per-request seeds both
/// derive from it. `canonicalSpec` renders every outcome-relevant field of
/// a VerificationSpec in one fixed order with lossless double formatting
/// (%.17g round-trips every finite double and is injective on them), so
/// two specs produce the same string iff they request the same computation.
///
/// Deliberately excluded from the canonical form:
///  - ModelPath — the model's identity is its semantic content hash
///    (`hashModel`), which the caller appends via `serveCacheKey`; two
///    paths to byte-identical models share cache entries.
///  - CertificatePath — witness emission is a side effect, not part of
///    the verification outcome. Queries that request a certificate bypass
///    the cache entirely (the scheduler enforces this).
///
//===----------------------------------------------------------------------===//

#ifndef CRAFT_TOOL_SPECCANON_H
#define CRAFT_TOOL_SPECCANON_H

#include "tool/SpecParser.h"

#include <cstdint>
#include <string>

namespace craft {

/// FNV-1a 64-bit over \p Size bytes at \p Data (the same construction the
/// certificate layer's model hash uses).
uint64_t fnv1a64(const void *Data, size_t Size);

/// Renders every outcome-relevant field of \p Spec (not ModelPath /
/// CertificatePath — see file comment) in one fixed order. Stable across
/// runs, platforms, and backends.
std::string canonicalSpec(const VerificationSpec &Spec);

/// Cache key for one (query, model) pair: the canonical spec with the
/// model's semantic hash appended. Identical keys get identical outcomes
/// — the serve determinism contract rests on this.
std::string serveCacheKey(const VerificationSpec &Spec, uint64_t ModelHash);

/// Deterministic per-request attack seed for serve traffic: derived from
/// the cache key alone, never from admission order or batch composition,
/// so a query's outcome does not depend on which requests it shared a
/// batch with. (The one-shot batch driver derives seeds from the batch
/// index instead; a serve batch has no stable index.)
uint64_t serveAttackSeed(uint64_t BaseSeed, const std::string &CacheKey);

} // namespace craft

#endif // CRAFT_TOOL_SPECCANON_H
