//===- serve/ModelRegistry.cpp --------------------------------------------===//

#include "serve/ModelRegistry.h"

#include "cert/Certificate.h"

using namespace craft;
using namespace craft::serve;

ModelRegistry::Entry ModelRegistry::get(const std::string &Path) {
  Pinned *Slot;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Slot = &Entries[Path]; // std::map: reference stays valid forever.
  }
  // The load runs outside the registry mutex — a slow disk read of one
  // model must not serialize requests for already-pinned models — and
  // call_once collapses concurrent first requests into one load.
  std::call_once(Slot->Once, [&] {
    std::optional<MonDeq> Loaded = MonDeq::load(Path);
    if (!Loaded) {
      Slot->Error = "cannot load model '" + Path + "'";
      return;
    }
    Slot->Model = std::make_unique<MonDeq>(std::move(*Loaded));
    Slot->Hash = hashModel(*Slot->Model);
    Slot->Model->fbAlphaBound(); // Warm the lazy cache before sharing.
  });
  Entry E;
  E.Model = Slot->Model.get();
  E.Hash = Slot->Hash;
  E.Error = Slot->Error;
  return E;
}

size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Entries.size();
}

size_t ModelRegistry::loadedCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  size_t N = 0;
  for (const auto &Entry : Entries)
    if (Entry.second.Model)
      ++N;
  return N;
}
