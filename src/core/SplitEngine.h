//===- core/SplitEngine.h - Parallel split work-queue -----------*- C++ -*-===//
//
// Part of the Craft reproduction (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The branch-and-bound work-queue engine behind both domain-splitting
/// entry points (core/DomainSplitting.h): a frontier worklist of
/// path-encoded regions expanded in waves over support/ThreadPool.
///
/// Region identity is the bisection path (root = 1, low child = P << 1,
/// high child = P << 1 | 1), so a region's box, probe seed, and processing
/// order are pure functions of the root box — never of scheduling. Each
/// wave runs three phases:
///
///  1. probe (parallel): the region center is classified concretely; in
///     refutation mode a misclassified center is a definitive
///     counterexample. Every probe of the wave runs and the lowest-path
///     refutation wins, so the reported witness is identical for every
///     worker count.
///  2. verify (parallel): the Craft verifier runs on every surviving
///     region. A refutation in phase 1 aborts the whole search before this
///     phase starts — that is the early-abort broadcast, applied at wave
///     granularity precisely so outcomes stay byte-identical for
///     jobs = 1 vs N.
///  3. expand (sequential): uncertified regions below the depth budget are
///     bisected along their widest splittable dimension and their children
///     appended to the next frontier in path order.
///
/// Certified measure is tracked by exact leaf accounting: a leaf at depth
/// d owns exactly 2^(EffectiveMaxDepth - d) units of the root's
/// 2^EffectiveMaxDepth, in integer arithmetic, so a fully certified box
/// reports fraction 1.0 exactly — including boxes with degenerate
/// (zero-width) dimensions, whose geometric volume is 0 and which the old
/// volume-ratio bookkeeping could never certify. measureOf() is the
/// matching geometric measure over non-degenerate dimensions only.
///
/// Undecided max-depth leaves can optionally be attacked with PGD probes,
/// seeded per region as taskSeed(ProbeSeedBase, path), run in fixed-size
/// chunks (again: deterministic early abort).
///
//===----------------------------------------------------------------------===//

#ifndef CRAFT_CORE_SPLITENGINE_H
#define CRAFT_CORE_SPLITENGINE_H

#include "attack/Pgd.h"
#include "core/Verifier.h"

#include <cstdint>
#include <vector>

namespace craft {

/// Bisection-path region id: root = 1; low child = P << 1, high child =
/// P << 1 | 1. The leading 1 bit keeps depth recoverable from the id.
using RegionPath = uint64_t;

/// Deepest split budget the exact unit accounting supports (unit counts
/// are uint64, the root owning 2^depth units). Budgets beyond this are
/// clamped; 2^62 regions is far past any feasible workload anyway.
constexpr int MaxSupportedSplitDepth = 62;

/// Geometric measure of [Lo, Hi] over its non-degenerate dimensions only:
/// the product of Hi[i] - Lo[i] over every i with Hi[i] > Lo[i]. A box
/// that is degenerate in every dimension (a point) has measure 1 (the
/// empty product), never 0 — callers divide by this.
double measureOf(const Vector &Lo, const Vector &Hi);

/// Engine knobs.
struct SplitEngineOptions {
  /// Bisections allowed on any root-to-leaf path (clamped to
  /// MaxSupportedSplitDepth).
  int MaxDepth = 8;
  /// Worker threads per wave (<= 0 = all hardware threads, 1 = inline).
  /// Outcomes are byte-identical for every value.
  int Jobs = 1;
  /// >= 0: refutation mode — certify every region against this class and
  /// treat a misclassified region center as a definitive counterexample.
  /// < 0: global mode — certify each region against the class its own
  /// center predicts; nothing refutes.
  int TargetClass = -1;
  /// Refutation mode only: attack undecided max-depth leaves with PGD,
  /// seeded per region as taskSeed(ProbeSeedBase, path).
  bool PgdProbes = false;
  /// Probe template; Epsilon and Seed are overridden per leaf.
  PgdOptions Pgd;
  uint64_t ProbeSeedBase = 20230617;
};

/// One leaf of the finished (or aborted) splitting tree.
struct SplitLeaf {
  RegionPath Path = 1;
  int Depth = 0;
  Vector Lo, Hi;
  /// Certified class (global mode: the center's class; refutation mode:
  /// the target class); -1 = undecided.
  int CertifiedClass = -1;
};

/// Aggregate engine outcome.
struct SplitEngineResult {
  /// Leaves in wave (breadth-first path) order. Partial when Refuted.
  std::vector<SplitLeaf> Leaves;
  bool Refuted = false;
  bool RefutedByPgd = false; ///< Witness came from a PGD probe.
  Vector Counterexample;     ///< Valid when Refuted.
  RegionPath CounterexamplePath = 0; ///< Region that produced the witness.
  uint64_t PgdSeed = 0; ///< Seed of the refuting PGD probe (0 otherwise).
  size_t NumVerifierCalls = 0;
  size_t NumCertified = 0; ///< Certified leaves.
  size_t NumUndecided = 0; ///< Undecided leaves.
  size_t NumWaves = 0;
  size_t NumPgdProbes = 0;
  /// Exact leaf accounting in units of 2^-EffectiveMaxDepth of the root:
  /// CertifiedUnits == TotalUnits iff every leaf certified.
  uint64_t CertifiedUnits = 0;
  uint64_t TotalUnits = 0;
  int EffectiveMaxDepth = 0;

  /// Certified fraction of the root box under the unit measure; exactly
  /// 1.0 when every leaf certified (degenerate dimensions included).
  double certifiedFraction() const {
    return TotalUnits == 0
               ? 0.0
               : static_cast<double>(CertifiedUnits) /
                     static_cast<double>(TotalUnits);
  }
  bool fullyCertified() const {
    return !Refuted && TotalUnits != 0 && CertifiedUnits == TotalUnits;
  }
};

/// Runs the work-queue engine on the box [Lo, Hi]. \p Model is strictly
/// read-only (its lazy alpha-bound cache is warmed before fan-out), so one
/// instance is shared by every worker.
SplitEngineResult runSplitEngine(const MonDeq &Model,
                                 const CraftConfig &Config, const Vector &Lo,
                                 const Vector &Hi,
                                 const SplitEngineOptions &Opts);

} // namespace craft

#endif // CRAFT_CORE_SPLITENGINE_H
