//===- tests/test_telemetry.cpp - Observability layer tests ---------------===//
//
// Tests for support/Telemetry and support/TraceJson: histogram bucket
// math and percentile edge cases (zero samples, single bucket, overflow,
// monotonicity), counter/gauge handle semantics, the sorted registry
// snapshot, Chrome-trace export well-formedness (strict JSON, balanced
// and properly nested B/E pairs per thread), per-query phase breakdowns,
// and the determinism contract: verification outcomes are byte-identical
// with timing enabled or disabled.
//
//===----------------------------------------------------------------------===//

#include "nn/MonDeq.h"
#include "serve/Protocol.h" // json::parse for trace validation.
#include "support/Rng.h"
#include "support/Telemetry.h"
#include "support/TraceJson.h"
#include "tool/Driver.h"
#include "tool/SpecParser.h"

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

using namespace craft;
using namespace craft::telemetry;
using json::Value;

//===----------------------------------------------------------------------===//
// Histogram bucket math
//===----------------------------------------------------------------------===//

TEST(HistogramTest, SmallValuesHaveExactBuckets) {
  // 0..3 get a bucket each, and the first octaves have sub-bucket width
  // 1, so small values report exact percentiles.
  for (uint64_t V = 0; V < 4; ++V)
    EXPECT_EQ(Histogram::bucketFor(V), V);
  for (uint64_t V = 0; V < 8; ++V)
    EXPECT_EQ(Histogram::bucketUpperBound(Histogram::bucketFor(V)), V);
}

TEST(HistogramTest, BucketForIsMonotoneAndBoundedByUpperBound) {
  uint64_t Prev = 0;
  for (uint64_t V = 1; V != 0 && V <= (1ull << 62); V = V * 2 + 1) {
    size_t B = Histogram::bucketFor(V);
    EXPECT_GE(B, Prev) << "bucketFor not monotone at " << V;
    EXPECT_LT(B, Histogram::NumBuckets);
    EXPECT_GE(Histogram::bucketUpperBound(B), V)
        << "value escapes its bucket's upper bound";
    Prev = B;
  }
}

TEST(HistogramTest, UpperBoundLandsInItsOwnBucket) {
  for (size_t I = 0; I < Histogram::NumBuckets; ++I)
    EXPECT_EQ(Histogram::bucketFor(Histogram::bucketUpperBound(I)), I);
}

TEST(HistogramTest, OverflowValuesLandInFinalBucket) {
  EXPECT_EQ(Histogram::bucketFor(UINT64_MAX), Histogram::NumBuckets - 1);
  EXPECT_EQ(Histogram::bucketUpperBound(Histogram::NumBuckets - 1),
            UINT64_MAX);
}

TEST(HistogramTest, ZeroSamplesReadAsZeroEverywhere) {
  HistogramSnapshot Empty;
  EXPECT_EQ(Empty.Count, 0u);
  EXPECT_EQ(Empty.percentile(0.0), 0u);
  EXPECT_EQ(Empty.p50(), 0u);
  EXPECT_EQ(Empty.p99(), 0u);
  EXPECT_EQ(Empty.mean(), 0.0);

  Histogram H = histogramMetric("test.hist.empty");
  HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.Count, 0u);
  EXPECT_EQ(S.p95(), 0u);
}

TEST(HistogramTest, SingleBucketCollapsesAllPercentiles) {
  Histogram H = histogramMetric("test.hist.single");
  for (int I = 0; I < 5; ++I)
    H.observe(7);
  HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.Count, 5u);
  EXPECT_EQ(S.Sum, 35u);
  EXPECT_EQ(S.mean(), 7.0);
  uint64_t Expect = Histogram::bucketUpperBound(Histogram::bucketFor(7));
  EXPECT_EQ(S.p50(), Expect);
  EXPECT_EQ(S.p95(), Expect);
  EXPECT_EQ(S.p99(), Expect);
}

TEST(HistogramTest, PercentilesAreExactForSmallValues) {
  Histogram H = histogramMetric("test.hist.smallvals");
  H.observe(1);
  H.observe(2);
  H.observe(3);
  HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.Count, 3u);
  EXPECT_EQ(S.p50(), 2u); // Rank ceil(1.5) = 2nd sample.
  EXPECT_EQ(S.p99(), 3u);
}

TEST(HistogramTest, PercentilesAreMonotoneInP) {
  Histogram H = histogramMetric("test.hist.monotone");
  for (uint64_t V : {1ull, 10ull, 100ull, 1000ull, 10000ull, 100000ull})
    H.observe(V);
  HistogramSnapshot S = H.snapshot();
  uint64_t Prev = 0;
  for (double P : {0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0}) {
    uint64_t At = S.percentile(P);
    EXPECT_GE(At, Prev) << "percentile not monotone at P=" << P;
    Prev = At;
  }
  EXPECT_GE(S.percentile(100.0), 100000u);
}

TEST(HistogramTest, OverflowSamplesCountAndReportSaturatedPercentile) {
  Histogram H = histogramMetric("test.hist.overflow");
  H.observe(UINT64_MAX);
  H.observe(UINT64_MAX - 1);
  HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.Count, 2u);
  EXPECT_EQ(S.p99(), UINT64_MAX);
}

//===----------------------------------------------------------------------===//
// Counters, gauges, and the registry snapshot
//===----------------------------------------------------------------------===//

TEST(MetricsRegistryTest, SameNameAliasesSameSeries) {
  Counter A = counterMetric("test.counter.alias");
  Counter B = counterMetric("test.counter.alias");
  uint64_t Before = B.value();
  A.add(3);
  A.increment();
  EXPECT_EQ(B.value(), Before + 4);
}

TEST(MetricsRegistryTest, CountsSurviveThreadExit) {
  Counter C = counterMetric("test.counter.threaded");
  uint64_t Before = C.value();
  std::thread T([&C] { C.add(10); });
  T.join();
  // The worker's shard retired when it exited; its counts must remain.
  EXPECT_EQ(C.value(), Before + 10);
}

TEST(MetricsRegistryTest, GaugeSetAddAndNoteMax) {
  Gauge G = gaugeMetric("test.gauge.basic");
  G.set(5);
  EXPECT_EQ(G.value(), 5);
  G.noteMax(3); // Below: no effect.
  EXPECT_EQ(G.value(), 5);
  G.noteMax(9);
  EXPECT_EQ(G.value(), 9);
  G.add(-2);
  EXPECT_EQ(G.value(), 7);
}

TEST(MetricsRegistryTest, SnapshotIsSortedAndContainsRegisteredSeries) {
  counterMetric("test.snap.counter").increment();
  gaugeMetric("test.snap.gauge").set(1);
  histogramMetric("test.snap.hist").observe(1);
  MetricsSnapshot Snap = snapshotMetrics();

  auto contains = [](const auto &Section, const std::string &Name) {
    for (const auto &Entry : Section)
      if (Entry.first == Name)
        return true;
    return false;
  };
  EXPECT_TRUE(contains(Snap.Counters, "test.snap.counter"));
  EXPECT_TRUE(contains(Snap.Gauges, "test.snap.gauge"));
  EXPECT_TRUE(contains(Snap.Histograms, "test.snap.hist"));

  for (size_t I = 1; I < Snap.Counters.size(); ++I)
    EXPECT_LT(Snap.Counters[I - 1].first, Snap.Counters[I].first);
  for (size_t I = 1; I < Snap.Gauges.size(); ++I)
    EXPECT_LT(Snap.Gauges[I - 1].first, Snap.Gauges[I].first);
  for (size_t I = 1; I < Snap.Histograms.size(); ++I)
    EXPECT_LT(Snap.Histograms[I - 1].first, Snap.Histograms[I].first);
}

//===----------------------------------------------------------------------===//
// Trace export
//===----------------------------------------------------------------------===//

namespace {

/// Parses \p Doc with the strict JSON parser and fails the test on error.
Value parseTrace(const std::string &Doc) {
  std::string Error;
  std::optional<Value> V = json::parse(Doc, Error);
  EXPECT_TRUE(V.has_value()) << Error << "\n" << Doc;
  return V ? *V : Value();
}

} // namespace

TEST(TraceJsonTest, EmptyRingYieldsValidDocument) {
  clearTrace();
  Value V = parseTrace(tracejson::toChromeTraceJson());
  const Value *Events = V.find("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_TRUE(Events->isArray());
  EXPECT_TRUE(Events->elements().empty());
}

TEST(TraceJsonTest, ExportsBalancedProperlyNestedEvents) {
  setTimingEnabledForTest(true);
  setTraceEnabled(true);
  clearTrace();
  {
    TRACE_SPAN("test.outer");
    {
      TRACE_SPAN("test.inner");
    }
    {
      TRACE_SPAN("test.inner2");
    }
  }
  std::thread T([] {
    setCurrentThreadLabel("test worker");
    TRACE_SPAN("test.thread");
  });
  T.join();
  setTraceEnabled(false);

  Value V = parseTrace(tracejson::toChromeTraceJson());
  const Value *Events = V.find("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_TRUE(Events->isArray());

  // Replay the stream: per thread, every E must close the B on top of
  // the stack (balanced, properly nested), and every stack must drain.
  std::map<int, std::vector<std::string>> Stacks;
  size_t Begins = 0;
  bool SawWorkerLabel = false;
  for (const Value &E : Events->elements()) {
    const std::string Ph = E.stringOr("ph", "");
    const int Tid = static_cast<int>(E.numberOr("tid", -1));
    ASSERT_GE(Tid, 0);
    if (Ph == "M") {
      if (E.stringOr("name", "") == "thread_name" && E.find("args") &&
          E.find("args")->stringOr("name", "") == "test worker")
        SawWorkerLabel = true;
      continue;
    }
    if (Ph == "B") {
      Stacks[Tid].push_back(E.stringOr("name", ""));
      ++Begins;
      continue;
    }
    ASSERT_EQ(Ph, "E") << "unexpected event phase";
    ASSERT_FALSE(Stacks[Tid].empty()) << "E without a matching B";
    EXPECT_EQ(Stacks[Tid].back(), E.stringOr("name", ""))
        << "E closes a span other than the innermost open one";
    Stacks[Tid].pop_back();
  }
  for (const auto &[Tid, Stack] : Stacks)
    EXPECT_TRUE(Stack.empty()) << "unclosed span on tid " << Tid;
  EXPECT_GE(Begins, 4u) << "outer, two inner, and the thread span";
  EXPECT_TRUE(SawWorkerLabel);
  clearTrace();
}

TEST(TraceJsonTest, SpansAreInertWhenTracingIsOff) {
  setTraceEnabled(false);
  clearTrace();
  {
    TRACE_SPAN("test.should.not.record");
  }
  EXPECT_TRUE(traceSpans().empty());
}

TEST(TraceJsonTest, MaybeWriteTraceIsANoOpWhenDisarmed) {
  setTraceEnabled(false);
  std::string Error;
  EXPECT_TRUE(tracejson::maybeWriteTrace("/nonexistent/dir/t.json", Error));
  EXPECT_TRUE(Error.empty());
}

//===----------------------------------------------------------------------===//
// Phase breakdown and the determinism contract
//===----------------------------------------------------------------------===//

namespace {

struct TelemetryFixture {
  std::string ModelPath = "/tmp/craft_telemetry_model.bin";
  VerificationSpec Spec;
};

const TelemetryFixture &fixture() {
  static TelemetryFixture *F = [] {
    auto *Out = new TelemetryFixture;
    Rng InitRng(91);
    MonDeq Model = MonDeq::randomFc(InitRng, 4, 8, 3, 3.0);
    Model.save(Out->ModelPath);
    VerificationSpec &S = Out->Spec;
    S.ModelPath = Out->ModelPath;
    S.Center = Vector{0.4, 0.5, 0.6, 0.45};
    S.Epsilon = 0.02;
    S.TargetClass = 0;
    S.Alpha1 = 0.5;
    S.InLo = Vector(S.Center.size());
    S.InHi = Vector(S.Center.size());
    for (size_t I = 0; I < S.Center.size(); ++I) {
      S.InLo[I] = S.Center[I] - S.Epsilon;
      S.InHi[I] = S.Center[I] + S.Epsilon;
    }
    return Out;
  }();
  return *F;
}

} // namespace

TEST(PhaseBreakdownTest, PopulatedWithTimingOnAndAttributesSolverTime) {
  setTimingEnabledForTest(true);
  RunOutcome Out = runSpec(fixture().Spec);
  ASSERT_TRUE(Out.ModelLoaded) << Out.Detail;
  ASSERT_FALSE(Out.Error) << Out.Detail;
  EXPECT_TRUE(Out.Phases.Populated);
  EXPECT_GE(Out.Phases.SolverMs, 0.0);
  EXPECT_GT(Out.Phases.SolverIterations, 0u);
  // Consolidation is a slice of the solver phase, never more than it.
  EXPECT_LE(Out.Phases.ConsolidationMs, Out.Phases.SolverMs);
}

TEST(PhaseBreakdownTest, OutcomesByteIdenticalWithTimingOnOrOff) {
  setTimingEnabledForTest(true);
  RunOutcome On = runSpec(fixture().Spec);
  setTimingEnabledForTest(false);
  EXPECT_EQ(monotonicNanos(), 0u) << "disabled timing must not read clocks";
  RunOutcome Off = runSpec(fixture().Spec);
  setTimingEnabledForTest(true);

  EXPECT_TRUE(On.Phases.Populated);
  EXPECT_FALSE(Off.Phases.Populated);
  EXPECT_EQ(Off.Phases.SolverMs, 0.0);
  EXPECT_EQ(Off.Phases.SolverIterations, 0u);

  // Everything except wall time and the breakdown is byte-identical.
  EXPECT_EQ(On.ModelLoaded, Off.ModelLoaded);
  EXPECT_EQ(On.Error, Off.Error);
  EXPECT_EQ(On.DeadlineExceeded, Off.DeadlineExceeded);
  EXPECT_EQ(On.Certified, Off.Certified);
  EXPECT_EQ(On.Containment, Off.Containment);
  EXPECT_EQ(On.Refuted, Off.Refuted);
  EXPECT_EQ(On.CertificateWritten, Off.CertificateWritten);
  EXPECT_EQ(On.AttackSeed, Off.AttackSeed);
  EXPECT_EQ(On.Detail, Off.Detail);
  EXPECT_EQ(std::memcmp(&On.MarginLower, &Off.MarginLower, sizeof(double)),
            0)
      << "margins differ in some bit (" << On.MarginLower << " vs "
      << Off.MarginLower << ")";
  ASSERT_EQ(On.Counterexample.size(), Off.Counterexample.size());
  if (!On.Counterexample.empty()) {
    EXPECT_EQ(std::memcmp(On.Counterexample.data(),
                          Off.Counterexample.data(),
                          On.Counterexample.size() * sizeof(double)),
              0);
  }
}
