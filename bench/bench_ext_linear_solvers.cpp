//===- bench/bench_ext_linear_solvers.cpp ---------------------------------===//
//
// Extension experiment (Section 3 generality, high-dimensional): abstract
// interpretation of stationary linear-system solvers with the CH-Zonotope
// driver. For the 1-d Poisson system at growing sizes, the harness reports
// per solver family (Jacobi / Gauss-Seidel / damped Richardson): the
// contraction bound, iterations to abstract containment, certified-hull
// looseness versus the exact solution-set hull, and wall time. Shape to
// expect: looseness stays within a few percent at every size (affine
// transformers are exact; consolidation cost is bounded), iterations track
// the concrete contraction rate, and runtime scales ~O(p^3) per iteration.
//
//===----------------------------------------------------------------------===//

#include "core/LinearFixpoint.h"
#include "support/Table.h"
#include "support/Timer.h"

#include <cstdio>
#include <cstdlib>
#include <vector>

using namespace craft;

namespace {

Matrix poissonMatrix(size_t P) {
  Matrix A(P, P);
  for (size_t I = 0; I < P; ++I) {
    A(I, I) = 2.0;
    if (I > 0)
      A(I, I - 1) = -1.0;
    if (I + 1 < P)
      A(I, I + 1) = -1.0;
  }
  return A;
}

} // namespace

int main() {
  printf("Extension: CH-Zonotope analysis of linear-system solvers\n"
         "(1-d Poisson A u = f, per-node load uncertainty +-20%%)\n\n");

  std::vector<size_t> Sizes = {8, 16, 32};
  if (const char *Env = std::getenv("CRAFT_LINEAR_MAXP"))
    if (size_t Max = (size_t)std::atol(Env); Max > 32)
      Sizes.push_back(Max);

  TablePrinter T({"p", "solver", "contraction", "iters", "loose", "time [s]"});
  for (size_t P : Sizes) {
    Matrix A = poissonMatrix(P);
    double H = 1.0 / (P + 1);
    Vector BLo(P, H * H * 0.8), BHi(P, H * H * 1.2);

    struct Entry {
      const char *Label;
      LinearIterator It;
    };
    std::vector<Entry> Solvers;
    Solvers.push_back({"jacobi", makeJacobiIterator(A)});
    Solvers.push_back({"gauss-seidel", makeGaussSeidelIterator(A)});
    Solvers.push_back({"richardson", makeRichardsonIterator(A, 0.45)});

    for (const Entry &E : Solvers) {
      LinearAnalysisOptions Opts;
      Opts.MaxIterations = 4000;
      Opts.TightenSteps = 150;
      WallTimer Clock;
      LinearAnalysisResult Res =
          analyzeLinearFixpoint(E.It, BLo, BHi, Opts);
      double Elapsed = Clock.seconds();
      IntervalVector Exact = exactLinearFixpointHull(E.It, BLo, BHi);
      T.addRow({fmt((long)P), E.Label, fmt(contractionFactor(E.It), 4),
                Res.Contained ? fmt((long)Res.Iterations) : "-",
                Res.Contained
                    ? fmt(Res.Hull.meanWidth() / Exact.meanWidth(), 3)
                    : "-",
                fmt(Elapsed, 3)});
    }
  }
  T.print();
  printf("\n(CRAFT_LINEAR_MAXP=<p> appends a larger size.)\n");
  return 0;
}
