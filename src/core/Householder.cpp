//===- core/Householder.cpp -----------------------------------------------===//

#include "core/Householder.h"

#include "domains/AffineForm.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace craft;

//===----------------------------------------------------------------------===//
// Square-root analyses
//===----------------------------------------------------------------------===//

namespace {

/// One abstract Householder step s' = s + s (0.5 h + 0.375 h^2),
/// h = 1 - x s^2. Scale-and-shift links run in place (same math, no
/// per-link term-vector copies).
AffineForm householderStep(const AffineForm &X, const AffineForm &S) {
  AffineForm H = X * S.square();
  H *= -1.0;
  H += 1.0;
  AffineForm H2 = H.square();
  H2 *= 0.375;
  H *= 0.5;
  AffineForm Update = H + H2;
  return S + S * Update;
}

/// Reports the interval of sqrt(x) = 1/s for an abstraction of s. Only
/// meaningful for s bounded away from 0.
SqrtInterval invert(const AffineForm &S) {
  SqrtInterval Out;
  if (S.lo() <= 0.0) {
    Out.Diverged = true;
    return Out;
  }
  Out.Lo = 1.0 / S.hi();
  Out.Hi = 1.0 / S.lo();
  return Out;
}

/// True if the abstraction provably violates the termination condition
/// (|s^2 - 1/x| >= eps for every concrete value), enabling semantic
/// unrolling without a join.
bool terminationUnreachable(const AffineForm &X, const AffineForm &S,
                            double Epsilon) {
  if (S.lo() <= 0.0)
    return false; // s <= 0 keeps looping anyway, but be conservative.
  AffineForm S2 = S.square();
  // 1/x over the input interval.
  double InvLo = 1.0 / X.hi(), InvHi = 1.0 / X.lo();
  // min |s^2 - inv| over the boxes.
  double Gap = std::max(S2.lo() - InvHi, InvLo - S2.hi());
  return Gap >= Epsilon;
}

} // namespace

SqrtInterval craft::exactSqrtInterval(double XLo, double XHi) {
  return {std::sqrt(XLo), std::sqrt(XHi), false};
}

double craft::householderSqrtConcrete(double X, double S0, double Epsilon,
                                      int *IterationsOut) {
  double S = S0;
  int Iterations = 0;
  while (S <= 0.0 || std::fabs(S * S - 1.0 / X) >= Epsilon) {
    double H = 1.0 - X * S * S;
    S = S + S * (0.5 * H + 0.375 * H * H);
    if (++Iterations > 10000)
      break;
  }
  if (IterationsOut)
    *IterationsOut = Iterations;
  return S;
}

SqrtAnalysis craft::analyzeSqrtCraft(double XLo, double XHi,
                                     const SqrtOptions &Opts) {
  SqrtAnalysis Out;
  AffineForm X = AffineForm::range(XLo, XHi);
  AffineForm S = AffineForm::constant(Opts.S0);

  // The iterates stay correlated with the input symbol, so a plain interval
  // comparison would be an invalid Thm 3.1 premise (it certifies only the
  // input-correlated (x, s) pairs). The slice-wise relational check runs
  // the theorem's argument per input slice instead, keeping the
  // cross-iteration remainder cancellation that makes the wide input
  // [16, 25] tractable (see AffineForm::containsRelational and DESIGN.md).
  std::vector<uint64_t> InputIds;
  for (const auto &[Id, Coef] : X.terms())
    InputIds.push_back(Id);
  bool Contained = false;
  AffineForm LastCons;
  bool HaveCons = false;
  for (int N = 1; N <= Opts.MaxIterations; ++N) {
    Out.Iterations = N;
    if (Opts.ConsolidateEvery > 0 && (N - 1) % Opts.ConsolidateEvery == 0) {
      S = S.consolidated(1e-3 * S.radius() + 1e-2);
      LastCons = S;
      HaveCons = true;
    }
    AffineForm Next = householderStep(X, S);
    Out.RootTrace.push_back(invert(Next));
    // Thm 3.1 per input slice against the previous iterate, or the s-step
    // form (Thm B.1) against the most recent consolidated ancestor.
    bool Hit =
        (N > 1 && S.containsRelational(Next, InputIds, /*Tol=*/1e-15)) ||
        (HaveCons &&
         LastCons.containsRelational(Next, InputIds, /*Tol=*/1e-15));
    if (Hit) {
      Contained = true;
      S = Next;
      break;
    }
    S = Next;
    if (S.width() > Opts.DivergenceWidth)
      break;
  }
  Out.Converged = Contained;
  if (!Contained) {
    Out.SInterval.Diverged = true;
    Out.RootInterval.Diverged = true;
    return Out;
  }

  // Tightening: the Householder step is locally Lipschitz with convergence
  // guarantees on these inputs, so further abstract iterations preserve the
  // fixpoint set (Thm 3.3); keep the tightest.
  AffineForm Best = S;
  for (int N = 0; N < Opts.TightenSteps; ++N) {
    S = householderStep(X, S);
    Out.RootTrace.push_back(invert(S));
    if (S.width() < Best.width())
      Best = S;
  }
  if (Opts.Reachable) {
    // App. A (Thm A.2): all values satisfying the termination condition lie
    // within sqrt(eps) of a true fixpoint.
    Best = Best.widened(std::sqrt(Opts.Epsilon));
  }
  Out.SInterval = {Best.lo(), Best.hi(), false};
  Out.RootInterval = invert(Best);
  return Out;
}

SqrtAnalysis craft::analyzeSqrtKleene(double XLo, double XHi,
                                      const SqrtOptions &Opts) {
  SqrtAnalysis Out;
  AffineForm X = AffineForm::range(XLo, XHi);
  AffineForm S = AffineForm::constant(Opts.S0);

  int Unrolled = 0;
  for (int N = 1; N <= Opts.MaxIterations; ++N) {
    Out.Iterations = N;
    AffineForm Next = householderStep(X, S);
    // Semantic unrolling: skip the join while the termination condition is
    // provably not yet satisfiable (Blanchet et al. 2002), up to the
    // configured depth.
    bool Unroll = Unrolled < Opts.UnrollSteps &&
                  terminationUnreachable(X, S, Opts.Epsilon);
    if (Unroll) {
      ++Unrolled;
      S = Next;
    } else {
      S = AffineForm::join(S, Next);
      // Post-fixpoint detection with a light widening probe (Cousot &
      // Cousot 1992): if one abstract step stays inside the slightly
      // widened accumulator, the widened accumulator is a sound
      // post-fixpoint covering all remaining iterates.
      // Post-fixpoint probe with the slice-wise relational check (see
      // analyzeSqrtCraft phase 1).
      std::vector<uint64_t> InputIds;
      for (const auto &[Id, Coef] : X.terms())
        InputIds.push_back(Id);
      AffineForm Widened = S.widened(0.02 * S.radius() + 1e-12);
      if (Widened.containsRelational(householderStep(X, Widened), InputIds,
                                     1e-12)) {
        Out.Converged = true;
        S = Widened;
        Out.RootTrace.push_back(invert(S));
        break;
      }
    }
    Out.RootTrace.push_back(invert(S));
    if (S.width() > Opts.DivergenceWidth)
      break;
  }

  if (!Out.Converged) {
    Out.SInterval.Diverged = true;
    Out.RootInterval.Diverged = true;
    return Out;
  }
  Out.SInterval = {S.lo(), S.hi(), false};
  Out.RootInterval = invert(S);
  return Out;
}
