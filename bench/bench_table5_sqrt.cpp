//===- bench/bench_table5_sqrt.cpp ----------------------------------------===//
//
// Reproduces the Householder square-root case study (Section 6.5 / App. A):
//   - Table 5: exact vs Craft vs Kleene root intervals for X = [16, 20] and
//     X = [16, 25];
//   - Table 6: the Craft-reach variant (all values reachable under the
//     concrete termination condition, Thms A.1/A.2);
//   - Fig. 16: per-iteration root-interval traces for both analyses.
//
// Expected shape: Craft is slightly wider than exact on both inputs; Kleene
// is wider still on [16, 20] (it covers early iterates) and diverges to
// [0, inf) on [16, 25]; Craft-reach exceeds Craft-fix by ~sqrt(1e-8).
//
//===----------------------------------------------------------------------===//

#include "core/Householder.h"
#include "support/Table.h"

#include <cstdio>

using namespace craft;

static std::string intervalStr(const SqrtInterval &I) {
  if (I.Diverged)
    return "[0.000, inf)";
  // Built with += (not `"[" + rvalue`): GCC 12's -O2 -Wrestrict misfires on
  // operator+(const char *, string &&) (PR105329).
  std::string S = "[";
  S += fmt(I.Lo, 3);
  S += ", ";
  S += fmt(I.Hi, 3);
  S += "]";
  return S;
}

int main() {
  std::printf("== Table 5 / Table 6: Householder sqrt fixpoint "
              "abstractions ==\n\n");

  struct Case {
    double Lo, Hi;
  };
  const Case Cases[] = {{16.0, 20.0}, {16.0, 25.0}};

  TablePrinter Table({"Method", "X=[16,20]", "X=[16,25]", "iters"});
  std::vector<std::string> ExactRow = {"Exact", "", "", "-"};
  std::vector<std::string> CraftRow = {"Craft (fix)", "", "", ""};
  std::vector<std::string> ReachRow = {"Craft (reach)", "", "", ""};
  std::vector<std::string> KleeneRow = {"Kleene iteration", "", "", ""};

  SqrtAnalysis Traces[2];
  SqrtAnalysis KleeneTraces[2];
  for (int C = 0; C < 2; ++C) {
    const Case &Cs = Cases[C];
    ExactRow[1 + C] = intervalStr(exactSqrtInterval(Cs.Lo, Cs.Hi));

    SqrtAnalysis Craft = analyzeSqrtCraft(Cs.Lo, Cs.Hi);
    Traces[C] = Craft;
    CraftRow[1 + C] = intervalStr(Craft.RootInterval);
    if (C)
      CraftRow[3] += "/";
    CraftRow[3] += fmt(static_cast<long>(Craft.Iterations));

    SqrtOptions Reach;
    Reach.Reachable = true;
    ReachRow[1 + C] =
        intervalStr(analyzeSqrtCraft(Cs.Lo, Cs.Hi, Reach).RootInterval);

    SqrtAnalysis Kleene = analyzeSqrtKleene(Cs.Lo, Cs.Hi);
    KleeneTraces[C] = Kleene;
    KleeneRow[1 + C] = intervalStr(Kleene.RootInterval);
    if (C)
      KleeneRow[3] += "/";
    KleeneRow[3] += fmt(static_cast<long>(Kleene.Iterations));
  }
  ReachRow[3] = CraftRow[3];
  Table.addRow(ExactRow);
  Table.addRow(CraftRow);
  Table.addRow(ReachRow);
  Table.addRow(KleeneRow);
  Table.print();

  std::printf("\n== Fig. 16: iteration traces of the root interval 1/s_i "
              "==\n\n");
  for (int C = 0; C < 2; ++C) {
    std::printf("X = [%.0f, %.0f]:\n", Cases[C].Lo, Cases[C].Hi);
    TablePrinter Trace({"iter", "Craft", "Kleene"});
    size_t Rows = std::max(Traces[C].RootTrace.size(),
                           KleeneTraces[C].RootTrace.size());
    Rows = std::min<size_t>(Rows, 10); // Truncated, as in the paper.
    for (size_t N = 0; N < Rows; ++N) {
      std::string CraftCell =
          N < Traces[C].RootTrace.size()
              ? intervalStr(Traces[C].RootTrace[N])
              : "";
      std::string KleeneCell =
          N < KleeneTraces[C].RootTrace.size()
              ? intervalStr(KleeneTraces[C].RootTrace[N])
              : "";
      Trace.addRow({fmt(static_cast<long>(N + 1)), CraftCell, KleeneCell});
    }
    Trace.print();
    std::printf("\n");
  }

  // Concrete sanity row: the program itself on a few inputs.
  std::printf("Concrete root(x): ");
  for (double X : {16.0, 20.0, 25.0}) {
    double S = householderSqrtConcrete(X);
    std::printf("sqrt(%.0f) ~ %.5f  ", X, 1.0 / S);
  }
  std::printf("\n");
  return 0;
}
