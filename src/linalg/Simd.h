//===- linalg/Simd.h - SIMD lane abstraction for kernel backends *- C++ -*-===//
//
// Part of the Craft reproduction (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lane abstraction the generic kernel bodies (KernelsGeneric.h) are
/// written against: one `Lane` specialization per instruction set (scalar,
/// AVX2+FMA, AVX-512F), each exposing the same elementwise vocabulary over
/// a register of `Width` doubles.
///
/// Determinism vocabulary: only *elementwise* operations are exposed — no
/// fused multiply-add and no horizontal reductions. Every lane op rounds
/// exactly like the corresponding scalar expression, so a kernel body
/// instantiated at Width 1, 4, or 8 performs the same rounded operation
/// sequence per output element, and all backends produce byte-identical
/// results (the TUs are additionally built with -ffp-contract=off so the
/// compiler cannot re-fuse mul+add behind our back).
///
/// Each ISA specialization is guarded by the compiler's own feature macros:
/// a translation unit only sees the lanes its -m flags enable, which is
/// what keeps AVX code out of the scalar-fallback TU.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFT_LINALG_SIMD_H
#define CRAFT_LINALG_SIMD_H

#include <cmath>
#include <cstddef>

#if defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif

namespace craft {
namespace simd {

struct ScalarTag {};
struct Avx2Tag {};
struct Avx512Tag {};

template <class Tag> struct Lane;

/// Width-1 "vector": the portable fallback. The generic kernel bodies
/// instantiated with this lane are the scalar backend — same code path,
/// same operation order, one element at a time.
template <> struct Lane<ScalarTag> {
  using Reg = double;
  static constexpr size_t Width = 1;

  static Reg zero() { return 0.0; }
  static Reg set1(double X) { return X; }
  static Reg loadu(const double *P) { return *P; }
  static void storeu(double *P, Reg V) { *P = V; }
  static Reg add(Reg A, Reg B) { return A + B; }
  static Reg mul(Reg A, Reg B) { return A * B; }
  static Reg abs(Reg V) { return std::fabs(V); }
  /// max with maxpd semantics (second operand wins on ties); exact for the
  /// nonnegative finite values normInf feeds it.
  static Reg max(Reg A, Reg B) { return A > B ? A : B; }
  /// Lane L = P[L * Stride] (the row-lane gather of gemv/gemvAbs).
  static Reg loadStrided(const double *P, size_t Stride) {
    (void)Stride;
    return *P;
  }
};

#if defined(__AVX2__) && defined(__FMA__)
/// 4 x double AVX lanes (AVX2+FMA tier; the FMA requirement is a dispatch
/// policy — the ops themselves stay unfused mul/add by contract).
template <> struct Lane<Avx2Tag> {
  using Reg = __m256d;
  static constexpr size_t Width = 4;

  static Reg zero() { return _mm256_setzero_pd(); }
  static Reg set1(double X) { return _mm256_set1_pd(X); }
  static Reg loadu(const double *P) { return _mm256_loadu_pd(P); }
  static void storeu(double *P, Reg V) { _mm256_storeu_pd(P, V); }
  static Reg add(Reg A, Reg B) { return _mm256_add_pd(A, B); }
  static Reg mul(Reg A, Reg B) { return _mm256_mul_pd(A, B); }
  static Reg abs(Reg V) {
    return _mm256_andnot_pd(_mm256_set1_pd(-0.0), V);
  }
  static Reg max(Reg A, Reg B) { return _mm256_max_pd(A, B); }
  static Reg loadStrided(const double *P, size_t Stride) {
    return _mm256_set_pd(P[3 * Stride], P[2 * Stride], P[Stride], P[0]);
  }
};
#endif // __AVX2__ && __FMA__

#if defined(__AVX512F__)
/// 8 x double AVX-512F lanes.
template <> struct Lane<Avx512Tag> {
  using Reg = __m512d;
  static constexpr size_t Width = 8;

  static Reg zero() { return _mm512_setzero_pd(); }
  static Reg set1(double X) { return _mm512_set1_pd(X); }
  static Reg loadu(const double *P) { return _mm512_loadu_pd(P); }
  static void storeu(double *P, Reg V) { _mm512_storeu_pd(P, V); }
  static Reg add(Reg A, Reg B) { return _mm512_add_pd(A, B); }
  static Reg mul(Reg A, Reg B) { return _mm512_mul_pd(A, B); }
  static Reg abs(Reg V) { return _mm512_abs_pd(V); }
  static Reg max(Reg A, Reg B) { return _mm512_max_pd(A, B); }
  static Reg loadStrided(const double *P, size_t Stride) {
    return _mm512_set_pd(P[7 * Stride], P[6 * Stride], P[5 * Stride],
                         P[4 * Stride], P[3 * Stride], P[2 * Stride],
                         P[Stride], P[0]);
  }
};
#endif // __AVX512F__

} // namespace simd
} // namespace craft

#endif // CRAFT_LINALG_SIMD_H
