//===- lp/Simplex.h - Dense two-phase simplex LP solver ---------*- C++ -*-===//
//
// Part of the Craft reproduction (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dense two-phase primal simplex solver for linear programs in standard
/// form: minimize c^T x subject to A x = b, x >= 0.
///
/// The paper's Fig. 18 compares the CH-Zonotope containment check against the
/// LP-based zonotope containment encoding of Sadraddini & Tedrake (2019),
/// which the original artifact solved with GUROBI. GUROBI is unavailable
/// offline, so this solver is the substitute substrate; the containment LPs
/// are small and dense, for which a tableau simplex is adequate.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFT_LP_SIMPLEX_H
#define CRAFT_LP_SIMPLEX_H

#include "linalg/Matrix.h"

namespace craft {

/// Outcome of an LP solve.
enum class LpStatus {
  Optimal,
  Infeasible,
  Unbounded,
  IterationLimit,
};

/// Linear program in standard form: minimize C^T x s.t. A x = B, x >= 0.
struct LpProblem {
  Matrix A;
  Vector B;
  Vector C;
};

/// Solver result. \c X and \c Objective are only meaningful for
/// LpStatus::Optimal.
struct LpSolution {
  LpStatus Status = LpStatus::IterationLimit;
  Vector X;
  double Objective = 0.0;
};

/// Solves \p Problem with the two-phase tableau simplex. Uses Dantzig
/// pricing with a switch to Bland's rule after a degeneracy threshold to
/// guarantee termination.
LpSolution solveLp(const LpProblem &Problem, int MaxIterations = 50000);

/// Convenience: pure feasibility check of {x >= 0 | A x = B}.
bool isFeasible(const Matrix &A, const Vector &B, int MaxIterations = 50000);

} // namespace craft

#endif // CRAFT_LP_SIMPLEX_H
