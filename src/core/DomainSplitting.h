//===- core/DomainSplitting.h - Global certification ------------*- C++ -*-===//
//
// Part of the Craft reproduction (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Domain splitting for global robustness certification (Section 6.2): the
/// input space is bisected along the widest dimension; each region is
/// certified with Craft against the class predicted at its center; regions
/// that fail are split further until a depth budget is exhausted. The
/// certified volume fraction is the headline metric (the paper reports
/// 82.8% on the HCAS input space).
///
/// Both entry points run on the parallel work-queue engine in
/// core/SplitEngine.h: regions are identified by their bisection path and
/// expanded in waves over support/ThreadPool, so results are byte-identical
/// for every job count, and the certified fraction is exact leaf-unit
/// accounting — degenerate (zero-width) input dimensions certify like any
/// other instead of collapsing the volume ratio to 0/0.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFT_CORE_DOMAINSPLITTING_H
#define CRAFT_CORE_DOMAINSPLITTING_H

#include "core/SplitEngine.h"
#include "core/Verifier.h"

#include <vector>

namespace craft {

/// One leaf region of the splitting tree.
struct SplitRegion {
  Vector Lo;
  Vector Hi;
  int CertifiedClass = -1; ///< -1: not certified.
  RegionPath Path = 0;     ///< Bisection path (root = 1).
};

/// Aggregate splitting outcome.
struct SplitResult {
  std::vector<SplitRegion> Regions; ///< Leaves in wave (path) order.
  double CertifiedFraction = 0.0;   ///< Exact leaf-unit measure.
  size_t NumCertified = 0;
  size_t NumVerifierCalls = 0;
  size_t NumWaves = 0;
};

/// Exhaustively certifies the box [Lo, Hi] by bisection, running the Craft
/// verifier on each candidate region across \p Jobs worker threads (<= 0 =
/// all hardware threads; the result is identical for every value).
/// \p MaxDepth bounds the number of splits along any root-to-leaf path.
SplitResult certifyByDomainSplitting(const MonDeq &Model,
                                     const CraftConfig &Config,
                                     const Vector &Lo, const Vector &Hi,
                                     int MaxDepth, int Jobs = 1);

/// Knobs for the branch-and-bound local-robustness refinement.
struct SplitOptions {
  int MaxDepth = 8;
  /// Worker threads (<= 0 = all hardware threads). Outcomes are
  /// byte-identical for every value.
  int Jobs = 1;
  /// Attack undecided max-depth leaves with PGD, each probe seeded as
  /// taskSeed(ProbeSeedBase, region path).
  bool PgdProbes = false;
  PgdOptions Pgd; ///< Probe template (Epsilon/Seed set per leaf).
  uint64_t ProbeSeedBase = 20230617;
};

/// Outcome of a branch-and-bound local-robustness query.
struct BranchAndBoundResult {
  /// Every leaf certified to the target class: the property holds.
  bool Certified = false;
  /// A concrete counterexample was found: the property provably fails.
  bool Refuted = false;
  bool RefutedByPgd = false; ///< Witness came from a PGD leaf probe.
  Vector Counterexample;     ///< Valid when Refuted.
  RegionPath CounterexamplePath = 0; ///< Region that produced the witness.
  uint64_t PgdSeed = 0; ///< Seed of the refuting PGD probe (0 otherwise).
  size_t NumVerifierCalls = 0;
  size_t NumLeaves = 0;    ///< Certified + undecided leaves.
  size_t NumUndecided = 0; ///< Undecided leaves.
  size_t NumWaves = 0;
  size_t NumPgdProbes = 0;
  /// Measure fraction of the input box certified (exact leaf units; 1.0
  /// iff Certified, degenerate dimensions included).
  double CertifiedVolumeFraction = 0.0;
};

/// Branch-and-bound refinement of a *local* robustness query: certifies
/// that every point of the box [Lo, Hi] classifies to \p TargetClass,
/// bisecting uncertified regions along their widest dimension up to
/// \p Opts.MaxDepth splits across \p Opts.Jobs workers. Region centers are
/// tested concretely first, so the procedure is anytime-refuting: a
/// misclassified center is a definitive counterexample that aborts the
/// remaining expansion. Neither Certified nor Refuted means the depth
/// budget ran out undecided (the verifier is incomplete, Section 5.2).
BranchAndBoundResult verifyRobustnessSplit(const MonDeq &Model,
                                           const CraftConfig &Config,
                                           const Vector &Lo,
                                           const Vector &Hi, int TargetClass,
                                           const SplitOptions &Opts);

/// Serial-defaults convenience overload (Jobs = 1, no PGD probes).
BranchAndBoundResult verifyRobustnessSplit(const MonDeq &Model,
                                           const CraftConfig &Config,
                                           const Vector &Lo,
                                           const Vector &Hi, int TargetClass,
                                           int MaxDepth);

} // namespace craft

#endif // CRAFT_CORE_DOMAINSPLITTING_H
