//===- support/FaultInjection.cpp - Deterministic fault injection ---------===//
//
// Part of the Craft reproduction (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <vector>

// craft-lint: allow(det-time) — the `stall` fault kind needs a real
// sleep to simulate a slow dependency; the delay is fixed-length and
// wall time never reaches seeds, iteration order, or result payloads.
#include <chrono>
#include <thread>

namespace craft {
namespace fault {
namespace {

constexpr const char *ValidSites[] = {
    "socket.read", "socket.write", "socket.accept",
    "model.load",  "sched.dispatch",
};

struct Rule {
  std::string Site;
  bool Stall = false; // false = fail
  uint64_t Every = 1;
  uint64_t Seed = 0;
  std::atomic<uint64_t> Hits{0};
};

// Armed is the lock-free fast path; the rule list itself is guarded by
// GMutex. at() sits on syscall-adjacent sites (recv/send/accept), so a
// mutex on the armed path is noise next to the syscall itself.
std::atomic<bool> GArmed{false};
std::mutex GMutex;
std::vector<std::unique_ptr<Rule>> &rules() {
  static std::vector<std::unique_ptr<Rule>> Rules;
  return Rules;
}

bool validSite(const std::string &Site) {
  for (const char *S : ValidSites)
    if (Site == S)
      return true;
  return false;
}

/// Parses `site:kind:every=N[,seed=S]` rules separated by `;` into
/// \p Out. Returns false and sets \p Error on the first malformed rule.
bool parseSpec(const std::string &Spec,
               std::vector<std::unique_ptr<Rule>> &Out, std::string &Error) {
  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t End = Spec.find(';', Pos);
    if (End == std::string::npos)
      End = Spec.size();
    std::string Part = Spec.substr(Pos, End - Pos);
    Pos = End + 1;
    if (Part.empty())
      continue;

    size_t C1 = Part.find(':');
    size_t C2 = C1 == std::string::npos ? std::string::npos
                                        : Part.find(':', C1 + 1);
    if (C1 == std::string::npos || C2 == std::string::npos) {
      Error = "fault rule '" + Part +
              "' is not of the form site:kind:every=N[,seed=S]";
      return false;
    }
    auto R = std::make_unique<Rule>();
    R->Site = Part.substr(0, C1);
    std::string Kind = Part.substr(C1 + 1, C2 - C1 - 1);
    std::string Params = Part.substr(C2 + 1);

    if (!validSite(R->Site)) {
      Error = "unknown fault site '" + R->Site + "'";
      return false;
    }
    if (Kind == "stall")
      R->Stall = true;
    else if (Kind != "fail") {
      Error = "unknown fault kind '" + Kind + "' (expected fail or stall)";
      return false;
    }

    bool HaveEvery = false;
    size_t PPos = 0;
    while (PPos < Params.size()) {
      size_t PEnd = Params.find(',', PPos);
      if (PEnd == std::string::npos)
        PEnd = Params.size();
      std::string KV = Params.substr(PPos, PEnd - PPos);
      PPos = PEnd + 1;
      size_t Eq = KV.find('=');
      if (Eq == std::string::npos) {
        Error = "fault parameter '" + KV + "' is not key=value";
        return false;
      }
      std::string Key = KV.substr(0, Eq);
      std::string Val = KV.substr(Eq + 1);
      char *ValEnd = nullptr;
      unsigned long long Num = std::strtoull(Val.c_str(), &ValEnd, 10);
      if (Val.empty() || !ValEnd || *ValEnd != '\0') {
        Error = "fault parameter '" + KV + "' has a non-numeric value";
        return false;
      }
      if (Key == "every") {
        if (Num == 0) {
          Error = "fault rule '" + Part + "' requires every >= 1";
          return false;
        }
        R->Every = Num;
        HaveEvery = true;
      } else if (Key == "seed") {
        R->Seed = Num;
      } else {
        Error = "unknown fault parameter '" + Key + "'";
        return false;
      }
    }
    if (!HaveEvery) {
      Error = "fault rule '" + Part + "' is missing every=N";
      return false;
    }
    Out.push_back(std::move(R));
  }
  return true;
}

/// Loads CRAFT_FAULT exactly once, before the first query or an explicit
/// configure(). A malformed environment spec disarms injection rather
/// than aborting the daemon — chaos tooling sees the parse error via
/// configure(), production never pays for a typo with an outage.
void ensureEnvLoaded() {
  static std::once_flag Once;
  std::call_once(Once, [] {
    const char *Env = std::getenv("CRAFT_FAULT");
    if (!Env || !*Env)
      return;
    std::vector<std::unique_ptr<Rule>> Parsed;
    std::string Error;
    if (!parseSpec(Env, Parsed, Error))
      return;
    std::lock_guard<std::mutex> Lock(GMutex);
    rules() = std::move(Parsed);
    GArmed.store(!rules().empty(), std::memory_order_release);
  });
}

} // namespace

Action at(const char *Site) {
  ensureEnvLoaded();
  if (!GArmed.load(std::memory_order_acquire))
    return Action::None;
  bool Stall = false;
  {
    std::lock_guard<std::mutex> Lock(GMutex);
    for (auto &R : rules()) {
      if (R->Site != Site)
        continue;
      // Counter starts at 1, so every=N lets the first N-1 hits through
      // and fires on hit N, 2N, ... seed=S shifts which hits fire.
      uint64_t Hit = R->Hits.fetch_add(1, std::memory_order_relaxed) + 1;
      if ((Hit + R->Seed) % R->Every != 0)
        continue;
      if (!R->Stall)
        return Action::Fail;
      Stall = true;
    }
  }
  if (Stall)
    // craft-lint: allow(det-time) — fixed-length injected stall; the
    // delay never reaches seeds or results.
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  return Action::None;
}

bool configure(const std::string &Spec, std::string *Error) {
  ensureEnvLoaded(); // Spend the env once-flag so it cannot override us.
  std::vector<std::unique_ptr<Rule>> Parsed;
  std::string Err;
  if (!parseSpec(Spec, Parsed, Err)) {
    if (Error)
      *Error = Err;
    return false;
  }
  std::lock_guard<std::mutex> Lock(GMutex);
  rules() = std::move(Parsed);
  GArmed.store(!rules().empty(), std::memory_order_release);
  return true;
}

bool armed() {
  ensureEnvLoaded();
  return GArmed.load(std::memory_order_acquire);
}

} // namespace fault
} // namespace craft
