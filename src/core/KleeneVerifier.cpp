//===- core/KleeneVerifier.cpp --------------------------------------------===//

#include "core/KleeneVerifier.h"

#include "linalg/Kernels.h"
#include "linalg/Workspace.h"
#include "nn/Solvers.h"
#include "support/Telemetry.h"
#include "support/Timer.h"

#include <algorithm>
#include <cmath>

using namespace craft;

namespace {

/// Kleene iterations-to-convergence distribution (counterpart of
/// craft.iterations for the ablation engine).
const telemetry::Histogram KleeneIterationsHist =
    telemetry::histogramMetric("kleene.iterations");

} // namespace

KleeneVerifier::KleeneVerifier(const MonDeq &Model, KleeneConfig Config)
    : Model(Model), Config(Config) {}

KleeneResult KleeneVerifier::verifyRobustness(const Vector &X, int TargetClass,
                                              double Epsilon) const {
  Vector Lo(X.size()), Hi(X.size());
  for (size_t I = 0; I < X.size(); ++I) {
    Lo[I] = std::max(X[I] - Epsilon, Config.InputClampLo);
    Hi[I] = std::min(X[I] + Epsilon, Config.InputClampHi);
  }
  return verifyRegion(Lo, Hi, TargetClass);
}

KleeneResult KleeneVerifier::verifyRegion(const Vector &InLo,
                                          const Vector &InHi,
                                          int TargetClass) const {
  WallTimer Timer;
  KleeneResult Res;

  CHZonotope X = CHZonotope::fromBox(InLo, InHi);
  AbstractSolver Solver(Model, Config.Method, Config.Alpha, X);
  // Kleene starts from the loop entry state s_0 = 0 (it abstracts all
  // iteration states, not just fixpoints).
  CHZonotope S = Solver.initialState(Vector(Model.latentDim(), 0.0));
  ConsolidationBasis Basis(Solver.stateDim(), /*RefreshEvery=*/10);

  for (int N = 1; N <= Config.MaxIterations; ++N) {
    if (Config.Control.stopRequested())
      break; // Deadline/cancel: report non-convergence, never a verdict.
    TRACE_SPAN("kleene.iterate");
    Res.Iterations = N;
    CHZonotope Next = Solver.step(S);
    if (N <= Config.UnrollSteps) {
      // Semantic unrolling: no join for the first k iterations.
      S = std::move(Next);
      continue;
    }

    if (Config.Join == KleeneJoin::IntervalHull) {
      // Classic Kleene on the hull accumulator: terminate at the
      // order-theoretic post-fixpoint S >= S |_| f#(S), which is exact on
      // intervals.
      IntervalVector Hull =
          IntervalVector::join(S.intervalHull(), Next.intervalHull());
      if (N > Config.UnrollSteps + 1 && S.intervalHull().contains(Hull)) {
        Res.Converged = true;
        break;
      }
      S = CHZonotope(Hull.center(), Matrix(S.dim(), 0), {}, Hull.radius());
    } else {
      // Quasi-join accumulator (non-lattice domain): detect the
      // post-fixpoint by probing one step inside the consolidated
      // accumulator. The accumulated join residuals live in the Box
      // component, so fold them into generators first; otherwise the
      // Thm 4.2 check has no generator slack to cover the probe.
      S = CHZonotope::join(S, Next);
      ProperState PS =
          consolidateProper(S.boxCastToGenerators(), Basis, 1e-3, 1e-2);
      CHZonotope Probe = Solver.step(PS.Z);
      if (containsCH(PS.Z, PS.InvGens, Probe).Contained) {
        Res.Converged = true;
        S = PS.Z;
        break;
      }
    }

    // Widening: after enough joins, grow the accumulator so the ascending
    // chain stabilizes (Cousot & Cousot 1992). Radii live in workspace
    // scratch — these checks run every iteration.
    WorkspaceScope WS;
    if (N > Config.UnrollSteps + Config.WidenAfter) {
      Vector Widened = S.boxRadius();
      VectorView Radius = WS.vector(S.dim());
      S.concretizationRadiusInto(Radius);
      for (size_t I = 0; I < Widened.size(); ++I)
        Widened[I] += Config.WideningFactor * Radius[I] + 1e-9;
      S = std::move(S).withBoxRadius(std::move(Widened));
    }

    VectorView Radius = WS.vector(S.dim());
    S.concretizationRadiusInto(Radius);
    if (kernels::normInf(Radius) > Config.AbortWidth)
      break;
  }
  KleeneIterationsHist.observe(static_cast<uint64_t>(Res.Iterations));

  if (!Res.Converged) {
    Res.TimeSeconds = Timer.seconds();
    return Res;
  }

  CHZonotope Z = Solver.zPart(S);
  Res.FixpointHull = Z.intervalHull();
  Vector Margins = classificationMargins(Model, Z, TargetClass);
  double MinMargin = 1e300;
  for (double M : Margins)
    MinMargin = std::min(MinMargin, M);
  Res.BestMargin = MinMargin;
  Res.Certified = MinMargin > 0.0;
  Res.TimeSeconds = Timer.seconds();
  return Res;
}
