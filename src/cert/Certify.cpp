//===- cert/Certify.cpp ---------------------------------------------------===//

#include "cert/Certify.h"

#include "cert/Checker.h"
#include "core/AbstractSolver.h"
#include "domains/OrderReduction.h"

#include <algorithm>
#include <deque>

using namespace craft;

namespace {

/// Runs the verifier's phase 1 (containment search) and returns the state
/// at containment, or nullopt.
std::optional<CHZonotope> findContainedState(const MonDeq &Model,
                                             const CraftConfig &Config,
                                             const CHZonotope &X,
                                             const Vector &ZStar) {
  AbstractSolver Solver1(Model, Config.Phase1Method, Config.Alpha1, X);
  CHZonotope S = Solver1.initialState(ZStar);
  ConsolidationBasis Basis(Solver1.stateDim(), Config.PcaRefreshEvery);
  std::deque<ProperState> History;
  double WMul = Config.Expansion != ExpansionSchedule::None ? Config.WMul
                                                            : 0.0;
  double WAdd = Config.Expansion != ExpansionSchedule::None ? Config.WAdd
                                                            : 0.0;
  int Consolidations = 0;
  for (int N = 1; N <= Config.MaxIterations; ++N) {
    if ((N - 1) % Config.ConsolidateEvery == 0) {
      ProperState PS = consolidateProper(S, Basis, WMul, WAdd);
      S = PS.Z;
      History.push_front(std::move(PS));
      if (History.size() > static_cast<size_t>(Config.HistorySize))
        History.pop_back();
      if (Config.Expansion == ExpansionSchedule::Exponential &&
          ++Consolidations % 2 == 0) {
        WMul *= 1.1;
        WAdd *= 1.2;
      }
    }
    S = Solver1.step(S, 1.0, absorbBoxFor(Config.Domain));
    for (const ProperState &PS : History)
      if (containsCH(PS.Z, PS.InvGens, S).Contained)
        return S;
    if (S.concretizationRadius().normInf() > Config.AbortWidth)
      break;
  }
  return std::nullopt;
}

} // namespace

std::optional<RobustnessCertificate>
craft::certifyRegion(const MonDeq &Model, const Vector &InLo,
                     const Vector &InHi, int TargetClass,
                     const CraftConfig &Config) {
  CHZonotope X = CHZonotope::fromBox(InLo, InHi);
  Vector Center = 0.5 * (InLo + InHi);
  Vector ZStar =
      FixpointSolver(Model, Splitting::PeacemanRachford).solve(Center).Z;

  std::optional<CHZonotope> Contained =
      findContainedState(Model, Config, X, ZStar);
  if (!Contained)
    return std::nullopt;

  // Self-contained witness: consolidate the contained state (with a little
  // expansion so the witness has slack to re-contract into) and find a
  // small step count whose image the checker will accept.
  AbstractSolver Solver1(Model, Config.Phase1Method, Config.Alpha1, X);
  ConsolidationBasis Basis(Solver1.stateDim(), Config.PcaRefreshEvery);
  ProperState Witness = consolidateProper(
      *Contained, Basis, std::max(Config.WMul, 1e-3),
      std::max(Config.WAdd, 1e-3));

  RobustnessCertificate Cert;
  Cert.ModelHash = hashModel(Model);
  Cert.InLo = InLo;
  Cert.InHi = InHi;
  Cert.TargetClass = TargetClass;
  // The witness is a zonotope, so a Box-domain run (whose containment
  // search above already ran the CH machinery) records CH-Zonotope.
  Cert.Domain = Config.Domain == VerifierDomain::Box
                    ? VerifierDomain::CHZono
                    : Config.Domain;
  Cert.Outer = Witness.Z;
  Cert.Phase1Method = Config.Phase1Method;
  Cert.Alpha1 = Solver1.alpha();
  Cert.Phase2Method = Config.Phase2Method;
  Cert.LambdaScale = 1.0;

  // The checker re-derives everything from (Outer, recipe); search small
  // recipes and keep the first that self-checks. Alpha2 candidates mirror
  // the verifier's line-search grid (Thm 5.1 makes each sound).
  std::vector<double> Alpha2Candidates;
  if (Cert.Phase2Method == Splitting::PeacemanRachford)
    Alpha2Candidates = {Cert.Alpha1};
  else if (Config.Alpha2 > 0.0)
    Alpha2Candidates = {Config.Alpha2};
  else
    Alpha2Candidates = {0.02, 0.05, 0.12, 0.35};

  for (int ContainSteps : {1, 2, 3, 6}) {
    Cert.ContainSteps = ContainSteps;
    for (double Alpha2 : Alpha2Candidates) {
      Cert.Alpha2 = Alpha2;
      Cert.Phase2Steps = std::min(Config.Phase2MaxIterations, 120);
      CheckReport Report = checkCertificate(Model, Cert);
      if (Report.Ok) {
        // Trim the recipe to the certifying step for cheap re-checks.
        Cert.Phase2Steps = Report.CertifiedAtStep;
        return Cert;
      }
    }
  }
  return std::nullopt;
}

std::optional<RobustnessCertificate>
craft::certifyRobustness(const MonDeq &Model, const Vector &X,
                         int TargetClass, double Epsilon,
                         const CraftConfig &Config) {
  Vector Lo = X, Hi = X;
  for (size_t I = 0; I < X.size(); ++I) {
    Lo[I] = std::max(X[I] - Epsilon, Config.InputClampLo);
    Hi[I] = std::min(X[I] + Epsilon, Config.InputClampHi);
  }
  return certifyRegion(Model, Lo, Hi, TargetClass, Config);
}
