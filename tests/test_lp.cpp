//===- tests/test_lp.cpp - Simplex LP solver tests ------------------------===//

#include "lp/Simplex.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace craft;

namespace {

TEST(SimplexTest, SimpleOptimum) {
  // min -x - y  s.t.  x + y + s = 4,  x + 3y + t = 6,  all >= 0.
  // Optimum at (4, 0): objective -4.
  LpProblem P;
  P.A = Matrix{{1.0, 1.0, 1.0, 0.0}, {1.0, 3.0, 0.0, 1.0}};
  P.B = Vector{4.0, 6.0};
  P.C = Vector{-1.0, -1.0, 0.0, 0.0};
  LpSolution S = solveLp(P);
  ASSERT_EQ(S.Status, LpStatus::Optimal);
  EXPECT_NEAR(S.Objective, -4.0, 1e-9);
  EXPECT_NEAR(S.X[0] + S.X[1], 4.0, 1e-9);
}

TEST(SimplexTest, EqualityOnly) {
  // min x + y s.t. x + y = 2: optimum 2 (any split).
  LpProblem P;
  P.A = Matrix{{1.0, 1.0}};
  P.B = Vector{2.0};
  P.C = Vector{1.0, 1.0};
  LpSolution S = solveLp(P);
  ASSERT_EQ(S.Status, LpStatus::Optimal);
  EXPECT_NEAR(S.Objective, 2.0, 1e-9);
}

TEST(SimplexTest, InfeasibleDetected) {
  // x + y = -1 with x, y >= 0 is infeasible (solver normalizes b >= 0, but
  // then -x - y = 1 still has no nonnegative solution).
  LpProblem P;
  P.A = Matrix{{1.0, 1.0}};
  P.B = Vector{-1.0};
  P.C = Vector{0.0, 0.0};
  EXPECT_EQ(solveLp(P).Status, LpStatus::Infeasible);
}

TEST(SimplexTest, InfeasibleSystemDetected) {
  // x = 1 and x = 2 simultaneously.
  LpProblem P;
  P.A = Matrix{{1.0}, {1.0}};
  P.B = Vector{1.0, 2.0};
  P.C = Vector{0.0};
  EXPECT_EQ(solveLp(P).Status, LpStatus::Infeasible);
}

TEST(SimplexTest, UnboundedDetected) {
  // min -x s.t. x - y = 0: x can grow without bound along x = y.
  LpProblem P;
  P.A = Matrix{{1.0, -1.0}};
  P.B = Vector{0.0};
  P.C = Vector{-1.0, 0.0};
  EXPECT_EQ(solveLp(P).Status, LpStatus::Unbounded);
}

TEST(SimplexTest, NegativeRhsNormalized) {
  // -x - y = -3, minimize x: optimum x=0, y=3.
  LpProblem P;
  P.A = Matrix{{-1.0, -1.0}};
  P.B = Vector{-3.0};
  P.C = Vector{1.0, 0.0};
  LpSolution S = solveLp(P);
  ASSERT_EQ(S.Status, LpStatus::Optimal);
  EXPECT_NEAR(S.Objective, 0.0, 1e-9);
  EXPECT_NEAR(S.X[1], 3.0, 1e-9);
}

TEST(SimplexTest, DegenerateProblemTerminates) {
  // Multiple constraints meeting at the same vertex (classic degeneracy).
  LpProblem P;
  P.A = Matrix{{1.0, 1.0, 1.0, 0.0, 0.0},
               {1.0, 2.0, 0.0, 1.0, 0.0},
               {2.0, 1.0, 0.0, 0.0, 1.0}};
  P.B = Vector{1.0, 1.0, 1.0};
  P.C = Vector{-1.0, -1.0, 0.0, 0.0, 0.0};
  LpSolution S = solveLp(P);
  ASSERT_EQ(S.Status, LpStatus::Optimal);
  // Optimum at x = y = 1/3 (rows 2 and 3 tight): objective -2/3.
  EXPECT_NEAR(S.Objective, -2.0 / 3.0, 1e-9);
}

TEST(SimplexTest, FeasibilityHelper) {
  Matrix A = {{1.0, 1.0}};
  EXPECT_TRUE(isFeasible(A, Vector{2.0}));
  Matrix A2 = {{1.0}, {1.0}};
  EXPECT_FALSE(isFeasible(A2, Vector{1.0, 2.0}));
}

class SimplexRandomTest : public ::testing::TestWithParam<int> {};

// Property: for feasible random problems with bounded polytopes the solver
// returns Optimal, the solution is primal feasible, and the objective is no
// worse than a sampled feasible point.
TEST_P(SimplexRandomTest, OptimalBeatsSampledFeasiblePoints) {
  Rng R(500 + GetParam());
  const size_t N = 6, M = 3;
  // Build A x = b with a known interior feasible point x0 > 0, and append
  // a row bounding the simplex: sum x_i + s = large.
  Matrix A(M + 1, N + 1, 0.0);
  Vector X0(N);
  for (size_t I = 0; I < N; ++I)
    X0[I] = R.uniform(0.5, 2.0);
  for (size_t I = 0; I < M; ++I)
    for (size_t J = 0; J < N; ++J)
      A(I, J) = R.gaussian();
  Vector B(M + 1);
  for (size_t I = 0; I < M; ++I) {
    double Acc = 0.0;
    for (size_t J = 0; J < N; ++J)
      Acc += A(I, J) * X0[J];
    B[I] = Acc;
  }
  for (size_t J = 0; J < N; ++J)
    A(M, J) = 1.0;
  A(M, N) = 1.0; // Slack for the bounding row.
  B[M] = 100.0;

  LpProblem P;
  P.A = A;
  P.B = B;
  P.C = Vector(N + 1, 0.0);
  for (size_t J = 0; J < N; ++J)
    P.C[J] = R.gaussian();

  LpSolution S = solveLp(P);
  ASSERT_EQ(S.Status, LpStatus::Optimal);

  // Primal feasibility.
  Vector Res = P.A * S.X - P.B;
  EXPECT_LT(Res.normInf(), 1e-7);
  for (size_t J = 0; J < S.X.size(); ++J)
    EXPECT_GE(S.X[J], -1e-9);

  // x0 (padded with its slack) is feasible; the optimum must not be worse.
  double ObjX0 = 0.0, SumX0 = 0.0;
  for (size_t J = 0; J < N; ++J) {
    ObjX0 += P.C[J] * X0[J];
    SumX0 += X0[J];
  }
  ASSERT_LE(SumX0, 100.0);
  EXPECT_LE(S.Objective, ObjX0 + 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandomTest, ::testing::Range(0, 12));

} // namespace
