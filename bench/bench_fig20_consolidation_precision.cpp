//===- bench/bench_fig20_consolidation_precision.cpp ----------------------===//
//
// Reproduces Fig. 20 (App. E.3): overall-precision effect of error
// consolidation. For each sample, Craft runs normally with CH-Zonotope
// (consolidation + containment checks, sound); then the *same number* of
// abstract solver iterations is replayed with a plain Zonotope and no
// consolidation/containment (UNSOUND -- no post-fixpoint is established).
// The verification objective's lower bound and width are compared.
//
// Expected shape: bounds are near-identical for unverified samples (the
// contractive iterator offsets consolidation losses); no instance exists
// where the unsound Zonotope bound would verify a property CH-Zonotope
// does not.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/AbstractSolver.h"
#include "domains/OrderReduction.h"

#include <algorithm>
#include <cmath>

using namespace craft;

int main() {
  std::printf("== Fig. 20: CH-Zonotope (sound) vs replayed Zonotope "
              "(UNSOUND) bounds ==\n\n");

  const ModelSpec *Spec = findModelSpec("mnist_fc40");
  MonDeq Model = getOrTrainModel(*Spec);
  Dataset Test = makeTestSet(*Spec, benchSamples(8));
  FixpointSolver Concrete(Model, Splitting::PeacemanRachford);
  CraftConfig Config = craftConfigFor(*Spec);
  Config.LambdaOptLevel = 0;
  CraftVerifier Verifier(Model, Config);

  TablePrinter Table({"sample", "CH bound", "CH width", "Zono bound",
                      "Zono width", "CH cert", "Zono would-cert"});
  size_t UnsoundOnly = 0;

  for (size_t I = 0; I < Test.size(); ++I) {
    Vector X = Test.input(I);
    int Label = Test.Labels[I];
    if (Concrete.predict(X) != Label)
      continue;
    CraftResult Res = Verifier.verifyRobustness(X, Label, Spec->Epsilon);
    if (!Res.Containment)
      continue;

    // Replay: same iteration budget, plain Zonotope (fresh ReLU columns),
    // no consolidation, no containment checks.
    Vector Lo(X.size()), Hi(X.size());
    for (size_t J = 0; J < X.size(); ++J) {
      Lo[J] = std::max(X[J] - Spec->Epsilon, 0.0);
      Hi[J] = std::min(X[J] + Spec->Epsilon, 1.0);
    }
    CHZonotope XAbs = CHZonotope::fromBox(Lo, Hi);
    AbstractSolver Solver(Model, Config.Phase1Method, Config.Alpha1, XAbs);
    Vector ZStar = Concrete.solve(X).Z;
    CHZonotope S = Solver.initialState(ZStar);
    int Budget = Res.TotalIterations +
                 std::min(Config.Phase2MaxIterations, 3 * Config.Phase2Window);
    double ZonoBound = -1e300, ZonoWidth = 0.0;
    for (int N = 0; N < Budget; ++N) {
      S = Solver.step(S, 1.0, /*AbsorbBox=*/false);
      Vector Margins =
          classificationMargins(Model, Solver.zPart(S), Label);
      double MinMargin = 1e300;
      for (double M : Margins)
        MinMargin = std::min(MinMargin, M);
      if (MinMargin > ZonoBound) {
        ZonoBound = MinMargin;
        ZonoWidth = Solver.zPart(S).meanWidth();
      }
    }

    bool ZonoWouldCert = ZonoBound > 0.0;
    UnsoundOnly += ZonoWouldCert && !Res.Certified;
    Table.addRow({fmt(static_cast<long>(I)), fmt(Res.BestMargin, 4),
                  fmt(Res.FixpointHull.meanWidth(), 4), fmt(ZonoBound, 4),
                  fmt(ZonoWidth, 4), Res.Certified ? "yes" : "no",
                  ZonoWouldCert ? "yes" : "no"});
  }
  Table.print();
  std::printf("\ninstances where only the unsound Zonotope bound would "
              "verify: %zu (paper: none found)\n",
              UnsoundOnly);
  return 0;
}
