//===- tests/test_linalg_kernels.cpp - Kernel/view/workspace tests --------===//
//
// Coverage for the allocation-free linalg kernel layer: destination-passing
// kernels against reference loops, zero-copy view slicing against
// whole-matrix results, zero-dimension edge cases, aliasing contracts
// (asserted in debug builds), and workspace reuse across repeated calls.
//
//===----------------------------------------------------------------------===//

#include "linalg/Kernels.h"
#include "linalg/Views.h"
#include "linalg/Workspace.h"

#include "domains/CHZonotope.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace craft;

namespace {

Matrix randomMatrix(Rng &R, size_t Rows, size_t Cols, double Scale = 1.0) {
  Matrix M(Rows, Cols);
  for (size_t I = 0; I < Rows; ++I)
    for (size_t J = 0; J < Cols; ++J)
      M(I, J) = R.gaussian(0.0, Scale);
  return M;
}

Vector randomVector(Rng &R, size_t N, double Scale = 1.0) {
  Vector V(N);
  for (size_t I = 0; I < N; ++I)
    V[I] = R.gaussian(0.0, Scale);
  return V;
}

/// Reference j-i-k triple loop, deliberately different from the kernel's
/// blocked i-k-j order.
Matrix refMatmul(const Matrix &A, const Matrix &B) {
  Matrix Out(A.rows(), B.cols());
  for (size_t J = 0; J < B.cols(); ++J)
    for (size_t I = 0; I < A.rows(); ++I) {
      double Sum = 0.0;
      for (size_t K = 0; K < A.cols(); ++K)
        Sum += A(I, K) * B(K, J);
      Out(I, J) = Sum;
    }
  return Out;
}

//===----------------------------------------------------------------------===//
// gemm
//===----------------------------------------------------------------------===//

TEST(Gemm, MatchesReferenceProduct) {
  Rng R(7);
  // 150 exceeds the kernel's K tile, exercising the blocked path.
  Matrix A = randomMatrix(R, 33, 150);
  Matrix B = randomMatrix(R, 150, 41);
  Matrix Out(33, 41);
  kernels::gemm(Out, A, B);
  EXPECT_LT((Out - refMatmul(A, B)).maxAbs(), 1e-12);
}

TEST(Gemm, AlphaBetaSemantics) {
  Rng R(8);
  Matrix A = randomMatrix(R, 9, 11);
  Matrix B = randomMatrix(R, 11, 6);
  Matrix Prior = randomMatrix(R, 9, 6);
  Matrix Out = Prior;
  kernels::gemm(Out, A, B, 2.0, 0.5);
  Matrix Expect = 2.0 * (A * B) + 0.5 * Prior;
  EXPECT_LT((Out - Expect).maxAbs(), 1e-12);
}

TEST(Gemm, BetaZeroIgnoresGarbageOutput) {
  Rng R(9);
  Matrix A = randomMatrix(R, 5, 5);
  Matrix B = randomMatrix(R, 5, 5);
  Matrix Out(5, 5, 1e300); // Poisoned: beta = 0 must overwrite, not read.
  kernels::gemm(Out, A, B);
  EXPECT_LT((Out - refMatmul(A, B)).maxAbs(), 1e-12);
}

TEST(Gemm, SparseAwareIsBitwiseIdenticalToDense) {
  Rng R(10);
  Matrix A = randomMatrix(R, 20, 30);
  // Realistic structural sparsity: zero out most entries exactly.
  for (size_t I = 0; I < A.rows(); ++I)
    for (size_t J = 0; J < A.cols(); ++J)
      if ((I + J) % 3 != 0)
        A(I, J) = 0.0;
  Matrix B = randomMatrix(R, 30, 17);
  Matrix Dense(20, 17), Sparse(20, 17);
  kernels::gemm(Dense, A, B);
  kernels::gemmSparseAware(Sparse, A, B);
  for (size_t I = 0; I < Dense.rows(); ++I)
    for (size_t J = 0; J < Dense.cols(); ++J)
      EXPECT_EQ(Dense(I, J), Sparse(I, J));
}

TEST(Gemm, ZeroDimensions) {
  // Inner dimension zero: the product is the zero matrix.
  Matrix A(4, 0), B(0, 3);
  Matrix Out(4, 3, 7.0);
  kernels::gemm(Out, A, B);
  EXPECT_EQ(Out.maxAbs(), 0.0);
  // Zero-row and zero-column outputs must be accepted.
  Matrix Empty(0, 3);
  kernels::gemm(Empty, Matrix(0, 5), Matrix(5, 3));
  Matrix NoCols(3, 0);
  kernels::gemm(NoCols, Matrix(3, 5), Matrix(5, 0));
  SUCCEED();
}

//===----------------------------------------------------------------------===//
// gemv / gemvAbs / axpy / scale
//===----------------------------------------------------------------------===//

TEST(Gemv, MatchesOperatorAndAccumulates) {
  Rng R(11);
  Matrix M = randomMatrix(R, 13, 21);
  Vector V = randomVector(R, 21);
  Vector Out(13);
  kernels::gemv(Out, M, V);
  Vector Expect = M * V;
  for (size_t I = 0; I < Out.size(); ++I)
    EXPECT_DOUBLE_EQ(Out[I], Expect[I]);

  Vector Acc = randomVector(R, 13);
  Vector Expect2 = Acc + 3.0 * (M * V);
  kernels::gemv(Acc, M, V, 3.0, 1.0);
  for (size_t I = 0; I < Acc.size(); ++I)
    EXPECT_NEAR(Acc[I], Expect2[I], 1e-12);
}

TEST(Gemv, EmptyDimensions) {
  Vector Out;
  kernels::gemv(Out, Matrix(), Vector());
  Vector Out2(3, 5.0);
  kernels::gemv(Out2, Matrix(3, 0), Vector());
  for (size_t I = 0; I < 3; ++I)
    EXPECT_EQ(Out2[I], 0.0); // Empty sum, beta = 0: overwritten with 0.
}

TEST(GemvAbs, NeverMaterializesAbsMatrix) {
  Rng R(12);
  Matrix M = randomMatrix(R, 10, 14);
  Vector V = randomVector(R, 14);
  Vector Out(10);
  kernels::gemvAbs(Out, M, V);
  Vector Expect = M.abs() * V;
  for (size_t I = 0; I < Out.size(); ++I)
    EXPECT_EQ(Out[I], Expect[I]); // Bitwise: same reduction order.
}

TEST(AxpyScale, MatchReference) {
  Rng R(13);
  Vector Y = randomVector(R, 17), X = randomVector(R, 17);
  Vector Expect = Y + (-2.5) * X;
  kernels::axpy(Y, -2.5, X);
  for (size_t I = 0; I < Y.size(); ++I)
    EXPECT_EQ(Y[I], Expect[I]);
  Vector Scaled = X;
  kernels::scale(Scaled, 0.25);
  for (size_t I = 0; I < X.size(); ++I)
    EXPECT_EQ(Scaled[I], 0.25 * X[I]);
}

//===----------------------------------------------------------------------===//
// transposeInto / rowAbsSumsInto / copy / fill
//===----------------------------------------------------------------------===//

TEST(TransposeInto, MatchesAllocatingTranspose) {
  Rng R(14);
  Matrix M = randomMatrix(R, 7, 12);
  Matrix Out(12, 7);
  kernels::transposeInto(Out, M);
  EXPECT_EQ((Out - M.transpose()).maxAbs(), 0.0);
}

TEST(RowAbsSums, BetaAccumulates) {
  Rng R(15);
  Matrix M = randomMatrix(R, 6, 9);
  Vector Out(6, 10.0);
  kernels::rowAbsSumsInto(Out, M, 1.0);
  Vector Expect = M.rowAbsSums();
  for (size_t I = 0; I < 6; ++I)
    EXPECT_DOUBLE_EQ(Out[I], Expect[I] + 10.0);
}

//===----------------------------------------------------------------------===//
// Views: zero-copy slicing
//===----------------------------------------------------------------------===//

TEST(Views, BlockSlicingMatchesWholeMatrixResults) {
  Rng R(16);
  Matrix M = randomMatrix(R, 10, 16);
  // colRange view vs the allocating colRange copy.
  ConstMatrixView View = ConstMatrixView(M).colRange(3, 7);
  Matrix Copy = M.colRange(3, 7);
  ASSERT_EQ(View.rows(), Copy.rows());
  ASSERT_EQ(View.cols(), Copy.cols());
  EXPECT_EQ(View.stride(), M.cols()); // Zero-copy: parent stride.
  EXPECT_EQ(View.data(), M.rowData(0) + 3);
  for (size_t I = 0; I < View.rows(); ++I)
    for (size_t J = 0; J < View.cols(); ++J)
      EXPECT_EQ(View(I, J), Copy(I, J));
}

TEST(Views, StridedGemmMatchesWholeMatrixGemm) {
  Rng R(17);
  Matrix A = randomMatrix(R, 6, 20);
  Matrix B = randomMatrix(R, 8, 11);
  // Multiply a column slice of A (strided view) against a block of B.
  ConstMatrixView ASlice = ConstMatrixView(A).colRange(5, 8);
  ConstMatrixView BBlock = ConstMatrixView(B).block(0, 2, 8, 9);
  Matrix Out(6, 9);
  kernels::gemm(Out, ASlice, BBlock);
  Matrix Expect = A.colRange(5, 8) * B.colRange(2, 9);
  EXPECT_EQ((Out - Expect).maxAbs(), 0.0);
}

TEST(Views, StridedDestination) {
  Rng R(18);
  Matrix A = randomMatrix(R, 4, 5);
  Matrix B = randomMatrix(R, 5, 3);
  // Write the product into the middle columns of a wider matrix.
  Matrix Wide(4, 9, -1.0);
  kernels::gemm(MatrixView(Wide).colRange(3, 3), A, B);
  Matrix Expect = A * B;
  for (size_t I = 0; I < 4; ++I) {
    for (size_t J = 0; J < 3; ++J)
      EXPECT_EQ(Wide(I, 3 + J), Expect(I, J));
    EXPECT_EQ(Wide(I, 0), -1.0); // Surroundings untouched.
    EXPECT_EQ(Wide(I, 8), -1.0);
  }
}

TEST(Views, VectorSlice) {
  Vector V{1.0, 2.0, 3.0, 4.0, 5.0};
  ConstVectorView S = ConstVectorView(V).slice(1, 3);
  ASSERT_EQ(S.size(), 3u);
  EXPECT_EQ(S[0], 2.0);
  EXPECT_EQ(S[2], 4.0);
  EXPECT_EQ(S.data(), V.data() + 1);
}

//===----------------------------------------------------------------------===//
// Aliasing contract
//===----------------------------------------------------------------------===//

// gemm/gemv outputs must not overlap their inputs: the kernels read inputs
// while writing the output, so an aliased call would consume partially
// written data. The contract is enforced by assertions, which only fire in
// debug builds (the ASan/UBSan CI job); release builds document it here.
#ifndef NDEBUG
TEST(AliasingDeathTest, GemmOutputOverlappingInputAsserts) {
  Matrix A(4, 4, 1.0);
  EXPECT_DEATH(kernels::gemm(A, A, A), "alias");
}

TEST(AliasingDeathTest, GemvOutputOverlappingInputAsserts) {
  Matrix M(3, 3, 1.0);
  VectorView Row(M.rowData(0), 3);
  EXPECT_DEATH(kernels::gemv(Row, M, Vector(3, 1.0)), "alias");
}
#endif

//===----------------------------------------------------------------------===//
// Workspace
//===----------------------------------------------------------------------===//

TEST(Workspace, ReuseAcrossRepeatedCalls) {
  Workspace &W = Workspace::threadLocal();
  // Warm up, then verify repeated identical scopes reuse identical storage
  // (pointer-stable, no capacity growth).
  double *FirstPtr = nullptr;
  {
    WorkspaceScope WS(W);
    FirstPtr = WS.alloc(256);
  }
  size_t CapAfterWarmup = W.capacity();
  for (int Round = 0; Round < 10; ++Round) {
    WorkspaceScope WS(W);
    MatrixView M = WS.matrix(8, 16);
    VectorView V = WS.vector(128);
    EXPECT_EQ(M.data(), FirstPtr); // Rewound to the same offset.
    kernels::fill(M, 1.0);
    kernels::fill(V, 2.0);
  }
  EXPECT_EQ(W.capacity(), CapAfterWarmup);
}

TEST(Workspace, NestedScopesAreStackDiscipline) {
  Workspace &W = Workspace::threadLocal();
  WorkspaceScope Outer(W);
  VectorView A = Outer.vector(16);
  kernels::fill(A, 42.0);
  {
    WorkspaceScope Inner(W);
    VectorView B = Inner.vector(1 << 20); // Forces fresh-block growth.
    kernels::fill(B, 7.0);
    // Outer buffer must be untouched even though the arena grew.
    for (size_t I = 0; I < A.size(); ++I)
      EXPECT_EQ(A[I], 42.0);
  }
  // After the inner scope dies, the outer scope can keep allocating.
  VectorView C = Outer.vector(16);
  kernels::fill(C, 3.0);
  for (size_t I = 0; I < A.size(); ++I)
    EXPECT_EQ(A[I], 42.0);
}

TEST(Workspace, ZeroInitializedVariants) {
  WorkspaceScope WS;
  // Poison, rewind, and re-request: zeroMatrix must actually clear.
  {
    WorkspaceScope Poison;
    VectorView P = Poison.vector(64);
    kernels::fill(P, 1e300);
  }
  MatrixView M = WS.zeroMatrix(4, 8);
  VectorView V = WS.zeroVector(16);
  for (size_t I = 0; I < 4; ++I)
    for (size_t J = 0; J < 8; ++J)
      EXPECT_EQ(M(I, J), 0.0);
  for (size_t I = 0; I < 16; ++I)
    EXPECT_EQ(V[I], 0.0);
}

TEST(Workspace, ZeroSizedRequests) {
  WorkspaceScope WS;
  EXPECT_EQ(WS.alloc(0), nullptr);
  VectorView V = WS.vector(0);
  EXPECT_TRUE(V.empty());
  MatrixView M = WS.matrix(0, 5);
  EXPECT_TRUE(M.empty());
}

//===----------------------------------------------------------------------===//
// Kernel-layer integration with the domain layer
//===----------------------------------------------------------------------===//

TEST(LinearCombine, NullMatrixIsIdentity) {
  resetErrorTermIds();
  CHZonotope Z = CHZonotope::fromBox(Vector{0.0, -1.0, 2.0},
                                     Vector{1.0, 1.0, 2.5});
  Matrix I = Matrix::identity(3);
  Vector Offset{0.5, -0.5, 0.0};

  std::pair<const Matrix *, const CHZonotope *> Explicit[] = {{&I, &Z}};
  CHZonotope A = CHZonotope::linearCombine(Explicit, Offset);
  std::pair<const Matrix *, const CHZonotope *> Implicit[] = {{nullptr, &Z}};
  CHZonotope B = CHZonotope::linearCombine(Implicit, Offset);

  ASSERT_EQ(A.dim(), B.dim());
  ASSERT_EQ(A.numGenerators(), B.numGenerators());
  for (size_t I2 = 0; I2 < A.dim(); ++I2) {
    EXPECT_EQ(A.center()[I2], B.center()[I2]);
    EXPECT_EQ(A.boxRadius()[I2], B.boxRadius()[I2]);
    for (size_t J = 0; J < A.numGenerators(); ++J)
      EXPECT_EQ(A.generators()(I2, J), B.generators()(I2, J));
  }
  EXPECT_EQ(A.termIds(), B.termIds());
}

TEST(CHZonotope, WithBoxRadiusReplacesBoxOnly) {
  resetErrorTermIds();
  CHZonotope Z = CHZonotope::fromBox(Vector{0.0, 0.0}, Vector{1.0, 2.0});
  Vector Center = Z.center();
  Matrix Gens = Z.generators();
  CHZonotope W = std::move(Z).withBoxRadius(Vector{0.25, 0.75});
  EXPECT_EQ(W.boxRadius()[0], 0.25);
  EXPECT_EQ(W.boxRadius()[1], 0.75);
  for (size_t I = 0; I < 2; ++I) {
    EXPECT_EQ(W.center()[I], Center[I]);
    for (size_t J = 0; J < W.numGenerators(); ++J)
      EXPECT_EQ(W.generators()(I, J), Gens(I, J));
  }
}

} // namespace
