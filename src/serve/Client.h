//===- serve/Client.h - Serve protocol client library -----------*- C++ -*-===//
//
// Part of the Craft reproduction (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Client side of the serve protocol: connects to a `craft serve` daemon
/// on localhost, sends one newline-delimited JSON request per call, and
/// decodes the response. One connection per client; requests on a
/// connection are answered in order. The `craft client` subcommand, the
/// e2e test, and the bench_serve load generator all drive the daemon
/// through this class, so wire handling exists exactly once.
///
/// Resilience layer (opt-in via setRetryPolicy): per-request receive
/// timeouts, transparent reconnect, and deterministic jittered
/// exponential backoff. Retry classification:
///
///   | failure                          | retried?  | reconnects? |
///   |----------------------------------|-----------|-------------|
///   | connection lost / closed         | yes       | yes         |
///   | receive timeout                  | yes       | yes         |
///   | ok:false code "overloaded"       | yes       | no          |
///   | ok:false code "draining"         | yes       | yes         |
///   | any other ok:false               | no        | —           |
///
/// Only idempotent methods (verify, ping, stats, metrics) go through the retry
/// wrapper; shutdown and drain are sent exactly once. Backoff jitter is
/// seeded from RetryPolicy::Seed through taskSeed, so a fixed seed gives
/// a byte-identical retry schedule — chaos tests rely on this.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFT_SERVE_CLIENT_H
#define CRAFT_SERVE_CLIENT_H

#include "serve/Protocol.h"
#include "support/Socket.h"

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace craft {
namespace serve {

/// A decoded verify response (the per-query results in request order).
struct VerifyReply {
  std::vector<WireResult> Results;
  double ServerMs = 0.0;
};

/// How hard the client tries before reporting a failure.
struct RetryPolicy {
  /// Total attempts per idempotent request (1 = no retries).
  int MaxAttempts = 1;
  /// Receive timeout per attempt in ms (0 = wait forever).
  int TimeoutMs = 0;
  /// First backoff delay; doubles per retry, capped at 2 s.
  int BackoffBaseMs = 10;
  /// Jitter stream seed (deterministic: same seed, same schedule).
  uint64_t Seed = 20230617;
};

/// Blocking localhost client for one serve connection.
class ServeClient {
public:
  /// Connects to 127.0.0.1:\p Port. False + \p Error on failure. The
  /// port is remembered for reconnects.
  bool connect(int Port, std::string &Error);

  /// Drops the current connection (if any) and dials the remembered
  /// port again. False + \p Error when no port is known or the dial
  /// fails.
  bool reconnect(std::string &Error);

  bool connected() const { return Chan != nullptr; }

  /// Installs the retry/timeout policy for subsequent idempotent
  /// requests. Applies the receive timeout to the live connection too.
  void setRetryPolicy(const RetryPolicy &Policy);

  /// Sends one raw request line and returns the parsed response
  /// envelope, or nullopt with \p Error set (transport or JSON failure).
  /// Single-shot: no retries at this layer.
  std::optional<json::Value> roundTrip(const std::string &RequestLine,
                                       std::string &Error);

  /// Verifies one spec text. On an ok:false envelope, returns nullopt
  /// with the server's error (and rendered diagnostics) in \p Error and
  /// the machine code (if any) in lastErrorCode(). \p DeadlineMs >= 0
  /// attaches a per-request wall-clock budget.
  std::optional<VerifyReply> verify(const std::string &SpecText,
                                    std::string &Error,
                                    bool UseCache = true,
                                    double DeadlineMs = -1.0);

  /// True when the daemon answers a ping.
  bool ping(std::string &Error);

  /// Fetches the stats envelope.
  std::optional<json::Value> stats(std::string &Error);

  /// Fetches the full telemetry-registry snapshot (counters, gauges,
  /// histogram percentiles) as the `metrics` envelope.
  std::optional<json::Value> metrics(std::string &Error);

  /// Asks the daemon to shut down. True once the ack arrives. Never
  /// retried (a retry could kill a freshly restarted daemon).
  bool requestShutdown(std::string &Error);

  /// Asks the daemon to drain gracefully. True once the ack arrives.
  /// Never retried.
  bool requestDrain(std::string &Error);

  /// Machine-readable "code" from the last ok:false envelope ("",
  /// "overloaded", "draining"). Valid after a failed verify/ping/stats.
  const std::string &lastErrorCode() const { return LastErrorCode; }

  void close() { Chan.reset(); }

private:
  /// Retry wrapper for idempotent requests: classifies each failure,
  /// reconnects when the transport broke, sleeps the jittered backoff,
  /// and re-sends until success or attempts run out.
  std::optional<json::Value> idempotentRoundTrip(const Request &Req,
                                                 std::string &Error);

  int64_t NextId = 1;
  int PortUsed = -1;
  RetryPolicy Policy;
  std::string LastErrorCode;
  std::unique_ptr<LineChannel> Chan;
};

} // namespace serve
} // namespace craft

#endif // CRAFT_SERVE_CLIENT_H
