//===- attack/Pgd.h - Projected gradient descent attack ---------*- C++ -*-===//
//
// Part of the Craft reproduction (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Targeted PGD attack with margin loss (Madry et al. 2018; Gowal et al.
/// 2019) and output-diversified initialization (Tashiro et al. 2020), per
/// App. D.3 of the paper. The attack provides the empirical robustness upper
/// bound (#Bound) in Tables 2/3: a sample counts as "empirically robust" if
/// no restart finds a misclassified point inside the l-inf ball. Gradients
/// flow through the fixpoint via the implicit function theorem.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFT_ATTACK_PGD_H
#define CRAFT_ATTACK_PGD_H

#include "nn/Solvers.h"

namespace craft {

/// Attack configuration. The paper uses 20 restarts x 50 steps with 5 ODI
/// steps; defaults here are scaled for the single-core substrate and can be
/// raised per call site.
struct PgdOptions {
  double Epsilon = 0.05;
  int Steps = 30;
  int Restarts = 3;
  int OdiSteps = 5;
  double StepFraction = 0.25; ///< Step size = StepFraction * Epsilon.
  uint64_t Seed = 99;
  double InputLo = 0.0; ///< Valid input range (images live in [0,1]).
  double InputHi = 1.0;
  /// Adjoint solve mode for gradients: <0 exact LU, otherwise Neumann-term
  /// count (used for large latents).
  int NeumannTerms = -1;
  /// Run one targeted attack per wrong class (paper setting) instead of a
  /// single untargeted margin attack per restart.
  bool TargetAllClasses = true;
};

/// Result of attacking one sample.
struct PgdResult {
  bool FoundAdversarial = false;
  Vector Adversarial; ///< Valid only if FoundAdversarial.
  int AdversarialClass = -1;
};

/// Attacks the l-inf ball around \p X for a sample of true class \p Label.
/// \p Solver must be a PR solver bound to \p Model.
PgdResult pgdAttack(const MonDeq &Model, const FixpointSolver &Solver,
                    const Vector &X, int Label, const PgdOptions &Opts);

} // namespace craft

#endif // CRAFT_ATTACK_PGD_H
